package repro

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/world"
)

func quickStudy(t *testing.T) *Study {
	t.Helper()
	cfg := QuickConfig(1)
	// Keep the facade test fast.
	cfg.Synth.Trace.End = 24
	cfg.Synth.Events.Trace = cfg.Synth.Trace
	cfg.Synth.SessionsPerEpoch = 1500
	st, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

var sharedStudy *Study

func study(t *testing.T) *Study {
	if sharedStudy == nil {
		sharedStudy = quickStudy(t)
	}
	return sharedStudy
}

func TestStudyBasics(t *testing.T) {
	st := study(t)
	if st.Result() == nil || st.Result().Trace.Len() != 24 {
		t.Fatal("missing analysis result")
	}
	if st.AttrSpace() == nil {
		t.Fatal("missing attribute space")
	}
	if len(st.GroundTruth()) == 0 {
		t.Fatal("no ground-truth events")
	}
	if st.Suite() == nil {
		t.Fatal("missing suite")
	}
}

func TestTopCriticalAndFix(t *testing.T) {
	st := study(t)
	top := st.TopCritical(BufRatio, 5)
	if len(top) == 0 {
		t.Fatal("no critical clusters")
	}
	frac := st.FixClusters(BufRatio, top)
	if frac <= 0 || frac > 1 {
		t.Fatalf("alleviated fraction = %v", frac)
	}
	// Fixing more clusters helps at least as much.
	more := st.FixClusters(BufRatio, st.TopCritical(BufRatio, 50))
	if more < frac-1e-9 {
		t.Errorf("fixing more clusters alleviated less: %v vs %v", more, frac)
	}
	if st.FixClusters(BufRatio, nil) != 0 {
		t.Error("fixing nothing should alleviate nothing")
	}
}

func TestHistoryAccess(t *testing.T) {
	st := study(t)
	h := st.History(JoinFailure)
	if h == nil || len(h.Critical) == 0 {
		t.Fatal("no join-failure history")
	}
}

func TestWriteTraceRoundTrip(t *testing.T) {
	st := study(t)
	var buf bytes.Buffer
	if err := st.WriteTrace(&buf, true); err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := r.ForEach(func(*Session) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("empty trace written")
	}
	if r.Header().Epochs != 24 {
		t.Errorf("header epochs = %d", r.Header().Epochs)
	}
}

func TestReportRenders(t *testing.T) {
	st := study(t)
	var buf bytes.Buffer
	if err := st.Report(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 1", "Figure 11(c)", "Table 5"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestConfigPresets(t *testing.T) {
	def := DefaultConfig(7)
	if def.Synth.Seed != 7 || def.Synth.Trace.Len() != 336 {
		t.Errorf("DefaultConfig = %+v", def.Synth.Trace)
	}
	quick := QuickConfig(7)
	if quick.Synth.Trace.Len() >= def.Synth.Trace.Len() {
		t.Error("QuickConfig should be shorter")
	}
	if quick.Synth.Events.Trace != quick.Synth.Trace {
		t.Error("QuickConfig events trace not aligned")
	}
}

// TestPaperScaleSmoke exercises the full-population configuration (15K
// ASNs). It is long; enable with REPRO_LONG=1.
func TestPaperScaleSmoke(t *testing.T) {
	if os.Getenv("REPRO_LONG") == "" {
		t.Skip("set REPRO_LONG=1 to run the paper-scale smoke test")
	}
	cfg := DefaultConfig(1)
	cfg.Synth.World = world.PaperScaleConfig()
	cfg.Synth.Trace.End = 24
	cfg.Synth.Events.Trace = cfg.Synth.Trace
	cfg.Synth.SessionsPerEpoch = 20_000
	cfg.Analysis = core.DefaultConfig(cfg.Synth.SessionsPerEpoch)
	st, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := st.Suite().Table1(os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	if rows[BufRatio].MeanCriticalCoverage <= 0 {
		t.Error("no coverage at paper-scale world")
	}
}
