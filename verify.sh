#!/bin/sh
# verify.sh — the repository's full correctness gate, run locally and in CI.
#
#   1. go build      — everything compiles
#   2. go vet        — the toolchain's own static checks
#   3. vqlint        — the repo-specific analyzers: syntactic rules (float
#                      equality, lock copying, goroutine shutdown, dropped
#                      errors) plus the path-sensitive CFG/dataflow rules
#                      (lockbalance, poolrelease, errflow, ratioguard,
#                      goleak, chandiscipline, wgbalance, and the
#                      determinism/lifetime trio detorder, poollifetime,
#                      wallclock), made interprocedural by per-function
#                      summaries; non-zero exit on any finding
#   4. go test -race — the full suite under the race detector
set -eux

go build ./...
go vet ./...
go run ./cmd/vqlint ./...
go test -race ./...
