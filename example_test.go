package repro_test

import (
	"fmt"
	"os"

	repro "repro"
)

// The canonical workflow: generate a calibrated dataset, run the paper's
// analysis, and inspect the structure of the quality problems.
func ExampleNewStudy() {
	study, err := repro.NewStudy(repro.QuickConfig(1))
	if err != nil {
		panic(err)
	}
	// Paper Table 1: how few critical clusters explain the problems.
	study.Suite().Table1(os.Stdout)
}

// Ranking and repairing critical clusters — the paper's §5 what-if.
func ExampleStudy_FixClusters() {
	study, err := repro.NewStudy(repro.QuickConfig(1))
	if err != nil {
		panic(err)
	}
	top := study.TopCritical(repro.JoinFailure, 10)
	fmt.Printf("fixing the top %d join-failure clusters alleviates %.0f%% of problem sessions\n",
		len(top), 100*study.FixClusters(repro.JoinFailure, top))
}

// Naming detected clusters with the study's attribute catalog.
func ExampleStudy_TopCritical() {
	study, err := repro.NewStudy(repro.QuickConfig(1))
	if err != nil {
		panic(err)
	}
	space := study.AttrSpace()
	for _, k := range study.TopCritical(repro.BufRatio, 3) {
		fmt.Println(space.FormatKey(k))
	}
}
