#!/bin/sh
# bench.sh — run the substrate benchmarks and record a perf baseline.
#
# Usage:
#
#	scripts/bench.sh <label> [bench-regexp]
#	scripts/bench.sh --scaling <label> [bench-regexp]
#
# Default mode runs the aggregation-substrate benchmarks with -benchmem
# -count=5 and writes BENCH_<label>.json at the repo root: per benchmark the
# best (min) ns/op and B/op across the runs plus the (run-invariant)
# allocs/op. The committed BENCH_baseline.json / BENCH_cktable.json pair
# records the perf trajectory of the epoch-aggregation engine; future PRs
# append labels.
#
# --scaling mode sweeps the sharded epoch-analysis engine instead: it runs
# BenchmarkAnalyzeEpochParallel (sessions/epoch sub-benchmarks) under
# -cpu 1,2,4,8 so the worker count follows GOMAXPROCS, keeps the -N cpu
# suffix in the recorded names, and stamps the host's physical core count in
# the JSON — a 1-core host cannot show wall-clock speedup no matter how well
# the sharding scales, and the record must say so. Tunables: BENCH_COUNT
# (default 3), BENCH_CPUS (default 1,2,4,8), BENCH_TIME (default 1x).
#
# --streaming mode records the sliding-window engine: the BenchmarkWindow*
# pairs (incremental one-minute advance vs full 60-minute recompute, with
# and without critical-cluster detection, at 100k sessions/hour), the
# derived advance-vs-recompute speedup, and the detection-latency scenarios
# from `vqmonitor -latency-report`. The committed BENCH_streaming.json is
# this mode's output.
set -eu

mode="substrate"
case "${1:-}" in
--scaling)
	mode="scaling"
	shift
	;;
--streaming)
	mode="streaming"
	shift
	;;
esac

label="${1:?usage: scripts/bench.sh [--scaling] <label> [bench-regexp]}"

cd "$(dirname "$0")/.."
out="BENCH_${label}.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

goversion="$(go env GOVERSION)"
cores="$(nproc 2>/dev/null || echo 1)"

if [ "$mode" = "scaling" ]; then
	pattern="${2:-AnalyzeEpochParallel}"
	count="${BENCH_COUNT:-3}"
	cpus="${BENCH_CPUS:-1,2,4,8}"
	benchtime="${BENCH_TIME:-1x}"
	keepcpu=1
	# One go test invocation per GOMAXPROCS value, not a single -cpu list:
	# with a combined list the testing package interleaves cpu variants and
	# a run can be reported under the unsuffixed (cpu=1) name while actually
	# executing at a higher GOMAXPROCS, which would corrupt the scaling
	# curve. Separate processes make the -N label trustworthy.
	: >"$raw"
	for c in $(printf '%s' "$cpus" | tr ',' ' '); do
		go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" \
			-count="$count" -cpu "$c" -timeout 60m . | tee -a "$raw"
	done
elif [ "$mode" = "streaming" ]; then
	pattern="${2:-^BenchmarkWindow(Advance|AdvanceDetect|Recompute|RecomputeDetect)\$}"
	count="${BENCH_COUNT:-3}"
	benchtime="${BENCH_TIME:-1s}"
	keepcpu=0
	go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" \
		-count="$count" -timeout 60m . | tee "$raw"
else
	pattern="${2:-ClusterTable|CriticalDetect|HHHDetect|SessionBinaryCodec|HeartbeatProtocol}"
	count="${BENCH_COUNT:-5}"
	keepcpu=0
	go test -run '^$' -bench "$pattern" -benchmem -count="$count" . | tee "$raw"
fi

awk -v label="$label" -v goversion="$goversion" -v cores="$cores" -v keepcpu="$keepcpu" '
/^Benchmark/ {
	name = $1
	if (!keepcpu) sub(/-[0-9]+$/, "", name)
	ns = ""; bytes = ""; allocs = ""
	for (i = 2; i < NF; i++) {
		if ($(i + 1) == "ns/op") ns = $i
		if ($(i + 1) == "B/op") bytes = $i
		if ($(i + 1) == "allocs/op") allocs = $i
	}
	if (ns == "") next
	if (!(name in best_ns) || ns + 0 < best_ns[name] + 0) best_ns[name] = ns
	if (bytes != "" && (!(name in best_b) || bytes + 0 < best_b[name] + 0)) best_b[name] = bytes
	if (allocs != "") allocs_op[name] = allocs
	runs[name]++
	if (!(name in seen)) { order[n++] = name; seen[name] = 1 }
}
END {
	printf "{\n  \"label\": \"%s\",\n  \"go\": \"%s\",\n  \"host_cores\": %d,\n  \"benchmarks\": {\n", label, goversion, cores
	for (i = 0; i < n; i++) {
		name = order[i]
		printf "    \"%s\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s, \"runs\": %d}%s\n", \
			name, best_ns[name], (name in best_b) ? best_b[name] : "null", \
			(name in allocs_op) ? allocs_op[name] : "null", runs[name], \
			(i < n - 1) ? "," : ""
	}
	printf "  }\n}\n"
}' "$raw" >"$out"

if [ "$mode" = "streaming" ]; then
	# Append the derived advance-vs-recompute speedup and the canned
	# detection-latency scenarios to the record.
	adv="$(sed -n 's/.*"BenchmarkWindowAdvance": {"ns_op": \([0-9]*\),.*/\1/p' "$out")"
	rec="$(sed -n 's/.*"BenchmarkWindowRecompute": {"ns_op": \([0-9]*\),.*/\1/p' "$out")"
	speedup="$(awk -v a="$adv" -v r="$rec" 'BEGIN {
		if (a + 0 > 0 && r + 0 > 0) printf "%.1f", r / a; else print "null"
	}')"
	lat="$(mktemp)"
	go run ./cmd/vqmonitor -latency-report >"$lat"
	{
		sed '$d' "$out"
		printf '  ,\n  "advance_vs_recompute_speedup": %s,\n  "streaming_latency": ' "$speedup"
		cat "$lat"
		printf '}\n'
	} >"$out.tmp"
	mv "$out.tmp" "$out"
	rm -f "$lat"
fi

echo "wrote $out"
