#!/bin/sh
# bench.sh — run the substrate benchmarks and record a perf baseline.
#
# Usage:
#
#	scripts/bench.sh <label> [bench-regexp]
#
# Runs the aggregation-substrate benchmarks with -benchmem -count=5 and
# writes BENCH_<label>.json at the repo root: per benchmark the best (min)
# ns/op and B/op across the runs plus the (run-invariant) allocs/op. The
# committed BENCH_baseline.json / BENCH_cktable.json pair records the perf
# trajectory of the epoch-aggregation engine; future PRs append labels.
set -eu

label="${1:?usage: scripts/bench.sh <label> [bench-regexp]}"
pattern="${2:-ClusterTable|CriticalDetect|HHHDetect|SessionBinaryCodec|HeartbeatProtocol}"
count="${BENCH_COUNT:-5}"

cd "$(dirname "$0")/.."
out="BENCH_${label}.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$pattern" -benchmem -count="$count" . | tee "$raw"

goversion="$(go env GOVERSION)"

awk -v label="$label" -v goversion="$goversion" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; bytes = ""; allocs = ""
	for (i = 2; i < NF; i++) {
		if ($(i + 1) == "ns/op") ns = $i
		if ($(i + 1) == "B/op") bytes = $i
		if ($(i + 1) == "allocs/op") allocs = $i
	}
	if (ns == "") next
	if (!(name in best_ns) || ns + 0 < best_ns[name] + 0) best_ns[name] = ns
	if (bytes != "" && (!(name in best_b) || bytes + 0 < best_b[name] + 0)) best_b[name] = bytes
	if (allocs != "") allocs_op[name] = allocs
	runs[name]++
	if (!(name in seen)) { order[n++] = name; seen[name] = 1 }
}
END {
	printf "{\n  \"label\": \"%s\",\n  \"go\": \"%s\",\n  \"benchmarks\": {\n", label, goversion
	for (i = 0; i < n; i++) {
		name = order[i]
		printf "    \"%s\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s, \"runs\": %d}%s\n", \
			name, best_ns[name], (name in best_b) ? best_b[name] : "null", \
			(name in allocs_op) ? allocs_op[name] : "null", runs[name], \
			(i < n - 1) ? "," : ""
	}
	printf "  }\n}\n"
}' "$raw" >"$out"

echo "wrote $out"
