package session

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/attr"
	"repro/internal/epoch"
	"repro/internal/metric"
)

// jsonSession is the JSON-lines interchange shape: flat, snake_case,
// self-describing field names rather than positional arrays, so downstream
// tools (jq, dataframe loaders) consume it directly.
type jsonSession struct {
	ID         uint64  `json:"id"`
	Epoch      int32   `json:"epoch"`
	ASN        int32   `json:"asn"`
	CDN        int32   `json:"cdn"`
	Site       int32   `json:"site"`
	VoDOrLive  int32   `json:"vod_or_live"`
	PlayerType int32   `json:"player_type"`
	Browser    int32   `json:"browser"`
	ConnType   int32   `json:"conn_type"`
	JoinFailed bool    `json:"join_failed"`
	JoinTimeMS float64 `json:"join_time_ms,omitempty"`
	BufRatio   float64 `json:"buf_ratio,omitempty"`
	Bitrate    float64 `json:"bitrate_kbps,omitempty"`
	DurationS  float64 `json:"duration_s,omitempty"`
	Events     []int32 `json:"event_ids,omitempty"`
}

func toJSON(s *Session) jsonSession {
	j := jsonSession{
		ID:         s.ID,
		Epoch:      int32(s.Epoch),
		ASN:        s.Attrs[attr.ASN],
		CDN:        s.Attrs[attr.CDN],
		Site:       s.Attrs[attr.Site],
		VoDOrLive:  s.Attrs[attr.VoDOrLive],
		PlayerType: s.Attrs[attr.PlayerType],
		Browser:    s.Attrs[attr.Browser],
		ConnType:   s.Attrs[attr.ConnType],
		JoinFailed: s.QoE.JoinFailed,
		JoinTimeMS: s.QoE.JoinTimeMS,
		BufRatio:   s.QoE.BufRatio,
		Bitrate:    s.QoE.BitrateKbps,
		DurationS:  s.QoE.DurationS,
	}
	if s.EventIDs != NoEvents {
		j.Events = s.EventIDs[:]
	}
	return j
}

func (j *jsonSession) toSession() Session {
	s := Session{
		ID:    j.ID,
		Epoch: epoch.Index(j.Epoch),
		QoE: metric.QoE{
			JoinFailed:  j.JoinFailed,
			JoinTimeMS:  j.JoinTimeMS,
			BufRatio:    j.BufRatio,
			BitrateKbps: j.Bitrate,
			DurationS:   j.DurationS,
		},
		EventIDs: NoEvents,
	}
	s.Attrs[attr.ASN] = j.ASN
	s.Attrs[attr.CDN] = j.CDN
	s.Attrs[attr.Site] = j.Site
	s.Attrs[attr.VoDOrLive] = j.VoDOrLive
	s.Attrs[attr.PlayerType] = j.PlayerType
	s.Attrs[attr.Browser] = j.Browser
	s.Attrs[attr.ConnType] = j.ConnType
	if len(j.Events) == metric.NumMetrics {
		copy(s.EventIDs[:], j.Events)
	}
	return s
}

// WriteJSONL streams sessions as JSON lines.
func WriteJSONL(w io.Writer, sessions []Session) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range sessions {
		j := toJSON(&sessions[i])
		if err := enc.Encode(&j); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL reads sessions written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Session, error) {
	dec := json.NewDecoder(r)
	var out []Session
	for {
		var j jsonSession
		if err := dec.Decode(&j); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("session: JSONL record %d: %w", len(out)+1, err)
		}
		out = append(out, j.toSession())
	}
}
