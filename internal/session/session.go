// Package session defines the video session record — the basic unit of the
// dataset (paper §2) — and codecs for moving sessions through pipes, files,
// and the heartbeat collector: a compact fixed-width binary encoding for
// bulk traces and a CSV encoding for interchange and inspection.
package session

import (
	"fmt"

	"repro/internal/attr"
	"repro/internal/epoch"
	"repro/internal/metric"
)

// NoEvent marks a session not produced under any injected ground-truth
// problem event.
const NoEvent int32 = -1

// Session is one video viewing session: a user watching one video on one
// affiliate site for some duration, annotated with the seven client/session
// attributes and the measured quality outcome.
type Session struct {
	// ID is unique within a trace.
	ID uint64
	// Epoch is the one-hour epoch the session started in.
	Epoch epoch.Index
	// Attrs holds the seven attribute values (identifiers into the trace's
	// attr.Space).
	Attrs attr.Vector
	// QoE is the measured quality of the session.
	QoE metric.QoE

	// EventIDs tags, per metric, the injected ground-truth problem event
	// that degraded this session (NoEvent when none). The analysis
	// pipeline never reads it; it exists so experiments can validate
	// detections against ground truth — something the paper's authors
	// could not do.
	EventIDs [metric.NumMetrics]int32
}

// NoEvents is the EventIDs value of an untouched session.
var NoEvents = [metric.NumMetrics]int32{NoEvent, NoEvent, NoEvent, NoEvent}

// CausedBy reports whether the session's problem on metric m was caused by
// an injected event.
func (s *Session) CausedBy(m metric.Metric) bool { return s.EventIDs[m] != NoEvent }

// Problem reports whether the session is a problem session on metric m.
func (s *Session) Problem(m metric.Metric, t metric.Thresholds) bool {
	return s.QoE.Problem(m, t)
}

// Validate checks internal consistency against a space catalog (pass nil to
// skip attribute-range checks).
func (s *Session) Validate(space *attr.Space) error {
	if s.Epoch < 0 {
		return fmt.Errorf("session %d: negative epoch %d", s.ID, s.Epoch)
	}
	if space != nil && !space.Valid(s.Attrs) {
		return fmt.Errorf("session %d: attribute vector %v outside catalog", s.ID, s.Attrs)
	}
	if err := s.QoE.Validate(); err != nil {
		return fmt.Errorf("session %d: %w", s.ID, err)
	}
	for m, id := range s.EventIDs {
		if id < NoEvent {
			return fmt.Errorf("session %d: bad event id %d for metric %s", s.ID, id, metric.Metric(m))
		}
	}
	return nil
}
