package session

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/attr"
	"repro/internal/epoch"
	"repro/internal/metric"
)

func sample() Session {
	return Session{
		ID:    42,
		Epoch: 17,
		Attrs: attr.Vector{3, 1, 250, 0, 2, 1, 4},
		QoE: metric.QoE{
			JoinTimeMS:  2300.5,
			BufRatio:    0.031,
			BitrateKbps: 1850,
			DurationS:   640,
		},
		EventIDs: [metric.NumMetrics]int32{7, NoEvent, NoEvent, NoEvent},
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	s := sample()
	buf := AppendBinary(nil, &s)
	if len(buf) != BinarySize() {
		t.Fatalf("encoded size %d, want %d", len(buf), BinarySize())
	}
	var got Session
	n, err := DecodeBinary(buf, &got)
	if err != nil {
		t.Fatal(err)
	}
	if n != BinarySize() {
		t.Errorf("consumed %d, want %d", n, BinarySize())
	}
	if got != s {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, s)
	}
}

func TestBinaryRoundTripFailedJoin(t *testing.T) {
	s := Session{ID: 1, Epoch: 0, QoE: metric.QoE{JoinFailed: true}, EventIDs: NoEvents}
	buf := AppendBinary(nil, &s)
	var got Session
	if _, err := DecodeBinary(buf, &got); err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Errorf("round trip mismatch: %+v vs %+v", got, s)
	}
}

func TestBinaryDecodeErrors(t *testing.T) {
	var s Session
	if _, err := DecodeBinary(make([]byte, 10), &s); err == nil {
		t.Error("short record accepted")
	}
	full := AppendBinary(nil, &s)
	full[40] = 0xff
	if _, err := DecodeBinary(full, &s); err == nil {
		t.Error("unknown flags accepted")
	}
}

func TestBinaryProperty(t *testing.T) {
	f := func(id uint64, ep int32, a [attr.NumDims]int32, failed bool, jt, br, bw, dur float64, ev int32) bool {
		s := Session{ID: id, Epoch: epoch.Index(ep), Attrs: a}
		for i := range s.EventIDs {
			s.EventIDs[i] = ev + int32(i)
		}
		s.QoE = metric.QoE{JoinFailed: failed, JoinTimeMS: jt, BufRatio: br, BitrateKbps: bw, DurationS: dur}
		buf := AppendBinary(nil, &s)
		var got Session
		if _, err := DecodeBinary(buf, &got); err != nil {
			return false
		}
		return got == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	sessions := []Session{sample(), {ID: 2, EventIDs: NoEvents, QoE: metric.QoE{JoinFailed: true}}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sessions); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(sessions) {
		t.Fatalf("read %d sessions, want %d", len(got), len(sessions))
	}
	for i := range sessions {
		if got[i] != sessions[i] {
			t.Errorf("session %d mismatch:\n got %+v\nwant %+v", i, got[i], sessions[i])
		}
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty CSV accepted")
	}
	if _, err := ReadCSV(strings.NewReader("bogus,header\n")); err == nil {
		t.Error("bad header accepted")
	}
	header := strings.Join(CSVHeader, ",")
	if _, err := ReadCSV(strings.NewReader(header + "\n1,2,3\n")); err == nil {
		t.Error("short line accepted")
	}
	if _, err := ParseCSV("x,0,0,0,0,0,0,0,0,0,0,0,0,0,0"); err == nil {
		t.Error("bad id accepted")
	}
	if _, err := ParseCSV("1,0,0,0,0,0,0,0,0,2,0,0,0,0,0"); err == nil {
		t.Error("bad join_failed accepted")
	}
}

func TestValidate(t *testing.T) {
	space, err := attr.NewSpace(map[attr.Dim][]string{
		attr.ASN:        {"a", "b", "c", "d"},
		attr.CDN:        {"x", "y"},
		attr.Site:       make300(),
		attr.VoDOrLive:  {"VoD", "Live"},
		attr.PlayerType: {"Flash", "HTML5", "Silverlight"},
		attr.Browser:    {"Chrome", "Firefox"},
		attr.ConnType:   {"DSL", "Cable", "Fiber", "Mobile", "FixedWireless"},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := sample()
	if err := s.Validate(space); err != nil {
		t.Errorf("Validate(valid) = %v", err)
	}
	bad := s
	bad.Epoch = -1
	if bad.Validate(nil) == nil {
		t.Error("negative epoch accepted")
	}
	bad = s
	bad.Attrs[attr.CDN] = 99
	if bad.Validate(space) == nil {
		t.Error("out-of-catalog attribute accepted")
	}
	bad = s
	bad.QoE.BufRatio = 2
	if bad.Validate(nil) == nil {
		t.Error("impossible QoE accepted")
	}
	bad = s
	bad.EventIDs[2] = -5
	if bad.Validate(nil) == nil {
		t.Error("bad event id accepted")
	}
}

func make300() []string {
	out := make([]string, 300)
	for i := range out {
		out[i] = "site-" + string(rune('a'+i%26)) + string(rune('0'+i%10)) + string(rune('0'+(i/10)%10)) + string(rune('0'+i/100))
	}
	return out
}

func TestProblemDelegates(t *testing.T) {
	th := metric.Default()
	s := sample()
	s.QoE.BufRatio = 0.2
	if !s.Problem(metric.BufRatio, th) {
		t.Error("Problem should delegate to QoE")
	}
	if s.Problem(metric.JoinFailure, th) {
		t.Error("played session flagged as join failure")
	}
}
