package session

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/attr"
	"repro/internal/epoch"
	"repro/internal/metric"
)

// Binary wire format (little endian), one fixed-width record per session:
//
//	offset size field
//	0      8    ID
//	8      4    Epoch (int32)
//	12     28   Attrs (7 × int32)
//	40     1    flags (bit 0: JoinFailed)
//	41     8    JoinTimeMS (float64)
//	49     8    BufRatio (float64)
//	57     8    BitrateKbps (float64)
//	65     8    DurationS (float64)
//	73     16   EventIDs (4 × int32)
//
// Total 89 bytes. The format is versioned by the trace container (see
// package trace), not per record.
const binarySize = 89

// AppendBinary appends the binary encoding of s to dst and returns the
// extended slice.
func AppendBinary(dst []byte, s *Session) []byte {
	var buf [binarySize]byte
	binary.LittleEndian.PutUint64(buf[0:], s.ID)
	binary.LittleEndian.PutUint32(buf[8:], uint32(s.Epoch))
	for i := 0; i < attr.NumDims; i++ {
		binary.LittleEndian.PutUint32(buf[12+4*i:], uint32(s.Attrs[i]))
	}
	if s.QoE.JoinFailed {
		buf[40] = 1
	}
	binary.LittleEndian.PutUint64(buf[41:], math.Float64bits(s.QoE.JoinTimeMS))
	binary.LittleEndian.PutUint64(buf[49:], math.Float64bits(s.QoE.BufRatio))
	binary.LittleEndian.PutUint64(buf[57:], math.Float64bits(s.QoE.BitrateKbps))
	binary.LittleEndian.PutUint64(buf[65:], math.Float64bits(s.QoE.DurationS))
	for i := 0; i < metric.NumMetrics; i++ {
		binary.LittleEndian.PutUint32(buf[73+4*i:], uint32(s.EventIDs[i]))
	}
	return append(dst, buf[:]...)
}

// DecodeBinary decodes one record from b into s. It returns the number of
// bytes consumed.
func DecodeBinary(b []byte, s *Session) (int, error) {
	if len(b) < binarySize {
		return 0, fmt.Errorf("session: short record: %d bytes, need %d", len(b), binarySize)
	}
	s.ID = binary.LittleEndian.Uint64(b[0:])
	s.Epoch = epoch.Index(int32(binary.LittleEndian.Uint32(b[8:])))
	for i := 0; i < attr.NumDims; i++ {
		s.Attrs[i] = int32(binary.LittleEndian.Uint32(b[12+4*i:]))
	}
	if b[40]&^1 != 0 {
		return 0, fmt.Errorf("session: unknown flags %#x", b[40])
	}
	s.QoE = metric.QoE{
		JoinFailed:  b[40]&1 != 0,
		JoinTimeMS:  math.Float64frombits(binary.LittleEndian.Uint64(b[41:])),
		BufRatio:    math.Float64frombits(binary.LittleEndian.Uint64(b[49:])),
		BitrateKbps: math.Float64frombits(binary.LittleEndian.Uint64(b[57:])),
		DurationS:   math.Float64frombits(binary.LittleEndian.Uint64(b[65:])),
	}
	for i := 0; i < metric.NumMetrics; i++ {
		s.EventIDs[i] = int32(binary.LittleEndian.Uint32(b[73+4*i:]))
	}
	return binarySize, nil
}

// BinarySize returns the fixed record width of the binary encoding.
func BinarySize() int { return binarySize }

// CSVHeader is the column list of the CSV encoding.
var CSVHeader = []string{
	"id", "epoch",
	"asn", "cdn", "site", "vod_or_live", "player_type", "browser", "conn_type",
	"join_failed", "join_time_ms", "buf_ratio", "bitrate_kbps", "duration_s",
	"event_bufratio", "event_bitrate", "event_jointime", "event_joinfailure",
}

// AppendCSV appends one CSV line (without trailing newline) for s.
func AppendCSV(dst []byte, s *Session) []byte {
	dst = strconv.AppendUint(dst, s.ID, 10)
	dst = append(dst, ',')
	dst = strconv.AppendInt(dst, int64(s.Epoch), 10)
	for i := 0; i < attr.NumDims; i++ {
		dst = append(dst, ',')
		dst = strconv.AppendInt(dst, int64(s.Attrs[i]), 10)
	}
	dst = append(dst, ',')
	if s.QoE.JoinFailed {
		dst = append(dst, '1')
	} else {
		dst = append(dst, '0')
	}
	for _, v := range []float64{s.QoE.JoinTimeMS, s.QoE.BufRatio, s.QoE.BitrateKbps, s.QoE.DurationS} {
		dst = append(dst, ',')
		dst = strconv.AppendFloat(dst, v, 'g', -1, 64)
	}
	for i := 0; i < metric.NumMetrics; i++ {
		dst = append(dst, ',')
		dst = strconv.AppendInt(dst, int64(s.EventIDs[i]), 10)
	}
	return dst
}

// ParseCSV parses one CSV line produced by AppendCSV.
func ParseCSV(line string) (Session, error) {
	fields := strings.Split(strings.TrimSpace(line), ",")
	if len(fields) != len(CSVHeader) {
		return Session{}, fmt.Errorf("session: CSV line has %d fields, want %d", len(fields), len(CSVHeader))
	}
	var s Session
	var err error
	if s.ID, err = strconv.ParseUint(fields[0], 10, 64); err != nil {
		return Session{}, fmt.Errorf("session: bad id %q: %w", fields[0], err)
	}
	e, err := strconv.ParseInt(fields[1], 10, 32)
	if err != nil {
		return Session{}, fmt.Errorf("session: bad epoch %q: %w", fields[1], err)
	}
	s.Epoch = epoch.Index(e)
	for i := 0; i < attr.NumDims; i++ {
		v, err := strconv.ParseInt(fields[2+i], 10, 32)
		if err != nil {
			return Session{}, fmt.Errorf("session: bad attribute %q: %w", fields[2+i], err)
		}
		s.Attrs[i] = int32(v)
	}
	switch fields[9] {
	case "0":
	case "1":
		s.QoE.JoinFailed = true
	default:
		return Session{}, fmt.Errorf("session: bad join_failed %q", fields[9])
	}
	floats := []*float64{&s.QoE.JoinTimeMS, &s.QoE.BufRatio, &s.QoE.BitrateKbps, &s.QoE.DurationS}
	for i, p := range floats {
		v, err := strconv.ParseFloat(fields[10+i], 64)
		if err != nil {
			return Session{}, fmt.Errorf("session: bad float %q: %w", fields[10+i], err)
		}
		*p = v
	}
	for i := 0; i < metric.NumMetrics; i++ {
		ev, err := strconv.ParseInt(fields[14+i], 10, 32)
		if err != nil {
			return Session{}, fmt.Errorf("session: bad event id %q: %w", fields[14+i], err)
		}
		s.EventIDs[i] = int32(ev)
	}
	return s, nil
}

// WriteCSV writes a header plus one line per session to w.
func WriteCSV(w io.Writer, sessions []Session) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(strings.Join(CSVHeader, ",") + "\n"); err != nil {
		return err
	}
	var buf []byte
	for i := range sessions {
		buf = AppendCSV(buf[:0], &sessions[i])
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV reads sessions written by WriteCSV.
func ReadCSV(r io.Reader) ([]Session, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, errors.New("session: empty CSV input")
	}
	if got := strings.TrimSpace(sc.Text()); got != strings.Join(CSVHeader, ",") {
		return nil, fmt.Errorf("session: unexpected CSV header %q", got)
	}
	var out []Session
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		s, err := ParseCSV(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", len(out)+2, err)
		}
		out = append(out, s)
	}
	return out, sc.Err()
}
