package session

import (
	"bytes"
	"testing"
)

// FuzzDecodeBinary ensures arbitrary bytes never panic the decoder and that
// successfully decoded records re-encode identically.
func FuzzDecodeBinary(f *testing.F) {
	s := sample()
	f.Add(AppendBinary(nil, &s))
	f.Add(make([]byte, BinarySize()))
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		var out Session
		if _, err := DecodeBinary(data, &out); err != nil {
			return
		}
		// Compare at the byte level: NaN payloads round-trip exactly but
		// defeat struct equality.
		re := AppendBinary(nil, &out)
		var back Session
		if _, err := DecodeBinary(re, &back); err != nil {
			t.Fatalf("re-encoded record failed to decode: %v", err)
		}
		re2 := AppendBinary(nil, &back)
		if !bytes.Equal(re, re2) {
			t.Fatal("binary round trip not byte-stable")
		}
	})
}

// FuzzParseCSV ensures arbitrary lines never panic the CSV parser.
func FuzzParseCSV(f *testing.F) {
	s := sample()
	f.Add(string(AppendCSV(nil, &s)))
	f.Add("")
	f.Add("1,2,3")
	f.Add("x,y,z,,,,,,,,,,,,,,,")
	f.Fuzz(func(t *testing.T, line string) {
		got, err := ParseCSV(line)
		if err != nil {
			return
		}
		rendered := string(AppendCSV(nil, &got))
		back, err := ParseCSV(rendered)
		if err != nil {
			t.Fatalf("re-rendered line failed to parse: %v", err)
		}
		if again := string(AppendCSV(nil, &back)); again != rendered {
			t.Fatal("CSV round trip not text-stable")
		}
	})
}
