// Package critical implements the paper's phase-transition algorithm for
// identifying critical clusters (§3.2, Fig. 5): minimal attribute
// combinations that explain the problem clusters around them. A problem
// cluster C is critical when
//
//   - upward: for every immediate parent P (one attribute removed), P is
//     not a problem cluster at all, or P ceases to be one once C's sessions
//     are removed ("removing any one attribute from this set will reduce
//     the problem ratio"); clusters losing statistical significance after
//     removal count as ceasing; and
//
//   - downward: its statistically significant descendants are themselves
//     problem clusters ("adding any attribute to it will continue to be a
//     problem cluster"). Real data is noisy, so the test is
//     session-weighted: along every free dimension, at least
//     Options.ChildProblemFraction of the sessions inside significant
//     children must lie in children that are problem clusters.
//
// When attributes are fully correlated (a Site using a single CDN), both
// the coarse and the fine combination pass; following the paper's footnote
// 5, the algorithm prefers the more compact description and drops a
// critical cluster whose sessions are almost entirely those of a critical
// ancestor.
//
// The package also attributes problem clusters and problem sessions to
// their nearest critical ancestors, splitting ties equally (paper §3.2
// "equally divide the attribution"), which yields the coverage numbers of
// Table 1 and the per-cluster volumes the what-if analysis fixes.
package critical

import (
	"math/bits"
	"sort"

	"repro/internal/attr"
	"repro/internal/cluster"
)

// Options tunes the noise handling of the detector. The zero value is not
// valid; use DefaultOptions.
type Options struct {
	// ChildProblemFraction is the minimum session-weighted fraction of
	// significant children (per free dimension) that must be problem
	// clusters for the downward condition to hold.
	ChildProblemFraction float64
	// DedupeOverlap is the session-overlap fraction above which a critical
	// cluster is considered redundant with a critical ancestor and dropped
	// (correlated attributes; paper footnote 5).
	DedupeOverlap float64
}

// DefaultOptions returns the tuning used throughout the reproduction.
func DefaultOptions() Options {
	return Options{ChildProblemFraction: 0.6, DedupeOverlap: 0.8}
}

// Cluster is one detected critical cluster with its attribution tallies.
type Cluster struct {
	Key    attr.Key
	Counts cluster.Counts

	// AttributedProblems is the fractional number of problem sessions
	// attributed to this cluster (each problem session splits equally
	// among its nearest critical ancestors).
	AttributedProblems float64
	// AttributedSessions is the fractional number of sessions (problem or
	// not, metric defined) attributed likewise; the what-if analysis uses
	// it to compute the post-fix baseline.
	AttributedSessions float64
	// ProblemClusters is the fractional number of problem clusters
	// attributed to this cluster.
	ProblemClusters float64
}

// Result is the critical-cluster analysis of one (epoch, metric) view.
type Result struct {
	View *cluster.View
	// Critical maps each critical cluster key to its record.
	Critical map[attr.Key]*Cluster
	// CoveredProblems is the number of problem sessions matching at least
	// one critical cluster (Table 1's critical coverage numerator).
	CoveredProblems int32
	// ProblemsInProblemClusters is the number of problem sessions inside
	// at least one problem cluster (Table 1's problem coverage numerator).
	ProblemsInProblemClusters int32
}

// childAgg accumulates, for one candidate cluster and one added dimension,
// the sessions inside statistically significant children and the subset of
// those sessions inside children that are problem clusters.
type childAgg struct {
	sig, prob int64
}

// Detect runs the phase-transition search and attribution passes over a
// problem-cluster view using default options.
func Detect(v *cluster.View) *Result { return DetectOpts(v, DefaultOptions()) }

// DetectOpts is Detect with explicit options.
func DetectOpts(v *cluster.View, opts Options) *Result {
	r := &Result{View: v, Critical: make(map[attr.Key]*Cluster)}
	m := v.Metric

	childStats := buildChildStats(v)

	// Phase-transition test per problem cluster.
	for k, c := range v.Problem {
		if passesUp(v, k, c) && passesDown(v, k, childStats, opts) {
			r.Critical[k] = &Cluster{Key: k, Counts: c}
		}
	}

	dedupeCorrelated(v, r.Critical, opts)

	// Attribute problem clusters to nearest critical ancestors; a problem
	// cluster with no critical ancestor may instead be a coarse shadow of a
	// finer critical cluster beneath it (Fig. 5: CDN1 and ASN1 are problem
	// clusters explained by the critical CDN1∧ASN1), so fall back to
	// critical descendants. The keys are visited in sorted order so the
	// fractional attribution sums accumulate identically on every run (map
	// order would perturb their low bits).
	problemKeys := make([]attr.Key, 0, len(v.Problem))
	for k := range v.Problem {
		problemKeys = append(problemKeys, k)
	}
	sort.Slice(problemKeys, func(i, j int) bool { return problemKeys[i].Less(problemKeys[j]) })
	for _, k := range problemKeys {
		nearest := nearestCritical(r.Critical, k)
		if len(nearest) == 0 {
			nearest = criticalDescendants(r.Critical, k)
		}
		if len(nearest) == 0 {
			continue
		}
		share := 1 / float64(len(nearest))
		for _, ck := range nearest {
			r.Critical[ck].ProblemClusters += share
		}
	}

	// Attribute sessions (coverage pass). Group critical keys by mask for
	// fast matching.
	masks := criticalMasks(r.Critical)
	sessions := v.Table().Sessions
	var buf []attr.Key
	for i := range sessions {
		l := &sessions[i]
		if !l.Defined(m) {
			continue
		}
		buf = buf[:0]
		bestSize := -1
		for _, mk := range masks {
			key := attr.KeyOf(l.Attrs, mk)
			if _, ok := r.Critical[key]; !ok {
				continue
			}
			size := mk.Size()
			switch {
			case size > bestSize:
				bestSize = size
				buf = append(buf[:0], key)
			case size == bestSize:
				buf = append(buf, key)
			}
		}
		if len(buf) == 0 {
			continue
		}
		problem := l.Problem(m)
		if problem {
			r.CoveredProblems++
		}
		share := 1 / float64(len(buf))
		for _, key := range buf {
			cc := r.Critical[key]
			cc.AttributedSessions += share
			if problem {
				cc.AttributedProblems += share
			}
		}
	}

	r.ProblemsInProblemClusters = v.ProblemSessionsInClusters()
	return r
}

// buildChildStats aggregates significant-children statistics for every
// problem-cluster candidate in one pass over the count table. The entry for
// candidate P at dimension d covers P's children obtained by fixing d.
func buildChildStats(v *cluster.View) map[attr.Key]*[attr.NumDims]childAgg {
	m := v.Metric
	// One backing array for every candidate: two allocations total, and —
	// unlike Mask.Dims() — the inner dimension walk below allocates nothing
	// even though it runs for every significant key of the table.
	backing := make([][attr.NumDims]childAgg, len(v.Problem))
	stats := make(map[attr.Key]*[attr.NumDims]childAgg, len(v.Problem))
	next := 0
	for k := range v.Problem {
		stats[k] = &backing[next]
		next++
	}
	v.Table().ForEach(func(k attr.Key, c cluster.Counts) {
		n := c.Sessions(m)
		if n < v.MinSessions {
			return
		}
		// Children are judged by the ratio-only rule: a weak anchor's
		// descendants are too small for per-child z-significance, but their
		// uniformly elevated ratios are the downward pattern we test for.
		problem := v.IsProblemRatioOnly(c)
		for rem := k.Mask; rem != 0; {
			d := attr.Dim(bits.TrailingZeros8(uint8(rem)))
			rem = rem.Without(d)
			agg, ok := stats[k.Parent(d)]
			if !ok {
				continue
			}
			agg[d].sig += int64(n)
			if problem {
				agg[d].prob += int64(n)
			}
		}
	})
	return stats
}

// passesUp applies the per-parent removal test.
func passesUp(v *cluster.View, k attr.Key, c cluster.Counts) bool {
	m := v.Metric
	for _, p := range k.Parents() {
		if p.Mask == 0 {
			// The root's ratio is the global ratio, below the threshold by
			// construction (factor > 1): never a problem cluster.
			continue
		}
		pc := v.Counts(p)
		if !v.IsProblem(pc) {
			continue
		}
		// Remove C's sessions from P and re-test: the parent must cease to
		// be a (significant) problem cluster for C to be the transition
		// point.
		n := pc.Sessions(m) - c.Sessions(m)
		probs := pc.Problems[m] - c.Problems[m]
		if !v.IsProblemCounts(n, probs) {
			continue
		}
		// The parent stays a problem cluster without C: C does not explain
		// it, so C is not the transition point on this path.
		return false
	}
	return true
}

// passesDown applies the session-weighted descendants test.
func passesDown(v *cluster.View, k attr.Key, stats map[attr.Key]*[attr.NumDims]childAgg, opts Options) bool {
	agg := stats[k]
	if agg == nil {
		return true
	}
	for d := attr.Dim(0); d < attr.NumDims; d++ {
		if k.Mask.Has(d) {
			continue
		}
		a := agg[d]
		if a.sig == 0 {
			// No statistically significant children along d: vacuous.
			continue
		}
		if float64(a.prob)/float64(a.sig) < opts.ChildProblemFraction {
			return false
		}
	}
	return true
}

// dedupeCorrelated removes critical clusters that are redundant refinements
// of a critical ancestor (correlated attributes: a Site on a single CDN
// yields identical Site and Site+CDN clusters; the paper prefers the more
// compact description).
func dedupeCorrelated(v *cluster.View, critical map[attr.Key]*Cluster, opts Options) {
	m := v.Metric
	keys := make([]attr.Key, 0, len(critical))
	for k := range critical {
		keys = append(keys, k)
	}
	// Visit finer keys first so chains collapse to the coarsest member.
	sort.Slice(keys, func(i, j int) bool {
		si, sj := keys[i].Mask.Size(), keys[j].Mask.Size()
		if si != sj {
			return si > sj
		}
		return keys[i].Less(keys[j])
	})
	for _, k := range keys {
		c, ok := critical[k]
		if !ok {
			continue
		}
		for _, sub := range k.SubKeys() {
			if sub == k {
				continue
			}
			anc, ok := critical[sub]
			if !ok {
				continue
			}
			ancN := anc.Counts.Sessions(m)
			if ancN > 0 && float64(c.Counts.Sessions(m)) >= opts.DedupeOverlap*float64(ancN) {
				delete(critical, k)
				break
			}
		}
	}
}

// nearestCritical returns the critical ancestors-or-self of key k with the
// largest mask size (the "nearest" explanation in the DAG). The result is
// sorted for determinism.
func nearestCritical(critical map[attr.Key]*Cluster, k attr.Key) []attr.Key {
	var best []attr.Key
	bestSize := -1
	for _, sub := range k.SubKeys() {
		if _, ok := critical[sub]; !ok {
			continue
		}
		size := sub.Mask.Size()
		switch {
		case size > bestSize:
			bestSize = size
			best = append(best[:0], sub)
		case size == bestSize:
			best = append(best, sub)
		}
	}
	sort.Slice(best, func(i, j int) bool { return best[i].Less(best[j]) })
	return best
}

// criticalDescendants returns the critical refinements of key k (critical
// keys that k subsumes), sorted for determinism.
func criticalDescendants(critical map[attr.Key]*Cluster, k attr.Key) []attr.Key {
	var out []attr.Key
	for ck := range critical {
		if ck != k && k.Subsumes(ck) {
			out = append(out, ck)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// criticalMasks lists the distinct masks of the critical set.
func criticalMasks(set map[attr.Key]*Cluster) []attr.Mask {
	seen := make(map[attr.Mask]bool)
	var out []attr.Mask
	for k := range set {
		if !seen[k.Mask] {
			seen[k.Mask] = true
			out = append(out, k.Mask)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Keys returns the critical cluster keys sorted for deterministic output.
func (r *Result) Keys() []attr.Key {
	out := make([]attr.Key, 0, len(r.Critical))
	for k := range r.Critical {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// CriticalCoverage returns the fraction of all problem sessions covered by
// critical clusters (Table 1, "Mean critical cluster coverage").
func (r *Result) CriticalCoverage() float64 {
	if r.View.GlobalProblems == 0 {
		return 0
	}
	return float64(r.CoveredProblems) / float64(r.View.GlobalProblems)
}

// ProblemCoverage returns the fraction of all problem sessions inside some
// problem cluster (Table 1, "Mean problem cluster coverage").
func (r *Result) ProblemCoverage() float64 {
	if r.View.GlobalProblems == 0 {
		return 0
	}
	return float64(r.ProblemsInProblemClusters) / float64(r.View.GlobalProblems)
}
