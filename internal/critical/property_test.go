package critical

import (
	"testing"
	"testing/quick"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/metric"
)

// TestDetectInvariants drives the detector with randomized small worlds and
// checks structural invariants that must hold regardless of the data:
//
//  1. every critical cluster is a problem cluster;
//  2. covered problem sessions never exceed the global problem count;
//  3. per-cluster attributions sum to the covered counts (no double
//     counting from the equal-split rule);
//  4. attributed sessions of a cluster never exceed its session count.
func TestDetectInvariants(t *testing.T) {
	f := func(cells [12]uint16, probs [12]uint8, seed uint8) bool {
		var sessions []cluster.Lite
		for i := 0; i < 12; i++ {
			n := int(cells[i]%120) + 5
			p := int(probs[i]) % (n + 1)
			asn := int32(i % 4)
			cdn := int32((i / 4) % 3)
			site := int32(int(seed) % 5)
			for j := 0; j < n; j++ {
				var l cluster.Lite
				l.Attrs[attr.ASN] = asn
				l.Attrs[attr.CDN] = cdn
				l.Attrs[attr.Site] = site + int32(j%2)
				if j < p {
					l.Bits |= 1 << metric.BufRatio
				}
				sessions = append(sessions, l)
			}
		}
		tbl := cluster.NewTable(0, sessions, 0)
		th := metric.Default()
		th.MinClusterSessions = 20
		v, err := cluster.BuildView(tbl, metric.BufRatio, th)
		if err != nil {
			return false
		}
		r := Detect(v)

		// (1) every critical key is a problem cluster (dedupe only removes).
		for k := range r.Critical {
			if _, ok := v.Problem[k]; !ok {
				return false
			}
		}
		// (2) coverage bound.
		if r.CoveredProblems > v.GlobalProblems {
			return false
		}
		if r.ProblemsInProblemClusters > v.GlobalProblems {
			return false
		}
		if r.CoveredProblems > r.ProblemsInProblemClusters {
			return false
		}
		// (3) attribution conservation.
		var attrProblems, attrSessions float64
		for _, c := range r.Critical {
			attrProblems += c.AttributedProblems
			attrSessions += c.AttributedSessions
			// (4) per-cluster bound.
			if c.AttributedSessions > float64(c.Counts.Sessions(metric.BufRatio))+1e-6 {
				return false
			}
			if c.AttributedProblems > c.AttributedSessions+1e-6 {
				return false
			}
		}
		if attrProblems > float64(r.CoveredProblems)+1e-6 {
			return false
		}
		if attrProblems < float64(r.CoveredProblems)-1e-6 {
			return false
		}
		_ = attrSessions
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestDetectWithZScoreDisabled re-runs the Fig. 4 example under the paper's
// literal rule (MinZScore = 0) — the worked examples must hold both ways.
func TestDetectWithZScoreDisabled(t *testing.T) {
	var sessions []cluster.Lite
	sessions = addCell(sessions, 0, 0, 100, 30)
	sessions = addCell(sessions, 0, 1, 100, 10)
	sessions = addCell(sessions, 1, 0, 100, 30)
	sessions = addCell(sessions, 1, 1, 400, 20)
	tbl := cluster.NewTable(0, sessions, 0)
	th := metric.Default()
	th.MinClusterSessions = 20
	th.MinZScore = 0
	v, err := cluster.BuildView(tbl, metric.BufRatio, th)
	if err != nil {
		t.Fatal(err)
	}
	r := Detect(v)
	cdn1 := attr.NewKey(map[attr.Dim]int32{attr.CDN: 0})
	if _, ok := r.Critical[cdn1]; !ok {
		t.Fatalf("CDN1 not critical under the literal rule; got %v", r.Keys())
	}
	if len(r.Critical) != 1 {
		t.Errorf("critical set = %v, want exactly {CDN1}", r.Keys())
	}
}
