package critical

import (
	"math"
	"testing"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/metric"
)

// addCell appends n sessions in cell (asn, cdn) (other dims zero), p of
// them BufRatio problems.
func addCell(dst []cluster.Lite, asn, cdn int32, n, p int) []cluster.Lite {
	for i := 0; i < n; i++ {
		var l cluster.Lite
		l.Attrs[attr.ASN] = asn
		l.Attrs[attr.CDN] = cdn
		if i < p {
			l.Bits |= 1 << metric.BufRatio
		}
		dst = append(dst, l)
	}
	return dst
}

func buildView(t *testing.T, sessions []cluster.Lite, minSessions int) *cluster.View {
	t.Helper()
	tbl := cluster.NewTable(0, sessions, 0)
	th := metric.Default()
	th.MinClusterSessions = minSessions
	v, err := cluster.BuildView(tbl, metric.BufRatio, th)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func key(pairs map[attr.Dim]int32) attr.Key { return attr.NewKey(pairs) }

// TestFig4CDNPickedOverPairs encodes the paper's Fig. 4: when one CDN is
// bad across multiple ASNs, the CDN cluster is the critical cluster, not
// the individual ASN-CDN pairs, and not the mildly elevated ASN.
func TestFig4CDNPickedOverPairs(t *testing.T) {
	var sessions []cluster.Lite
	sessions = addCell(sessions, 0, 0, 100, 30) // ASN1,CDN1: 0.3
	sessions = addCell(sessions, 0, 1, 100, 10) // ASN1,CDN2: 0.1
	sessions = addCell(sessions, 1, 0, 100, 30) // ASN2,CDN1: 0.3
	sessions = addCell(sessions, 1, 1, 400, 20) // ASN2,CDN2: 0.05
	v := buildView(t, sessions, 20)

	r := Detect(v)
	cdn1 := key(map[attr.Dim]int32{attr.CDN: 0})
	if _, ok := r.Critical[cdn1]; !ok {
		t.Fatalf("CDN1 not detected as critical; got %v", r.Keys())
	}
	if _, ok := r.Critical[key(map[attr.Dim]int32{attr.ASN: 0, attr.CDN: 0})]; ok {
		t.Error("ASN1∧CDN1 wrongly critical (parent CDN1 explains it)")
	}
	if _, ok := r.Critical[key(map[attr.Dim]int32{attr.ASN: 0})]; ok {
		t.Error("ASN1 wrongly critical (only half its children are problems)")
	}
	if len(r.Critical) != 1 {
		t.Errorf("critical set = %v, want exactly {CDN1}", r.Keys())
	}
	// Coverage: the critical CDN1 covers the 60 problem sessions inside it.
	cc := r.Critical[cdn1]
	if math.Abs(cc.AttributedProblems-60) > 1e-9 {
		t.Errorf("attributed problems = %v, want 60", cc.AttributedProblems)
	}
	if math.Abs(cc.AttributedSessions-200) > 1e-9 {
		t.Errorf("attributed sessions = %v, want 200", cc.AttributedSessions)
	}
	if r.CoveredProblems != 60 {
		t.Errorf("covered problems = %d, want 60", r.CoveredProblems)
	}
}

// TestFig5PhaseTransition encodes the paper's Fig. 5: the combination
// CDN1∧ASN1 is the critical cluster; CDN1 and ASN1 are problem clusters
// only because of it and must not be critical.
func TestFig5PhaseTransition(t *testing.T) {
	var sessions []cluster.Lite
	sessions = addCell(sessions, 0, 0, 100, 60) // the bad combination: 0.6
	sessions = addCell(sessions, 1, 0, 200, 10) // CDN1 elsewhere: 0.05
	sessions = addCell(sessions, 0, 1, 200, 10) // ASN1 elsewhere: 0.05
	sessions = addCell(sessions, 1, 1, 500, 25) // rest: 0.05
	v := buildView(t, sessions, 20)

	// Sanity: CDN1 and ASN1 are problem clusters in the raw data.
	if _, ok := v.Problem[key(map[attr.Dim]int32{attr.CDN: 0})]; !ok {
		t.Fatal("CDN1 should be a (shadow) problem cluster")
	}
	if _, ok := v.Problem[key(map[attr.Dim]int32{attr.ASN: 0})]; !ok {
		t.Fatal("ASN1 should be a (shadow) problem cluster")
	}

	r := Detect(v)
	pair := key(map[attr.Dim]int32{attr.ASN: 0, attr.CDN: 0})
	if _, ok := r.Critical[pair]; !ok {
		t.Fatalf("CDN1∧ASN1 not critical; got %v", r.Keys())
	}
	if len(r.Critical) != 1 {
		t.Errorf("critical set = %v, want exactly {CDN1∧ASN1}", r.Keys())
	}
	// The shadow problem clusters attribute to the critical descendant.
	if got := r.Critical[pair].ProblemClusters; got < 3 {
		t.Errorf("problem clusters attributed = %v, want CDN1, ASN1 and the pair's chain", got)
	}
	// Coverage counts only sessions inside the critical cluster.
	if r.CoveredProblems != 60 {
		t.Errorf("covered problems = %d, want 60", r.CoveredProblems)
	}
	if got := r.CriticalCoverage(); math.Abs(got-60.0/105.0) > 1e-9 {
		t.Errorf("critical coverage = %v, want %v", got, 60.0/105.0)
	}
}

// TestCorrelatedAttributesDeduped encodes paper footnote 5: a site using a
// single CDN produces identical Site and Site∧CDN clusters; the critical
// set keeps the compact Site description only.
func TestCorrelatedAttributesDeduped(t *testing.T) {
	var sessions []cluster.Lite
	// Site dimension: use ASN as "site" stand-in is confusing; build with
	// real Site dim. Site 5 only ever appears with CDN 2.
	add := func(site, cdn int32, n, p int) {
		for i := 0; i < n; i++ {
			var l cluster.Lite
			l.Attrs[attr.Site] = site
			l.Attrs[attr.CDN] = cdn
			if i < p {
				l.Bits |= 1 << metric.BufRatio
			}
			sessions = append(sessions, l)
		}
	}
	add(5, 2, 100, 50) // the bad single-CDN site
	add(1, 0, 300, 15)
	add(2, 1, 300, 15)
	add(3, 2, 300, 15) // CDN2 also serves a healthy site
	v := buildView(t, sessions, 20)

	r := Detect(v)
	site := key(map[attr.Dim]int32{attr.Site: 5})
	both := key(map[attr.Dim]int32{attr.Site: 5, attr.CDN: 2})
	if _, ok := r.Critical[site]; !ok {
		t.Fatalf("Site5 not critical; got %v", r.Keys())
	}
	if _, ok := r.Critical[both]; ok {
		t.Error("Site5∧CDN2 should be deduped into the compact Site5")
	}
	if len(r.Critical) != 1 {
		t.Errorf("critical set = %v, want exactly {Site5}", r.Keys())
	}
}

func TestNoProblemsNoCriticals(t *testing.T) {
	var sessions []cluster.Lite
	sessions = addCell(sessions, 0, 0, 100, 0)
	v := buildView(t, sessions, 20)
	r := Detect(v)
	if len(r.Critical) != 0 || r.CoveredProblems != 0 {
		t.Error("criticals detected without problems")
	}
	if r.CriticalCoverage() != 0 || r.ProblemCoverage() != 0 {
		t.Error("coverage should be 0 with no problems")
	}
}

// TestAttributionTieSplit: a session matching two incomparable critical
// clusters of equal size splits equally between them.
func TestAttributionTieSplit(t *testing.T) {
	var sessions []cluster.Lite
	// Two independent bad single-attribute clusters: ASN 7 and CDN 8,
	// plus an overlap cell belonging to both.
	sessions = addCell(sessions, 7, 8, 40, 24)  // overlap: both match
	sessions = addCell(sessions, 7, 1, 100, 60) // ASN7 elsewhere
	sessions = addCell(sessions, 2, 8, 100, 60) // CDN8 elsewhere
	sessions = addCell(sessions, 2, 1, 200, 10) // ASN2 is healthy off CDN8
	sessions = addCell(sessions, 3, 1, 800, 30) // healthy background
	v := buildView(t, sessions, 20)
	r := Detect(v)

	asn := key(map[attr.Dim]int32{attr.ASN: 7})
	cdn := key(map[attr.Dim]int32{attr.CDN: 8})
	ca, okA := r.Critical[asn]
	cc, okC := r.Critical[cdn]
	if !okA || !okC {
		t.Fatalf("expected ASN7 and CDN8 critical; got %v", r.Keys())
	}
	// If the overlap pair cell is itself critical it would absorb the
	// overlap; with these numbers its parents stay problems after removal,
	// so it must not be.
	if _, ok := r.Critical[key(map[attr.Dim]int32{attr.ASN: 7, attr.CDN: 8})]; ok {
		t.Fatal("overlap cell should not be critical")
	}
	// Each problem session attributes once; totals must add up.
	total := ca.AttributedProblems + cc.AttributedProblems
	if math.Abs(total-float64(r.CoveredProblems)) > 1e-6 {
		t.Errorf("attributed sum %v != covered %d", total, r.CoveredProblems)
	}
	// The overlap's 24 problems split 12/12.
	if math.Abs(ca.AttributedProblems-72) > 1e-6 || math.Abs(cc.AttributedProblems-72) > 1e-6 {
		t.Errorf("attribution = %v / %v, want 72 / 72", ca.AttributedProblems, cc.AttributedProblems)
	}
}

func TestAttributionConservation(t *testing.T) {
	// Attributed problem sessions never exceed covered problems, and
	// covered never exceeds global problems.
	var sessions []cluster.Lite
	sessions = addCell(sessions, 0, 0, 120, 70)
	sessions = addCell(sessions, 1, 1, 90, 40)
	sessions = addCell(sessions, 2, 2, 500, 20)
	v := buildView(t, sessions, 20)
	r := Detect(v)
	var attributed float64
	for _, c := range r.Critical {
		attributed += c.AttributedProblems
	}
	if attributed-float64(r.CoveredProblems) > 1e-6 {
		t.Errorf("attributed %v > covered %d", attributed, r.CoveredProblems)
	}
	if r.CoveredProblems > v.GlobalProblems {
		t.Errorf("covered %d > global %d", r.CoveredProblems, v.GlobalProblems)
	}
	if r.ProblemsInProblemClusters < r.CoveredProblems {
		t.Errorf("problem-cluster coverage %d < critical coverage %d",
			r.ProblemsInProblemClusters, r.CoveredProblems)
	}
}

func TestPassesDownRejectsPartialChildren(t *testing.T) {
	// A cluster whose children are mostly healthy must not be critical
	// even if its own ratio is elevated.
	var sessions []cluster.Lite
	sessions = addCell(sessions, 0, 0, 100, 60) // bad child
	sessions = addCell(sessions, 0, 1, 400, 20) // healthy children dominate
	sessions = addCell(sessions, 0, 2, 400, 20)
	sessions = addCell(sessions, 1, 1, 1000, 50)
	v := buildView(t, sessions, 20)
	r := Detect(v)
	if _, ok := r.Critical[key(map[attr.Dim]int32{attr.ASN: 0})]; ok {
		t.Errorf("ASN0 critical despite mostly healthy children; got %v", r.Keys())
	}
}

func TestOptionsSensitivity(t *testing.T) {
	var sessions []cluster.Lite
	sessions = addCell(sessions, 0, 0, 100, 60)
	sessions = addCell(sessions, 0, 1, 100, 10)
	sessions = addCell(sessions, 1, 1, 800, 40)
	v := buildView(t, sessions, 20)

	strict := DetectOpts(v, Options{ChildProblemFraction: 0.99, DedupeOverlap: 0.95})
	loose := DetectOpts(v, Options{ChildProblemFraction: 0.1, DedupeOverlap: 0.95})
	if len(loose.Critical) < len(strict.Critical) {
		t.Errorf("loosening the child fraction removed criticals: %d vs %d",
			len(loose.Critical), len(strict.Critical))
	}
}
