// Package prof wires the conventional -cpuprofile/-memprofile flags into
// the command-line tools, so future perf work on the aggregation substrate
// can see where time and memory go without ad-hoc instrumentation.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPU begins a CPU profile written to path and returns a stop
// function that ends the profile and closes the file. An empty path is a
// no-op (the returned stop still must be safe to call).
func StartCPU(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("prof: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		if cerr := f.Close(); cerr != nil {
			return nil, fmt.Errorf("prof: %w (and closing: %v)", err, cerr)
		}
		return nil, fmt.Errorf("prof: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "prof: closing cpu profile: %v\n", err)
		}
	}, nil
}

// WriteHeap writes a heap profile to path after a forced GC (so the
// profile reflects live memory, not collectible garbage). An empty path is
// a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("prof: %w", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		if cerr := f.Close(); cerr != nil {
			return fmt.Errorf("prof: %w (and closing: %v)", err, cerr)
		}
		return fmt.Errorf("prof: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("prof: %w", err)
	}
	return nil
}
