// Package attr defines the session attribute space used throughout the
// analysis: the seven client/session attribute dimensions from the paper
// (ASN, CDN, Site, VoD-or-Live, player type, browser, connection type),
// full attribute vectors carried by sessions, and cluster keys — partial
// assignments over a subset of dimensions — together with the subset
// algebra (parents, children, subsumption) that the hierarchical
// clustering and the critical-cluster phase-transition search rely on.
package attr

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Dim identifies one of the seven session attribute dimensions.
type Dim uint8

// The seven attribute dimensions, in the order the paper lists them (§2).
const (
	ASN Dim = iota
	CDN
	Site
	VoDOrLive
	PlayerType
	Browser
	ConnType

	// NumDims is the number of attribute dimensions.
	NumDims = 7
)

var dimNames = [NumDims]string{
	"ASN", "CDN", "Site", "VoDOrLive", "PlayerType", "Browser", "ConnType",
}

// String returns the canonical dimension name.
func (d Dim) String() string {
	if int(d) < len(dimNames) {
		return dimNames[d]
	}
	return fmt.Sprintf("Dim(%d)", uint8(d))
}

// ParseDim converts a dimension name (case-insensitive) into a Dim.
func ParseDim(s string) (Dim, error) {
	for i, n := range dimNames {
		if strings.EqualFold(s, n) {
			return Dim(i), nil
		}
	}
	return 0, fmt.Errorf("attr: unknown dimension %q", s)
}

// Dims returns all dimensions in order.
func Dims() [NumDims]Dim {
	var ds [NumDims]Dim
	for i := range ds {
		ds[i] = Dim(i)
	}
	return ds
}

// Mask is a bit set over the seven dimensions: bit i is set when Dim(i)
// participates in a cluster key. The zero Mask is the root of the cluster
// hierarchy (no attributes fixed; all sessions).
type Mask uint8

// AllDims is the mask with every dimension set (a leaf-level key).
const AllDims Mask = 1<<NumDims - 1

// MaskOf builds a Mask from a list of dimensions.
func MaskOf(dims ...Dim) Mask {
	var m Mask
	for _, d := range dims {
		m |= 1 << d
	}
	return m
}

// Has reports whether dimension d is in the mask.
func (m Mask) Has(d Dim) bool { return m&(1<<d) != 0 }

// With returns the mask with dimension d added.
func (m Mask) With(d Dim) Mask { return m | 1<<d }

// Without returns the mask with dimension d removed.
func (m Mask) Without(d Dim) Mask { return m &^ (1 << d) }

// Size returns the number of dimensions in the mask.
func (m Mask) Size() int { return bits.OnesCount8(uint8(m)) }

// SubsetOf reports whether every dimension of m is also in n.
func (m Mask) SubsetOf(n Mask) bool { return m&^n == 0 }

// Dims returns the dimensions present in the mask, in order.
func (m Mask) Dims() []Dim {
	ds := make([]Dim, 0, m.Size())
	for d := Dim(0); d < NumDims; d++ {
		if m.Has(d) {
			ds = append(ds, d)
		}
	}
	return ds
}

// String renders the mask as a comma-separated list of dimension names in
// the paper's bracketed wildcard style, e.g. "[*, CDN, *, *, *, *, ConnType]".
func (m Mask) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for d := Dim(0); d < NumDims; d++ {
		if d > 0 {
			b.WriteString(", ")
		}
		if m.Has(d) {
			b.WriteString(d.String())
		} else {
			b.WriteByte('*')
		}
	}
	b.WriteByte(']')
	return b.String()
}

// AllMasks returns every non-empty mask (the 127 attribute combinations a
// session belongs to), ordered by size then numeric value, so coarser
// combinations come first. The result is freshly allocated.
func AllMasks() []Mask {
	ms := make([]Mask, 0, int(AllDims))
	for m := Mask(1); m <= AllDims; m++ {
		ms = append(ms, m)
	}
	sort.Slice(ms, func(i, j int) bool {
		si, sj := ms[i].Size(), ms[j].Size()
		if si != sj {
			return si < sj
		}
		return ms[i] < ms[j]
	})
	return ms
}

// MasksUpTo returns every non-empty mask with at most maxDims dimensions,
// in the same order as AllMasks. maxDims values outside [1, NumDims] are
// clamped.
func MasksUpTo(maxDims int) []Mask {
	if maxDims < 1 {
		maxDims = 1
	}
	if maxDims > NumDims {
		maxDims = NumDims
	}
	all := AllMasks()
	out := all[:0:0]
	for _, m := range all {
		if m.Size() <= maxDims {
			out = append(out, m)
		}
	}
	return out
}

// Vector is a full attribute assignment for a session: one value identifier
// per dimension. Value identifiers index into a Space catalog; they carry no
// meaning of their own.
type Vector [NumDims]int32

// Get returns the value of dimension d.
func (v Vector) Get(d Dim) int32 { return v[d] }

// Key identifies a cluster: a set of fixed dimensions (Mask) together with
// their values. Positions outside the mask are always zero, so Key values
// are canonical and directly comparable (usable as map keys).
//
// In the paper's notation, the key with Mask={ASN,CDN} and values
// {ASN:1, CDN:2} is the cluster "ASN=ASN1, CDN=CDN2".
type Key struct {
	Mask Mask
	Vals Vector
}

// Root is the key of the hierarchy root: no attributes fixed.
var Root = Key{}

// KeyOf projects the full vector v onto mask m, producing a canonical Key.
func KeyOf(v Vector, m Mask) Key {
	var k Key
	k.Mask = m
	for d := Dim(0); d < NumDims; d++ {
		if m.Has(d) {
			k.Vals[d] = v[d]
		}
	}
	return k
}

// NewKey builds a key from explicit dimension/value pairs.
func NewKey(pairs map[Dim]int32) Key {
	var k Key
	for d, v := range pairs {
		k.Mask = k.Mask.With(d)
		k.Vals[d] = v
	}
	return k
}

// Size returns the number of fixed dimensions.
func (k Key) Size() int { return k.Mask.Size() }

// Less orders keys by mask then values — the canonical ordering every
// deterministic report and attribution pass sorts by.
func (k Key) Less(other Key) bool {
	if k.Mask != other.Mask {
		return k.Mask < other.Mask
	}
	for d := Dim(0); d < NumDims; d++ {
		if k.Vals[d] != other.Vals[d] {
			return k.Vals[d] < other.Vals[d]
		}
	}
	return false
}

// Matches reports whether session attribute vector v agrees with the key on
// every fixed dimension.
func (k Key) Matches(v Vector) bool {
	for d := Dim(0); d < NumDims; d++ {
		if k.Mask.Has(d) && k.Vals[d] != v[d] {
			return false
		}
	}
	return true
}

// Subsumes reports whether k is an ancestor-or-self of other in the cluster
// DAG: k's fixed dimensions are a subset of other's and the values agree.
// The root subsumes everything.
func (k Key) Subsumes(other Key) bool {
	if !k.Mask.SubsetOf(other.Mask) {
		return false
	}
	for d := Dim(0); d < NumDims; d++ {
		if k.Mask.Has(d) && k.Vals[d] != other.Vals[d] {
			return false
		}
	}
	return true
}

// Parent returns the key with dimension d removed. Removing a dimension not
// in the mask returns k unchanged.
func (k Key) Parent(d Dim) Key {
	if !k.Mask.Has(d) {
		return k
	}
	k.Mask = k.Mask.Without(d)
	k.Vals[d] = 0
	return k
}

// Parents returns the immediate parents of k in the cluster DAG: every key
// obtained by removing exactly one dimension. The root has no parents.
func (k Key) Parents() []Key {
	if k.Mask == 0 {
		return nil
	}
	ps := make([]Key, 0, k.Size())
	for d := Dim(0); d < NumDims; d++ {
		if k.Mask.Has(d) {
			ps = append(ps, k.Parent(d))
		}
	}
	return ps
}

// Child returns the key with dimension d fixed to value val.
func (k Key) Child(d Dim, val int32) Key {
	k.Mask = k.Mask.With(d)
	k.Vals[d] = val
	return k
}

// Project returns the sub-key of k restricted to mask m. Dimensions of m
// that k does not fix are dropped, so the result's mask is k.Mask ∩ m.
func (k Key) Project(m Mask) Key {
	var out Key
	out.Mask = k.Mask & m
	for d := Dim(0); d < NumDims; d++ {
		if out.Mask.Has(d) {
			out.Vals[d] = k.Vals[d]
		}
	}
	return out
}

// SubKeys returns every non-root ancestor-or-self key of k (all non-empty
// sub-masks of k.Mask with k's values), ordered coarse to fine. For a key of
// size s this is 2^s − 1 keys.
func (k Key) SubKeys() []Key {
	n := k.Size()
	out := make([]Key, 0, 1<<n-1)
	// Iterate sub-masks of k.Mask using the standard sub-mask walk.
	for sub := k.Mask; sub > 0; sub = (sub - 1) & k.Mask {
		out = append(out, k.Project(sub))
	}
	sort.Slice(out, func(i, j int) bool {
		si, sj := out[i].Mask.Size(), out[j].Mask.Size()
		if si != sj {
			return si < sj
		}
		return out[i].Mask < out[j].Mask
	})
	return out
}

// String renders the key in the paper's style using raw value identifiers,
// e.g. "[ASN=17, CDN=2, *, *, *, *, *]". Use Space.FormatKey for named
// values.
func (k Key) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for d := Dim(0); d < NumDims; d++ {
		if d > 0 {
			b.WriteString(", ")
		}
		if k.Mask.Has(d) {
			fmt.Fprintf(&b, "%s=%d", d, k.Vals[d])
		} else {
			b.WriteByte('*')
		}
	}
	b.WriteByte(']')
	return b.String()
}
