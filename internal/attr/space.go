package attr

import (
	"fmt"
	"strconv"
	"strings"
)

// Space is the catalog of legal values for each dimension: it maps value
// identifiers to human-readable names and back. A Space is immutable after
// construction and safe for concurrent use.
type Space struct {
	names   [NumDims][]string
	indexes [NumDims]map[string]int32
}

// NewSpace builds a Space from per-dimension value name lists. Every
// dimension must have at least one value; names within a dimension must be
// unique.
func NewSpace(names map[Dim][]string) (*Space, error) {
	s := &Space{}
	for d := Dim(0); d < NumDims; d++ {
		vals := names[d]
		if len(vals) == 0 {
			return nil, fmt.Errorf("attr: dimension %s has no values", d)
		}
		s.names[d] = append([]string(nil), vals...)
		s.indexes[d] = make(map[string]int32, len(vals))
		for i, n := range vals {
			if _, dup := s.indexes[d][n]; dup {
				return nil, fmt.Errorf("attr: dimension %s has duplicate value %q", d, n)
			}
			s.indexes[d][n] = int32(i)
		}
	}
	return s, nil
}

// Cardinality returns the number of values of dimension d.
func (s *Space) Cardinality(d Dim) int { return len(s.names[d]) }

// Name returns the name of value id in dimension d, or a numeric fallback
// for out-of-range ids.
func (s *Space) Name(d Dim, id int32) string {
	if id >= 0 && int(id) < len(s.names[d]) {
		return s.names[d][id]
	}
	return fmt.Sprintf("%s#%d", d, id)
}

// Lookup resolves a value name in dimension d to its identifier.
func (s *Space) Lookup(d Dim, name string) (int32, bool) {
	id, ok := s.indexes[d][name]
	return id, ok
}

// Valid reports whether vector v is within the catalog on every dimension.
func (s *Space) Valid(v Vector) bool {
	for d := Dim(0); d < NumDims; d++ {
		if v[d] < 0 || int(v[d]) >= len(s.names[d]) {
			return false
		}
	}
	return true
}

// FormatKey renders a key with named values, in the compact style used in
// reports, e.g. "CDN=cdn-03, ConnType=MobileWireless". The root renders as
// "(root)".
func (s *Space) FormatKey(k Key) string {
	if k.Mask == 0 {
		return "(root)"
	}
	var b strings.Builder
	first := true
	for d := Dim(0); d < NumDims; d++ {
		if !k.Mask.Has(d) {
			continue
		}
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(d.String())
		b.WriteByte('=')
		b.WriteString(s.Name(d, k.Vals[d]))
	}
	return b.String()
}

// ParseKey parses the compact "Dim=value, Dim=value" syntax produced by
// FormatKey (and accepted on command lines). Values are resolved by name
// first and then, failing that, as raw integer identifiers. "(root)" and the
// empty string parse to the root key.
func (s *Space) ParseKey(text string) (Key, error) {
	text = strings.TrimSpace(text)
	if text == "" || text == "(root)" {
		return Root, nil
	}
	var k Key
	for _, part := range strings.Split(text, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.IndexByte(part, '=')
		if eq < 0 {
			return Root, fmt.Errorf("attr: bad key component %q (want Dim=value)", part)
		}
		d, err := ParseDim(strings.TrimSpace(part[:eq]))
		if err != nil {
			return Root, err
		}
		if k.Mask.Has(d) {
			return Root, fmt.Errorf("attr: dimension %s specified twice", d)
		}
		valText := strings.TrimSpace(part[eq+1:])
		id, ok := s.Lookup(d, valText)
		if !ok {
			n, err := strconv.ParseInt(valText, 10, 32)
			if err != nil || n < 0 || int(n) >= s.Cardinality(d) {
				return Root, fmt.Errorf("attr: unknown %s value %q", d, valText)
			}
			id = int32(n)
		}
		k = k.Child(d, id)
	}
	return k, nil
}
