package attr

import (
	"testing"
	"testing/quick"
)

func TestMaskBasics(t *testing.T) {
	m := MaskOf(ASN, CDN)
	if !m.Has(ASN) || !m.Has(CDN) {
		t.Fatalf("MaskOf(ASN, CDN) = %v, missing dims", m)
	}
	if m.Has(Site) {
		t.Errorf("mask %v unexpectedly has Site", m)
	}
	if got := m.Size(); got != 2 {
		t.Errorf("Size() = %d, want 2", got)
	}
	if got := m.With(Site).Size(); got != 3 {
		t.Errorf("With(Site).Size() = %d, want 3", got)
	}
	if got := m.Without(CDN); got != MaskOf(ASN) {
		t.Errorf("Without(CDN) = %v, want %v", got, MaskOf(ASN))
	}
	if !MaskOf(ASN).SubsetOf(m) {
		t.Errorf("MaskOf(ASN).SubsetOf(%v) = false, want true", m)
	}
	if m.SubsetOf(MaskOf(ASN)) {
		t.Errorf("%v.SubsetOf(ASN) = true, want false", m)
	}
}

func TestMaskDims(t *testing.T) {
	m := MaskOf(Site, ConnType, ASN)
	got := m.Dims()
	want := []Dim{ASN, Site, ConnType}
	if len(got) != len(want) {
		t.Fatalf("Dims() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Dims()[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestAllMasks(t *testing.T) {
	ms := AllMasks()
	if len(ms) != 127 {
		t.Fatalf("len(AllMasks()) = %d, want 127", len(ms))
	}
	seen := make(map[Mask]bool)
	prevSize := 0
	for _, m := range ms {
		if m == 0 {
			t.Fatal("AllMasks contains the empty mask")
		}
		if seen[m] {
			t.Fatalf("AllMasks contains duplicate %v", m)
		}
		seen[m] = true
		if m.Size() < prevSize {
			t.Fatalf("AllMasks not ordered by size: %v after size %d", m, prevSize)
		}
		prevSize = m.Size()
	}
}

func TestMasksUpTo(t *testing.T) {
	cases := []struct {
		max  int
		want int
	}{
		{1, 7},
		{2, 7 + 21},
		{7, 127},
		{0, 7},    // clamped up
		{99, 127}, // clamped down
	}
	for _, c := range cases {
		if got := len(MasksUpTo(c.max)); got != c.want {
			t.Errorf("len(MasksUpTo(%d)) = %d, want %d", c.max, got, c.want)
		}
	}
}

func TestKeyOfCanonical(t *testing.T) {
	v := Vector{10, 20, 30, 1, 2, 3, 4}
	k := KeyOf(v, MaskOf(CDN, ConnType))
	if k.Vals[CDN] != 20 || k.Vals[ConnType] != 4 {
		t.Errorf("KeyOf kept wrong values: %v", k)
	}
	// Positions outside the mask must be zeroed for canonical equality.
	for d := Dim(0); d < NumDims; d++ {
		if !k.Mask.Has(d) && k.Vals[d] != 0 {
			t.Errorf("KeyOf left non-zero value at unmasked dim %v: %v", d, k)
		}
	}
	k2 := KeyOf(Vector{99, 20, 99, 99, 99, 99, 4}, MaskOf(CDN, ConnType))
	if k != k2 {
		t.Errorf("keys with same projection differ: %v vs %v", k, k2)
	}
}

func TestKeyMatches(t *testing.T) {
	v := Vector{10, 20, 30, 1, 2, 3, 4}
	k := KeyOf(v, MaskOf(ASN, Site))
	if !k.Matches(v) {
		t.Errorf("key %v does not match its source vector", k)
	}
	v2 := v
	v2[Site] = 31
	if k.Matches(v2) {
		t.Errorf("key %v matches vector with different Site", k)
	}
	if !Root.Matches(v) {
		t.Error("root does not match an arbitrary vector")
	}
}

func TestKeySubsumes(t *testing.T) {
	v := Vector{10, 20, 30, 1, 2, 3, 4}
	child := KeyOf(v, MaskOf(ASN, CDN, Site))
	parent := KeyOf(v, MaskOf(ASN, CDN))
	if !parent.Subsumes(child) {
		t.Errorf("%v should subsume %v", parent, child)
	}
	if child.Subsumes(parent) {
		t.Errorf("%v should not subsume %v", child, parent)
	}
	if !parent.Subsumes(parent) {
		t.Error("Subsumes not reflexive")
	}
	other := parent
	other.Vals[ASN] = 11
	if other.Subsumes(child) {
		t.Errorf("%v should not subsume %v (value mismatch)", other, child)
	}
	if !Root.Subsumes(child) {
		t.Error("root should subsume every key")
	}
}

func TestKeyParents(t *testing.T) {
	v := Vector{10, 20, 30, 1, 2, 3, 4}
	k := KeyOf(v, MaskOf(ASN, CDN, ConnType))
	ps := k.Parents()
	if len(ps) != 3 {
		t.Fatalf("len(Parents()) = %d, want 3", len(ps))
	}
	for _, p := range ps {
		if p.Size() != 2 {
			t.Errorf("parent %v has size %d, want 2", p, p.Size())
		}
		if !p.Subsumes(k) {
			t.Errorf("parent %v does not subsume child %v", p, k)
		}
	}
	if got := Root.Parents(); got != nil {
		t.Errorf("Root.Parents() = %v, want nil", got)
	}
	if got := k.Parent(Site); got != k {
		t.Errorf("removing absent dim changed key: %v", got)
	}
}

func TestKeySubKeys(t *testing.T) {
	v := Vector{10, 20, 30, 1, 2, 3, 4}
	k := KeyOf(v, MaskOf(ASN, CDN, Site))
	subs := k.SubKeys()
	if len(subs) != 7 { // 2^3 - 1
		t.Fatalf("len(SubKeys()) = %d, want 7", len(subs))
	}
	for i, sk := range subs {
		if !sk.Subsumes(k) {
			t.Errorf("SubKeys()[%d] = %v does not subsume %v", i, sk, k)
		}
		if i > 0 && subs[i-1].Mask.Size() > sk.Mask.Size() {
			t.Errorf("SubKeys not ordered coarse-to-fine at %d", i)
		}
	}
	if subs[len(subs)-1] != k {
		t.Errorf("finest SubKey = %v, want the key itself", subs[len(subs)-1])
	}
}

func TestKeyProject(t *testing.T) {
	v := Vector{10, 20, 30, 1, 2, 3, 4}
	k := KeyOf(v, MaskOf(ASN, CDN, Site))
	p := k.Project(MaskOf(CDN, ConnType)) // ConnType not in k: dropped
	if p.Mask != MaskOf(CDN) {
		t.Errorf("Project mask = %v, want %v", p.Mask, MaskOf(CDN))
	}
	if p.Vals[CDN] != 20 {
		t.Errorf("Project value = %d, want 20", p.Vals[CDN])
	}
}

func TestParseDim(t *testing.T) {
	for d := Dim(0); d < NumDims; d++ {
		got, err := ParseDim(d.String())
		if err != nil || got != d {
			t.Errorf("ParseDim(%q) = %v, %v; want %v", d.String(), got, err, d)
		}
	}
	if _, err := ParseDim("Bogus"); err == nil {
		t.Error("ParseDim(Bogus) succeeded, want error")
	}
}

// Property: projecting a vector onto a mask and testing Matches is always
// consistent, and parents always subsume children.
func TestKeyProperties(t *testing.T) {
	f := func(raw [NumDims]int32, maskBits uint8) bool {
		var v Vector
		for i := range raw {
			v[i] = raw[i] & 0xffff // keep ids small and non-negative
			if v[i] < 0 {
				v[i] = -v[i]
			}
		}
		m := Mask(maskBits) & AllDims
		if m == 0 {
			m = MaskOf(ASN)
		}
		k := KeyOf(v, m)
		if !k.Matches(v) {
			return false
		}
		for _, p := range k.Parents() {
			if !p.Subsumes(k) || !p.Matches(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func testSpace(t *testing.T) *Space {
	t.Helper()
	s, err := NewSpace(map[Dim][]string{
		ASN:        {"AS100", "AS200", "AS300"},
		CDN:        {"cdn-a", "cdn-b"},
		Site:       {"site-1", "site-2"},
		VoDOrLive:  {"VoD", "Live"},
		PlayerType: {"Flash", "HTML5"},
		Browser:    {"Chrome", "Firefox"},
		ConnType:   {"DSL", "MobileWireless"},
	})
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	return s
}

func TestSpaceLookup(t *testing.T) {
	s := testSpace(t)
	if got := s.Cardinality(ASN); got != 3 {
		t.Errorf("Cardinality(ASN) = %d, want 3", got)
	}
	id, ok := s.Lookup(CDN, "cdn-b")
	if !ok || id != 1 {
		t.Errorf("Lookup(CDN, cdn-b) = %d, %v; want 1, true", id, ok)
	}
	if _, ok := s.Lookup(CDN, "nope"); ok {
		t.Error("Lookup of unknown value succeeded")
	}
	if got := s.Name(ASN, 2); got != "AS300" {
		t.Errorf("Name(ASN, 2) = %q, want AS300", got)
	}
	if got := s.Name(ASN, 99); got != "ASN#99" {
		t.Errorf("Name out of range = %q, want fallback", got)
	}
}

func TestSpaceValid(t *testing.T) {
	s := testSpace(t)
	if !s.Valid(Vector{0, 1, 1, 0, 1, 0, 1}) {
		t.Error("Valid rejected an in-range vector")
	}
	if s.Valid(Vector{3, 0, 0, 0, 0, 0, 0}) {
		t.Error("Valid accepted out-of-range ASN")
	}
	if s.Valid(Vector{-1, 0, 0, 0, 0, 0, 0}) {
		t.Error("Valid accepted negative id")
	}
}

func TestSpaceFormatParseRoundTrip(t *testing.T) {
	s := testSpace(t)
	k := NewKey(map[Dim]int32{CDN: 1, ConnType: 1})
	text := s.FormatKey(k)
	if text != "CDN=cdn-b, ConnType=MobileWireless" {
		t.Errorf("FormatKey = %q", text)
	}
	back, err := s.ParseKey(text)
	if err != nil {
		t.Fatalf("ParseKey(%q): %v", text, err)
	}
	if back != k {
		t.Errorf("round trip = %v, want %v", back, k)
	}
	root, err := s.ParseKey("(root)")
	if err != nil || root != Root {
		t.Errorf("ParseKey((root)) = %v, %v", root, err)
	}
	if _, err := s.ParseKey("CDN=unknown"); err == nil {
		t.Error("ParseKey accepted unknown value")
	}
	if _, err := s.ParseKey("CDN=0, CDN=1"); err == nil {
		t.Error("ParseKey accepted duplicate dimension")
	}
	// Numeric fallback.
	k2, err := s.ParseKey("ASN=2")
	if err != nil || k2.Vals[ASN] != 2 {
		t.Errorf("ParseKey(ASN=2) = %v, %v", k2, err)
	}
}

func TestNewSpaceErrors(t *testing.T) {
	_, err := NewSpace(map[Dim][]string{})
	if err == nil {
		t.Error("NewSpace with no values succeeded")
	}
	names := map[Dim][]string{}
	for d := Dim(0); d < NumDims; d++ {
		names[d] = []string{"x", "x"}
	}
	if _, err := NewSpace(names); err == nil {
		t.Error("NewSpace with duplicate names succeeded")
	}
}
