package attr

import "testing"

// FuzzParseKey ensures the key parser never panics and that successfully
// parsed keys re-format and re-parse to themselves.
func FuzzParseKey(f *testing.F) {
	space, err := NewSpace(map[Dim][]string{
		ASN:        {"AS1", "AS2", "AS3"},
		CDN:        {"cdn-a", "cdn-b"},
		Site:       {"s1", "s2"},
		VoDOrLive:  {"VoD", "Live"},
		PlayerType: {"Flash", "HTML5"},
		Browser:    {"Chrome", "Safari"},
		ConnType:   {"DSL", "Mobile"},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add("CDN=cdn-b, ConnType=Mobile")
	f.Add("(root)")
	f.Add("ASN=2")
	f.Add("ASN=AS1, ASN=AS2")
	f.Add("Bogus=1")
	f.Add(",,,=,")
	f.Fuzz(func(t *testing.T, text string) {
		k, err := space.ParseKey(text)
		if err != nil {
			return
		}
		back, err := space.ParseKey(space.FormatKey(k))
		if err != nil {
			t.Fatalf("formatted key failed to re-parse: %v", err)
		}
		if back != k {
			t.Fatalf("round trip changed key: %v vs %v", back, k)
		}
	})
}
