// Package cdn models content delivery for the behavioural simulation path:
// server selection, per-(CDN kind, client region) path quality, and
// capacity/overload dynamics. The paper's root causes — in-house CDNs with
// thin footprints, a shared global CDN deprioritising low-end sites,
// Chinese clients fetching player modules from US CDNs — are all expressible
// as combinations of this model's knobs.
package cdn

import (
	"fmt"
	"math"

	"repro/internal/stats"
	"repro/internal/world"
)

// Config parameterises the delivery model.
type Config struct {
	Seed uint64
	// BaseThroughputKbps is the nominal per-session delivery rate from a
	// well-provisioned CDN edge over a good path.
	BaseThroughputKbps float64
	// BaseRTTms is the nominal round-trip time to a nearby edge.
	BaseRTTms float64
	// BaseFailProb is the background connection-failure probability.
	BaseFailProb float64
}

// DefaultConfig returns delivery parameters matching the 2013-era access
// networks of the paper.
func DefaultConfig() Config {
	return Config{
		Seed:               1,
		BaseThroughputKbps: 5200,
		BaseRTTms:          35,
		BaseFailProb:       0.004,
	}
}

// Validate reports the first invalid field.
func (c Config) Validate() error {
	switch {
	case c.BaseThroughputKbps <= 0:
		return fmt.Errorf("cdn: BaseThroughputKbps %v must be positive", c.BaseThroughputKbps)
	case c.BaseRTTms <= 0:
		return fmt.Errorf("cdn: BaseRTTms %v must be positive", c.BaseRTTms)
	case c.BaseFailProb < 0 || c.BaseFailProb >= 1:
		return fmt.Errorf("cdn: BaseFailProb %v out of [0,1)", c.BaseFailProb)
	}
	return nil
}

// Delivery is the path a session gets: the sustainable delivery rate, the
// round-trip time, and the probability the connection fails outright.
type Delivery struct {
	ThroughputKbps float64
	RTTms          float64
	FailProb       float64
}

// Model is the delivery simulator for one world. It is immutable and safe
// for concurrent use; per-call randomness comes from the caller's RNG.
type Model struct {
	cfg Config
	w   *world.World
}

// New builds a delivery model over a world.
func New(w *world.World, cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Model{cfg: cfg, w: w}, nil
}

// footprint returns the multiplier describing how well a CDN kind reaches a
// client region: global CDNs have edges everywhere; in-house CDNs serve
// from few locations; ISP-run CDNs are excellent inside their footprint
// (modelled as US) and poor elsewhere.
func footprint(kind world.CDNKind, region world.Region) (throughputMul, rttMul, failMul float64) {
	switch kind {
	case world.CDNGlobal:
		switch region {
		case world.RegionUS, world.RegionEurope:
			return 1.0, 1.0, 1.0
		case world.RegionChina:
			return 0.55, 2.8, 2.2
		default:
			return 0.7, 1.9, 1.6
		}
	case world.CDNDatacenter:
		switch region {
		case world.RegionUS:
			return 1.0, 1.1, 1.0
		case world.RegionEurope:
			return 0.85, 1.6, 1.2
		default:
			return 0.55, 2.6, 1.9
		}
	case world.CDNInHouse:
		// Single-site origins: fine nearby, painful across oceans.
		switch region {
		case world.RegionUS:
			return 0.8, 1.3, 1.4
		default:
			return 0.4, 3.2, 2.6
		}
	default: // CDNISPRun
		switch region {
		case world.RegionUS:
			return 1.1, 0.9, 0.9
		default:
			return 0.45, 2.9, 2.1
		}
	}
}

// Deliver computes the delivery a session receives from cdnID toward asnID
// under the given CDN load (1.0 = at capacity; beyond it throughput
// degrades and failures climb — the paper's "CDN under overload").
// lowPriority marks traffic the shared global CDN deprioritises under load
// (the paper's join-failure anecdote for low-end providers).
func (m *Model) Deliver(r *stats.RNG, cdnID, asnID int32, load float64, lowPriority bool) Delivery {
	c := &m.w.CDNs[cdnID]
	a := &m.w.ASNs[asnID]
	tpMul, rttMul, failMul := footprint(c.Kind, a.Region)

	d := Delivery{
		ThroughputKbps: m.cfg.BaseThroughputKbps * tpMul * r.LogNormal(0, 0.35),
		RTTms:          m.cfg.BaseRTTms * rttMul * r.LogNormal(0, 0.25),
		FailProb:       m.cfg.BaseFailProb * failMul,
	}

	if load > 1 {
		over := load - 1
		// Throughput collapses roughly linearly past capacity; failures
		// grow faster for deprioritised traffic.
		d.ThroughputKbps /= 1 + 1.5*over
		d.RTTms *= 1 + over
		d.FailProb += 0.15 * over
		if lowPriority {
			d.FailProb += 0.35 * over
		}
	} else if lowPriority {
		// Even off-peak, deprioritised traffic sees mildly elevated
		// failures (lower-tier service).
		d.FailProb += 0.01
	}

	d.FailProb = stats.Clamp(d.FailProb, 0, 0.95)
	if d.ThroughputKbps < 1 {
		d.ThroughputKbps = 1
	}
	return d
}

// LoadCurve returns a diurnal CDN load profile: the fraction of capacity in
// use at hour-of-day h (0–23), peaking in the evening. overProvision > 1
// keeps the CDN under capacity all day; < 1 pushes it into overload at the
// peak (the failure anecdotes of Table 3).
func LoadCurve(h int, overProvision float64) float64 {
	// Same diurnal shape as the session volume (peak at 20:00).
	shape := 1 + 0.3*math.Sin(2*math.Pi*(float64(h)-14)/24)
	if overProvision <= 0 {
		overProvision = 1
	}
	return shape / overProvision
}
