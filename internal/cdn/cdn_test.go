package cdn

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/world"
)

func model(t *testing.T) (*Model, *world.World) {
	t.Helper()
	w, err := world.New(world.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(w, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m, w
}

func firstOf(t *testing.T, w *world.World, kind world.CDNKind) int32 {
	t.Helper()
	ids := w.CDNsWhere(func(c *world.CDN) bool { return c.Kind == kind })
	if len(ids) == 0 {
		t.Fatalf("no CDN of kind %v", kind)
	}
	return ids[0]
}

func firstASN(t *testing.T, w *world.World, region world.Region) int32 {
	t.Helper()
	ids := w.ASNsWhere(func(a *world.ASN) bool { return a.Region == region })
	if len(ids) == 0 {
		t.Fatalf("no ASN in region %v", region)
	}
	return ids[0]
}

func meanDelivery(m *Model, cdnID, asnID int32, load float64, lowPri bool) Delivery {
	r := stats.NewRNG(9)
	var sum Delivery
	const n = 400
	for i := 0; i < n; i++ {
		d := m.Deliver(r, cdnID, asnID, load, lowPri)
		sum.ThroughputKbps += d.ThroughputKbps
		sum.RTTms += d.RTTms
		sum.FailProb += d.FailProb
	}
	sum.ThroughputKbps /= n
	sum.RTTms /= n
	sum.FailProb /= n
	return sum
}

func TestRegionalFootprint(t *testing.T) {
	m, w := model(t)
	global := firstOf(t, w, world.CDNGlobal)
	us := firstASN(t, w, world.RegionUS)
	china := firstASN(t, w, world.RegionChina)

	dUS := meanDelivery(m, global, us, 0.5, false)
	dCN := meanDelivery(m, global, china, 0.5, false)
	if dCN.ThroughputKbps >= dUS.ThroughputKbps {
		t.Errorf("China throughput %v >= US %v from a global CDN", dCN.ThroughputKbps, dUS.ThroughputKbps)
	}
	if dCN.RTTms <= dUS.RTTms {
		t.Errorf("China RTT %v <= US %v", dCN.RTTms, dUS.RTTms)
	}
}

func TestInHouseCDNWorseAbroad(t *testing.T) {
	m, w := model(t)
	inhouse := firstOf(t, w, world.CDNInHouse)
	global := firstOf(t, w, world.CDNGlobal)
	asia := firstASN(t, w, world.RegionAsiaOther)
	dIn := meanDelivery(m, inhouse, asia, 0.5, false)
	dGl := meanDelivery(m, global, asia, 0.5, false)
	if dIn.ThroughputKbps >= dGl.ThroughputKbps {
		t.Errorf("in-house throughput %v should trail global %v in Asia",
			dIn.ThroughputKbps, dGl.ThroughputKbps)
	}
}

func TestOverloadDegrades(t *testing.T) {
	m, w := model(t)
	global := firstOf(t, w, world.CDNGlobal)
	us := firstASN(t, w, world.RegionUS)
	normal := meanDelivery(m, global, us, 0.8, false)
	overloaded := meanDelivery(m, global, us, 1.5, false)
	if overloaded.ThroughputKbps >= normal.ThroughputKbps*0.8 {
		t.Errorf("overload throughput %v vs normal %v", overloaded.ThroughputKbps, normal.ThroughputKbps)
	}
	if overloaded.FailProb <= normal.FailProb {
		t.Errorf("overload failures %v vs normal %v", overloaded.FailProb, normal.FailProb)
	}
}

func TestLowPriorityFailsMoreUnderLoad(t *testing.T) {
	m, w := model(t)
	global := firstOf(t, w, world.CDNGlobal)
	us := firstASN(t, w, world.RegionUS)
	regular := meanDelivery(m, global, us, 1.3, false)
	lowPri := meanDelivery(m, global, us, 1.3, true)
	if lowPri.FailProb <= regular.FailProb {
		t.Errorf("low-priority failures %v should exceed regular %v (paper Table 3)",
			lowPri.FailProb, regular.FailProb)
	}
	// Off-peak the penalty is mild but present.
	offPeakReg := meanDelivery(m, global, us, 0.5, false)
	offPeakLow := meanDelivery(m, global, us, 0.5, true)
	if offPeakLow.FailProb <= offPeakReg.FailProb {
		t.Error("low-priority should see mildly elevated failures off-peak")
	}
}

func TestDeliveryBounds(t *testing.T) {
	m, w := model(t)
	r := stats.NewRNG(3)
	for i := 0; i < 2000; i++ {
		cdnID := int32(i % len(w.CDNs))
		asnID := int32(i % len(w.ASNs))
		d := m.Deliver(r, cdnID, asnID, 3.0, i%2 == 0)
		if d.ThroughputKbps < 1 {
			t.Fatalf("throughput %v below floor", d.ThroughputKbps)
		}
		if d.FailProb < 0 || d.FailProb > 0.95 {
			t.Fatalf("fail prob %v out of bounds", d.FailProb)
		}
		if d.RTTms <= 0 {
			t.Fatalf("non-positive RTT %v", d.RTTms)
		}
	}
}

func TestLoadCurve(t *testing.T) {
	peak := LoadCurve(20, 1)
	trough := LoadCurve(8, 1)
	if peak <= trough {
		t.Errorf("peak load %v <= trough %v", peak, trough)
	}
	if LoadCurve(20, 2) >= peak {
		t.Error("over-provisioning should lower load")
	}
	if LoadCurve(20, 0) != peak {
		t.Error("zero over-provision should default to 1")
	}
	// An under-provisioned CDN goes past capacity at the peak.
	if LoadCurve(20, 0.8) <= 1 {
		t.Error("under-provisioned CDN should exceed capacity at peak")
	}
}

func TestConfigValidate(t *testing.T) {
	w, _ := world.New(world.DefaultConfig())
	bad := []Config{
		{BaseThroughputKbps: 0, BaseRTTms: 10, BaseFailProb: 0.01},
		{BaseThroughputKbps: 100, BaseRTTms: 0, BaseFailProb: 0.01},
		{BaseThroughputKbps: 100, BaseRTTms: 10, BaseFailProb: 1},
	}
	for i, c := range bad {
		if _, err := New(w, c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
