// Package diagnose implements the paper's §6 "more diagnostic capabilities"
// direction: given a detected critical cluster, drill into the epoch's data
// to characterise the problem — is the elevation uniform across every
// sub-population (the cause lives at this level) or concentrated in a few
// children (refine the investigation)? — and suggest the class of remedial
// action the paper's discussion associates with each attribute type
// (multiple CDNs and finer bitrate ladders for providers, local CDN
// contracts for remote ISPs, and so on).
package diagnose

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/metric"
)

// ChildStat is one sub-population of the diagnosed cluster.
type ChildStat struct {
	Value    int32
	Name     string
	Sessions int32
	Problems int32
	Ratio    float64
	// Elevated reports whether this child's ratio clears the epoch's
	// problem-cluster threshold.
	Elevated bool
}

// DimBreakdown decomposes the cluster along one free dimension.
type DimBreakdown struct {
	Dim attr.Dim
	// Children are the statistically sized sub-populations, worst first.
	Children []ChildStat
	// ElevatedShare is the session-weighted fraction of children that are
	// elevated: ~1 means the problem is uniform along this dimension.
	ElevatedShare float64
}

// Report is a full drill-down of one cluster in one epoch.
type Report struct {
	Epoch    int32
	Metric   metric.Metric
	Key      attr.Key
	Name     string
	Sessions int32
	Problems int32
	Ratio    float64
	// GlobalRatio and Threshold give the epoch context.
	GlobalRatio float64
	Threshold   float64
	// Dimensions hold the per-dimension decompositions, free dims only.
	Dimensions []DimBreakdown
	// Uniform reports whether every decomposition is near-uniform — the
	// signature of a cause anchored exactly at Key.
	Uniform bool
	// Remedies lists the remedial-action classes the paper's discussion
	// associates with this cluster's attribute types and metric.
	Remedies []string
}

// Drill analyses cluster key k of metric m against an epoch's view. The
// space (optional) names attribute values.
func Drill(v *cluster.View, k attr.Key, space *attr.Space) (*Report, error) {
	m := v.Metric
	c := v.Counts(k)
	if c.Total == 0 {
		return nil, fmt.Errorf("diagnose: cluster %v has no sessions in this epoch", k)
	}
	r := &Report{
		Epoch:       int32(v.Epoch),
		Metric:      m,
		Key:         k,
		Sessions:    c.Sessions(m),
		Problems:    c.Problems[m],
		Ratio:       c.Ratio(m),
		GlobalRatio: v.GlobalRatio,
		Threshold:   v.Threshold,
		Uniform:     true,
	}
	if space != nil {
		r.Name = space.FormatKey(k)
	} else {
		r.Name = k.String()
	}

	// Gather children along each free dimension from the count table.
	type childAcc map[int32]cluster.Counts
	children := make(map[attr.Dim]childAcc)
	for d := attr.Dim(0); d < attr.NumDims; d++ {
		if !k.Mask.Has(d) {
			children[d] = make(childAcc)
		}
	}
	v.Table().ForEach(func(key attr.Key, counts cluster.Counts) {
		if key.Mask.Size() != k.Size()+1 || !k.Subsumes(key) {
			return
		}
		for _, d := range key.Mask.Dims() {
			if !k.Mask.Has(d) {
				children[d][key.Vals[d]] = counts
			}
		}
	})

	for d := attr.Dim(0); d < attr.NumDims; d++ {
		acc, ok := children[d]
		if !ok {
			continue
		}
		bd := DimBreakdown{Dim: d}
		var sigSessions, elevatedSessions int64
		for val, counts := range acc {
			n := counts.Sessions(m)
			if n < v.MinSessions {
				continue
			}
			cs := ChildStat{
				Value:    val,
				Sessions: n,
				Problems: counts.Problems[m],
				Ratio:    counts.Ratio(m),
				Elevated: counts.Ratio(m) >= v.Threshold,
			}
			if space != nil {
				cs.Name = space.Name(d, val)
			} else {
				cs.Name = fmt.Sprintf("%s#%d", d, val)
			}
			bd.Children = append(bd.Children, cs)
			sigSessions += int64(n)
			if cs.Elevated {
				elevatedSessions += int64(n)
			}
		}
		if len(bd.Children) == 0 {
			continue
		}
		sort.Slice(bd.Children, func(i, j int) bool {
			if bd.Children[i].Ratio != bd.Children[j].Ratio {
				return bd.Children[i].Ratio > bd.Children[j].Ratio
			}
			return bd.Children[i].Value < bd.Children[j].Value
		})
		if sigSessions > 0 {
			bd.ElevatedShare = float64(elevatedSessions) / float64(sigSessions)
		}
		if bd.ElevatedShare < 0.6 {
			r.Uniform = false
		}
		r.Dimensions = append(r.Dimensions, bd)
	}

	r.Remedies = remedies(k, m)
	return r, nil
}

// remedies maps the cluster's attribute types and metric to the paper's
// discussed remedial-action classes (§1 and §4.3).
func remedies(k attr.Key, m metric.Metric) []string {
	var out []string
	add := func(s string) { out = append(out, s) }
	for _, d := range k.Mask.Dims() {
		switch d {
		case attr.Site:
			switch m {
			case metric.Bitrate, metric.BufRatio:
				add("offer a finer-grained bitrate ladder (single-bitrate sites cannot adapt)")
			case metric.JoinFailure:
				add("contract additional CDNs (single-CDN low-priority traffic fails under load)")
			default:
				add("serve player modules from nearby CDNs (remote bootstrap inflates join time)")
			}
		case attr.CDN:
			add("add capacity or re-balance the CDN footprint; consider multi-CDN switching for its sites")
		case attr.ASN:
			add("contract a local CDN operator or cache inside the ISP's region")
		case attr.ConnType:
			add("provision lower renditions and conservative startup for constrained access networks")
		case attr.PlayerType, attr.Browser:
			add("audit the client stack: player/browser-specific adaptation or decoding defects")
		case attr.VoDOrLive:
			add("separate live and VoD serving paths; live crowds overwhelm shared infrastructure")
		}
	}
	if len(out) == 0 {
		add("no attribute-specific remedy; investigate global infrastructure")
	}
	return out
}

// Summary renders a one-paragraph reading of the report.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s is a %s critical cluster in epoch %d: %d of %d sessions are problems (ratio %.2f vs global %.2f). ",
		r.Name, r.Metric, r.Epoch, r.Problems, r.Sessions, r.Ratio, r.GlobalRatio)
	if r.Uniform {
		b.WriteString("The elevation is uniform across every sub-population: the cause is anchored exactly at this combination. ")
	} else {
		worst := r.worstDim()
		if worst != nil && len(worst.Children) > 0 {
			fmt.Fprintf(&b, "The elevation concentrates along %s (worst: %s at ratio %.2f): refine the investigation there. ",
				worst.Dim, worst.Children[0].Name, worst.Children[0].Ratio)
		}
	}
	b.WriteString("Suggested remedies: ")
	b.WriteString(strings.Join(r.Remedies, "; "))
	b.WriteString(".")
	return b.String()
}

func (r *Report) worstDim() *DimBreakdown {
	var worst *DimBreakdown
	for i := range r.Dimensions {
		d := &r.Dimensions[i]
		if len(d.Children) == 0 {
			continue
		}
		if worst == nil || d.ElevatedShare < worst.ElevatedShare {
			worst = d
		}
	}
	return worst
}
