package diagnose

import (
	"strings"
	"testing"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/metric"
)

// buildView assembles an epoch where CDN 0 is uniformly bad across ASNs,
// while ASN 5 is bad only inside CDN 1.
func buildView(t *testing.T) *cluster.View {
	t.Helper()
	var sessions []cluster.Lite
	add := func(asn, cdn int32, n, p int) {
		for i := 0; i < n; i++ {
			var l cluster.Lite
			l.Attrs[attr.ASN] = asn
			l.Attrs[attr.CDN] = cdn
			if i < p {
				l.Bits |= 1 << metric.BufRatio
			}
			sessions = append(sessions, l)
		}
	}
	// CDN 0: every ASN elevated.
	add(1, 0, 100, 40)
	add(2, 0, 100, 38)
	add(3, 0, 100, 42)
	// CDN 1: only ASN 5 is bad.
	add(5, 1, 100, 50)
	add(6, 1, 300, 12)
	add(7, 1, 300, 12)
	// Healthy bulk.
	add(8, 2, 1000, 40)

	tbl := cluster.NewTable(3, sessions, 0)
	th := metric.Default()
	th.MinClusterSessions = 50
	th.MinZScore = 0
	v, err := cluster.BuildView(tbl, metric.BufRatio, th)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func key(pairs map[attr.Dim]int32) attr.Key { return attr.NewKey(pairs) }

func TestDrillUniformCause(t *testing.T) {
	v := buildView(t)
	r, err := Drill(v, key(map[attr.Dim]int32{attr.CDN: 0}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Sessions != 300 || r.Problems != 120 {
		t.Errorf("counts = %d/%d", r.Problems, r.Sessions)
	}
	if !r.Uniform {
		t.Error("CDN 0 elevation is uniform across ASNs; report disagrees")
	}
	// The ASN decomposition must show all three children elevated.
	var asnBD *DimBreakdown
	for i := range r.Dimensions {
		if r.Dimensions[i].Dim == attr.ASN {
			asnBD = &r.Dimensions[i]
		}
	}
	if asnBD == nil || len(asnBD.Children) != 3 {
		t.Fatalf("ASN breakdown = %+v", asnBD)
	}
	if asnBD.ElevatedShare < 0.99 {
		t.Errorf("elevated share = %v, want ~1", asnBD.ElevatedShare)
	}
	if !strings.Contains(r.Summary(), "uniform") {
		t.Errorf("summary should call out uniformity: %s", r.Summary())
	}
	if len(r.Remedies) == 0 || !strings.Contains(r.Remedies[0], "CDN") {
		t.Errorf("CDN remedies missing: %v", r.Remedies)
	}
}

func TestDrillConcentratedCause(t *testing.T) {
	v := buildView(t)
	r, err := Drill(v, key(map[attr.Dim]int32{attr.CDN: 1}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Uniform {
		t.Error("CDN 1's problem concentrates in ASN 5; report claims uniform")
	}
	sum := r.Summary()
	if !strings.Contains(sum, "refine") {
		t.Errorf("summary should suggest refining: %s", sum)
	}
	// Worst child along ASN is ASN 5.
	for _, bd := range r.Dimensions {
		if bd.Dim == attr.ASN {
			if len(bd.Children) == 0 || bd.Children[0].Value != 5 {
				t.Errorf("worst ASN child = %+v, want ASN 5 first", bd.Children)
			}
		}
	}
}

func TestDrillSmallChildrenSkipped(t *testing.T) {
	v := buildView(t)
	r, err := Drill(v, key(map[attr.Dim]int32{attr.CDN: 0}), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, bd := range r.Dimensions {
		for _, c := range bd.Children {
			if c.Sessions < v.MinSessions {
				t.Errorf("statistically insignificant child reported: %+v", c)
			}
		}
	}
}

func TestDrillErrors(t *testing.T) {
	v := buildView(t)
	if _, err := Drill(v, key(map[attr.Dim]int32{attr.CDN: 9}), nil); err == nil {
		t.Error("empty cluster accepted")
	}
}

func TestRemediesByMetric(t *testing.T) {
	siteKey := key(map[attr.Dim]int32{attr.Site: 1})
	bitrate := remedies(siteKey, metric.Bitrate)
	joinfail := remedies(siteKey, metric.JoinFailure)
	if !strings.Contains(bitrate[0], "bitrate ladder") {
		t.Errorf("site+bitrate remedy = %v", bitrate)
	}
	if !strings.Contains(joinfail[0], "CDN") {
		t.Errorf("site+joinfail remedy = %v", joinfail)
	}
	if got := remedies(attr.Root, metric.BufRatio); len(got) != 1 || !strings.Contains(got[0], "global") {
		t.Errorf("root remedies = %v", got)
	}
}
