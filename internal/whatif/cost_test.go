package whatif

import (
	"testing"

	"repro/internal/attr"
	"repro/internal/metric"
)

func TestCostModelPricing(t *testing.T) {
	m := DefaultCostModel()
	site := m.Cost(k(map[attr.Dim]int32{attr.Site: 1}), 0)
	cdnKey := m.Cost(k(map[attr.Dim]int32{attr.CDN: 1}), 0)
	asn := m.Cost(k(map[attr.Dim]int32{attr.ASN: 1}), 0)
	other := m.Cost(k(map[attr.Dim]int32{attr.Browser: 1}), 0)
	if !(cdnKey > asn && asn > other && other > site) {
		t.Errorf("cost ordering wrong: site=%v cdn=%v asn=%v other=%v", site, cdnKey, asn, other)
	}
	// Multi-attribute clusters price at the most expensive component.
	pair := m.Cost(k(map[attr.Dim]int32{attr.Site: 1, attr.CDN: 2}), 0)
	if pair != cdnKey {
		t.Errorf("pair cost = %v, want the CDN component %v", pair, cdnKey)
	}
	// Volume term.
	withVolume := m.Cost(k(map[attr.Dim]int32{attr.Site: 1}), 1000)
	if withVolume != site+1000*m.PerSession {
		t.Errorf("volume pricing = %v", withVolume)
	}
	// Root key prices as "other".
	if m.Cost(attr.Root, 0) != m.OtherFixed {
		t.Error("root should price as other")
	}
}

func TestCostModelValidate(t *testing.T) {
	bad := DefaultCostModel()
	bad.CDNFixed = -1
	if bad.Validate() == nil {
		t.Error("negative cost accepted")
	}
	if (CostModel{}).Validate() == nil {
		t.Error("zero model accepted")
	}
	if DefaultCostModel().Validate() != nil {
		t.Error("default model rejected")
	}
}

func TestCostBenefit(t *testing.T) {
	tr := twoClusterTrace()
	res, err := CostBenefit(tr, metric.JoinFailure, DefaultCostModel(), []float64{0.3, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	for _, pts := range [][]CostBenefitPoint{res.ByBenefitPerCost, res.ByCoverage} {
		if len(pts) != 2 {
			t.Fatalf("points = %d", len(pts))
		}
		if pts[1].Alleviated < pts[0].Alleviated {
			t.Error("curve not monotone in budget")
		}
		// Full budget funds everything: 116/800 as in the base trace.
		if d := pts[1].Alleviated - 116.0/800; d > 1e-9 || d < -1e-9 {
			t.Errorf("full-budget alleviation = %v", pts[1].Alleviated)
		}
	}
	// At partial budgets benefit-per-cost never does worse than coverage
	// ordering under this model (greedy on ratio with equal-size candidate
	// sets and skip-fill).
	for i := range res.ByBenefitPerCost {
		if res.ByBenefitPerCost[i].Alleviated+1e-9 < res.ByCoverage[i].Alleviated {
			// Not a theorem in general, but holds on this two-cluster
			// fixture: the small cluster is far cheaper per alleviated
			// session.
			t.Errorf("budget %v: benefit-per-cost %v < coverage %v",
				res.ByBenefitPerCost[i].Budget,
				res.ByBenefitPerCost[i].Alleviated, res.ByCoverage[i].Alleviated)
		}
	}
}

func TestCostBenefitSmallBudgetPrefersCheap(t *testing.T) {
	tr := twoClusterTrace()
	// The big cluster is CDN-anchored (expensive, 400+) and alleviates 80;
	// the small one is ASN-anchored (cheap, 120+) and alleviates 36. Under
	// a tight budget only the ASN cluster fits, so benefit-per-cost picks
	// it while coverage ordering (big first) funds nothing it can afford
	// until the skip-fill reaches the ASN cluster too.
	model := DefaultCostModel()
	model.PerSession = 0
	res, err := CostBenefit(tr, metric.JoinFailure, model, []float64{0.25})
	if err != nil {
		t.Fatal(err)
	}
	bpc := res.ByBenefitPerCost[0]
	if bpc.Selected == 0 {
		t.Error("benefit-per-cost funded nothing under the small budget")
	}
	if bpc.Alleviated <= 0 {
		t.Error("no alleviation under the small budget")
	}
}

func TestCostBenefitErrors(t *testing.T) {
	tr := twoClusterTrace()
	if _, err := CostBenefit(tr, metric.JoinFailure, CostModel{}, DefaultBudgetFracs()); err == nil {
		t.Error("zero cost model accepted")
	}
}

func TestDefaultBudgetFracs(t *testing.T) {
	fr := DefaultBudgetFracs()
	if fr[len(fr)-1] != 1 {
		t.Error("budget axis should end at 1")
	}
	for i := 1; i < len(fr); i++ {
		if fr[i] <= fr[i-1] {
			t.Error("budget axis not increasing")
		}
	}
}
