package whatif

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/metric"
)

func k(pairs map[attr.Dim]int32) attr.Key { return attr.NewKey(pairs) }

// twoClusterTrace builds 4 epochs with two critical clusters:
//   - "big" (CDN=1): critical in epochs 0-3 (one streak), 100 attributed
//     problems per epoch out of 400 attributed sessions;
//   - "small" (ASN=2): critical in epochs 1 and 3 (two streaks of one),
//     30 attributed problems out of 60 sessions.
//
// Every epoch has 1000 sessions and 200 problem sessions (global ratio 0.2).
func twoClusterTrace() *core.TraceResult {
	big := k(map[attr.Dim]int32{attr.CDN: 1})
	small := k(map[attr.Dim]int32{attr.ASN: 2})
	tr := &core.TraceResult{
		Trace:  epoch.Range{Start: 0, End: 4},
		Epochs: make([]core.EpochResult, 4),
	}
	for i := range tr.Epochs {
		er := &tr.Epochs[i]
		er.Epoch = epoch.Index(i)
		ms := &er.Metrics[metric.JoinFailure]
		ms.Metric = metric.JoinFailure
		ms.GlobalSessions = 1000
		ms.GlobalProblems = 200
		ms.GlobalRatio = 0.2
		ms.Critical = append(ms.Critical, core.CriticalSummary{
			Key: big, AttributedProblems: 100, AttributedSessions: 400,
		})
		ms.CoveredProblems = 100
		if i == 1 || i == 3 {
			ms.Critical = append(ms.Critical, core.CriticalSummary{
				Key: small, AttributedProblems: 30, AttributedSessions: 60,
			})
			ms.CoveredProblems = 130
		}
		ms.NumProblemClusters = len(ms.Critical)
		for _, cs := range ms.Critical {
			ms.ProblemKeys = append(ms.ProblemKeys, cs.Key)
		}
	}
	return tr
}

// Expected alleviation per epoch: big: 100 - 400×0.2 = 20; small: 30 -
// 60×0.2 = 18.

func TestFixKeys(t *testing.T) {
	tr := twoClusterTrace()
	big := k(map[attr.Dim]int32{attr.CDN: 1})
	small := k(map[attr.Dim]int32{attr.ASN: 2})

	o := FixKeys(tr, metric.JoinFailure, map[attr.Key]bool{big: true}, tr.Trace)
	if o.TotalProblems != 800 {
		t.Errorf("total = %v", o.TotalProblems)
	}
	if math.Abs(o.Alleviated-80) > 1e-9 { // 20 × 4 epochs
		t.Errorf("alleviated = %v, want 80", o.Alleviated)
	}
	if math.Abs(o.Fraction()-0.1) > 1e-9 {
		t.Errorf("fraction = %v, want 0.1", o.Fraction())
	}

	o = FixKeys(tr, metric.JoinFailure, map[attr.Key]bool{small: true}, tr.Trace)
	if math.Abs(o.Alleviated-36) > 1e-9 { // 18 × 2 epochs
		t.Errorf("alleviated = %v, want 36", o.Alleviated)
	}

	// Window restriction.
	o = FixKeys(tr, metric.JoinFailure, map[attr.Key]bool{big: true}, epoch.Range{Start: 2, End: 4})
	if o.TotalProblems != 400 || math.Abs(o.Alleviated-40) > 1e-9 {
		t.Errorf("windowed = %+v", o)
	}

	if (Outcome{}).Fraction() != 0 {
		t.Error("empty outcome fraction should be 0")
	}
}

func TestCurveMonotone(t *testing.T) {
	tr := twoClusterTrace()
	for _, r := range []Ranking{ByPrevalence, ByPersistence, ByCoverage} {
		pts := Curve(tr, metric.JoinFailure, r, []float64{0.5, 1.0})
		if len(pts) != 2 {
			t.Fatalf("%v: %d points", r, len(pts))
		}
		if pts[1].Alleviated < pts[0].Alleviated {
			t.Errorf("%v: curve not monotone: %v", r, pts)
		}
		// Fixing everything alleviates (80+36)/800.
		if math.Abs(pts[1].Alleviated-116.0/800) > 1e-9 {
			t.Errorf("%v: full alleviation = %v, want %v", r, pts[1].Alleviated, 116.0/800)
		}
		// Top-1 under any ranking is the big cluster (higher prevalence,
		// persistence, and coverage).
		if math.Abs(pts[0].Alleviated-0.1) > 1e-9 {
			t.Errorf("%v: top-1 alleviation = %v, want 0.1", r, pts[0].Alleviated)
		}
	}
}

func TestRestrictedCurve(t *testing.T) {
	tr := twoClusterTrace()
	cdnOnly := map[attr.Mask]bool{attr.MaskOf(attr.CDN): true}
	pts := RestrictedCurve(tr, metric.JoinFailure, cdnOnly, []float64{1.0})
	if math.Abs(pts[0].Alleviated-0.1) > 1e-9 {
		t.Errorf("CDN-only = %v, want 0.1", pts[0].Alleviated)
	}
	all := RestrictedCurve(tr, metric.JoinFailure, nil, []float64{1.0})
	if all[0].Alleviated <= pts[0].Alleviated {
		t.Error("unrestricted should beat CDN-only")
	}
	// Restricting to a mask with no criticals yields zero.
	siteOnly := map[attr.Mask]bool{attr.MaskOf(attr.Site): true}
	empty := RestrictedCurve(tr, metric.JoinFailure, siteOnly, []float64{1.0})
	if empty[0].Alleviated != 0 {
		t.Errorf("site-only = %v, want 0", empty[0].Alleviated)
	}
}

func TestProactive(t *testing.T) {
	tr := twoClusterTrace()
	train := epoch.Range{Start: 0, End: 2}
	test := epoch.Range{Start: 2, End: 4}
	// topFrac 0.5 of 2 keys → 1 key: the big one (more coverage in train).
	res := Proactive(tr, metric.JoinFailure, train, test, 0.5)
	if res.Selected != 1 {
		t.Fatalf("selected = %d", res.Selected)
	}
	// Test window: big alleviates 20×2 = 40 of 400.
	if math.Abs(res.New-0.1) > 1e-9 {
		t.Errorf("New = %v, want 0.1", res.New)
	}
	// Oracle on the test window also picks big (coverage 200 vs 30).
	if math.Abs(res.Potential-0.1) > 1e-9 {
		t.Errorf("Potential = %v, want 0.1", res.Potential)
	}
	if math.Abs(res.OfPotential-1) > 1e-9 {
		t.Errorf("OfPotential = %v, want 1", res.OfPotential)
	}

	// Fixing everything learned (topFrac 1) catches both keys.
	res = Proactive(tr, metric.JoinFailure, train, test, 1)
	want := (20*2 + 18.0) / 400 // small critical only in epoch 3 of test
	if math.Abs(res.New-want) > 1e-9 {
		t.Errorf("New = %v, want %v", res.New, want)
	}
}

func TestReactive(t *testing.T) {
	tr := twoClusterTrace()
	res := Reactive(tr, metric.JoinFailure)
	// big: streak 0-3, fixed in epochs 1,2,3 → 3×20 = 60.
	// small: two streaks of length 1 → never fixed reactively.
	if math.Abs(res.New-60.0/800) > 1e-9 {
		t.Errorf("New = %v, want %v", res.New, 60.0/800)
	}
	// Potential: all critical epochs: big 4×20 + small 2×18 = 116.
	if math.Abs(res.Potential-116.0/800) > 1e-9 {
		t.Errorf("Potential = %v, want %v", res.Potential, 116.0/800)
	}
	if math.Abs(res.OfPotential-60.0/116) > 1e-9 {
		t.Errorf("OfPotential = %v", res.OfPotential)
	}
	if len(res.Series) != 4 {
		t.Fatalf("series length = %d", len(res.Series))
	}
	// Epoch 0 is the first hour of big's streak: nothing alleviated.
	if res.Series[0].AfterReactive != 200 {
		t.Errorf("epoch 0 after = %v, want 200", res.Series[0].AfterReactive)
	}
	// Epoch 1: big alleviated (20), small not (streak of 1).
	if math.Abs(res.Series[1].AfterReactive-180) > 1e-9 {
		t.Errorf("epoch 1 after = %v, want 180", res.Series[1].AfterReactive)
	}
	// Not-in-critical = 200-130 = 70 in epochs 1 and 3, 100 otherwise.
	if res.Series[1].NotInCritical != 70 || res.Series[0].NotInCritical != 100 {
		t.Errorf("not-in-critical = %v / %v", res.Series[0].NotInCritical, res.Series[1].NotInCritical)
	}
}

func TestNegativeAlleviationClamped(t *testing.T) {
	// A cluster whose attributed ratio is below the global average must not
	// produce negative alleviation.
	tr := twoClusterTrace()
	ms := &tr.Epochs[0].Metrics[metric.JoinFailure]
	ms.Critical[0].AttributedProblems = 10
	ms.Critical[0].AttributedSessions = 400 // ratio 0.025 < global 0.2
	big := k(map[attr.Dim]int32{attr.CDN: 1})
	o := FixKeys(tr, metric.JoinFailure, map[attr.Key]bool{big: true}, epoch.Range{Start: 0, End: 1})
	if o.Alleviated != 0 {
		t.Errorf("alleviated = %v, want 0", o.Alleviated)
	}
}

func TestRankingString(t *testing.T) {
	if ByPrevalence.String() != "prevalence" || ByCoverage.String() != "coverage" {
		t.Error("ranking names wrong")
	}
	if Ranking(9).String() == "" {
		t.Error("unknown ranking should not be empty")
	}
}

func TestDefaultFractions(t *testing.T) {
	fs := DefaultFractions()
	if len(fs) == 0 || fs[len(fs)-1] != 1 {
		t.Error("fractions should end at 1")
	}
	for i := 1; i < len(fs); i++ {
		if fs[i] <= fs[i-1] {
			t.Error("fractions not increasing")
		}
	}
}

// TestCurveProperties drives Curve with randomized traces and checks
// structural invariants: monotonicity in the fraction, alleviation within
// [0, 1], and ranking-independence of the full-set point.
func TestCurveProperties(t *testing.T) {
	f := func(nEpochs uint8, counts [6]uint16, probs [6]uint8) bool {
		epochs := int(nEpochs%8) + 2
		tr := &core.TraceResult{
			Trace:  epoch.Range{Start: 0, End: epoch.Index(epochs)},
			Epochs: make([]core.EpochResult, epochs),
		}
		for e := 0; e < epochs; e++ {
			er := &tr.Epochs[e]
			er.Epoch = epoch.Index(e)
			ms := &er.Metrics[metric.BufRatio]
			var sumP float64
			for c := 0; c < 6; c++ {
				if (int(counts[c])+e)%3 == 0 {
					continue // key not critical this epoch
				}
				n := float64(counts[c]%500) + 20
				p := float64(probs[c]) / 255 * n
				sumP += p
				ms.Critical = append(ms.Critical, core.CriticalSummary{
					Key:                k(map[attr.Dim]int32{attr.Site: int32(c)}),
					AttributedProblems: p,
					AttributedSessions: n,
				})
			}
			// Keep the fixture consistent with the detector's invariants:
			// attributed problems never exceed the epoch's global problems.
			ms.GlobalProblems = int32(sumP) + 50
			ms.GlobalSessions = 10 * ms.GlobalProblems
			ms.GlobalRatio = 0.1
		}
		fractions := []float64{0.1, 0.3, 0.6, 1.0}
		for _, r := range []Ranking{ByPrevalence, ByPersistence, ByCoverage} {
			pts := Curve(tr, metric.BufRatio, r, fractions)
			prev := -1.0
			for _, pt := range pts {
				if pt.Alleviated < prev-1e-9 || pt.Alleviated < 0 || pt.Alleviated > 1 {
					return false
				}
				prev = pt.Alleviated
			}
		}
		a := Curve(tr, metric.BufRatio, ByPrevalence, []float64{1})[0].Alleviated
		b := Curve(tr, metric.BufRatio, ByCoverage, []float64{1})[0].Alleviated
		return a-b < 1e-9 && b-a < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
