package whatif

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/core/eps"
	"repro/internal/metric"
)

// The paper's §6 ("Cost of remedial measures") notes that its improvement
// analysis ignores what fixing a critical cluster costs — infrastructure
// upgrades, new CDN contracts, extra encodes — and calls a cost-benefit
// treatment interesting future work. This file implements that extension: a
// simple per-cluster cost model keyed on the remedial action the cluster's
// attribute type implies, and a greedy benefit-per-cost selection compared
// against the paper's coverage-only ranking under a budget.

// CostModel prices the remedial action for a critical cluster. Costs are in
// arbitrary "effort units"; only their relative magnitudes matter.
type CostModel struct {
	// SiteFixed prices per-provider work (adding bitrate renditions,
	// contracting a second CDN): one-off engineering per site.
	SiteFixed float64
	// CDNFixed prices per-CDN work (capacity, new footprint): expensive
	// infrastructure.
	CDNFixed float64
	// ASNFixed prices per-ISP work (peering arrangements, local caches).
	ASNFixed float64
	// OtherFixed prices everything else (player/browser/connection-type
	// specific engineering).
	OtherFixed float64
	// PerSession prices disruption proportional to the traffic volume
	// touched (upgrades interrupt serving).
	PerSession float64
}

// DefaultCostModel reflects the paper's qualitative ordering: CDN
// infrastructure is the most expensive to change, provider-side fixes are
// moderate, ISP arrangements sit between, and there is a small volume-
// proportional disruption term.
func DefaultCostModel() CostModel {
	return CostModel{
		SiteFixed:  40,
		CDNFixed:   400,
		ASNFixed:   120,
		OtherFixed: 80,
		PerSession: 0.01,
	}
}

// Validate reports the first invalid field.
func (c CostModel) Validate() error {
	for _, v := range []float64{c.SiteFixed, c.CDNFixed, c.ASNFixed, c.OtherFixed, c.PerSession} {
		if v < 0 {
			return fmt.Errorf("whatif: negative cost component %v", v)
		}
	}
	if eps.Zero(c.SiteFixed + c.CDNFixed + c.ASNFixed + c.OtherFixed + c.PerSession) {
		return fmt.Errorf("whatif: zero cost model")
	}
	return nil
}

// Cost prices fixing one critical cluster with the given total attributed
// session volume. Multi-attribute clusters price at the most expensive
// component they touch (the fix must reach that part of the path).
func (c CostModel) Cost(k attr.Key, attributedSessions float64) float64 {
	fixed := 0.0
	pick := func(v float64) {
		if v > fixed {
			fixed = v
		}
	}
	any := false
	for _, d := range k.Mask.Dims() {
		any = true
		switch d {
		case attr.Site:
			pick(c.SiteFixed)
		case attr.CDN:
			pick(c.CDNFixed)
		case attr.ASN:
			pick(c.ASNFixed)
		default:
			pick(c.OtherFixed)
		}
	}
	if !any {
		pick(c.OtherFixed)
	}
	return fixed + c.PerSession*attributedSessions
}

// CostBenefitPoint is one sample of a budgeted alleviation curve.
type CostBenefitPoint struct {
	Budget float64
	// Selected is the number of clusters funded.
	Selected int
	// Alleviated is the fraction of all problem sessions alleviated.
	Alleviated float64
}

// CostBenefitResult compares two selection policies under the same budgets.
type CostBenefitResult struct {
	Metric metric.Metric
	// ByBenefitPerCost selects greedily by alleviation/cost.
	ByBenefitPerCost []CostBenefitPoint
	// ByCoverage selects by the paper's coverage ranking until the budget
	// is exhausted.
	ByCoverage []CostBenefitPoint
}

// CostBenefit runs the §6 extension over a trace: at each budget, pick
// critical clusters under the two policies and report the alleviation
// achieved. Budgets are fractions of the cost of fixing everything.
func CostBenefit(tr *core.TraceResult, m metric.Metric, model CostModel, budgetFracs []float64) (CostBenefitResult, error) {
	res := CostBenefitResult{Metric: m}
	if err := model.Validate(); err != nil {
		return res, err
	}
	h := analysis.BuildHistory(tr, m)

	type cand struct {
		key     attr.Key
		benefit float64 // alleviated problem sessions (absolute)
		cost    float64
	}
	cands := make([]cand, 0, len(h.Critical))
	var totalCost, totalProblems float64
	for i := range tr.Epochs {
		totalProblems += float64(tr.Epochs[i].Metrics[m].GlobalProblems)
	}
	// Benefit of fixing key k everywhere it is critical. Keys are visited
	// in sorted order so the candidate list and the totalCost sum are
	// reproducible across runs.
	criticalKeys := make([]attr.Key, 0, len(h.Critical))
	for k := range h.Critical {
		criticalKeys = append(criticalKeys, k)
	}
	sort.Slice(criticalKeys, func(i, j int) bool { return analysis.KeyLess(criticalKeys[i], criticalKeys[j]) })
	for _, k := range criticalKeys {
		o := FixKeys(tr, m, map[attr.Key]bool{k: true}, tr.Trace)
		cost := model.Cost(k, h.Critical[k].TotalSessions)
		cands = append(cands, cand{key: k, benefit: o.Alleviated, cost: cost})
		totalCost += cost
	}
	if eps.Zero(totalProblems) || eps.Zero(totalCost) {
		return res, fmt.Errorf("whatif: empty trace for cost-benefit")
	}

	runPolicy := func(order []cand) []CostBenefitPoint {
		pts := make([]CostBenefitPoint, 0, len(budgetFracs))
		for _, frac := range budgetFracs {
			budget := frac * totalCost
			var spent, alleviated float64
			selected := 0
			for _, c := range order {
				if spent+c.cost > budget {
					continue // greedy with skip: cheaper items may still fit
				}
				spent += c.cost
				alleviated += c.benefit
				selected++
			}
			pts = append(pts, CostBenefitPoint{
				Budget:     frac,
				Selected:   selected,
				Alleviated: alleviated / totalProblems,
			})
		}
		return pts
	}

	byBPC := append([]cand(nil), cands...)
	sort.SliceStable(byBPC, func(i, j int) bool {
		a, b := byBPC[i].benefit/byBPC[i].cost, byBPC[j].benefit/byBPC[j].cost
		if a != b {
			return a > b
		}
		return analysis.KeyLess(byBPC[i].key, byBPC[j].key)
	})
	byCov := append([]cand(nil), cands...)
	sort.SliceStable(byCov, func(i, j int) bool {
		if byCov[i].benefit != byCov[j].benefit {
			return byCov[i].benefit > byCov[j].benefit
		}
		return analysis.KeyLess(byCov[i].key, byCov[j].key)
	})

	res.ByBenefitPerCost = runPolicy(byBPC)
	res.ByCoverage = runPolicy(byCov)
	return res, nil
}

// DefaultBudgetFracs is the budget axis used by the cost-benefit report.
func DefaultBudgetFracs() []float64 {
	return []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0}
}
