// Package whatif implements the paper's §5 improvement analyses. Fixing a
// critical cluster in an epoch lowers the problem ratio of the sessions
// attributed to it down to that epoch's global average problem ratio — the
// paper's model of unavoidable background problems. On top of that single
// primitive the package builds:
//
//   - the oracle top-k curves of Fig. 11 (clusters ranked by prevalence,
//     persistence, or coverage);
//   - the attribute-restricted selection comparison of Fig. 12;
//   - the proactive history-based strategy of Table 4 (train on one
//     window, fix in the next, compare with the test window's own oracle);
//   - the reactive strategy of Fig. 13 / Table 5 (detect a critical
//     cluster after its first hour, fix the remainder of its streak).
package whatif

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/core/eps"
	"repro/internal/epoch"
	"repro/internal/metric"
)

// Ranking selects how candidate critical clusters are ordered (§5.1).
type Ranking uint8

// Rankings of Fig. 11.
const (
	ByPrevalence Ranking = iota
	ByPersistence
	ByCoverage
)

var rankingNames = []string{"prevalence", "persistence", "coverage"}

// String returns the ranking name.
func (r Ranking) String() string {
	if int(r) < len(rankingNames) {
		return rankingNames[r]
	}
	return fmt.Sprintf("Ranking(%d)", uint8(r))
}

// Outcome reports an alleviation simulation.
type Outcome struct {
	// TotalProblems is the problem-session count of the simulated window.
	TotalProblems float64
	// Alleviated is the (fractional) number of problem sessions removed.
	Alleviated float64
}

// Fraction returns Alleviated / TotalProblems (0 when empty).
func (o Outcome) Fraction() float64 {
	if eps.Zero(o.TotalProblems) {
		return 0
	}
	return o.Alleviated / o.TotalProblems
}

// epochAlleviation returns the problem sessions removed by fixing critical
// cluster cs in an epoch with the given global ratio: the cluster's
// attributed problems drop to the global background expectation.
func epochAlleviation(cs *core.CriticalSummary, globalRatio float64) float64 {
	a := cs.AttributedProblems - cs.AttributedSessions*globalRatio
	if a < 0 {
		return 0
	}
	return a
}

// FixKeys simulates fixing the given critical-cluster keys in every epoch
// of the window where they are critical.
func FixKeys(tr *core.TraceResult, m metric.Metric, keys map[attr.Key]bool, within epoch.Range) Outcome {
	var out Outcome
	for e := within.Start; e < within.End; e++ {
		er := tr.At(e)
		if er == nil {
			continue
		}
		ms := &er.Metrics[m]
		out.TotalProblems += float64(ms.GlobalProblems)
		for i := range ms.Critical {
			cs := &ms.Critical[i]
			if keys[cs.Key] {
				out.Alleviated += epochAlleviation(cs, ms.GlobalRatio)
			}
		}
	}
	return out
}

// rankKeys orders the critical keys of a history by the chosen ranking,
// best first, with deterministic tie-breaking.
func rankKeys(h *analysis.History, r Ranking) []attr.Key {
	keys := make([]attr.Key, 0, len(h.Critical))
	for k := range h.Critical {
		keys = append(keys, k)
	}
	score := func(k attr.Key) float64 {
		switch r {
		case ByPrevalence:
			return h.Prevalence(analysis.CriticalClusters, k)
		case ByPersistence:
			_, max := h.Persistence(analysis.CriticalClusters, k)
			return float64(max)
		default:
			return h.Critical[k].TotalProblems
		}
	}
	sort.SliceStable(keys, func(i, j int) bool {
		a, b := score(keys[i]), score(keys[j])
		if a != b {
			return a > b
		}
		// Secondary: coverage, then key order.
		ca, cb := h.Critical[keys[i]].TotalProblems, h.Critical[keys[j]].TotalProblems
		if ca != cb {
			return ca > cb
		}
		return analysis.KeyLess(keys[i], keys[j])
	})
	return keys
}

// CurvePoint is one Fig. 11 sample: fixing the top Fraction of critical
// clusters alleviates Alleviated (fraction of all problem sessions).
type CurvePoint struct {
	Fraction   float64
	TopK       int
	Alleviated float64
}

// Curve computes the Fig. 11 alleviation curve: for each requested fraction
// of the (ranked) critical-cluster population, the share of all problem
// sessions alleviated by fixing that top set across the whole window.
func Curve(tr *core.TraceResult, m metric.Metric, r Ranking, fractions []float64) []CurvePoint {
	h := analysis.BuildHistory(tr, m)
	ranked := rankKeys(h, r)
	return curveOver(tr, m, ranked, len(ranked), fractions)
}

func curveOver(tr *core.TraceResult, m metric.Metric, ranked []attr.Key, denom int, fractions []float64) []CurvePoint {
	out := make([]CurvePoint, 0, len(fractions))
	for _, f := range fractions {
		k := int(f * float64(denom))
		if k < 1 {
			k = 1
		}
		if k > len(ranked) {
			k = len(ranked)
		}
		set := make(map[attr.Key]bool, k)
		for _, key := range ranked[:k] {
			set[key] = true
		}
		o := FixKeys(tr, m, set, tr.Trace)
		out = append(out, CurvePoint{Fraction: f, TopK: k, Alleviated: o.Fraction()})
	}
	return out
}

// RestrictedCurve computes Fig. 12: candidates restricted to critical
// clusters whose mask is in allowed (nil means no restriction), ranked by
// coverage; fractions are normalised by the unrestricted critical-cluster
// population so the series are comparable.
func RestrictedCurve(tr *core.TraceResult, m metric.Metric, allowed map[attr.Mask]bool, fractions []float64) []CurvePoint {
	h := analysis.BuildHistory(tr, m)
	ranked := rankKeys(h, ByCoverage)
	denom := len(ranked)
	if allowed != nil {
		filtered := ranked[:0:0]
		for _, k := range ranked {
			if allowed[k.Mask] {
				filtered = append(filtered, k)
			}
		}
		ranked = filtered
	}
	return curveOver(tr, m, ranked, denom, fractions)
}

// ProactiveResult reports Table 4 for one metric and one train/test split.
type ProactiveResult struct {
	// New is the alleviated fraction in the test window when fixing the
	// top clusters learned on the training window.
	New float64
	// Potential is the test window's own oracle (top clusters by coverage
	// computed on the test window).
	Potential float64
	// OfPotential = New / Potential.
	OfPotential float64
	// Selected is the number of clusters fixed.
	Selected int
}

// Proactive runs the §5.2 history-based strategy: learn the top topFrac of
// critical clusters (by coverage) on the training window, fix them in the
// test window, and compare against the test window's own oracle. Both
// selections use the same cluster budget (topFrac of the test window's
// critical population) so New/Potential compare like for like — at the
// paper's scale the two windows' populations are indistinguishable, but at
// laptop scale an asymmetric budget lets the learned set spuriously beat
// the oracle.
func Proactive(tr *core.TraceResult, m metric.Metric, train, test epoch.Range, topFrac float64) ProactiveResult {
	trainH := analysis.BuildHistory(tr.Slice(train), m)
	testH := analysis.BuildHistory(tr.Slice(test), m)

	budget := int(topFrac * float64(len(testH.Critical)))
	if budget < 1 {
		budget = 1
	}
	pick := func(h *analysis.History) map[attr.Key]bool {
		ranked := rankKeys(h, ByCoverage)
		k := budget
		if k > len(ranked) {
			k = len(ranked)
		}
		set := make(map[attr.Key]bool, k)
		for _, key := range ranked[:k] {
			set[key] = true
		}
		return set
	}

	learned := pick(trainH)
	oracle := pick(testH)

	res := ProactiveResult{Selected: len(learned)}
	res.New = FixKeys(tr, m, learned, test).Fraction()
	res.Potential = FixKeys(tr, m, oracle, test).Fraction()
	if res.Potential > 0 {
		res.OfPotential = res.New / res.Potential
	}
	return res
}

// ReactivePoint is one epoch of the Fig. 13 timeseries.
type ReactivePoint struct {
	Epoch epoch.Index
	// Original is the epoch's problem-session count.
	Original float64
	// AfterReactive is the count after reactive alleviation.
	AfterReactive float64
	// NotInCritical counts problem sessions outside every critical cluster
	// (unreachable by cluster fixing).
	NotInCritical float64
}

// ReactiveResult reports Table 5 for one metric plus the Fig. 13 series.
type ReactiveResult struct {
	// New is the alleviated fraction under 1-hour-detection reactive
	// fixing.
	New float64
	// Potential fixes every critical cluster in every epoch it occurs
	// (including the first hour).
	Potential float64
	// OfPotential = New / Potential.
	OfPotential float64
	// Series is the per-epoch timeseries.
	Series []ReactivePoint
}

// Reactive runs the §5.3 strategy over the whole window: each critical
// cluster's streak is detected after its first epoch and alleviated for the
// remaining epochs of the streak.
func Reactive(tr *core.TraceResult, m metric.Metric) ReactiveResult {
	h := analysis.BuildHistory(tr, m)

	// Epochs in which each key is alleviated: streaks minus the first
	// epoch of each streak.
	fixable := make(map[attr.Key]map[epoch.Index]bool, len(h.Critical))
	for k := range h.Critical {
		set := make(map[epoch.Index]bool)
		for _, streak := range h.Streaks(analysis.CriticalClusters, k) {
			for e := streak.Start + 1; e < streak.End; e++ {
				set[e] = true
			}
		}
		if len(set) > 0 {
			fixable[k] = set
		}
	}

	var res ReactiveResult
	var totalProblems, reactive, potential float64
	res.Series = make([]ReactivePoint, 0, len(tr.Epochs))
	for i := range tr.Epochs {
		er := &tr.Epochs[i]
		ms := &er.Metrics[m]
		var epochReactive float64
		for j := range ms.Critical {
			cs := &ms.Critical[j]
			a := epochAlleviation(cs, ms.GlobalRatio)
			potential += a
			if set := fixable[cs.Key]; set != nil && set[er.Epoch] {
				epochReactive += a
			}
		}
		reactive += epochReactive
		totalProblems += float64(ms.GlobalProblems)
		res.Series = append(res.Series, ReactivePoint{
			Epoch:         er.Epoch,
			Original:      float64(ms.GlobalProblems),
			AfterReactive: float64(ms.GlobalProblems) - epochReactive,
			NotInCritical: float64(ms.GlobalProblems - ms.CoveredProblems),
		})
	}
	if totalProblems > 0 {
		res.New = reactive / totalProblems
		res.Potential = potential / totalProblems
	}
	if res.Potential > 0 {
		res.OfPotential = res.New / res.Potential
	}
	return res
}

// DefaultFractions returns the log-spaced x-axis the Fig. 11/12 curves are
// sampled at, adapted to the critical-cluster population size at laptop
// scale (the paper spans 1e-4..1 over a much larger population).
func DefaultFractions() []float64 {
	return []float64{0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0}
}
