package report

import (
	"sort"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := Table{
		Title:   "Demo",
		Columns: []string{"Name", "Value", "Share"},
	}
	tbl.AddRow("alpha", 12.5, Pct(0.5))
	tbl.AddRow("beta-long-name", 3, "1.0%")
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Demo" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "Name") || !strings.Contains(lines[1], "Value") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.Contains(lines[2], "----") {
		t.Errorf("separator = %q", lines[2])
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "12.50") {
		t.Errorf("row content missing: %q", out)
	}
	// Columns align: the Value column starts at the same offset in header
	// and data rows.
	hIdx := strings.Index(lines[1], "Value")
	rIdx := strings.Index(lines[3], "12.50")
	if hIdx != rIdx {
		t.Errorf("column misaligned: header at %d, row at %d\n%s", hIdx, rIdx, out)
	}
}

func TestTableNoTitle(t *testing.T) {
	tbl := Table{Columns: []string{"A"}}
	tbl.AddRow(1)
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.HasPrefix(sb.String(), "\n") {
		t.Error("empty title should not emit a blank line")
	}
}

func TestFigureRender(t *testing.T) {
	fig := NewFigure("Curve", "x", "s1", "s2")
	fig.AddPoint(0.1, 1, 2)
	fig.AddPoint(0.2, 3, 4)
	fig.AddPoint(0.3, 5) // ragged: s2 missing
	var sb strings.Builder
	if err := fig.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Curve") || !strings.Contains(out, "s2") {
		t.Errorf("figure output missing pieces: %q", out)
	}
	if !strings.Contains(out, "-") {
		t.Error("missing-cell placeholder absent")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, header, sep, 3 points
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
}

// TestTableRenderDeterministic is the golden determinism check: a table
// whose rows come from a map (emitted in sorted key order, the repository
// convention enforced by vqlint's detorder rule) must render byte-for-byte
// identically on every pass. Two independent builds from the same map are
// rendered twice each and all four outputs compared.
func TestTableRenderDeterministic(t *testing.T) {
	src := map[string]float64{
		"cdn-03":       0.0712,
		"asn-17":       0.0555,
		"site-a":       0.0123,
		"conn-mobile":  0.1402,
		"geo-eu-west":  0.0998,
		"device-stick": 0.0417,
	}
	build := func() *Table {
		tbl := &Table{Title: "Problem ratio by cluster", Columns: []string{"Cluster", "Ratio"}}
		keys := make([]string, 0, len(src))
		for k := range src {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			tbl.AddRow(k, src[k])
		}
		return tbl
	}
	render := func(tbl *Table) string {
		var sb strings.Builder
		if err := tbl.Render(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	first := render(build())
	for i := 0; i < 3; i++ {
		if got := render(build()); got != first {
			t.Fatalf("render %d differs from first:\n%q\nvs\n%q", i+2, got, first)
		}
	}
	// Sorted emission also pins the row order itself, not just stability.
	if a, b := strings.Index(first, "asn-17"), strings.Index(first, "site-a"); a == -1 || b == -1 || a > b {
		t.Errorf("rows not in sorted key order:\n%s", first)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{42, "42"},
		{-3, "-3"},
		{1234.5, "1234"},
		{12.345, "12.35"},
		{0.5, "0.5000"},
		{0.0001, "0.0001"},
		{1e-7, "1e-07"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.v); got != c.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestPct(t *testing.T) {
	if Pct(0.5) != "50.0%" || Pct(0.123) != "12.3%" || Pct(0) != "0.0%" {
		t.Errorf("Pct output wrong: %q %q %q", Pct(0.5), Pct(0.123), Pct(0))
	}
}
