// Package report renders tables and data series as aligned plain text, the
// output format of every reproduced figure and table. Figures are emitted
// as columnar series (x plus one column per line of the plot) so they can
// be eyeballed, diffed, or piped into a plotting tool.
package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a titled grid.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row of cells (stringified with %v).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Figure is a titled multi-series plot emitted as columns.
type Figure struct {
	Title  string
	XLabel string
	// Series holds the y-column names in order.
	Series []string
	// X are the sample positions; Y[i][j] is series i at X[j]. Series may
	// be ragged (shorter than X); missing cells render as "-".
	X []float64
	Y [][]float64
}

// NewFigure builds a figure shell.
func NewFigure(title, xlabel string, series ...string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, Series: series, Y: make([][]float64, len(series))}
}

// AddPoint appends an x position with one y value per series.
func (f *Figure) AddPoint(x float64, ys ...float64) {
	f.X = append(f.X, x)
	for i := range f.Series {
		if i < len(ys) {
			f.Y[i] = append(f.Y[i], ys[i])
		}
	}
}

// Render writes the figure as an aligned column block.
func (f *Figure) Render(w io.Writer) error {
	t := Table{Title: f.Title, Columns: append([]string{f.XLabel}, f.Series...)}
	for j, x := range f.X {
		row := make([]string, 0, len(f.Series)+1)
		row = append(row, FormatFloat(x))
		for i := range f.Series {
			if j < len(f.Y[i]) {
				row = append(row, FormatFloat(f.Y[i][j]))
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t.Render(w)
}

// FormatFloat renders a float compactly: integers without decimals, small
// magnitudes with enough precision to be meaningful.
func FormatFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 { //vqlint:ignore floatcmp exact integrality test, not a tolerance comparison
		return strconv.FormatInt(int64(v), 10)
	}
	abs := v
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= 1000:
		return strconv.FormatFloat(v, 'f', 0, 64)
	case abs >= 1:
		return strconv.FormatFloat(v, 'f', 2, 64)
	case abs >= 0.001:
		return strconv.FormatFloat(v, 'f', 4, 64)
	default:
		return strconv.FormatFloat(v, 'g', 3, 64)
	}
}

// Pct renders a fraction as a percentage string.
func Pct(v float64) string {
	return strconv.FormatFloat(100*v, 'f', 1, 64) + "%"
}
