package trace

import (
	"bytes"
	"io"
	"path/filepath"
	"testing"

	"repro/internal/attr"
	"repro/internal/metric"
	"repro/internal/session"
)

func testSpace(t *testing.T) *attr.Space {
	t.Helper()
	s, err := attr.NewSpace(map[attr.Dim][]string{
		attr.ASN:        {"AS1", "AS2", "AS3"},
		attr.CDN:        {"cdn-a", "cdn-b"},
		attr.Site:       {"s1", "s2", "s3", "s4"},
		attr.VoDOrLive:  {"VoD", "Live"},
		attr.PlayerType: {"Flash", "HTML5"},
		attr.Browser:    {"Chrome", "Safari"},
		attr.ConnType:   {"DSL", "Mobile"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func sampleSessions(n int) []session.Session {
	out := make([]session.Session, n)
	for i := range out {
		out[i] = session.Session{
			ID:    uint64(i + 1),
			Epoch: 3,
			Attrs: attr.Vector{int32(i % 3), int32(i % 2), int32(i % 4), 0, 1, 0, 1},
			QoE: metric.QoE{
				JoinTimeMS:  float64(1000 + i),
				BufRatio:    0.01 * float64(i%5),
				BitrateKbps: 2000,
				DurationS:   300,
			},
			EventIDs: session.NoEvents,
		}
	}
	return out
}

func roundTrip(t *testing.T, compress bool) {
	t.Helper()
	space := testSpace(t)
	h := HeaderFor(space, 336, 12345)
	h.Comment = "unit test"
	var buf bytes.Buffer
	w, err := NewWriter(&buf, h, compress)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleSessions(100)
	if err := w.WriteAll(want); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 100 {
		t.Errorf("Count = %d, want 100", w.Count())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != ErrClosed {
		t.Errorf("double Close = %v, want ErrClosed", err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d sessions, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("session %d mismatch", i)
		}
	}
	hdr := r.Header()
	if hdr.Epochs != 336 || hdr.Seed != 12345 || hdr.Comment != "unit test" {
		t.Errorf("header = %+v", hdr)
	}
	back, err := hdr.Space()
	if err != nil {
		t.Fatal(err)
	}
	if back.Cardinality(attr.Site) != 4 {
		t.Errorf("restored space cardinality = %d", back.Cardinality(attr.Site))
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripPlain(t *testing.T)      { roundTrip(t, false) }
func TestRoundTripCompressed(t *testing.T) { roundTrip(t, true) }

func TestFileRoundTrip(t *testing.T) {
	for _, name := range []string{"t.vqt", "t.vqt.gz"} {
		path := filepath.Join(t.TempDir(), name)
		w, err := Create(path, HeaderFor(testSpace(t), 10, 1))
		if err != nil {
			t.Fatal(err)
		}
		want := sampleSessions(10)
		if err := w.WriteAll(want); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 10 || got[9] != want[9] {
			t.Errorf("%s: bad round trip", name)
		}
		r.Close()
	}
}

func TestForEach(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, HeaderFor(testSpace(t), 1, 0), false)
	w.WriteAll(sampleSessions(7))
	w.Close()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := r.ForEach(func(s *session.Session) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Errorf("ForEach visited %d, want 7", n)
	}
}

func TestReaderErrors(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOTATRACE........"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Truncated record: a crashed writer's torn tail is skipped with the
	// TornTail flag set, not surfaced as a fatal decode error.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, HeaderFor(testSpace(t), 1, 0), false)
	s := sampleSessions(1)[0]
	w.Write(&s)
	w.Close()
	full := buf.Bytes()
	r, err := NewReader(bytes.NewReader(full[:len(full)-10]))
	if err != nil {
		t.Fatal(err)
	}
	var out session.Session
	if err := r.Next(&out); err != io.EOF {
		t.Errorf("torn tail: Next = %v, want io.EOF", err)
	}
	if !r.TornTail() {
		t.Error("torn tail not flagged")
	}
}

func TestVersionCheck(t *testing.T) {
	var buf bytes.Buffer
	h := HeaderFor(testSpace(t), 1, 0)
	w, _ := NewWriter(&buf, h, false)
	w.Close()
	// Corrupt the embedded version digit (JSON "version":1).
	raw := buf.Bytes()
	idx := bytes.Index(raw, []byte(`"version":1`))
	if idx < 0 {
		t.Fatal("version field not found")
	}
	raw[idx+len(`"version":`)] = '9'
	if _, err := NewReader(bytes.NewReader(raw)); err == nil {
		t.Error("future version accepted")
	}
}

func TestClosedReaderWriter(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, HeaderFor(testSpace(t), 1, 0), false)
	w.Close()
	s := sampleSessions(1)[0]
	if err := w.Write(&s); err != ErrClosed {
		t.Errorf("Write after Close = %v", err)
	}
	w2, _ := NewWriter(&buf, HeaderFor(testSpace(t), 1, 0), false)
	w2.Close()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	if err := r.Next(&s); err != ErrClosed {
		t.Errorf("Next after Close = %v", err)
	}
	if err := r.Close(); err != ErrClosed {
		t.Errorf("double Close = %v", err)
	}
}
