package trace

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/session"
)

// TestTornTailRecoveryEveryTruncation is the golden crash-recovery test:
// a trace of N sessions truncated at every byte offset inside the final
// record (including losing it entirely) must recover exactly the first
// N−1 sessions, flag the tear when the tail is partial, and never return
// a decode error.
func TestTornTailRecoveryEveryTruncation(t *testing.T) {
	const n = 5
	want := sampleSessions(n)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, HeaderFor(testSpace(t), 1, 0), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteAll(want); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	recSize := (len(full) - headerLen(t, full)) / n
	lastStart := len(full) - recSize

	for cut := 0; cut < recSize; cut++ {
		truncated := full[:lastStart+cut]
		r, err := NewReader(bytes.NewReader(truncated))
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		got, err := r.ReadAll()
		if err != nil {
			t.Fatalf("cut %d: ReadAll: %v", cut, err)
		}
		if len(got) != n-1 {
			t.Fatalf("cut %d: recovered %d sessions, want %d", cut, len(got), n-1)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("cut %d: session %d corrupted by recovery", cut, i)
			}
		}
		if wantTorn := cut > 0; r.TornTail() != wantTorn {
			t.Fatalf("cut %d: TornTail = %v, want %v", cut, r.TornTail(), wantTorn)
		}
	}
}

// headerLen locates the end of the container header by writing an empty
// trace with the same catalog.
func headerLen(t *testing.T, full []byte) int {
	t.Helper()
	var empty bytes.Buffer
	w, err := NewWriter(&empty, HeaderFor(testSpace(t), 1, 0), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(full, empty.Bytes()) {
		t.Fatal("traces with identical headers diverge before records")
	}
	return empty.Len()
}

func TestTornTailWarningLogged(t *testing.T) {
	want := sampleSessions(2)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, HeaderFor(testSpace(t), 1, 0), false)
	if err := w.WriteAll(want); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()[:buf.Len()-3]))
	if err != nil {
		t.Fatal(err)
	}
	warnings := 0
	r.Logf = func(format string, args ...any) { warnings++ }
	if _, err := r.ReadAll(); err != nil {
		t.Fatal(err)
	}
	if warnings != 1 {
		t.Fatalf("torn tail logged %d warnings, want 1", warnings)
	}
}

func TestCreateAtomicRenamesOnClose(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.vqt")
	w, err := CreateAtomic(path, HeaderFor(testSpace(t), 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	sessions := sampleSessions(3)
	if err := w.WriteAll(sessions); err != nil {
		t.Fatal(err)
	}
	// Mid-write: the final path must not exist, only the partial.
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("final path visible before Close (err=%v)", err)
	}
	if _, err := os.Stat(path + ".partial"); err != nil {
		t.Fatalf("partial file missing mid-write: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".partial"); !os.IsNotExist(err) {
		t.Fatalf("partial file survived Close (err=%v)", err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(sessions) {
		t.Fatalf("read %d sessions, want %d", len(got), len(sessions))
	}
}

func TestSyncEveryAndCrashRecoveryOnDisk(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "crashy.vqt")
	w, err := Create(path, HeaderFor(testSpace(t), 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	w.SyncEvery = 2
	sessions := sampleSessions(6)
	if err := w.WriteAll(sessions); err != nil {
		t.Fatal(err)
	}
	// Crash: the process dies without Close. SyncEvery=2 has already
	// flushed (and fsynced) through record 6; simulate a torn tail by
	// appending garbage shorter than one record, as an interrupted final
	// write would leave.
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := 0
	for {
		var s session.Session
		if err := r.Next(&s); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("recovery hit %v", err)
		}
		got++
	}
	if got != len(sessions) || !r.TornTail() {
		t.Fatalf("recovered %d sessions (torn=%v), want %d with torn tail", got, r.TornTail(), len(sessions))
	}
}

// TestRelaySpoolRotationCrashRecovery models satellite fact of the relay
// tier: spool segments are trace containers written with Flush after every
// record and sealed (synced, closed) at rotation. A node killed mid-rotation
// leaves a sealed previous segment and an active segment cut at an arbitrary
// byte — anywhere from inside the container header to inside a record. The
// sweep truncates the active segment at EVERY byte offset and requires one
// of exactly two outcomes: a clean open error (header torn) or a successful
// recovery of every complete record with TornTail set iff a partial record
// was dropped. Never a decode error, never a phantom session.
func TestRelaySpoolRotationCrashRecovery(t *testing.T) {
	const perSeg = 4
	want := sampleSessions(2 * perSeg)
	dir := t.TempDir()

	writeSegment := func(path string, sessions []session.Session, seal bool) []byte {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		w, err := NewWriter(f, HeaderFor(testSpace(t), 1, 0), false)
		if err != nil {
			t.Fatal(err)
		}
		// The relay's write path: record, then Flush — every record is on
		// the file the instant the write returns, fsync left to the sealer.
		for i := range sessions {
			if err := w.Write(&sessions[i]); err != nil {
				t.Fatal(err)
			}
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
		}
		if seal {
			if err := w.Sync(); err != nil {
				t.Fatal(err)
			}
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}

	sealed := writeSegment(filepath.Join(dir, "seg-000000.vqt"), want[:perSeg], true)
	active := writeSegment(filepath.Join(dir, "seg-000001.vqt"), want[perSeg:], false)

	// The sealed segment survives the crash byte-for-byte: full recovery.
	r, err := NewReader(bytes.NewReader(sealed))
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != perSeg || r.TornTail() {
		t.Fatalf("sealed segment: %d sessions (torn=%v), want %d intact", len(got), r.TornTail(), perSeg)
	}

	hdr := headerLen(t, active)
	recSize := (len(active) - hdr) / perSeg
	for cut := 0; cut <= len(active); cut++ {
		r, err := NewReader(bytes.NewReader(active[:cut]))
		if cut < hdr {
			// Torn inside the container header: the segment must refuse to
			// open with an ordinary error, not misparse.
			if err == nil {
				t.Fatalf("cut %d (inside %d-byte header): opened a torn header", cut, hdr)
			}
			continue
		}
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		got, err := r.ReadAll()
		if err != nil {
			t.Fatalf("cut %d: ReadAll: %v", cut, err)
		}
		wholeRecs := (cut - hdr) / recSize
		partial := (cut-hdr)%recSize != 0
		if len(got) != wholeRecs {
			t.Fatalf("cut %d: recovered %d sessions, want %d", cut, len(got), wholeRecs)
		}
		for i := range got {
			if got[i] != want[perSeg+i] {
				t.Fatalf("cut %d: session %d corrupted by recovery", cut, i)
			}
		}
		if r.TornTail() != partial {
			t.Fatalf("cut %d: TornTail = %v, want %v", cut, r.TornTail(), partial)
		}
	}
}
