package trace

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/session"
)

// TestTornTailRecoveryEveryTruncation is the golden crash-recovery test:
// a trace of N sessions truncated at every byte offset inside the final
// record (including losing it entirely) must recover exactly the first
// N−1 sessions, flag the tear when the tail is partial, and never return
// a decode error.
func TestTornTailRecoveryEveryTruncation(t *testing.T) {
	const n = 5
	want := sampleSessions(n)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, HeaderFor(testSpace(t), 1, 0), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteAll(want); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	recSize := (len(full) - headerLen(t, full)) / n
	lastStart := len(full) - recSize

	for cut := 0; cut < recSize; cut++ {
		truncated := full[:lastStart+cut]
		r, err := NewReader(bytes.NewReader(truncated))
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		got, err := r.ReadAll()
		if err != nil {
			t.Fatalf("cut %d: ReadAll: %v", cut, err)
		}
		if len(got) != n-1 {
			t.Fatalf("cut %d: recovered %d sessions, want %d", cut, len(got), n-1)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("cut %d: session %d corrupted by recovery", cut, i)
			}
		}
		if wantTorn := cut > 0; r.TornTail() != wantTorn {
			t.Fatalf("cut %d: TornTail = %v, want %v", cut, r.TornTail(), wantTorn)
		}
	}
}

// headerLen locates the end of the container header by writing an empty
// trace with the same catalog.
func headerLen(t *testing.T, full []byte) int {
	t.Helper()
	var empty bytes.Buffer
	w, err := NewWriter(&empty, HeaderFor(testSpace(t), 1, 0), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(full, empty.Bytes()) {
		t.Fatal("traces with identical headers diverge before records")
	}
	return empty.Len()
}

func TestTornTailWarningLogged(t *testing.T) {
	want := sampleSessions(2)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, HeaderFor(testSpace(t), 1, 0), false)
	if err := w.WriteAll(want); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()[:buf.Len()-3]))
	if err != nil {
		t.Fatal(err)
	}
	warnings := 0
	r.Logf = func(format string, args ...any) { warnings++ }
	if _, err := r.ReadAll(); err != nil {
		t.Fatal(err)
	}
	if warnings != 1 {
		t.Fatalf("torn tail logged %d warnings, want 1", warnings)
	}
}

func TestCreateAtomicRenamesOnClose(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.vqt")
	w, err := CreateAtomic(path, HeaderFor(testSpace(t), 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	sessions := sampleSessions(3)
	if err := w.WriteAll(sessions); err != nil {
		t.Fatal(err)
	}
	// Mid-write: the final path must not exist, only the partial.
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("final path visible before Close (err=%v)", err)
	}
	if _, err := os.Stat(path + ".partial"); err != nil {
		t.Fatalf("partial file missing mid-write: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".partial"); !os.IsNotExist(err) {
		t.Fatalf("partial file survived Close (err=%v)", err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(sessions) {
		t.Fatalf("read %d sessions, want %d", len(got), len(sessions))
	}
}

func TestSyncEveryAndCrashRecoveryOnDisk(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "crashy.vqt")
	w, err := Create(path, HeaderFor(testSpace(t), 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	w.SyncEvery = 2
	sessions := sampleSessions(6)
	if err := w.WriteAll(sessions); err != nil {
		t.Fatal(err)
	}
	// Crash: the process dies without Close. SyncEvery=2 has already
	// flushed (and fsynced) through record 6; simulate a torn tail by
	// appending garbage shorter than one record, as an interrupted final
	// write would leave.
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := 0
	for {
		var s session.Session
		if err := r.Next(&s); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("recovery hit %v", err)
		}
		got++
	}
	if got != len(sessions) || !r.TornTail() {
		t.Fatalf("recovered %d sessions (torn=%v), want %d with torn tail", got, r.TornTail(), len(sessions))
	}
}
