package trace

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/epoch"
	"repro/internal/session"
)

// writeEpochedTrace writes a small uncompressed trace with known per-epoch
// counts.
func writeEpochedTrace(t *testing.T, path string, counts map[epoch.Index]int) {
	t.Helper()
	w, err := Create(path, HeaderFor(testSpace(t), len(counts), 1))
	if err != nil {
		t.Fatal(err)
	}
	id := uint64(1)
	// Ordered epochs.
	for e := epoch.Index(0); int(e) < 10; e++ {
		for i := 0; i < counts[e]; i++ {
			s := sampleSessions(1)[0]
			s.ID = id
			s.Epoch = e
			id++
			if err := w.Write(&s); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestIndexRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.vqt")
	counts := map[epoch.Index]int{0: 5, 1: 3, 3: 7} // epoch 2 empty
	writeEpochedTrace(t, path, counts)

	idx, err := BuildIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Entries) != 3 {
		t.Fatalf("entries = %d, want 3", len(idx.Entries))
	}
	for e, want := range counts {
		entry := idx.Find(e)
		if entry == nil || entry.Count != int64(want) {
			t.Fatalf("epoch %d entry = %+v, want count %d", e, entry, want)
		}
	}
	if idx.Find(2) != nil {
		t.Error("empty epoch should not be indexed")
	}

	// Save/Load.
	idxPath := filepath.Join(dir, "t.idx")
	if err := idx.Save(idxPath); err != nil {
		t.Fatal(err)
	}
	back, err := LoadIndex(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Entries) != len(idx.Entries) || back.DataOffset != idx.DataOffset {
		t.Fatal("index round trip mismatch")
	}

	// Random access.
	sessions, err := ReadEpoch(path, back, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 7 {
		t.Fatalf("read %d sessions for epoch 3, want 7", len(sessions))
	}
	for _, s := range sessions {
		if s.Epoch != 3 {
			t.Fatalf("random access returned epoch %d", s.Epoch)
		}
	}
	// Cross-check against a full scan.
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var scanned []session.Session
	if err := r.ForEach(func(s *session.Session) error {
		if s.Epoch == 3 {
			scanned = append(scanned, *s)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range scanned {
		if scanned[i] != sessions[i] {
			t.Fatalf("record %d differs between scan and random access", i)
		}
	}
}

func TestIndexErrors(t *testing.T) {
	dir := t.TempDir()
	// Compressed traces cannot be indexed.
	gz := filepath.Join(dir, "t.vqt.gz")
	writeEpochedTrace(t, gz, map[epoch.Index]int{0: 2})
	if _, err := BuildIndex(gz); err == nil {
		t.Error("compressed trace indexed")
	}
	// Missing epoch.
	plain := filepath.Join(dir, "t.vqt")
	writeEpochedTrace(t, plain, map[epoch.Index]int{0: 2})
	idx, err := BuildIndex(plain)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadEpoch(plain, idx, 9); err == nil {
		t.Error("missing epoch read succeeded")
	}
	if _, err := LoadIndex(filepath.Join(dir, "absent.idx")); err == nil {
		t.Error("missing index loaded")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	// Exercised here to keep codec coverage beside the container tests.
	sessions := sampleSessions(5)
	sessions[2].QoE.JoinFailed = true
	sessions[3].EventIDs = [4]int32{7, -1, -1, 2}
	dir := t.TempDir()
	path := filepath.Join(dir, "s.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := session.WriteJSONL(f, sessions); err != nil {
		t.Fatal(err)
	}
	f.Close()
	g, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	got, err := session.ReadJSONL(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(sessions) {
		t.Fatalf("read %d, want %d", len(got), len(sessions))
	}
	for i := range sessions {
		if got[i] != sessions[i] {
			t.Errorf("session %d mismatch:\n got %+v\nwant %+v", i, got[i], sessions[i])
		}
	}
}
