package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/epoch"
	"repro/internal/session"
)

// Index maps epochs to record positions in an uncompressed trace, enabling
// random access to one epoch (the diagnostic drill-down path) without
// rescanning the file. Compressed traces are not seekable; Build refuses
// them.
type Index struct {
	// DataOffset is the byte offset of the first record (end of header).
	DataOffset int64 `json:"data_offset"`
	// Entries are ordered by epoch.
	Entries []IndexEntry `json:"entries"`
}

// IndexEntry locates one epoch's records.
type IndexEntry struct {
	Epoch epoch.Index `json:"epoch"`
	// Offset is the byte offset of the epoch's first record.
	Offset int64 `json:"offset"`
	// Count is the number of records in the epoch.
	Count int64 `json:"count"`
}

// BuildIndex scans an uncompressed trace file and constructs its index.
func BuildIndex(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := NewReader(f)
	if err != nil {
		return nil, err
	}
	if r.gz != nil {
		return nil, fmt.Errorf("trace: cannot index a compressed trace")
	}
	// The bufio reader has consumed the header; its current file position
	// is the header length minus what remains buffered.
	pos, err := f.Seek(0, io.SeekCurrent)
	if err != nil {
		return nil, err
	}
	dataOffset := pos - int64(r.br.Buffered())

	idx := &Index{DataOffset: dataOffset}
	rec := int64(0)
	size := int64(session.BinarySize())
	var s session.Session
	for {
		err := r.Next(&s)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		n := len(idx.Entries)
		if n == 0 || idx.Entries[n-1].Epoch != s.Epoch {
			if n > 0 && idx.Entries[n-1].Epoch > s.Epoch {
				return nil, fmt.Errorf("trace: not epoch-ordered (%d after %d)", s.Epoch, idx.Entries[n-1].Epoch)
			}
			idx.Entries = append(idx.Entries, IndexEntry{
				Epoch:  s.Epoch,
				Offset: dataOffset + rec*size,
			})
		}
		idx.Entries[len(idx.Entries)-1].Count++
		rec++
	}
	return idx, nil
}

// Save writes the index as JSON.
func (idx *Index) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(idx); err != nil {
		_ = f.Close() // the encode error is the one worth surfacing
		return err
	}
	return f.Close()
}

// LoadIndex reads an index written by Save.
func LoadIndex(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var idx Index
	if err := json.NewDecoder(f).Decode(&idx); err != nil {
		return nil, fmt.Errorf("trace: decoding index: %w", err)
	}
	return &idx, nil
}

// Find returns the entry for epoch e, or nil.
func (idx *Index) Find(e epoch.Index) *IndexEntry {
	for i := range idx.Entries {
		if idx.Entries[i].Epoch == e {
			return &idx.Entries[i]
		}
	}
	return nil
}

// ReadEpoch random-accesses one epoch's sessions from an uncompressed trace
// using the index.
func ReadEpoch(path string, idx *Index, e epoch.Index) ([]session.Session, error) {
	entry := idx.Find(e)
	if entry == nil {
		return nil, fmt.Errorf("trace: epoch %d not in index", e)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if _, err := f.Seek(entry.Offset, io.SeekStart); err != nil {
		return nil, err
	}
	size := session.BinarySize()
	buf := make([]byte, size)
	out := make([]session.Session, 0, entry.Count)
	for i := int64(0); i < entry.Count; i++ {
		if _, err := io.ReadFull(f, buf); err != nil {
			return nil, fmt.Errorf("trace: reading epoch %d record %d: %w", e, i, err)
		}
		var s session.Session
		if _, err := session.DecodeBinary(buf, &s); err != nil {
			return nil, err
		}
		if s.Epoch != e {
			return nil, fmt.Errorf("trace: index out of date: found epoch %d at epoch %d's offset", s.Epoch, e)
		}
		out = append(out, s)
	}
	return out, nil
}
