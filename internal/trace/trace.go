// Package trace stores session datasets on disk. A trace file is a small
// self-describing container: a header carrying the format version, the
// attribute-space catalog (so a trace is interpretable on its own), and a
// stream of fixed-width binary session records, optionally gzip-compressed.
// Readers stream; nothing requires the whole dataset in memory.
package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/attr"
	"repro/internal/session"
)

// Magic and Version identify the container format.
const (
	Magic   = "VQTRACE1"
	Version = 1
)

// ErrClosed is returned by operations on a closed writer or reader.
var ErrClosed = errors.New("trace: closed")

// Header describes a trace.
type Header struct {
	Version int `json:"version"`
	// Epochs is the number of one-hour epochs the trace spans.
	Epochs int `json:"epochs"`
	// Seed reproduces a synthetic trace exactly.
	Seed uint64 `json:"seed"`
	// Attrs carries the value-name catalog per dimension, in attr.Dim
	// order.
	Attrs [attr.NumDims][]string `json:"attrs"`
	// Comment is free-form provenance (generator config and so on).
	Comment string `json:"comment,omitempty"`
}

// Space reconstructs the attribute space from the header catalog.
func (h *Header) Space() (*attr.Space, error) {
	m := make(map[attr.Dim][]string, attr.NumDims)
	for d := attr.Dim(0); d < attr.NumDims; d++ {
		m[d] = h.Attrs[d]
	}
	return attr.NewSpace(m)
}

// HeaderFor builds a header embedding the given space catalog.
func HeaderFor(space *attr.Space, epochs int, seed uint64) Header {
	var h Header
	h.Version = Version
	h.Epochs = epochs
	h.Seed = seed
	for d := attr.Dim(0); d < attr.NumDims; d++ {
		names := make([]string, space.Cardinality(d))
		for i := range names {
			names[i] = space.Name(d, int32(i))
		}
		h.Attrs[d] = names
	}
	return h
}

// Writer streams sessions into a trace container.
type Writer struct {
	raw    io.Closer // underlying file, nil for in-memory sinks
	gz     *gzip.Writer
	bw     *bufio.Writer
	buf    []byte
	count  uint64
	closed bool

	// SyncEvery syncs the container to stable storage every this many
	// records (0 disables record-count syncing). A crash then loses at
	// most SyncEvery records plus one possibly-torn tail record, which
	// Reader recovers past.
	SyncEvery uint64
	lastSync  uint64

	// finalPath, when set, makes Close rename the underlying file there
	// (CreateAtomic): readers only ever observe complete containers.
	finalPath string
	tempPath  string
}

// NewWriter writes a trace to w. When compress is set the record stream is
// gzip-compressed (the header stays plain so files remain identifiable).
func NewWriter(w io.Writer, h Header, compress bool) (*Writer, error) {
	h.Version = Version
	meta, err := json.Marshal(&h)
	if err != nil {
		return nil, fmt.Errorf("trace: encoding header: %w", err)
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(Magic); err != nil {
		return nil, err
	}
	flags := byte(0)
	if compress {
		flags = 1
	}
	if err := bw.WriteByte(flags); err != nil {
		return nil, err
	}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(meta)))
	if _, err := bw.Write(lenBuf[:]); err != nil {
		return nil, err
	}
	if _, err := bw.Write(meta); err != nil {
		return nil, err
	}
	tw := &Writer{bw: bw}
	if compress {
		tw.gz = gzip.NewWriter(bw)
	}
	return tw, nil
}

// Create opens path for writing and returns a Writer over it. Paths ending
// in ".gz" are compressed.
func Create(path string, h Header) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w, err := NewWriter(f, h, hasGzSuffix(path))
	if err != nil {
		_ = f.Close() // the header error is the one worth surfacing
		return nil, err
	}
	w.raw = f
	return w, nil
}

// CreateAtomic is Create with atomic rotation semantics: records stream
// into path+".partial" and Close renames it to path, so a reader that
// opens path never sees a half-written container. A crash leaves only the
// .partial file (recoverable via Open and torn-tail handling); the
// previous complete trace at path, if any, is untouched until the rename.
func CreateAtomic(path string, h Header) (*Writer, error) {
	tmp := path + ".partial"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, err
	}
	// Compression follows the final path's extension, not the temp name.
	w, err := NewWriter(f, h, hasGzSuffix(path))
	if err != nil {
		_ = f.Close() // the header error is the one worth surfacing
		return nil, err
	}
	w.raw = f
	w.tempPath = tmp
	w.finalPath = path
	return w, nil
}

func hasGzSuffix(path string) bool {
	return len(path) > 3 && path[len(path)-3:] == ".gz"
}

func (w *Writer) sink() io.Writer {
	if w.gz != nil {
		return w.gz
	}
	return w.bw
}

// Write appends one session record, syncing when SyncEvery is due.
func (w *Writer) Write(s *session.Session) error {
	if w.closed {
		return ErrClosed
	}
	w.buf = session.AppendBinary(w.buf[:0], s)
	if _, err := w.sink().Write(w.buf); err != nil {
		return err
	}
	w.count++
	if w.SyncEvery > 0 && w.count-w.lastSync >= w.SyncEvery {
		return w.Sync()
	}
	return nil
}

// WriteAll appends a batch of sessions.
func (w *Writer) WriteAll(sessions []session.Session) error {
	for i := range sessions {
		if err := w.Write(&sessions[i]); err != nil {
			return err
		}
	}
	return nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() uint64 { return w.count }

// Flush pushes everything written so far down to the underlying sink —
// gzip-flush (a decodable sync point) then bufio flush — without an fsync.
// The relay spool uses it to keep every record visible in its segment file
// after each write while leaving fsync policy (and cost) to the segment
// owner; for durability against machine crashes use Sync.
func (w *Writer) Flush() error {
	if w.closed {
		return ErrClosed
	}
	if w.gz != nil {
		if err := w.gz.Flush(); err != nil {
			return err
		}
	}
	return w.bw.Flush()
}

// Sync is Flush plus fsync when the sink is a file: everything written so
// far reaches stable storage. In-memory sinks flush but have nothing to
// fsync.
func (w *Writer) Sync() error {
	if err := w.Flush(); err != nil {
		return err
	}
	if f, ok := w.raw.(*os.File); ok {
		if err := f.Sync(); err != nil {
			return err
		}
	}
	w.lastSync = w.count
	return nil
}

// Close flushes, syncs, and closes the trace, then — for CreateAtomic
// writers — renames the temp file into place so the final path only ever
// holds a complete container. The pre-close Sync makes a clean shutdown
// actually durable; without it the data could still be riding the page
// cache when the process exits.
func (w *Writer) Close() error {
	if w.closed {
		return ErrClosed
	}
	if w.gz != nil {
		if err := w.gz.Close(); err != nil {
			w.closed = true
			return err
		}
		w.gz = nil // already closed; Sync below must not flush it again
	}
	if err := w.Sync(); err != nil {
		w.closed = true
		return err
	}
	w.closed = true
	if w.raw != nil {
		if err := w.raw.Close(); err != nil {
			return err
		}
	}
	if w.finalPath != "" {
		return os.Rename(w.tempPath, w.finalPath)
	}
	return nil
}

// Reader streams sessions out of a trace container.
type Reader struct {
	header Header
	raw    io.Closer
	gz     *gzip.Reader
	br     *bufio.Reader
	buf    []byte
	closed bool

	// Logf receives the torn-tail warning (nil silences it).
	Logf func(format string, args ...any)
	torn bool
}

// NewReader opens a trace from r.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	flags, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if flags&^1 != 0 {
		return nil, fmt.Errorf("trace: unknown flags %#x", flags)
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
		return nil, err
	}
	metaLen := binary.LittleEndian.Uint32(lenBuf[:])
	if metaLen > 1<<24 {
		return nil, fmt.Errorf("trace: implausible header length %d", metaLen)
	}
	meta := make([]byte, metaLen)
	if _, err := io.ReadFull(br, meta); err != nil {
		return nil, err
	}
	tr := &Reader{br: br, buf: make([]byte, session.BinarySize())}
	if err := json.Unmarshal(meta, &tr.header); err != nil {
		return nil, fmt.Errorf("trace: decoding header: %w", err)
	}
	if tr.header.Version != Version {
		return nil, fmt.Errorf("trace: unsupported version %d", tr.header.Version)
	}
	if flags&1 != 0 {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("trace: opening gzip stream: %w", err)
		}
		tr.gz = gz
	}
	return tr, nil
}

// Open opens a trace file at path.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := NewReader(f)
	if err != nil {
		_ = f.Close() // the header error is the one worth surfacing
		return nil, err
	}
	r.raw = f
	return r, nil
}

// Header returns the trace header.
func (r *Reader) Header() Header { return r.header }

func (r *Reader) source() io.Reader {
	if r.gz != nil {
		return r.gz
	}
	return r.br
}

// Next reads the next session into s. It returns io.EOF at the end of the
// trace. A torn tail — the stream ending mid-record, as a crashed writer
// leaves it — is recovered, not fatal: the partial record is skipped with
// a warning, TornTail is set, and Next reports a clean io.EOF. Everything
// before the tear has already been returned intact.
func (r *Reader) Next(s *session.Session) error {
	if r.closed {
		return ErrClosed
	}
	if _, err := io.ReadFull(r.source(), r.buf); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			r.torn = true
			if r.Logf != nil {
				r.Logf("trace: torn tail record skipped (crashed writer?); sessions before it are intact")
			}
			return io.EOF
		}
		return err
	}
	_, err := session.DecodeBinary(r.buf, s)
	return err
}

// TornTail reports whether the stream ended mid-record and the partial
// tail was skipped.
func (r *Reader) TornTail() bool { return r.torn }

// ReadAll drains the trace into memory. Intended for laptop-scale traces
// and tests; large traces should use Next or ForEach.
func (r *Reader) ReadAll() ([]session.Session, error) {
	var out []session.Session
	var s session.Session
	for {
		err := r.Next(&s)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}

// ForEach streams every session through fn, stopping at the first error.
func (r *Reader) ForEach(fn func(*session.Session) error) error {
	var s session.Session
	for {
		err := r.Next(&s)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(&s); err != nil {
			return err
		}
	}
}

// Close closes the reader.
func (r *Reader) Close() error {
	if r.closed {
		return ErrClosed
	}
	r.closed = true
	if r.gz != nil {
		if err := r.gz.Close(); err != nil {
			if r.raw != nil {
				_ = r.raw.Close() // the gzip error takes precedence
			}
			return err
		}
	}
	if r.raw != nil {
		return r.raw.Close()
	}
	return nil
}
