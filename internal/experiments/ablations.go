package experiments

import (
	"fmt"
	"io"

	"repro/internal/analysis"
	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engagement"
	"repro/internal/epoch"
	"repro/internal/hhh"
	"repro/internal/metric"
	"repro/internal/report"
	"repro/internal/session"
	"repro/internal/stats"
	"repro/internal/whatif"
)

// Validation scores the detected critical clusters against the injected
// ground-truth events — the check the paper's authors could not run.
//
// Precision is measured by session overlap rather than key identity: a
// detection counts as correct when the problem sessions inside it are
// predominantly event-caused (well above the epoch's background share).
// Correlated shadows — a mobile ConnType cluster elevated by wireless-ASN
// events — are genuine findings and score as matches.
type Validation struct {
	Metric metric.Metric
	// DetectedEpochs is the number of (epoch, critical key) detections.
	DetectedEpochs int
	// MatchedEpochs is how many of those are event-dominated.
	MatchedEpochs int
	// ActiveAnchors counts (epoch, anchor) pairs of active events whose
	// anchor also shows up as a problem cluster (i.e. was detectable).
	ActiveAnchors int
	// RecoveredAnchors counts those whose anchor (or a refinement or
	// coarsening of it) was detected as critical.
	RecoveredAnchors int
}

// Precision returns MatchedEpochs / DetectedEpochs.
func (v Validation) Precision() float64 {
	if v.DetectedEpochs == 0 {
		return 0
	}
	return float64(v.MatchedEpochs) / float64(v.DetectedEpochs)
}

// Recall returns RecoveredAnchors / ActiveAnchors.
func (v Validation) Recall() float64 {
	if v.ActiveAnchors == 0 {
		return 0
	}
	return float64(v.RecoveredAnchors) / float64(v.ActiveAnchors)
}

// Validate computes ground-truth precision/recall per metric over week 1.
// Precision regenerates a sample of epochs to measure event-session overlap;
// recall tests whether detectable anchors (anchors that were problem
// clusters) were recovered as critical clusters.
func (s *Suite) Validate(w io.Writer) ([metric.NumMetrics]Validation, error) {
	sched := s.Gen.Schedule()
	var out [metric.NumMetrics]Validation
	for _, m := range metric.All() {
		out[m] = Validation{Metric: m}
	}

	// Recall over all week-1 epochs from retained keys.
	for i := range s.Week1.Epochs {
		er := &s.Week1.Epochs[i]
		for _, m := range metric.All() {
			ms := &er.Metrics[m]
			anchors := make(map[attr.Key]bool)
			for _, id := range sched.ActiveAt(er.Epoch) {
				ev := sched.Event(id)
				if ev.Metric == m {
					anchors[ev.Anchor] = true
				}
			}
			problemSet := make(map[attr.Key]bool, len(ms.ProblemKeys))
			for _, k := range ms.ProblemKeys {
				problemSet[k] = true
			}
			criticalSet := ms.CriticalSet()
			for a := range anchors {
				if !problemSet[a] {
					continue // not detectable this epoch (too small / too mild)
				}
				out[m].ActiveAnchors++
				if matchesAnchor(a, criticalSet) {
					out[m].RecoveredAnchors++
				}
			}
		}
	}

	// Precision over a regenerated epoch sample via event-tag overlap.
	for _, e := range sampleEpochs(s.Week1.Trace, 16) {
		er := s.Week1.At(e)
		if er == nil {
			continue
		}
		batch := s.Gen.EpochSessions(e)
		for _, m := range metric.All() {
			tm := newTagMatcher(batch, m, s.coreCfg.Thresholds)
			for k := range er.Metrics[m].CriticalSet() {
				out[m].DetectedEpochs++
				if tm.matches(k) {
					out[m].MatchedEpochs++
				}
			}
		}
	}
	if w == nil {
		return out, nil
	}
	t := report.Table{
		Title:   "Validation: detected critical clusters vs injected ground-truth events (week 1)",
		Columns: []string{"Metric", "Detections", "Precision", "DetectableAnchors", "Recall"},
	}
	for _, m := range metric.All() {
		v := out[m]
		t.AddRow(m.String(), v.DetectedEpochs, report.Pct(v.Precision()), v.ActiveAnchors, report.Pct(v.Recall()))
	}
	return out, t.Render(w)
}

// matchesAnchor reports whether key k appears in the set exactly, refines a
// member (member ⊆ k), or coarsens one (k ⊆ member).
func matchesAnchor(k attr.Key, set map[attr.Key]bool) bool {
	if set[k] {
		return true
	}
	for a := range set {
		if a.Subsumes(k) || k.Subsumes(a) {
			return true
		}
	}
	return false
}

// tagMatcher measures how event-dominated a detected cluster's problem
// sessions are, against one regenerated epoch.
type tagMatcher struct {
	batch       []session.Session
	m           metric.Metric
	th          metric.Thresholds
	globalShare float64
}

func newTagMatcher(batch []session.Session, m metric.Metric, th metric.Thresholds) *tagMatcher {
	tm := &tagMatcher{batch: batch, m: m, th: th}
	problems, caused := 0, 0
	for i := range batch {
		sess := &batch[i]
		if !sess.Problem(m, th) {
			continue
		}
		problems++
		if sess.CausedBy(m) {
			caused++
		}
	}
	if problems > 0 {
		tm.globalShare = float64(caused) / float64(problems)
	}
	return tm
}

// share returns the fraction of k's problem sessions caused by injected
// events.
func (tm *tagMatcher) share(k attr.Key) float64 {
	problems, caused := 0, 0
	for i := range tm.batch {
		sess := &tm.batch[i]
		if !k.Matches(sess.Attrs) || !sess.Problem(tm.m, tm.th) {
			continue
		}
		problems++
		if sess.CausedBy(tm.m) {
			caused++
		}
	}
	if problems == 0 {
		return 0
	}
	return float64(caused) / float64(problems)
}

// matches applies the precision rule: event share at least 60% and clearly
// above the epoch's background event share.
func (tm *tagMatcher) matches(k attr.Key) bool {
	sh := tm.share(k)
	return sh >= 0.6 && sh >= tm.globalShare+0.1
}

// ThresholdSweepRow is one sensitivity sample (paper §2: "the results are
// qualitatively similar for other choices of these thresholds").
type ThresholdSweepRow struct {
	Factor      float64
	BufRatioCut float64
	// MeanCritical and Coverage are for the buffering-ratio metric over a
	// sample of epochs.
	MeanProblem  float64
	MeanCritical float64
	Coverage     float64
}

// ThresholdSweep re-analyses a sample of week-1 epochs under alternative
// problem thresholds and reports the detected structure.
func (s *Suite) ThresholdSweep(w io.Writer) ([]ThresholdSweepRow, error) {
	var rows []ThresholdSweepRow
	sample := sampleEpochs(s.Week1.Trace, 12)
	if len(sample) == 0 {
		// An empty trace has no epochs to re-analyse; without this guard the
		// per-row means below divide by zero and go NaN.
		return rows, nil
	}
	for _, alt := range []struct {
		factor float64
		bufCut float64
	}{
		{1.25, 0.05}, {1.5, 0.05}, {2.0, 0.05}, {1.5, 0.03}, {1.5, 0.10},
	} {
		cfg := s.coreCfg
		cfg.Thresholds.ProblemRatioFactor = alt.factor
		cfg.Thresholds.BufRatio = alt.bufCut
		row := ThresholdSweepRow{Factor: alt.factor, BufRatioCut: alt.bufCut}
		for _, e := range sample {
			batch := s.Gen.EpochSessions(e)
			lites := digest(batch, cfg.Thresholds)
			res, err := core.AnalyzeEpoch(e, lites, cfg)
			if err != nil {
				return nil, err
			}
			ms := &res.Metrics[metric.BufRatio]
			row.MeanProblem += float64(ms.NumProblemClusters)
			row.MeanCritical += float64(len(ms.Critical))
			row.Coverage += ms.CriticalCoverage()
		}
		n := float64(len(sample))
		row.MeanProblem /= n
		row.MeanCritical /= n
		row.Coverage /= n
		rows = append(rows, row)
	}
	if w == nil {
		return rows, nil
	}
	t := report.Table{
		Title:   "Ablation: threshold sensitivity (buffering ratio, 12-epoch sample)",
		Columns: []string{"RatioFactor", "BufRatioCut", "MeanProblemClusters", "MeanCriticalClusters", "CriticalCoverage"},
	}
	for _, r := range rows {
		t.AddRow(r.Factor, r.BufRatioCut, r.MeanProblem, r.MeanCritical, report.Pct(r.Coverage))
	}
	return rows, t.Render(w)
}

// HHHComparison contrasts the hierarchical-heavy-hitter baseline with the
// critical-cluster detector on ground-truth recovery (paper §7's argument,
// quantified).
type HHHComparison struct {
	// CriticalPrecision and HHHPrecision are the fractions of detected
	// clusters matching an active ground-truth anchor.
	CriticalPrecision float64
	HHHPrecision      float64
	// CriticalMeanRatio and HHHMeanRatio are the mean problem ratios of
	// the detected clusters — HHH picks volume, not concentration.
	CriticalMeanRatio float64
	HHHMeanRatio      float64
}

// CompareHHH runs both detectors over a sample of week-1 epochs for the
// buffering-ratio metric.
func (s *Suite) CompareHHH(w io.Writer) (HHHComparison, error) {
	var out HHHComparison
	sched := s.Gen.Schedule()
	sample := sampleEpochs(s.Week1.Trace, 12)
	m := metric.BufRatio
	var critN, critMatch, hhhN, hhhMatch int
	var critRatioSum, hhhRatioSum float64
	_ = sched
	for _, e := range sample {
		batch := s.Gen.EpochSessions(e)
		lites := digest(batch, s.coreCfg.Thresholds)
		tm := newTagMatcher(batch, m, s.coreCfg.Thresholds)

		res, err := core.AnalyzeEpoch(e, lites, s.coreCfg)
		if err != nil {
			return out, err
		}
		ms := &res.Metrics[m]
		for i := range ms.Critical {
			cs := &ms.Critical[i]
			critN++
			critRatioSum += cs.Ratio
			if tm.matches(cs.Key) {
				critMatch++
			}
		}

		hres, err := hhh.Detect(lites, m, hhh.DefaultConfig())
		if err != nil {
			return out, err
		}
		tbl := cluster.NewTable(e, lites, 0)
		for _, h := range hres.Hitters {
			hhhN++
			hhhRatioSum += tbl.Get(h.Key).Ratio(m)
			if tm.matches(h.Key) {
				hhhMatch++
			}
		}
		tbl.Release()
	}
	if critN > 0 {
		out.CriticalPrecision = float64(critMatch) / float64(critN)
		out.CriticalMeanRatio = critRatioSum / float64(critN)
	}
	if hhhN > 0 {
		out.HHHPrecision = float64(hhhMatch) / float64(hhhN)
		out.HHHMeanRatio = hhhRatioSum / float64(hhhN)
	}
	if w == nil {
		return out, nil
	}
	t := report.Table{
		Title:   "Ablation: critical clusters vs hierarchical heavy hitters (buffering ratio)",
		Columns: []string{"Detector", "GroundTruthPrecision", "MeanProblemRatioOfDetected"},
	}
	t.AddRow("critical clusters", report.Pct(out.CriticalPrecision), out.CriticalMeanRatio)
	t.AddRow("hierarchical heavy hitters", report.Pct(out.HHHPrecision), out.HHHMeanRatio)
	return out, t.Render(w)
}

// HiddenAttrResult reports the coverage change when one attribute dimension
// is hidden from the analysis (paper §6, "Hidden attributes": the
// methodology generalises over whichever attributes are measurable).
type HiddenAttrResult struct {
	Dim attr.Dim
	// FullCoverage and HiddenCoverage are mean critical coverages of the
	// buffering-ratio metric with the dimension visible vs collapsed.
	FullCoverage   float64
	HiddenCoverage float64
}

// HideAttribute re-analyses a sample of epochs with dimension d collapsed
// to a single value, measuring how much explanatory power the attribute
// contributes.
func (s *Suite) HideAttribute(w io.Writer, d attr.Dim) (HiddenAttrResult, error) {
	out := HiddenAttrResult{Dim: d}
	sample := sampleEpochs(s.Week1.Trace, 12)
	if len(sample) == 0 {
		// A trace with no epochs has nothing to ablate; without this guard
		// the coverage means below divide by zero and go NaN.
		return out, nil
	}
	m := metric.BufRatio
	var full, hidden float64
	for _, e := range sample {
		batch := s.Gen.EpochSessions(e)
		lites := digest(batch, s.coreCfg.Thresholds)
		res, err := core.AnalyzeEpoch(e, lites, s.coreCfg)
		if err != nil {
			return out, err
		}
		full += res.Metrics[m].CriticalCoverage()

		blind := make([]cluster.Lite, len(lites))
		copy(blind, lites)
		for i := range blind {
			blind[i].Attrs[d] = 0
		}
		res, err = core.AnalyzeEpoch(e, blind, s.coreCfg)
		if err != nil {
			return out, err
		}
		hidden += res.Metrics[m].CriticalCoverage()
	}
	n := float64(len(sample))
	out.FullCoverage = full / n
	out.HiddenCoverage = hidden / n
	if w == nil {
		return out, nil
	}
	t := report.Table{
		Title:   fmt.Sprintf("Ablation: hiding the %s attribute (buffering ratio)", d),
		Columns: []string{"Setting", "CriticalCoverage"},
	}
	t.AddRow("all seven attributes", report.Pct(out.FullCoverage))
	t.AddRow(fmt.Sprintf("%s hidden", d), report.Pct(out.HiddenCoverage))
	return out, t.Render(w)
}

// PrevalencePersistence summarises the §4.4 headline numbers for
// EXPERIMENTS.md: the fraction of problem clusters with prevalence above
// 10% and with median persistence of at least 2 hours.
type PrevalencePersistence struct {
	Metric              metric.Metric
	PrevalenceOver10pct float64
	MedianPersist2h     float64
	MaxPersistOver24h   float64
}

// Headlines computes the §4.4 summary statistics per metric.
func (s *Suite) Headlines(w io.Writer) ([metric.NumMetrics]PrevalencePersistence, error) {
	var out [metric.NumMetrics]PrevalencePersistence
	for _, m := range metric.All() {
		h := s.History(m)
		prevDist, err := newECDF(h.PrevalenceDist(analysis.ProblemClusters))
		if err != nil {
			return out, err
		}
		meds, maxes := h.PersistenceDist(analysis.ProblemClusters)
		medDist, err := newECDF(meds)
		if err != nil {
			return out, err
		}
		maxDist, err := newECDF(maxes)
		if err != nil {
			return out, err
		}
		out[m] = PrevalencePersistence{
			Metric:              m,
			PrevalenceOver10pct: prevDist.Exceeds(0.10),
			MedianPersist2h:     medDist.Exceeds(2 - 1e-9),
			MaxPersistOver24h:   maxDist.Exceeds(24),
		}
	}
	if w == nil {
		return out, nil
	}
	t := report.Table{
		Title:   "Headline temporal statistics (paper §4.4)",
		Columns: []string{"Metric", "ClustersPrevalence>10%", "ClustersMedianPersist>=2h", "ClustersMaxPersist>24h"},
	}
	for _, m := range metric.All() {
		r := out[m]
		t.AddRow(m.String(), report.Pct(r.PrevalenceOver10pct), report.Pct(r.MedianPersist2h), report.Pct(r.MaxPersistOver24h))
	}
	return out, t.Render(w)
}

func digest(batch []session.Session, th metric.Thresholds) []cluster.Lite {
	lites := make([]cluster.Lite, len(batch))
	for i := range batch {
		lites[i] = cluster.Digest(&batch[i], th)
	}
	return lites
}

func sampleEpochs(r epoch.Range, n int) []epoch.Index {
	if n <= 0 || r.Len() == 0 {
		return nil
	}
	step := r.Len() / n
	if step < 1 {
		step = 1
	}
	var out []epoch.Index
	for e := r.Start; e < r.End && len(out) < n; e += epoch.Index(step) {
		out = append(out, e)
	}
	return out
}

func newECDF(samples []float64) (*stats.ECDF, error) { return stats.NewECDF(samples) }

// CostBenefit runs the §6 cost-of-remedy extension for one metric over
// week 1: greedy benefit-per-cost selection vs the paper's coverage-only
// ranking under shared budgets.
func (s *Suite) CostBenefit(w io.Writer, m metric.Metric) (whatif.CostBenefitResult, error) {
	res, err := whatif.CostBenefit(s.Week1, m, whatif.DefaultCostModel(), whatif.DefaultBudgetFracs())
	if err != nil {
		return res, err
	}
	if w == nil {
		return res, nil
	}
	t := report.Table{
		Title: fmt.Sprintf("Extension (§6): cost-aware selection vs coverage ranking — %s", m),
		Columns: []string{"BudgetFrac", "BPC_Selected", "BPC_Alleviated",
			"Cov_Selected", "Cov_Alleviated"},
	}
	for i := range res.ByBenefitPerCost {
		a, b := res.ByBenefitPerCost[i], res.ByCoverage[i]
		t.AddRow(a.Budget, a.Selected, report.Pct(a.Alleviated), b.Selected, report.Pct(b.Alleviated))
	}
	return res, t.Render(w)
}

// CriticalTemporal reproduces the paper's §4.2 remark that the prevalence
// and persistence analyses "repeated for the critical clusters" show the
// same skewed patterns.
type CriticalTemporal struct {
	Metric              metric.Metric
	PrevalenceOver10pct float64
	MedianPersist2h     float64
	MaxPersistOver24h   float64
}

// CriticalTemporalStats computes the §4.2 critical-cluster temporal
// statistics per metric over week 1.
func (s *Suite) CriticalTemporalStats(w io.Writer) ([metric.NumMetrics]CriticalTemporal, error) {
	var out [metric.NumMetrics]CriticalTemporal
	for _, m := range metric.All() {
		h := s.History(m)
		prev, err := newECDF(h.PrevalenceDist(analysis.CriticalClusters))
		if err != nil {
			return out, err
		}
		meds, maxes := h.PersistenceDist(analysis.CriticalClusters)
		medD, err := newECDF(meds)
		if err != nil {
			return out, err
		}
		maxD, err := newECDF(maxes)
		if err != nil {
			return out, err
		}
		out[m] = CriticalTemporal{
			Metric:              m,
			PrevalenceOver10pct: prev.Exceeds(0.10),
			MedianPersist2h:     medD.Exceeds(2 - 1e-9),
			MaxPersistOver24h:   maxD.Exceeds(24),
		}
	}
	if w == nil {
		return out, nil
	}
	t := report.Table{
		Title:   "Critical-cluster temporal statistics (paper §4.2: same skewed patterns)",
		Columns: []string{"Metric", "Prevalence>10%", "MedianPersist>=2h", "MaxPersist>24h"},
	}
	for _, m := range metric.All() {
		r := out[m]
		t.AddRow(m.String(), report.Pct(r.PrevalenceOver10pct), report.Pct(r.MedianPersist2h), report.Pct(r.MaxPersistOver24h))
	}
	return out, t.Render(w)
}

// SeedStability reruns a reduced configuration across several seeds and
// reports the spread of the headline coverage numbers — a robustness check
// the single-dataset paper could not perform.
type SeedStability struct {
	Seeds int
	// MeanCoverage and StdCoverage are per metric over seeds.
	MeanCoverage [metric.NumMetrics]float64
	StdCoverage  [metric.NumMetrics]float64
}

// StabilityAcrossSeeds runs seeds reduced suites (72 epochs, reduced
// volume) and aggregates Table 1 critical coverage.
func (s *Suite) StabilityAcrossSeeds(w io.Writer, seeds int) (SeedStability, error) {
	if seeds < 2 {
		seeds = 2
	}
	out := SeedStability{Seeds: seeds}
	var samples [metric.NumMetrics][]float64
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		genCfg := s.Gen.Config()
		genCfg.Seed = seed
		genCfg.Trace = epoch.Range{Start: 0, End: 72}
		genCfg.Events.Trace = genCfg.Trace
		if genCfg.SessionsPerEpoch > 2000 {
			genCfg.SessionsPerEpoch = 2000
		}
		sub, err := NewSuite(genCfg, core.DefaultConfig(genCfg.SessionsPerEpoch))
		if err != nil {
			return out, err
		}
		rows := analysis.Table1(sub.Week1)
		for _, m := range metric.All() {
			samples[m] = append(samples[m], rows[m].MeanCriticalCoverage)
		}
	}
	for _, m := range metric.All() {
		sum := stats.Summarize(samples[m])
		out.MeanCoverage[m] = sum.Mean
		out.StdCoverage[m] = sum.Std
	}
	if w == nil {
		return out, nil
	}
	t := report.Table{
		Title:   fmt.Sprintf("Robustness: critical coverage across %d seeds (72-epoch reduced runs)", seeds),
		Columns: []string{"Metric", "MeanCoverage", "StdDev"},
	}
	for _, m := range metric.All() {
		t.AddRow(m.String(), report.Pct(out.MeanCoverage[m]), out.StdCoverage[m])
	}
	return out, t.Render(w)
}

// WeekConsistency verifies the paper's §4 remark that "the results are
// consistent across both weeks": Table 1's aggregates computed per week.
type WeekConsistency struct {
	Metric                metric.Metric
	Week1Coverage         float64
	Week2Coverage         float64
	Week1CriticalFraction float64
	Week2CriticalFraction float64
}

// WeeklyConsistency computes the per-week comparison. Traces shorter than
// two weeks return only week-1 values.
func (s *Suite) WeeklyConsistency(w io.Writer) ([metric.NumMetrics]WeekConsistency, error) {
	var out [metric.NumMetrics]WeekConsistency
	rows1 := analysis.Table1(s.Week1)
	week2 := s.TR.Slice(s.TR.Trace.Week(1))
	var rows2 [metric.NumMetrics]analysis.Table1Row
	if week2.Trace.Len() > 0 {
		rows2 = analysis.Table1(week2)
	}
	for _, m := range metric.All() {
		out[m] = WeekConsistency{
			Metric:                m,
			Week1Coverage:         rows1[m].MeanCriticalCoverage,
			Week2Coverage:         rows2[m].MeanCriticalCoverage,
			Week1CriticalFraction: rows1[m].CriticalFraction,
			Week2CriticalFraction: rows2[m].CriticalFraction,
		}
	}
	if w == nil {
		return out, nil
	}
	t := report.Table{
		Title:   "Week-over-week consistency (paper §4: results consistent across both weeks)",
		Columns: []string{"Metric", "W1_CriticalCoverage", "W2_CriticalCoverage", "W1_Critical/Problem", "W2_Critical/Problem"},
	}
	for _, m := range metric.All() {
		r := out[m]
		t.AddRow(m.String(), report.Pct(r.Week1Coverage), report.Pct(r.Week2Coverage),
			report.Pct(r.Week1CriticalFraction), report.Pct(r.Week2CriticalFraction))
	}
	return out, t.Render(w)
}

// EngagementRow expresses the §1 motivation in the §5 what-if's terms: how
// much viewing time the problems of each metric cost, and how much the top
// 1% of critical clusters would recover.
type EngagementRow struct {
	Metric metric.Metric
	// MeanLossPerProblemMin is the mean viewing-minute loss among the
	// metric's problem sessions (relative to an otherwise-identical
	// session without that problem).
	MeanLossPerProblemMin float64
	// WeeklyLossMin extrapolates to all week-1 problem sessions.
	WeeklyLossMin float64
	// RecoveredTop1PctMin is the loss recovered by fixing the top 1% of
	// critical clusters by coverage.
	RecoveredTop1PctMin float64
}

// Engagement converts problem sessions into lost viewing time using the
// Dobrian / Krishnan-Sitaraman engagement model and prices the paper's
// top-1% fix in recovered minutes.
func (s *Suite) Engagement(w io.Writer) ([metric.NumMetrics]EngagementRow, error) {
	model := engagement.Default()
	th := s.coreCfg.Thresholds

	// Per-metric mean loss among problem sessions, over a sampled week-1
	// slice. The loss of a session's problem on metric m is measured
	// against the same session with that dimension repaired.
	var lossSum [metric.NumMetrics]float64
	var lossN [metric.NumMetrics]int
	for _, e := range sampleEpochs(s.Week1.Trace, 16) {
		for _, sess := range s.Gen.EpochSessions(e) {
			for _, m := range metric.All() {
				if !sess.QoE.Problem(m, th) {
					continue
				}
				repaired := sess.QoE
				switch m {
				case metric.BufRatio:
					repaired.BufRatio = 0.01
				case metric.Bitrate:
					repaired.BitrateKbps = th.BitrateKbps
				case metric.JoinTime:
					repaired.JoinTimeMS = 2000
				case metric.JoinFailure:
					repaired = metric.QoE{JoinTimeMS: 2000, BitrateKbps: th.BitrateKbps, BufRatio: 0.01}
				}
				loss := model.ExpectedMinutes(repaired, th) - model.ExpectedMinutes(sess.QoE, th)
				if loss < 0 {
					loss = 0
				}
				lossSum[m] += loss
				lossN[m]++
			}
		}
	}

	var out [metric.NumMetrics]EngagementRow
	fractions := []float64{0.01}
	for _, m := range metric.All() {
		row := EngagementRow{Metric: m}
		if lossN[m] > 0 {
			row.MeanLossPerProblemMin = lossSum[m] / float64(lossN[m])
		}
		var weeklyProblems float64
		for i := range s.Week1.Epochs {
			weeklyProblems += float64(s.Week1.Epochs[i].Metrics[m].GlobalProblems)
		}
		row.WeeklyLossMin = weeklyProblems * row.MeanLossPerProblemMin
		pts := whatif.Curve(s.Week1, m, whatif.ByCoverage, fractions)
		row.RecoveredTop1PctMin = pts[0].Alleviated * row.WeeklyLossMin
		out[m] = row
	}
	if w == nil {
		return out, nil
	}
	t := report.Table{
		Title: "Extension (§1 motivation): engagement cost of problems and the top-1% fix, in viewing minutes",
		Columns: []string{"Metric", "MeanLoss/ProblemSession(min)",
			"WeeklyLoss(min)", "RecoveredByTop1%(min)"},
	}
	for _, m := range metric.All() {
		r := out[m]
		t.AddRow(m.String(), r.MeanLossPerProblemMin, r.WeeklyLossMin, r.RecoveredTop1PctMin)
	}
	return out, t.Render(w)
}
