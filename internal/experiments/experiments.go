// Package experiments regenerates every table and figure of the paper's
// evaluation from a synthetic trace: the Fig. 1 metric CDFs through the
// Fig. 13 reactive timeseries and Tables 1–5, plus the ablations and
// ground-truth validations that the synthetic setting makes possible.
//
// A Suite couples a generator (the dataset) with its analysis result; each
// experiment method both returns the computed data and renders it through
// package report, so the vqreport command and the benchmark harness share
// one implementation.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/analysis"
	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/events"
	"repro/internal/metric"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/synth"
	"repro/internal/whatif"
)

// Suite bundles a generated dataset with its full analysis.
type Suite struct {
	Gen *synth.Generator
	// TR is the whole-trace analysis; Week1 is its first-week slice (the
	// paper presents §4 results over week one).
	TR    *core.TraceResult
	Week1 *core.TraceResult

	coreCfg core.Config
	hist    [metric.NumMetrics]*analysis.History
}

// NewSuite generates and analyses a dataset.
func NewSuite(genCfg synth.Config, coreCfg core.Config) (*Suite, error) {
	g, err := synth.New(genCfg)
	if err != nil {
		return nil, err
	}
	tr, err := core.AnalyzeGenerator(g, coreCfg)
	if err != nil {
		return nil, err
	}
	s := &Suite{Gen: g, TR: tr, coreCfg: coreCfg}
	s.Week1 = tr.Slice(tr.Trace.Week(0))
	return s, nil
}

// History returns (and caches) the week-1 history of metric m.
func (s *Suite) History(m metric.Metric) *analysis.History {
	if s.hist[m] == nil {
		s.hist[m] = analysis.BuildHistory(s.Week1, m)
	}
	return s.hist[m]
}

// metricSeriesNames is the fixed legend order used across figures.
var metricSeriesNames = []string{"BufRatio", "Bitrate", "JoinTime", "JoinFailure"}

// Fig1 renders the CDFs of buffering ratio, bitrate, and join time over a
// sample of week-1 epochs (paper Fig. 1). It returns the three ECDFs.
func (s *Suite) Fig1(w io.Writer) ([3]*stats.ECDF, error) {
	var buf, br, jt []float64
	week := s.TR.Trace.Week(0)
	// Every 6th epoch keeps the sample representative and cheap.
	for e := week.Start; e < week.End; e += 6 {
		for _, sess := range s.Gen.EpochSessions(e) {
			if sess.QoE.JoinFailed {
				continue
			}
			buf = append(buf, sess.QoE.BufRatio)
			br = append(br, sess.QoE.BitrateKbps)
			jt = append(jt, sess.QoE.JoinTimeMS)
		}
	}
	var out [3]*stats.ECDF
	for i, samples := range [][]float64{buf, br, jt} {
		e, err := stats.NewECDF(samples)
		if err != nil {
			return out, err
		}
		out[i] = e
	}
	if w == nil {
		return out, nil
	}

	fig := report.NewFigure(
		"Figure 1(a): CDF of buffering ratio", "buffering_ratio", "CDF")
	for _, x := range []float64{1e-5, 1e-4, 1e-3, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1} {
		fig.AddPoint(x, out[0].At(x))
	}
	if err := fig.Render(w); err != nil {
		return out, err
	}
	fig = report.NewFigure(
		"\nFigure 1(b): CDF of average bitrate", "bitrate_kbps", "CDF")
	for _, x := range []float64{200, 400, 700, 1000, 1500, 2000, 3000, 4000, 6000, 10000} {
		fig.AddPoint(x, out[1].At(x))
	}
	if err := fig.Render(w); err != nil {
		return out, err
	}
	fig = report.NewFigure(
		"\nFigure 1(c): CDF of join time", "join_time_ms", "CDF")
	for _, x := range []float64{1, 100, 500, 1000, 2000, 5000, 10000, 30000, 1e5, 1e6} {
		fig.AddPoint(x, out[2].At(x))
	}
	return out, fig.Render(w)
}

// Fig2 renders the per-epoch fraction of problem sessions per metric
// (paper Fig. 2) and returns the four series.
func (s *Suite) Fig2(w io.Writer) ([metric.NumMetrics][]float64, error) {
	var series [metric.NumMetrics][]float64
	week := s.Week1
	for i := range week.Epochs {
		for _, m := range metric.All() {
			ms := &week.Epochs[i].Metrics[m]
			ratio := 0.0
			if ms.GlobalSessions > 0 {
				ratio = float64(ms.GlobalProblems) / float64(ms.GlobalSessions)
			}
			series[m] = append(series[m], ratio)
		}
	}
	if w == nil {
		return series, nil
	}
	fig := report.NewFigure("Figure 2: fraction of problem sessions over time",
		"epoch_hour", metricSeriesNames...)
	for i := range week.Epochs {
		fig.AddPoint(float64(week.Epochs[i].Epoch),
			series[0][i], series[1][i], series[2][i], series[3][i])
	}
	if err := fig.Render(w); err != nil {
		return series, err
	}
	// The paper's §2 observation that the metrics' timeseries are only
	// weakly correlated, quantified.
	t := report.Table{
		Title:   "\nFigure 2 (companion): temporal correlation of problem-ratio series",
		Columns: []string{"MetricPair", "Pearson"},
	}
	for a := metric.Metric(0); a < metric.NumMetrics; a++ {
		for b := a + 1; b < metric.NumMetrics; b++ {
			t.AddRow(fmt.Sprintf("%s vs %s", a, b), stats.Pearson(series[a], series[b]))
		}
	}
	return series, t.Render(w)
}

// prevalenceGrid and persistenceGrid are the x-axes of Figs. 7 and 8.
var (
	prevalenceGrid  = []float64{0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.08, 0.1, 0.2, 0.25, 0.5, 1}
	persistenceGrid = []float64{1, 2, 3, 5, 10, 24, 48, 100}
)

// Fig7 renders the inverse CDF of problem-cluster prevalence per metric
// (paper Fig. 7): the fraction of problem clusters with prevalence ≥ x.
func (s *Suite) Fig7(w io.Writer) (map[metric.Metric]*stats.ECDF, error) {
	out := make(map[metric.Metric]*stats.ECDF)
	for _, m := range metric.All() {
		e, err := stats.NewECDF(s.History(m).PrevalenceDist(analysis.ProblemClusters))
		if err != nil {
			return nil, err
		}
		out[m] = e
	}
	if w == nil {
		return out, nil
	}
	fig := report.NewFigure("Figure 7: fraction of problem clusters with prevalence > x",
		"prevalence", metricSeriesNames...)
	for _, x := range prevalenceGrid {
		fig.AddPoint(x,
			out[metric.BufRatio].Exceeds(x-1e-12), out[metric.Bitrate].Exceeds(x-1e-12),
			out[metric.JoinTime].Exceeds(x-1e-12), out[metric.JoinFailure].Exceeds(x-1e-12))
	}
	return out, fig.Render(w)
}

// Fig8 renders the inverse CDFs of median and max problem-cluster
// persistence (paper Fig. 8a/8b).
func (s *Suite) Fig8(w io.Writer) (medians, maxes map[metric.Metric]*stats.ECDF, err error) {
	medians = make(map[metric.Metric]*stats.ECDF)
	maxes = make(map[metric.Metric]*stats.ECDF)
	for _, m := range metric.All() {
		med, max := s.History(m).PersistenceDist(analysis.ProblemClusters)
		if medians[m], err = stats.NewECDF(med); err != nil {
			return nil, nil, err
		}
		if maxes[m], err = stats.NewECDF(max); err != nil {
			return nil, nil, err
		}
	}
	if w == nil {
		return medians, maxes, nil
	}
	for i, set := range []map[metric.Metric]*stats.ECDF{medians, maxes} {
		title := "Figure 8(a): fraction of problem clusters with median persistence >= x hours"
		if i == 1 {
			title = "\nFigure 8(b): fraction of problem clusters with max persistence >= x hours"
		}
		fig := report.NewFigure(title, "persistence_hours", metricSeriesNames...)
		for _, x := range persistenceGrid {
			fig.AddPoint(x,
				set[metric.BufRatio].Exceeds(x-1e-9), set[metric.Bitrate].Exceeds(x-1e-9),
				set[metric.JoinTime].Exceeds(x-1e-9), set[metric.JoinFailure].Exceeds(x-1e-9))
		}
		if err := fig.Render(w); err != nil {
			return nil, nil, err
		}
	}
	return medians, maxes, nil
}

// Fig9 renders the per-epoch problem vs critical cluster counts for join
// time (paper Fig. 9) and returns the two series.
func (s *Suite) Fig9(w io.Writer) (problems, criticals []int, err error) {
	problems, criticals = analysis.ClusterCounts(s.Week1, metric.JoinTime)
	if w == nil {
		return problems, criticals, nil
	}
	fig := report.NewFigure("Figure 9: number of problem vs critical clusters (join time)",
		"epoch_hour", "problem_clusters", "critical_clusters")
	for i := range problems {
		fig.AddPoint(float64(s.Week1.Epochs[i].Epoch), float64(problems[i]), float64(criticals[i]))
	}
	return problems, criticals, fig.Render(w)
}

// Table1 renders the paper's Table 1 and returns its rows.
func (s *Suite) Table1(w io.Writer) ([metric.NumMetrics]analysis.Table1Row, error) {
	rows := analysis.Table1(s.Week1)
	if w == nil {
		return rows, nil
	}
	t := report.Table{
		Title: "Table 1: problem vs critical clusters and coverage (week 1 means)",
		Columns: []string{"Metric", "MeanProblemClusters", "MeanCriticalClusters",
			"Critical/Problem", "ProblemClusterCoverage", "CriticalClusterCoverage"},
	}
	for _, m := range metric.All() {
		r := rows[m]
		t.AddRow(m.String(), r.MeanProblemClusters, r.MeanCriticalClusters,
			report.Pct(r.CriticalFraction), report.Pct(r.MeanProblemCoverage), report.Pct(r.MeanCriticalCoverage))
	}
	return rows, t.Render(w)
}

// Fig10 renders the critical-cluster type breakdown per metric (paper
// Fig. 10) and returns the four breakdowns.
func (s *Suite) Fig10(w io.Writer) ([metric.NumMetrics]analysis.Breakdown, error) {
	var out [metric.NumMetrics]analysis.Breakdown
	for _, m := range metric.All() {
		out[m] = analysis.TypeBreakdown(s.Week1, m)
	}
	if w == nil {
		return out, nil
	}
	for _, m := range metric.All() {
		b := out[m]
		t := report.Table{
			Title:   fmt.Sprintf("Figure 10(%c): problem sessions by critical-cluster type — %s", 'a'+m, m),
			Columns: []string{"CriticalClusterType", "ProblemSessions", "Share"},
		}
		shares := b.MaskShares()
		shown := 0
		var rest float64
		for _, sh := range shares {
			if shown < 8 {
				t.AddRow(sh.Mask.String(), sh.Sessions, report.Pct(sh.Share))
				shown++
			} else {
				rest += sh.Sessions
			}
		}
		if rest > 0 {
			t.AddRow("(other combinations)", rest, report.Pct(rest/b.Total))
		}
		t.AddRow("(not attributed to critical cluster)", b.NotAttributed, report.Pct(b.NotAttributed/b.Total))
		t.AddRow("(not in any problem cluster)", b.NotInProblemCluster, report.Pct(b.NotInProblemCluster/b.Total))
		if err := t.Render(w); err != nil {
			return out, err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return out, err
		}
	}
	return out, nil
}

// Table2 renders the cross-metric Jaccard overlap of the top-100 critical
// clusters (paper Table 2).
func (s *Suite) Table2(w io.Writer) (map[[2]metric.Metric]float64, error) {
	out := analysis.Table2(s.Week1, 100)
	if w == nil {
		return out, nil
	}
	t := report.Table{
		Title:   "Table 2: Jaccard similarity of top-100 critical clusters between metrics",
		Columns: []string{"MetricPair", "Jaccard"},
	}
	var pairs [][2]metric.Metric
	for p := range out {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	for _, p := range pairs {
		t.AddRow(fmt.Sprintf("%s vs %s", p[0], p[1]), out[p])
	}
	return out, t.Render(w)
}

// Table3Row is one detected prevalent critical cluster with its ground
// truth.
type Table3Row struct {
	Metric     metric.Metric
	Key        attr.Key
	Name       string
	Prevalence float64
	// Tag is the ground-truth cause ("asian-isp", …), "episodic" for
	// transient events, or "" when no injected event anchors here.
	Tag string
}

// Table3 renders the most prevalent critical clusters (prevalence > 60%,
// single-attribute ASN/CDN/Site/ConnType — paper Table 3) annotated with
// the injected ground-truth cause.
func (s *Suite) Table3(w io.Writer) ([]Table3Row, error) {
	sched := s.Gen.Schedule()
	tagOf := make(map[anchorMetric]string)
	for i := range sched.Events {
		ev := &sched.Events[i]
		am := anchorMetric{ev.Anchor, ev.Metric}
		if _, ok := tagOf[am]; !ok || ev.Chronic {
			tagOf[am] = ev.Tag
		}
	}
	space := s.Gen.World().Space()
	var rows []Table3Row
	for _, m := range metric.All() {
		for _, pc := range analysis.PrevalentCriticals(s.History(m), 0.6, true) {
			rows = append(rows, Table3Row{
				Metric:     m,
				Key:        pc.Key,
				Name:       space.FormatKey(pc.Key),
				Prevalence: pc.Prevalence,
				Tag:        tagOf[anchorMetric{pc.Key, m}],
			})
		}
	}
	if w == nil {
		return rows, nil
	}
	t := report.Table{
		Title:   "Table 3: most prevalent critical clusters (prevalence > 60%) with ground-truth cause",
		Columns: []string{"Metric", "CriticalCluster", "Prevalence", "GroundTruth"},
	}
	for _, r := range rows {
		tag := r.Tag
		if tag == "" {
			tag = "(structural, untagged)"
		}
		t.AddRow(r.Metric.String(), r.Name, report.Pct(r.Prevalence), tag)
	}
	return rows, t.Render(w)
}

type anchorMetric struct {
	key attr.Key
	m   metric.Metric
}

// Fig11 renders the top-k alleviation curves for the three rankings (paper
// Fig. 11a–c); the returned map is ranking → metric → curve.
func (s *Suite) Fig11(w io.Writer) (map[whatif.Ranking]map[metric.Metric][]whatif.CurvePoint, error) {
	fractions := whatif.DefaultFractions()
	out := make(map[whatif.Ranking]map[metric.Metric][]whatif.CurvePoint)
	for _, r := range []whatif.Ranking{whatif.ByPrevalence, whatif.ByPersistence, whatif.ByCoverage} {
		perMetric := make(map[metric.Metric][]whatif.CurvePoint)
		for _, m := range metric.All() {
			perMetric[m] = whatif.Curve(s.Week1, m, r, fractions)
		}
		out[r] = perMetric
	}
	if w == nil {
		return out, nil
	}
	for i, r := range []whatif.Ranking{whatif.ByPrevalence, whatif.ByPersistence, whatif.ByCoverage} {
		fig := report.NewFigure(
			fmt.Sprintf("Figure 11(%c): problem sessions alleviated fixing top fraction by %s", 'a'+i, r),
			"top_fraction", metricSeriesNames...)
		for j, f := range fractions {
			fig.AddPoint(f,
				out[r][metric.BufRatio][j].Alleviated, out[r][metric.Bitrate][j].Alleviated,
				out[r][metric.JoinTime][j].Alleviated, out[r][metric.JoinFailure][j].Alleviated)
		}
		if err := fig.Render(w); err != nil {
			return out, err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return out, err
		}
	}
	return out, nil
}

// fig12Selections are the Fig. 12 candidate restrictions.
func fig12Selections() []struct {
	Name  string
	Masks map[attr.Mask]bool
} {
	union := map[attr.Mask]bool{
		attr.MaskOf(attr.Site): true, attr.MaskOf(attr.CDN): true,
		attr.MaskOf(attr.ASN): true, attr.MaskOf(attr.ConnType): true,
	}
	return []struct {
		Name  string
		Masks map[attr.Mask]bool
	}{
		{"Any", nil},
		{"Site+CDN+ASN+ConnType", union},
		{"Site", map[attr.Mask]bool{attr.MaskOf(attr.Site): true}},
		{"ASN", map[attr.Mask]bool{attr.MaskOf(attr.ASN): true}},
		{"ConnType", map[attr.Mask]bool{attr.MaskOf(attr.ConnType): true}},
		{"CDN", map[attr.Mask]bool{attr.MaskOf(attr.CDN): true}},
	}
}

// Fig12 renders the attribute-restricted selection comparison for join
// failures (paper Fig. 12); the returned map is selection name → curve.
func (s *Suite) Fig12(w io.Writer) (map[string][]whatif.CurvePoint, error) {
	fractions := whatif.DefaultFractions()
	sels := fig12Selections()
	out := make(map[string][]whatif.CurvePoint, len(sels))
	names := make([]string, 0, len(sels))
	for _, sel := range sels {
		out[sel.Name] = whatif.RestrictedCurve(s.Week1, metric.JoinFailure, sel.Masks, fractions)
		names = append(names, sel.Name)
	}
	if w == nil {
		return out, nil
	}
	fig := report.NewFigure(
		"Figure 12: join-failure alleviation, selection restricted by attribute type",
		"fraction_of_all_critical_clusters", names...)
	for j, f := range fractions {
		ys := make([]float64, len(names))
		for i, n := range names {
			ys[i] = out[n][j].Alleviated
		}
		fig.AddPoint(f, ys...)
	}
	return out, fig.Render(w)
}

// Table4Row is one proactive what-if result.
type Table4Row struct {
	Metric    metric.Metric
	IntraWeek whatif.ProactiveResult
	InterWeek whatif.ProactiveResult
}

// Table4 renders the proactive strategy results (paper Table 4): intra-week
// (train days 1–4, test days 5–7) and inter-week (train week 1, test week
// 2), fixing the top 1% of critical clusters by coverage.
func (s *Suite) Table4(w io.Writer) ([metric.NumMetrics]Table4Row, error) {
	var rows [metric.NumMetrics]Table4Row
	week1 := s.TR.Trace.Week(0)
	week2 := s.TR.Trace.Week(1)
	intraTrain, intraTest := week1.Split(week1.Start + 4*epoch.HoursPerDay)
	for _, m := range metric.All() {
		rows[m].Metric = m
		rows[m].IntraWeek = whatif.Proactive(s.TR, m, intraTrain, intraTest, 0.01)
		if week2.Len() > 0 {
			rows[m].InterWeek = whatif.Proactive(s.TR, m, week1, week2, 0.01)
		}
	}
	if w == nil {
		return rows, nil
	}
	t := report.Table{
		Title: "Table 4: proactive (history-based) alleviation, top 1% critical clusters by coverage",
		Columns: []string{"Metric", "IntraWeek_New", "IntraWeek_Potential", "Intra_%OfPotential",
			"InterWeek_New", "InterWeek_Potential", "Inter_%OfPotential"},
	}
	for _, m := range metric.All() {
		r := rows[m]
		t.AddRow(m.String(), r.IntraWeek.New, r.IntraWeek.Potential, report.Pct(r.IntraWeek.OfPotential),
			r.InterWeek.New, r.InterWeek.Potential, report.Pct(r.InterWeek.OfPotential))
	}
	return rows, t.Render(w)
}

// Fig13 renders the reactive timeseries for join failures (paper Fig. 13).
func (s *Suite) Fig13(w io.Writer) (whatif.ReactiveResult, error) {
	res := whatif.Reactive(s.Week1, metric.JoinFailure)
	if w == nil {
		return res, nil
	}
	fig := report.NewFigure("Figure 13: reactive alleviation of join failures",
		"epoch_hour", "original", "after_reactive", "not_in_critical_clusters")
	for _, p := range res.Series {
		fig.AddPoint(float64(p.Epoch), p.Original, p.AfterReactive, p.NotInCritical)
	}
	return res, fig.Render(w)
}

// Table5 renders the reactive strategy summary per metric (paper Table 5).
func (s *Suite) Table5(w io.Writer) ([metric.NumMetrics]whatif.ReactiveResult, error) {
	var rows [metric.NumMetrics]whatif.ReactiveResult
	for _, m := range metric.All() {
		rows[m] = whatif.Reactive(s.Week1, m)
	}
	if w == nil {
		return rows, nil
	}
	t := report.Table{
		Title:   "Table 5: reactive alleviation (detect after 1 hour)",
		Columns: []string{"Metric", "New", "Potential", "%OfPotential"},
	}
	for _, m := range metric.All() {
		r := rows[m]
		t.AddRow(m.String(), r.New, r.Potential, report.Pct(r.OfPotential))
	}
	return rows, t.Render(w)
}

// All renders every figure and table in paper order.
func (s *Suite) All(w io.Writer) error {
	steps := []func(io.Writer) error{
		func(w io.Writer) error { _, err := s.Fig1(w); return err },
		func(w io.Writer) error { _, err := s.Fig2(w); return err },
		func(w io.Writer) error { _, err := s.Fig7(w); return err },
		func(w io.Writer) error { _, _, err := s.Fig8(w); return err },
		func(w io.Writer) error { _, _, err := s.Fig9(w); return err },
		func(w io.Writer) error { _, err := s.Table1(w); return err },
		func(w io.Writer) error { _, err := s.Fig10(w); return err },
		func(w io.Writer) error { _, err := s.Table2(w); return err },
		func(w io.Writer) error { _, err := s.Table3(w); return err },
		func(w io.Writer) error { _, err := s.Fig11(w); return err },
		func(w io.Writer) error { _, err := s.Fig12(w); return err },
		func(w io.Writer) error { _, err := s.Table4(w); return err },
		func(w io.Writer) error { _, err := s.Fig13(w); return err },
		func(w io.Writer) error { _, err := s.Table5(w); return err },
	}
	for _, step := range steps {
		if err := step(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// DefaultEventSchedule re-exports the suite's ground truth for validation
// experiments.
func (s *Suite) DefaultEventSchedule() *events.Schedule { return s.Gen.Schedule() }
