package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/metric"
	"repro/internal/synth"
	"repro/internal/whatif"
)

// tinySuite builds a 36-epoch, low-volume suite for fast end-to-end tests.
func tinySuite(t *testing.T) *Suite {
	t.Helper()
	genCfg := synth.DefaultConfig()
	genCfg.Trace = epoch.Range{Start: 0, End: 36}
	genCfg.SessionsPerEpoch = 2500
	genCfg.Events.Trace = genCfg.Trace
	coreCfg := core.DefaultConfig(genCfg.SessionsPerEpoch)
	s, err := NewSuite(genCfg, coreCfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

var shared *Suite

func suite(t *testing.T) *Suite {
	if shared == nil {
		shared = tinySuite(t)
	}
	return shared
}

func TestFig1(t *testing.T) {
	s := suite(t)
	var buf bytes.Buffer
	cdfs, err := s.Fig1(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cdfs {
		if c.N() == 0 {
			t.Fatalf("cdf %d empty", i)
		}
	}
	// Shape checks against the paper: a visible >10% buffering tail, most
	// sessions below 2 Mbps.
	if tail := cdfs[0].Exceeds(0.10); tail < 0.01 || tail > 0.2 {
		t.Errorf("buffering >10%% tail = %v", tail)
	}
	if below := cdfs[1].At(2000); below < 0.5 {
		t.Errorf("bitrate below 2 Mbps = %v, want majority", below)
	}
	if !strings.Contains(buf.String(), "Figure 1(a)") {
		t.Error("rendering missing")
	}
}

func TestFig2(t *testing.T) {
	s := suite(t)
	series, err := s.Fig2(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range metric.All() {
		if len(series[m]) != s.Week1.Trace.Len() {
			t.Fatalf("series %v length %d", m, len(series[m]))
		}
		for _, v := range series[m] {
			if v < 0 || v > 1 {
				t.Fatalf("ratio %v out of range", v)
			}
		}
	}
}

func TestFig7And8(t *testing.T) {
	s := suite(t)
	prev, err := s.Fig7(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range metric.All() {
		if prev[m].N() == 0 {
			t.Fatalf("no problem clusters for %v", m)
		}
		// Prevalence values are in (0, 1].
		if prev[m].Quantile(1) > 1 || prev[m].Quantile(0) <= 0 {
			t.Errorf("%v prevalence range wrong", m)
		}
	}
	med, max, err := s.Fig8(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range metric.All() {
		if med[m].Quantile(0.5) > max[m].Quantile(0.5) {
			t.Errorf("%v median persistence above max", m)
		}
	}
}

func TestFig9AndTable1(t *testing.T) {
	s := suite(t)
	probs, crits, err := s.Fig9(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) != len(crits) || len(probs) != s.Week1.Trace.Len() {
		t.Fatal("series lengths wrong")
	}
	sum := func(xs []int) int {
		total := 0
		for _, x := range xs {
			total += x
		}
		return total
	}
	if sum(crits) >= sum(probs) {
		t.Errorf("critical clusters (%d) should be far fewer than problem clusters (%d)",
			sum(crits), sum(probs))
	}
	rows, err := s.Table1(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range metric.All() {
		r := rows[m]
		if r.MeanProblemClusters <= 0 {
			t.Errorf("%v: no problem clusters", m)
		}
		if r.CriticalFraction <= 0 || r.CriticalFraction >= 1 {
			t.Errorf("%v: critical fraction = %v", m, r.CriticalFraction)
		}
		if r.MeanCriticalCoverage > r.MeanProblemCoverage+1e-9 {
			t.Errorf("%v: critical coverage exceeds problem coverage", m)
		}
	}
}

func TestFig10(t *testing.T) {
	s := suite(t)
	bds, err := s.Fig10(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range metric.All() {
		b := bds[m]
		if b.Total <= 0 {
			t.Fatalf("%v: no problems", m)
		}
		var attributed float64
		for _, v := range b.ByMask {
			attributed += v
		}
		total := attributed + b.NotAttributed + b.NotInProblemCluster
		if total > b.Total*1.0001 {
			t.Errorf("%v: slices sum %v exceed total %v", m, total, b.Total)
		}
	}
}

func TestTable2(t *testing.T) {
	s := suite(t)
	out, err := s.Table2(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 6 {
		t.Fatalf("pairs = %d", len(out))
	}
	for p, v := range out {
		if v < 0 || v > 1 {
			t.Errorf("%v: jaccard %v", p, v)
		}
	}
	// The paper's key observation: cross-metric overlap is low.
	var sum float64
	for _, v := range out {
		sum += v
	}
	if sum/6 > 0.5 {
		t.Errorf("mean cross-metric Jaccard %v suspiciously high", sum/6)
	}
}

func TestTable3(t *testing.T) {
	s := suite(t)
	rows, err := s.Table3(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no prevalent critical clusters; chronic events should produce some")
	}
	tagged := 0
	for _, r := range rows {
		if r.Prevalence < 0.6 {
			t.Errorf("row below the 60%% cut: %+v", r)
		}
		if r.Tag != "" {
			tagged++
		}
		if r.Key.Size() != 1 {
			t.Errorf("restricted rows must be single-attribute: %v", r.Key)
		}
	}
	if tagged == 0 {
		t.Error("no rows matched ground-truth chronic tags")
	}
}

func TestFig11And12(t *testing.T) {
	s := suite(t)
	curves, err := s.Fig11(nil)
	if err != nil {
		t.Fatal(err)
	}
	for r, perMetric := range curves {
		for m, pts := range perMetric {
			for i := 1; i < len(pts); i++ {
				if pts[i].Alleviated+1e-9 < pts[i-1].Alleviated {
					t.Errorf("%v/%v curve not monotone", r, m)
				}
			}
			last := pts[len(pts)-1].Alleviated
			if last <= 0 || last > 1 {
				t.Errorf("%v/%v full alleviation = %v", r, m, last)
			}
		}
	}
	f12, err := s.Fig12(nil)
	if err != nil {
		t.Fatal(err)
	}
	anyCurve := f12["Any"]
	union := f12["Site+CDN+ASN+ConnType"]
	last := len(anyCurve) - 1
	if anyCurve[last].Alleviated < union[last].Alleviated-1e-9 {
		t.Error("Any selection should dominate the union restriction")
	}
	for _, single := range []string{"Site", "ASN", "CDN", "ConnType"} {
		if f12[single][last].Alleviated > anyCurve[last].Alleviated+1e-9 {
			t.Errorf("%s alone beats Any", single)
		}
	}
}

func TestTable4(t *testing.T) {
	s := suite(t)
	// The tiny suite has no week 2; intra-week still works on 36 epochs.
	rows, err := s.Table4(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range metric.All() {
		r := rows[m].IntraWeek
		if r.New < 0 || r.New > 1 || r.Potential < 0 || r.Potential > 1 {
			t.Errorf("%v: intra-week out of range: %+v", m, r)
		}
		if r.New > r.Potential+0.2 {
			t.Errorf("%v: learned selection hugely beats oracle: %+v", m, r)
		}
	}
}

func TestFig13AndTable5(t *testing.T) {
	s := suite(t)
	res, err := s.Fig13(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != s.Week1.Trace.Len() {
		t.Fatal("series length wrong")
	}
	for _, p := range res.Series {
		if p.AfterReactive > p.Original+1e-9 || p.AfterReactive < 0 {
			t.Errorf("reactive increased problems at epoch %d", p.Epoch)
		}
	}
	rows, err := s.Table5(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range metric.All() {
		r := rows[m]
		if r.New > r.Potential+1e-9 {
			t.Errorf("%v: reactive beats potential", m)
		}
	}
}

func TestValidate(t *testing.T) {
	s := suite(t)
	vals, err := s.Validate(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range metric.All() {
		v := vals[m]
		if v.DetectedEpochs == 0 {
			t.Errorf("%v: no detections", m)
			continue
		}
		if v.Precision() < 0.3 {
			t.Errorf("%v: ground-truth precision %v too low", m, v.Precision())
		}
		if v.ActiveAnchors > 0 && v.Recall() < 0.3 {
			t.Errorf("%v: ground-truth recall %v too low", m, v.Recall())
		}
	}
}

func TestThresholdSweep(t *testing.T) {
	s := suite(t)
	rows, err := s.ThresholdSweep(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Looser factor admits at least as many problem clusters as stricter.
	var loose, strict float64
	for _, r := range rows {
		if r.BufRatioCut == 0.05 {
			switch r.Factor {
			case 1.25:
				loose = r.MeanProblem
			case 2.0:
				strict = r.MeanProblem
			}
		}
	}
	if loose < strict {
		t.Errorf("factor 1.25 found %v problem clusters < factor 2.0's %v", loose, strict)
	}
}

func TestCompareHHH(t *testing.T) {
	s := suite(t)
	out, err := s.CompareHHH(nil)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's argument quantified: critical clusters point at injected
	// causes much more reliably than volume-ranked heavy hitters.
	if out.CriticalPrecision < out.HHHPrecision {
		t.Errorf("critical precision %v below HHH %v", out.CriticalPrecision, out.HHHPrecision)
	}
	if out.CriticalPrecision <= 0 {
		t.Error("critical precision should be positive")
	}
}

func TestHideAttribute(t *testing.T) {
	s := suite(t)
	out, err := s.HideAttribute(nil, attr.ConnType)
	if err != nil {
		t.Fatal(err)
	}
	if out.FullCoverage <= 0 {
		t.Fatal("no coverage with full attributes")
	}
	// Hiding an attribute can only reduce (or leave) explanatory power
	// modulo small-sample noise.
	if out.HiddenCoverage > out.FullCoverage+0.1 {
		t.Errorf("hiding ConnType raised coverage: %+v", out)
	}
}

func TestHeadlines(t *testing.T) {
	s := suite(t)
	rows, err := s.Headlines(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range metric.All() {
		r := rows[m]
		if r.MedianPersist2h < 0 || r.MedianPersist2h > 1 {
			t.Errorf("%v: bad fraction %v", m, r.MedianPersist2h)
		}
	}
}

func TestAllRenders(t *testing.T) {
	s := suite(t)
	var buf bytes.Buffer
	if err := s.All(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Figure 1(a)", "Figure 2", "Figure 7", "Figure 8(a)", "Figure 8(b)",
		"Figure 9", "Table 1", "Figure 10(a)", "Table 2", "Table 3",
		"Figure 11(a)", "Figure 12", "Table 4", "Figure 13", "Table 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("All() output missing %q", want)
		}
	}
}

func TestCurveRankingsAgreeAtFull(t *testing.T) {
	s := suite(t)
	fr := []float64{1.0}
	a := whatif.Curve(s.Week1, metric.BufRatio, whatif.ByPrevalence, fr)
	b := whatif.Curve(s.Week1, metric.BufRatio, whatif.ByCoverage, fr)
	if diff := a[0].Alleviated - b[0].Alleviated; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("full-set alleviation differs across rankings: %v vs %v",
			a[0].Alleviated, b[0].Alleviated)
	}
}

func TestCostBenefitExperiment(t *testing.T) {
	s := suite(t)
	res, err := s.CostBenefit(nil, metric.JoinFailure)
	if err != nil {
		t.Fatal(err)
	}
	last := len(res.ByBenefitPerCost) - 1
	full := res.ByBenefitPerCost[last].Alleviated
	if full <= 0 || full > 1 {
		t.Fatalf("full-budget alleviation = %v", full)
	}
	// Both policies converge at full budget.
	if d := full - res.ByCoverage[last].Alleviated; d > 1e-9 || d < -1e-9 {
		t.Errorf("policies differ at full budget: %v vs %v", full, res.ByCoverage[last].Alleviated)
	}
	// Cost-aware selection should not trail coverage ranking by much at
	// small budgets (usually it leads).
	for i := range res.ByBenefitPerCost {
		if res.ByBenefitPerCost[i].Alleviated < res.ByCoverage[i].Alleviated-0.1 {
			t.Errorf("budget %v: benefit-per-cost %v far below coverage %v",
				res.ByBenefitPerCost[i].Budget,
				res.ByBenefitPerCost[i].Alleviated, res.ByCoverage[i].Alleviated)
		}
	}
}

func TestCriticalTemporalStats(t *testing.T) {
	s := suite(t)
	rows, err := s.CriticalTemporalStats(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range metric.All() {
		r := rows[m]
		for _, v := range []float64{r.PrevalenceOver10pct, r.MedianPersist2h, r.MaxPersistOver24h} {
			if v < 0 || v > 1 {
				t.Errorf("%v: fraction %v out of range", m, v)
			}
		}
	}
}

func TestStabilityAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed stability is slow; skipped with -short")
	}
	s := suite(t)
	out, err := s.StabilityAcrossSeeds(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range metric.All() {
		if out.MeanCoverage[m] <= 0 || out.MeanCoverage[m] > 1 {
			t.Errorf("%v: mean coverage %v", m, out.MeanCoverage[m])
		}
		// Coverage should be a stable property of the generator family,
		// not a single-seed fluke.
		if out.StdCoverage[m] > 0.25 {
			t.Errorf("%v: coverage wildly unstable across seeds (std %v)", m, out.StdCoverage[m])
		}
	}
}

func TestWeeklyConsistency(t *testing.T) {
	s := suite(t)
	// The tiny suite spans 36 epochs: week 2 is empty and must read zero.
	rows, err := s.WeeklyConsistency(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range metric.All() {
		r := rows[m]
		if r.Week1Coverage <= 0 || r.Week1Coverage > 1 {
			t.Errorf("%v: week-1 coverage %v", m, r.Week1Coverage)
		}
		if r.Week2Coverage != 0 {
			t.Errorf("%v: week-2 coverage %v on a sub-week trace", m, r.Week2Coverage)
		}
	}
}

func TestEngagement(t *testing.T) {
	s := suite(t)
	rows, err := s.Engagement(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range metric.All() {
		r := rows[m]
		if r.MeanLossPerProblemMin <= 0 {
			t.Errorf("%v: problems cost no engagement", m)
		}
		if r.WeeklyLossMin <= 0 || r.RecoveredTop1PctMin < 0 {
			t.Errorf("%v: weekly/recovered = %v/%v", m, r.WeeklyLossMin, r.RecoveredTop1PctMin)
		}
		if r.RecoveredTop1PctMin > r.WeeklyLossMin {
			t.Errorf("%v: recovered exceeds total loss", m)
		}
	}
	// Join failures cost the most per session (the whole baseline).
	if rows[metric.JoinFailure].MeanLossPerProblemMin <= rows[metric.Bitrate].MeanLossPerProblemMin {
		t.Error("join failures should cost more engagement than low bitrate")
	}
}
