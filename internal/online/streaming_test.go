package online

import (
	"reflect"
	"testing"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/events"
	"repro/internal/metric"
	"repro/internal/session"
	"repro/internal/synth"
	"repro/internal/window"
)

// smallOutageGenerator is outageGenerator at a volume the per-tick
// re-analysis can afford under -race: 6 epochs, one buffering outage over
// [2, 5).
func smallOutageGenerator(t *testing.T, perEpoch int) (*synth.Generator, *events.Event) {
	t.Helper()
	cfg := synth.DefaultConfig()
	cfg.Trace = epoch.Range{Start: 0, End: 6}
	cfg.SessionsPerEpoch = perEpoch
	cfg.Events.Trace = cfg.Trace
	cfg.Events.DisableChronic = true
	cfg.Events.DisableEpisodic = true
	cfg.Events.Extra = []events.Event{{
		Metric:   metric.BufRatio,
		Anchor:   attr.NewKey(map[attr.Dim]int32{attr.ASN: 0}),
		Severity: 0.7, Intervals: []epoch.Range{{Start: 2, End: 5}},
		Tag: "streaming-outage",
	}}
	g, err := synth.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g, &g.Schedule().Events[0]
}

// tickOrder returns the epoch's sessions bucket-sorted by their derived
// sub-epoch tick — the order both the streaming and the batch differential
// runs consume them in (the float attribution passes are session-order
// sensitive, so the byte-identity contract is over a fixed order).
func tickOrder(batch []session.Session, ticksPerEpoch int) [][]int {
	buckets := make([][]int, ticksPerEpoch)
	for i := range batch {
		tk := window.SubTick(batch[i].ID, ticksPerEpoch)
		buckets[tk] = append(buckets[tk], i)
	}
	return buckets
}

// feedBoth drives a streaming detector (AddAt) and an optional batch
// detector (Add) over the same sessions in the same tick order.
func feedBoth(t *testing.T, g *synth.Generator, wcfg window.Config, sd, bd *Detector) {
	t.Helper()
	trace := g.Config().Trace
	for e := trace.Start; e < trace.End; e++ {
		batch := g.EpochSessions(e)
		start := wcfg.StartTick(e)
		for tk, idxs := range tickOrder(batch, wcfg.TicksPerEpoch) {
			for _, i := range idxs {
				if err := sd.AddAt(start+window.Tick(tk), &batch[i]); err != nil {
					t.Fatal(err)
				}
				if bd != nil {
					if err := bd.Add(&batch[i]); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
	if err := sd.Flush(); err != nil {
		t.Fatal(err)
	}
	if bd != nil {
		if err := bd.Flush(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStreamingBoundaryResultsByteIdentical is the core differential: at
// every full-epoch boundary the analysis of the incrementally maintained
// window — tables, problem keys, critical clusters, attribution — is
// byte-identical to core.AnalyzeEpoch batch output over the same sessions
// in the same order, at every worker count 1..8.
func TestStreamingBoundaryResultsByteIdentical(t *testing.T) {
	const perEpoch = 700
	g, _ := smallOutageGenerator(t, perEpoch)
	wcfg := window.Config{Ticks: 5, TicksPerEpoch: 5}
	trace := g.Config().Trace

	for workers := 1; workers <= 8; workers++ {
		cfg := detectorConfig(perEpoch)
		cfg.Workers = workers

		eng, err := window.New(wcfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Start(wcfg.StartTick(trace.Start)); err != nil {
			t.Fatal(err)
		}
		boundaries := 0
		for e := trace.Start; e < trace.End; e++ {
			batch := g.EpochSessions(e)
			for tk, idxs := range tickOrder(batch, wcfg.TicksPerEpoch) {
				if err := eng.AdvanceTo(wcfg.StartTick(e)+window.Tick(tk), nil); err != nil {
					t.Fatal(err)
				}
				for _, i := range idxs {
					if err := eng.Observe(cluster.Digest(&batch[i], cfg.Thresholds)); err != nil {
						t.Fatal(err)
					}
				}
			}
			// Seal the epoch's last tick: the window now holds exactly
			// epoch e.
			if _, err := eng.Advance(); err != nil {
				t.Fatal(err)
			}
			snap, err := eng.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			streaming, err := core.AnalyzeEpochTable(snap, cfg)
			if err != nil {
				t.Fatal(err)
			}
			batchRes, err := core.AnalyzeEpoch(e, append(snap.Sessions[:0:0], snap.Sessions...), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(streaming, batchRes) {
				t.Fatalf("workers %d epoch %d: streaming boundary result diverges from batch", workers, e)
			}
			boundaries++
		}
		if boundaries != trace.Len() {
			t.Fatalf("workers %d: %d boundaries, want %d", workers, boundaries, trace.Len())
		}
		eng.Close()
	}
}

// TestStreamingAlertsIdenticalToBatch: the streaming detector's epoch-level
// alert stream (and counters) is byte-identical to a batch detector fed the
// same sessions in the same order — streaks, kinds, snapshots, ordering.
func TestStreamingAlertsIdenticalToBatch(t *testing.T) {
	const perEpoch = 900
	g, _ := smallOutageGenerator(t, perEpoch)
	wcfg := window.Config{Ticks: 4, TicksPerEpoch: 4}

	var sAlerts, bAlerts []Alert
	var tickAlerts []TickAlert
	sd, err := NewDetector(detectorConfig(perEpoch), func(a Alert) { sAlerts = append(sAlerts, a) })
	if err != nil {
		t.Fatal(err)
	}
	if err := sd.Streaming(StreamConfig{Window: wcfg, TickEmit: func(a TickAlert) { tickAlerts = append(tickAlerts, a) }}); err != nil {
		t.Fatal(err)
	}
	bd, err := NewDetector(detectorConfig(perEpoch), func(a Alert) { bAlerts = append(bAlerts, a) })
	if err != nil {
		t.Fatal(err)
	}
	feedBoth(t, g, wcfg, sd, bd)

	if len(bAlerts) == 0 {
		t.Fatal("batch reference produced no alerts")
	}
	if !reflect.DeepEqual(sAlerts, bAlerts) {
		t.Fatalf("streaming epoch alerts diverge from batch:\nstreaming %+v\nbatch     %+v", sAlerts, bAlerts)
	}
	if sd.Epochs != bd.Epochs || sd.Alerts != bd.Alerts {
		t.Fatalf("counters diverge: streaming %d/%d, batch %d/%d", sd.Epochs, sd.Alerts, bd.Epochs, bd.Alerts)
	}
	if len(tickAlerts) == 0 {
		t.Fatal("streaming run emitted no tick alerts")
	}
	if sd.Ticks != g.Config().Trace.Len()*wcfg.TicksPerEpoch {
		t.Fatalf("sealed ticks = %d, want %d", sd.Ticks, g.Config().Trace.Len()*wcfg.TicksPerEpoch)
	}
}

// TestStreamingDetectionLatency: on an injected outage the tick-level
// detection fires before the batch epoch boundary would — the latency win
// the sliding window exists for — and MeasureLatency charges both paths
// correctly.
func TestStreamingDetectionLatency(t *testing.T) {
	const perEpoch = 900
	g, ev := smallOutageGenerator(t, perEpoch)
	wcfg := window.Config{Ticks: 6, TicksPerEpoch: 6}

	var tickAlerts []TickAlert
	var epochAlerts []Alert
	sd, err := NewDetector(detectorConfig(perEpoch), func(a Alert) { epochAlerts = append(epochAlerts, a) })
	if err != nil {
		t.Fatal(err)
	}
	if err := sd.Streaming(StreamConfig{Window: wcfg, TickEmit: func(a TickAlert) { tickAlerts = append(tickAlerts, a) }}); err != nil {
		t.Fatal(err)
	}
	feedBoth(t, g, wcfg, sd, nil)

	lats := MeasureLatency(g.Schedule(), tickAlerts, epochAlerts, wcfg)
	var el *EventLatency
	for i := range lats {
		if lats[i].EventID == ev.ID {
			el = &lats[i]
		}
	}
	if el == nil {
		t.Fatal("outage event missing from latency report")
	}
	if !el.DetectedTick || !el.DetectedEpoch {
		t.Fatalf("outage undetected: %+v", *el)
	}
	if el.TickLatency > el.EpochLatencyTicks {
		t.Fatalf("tick detection (%d ticks) not earlier than batch (%d ticks)", el.TickLatency, el.EpochLatencyTicks)
	}
	if el.StartEpoch != 2 || el.StartTick != wcfg.StartTick(2) {
		t.Fatalf("latency start mis-anchored: %+v", *el)
	}
}

// TestStreamingGuards: mode mixing and geometry violations fail fast.
func TestStreamingGuards(t *testing.T) {
	d, err := NewDetector(detectorConfig(100), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Streaming(StreamConfig{Window: window.Config{Ticks: 30, TicksPerEpoch: 60}}); err == nil {
		t.Fatal("Ticks != TicksPerEpoch accepted")
	}
	if err := d.AddAt(0, &session.Session{}); err == nil {
		t.Fatal("AddAt without Streaming accepted")
	}
	if err := d.Streaming(StreamConfig{Window: window.Config{Ticks: 4, TicksPerEpoch: 4}}); err != nil {
		t.Fatal(err)
	}
	if err := d.Streaming(StreamConfig{Window: window.Config{Ticks: 4, TicksPerEpoch: 4}}); err == nil {
		t.Fatal("second Streaming accepted")
	}
	if err := d.Add(&session.Session{}); err == nil {
		t.Fatal("Add in streaming mode accepted")
	}
	if err := d.ObserveResult(0, nil, 0, true); err == nil {
		t.Fatal("ObserveResult in streaming mode accepted")
	}
	// Tick/epoch coherence and ordering.
	if err := d.AddAt(9, &session.Session{Epoch: 1}); err == nil {
		t.Fatal("tick 9 with epoch 1 accepted (tick 9 is epoch 2)")
	}
	if err := d.AddAt(9, &session.Session{Epoch: 2}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddAt(8, &session.Session{Epoch: 2}); err == nil {
		t.Fatal("tick regression accepted")
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamingGapEpochGate: a starved epoch freezes epoch-level streaks in
// streaming mode exactly as in batch mode.
func TestStreamingGapEpochGate(t *testing.T) {
	const perEpoch = 900
	g, _ := smallOutageGenerator(t, perEpoch)
	wcfg := window.Config{Ticks: 4, TicksPerEpoch: 4}
	gapEpoch := epoch.Index(3) // inside the outage [2, 5)

	run := func(streaming bool) ([]Alert, int, int) {
		var alerts []Alert
		d, err := NewDetector(detectorConfig(perEpoch), func(a Alert) { alerts = append(alerts, a) })
		if err != nil {
			t.Fatal(err)
		}
		d.MinEpochSessions = 50
		if streaming {
			if err := d.Streaming(StreamConfig{Window: wcfg}); err != nil {
				t.Fatal(err)
			}
		}
		trace := g.Config().Trace
		for e := trace.Start; e < trace.End; e++ {
			if e == gapEpoch {
				// Starve the epoch: no sessions. The streaming path's window
				// still slides through its ticks when the next epoch's
				// sessions arrive (AddAt seals the gap ticks as empty).
				continue
			}
			batch := g.EpochSessions(e)
			for tk, idxs := range tickOrder(batch, wcfg.TicksPerEpoch) {
				gtick := wcfg.StartTick(e) + window.Tick(tk)
				for _, i := range idxs {
					if streaming {
						if err := d.AddAt(gtick, &batch[i]); err != nil {
							t.Fatal(err)
						}
					} else if err := d.Add(&batch[i]); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		if err := d.Flush(); err != nil {
			t.Fatal(err)
		}
		return alerts, d.Epochs, d.GapEpochs
	}

	sAlerts, sEpochs, sGaps := run(true)
	bAlerts, _, _ := run(false)
	if sGaps != 1 {
		t.Fatalf("streaming GapEpochs = %d, want 1", sGaps)
	}
	if sEpochs != g.Config().Trace.Len() {
		t.Fatalf("streaming Epochs = %d, want %d", sEpochs, g.Config().Trace.Len())
	}
	// Batch mode never saw the gap epoch close as empty (its next session
	// closes it), so compare only that no spurious resolve/re-new pair
	// appears around the gap in the streaming stream.
	for _, a := range sAlerts {
		if a.Kind == AlertResolved && a.Epoch == gapEpoch {
			t.Fatalf("spurious resolve off the starved epoch: %+v", a)
		}
	}
	if len(sAlerts) == 0 || len(bAlerts) == 0 {
		t.Fatal("gap-gate runs produced no alerts")
	}
}
