// Package online turns the paper's offline reactive analysis (§5.3) into an
// operational streaming detector: sessions arrive in epoch order (from a
// heartbeat collector or a trace), each completed epoch is clustered and
// searched for critical clusters, and the detector emits alerts as problem
// events begin, persist past the one-hour reaction threshold, and resolve.
//
// The paper's observation that >50% of problem events last two hours or
// more is exactly what makes this useful: a `Continuing` alert (streak ≥ 2)
// arrives while most of the event is still ahead.
package online

import (
	"fmt"
	"sort"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/core/engine"
	"repro/internal/epoch"
	"repro/internal/metric"
	"repro/internal/session"
	"repro/internal/window"
)

// AlertKind classifies an alert.
type AlertKind uint8

// Alert kinds.
const (
	// AlertNew fires the first epoch a key is critical (detection).
	AlertNew AlertKind = iota
	// AlertContinuing fires on every subsequent consecutive epoch — the
	// paper's reactive strategy acts on these (streak ≥ 2).
	AlertContinuing
	// AlertResolved fires when a previously critical key is no longer
	// critical.
	AlertResolved
)

var alertKindNames = []string{"NEW", "CONTINUING", "RESOLVED"}

// String returns the alert kind label.
func (k AlertKind) String() string {
	if int(k) < len(alertKindNames) {
		return alertKindNames[k]
	}
	return fmt.Sprintf("AlertKind(%d)", uint8(k))
}

// Alert is one detector emission.
type Alert struct {
	Epoch  epoch.Index
	Metric metric.Metric
	Key    attr.Key
	Kind   AlertKind
	// StreakHours counts consecutive critical epochs including this one
	// (for Resolved: the length of the streak that just ended).
	StreakHours int
	// Ratio, Sessions, and AttributedProblems snapshot the cluster at this
	// epoch (zero for Resolved).
	Ratio              float64
	Sessions           int32
	AttributedProblems float64
}

// Actionable reports whether the paper's reactive strategy would act on
// this alert (the event has persisted past its first hour).
func (a Alert) Actionable() bool {
	return a.Kind == AlertContinuing && a.StreakHours >= 2
}

// Detector consumes an epoch-ordered session stream.
type Detector struct {
	cfg  core.Config
	emit func(Alert)

	cur     epoch.Index
	started bool
	buf     []cluster.Lite

	// pipe, when non-nil, is the two-stage hand-off that analyzes epoch N
	// while Add accumulates epoch N+1 (see Pipeline). All per-epoch state —
	// streaks, counters, emissions — is then touched only by the pipeline's
	// single analysis goroutine, so alert order stays deterministic.
	pipe *engine.Pipeline

	// win, when non-nil, is the sub-epoch sliding window the Streaming mode
	// maintains incrementally; sessions then arrive through AddAt and every
	// sealed tick re-evaluates the window (see streaming.go).
	win      *window.Engine
	wcfg     window.Config
	tickEmit func(TickAlert)

	// MinEpochSessions gates epoch evaluation: an epoch closing with fewer
	// sessions is treated as an ingestion gap (collector restart, shed
	// load), not as ground truth. Gap epochs emit no alerts and freeze
	// streak state — an outage spanning a gap neither resolves spuriously
	// nor restarts its streak from zero. Zero disables the gate.
	MinEpochSessions int

	streaks     [metric.NumMetrics]map[attr.Key]int
	tickStreaks [metric.NumMetrics]map[attr.Key]int

	// Epochs counts completed epochs; Alerts counts emissions; GapEpochs
	// counts the subset of epochs skipped by the MinEpochSessions gate.
	// Ticks and TickAlerts count the streaming mode's sealed sub-buckets
	// and tick-level emissions.
	Epochs     int
	Alerts     int
	GapEpochs  int
	Ticks      int
	TickAlerts int
}

// NewDetector builds a detector delivering alerts to emit in a
// deterministic order per epoch (metric, then key).
func NewDetector(cfg core.Config, emit func(Alert)) (*Detector, error) {
	if err := cfg.Thresholds.Validate(); err != nil {
		return nil, fmt.Errorf("online: %w", err)
	}
	d := &Detector{cfg: cfg, emit: emit}
	for m := range d.streaks {
		d.streaks[m] = make(map[attr.Key]int)
	}
	return d, nil
}

// Add consumes one session. Sessions must arrive in non-decreasing epoch
// order; a new epoch closes and evaluates the previous one.
func (d *Detector) Add(s *session.Session) error {
	if d.win != nil {
		return fmt.Errorf("online: Add cannot mix with Streaming mode (use AddAt)")
	}
	if d.started && s.Epoch < d.cur {
		return fmt.Errorf("online: session for epoch %d after epoch %d", s.Epoch, d.cur)
	}
	if !d.started {
		d.started = true
		d.cur = s.Epoch
	}
	if s.Epoch > d.cur {
		if err := d.closeEpoch(); err != nil {
			return err
		}
		d.cur = s.Epoch
	}
	d.buf = append(d.buf, cluster.Digest(s, d.cfg.Thresholds))
	return nil
}

// Pipeline switches the detector to two-stage operation: Add (and the
// digesting it does) runs concurrently with the previous epoch's analysis,
// with at most depth completed epochs queued between the stages. Must be
// called before the first Add. Alert emission moves to the pipeline's
// analysis goroutine but keeps the same deterministic per-epoch order; the
// emit callback must therefore not assume it runs on the Add goroutine.
func (d *Detector) Pipeline(depth int) {
	if d.win != nil {
		panic("online: Pipeline cannot mix with Streaming mode")
	}
	d.pipe = engine.New(depth, func(e epoch.Index, lites []cluster.Lite) error {
		err := d.evalEpoch(e, lites)
		cluster.ReleaseLites(lites)
		return err
	})
}

// PipelineStats snapshots the pipeline's stall counters (zero when Pipeline
// was not enabled).
func (d *Detector) PipelineStats() engine.Stats {
	if d.pipe == nil {
		return engine.Stats{}
	}
	return d.pipe.Stats()
}

// Flush evaluates the in-progress epoch (end of stream) and, in pipelined
// mode, drains the analysis stage. Counters and streaks are safe to read
// after Flush returns.
func (d *Detector) Flush() error {
	if d.win != nil {
		// Streaming: seal the in-progress tick (if it holds sessions),
		// evaluate it, and release the window's storage back to the pool.
		if d.started && d.win.Pending() > 0 {
			sealed, err := d.win.Advance()
			if err != nil {
				return err
			}
			if err := d.evalTick(sealed); err != nil {
				return err
			}
		}
		d.win.Close()
		d.win = nil
		return nil
	}
	if d.started && len(d.buf) > 0 {
		if err := d.closeEpoch(); err != nil {
			if d.pipe != nil {
				_ = d.pipe.Drain() // Submit already surfaced the analysis error
			}
			return err
		}
	}
	if d.pipe != nil {
		return d.pipe.Drain()
	}
	return nil
}

func (d *Detector) closeEpoch() error {
	if d.pipe != nil {
		buf := d.buf
		d.buf = cluster.AcquireLites()
		return d.pipe.Submit(d.cur, buf)
	}
	err := d.evalEpoch(d.cur, d.buf)
	d.buf = d.buf[:0]
	return err
}

// evalEpoch runs the gate, analysis, and alerting for one completed epoch.
// In pipelined mode it is called only from the analysis goroutine.
func (d *Detector) evalEpoch(e epoch.Index, lites []cluster.Lite) error {
	if d.MinEpochSessions > 0 && len(lites) < d.MinEpochSessions {
		// Degraded epoch: too few sessions to trust. Skip evaluation
		// entirely — emitting "resolved" off a starved epoch would be a
		// measurement artifact, exactly the failure mode the fault-tolerant
		// ingestion path is built to avoid.
		d.Epochs++
		d.GapEpochs++
		return nil
	}
	res, err := core.AnalyzeEpoch(e, lites, d.cfg)
	if err != nil {
		return err
	}
	d.Epochs++
	d.applyResult(e, res)
	return nil
}

// ObserveResult feeds the detector one already-analysed epoch — the
// aggregator's path, where sessions were assembled and analysed centrally
// and the detector must not re-digest them. Epochs must arrive in strictly
// increasing order, and the streaming entry points (Add/Pipeline) must not
// be mixed with this one. A degraded epoch (coverage loss) or one below
// MinEpochSessions freezes streak state exactly like the streaming gate:
// res may then be nil, no alerts fire, and GapEpochs counts it. A healthy
// epoch requires res.
func (d *Detector) ObserveResult(e epoch.Index, res *core.EpochResult, sessions int, degraded bool) error {
	if d.pipe != nil || len(d.buf) > 0 || d.win != nil {
		return fmt.Errorf("online: ObserveResult cannot mix with streaming Add/Pipeline/Streaming")
	}
	if d.started && e <= d.cur {
		return fmt.Errorf("online: result for epoch %d after epoch %d", e, d.cur)
	}
	gated := degraded || (d.MinEpochSessions > 0 && sessions < d.MinEpochSessions)
	if !gated && res == nil {
		return fmt.Errorf("online: healthy epoch %d observed without a result", e)
	}
	d.started = true
	d.cur = e
	d.Epochs++
	if gated {
		// Same reasoning as the streaming gate: a starved or
		// degraded-coverage epoch is an ingestion artifact, not ground
		// truth. Freeze streaks; never resolve off it.
		d.GapEpochs++
		return nil
	}
	d.applyResult(e, res)
	return nil
}

// applyResult updates streaks and emits this epoch's alerts from an
// analysis result. Shared verbatim between the streaming path (evalEpoch)
// and the aggregator path (ObserveResult).
func (d *Detector) applyResult(e epoch.Index, res *core.EpochResult) {
	for _, m := range metric.All() {
		ms := &res.Metrics[m]
		now := make(map[attr.Key]*core.CriticalSummary, len(ms.Critical))
		for i := range ms.Critical {
			now[ms.Critical[i].Key] = &ms.Critical[i]
		}

		// Deterministic emission order.
		keys := make([]attr.Key, 0, len(now)+len(d.streaks[m]))
		for k := range now {
			keys = append(keys, k)
		}
		for k := range d.streaks[m] {
			if _, ok := now[k]; !ok {
				keys = append(keys, k)
			}
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })

		for _, k := range keys {
			cs, active := now[k]
			prev := d.streaks[m][k]
			switch {
			case active && prev == 0:
				d.streaks[m][k] = 1
				d.send(Alert{
					Epoch: e, Metric: m, Key: k, Kind: AlertNew, StreakHours: 1,
					Ratio: cs.Ratio, Sessions: cs.Sessions, AttributedProblems: cs.AttributedProblems,
				})
			case active:
				d.streaks[m][k] = prev + 1
				d.send(Alert{
					Epoch: e, Metric: m, Key: k, Kind: AlertContinuing, StreakHours: prev + 1,
					Ratio: cs.Ratio, Sessions: cs.Sessions, AttributedProblems: cs.AttributedProblems,
				})
			default:
				delete(d.streaks[m], k)
				d.send(Alert{
					Epoch: e, Metric: m, Key: k, Kind: AlertResolved, StreakHours: prev,
				})
			}
		}
	}
}

func (d *Detector) send(a Alert) {
	d.Alerts++
	if d.emit != nil {
		d.emit(a)
	}
}
