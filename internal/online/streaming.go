package online

import (
	"fmt"
	"sort"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/metric"
	"repro/internal/session"
	"repro/internal/window"
)

// TickAlert is one sub-epoch detector emission: the streaming mode's
// per-tick counterpart of Alert. Tick streaks advance once per sub-bucket
// tick (one minute at the default geometry), so a problem event surfaces as
// an AlertNew within minutes of its sessions entering the window instead of
// at the next epoch boundary.
type TickAlert struct {
	Tick   window.Tick
	Epoch  epoch.Index
	Metric metric.Metric
	Key    attr.Key
	Kind   AlertKind
	// StreakTicks counts consecutive critical ticks including this one
	// (for Resolved: the length of the streak that just ended).
	StreakTicks int
	// Ratio, Sessions, and AttributedProblems snapshot the cluster over the
	// sliding window at this tick (zero for Resolved).
	Ratio              float64
	Sessions           int32
	AttributedProblems float64
}

// StreamConfig parameterises the detector's sub-epoch streaming mode.
type StreamConfig struct {
	// Window fixes the sliding-window geometry. Streaming requires
	// Ticks == TicksPerEpoch so that at every epoch boundary the window
	// holds exactly the completed epoch — the invariant behind the
	// batch-identity guarantee.
	Window window.Config
	// TickEmit receives the per-tick alert stream (may be nil). It is
	// called synchronously from AddAt/Flush in deterministic order per
	// tick (metric, then key).
	TickEmit func(TickAlert)
}

// Streaming switches the detector to incremental sub-epoch operation: each
// session lands in a per-tick sub-bucket of a sliding window
// (window.Engine), every tick re-evaluates the window's problem/critical
// clusters against the same core.Config as the batch path, and tick-level
// alert streaks stream out through cfg.TickEmit. At every full-epoch
// boundary the window holds exactly the closed epoch, so the detector
// additionally applies the ordinary epoch-level streak update — the Alert
// stream and streak state are then byte-identical to the batch detector fed
// the same sessions in the same order.
//
// Must be called before the first session; it cannot be combined with
// Pipeline or ObserveResult. Sessions are fed with AddAt, not Add.
func (d *Detector) Streaming(cfg StreamConfig) error {
	if d.started || d.pipe != nil || d.win != nil {
		return fmt.Errorf("online: Streaming must be configured once, before the first session")
	}
	if err := cfg.Window.Validate(); err != nil {
		return fmt.Errorf("online: %w", err)
	}
	if cfg.Window.Ticks != cfg.Window.TicksPerEpoch {
		return fmt.Errorf("online: Streaming requires Ticks == TicksPerEpoch for epoch-boundary identity (got window %d, epoch %d)",
			cfg.Window.Ticks, cfg.Window.TicksPerEpoch)
	}
	eng, err := window.New(cfg.Window)
	if err != nil {
		return fmt.Errorf("online: %w", err)
	}
	d.win = eng
	d.wcfg = cfg.Window
	d.tickEmit = cfg.TickEmit
	for m := range d.tickStreaks {
		d.tickStreaks[m] = make(map[attr.Key]int)
	}
	return nil
}

// AddAt consumes one session at sub-epoch tick t (derive t from the
// session's heartbeat timestamp, or window.SubTick when the trace carries
// only the epoch — never from the wall clock). Ticks must be non-decreasing;
// advancing to a later tick seals and evaluates every tick in between,
// empty ones included.
func (d *Detector) AddAt(t window.Tick, s *session.Session) error {
	if d.win == nil {
		return fmt.Errorf("online: AddAt requires Streaming mode")
	}
	if got, want := d.wcfg.EpochOf(t), s.Epoch; got != want {
		return fmt.Errorf("online: tick %d is in epoch %d, session says %d", t, got, want)
	}
	if !d.started {
		d.started = true
		// Open the window at the first session's epoch start, so the first
		// epoch boundary already covers a whole epoch.
		if err := d.win.Start(d.wcfg.StartTick(d.wcfg.EpochOf(t))); err != nil {
			return err
		}
	}
	if t < d.win.Tick() {
		return fmt.Errorf("online: session for tick %d after tick %d", t, d.win.Tick())
	}
	if t > d.win.Tick() {
		if err := d.win.AdvanceTo(t, d.evalTick); err != nil {
			return err
		}
	}
	return d.win.Observe(cluster.Digest(s, d.cfg.Thresholds))
}

// evalTick analyses the window after tick sealed entered it: one
// AnalyzeEpochTable over the incrementally maintained snapshot (O(window
// cardinality), no table rebuild), tick-level streak/alert update, and — at
// an epoch boundary — the batch-identical epoch-level update.
func (d *Detector) evalTick(sealed window.Tick) error {
	snap, err := d.win.Snapshot()
	if err != nil {
		return err
	}
	res, err := core.AnalyzeEpochTable(snap, d.cfg)
	if err != nil {
		return err
	}
	d.Ticks++
	d.applyTickResult(sealed, res)
	if d.wcfg.EpochBoundary(sealed) {
		d.Epochs++
		if d.MinEpochSessions > 0 && len(snap.Sessions) < d.MinEpochSessions {
			// Same gate, same semantics as the batch path: a starved epoch
			// freezes epoch-level streaks (tick-level streaks already
			// reflect whatever sessions did arrive).
			d.GapEpochs++
		} else {
			d.applyResult(snap.Epoch, res)
		}
	}
	return nil
}

// applyTickResult is applyResult's tick-level twin: same deterministic
// emission order (metric, then key), separate streak state, TickAlert
// output.
func (d *Detector) applyTickResult(tk window.Tick, res *core.EpochResult) {
	e := d.wcfg.EpochOf(tk)
	for _, m := range metric.All() {
		ms := &res.Metrics[m]
		now := make(map[attr.Key]*core.CriticalSummary, len(ms.Critical))
		for i := range ms.Critical {
			now[ms.Critical[i].Key] = &ms.Critical[i]
		}

		keys := make([]attr.Key, 0, len(now)+len(d.tickStreaks[m]))
		for k := range now {
			keys = append(keys, k)
		}
		for k := range d.tickStreaks[m] {
			if _, ok := now[k]; !ok {
				keys = append(keys, k)
			}
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })

		for _, k := range keys {
			cs, active := now[k]
			prev := d.tickStreaks[m][k]
			switch {
			case active && prev == 0:
				d.tickStreaks[m][k] = 1
				d.sendTick(TickAlert{
					Tick: tk, Epoch: e, Metric: m, Key: k, Kind: AlertNew, StreakTicks: 1,
					Ratio: cs.Ratio, Sessions: cs.Sessions, AttributedProblems: cs.AttributedProblems,
				})
			case active:
				d.tickStreaks[m][k] = prev + 1
				d.sendTick(TickAlert{
					Tick: tk, Epoch: e, Metric: m, Key: k, Kind: AlertContinuing, StreakTicks: prev + 1,
					Ratio: cs.Ratio, Sessions: cs.Sessions, AttributedProblems: cs.AttributedProblems,
				})
			default:
				delete(d.tickStreaks[m], k)
				d.sendTick(TickAlert{
					Tick: tk, Epoch: e, Metric: m, Key: k, Kind: AlertResolved, StreakTicks: prev,
				})
			}
		}
	}
}

func (d *Detector) sendTick(a TickAlert) {
	d.TickAlerts++
	if d.tickEmit != nil {
		d.tickEmit(a)
	}
}
