package online

import (
	"testing"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/core/engine"
	"repro/internal/epoch"
	"repro/internal/events"
	"repro/internal/metric"
	"repro/internal/session"
	"repro/internal/synth"
)

func detectorConfig(perEpoch int) core.Config { return core.DefaultConfig(perEpoch) }

// outageGenerator builds a small trace with one injected buffering outage
// at a popular ASN over epochs [4, 9).
func outageGenerator(t *testing.T) (*synth.Generator, attr.Key, epoch.Range) {
	t.Helper()
	cfg := synth.DefaultConfig()
	cfg.Trace = epoch.Range{Start: 0, End: 12}
	cfg.SessionsPerEpoch = 2500
	cfg.Events.Trace = cfg.Trace
	// Quiet background so the outage detection is unambiguous.
	cfg.Events.DisableChronic = true
	cfg.Events.DisableEpisodic = true
	anchor := attr.NewKey(map[attr.Dim]int32{attr.ASN: 0})
	outage := epoch.Range{Start: 4, End: 9}
	cfg.Events.Extra = []events.Event{{
		Metric: metric.BufRatio, Anchor: anchor, Severity: 0.6,
		Intervals: []epoch.Range{outage}, Tag: "test-outage",
	}}
	g, err := synth.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g, anchor, outage
}

func TestDetectorAlertsOnOutage(t *testing.T) {
	g, anchor, outage := outageGenerator(t)
	var alerts []Alert
	d, err := NewDetector(detectorConfig(2500), func(a Alert) { alerts = append(alerts, a) })
	if err != nil {
		t.Fatal(err)
	}
	if err := g.ForEach(d.Add); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if d.Epochs != 12 {
		t.Fatalf("epochs processed = %d", d.Epochs)
	}

	var sawNew, sawActionable, sawResolved bool
	for _, a := range alerts {
		if a.Metric != metric.BufRatio || a.Key != anchor {
			continue
		}
		switch a.Kind {
		case AlertNew:
			sawNew = true
			if a.Epoch != outage.Start {
				t.Errorf("NEW alert at epoch %d, want %d", a.Epoch, outage.Start)
			}
			if a.Ratio <= 0 || a.Sessions <= 0 {
				t.Errorf("NEW alert snapshot empty: %+v", a)
			}
		case AlertContinuing:
			if a.Actionable() {
				sawActionable = true
			}
			if !outage.Contains(a.Epoch) {
				t.Errorf("CONTINUING alert outside the outage: epoch %d", a.Epoch)
			}
		case AlertResolved:
			sawResolved = true
			if a.Epoch != outage.End {
				t.Errorf("RESOLVED at epoch %d, want %d", a.Epoch, outage.End)
			}
			if a.StreakHours != outage.Len() {
				t.Errorf("resolved streak = %d, want %d", a.StreakHours, outage.Len())
			}
		}
	}
	if !sawNew || !sawActionable || !sawResolved {
		t.Errorf("alert lifecycle incomplete: new=%v actionable=%v resolved=%v (%d alerts)",
			sawNew, sawActionable, sawResolved, len(alerts))
	}
}

// TestDetectorToleratesGapEpochs starves one epoch in the middle of an
// outage (as a collector restart or load shedding would) and checks the
// degraded-epoch gate: the gap emits nothing, the outage streak survives it
// instead of spuriously resolving and re-detecting, and the gap is counted.
func TestDetectorToleratesGapEpochs(t *testing.T) {
	g, anchor, outage := outageGenerator(t)
	gapEpoch := epoch.Index(6) // strictly inside [4, 9)

	var alerts []Alert
	d, err := NewDetector(detectorConfig(2500), func(a Alert) { alerts = append(alerts, a) })
	if err != nil {
		t.Fatal(err)
	}
	d.MinEpochSessions = 100

	// Deliver the trace with the gap epoch starved down to a handful of
	// sessions — below the gate, above zero (the epoch still "exists").
	kept := 0
	if err := g.ForEach(func(s *session.Session) error {
		if s.Epoch == gapEpoch {
			if kept >= 10 {
				return nil
			}
			kept++
		}
		return d.Add(s)
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if d.Epochs != 12 || d.GapEpochs != 1 {
		t.Fatalf("epochs = %d, gap epochs = %d; want 12 and 1", d.Epochs, d.GapEpochs)
	}

	var news, resolves []Alert
	for _, a := range alerts {
		if a.Epoch == gapEpoch {
			t.Fatalf("gap epoch emitted an alert: %+v", a)
		}
		if a.Metric != metric.BufRatio || a.Key != anchor {
			continue
		}
		switch a.Kind {
		case AlertNew:
			news = append(news, a)
		case AlertResolved:
			resolves = append(resolves, a)
		}
	}
	if len(news) != 1 || news[0].Epoch != outage.Start {
		t.Fatalf("outage detected %d times (%+v); the gap must not restart the streak", len(news), news)
	}
	if len(resolves) != 1 || resolves[0].Epoch != outage.End {
		t.Fatalf("outage resolved %d times (%+v); want once at epoch %d", len(resolves), resolves, outage.End)
	}
	// The streak spans the outage minus the frozen gap epoch.
	if want := outage.Len() - 1; resolves[0].StreakHours != want {
		t.Fatalf("resolved streak = %d, want %d (gap epoch frozen, not counted)", resolves[0].StreakHours, want)
	}
}

func TestDetectorOrderingError(t *testing.T) {
	d, err := NewDetector(detectorConfig(100), nil)
	if err != nil {
		t.Fatal(err)
	}
	s1 := session.Session{Epoch: 5, EventIDs: session.NoEvents}
	s0 := session.Session{Epoch: 4, EventIDs: session.NoEvents}
	if err := d.Add(&s1); err != nil {
		t.Fatal(err)
	}
	if err := d.Add(&s0); err == nil {
		t.Error("out-of-order session accepted")
	}
}

func TestDetectorEmptyFlush(t *testing.T) {
	d, err := NewDetector(detectorConfig(100), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Error("empty flush should be a no-op")
	}
	if d.Epochs != 0 {
		t.Error("no epochs should have closed")
	}
}

func TestDetectorInvalidConfig(t *testing.T) {
	cfg := detectorConfig(100)
	cfg.Thresholds.ProblemRatioFactor = 0.1
	if _, err := NewDetector(cfg, nil); err == nil {
		t.Error("invalid thresholds accepted")
	}
}

func TestAlertKindString(t *testing.T) {
	if AlertNew.String() != "NEW" || AlertResolved.String() != "RESOLVED" {
		t.Error("alert kind names wrong")
	}
	if AlertKind(9).String() == "" {
		t.Error("unknown kind should not be empty")
	}
	a := Alert{Kind: AlertContinuing, StreakHours: 1}
	if a.Actionable() {
		t.Error("streak of 1 must not be actionable")
	}
}

// TestDetectorMatchesOffline: the streaming detector must reach the same
// per-epoch critical sets as the offline analyser.
func TestDetectorMatchesOffline(t *testing.T) {
	cfg := synth.DefaultConfig()
	cfg.Trace = epoch.Range{Start: 0, End: 6}
	cfg.SessionsPerEpoch = 1500
	cfg.Events.Trace = cfg.Trace
	g, err := synth.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ccfg := detectorConfig(1500)

	offline, err := core.AnalyzeGenerator(g, ccfg)
	if err != nil {
		t.Fatal(err)
	}

	type em struct {
		e epoch.Index
		m metric.Metric
	}
	online := make(map[em]map[attr.Key]bool)
	d, err := NewDetector(ccfg, func(a Alert) {
		if a.Kind == AlertResolved {
			return
		}
		k := em{a.Epoch, a.Metric}
		if online[k] == nil {
			online[k] = make(map[attr.Key]bool)
		}
		online[k][a.Key] = true
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.ForEach(d.Add); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}

	for i := range offline.Epochs {
		er := &offline.Epochs[i]
		for _, m := range metric.All() {
			want := er.Metrics[m].CriticalSet()
			got := online[em{er.Epoch, m}]
			if len(want) != len(got) {
				t.Fatalf("epoch %d %v: online %d keys vs offline %d", er.Epoch, m, len(got), len(want))
			}
			for k := range want {
				if !got[k] {
					t.Fatalf("epoch %d %v: offline key %v missing online", er.Epoch, m, k)
				}
			}
		}
	}
}

// collectAlerts runs one detector over the generator stream and returns its
// emissions plus final counters.
func collectAlerts(t *testing.T, g *synth.Generator, configure func(*Detector)) ([]Alert, int, int) {
	t.Helper()
	var alerts []Alert
	d, err := NewDetector(detectorConfig(2500), func(a Alert) { alerts = append(alerts, a) })
	if err != nil {
		t.Fatal(err)
	}
	if configure != nil {
		configure(d)
	}
	if err := g.ForEach(d.Add); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	return alerts, d.Epochs, d.Alerts
}

// TestDetectorPipelinedMatchesSynchronous: enabling the two-stage pipeline
// (at several depths, with and without sharded epochs) changes nothing
// observable — same alerts in the same order, same counters.
func TestDetectorPipelinedMatchesSynchronous(t *testing.T) {
	g, _, _ := outageGenerator(t)
	want, wantEpochs, wantCount := collectAlerts(t, g, nil)
	if len(want) == 0 {
		t.Fatal("reference run produced no alerts")
	}
	for _, depth := range []int{1, 3} {
		for _, workers := range []int{1, 4} {
			g2, _, _ := outageGenerator(t)
			got, epochs, count := collectAlerts(t, g2, func(d *Detector) {
				d.cfg.Workers = workers
				d.Pipeline(depth)
			})
			if len(got) != len(want) {
				t.Fatalf("depth %d workers %d: %d alerts, want %d", depth, workers, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("depth %d workers %d: alert %d = %+v, want %+v", depth, workers, i, got[i], want[i])
				}
			}
			if epochs != wantEpochs || count != wantCount {
				t.Fatalf("depth %d workers %d: counters %d/%d, want %d/%d",
					depth, workers, epochs, count, wantEpochs, wantCount)
			}
			if st := (&Detector{}).PipelineStats(); st != (engine.Stats{}) {
				t.Fatalf("non-pipelined detector stats = %+v", st)
			}
		}
	}
}

// TestObserveResultMatchesStreaming proves the aggregator entry point is the
// same detector: feeding per-epoch analysis results through ObserveResult —
// with one mid-outage epoch marked degraded — produces exactly the alert
// stream the streaming path produces with that epoch starved below the gate,
// including the frozen (not resolved, not restarted) streak across the gap.
func TestObserveResultMatchesStreaming(t *testing.T) {
	g, _, _ := outageGenerator(t)
	gapEpoch := epoch.Index(6)

	// Reference: the streaming detector with the gap epoch starved.
	var want []Alert
	ref, err := NewDetector(detectorConfig(2500), func(a Alert) { want = append(want, a) })
	if err != nil {
		t.Fatal(err)
	}
	ref.MinEpochSessions = 100
	kept := 0
	if err := g.ForEach(func(s *session.Session) error {
		if s.Epoch == gapEpoch {
			if kept >= 10 {
				return nil
			}
			kept++
		}
		return ref.Add(s)
	}); err != nil {
		t.Fatal(err)
	}
	if err := ref.Flush(); err != nil {
		t.Fatal(err)
	}

	// Aggregator path: analyse each epoch centrally, observe the results.
	var got []Alert
	d, err := NewDetector(detectorConfig(2500), func(a Alert) { got = append(got, a) })
	if err != nil {
		t.Fatal(err)
	}
	d.MinEpochSessions = 100
	g2, _, _ := outageGenerator(t)
	cfg := detectorConfig(2500)
	err = g2.ForEachEpoch(1, func(e epoch.Index, batch []session.Session) error {
		if e == gapEpoch {
			// The aggregator saw shed/lost coverage here: no result at all.
			return d.ObserveResult(e, nil, len(batch), true)
		}
		lites := cluster.AcquireLites()
		for i := range batch {
			lites = append(lites, cluster.Digest(&batch[i], cfg.Thresholds))
		}
		res, err := core.AnalyzeEpoch(e, lites, cfg)
		cluster.ReleaseLites(lites)
		if err != nil {
			return err
		}
		return d.ObserveResult(e, res, len(batch), false)
	})
	if err != nil {
		t.Fatal(err)
	}

	if len(got) != len(want) {
		t.Fatalf("ObserveResult path emitted %d alerts, streaming path %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("alert %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if d.Epochs != ref.Epochs || d.GapEpochs != ref.GapEpochs || d.Alerts != ref.Alerts {
		t.Fatalf("counters %d/%d/%d, want %d/%d/%d",
			d.Epochs, d.GapEpochs, d.Alerts, ref.Epochs, ref.GapEpochs, ref.Alerts)
	}
	if d.GapEpochs != 1 {
		t.Fatalf("gap epochs = %d, want 1", d.GapEpochs)
	}
}

// TestObserveResultGuards pins the entry point's misuse errors: mixing with
// the streaming path, out-of-order epochs, and a healthy epoch without a
// result.
func TestObserveResultGuards(t *testing.T) {
	d, err := NewDetector(detectorConfig(100), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ObserveResult(3, nil, 0, true); err != nil {
		t.Fatal(err)
	}
	if err := d.ObserveResult(3, nil, 0, true); err == nil {
		t.Fatal("replayed epoch accepted")
	}
	if err := d.ObserveResult(2, nil, 0, true); err == nil {
		t.Fatal("out-of-order epoch accepted")
	}
	if err := d.ObserveResult(4, nil, 10_000, false); err == nil {
		t.Fatal("healthy epoch without a result accepted")
	}
	// A session count below MinEpochSessions gates even when the caller
	// says the epoch was not degraded.
	d.MinEpochSessions = 100
	if err := d.ObserveResult(5, nil, 50, false); err != nil {
		t.Fatal(err)
	}
	if d.GapEpochs != 2 {
		t.Fatalf("gap epochs = %d, want 2", d.GapEpochs)
	}

	s, err := NewDetector(detectorConfig(100), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(&session.Session{Epoch: 1, EventIDs: session.NoEvents}); err != nil {
		t.Fatal(err)
	}
	if err := s.ObserveResult(2, nil, 0, true); err == nil {
		t.Fatal("ObserveResult accepted while streaming sessions are buffered")
	}
}
