package online

import (
	"repro/internal/attr"
	"repro/internal/epoch"
	"repro/internal/events"
	"repro/internal/metric"
	"repro/internal/window"
)

// EventLatency is one ground-truth event's detection timing under both
// detector granularities. Latencies count ticks of session data consumed
// past the event's start: a batch detector evaluating only at epoch
// boundaries cannot do better than TicksPerEpoch on an event starting at an
// epoch's first tick, while the streaming detector's floor is one tick.
type EventLatency struct {
	EventID int32
	Metric  metric.Metric
	Tag     string
	// StartEpoch is the first epoch of the event's first active interval;
	// StartTick its first tick.
	StartEpoch epoch.Index
	StartTick  window.Tick

	// DetectedTick reports whether any tick-level AlertNew matched the
	// event's anchor (exactly, or via refinement/coarsening, the relation
	// the validation suite uses); TickLatency is then the number of ticks
	// from the event's start through the detecting tick, inclusive.
	DetectedTick bool
	TickLatency  int

	// DetectedEpoch / EpochLatencyTicks are the batch counterpart: the
	// first epoch-level AlertNew for the anchor, with the latency charged
	// through the END of the detecting epoch (batch results only exist at
	// boundaries), converted to ticks for direct comparison.
	DetectedEpoch     bool
	EpochLatencyTicks int
}

// anchorMatches mirrors the validation suite's recovery relation: a
// detected key counts for an anchor when it equals it, refines it, or
// coarsens it in the cluster hierarchy.
func anchorMatches(k, anchor attr.Key) bool {
	return k == anchor || k.Subsumes(anchor) || anchor.Subsumes(k)
}

// MeasureLatency charges every ground-truth event its detection latency
// under the tick-level and epoch-level alert streams of one run. Only
// AlertNew emissions at or after the event's start count as detections —
// a streak that began before the event belongs to some other cause.
// Events whose metric never alerts simply report DetectedTick/DetectedEpoch
// false; undetectable events (too small, too mild) are the caller's concern.
func MeasureLatency(sched *events.Schedule, ticks []TickAlert, epochs []Alert, wcfg window.Config) []EventLatency {
	out := make([]EventLatency, 0, len(sched.Events))
	for i := range sched.Events {
		ev := &sched.Events[i]
		if len(ev.Intervals) == 0 {
			continue
		}
		el := EventLatency{
			EventID:    ev.ID,
			Metric:     ev.Metric,
			Tag:        ev.Tag,
			StartEpoch: ev.Intervals[0].Start,
		}
		el.StartTick = wcfg.StartTick(el.StartEpoch)

		for _, a := range ticks {
			if a.Kind != AlertNew || a.Metric != ev.Metric || a.Tick < el.StartTick {
				continue
			}
			if anchorMatches(a.Key, ev.Anchor) {
				el.DetectedTick = true
				el.TickLatency = int(a.Tick-el.StartTick) + 1
				break
			}
		}
		for _, a := range epochs {
			if a.Kind != AlertNew || a.Metric != ev.Metric || a.Epoch < el.StartEpoch {
				continue
			}
			if anchorMatches(a.Key, ev.Anchor) {
				el.DetectedEpoch = true
				el.EpochLatencyTicks = int(a.Epoch-el.StartEpoch+1) * wcfg.TicksPerEpoch
				break
			}
		}
		out = append(out, el)
	}
	return out
}
