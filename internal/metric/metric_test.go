package metric

import (
	"math"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	for _, m := range All() {
		got, err := Parse(m.String())
		if err != nil || got != m {
			t.Errorf("Parse(%q) = %v, %v; want %v", m.String(), got, err, m)
		}
	}
	if _, err := Parse("latency"); err == nil {
		t.Error("Parse(latency) succeeded, want error")
	}
	if got, err := Parse("bufratio"); err != nil || got != BufRatio {
		t.Errorf("Parse is not case-insensitive: %v, %v", got, err)
	}
}

func TestDefaultThresholdsMatchPaper(t *testing.T) {
	th := Default()
	if th.BufRatio != 0.05 {
		t.Errorf("BufRatio threshold = %v, want 0.05 (paper §2)", th.BufRatio)
	}
	if th.BitrateKbps != 700 {
		t.Errorf("Bitrate threshold = %v, want 700 kbps (paper §2)", th.BitrateKbps)
	}
	if th.JoinTimeMS != 10_000 {
		t.Errorf("JoinTime threshold = %v, want 10s (paper §2)", th.JoinTimeMS)
	}
	if th.ProblemRatioFactor != 1.5 {
		t.Errorf("ProblemRatioFactor = %v, want 1.5 (paper §3.1)", th.ProblemRatioFactor)
	}
	if err := th.Validate(); err != nil {
		t.Errorf("Default().Validate() = %v", err)
	}
}

func TestScaleMinSessions(t *testing.T) {
	th := Default().ScaleMinSessions(900_000)
	if th.MinClusterSessions != 1000 {
		t.Errorf("at paper scale MinClusterSessions = %d, want 1000", th.MinClusterSessions)
	}
	th = Default().ScaleMinSessions(1000)
	if th.MinClusterSessions != 20 {
		t.Errorf("tiny-trace floor = %d, want 20", th.MinClusterSessions)
	}
	th = Default().ScaleMinSessions(90_000)
	if th.MinClusterSessions != 100 {
		t.Errorf("scaled MinClusterSessions = %d, want 100", th.MinClusterSessions)
	}
}

func TestThresholdsValidate(t *testing.T) {
	bad := []Thresholds{
		{BufRatio: 0, BitrateKbps: 700, JoinTimeMS: 1e4, ProblemRatioFactor: 1.5, MinClusterSessions: 10},
		{BufRatio: 0.05, BitrateKbps: 0, JoinTimeMS: 1e4, ProblemRatioFactor: 1.5, MinClusterSessions: 10},
		{BufRatio: 0.05, BitrateKbps: 700, JoinTimeMS: 0, ProblemRatioFactor: 1.5, MinClusterSessions: 10},
		{BufRatio: 0.05, BitrateKbps: 700, JoinTimeMS: 1e4, ProblemRatioFactor: 1, MinClusterSessions: 10},
		{BufRatio: 0.05, BitrateKbps: 700, JoinTimeMS: 1e4, ProblemRatioFactor: 1.5, MinClusterSessions: 0},
	}
	for i, th := range bad {
		if err := th.Validate(); err == nil {
			t.Errorf("case %d: Validate() = nil, want error", i)
		}
	}
}

func TestProblemClassification(t *testing.T) {
	th := Default()
	cases := []struct {
		name string
		q    QoE
		want [NumMetrics]bool // BufRatio, Bitrate, JoinTime, JoinFailure
	}{
		{
			name: "healthy HD session",
			q:    QoE{BufRatio: 0.01, BitrateKbps: 3000, JoinTimeMS: 1500, DurationS: 600},
			want: [NumMetrics]bool{false, false, false, false},
		},
		{
			name: "heavy buffering only",
			q:    QoE{BufRatio: 0.12, BitrateKbps: 3000, JoinTimeMS: 1500, DurationS: 600},
			want: [NumMetrics]bool{true, false, false, false},
		},
		{
			name: "low bitrate only",
			q:    QoE{BufRatio: 0.01, BitrateKbps: 400, JoinTimeMS: 1500, DurationS: 600},
			want: [NumMetrics]bool{false, true, false, false},
		},
		{
			name: "slow join only",
			q:    QoE{BufRatio: 0.01, BitrateKbps: 3000, JoinTimeMS: 15_000, DurationS: 600},
			want: [NumMetrics]bool{false, false, true, false},
		},
		{
			name: "join failure dominates",
			q:    QoE{JoinFailed: true},
			want: [NumMetrics]bool{false, false, false, true},
		},
		{
			name: "exactly at thresholds is not a problem",
			q:    QoE{BufRatio: 0.05, BitrateKbps: 700, JoinTimeMS: 10_000, DurationS: 600},
			want: [NumMetrics]bool{false, false, false, false},
		},
		{
			name: "multi-metric problems are independent",
			q:    QoE{BufRatio: 0.2, BitrateKbps: 200, JoinTimeMS: 20_000, DurationS: 600},
			want: [NumMetrics]bool{true, true, true, false},
		},
	}
	for _, c := range cases {
		for _, m := range All() {
			if got := c.q.Problem(m, th); got != c.want[m] {
				t.Errorf("%s: Problem(%v) = %v, want %v", c.name, m, got, c.want[m])
			}
		}
	}
}

// TestProblemBoundariesUlpTolerant pins the tolerance-aware boundary
// semantics at the paper's exact thresholds: a session whose metric value is
// mathematically on the 5% / 700 kbps / 10 s boundary but one ulp off —
// the normal outcome of computing the value arithmetically — must classify
// exactly like the boundary itself (not a problem).
func TestProblemBoundariesUlpTolerant(t *testing.T) {
	th := Default()
	cases := []struct {
		name string
		q    QoE
		m    Metric
		want bool
	}{
		{"buf ratio one ulp above 0.05", QoE{BufRatio: math.Nextafter(0.05, 1), BitrateKbps: 3000, JoinTimeMS: 100}, BufRatio, false},
		{"buf ratio derived by division", QoE{BufRatio: 5.0 / 100.0, BitrateKbps: 3000, JoinTimeMS: 100}, BufRatio, false},
		{"buf ratio clearly above", QoE{BufRatio: 0.051, BitrateKbps: 3000, JoinTimeMS: 100}, BufRatio, true},
		{"bitrate one ulp below 700", QoE{BufRatio: 0.01, BitrateKbps: math.Nextafter(700, 0), JoinTimeMS: 100}, Bitrate, false},
		{"bitrate clearly below", QoE{BufRatio: 0.01, BitrateKbps: 699, JoinTimeMS: 100}, Bitrate, true},
		{"join time one ulp above 10s", QoE{BufRatio: 0.01, BitrateKbps: 3000, JoinTimeMS: math.Nextafter(10_000, 20_000)}, JoinTime, false},
		{"join time clearly above", QoE{BufRatio: 0.01, BitrateKbps: 3000, JoinTimeMS: 10_001}, JoinTime, true},
	}
	for _, c := range cases {
		if got := c.q.Problem(c.m, th); got != c.want {
			t.Errorf("%s: Problem(%v) = %v, want %v", c.name, c.m, got, c.want)
		}
	}
}

func TestDefined(t *testing.T) {
	ok := QoE{BitrateKbps: 1000}
	failed := QoE{JoinFailed: true}
	for _, m := range All() {
		if !ok.Defined(m) {
			t.Errorf("played session should define %v", m)
		}
	}
	if failed.Defined(BufRatio) || failed.Defined(Bitrate) || failed.Defined(JoinTime) {
		t.Error("failed session should not define continuous metrics")
	}
	if !failed.Defined(JoinFailure) {
		t.Error("JoinFailure must always be defined")
	}
}

func TestQoEValue(t *testing.T) {
	q := QoE{BufRatio: 0.07, BitrateKbps: 1234, JoinTimeMS: 2500}
	if q.Value(BufRatio) != 0.07 || q.Value(Bitrate) != 1234 || q.Value(JoinTime) != 2500 {
		t.Errorf("Value mismatch: %+v", q)
	}
	if q.Value(JoinFailure) != 0 {
		t.Errorf("Value(JoinFailure) = %v for played session, want 0", q.Value(JoinFailure))
	}
	if (QoE{JoinFailed: true}).Value(JoinFailure) != 1 {
		t.Error("Value(JoinFailure) = 0 for failed session, want 1")
	}
}

func TestQoEValidate(t *testing.T) {
	good := QoE{BufRatio: 0.5, BitrateKbps: 100, JoinTimeMS: 10, DurationS: 5}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate(good) = %v", err)
	}
	bad := []QoE{
		{BufRatio: -0.1},
		{BufRatio: 1.5},
		{BitrateKbps: -1},
		{JoinTimeMS: -1},
		{DurationS: -1},
	}
	for i, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("case %d: Validate(%+v) = nil, want error", i, q)
		}
	}
	// A failed join skips the physical checks: the fields are undefined.
	if err := (QoE{JoinFailed: true, BufRatio: -1}).Validate(); err != nil {
		t.Errorf("failed-join Validate = %v, want nil", err)
	}
}
