// Package metric defines the four video quality metrics the paper studies —
// buffering ratio, average bitrate, join time, and join failures — the
// per-session QoE record, and the thresholds that classify a session as a
// problem session for each metric (paper §2, "Identifying problem
// sessions").
package metric

import (
	"fmt"
	"strings"

	"repro/internal/core/eps"
)

// Metric identifies one of the four quality metrics.
type Metric uint8

// The four quality metrics, in the paper's order.
const (
	BufRatio    Metric = iota // fraction of session time spent buffering
	Bitrate                   // time-weighted average playback bitrate (kbps)
	JoinTime                  // startup delay (milliseconds)
	JoinFailure               // binary: the video never started

	// NumMetrics is the number of quality metrics.
	NumMetrics = 4
)

var metricNames = [NumMetrics]string{"BufRatio", "Bitrate", "JoinTime", "JoinFailure"}

// String returns the canonical metric name.
func (m Metric) String() string {
	if int(m) < len(metricNames) {
		return metricNames[m]
	}
	return fmt.Sprintf("Metric(%d)", uint8(m))
}

// Parse converts a metric name (case-insensitive) into a Metric.
func Parse(s string) (Metric, error) {
	for i, n := range metricNames {
		if strings.EqualFold(s, n) {
			return Metric(i), nil
		}
	}
	return 0, fmt.Errorf("metric: unknown metric %q", s)
}

// All returns the four metrics in order.
func All() [NumMetrics]Metric {
	return [NumMetrics]Metric{BufRatio, Bitrate, JoinTime, JoinFailure}
}

// Thresholds holds the problem-session thresholds from paper §2 and the
// problem-cluster significance parameters from §3.1.
type Thresholds struct {
	// BufRatio marks a problem when the buffering ratio exceeds this
	// fraction. Paper: 0.05 ("beyond this value there is a sharp decrease
	// in amount of video viewed").
	BufRatio float64
	// BitrateKbps marks a problem when the average bitrate is below this
	// value. Paper: 700 kbps (≈ the recommended "360p" setting).
	BitrateKbps float64
	// JoinTimeMS marks a problem when the join time exceeds this value.
	// Paper: 10 000 ms (a conservative upper bound on user tolerance).
	JoinTimeMS float64

	// ProblemRatioFactor is the multiple of the global problem ratio a
	// cluster must exceed to be a problem cluster. Paper: 1.5 (≈ two
	// standard deviations of the per-cluster problem-ratio distribution).
	ProblemRatioFactor float64
	// MinClusterSessions is the minimum cluster size for statistical
	// significance. Paper: 1000 sessions out of ~900K per hour; callers
	// scale it with trace volume.
	MinClusterSessions int
	// MinZScore additionally requires a cluster's problem count to exceed
	// the global expectation by this many binomial standard deviations.
	// The paper's fixed 1000-session floor made its 1.5× rule ≈5σ at
	// 900K sessions/hour; at laptop scale the scaled floor alone admits
	// noise, so this knob restores the paper's effective significance
	// (its footnote motivates the 1.5× factor as "roughly two standard
	// deviations"). Zero disables the test (the paper's literal rule).
	MinZScore float64
}

// Default returns the paper's thresholds with a MinClusterSessions already
// scaled for laptop-size traces (callers typically override it via
// ScaleMinSessions).
func Default() Thresholds {
	return Thresholds{
		BufRatio:           0.05,
		BitrateKbps:        700,
		JoinTimeMS:         10_000,
		ProblemRatioFactor: 1.5,
		MinClusterSessions: 50,
		MinZScore:          3.3,
	}
}

// ScaleMinSessions returns a copy of t with MinClusterSessions set to the
// same fraction of an epoch that the paper's 1000-session floor represents
// (1000 of ≈900K sessions/hour ≈ 0.11%), with a floor of 20 sessions so
// tiny traces still require a statistically meaningful count.
func (t Thresholds) ScaleMinSessions(sessionsPerEpoch int) Thresholds {
	const paperFraction = 1000.0 / 900_000.0
	n := int(paperFraction * float64(sessionsPerEpoch))
	if n < 20 {
		n = 20
	}
	t.MinClusterSessions = n
	return t
}

// Validate reports the first invalid field, if any.
func (t Thresholds) Validate() error {
	switch {
	case t.BufRatio <= 0 || t.BufRatio >= 1:
		return fmt.Errorf("metric: BufRatio threshold %v out of (0,1)", t.BufRatio)
	case t.BitrateKbps <= 0:
		return fmt.Errorf("metric: BitrateKbps threshold %v must be positive", t.BitrateKbps)
	case t.JoinTimeMS <= 0:
		return fmt.Errorf("metric: JoinTimeMS threshold %v must be positive", t.JoinTimeMS)
	case t.ProblemRatioFactor <= 1:
		return fmt.Errorf("metric: ProblemRatioFactor %v must exceed 1", t.ProblemRatioFactor)
	case t.MinClusterSessions < 1:
		return fmt.Errorf("metric: MinClusterSessions %d must be at least 1", t.MinClusterSessions)
	case t.MinZScore < 0:
		return fmt.Errorf("metric: MinZScore %v must be non-negative", t.MinZScore)
	}
	return nil
}

// QoE is the quality outcome of one video session, as assembled from
// client-side heartbeats.
type QoE struct {
	// JoinFailed is set when no content played at all; the remaining
	// fields are then undefined (the paper's measurement module reports
	// failures via a player-status heartbeat).
	JoinFailed bool
	// JoinTimeMS is the startup delay in milliseconds.
	JoinTimeMS float64
	// BufRatio is buffering time / session duration, in [0, 1].
	BufRatio float64
	// BitrateKbps is the time-weighted average playback bitrate.
	BitrateKbps float64
	// DurationS is the viewing duration in seconds.
	DurationS float64
}

// Defined reports whether metric m is measurable for this session. Join
// failure is always defined; the continuous metrics are undefined for
// sessions that never started (paper §2 treats the metrics independently,
// and a failed join produces no playback to measure).
func (q QoE) Defined(m Metric) bool {
	if m == JoinFailure {
		return true
	}
	return !q.JoinFailed
}

// Problem reports whether the session is a problem session on metric m
// under thresholds t. Undefined metrics are never problems. The boundary
// comparisons are tolerance-aware (eps.GT/eps.LT): a session at exactly the
// threshold — even when the value was computed arithmetically and sits one
// ulp off — is not a problem session.
func (q QoE) Problem(m Metric, t Thresholds) bool {
	switch m {
	case JoinFailure:
		return q.JoinFailed
	case BufRatio:
		return !q.JoinFailed && eps.GT(q.BufRatio, t.BufRatio)
	case Bitrate:
		return !q.JoinFailed && eps.LT(q.BitrateKbps, t.BitrateKbps)
	case JoinTime:
		return !q.JoinFailed && eps.GT(q.JoinTimeMS, t.JoinTimeMS)
	}
	return false
}

// Value returns the raw value of metric m for CDF-style reporting
// (JoinFailure yields 1 for failed, 0 otherwise).
func (q QoE) Value(m Metric) float64 {
	switch m {
	case BufRatio:
		return q.BufRatio
	case Bitrate:
		return q.BitrateKbps
	case JoinTime:
		return q.JoinTimeMS
	case JoinFailure:
		if q.JoinFailed {
			return 1
		}
		return 0
	}
	return 0
}

// Validate reports the first physically impossible field, if any.
func (q QoE) Validate() error {
	if q.JoinFailed {
		return nil
	}
	switch {
	case q.BufRatio < 0 || q.BufRatio > 1:
		return fmt.Errorf("metric: buffering ratio %v out of [0,1]", q.BufRatio)
	case q.BitrateKbps < 0:
		return fmt.Errorf("metric: negative bitrate %v", q.BitrateKbps)
	case q.JoinTimeMS < 0:
		return fmt.Errorf("metric: negative join time %v", q.JoinTimeMS)
	case q.DurationS < 0:
		return fmt.Errorf("metric: negative duration %v", q.DurationS)
	}
	return nil
}
