// Package player is the behavioural substrate of the reproduction: a
// discrete-event simulation of an adaptive-bitrate video player — segment
// downloads over a time-varying network, startup buffering, mid-stream
// rebuffering, and bitrate switching under pluggable ABR algorithms (the
// client-adaptation ecosystem the paper's §7 cites: rate-based,
// buffer-based, and fixed-rate players).
//
// The simulator produces exactly the per-session QoE record the analysis
// consumes, so examples can drive the full pipeline mechanically instead of
// sampling parametric distributions.
package player

import (
	"fmt"

	"repro/internal/metric"
	"repro/internal/stats"
)

// Config shapes the player.
type Config struct {
	// SegmentS is the media segment duration in seconds.
	SegmentS float64
	// StartupBufferS is the playback buffer required before rendering
	// starts (join completes).
	StartupBufferS float64
	// MaxBufferS caps the buffer; the player idles when full.
	MaxBufferS float64
	// JoinTimeoutS abandons the session as a join failure when startup
	// takes longer.
	JoinTimeoutS float64
	// StartupOverheadS models manifest fetch and player bootstrap before
	// the first segment request (the paper's Chinese-clients-loading-US-
	// player-modules anecdote inflates exactly this term).
	StartupOverheadS float64
}

// DefaultConfig returns a typical 2013 HLS-style player.
func DefaultConfig() Config {
	return Config{
		SegmentS:         4,
		StartupBufferS:   8,
		MaxBufferS:       30,
		JoinTimeoutS:     75,
		StartupOverheadS: 0.6,
	}
}

// Validate reports the first invalid field.
func (c Config) Validate() error {
	switch {
	case c.SegmentS <= 0:
		return fmt.Errorf("player: SegmentS %v must be positive", c.SegmentS)
	case c.StartupBufferS <= 0:
		return fmt.Errorf("player: StartupBufferS %v must be positive", c.StartupBufferS)
	case c.MaxBufferS < c.StartupBufferS:
		return fmt.Errorf("player: MaxBufferS %v below StartupBufferS %v", c.MaxBufferS, c.StartupBufferS)
	case c.JoinTimeoutS <= 0:
		return fmt.Errorf("player: JoinTimeoutS %v must be positive", c.JoinTimeoutS)
	case c.StartupOverheadS < 0:
		return fmt.Errorf("player: negative StartupOverheadS")
	}
	return nil
}

// State is what an ABR algorithm sees when choosing the next rendition.
type State struct {
	// BufferS is the current playback buffer level.
	BufferS float64
	// LastThroughputKbps is the measured throughput of the previous
	// segment download (0 before the first).
	LastThroughputKbps float64
	// CurrentIndex is the rendition currently selected.
	CurrentIndex int
	// Ladder is the site's rendition ladder (kbps, ascending).
	Ladder []float64
	// Startup reports whether playback has not yet begun.
	Startup bool
}

// ABR selects the rendition index for the next segment.
type ABR interface {
	Next(s State) int
	// Name identifies the algorithm in reports.
	Name() string
}

// Fixed always plays one rendition — the paper's single-bitrate sites and
// non-adaptive players.
type Fixed struct{ Index int }

// Next implements ABR.
func (f Fixed) Next(s State) int {
	if f.Index < 0 || f.Index >= len(s.Ladder) {
		return 0
	}
	return f.Index
}

// Name implements ABR.
func (f Fixed) Name() string { return "fixed" }

// RateBased picks the highest rendition below a safety fraction of the
// measured throughput (classic throughput-rule players).
type RateBased struct {
	// Safety is the fraction of measured throughput considered
	// sustainable (default 0.8 when zero).
	Safety float64
}

// Next implements ABR.
func (a RateBased) Next(s State) int {
	safety := a.Safety
	if safety <= 0 {
		safety = 0.8
	}
	if s.LastThroughputKbps <= 0 {
		return 0 // conservative start
	}
	budget := safety * s.LastThroughputKbps
	best := 0
	for i, b := range s.Ladder {
		if b <= budget {
			best = i
		}
	}
	return best
}

// Name implements ABR.
func (a RateBased) Name() string { return "rate-based" }

// BufferBased maps buffer occupancy to rendition (BBA-style): low buffer →
// lowest rendition, full buffer → highest, linear in between.
type BufferBased struct {
	// ReservoirS and CushionS delimit the linear region (defaults 5 and
	// 20 when zero).
	ReservoirS, CushionS float64
}

// Next implements ABR.
func (a BufferBased) Next(s State) int {
	reservoir := a.ReservoirS
	if reservoir <= 0 {
		reservoir = 5
	}
	cushion := a.CushionS
	if cushion <= 0 {
		cushion = 20
	}
	if s.Startup || s.BufferS <= reservoir {
		return 0
	}
	if s.BufferS >= reservoir+cushion {
		return len(s.Ladder) - 1
	}
	frac := (s.BufferS - reservoir) / cushion
	idx := int(frac * float64(len(s.Ladder)))
	if idx >= len(s.Ladder) {
		idx = len(s.Ladder) - 1
	}
	return idx
}

// Name implements ABR.
func (a BufferBased) Name() string { return "buffer-based" }

// Network supplies time-varying throughput to the simulator.
type Network interface {
	// ThroughputKbps returns the sustainable rate at simulation time t
	// seconds.
	ThroughputKbps(t float64) float64
}

// ConstNetwork is a fixed-rate network.
type ConstNetwork float64

// ThroughputKbps implements Network.
func (c ConstNetwork) ThroughputKbps(t float64) float64 { return float64(c) }

// MarkovNetwork modulates a mean rate through a three-state chain (good /
// degraded / bad), the classic bursty last-mile model.
type MarkovNetwork struct {
	MeanKbps float64
	// HoldS is the mean state holding time.
	HoldS float64

	rng    *stats.RNG
	state  int
	until  float64
	levels [3]float64
}

// NewMarkovNetwork builds a chain with the given mean rate.
func NewMarkovNetwork(rng *stats.RNG, meanKbps, holdS float64) *MarkovNetwork {
	n := &MarkovNetwork{MeanKbps: meanKbps, HoldS: holdS, rng: rng}
	n.levels = [3]float64{1.25, 0.7, 0.25}
	return n
}

// ThroughputKbps implements Network.
func (n *MarkovNetwork) ThroughputKbps(t float64) float64 {
	for t >= n.until {
		// Transition: mostly good, occasionally degraded, rarely bad.
		u := n.rng.Float64()
		switch {
		case u < 0.70:
			n.state = 0
		case u < 0.93:
			n.state = 1
		default:
			n.state = 2
		}
		n.until += n.HoldS * (0.5 + n.rng.ExpFloat64())
	}
	return n.MeanKbps * n.levels[n.state]
}

// Result is the simulated session outcome plus playback internals for
// inspection.
type Result struct {
	QoE metric.QoE
	// Rebuffers counts mid-stream stalls.
	Rebuffers int
	// Switches counts rendition changes.
	Switches int
}

// Play simulates one session: connecting (which may fail), startup
// buffering, and segment-by-segment playback of viewing durationS seconds.
// failProb is the connection-failure probability (from the CDN model);
// rttS adds per-segment request latency.
func Play(rng *stats.RNG, ladder []float64, abr ABR, net Network, cfg Config, durationS, failProb, rttS float64) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if len(ladder) == 0 {
		return Result{}, fmt.Errorf("player: empty rendition ladder")
	}
	if durationS <= 0 {
		return Result{}, fmt.Errorf("player: non-positive duration %v", durationS)
	}

	if rng.Bool(failProb) {
		return Result{QoE: metric.QoE{JoinFailed: true}}, nil
	}

	var (
		now        = cfg.StartupOverheadS + rttS // manifest + bootstrap
		buffer     = 0.0
		played     = 0.0
		buffering  = 0.0
		joined     = false
		joinTime   = 0.0
		weighted   = 0.0 // Σ bitrate × seconds played
		st         = State{Ladder: ladder, Startup: true}
		res        Result
		maxWallS   = durationS*4 + cfg.JoinTimeoutS // runaway guard
		lastChoice = -1
	)

	for played < durationS && now < maxWallS {
		idx := abr.Next(st)
		if idx < 0 {
			idx = 0
		}
		if idx >= len(ladder) {
			idx = len(ladder) - 1
		}
		if lastChoice >= 0 && idx != lastChoice {
			res.Switches++
		}
		lastChoice = idx
		st.CurrentIndex = idx

		// Download one segment of SegmentS seconds at ladder[idx] kbps.
		bits := ladder[idx] * 1000 * cfg.SegmentS
		tp := net.ThroughputKbps(now)
		if tp < 1 {
			tp = 1
		}
		dl := bits/(tp*1000) + rttS
		st.LastThroughputKbps = bits / 1000 / dl

		if !joined {
			now += dl
			buffer += cfg.SegmentS
			if now > cfg.JoinTimeoutS {
				return Result{QoE: metric.QoE{JoinFailed: true}}, nil
			}
			if buffer >= cfg.StartupBufferS {
				joined = true
				joinTime = now
				st.Startup = false
			}
			st.BufferS = buffer
			continue
		}

		// Playback drains the buffer while the download runs.
		drained := dl
		if drained > buffer {
			// Stall: the buffer empties mid-download.
			stall := drained - buffer
			playedNow := buffer
			buffer = 0
			played += playedNow
			weighted += ladder[idx] * playedNow
			buffering += stall
			res.Rebuffers++
			now += dl
		} else {
			buffer -= drained
			played += drained
			weighted += ladder[idx] * drained
			now += dl
		}
		buffer += cfg.SegmentS
		if buffer > cfg.MaxBufferS {
			// Idle until there is room: playback continues.
			idle := buffer - cfg.MaxBufferS
			played += idle
			weighted += ladder[idx] * idle
			now += idle
			buffer = cfg.MaxBufferS
		}
		st.BufferS = buffer
	}

	if !joined {
		return Result{QoE: metric.QoE{JoinFailed: true}}, nil
	}
	if played <= 0 {
		played = 1e-9
	}
	total := played + buffering
	res.QoE = metric.QoE{
		JoinTimeMS:  joinTime * 1000,
		BufRatio:    stats.Clamp(buffering/total, 0, 1),
		BitrateKbps: weighted / played,
		DurationS:   played,
	}
	return res, nil
}
