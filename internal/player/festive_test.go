package player

import (
	"testing"

	"repro/internal/stats"
)

func TestFestiveClimbsGradually(t *testing.T) {
	rng := stats.NewRNG(3)
	res, err := Play(rng, ladder, &Festive{}, ConstNetwork(8000), DefaultConfig(), 600, 0, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	if res.QoE.JoinFailed {
		t.Fatal("join failed on a fast network")
	}
	// Eventually reaches a high rung but via single-rung switches: with a
	// 4-rung ladder starting at rung 0 that is at least 3 switches.
	if res.QoE.BitrateKbps < 1500 {
		t.Errorf("festive stuck low: %v kbps", res.QoE.BitrateKbps)
	}
	if res.Switches < 3 {
		t.Errorf("festive should climb rung by rung, saw %d switches", res.Switches)
	}
	if res.QoE.BufRatio > 0.02 {
		t.Errorf("festive stalled on a fast network: %v", res.QoE.BufRatio)
	}
}

// TestFestiveStability reproduces the FESTIVE paper's motivation: under a
// bursty network, harmonic-mean estimation plus gradual switching changes
// rendition less often than the plain rate-based rule.
func TestFestiveStability(t *testing.T) {
	run := func(abr ABR) Result {
		net := NewMarkovNetwork(stats.NewRNG(91), 2200, 8)
		res, err := Play(stats.NewRNG(7), ladder, abr, net, DefaultConfig(), 900, 0, 0.03)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	festive := run(&Festive{})
	rate := run(RateBased{})
	if festive.QoE.JoinFailed || rate.QoE.JoinFailed {
		t.Skip("join failure under burst; comparison not meaningful")
	}
	if festive.Switches >= rate.Switches {
		t.Errorf("festive switched %d times, rate-based %d — stability lost",
			festive.Switches, rate.Switches)
	}
}

func TestFestiveDownSwitchOnCollapse(t *testing.T) {
	// Feed states directly: after cruising at the top rung, a throughput
	// collapse must step down immediately (one rung per segment).
	f := &Festive{Window: 3, UpPersistence: 1}
	s := State{Ladder: ladder, CurrentIndex: 3}
	s.LastThroughputKbps = 5000
	f.Next(s) // prime the window
	s.LastThroughputKbps = 250
	got := f.Next(s)
	if got > 3 {
		t.Fatalf("up-switch during collapse: %d", got)
	}
	// Keep feeding collapse samples; the choice must march down to 0.
	idx := got
	for i := 0; i < 10 && idx > 0; i++ {
		s.CurrentIndex = idx
		s.LastThroughputKbps = 250
		next := f.Next(s)
		if next > idx {
			t.Fatalf("switched up (%d → %d) during collapse", idx, next)
		}
		if next < idx-1 {
			t.Fatalf("skipped rungs downward (%d → %d); FESTIVE is gradual", idx, next)
		}
		idx = next
	}
	if idx != 0 {
		t.Errorf("never reached the lowest rung: %d", idx)
	}
}

func TestFestiveUpPersistence(t *testing.T) {
	f := &Festive{Window: 3, UpPersistence: 3}
	s := State{Ladder: ladder, CurrentIndex: 0, LastThroughputKbps: 8000}
	// Headroom is visible immediately, but the first two observations must
	// hold the current rung; the third may switch up one rung.
	for i := 0; i < 2; i++ {
		if got := f.Next(s); got != 0 {
			t.Errorf("observation %d switched to %d before persistence satisfied", i+1, got)
		}
	}
	if got := f.Next(s); got != 1 {
		t.Errorf("after persistence, Next = %d, want 1", got)
	}
}
