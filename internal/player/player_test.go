package player

import (
	"testing"

	"repro/internal/stats"
)

var ladder = []float64{300, 700, 1500, 3000}

func play(t *testing.T, abr ABR, net Network, failProb float64) Result {
	t.Helper()
	res, err := Play(stats.NewRNG(7), ladder, abr, net, DefaultConfig(), 300, failProb, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestHealthyPlayback(t *testing.T) {
	res := play(t, RateBased{}, ConstNetwork(5000), 0)
	q := res.QoE
	if q.JoinFailed {
		t.Fatal("healthy session failed to join")
	}
	if q.JoinTimeMS <= 0 || q.JoinTimeMS > 10_000 {
		t.Errorf("join time = %v ms", q.JoinTimeMS)
	}
	if q.BufRatio > 0.01 {
		t.Errorf("buffering ratio = %v on a fast network", q.BufRatio)
	}
	// 5000 kbps × 0.8 safety sustains the 3000 rung.
	if q.BitrateKbps < 2500 {
		t.Errorf("bitrate = %v, want near top rung", q.BitrateKbps)
	}
	if err := q.Validate(); err != nil {
		t.Errorf("invalid QoE: %v", err)
	}
}

func TestSlowNetworkBuffers(t *testing.T) {
	// 400 kbps cannot sustain even the lowest rung without stalls... it
	// can: 300 < 400. Use 200 kbps for guaranteed rebuffering.
	res := play(t, RateBased{}, ConstNetwork(200), 0)
	if res.QoE.JoinFailed {
		// Startup may exceed the timeout on very slow networks; that is a
		// legitimate outcome, but with 200 kbps and a 300 kbps rung the
		// 8 s startup buffer needs 12 s — well within the 75 s timeout.
		t.Fatal("unexpected join failure")
	}
	if res.Rebuffers == 0 || res.QoE.BufRatio < 0.05 {
		t.Errorf("expected heavy rebuffering: %d stalls, ratio %v", res.Rebuffers, res.QoE.BufRatio)
	}
	if res.QoE.BitrateKbps > 310 {
		t.Errorf("bitrate = %v, want pinned at lowest rung", res.QoE.BitrateKbps)
	}
}

func TestJoinFailureOnDeadNetwork(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JoinTimeoutS = 10
	res, err := Play(stats.NewRNG(1), ladder, RateBased{}, ConstNetwork(50), cfg, 300, 0, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	if !res.QoE.JoinFailed {
		t.Error("50 kbps should blow the 10 s join timeout")
	}
}

func TestConnectionFailure(t *testing.T) {
	fails := 0
	for seed := uint64(0); seed < 200; seed++ {
		res, err := Play(stats.NewRNG(seed), ladder, RateBased{}, ConstNetwork(5000), DefaultConfig(), 60, 0.5, 0.03)
		if err != nil {
			t.Fatal(err)
		}
		if res.QoE.JoinFailed {
			fails++
		}
	}
	if fails < 60 || fails > 140 {
		t.Errorf("failure count = %d/200 with failProb 0.5", fails)
	}
}

func TestFixedABR(t *testing.T) {
	res := play(t, Fixed{Index: 1}, ConstNetwork(5000), 0)
	if d := res.QoE.BitrateKbps - 700; d > 1e-6 || d < -1e-6 {
		t.Errorf("fixed player bitrate = %v, want 700", res.QoE.BitrateKbps)
	}
	if res.Switches != 0 {
		t.Errorf("fixed player switched %d times", res.Switches)
	}
	// Out-of-range index clamps to the lowest rung.
	res = play(t, Fixed{Index: 99}, ConstNetwork(5000), 0)
	if d := res.QoE.BitrateKbps - 300; d > 1e-6 || d < -1e-6 {
		t.Errorf("clamped fixed bitrate = %v", res.QoE.BitrateKbps)
	}
}

func TestBufferBasedClimbs(t *testing.T) {
	res := play(t, BufferBased{}, ConstNetwork(8000), 0)
	if res.QoE.BitrateKbps < 1000 {
		t.Errorf("buffer-based stuck low: %v kbps", res.QoE.BitrateKbps)
	}
	if res.Switches == 0 {
		t.Error("buffer-based player should ramp through renditions")
	}
}

func TestRateBasedAdaptsToMarkov(t *testing.T) {
	rng := stats.NewRNG(21)
	net := NewMarkovNetwork(rng.Split(1), 2500, 20)
	res, err := Play(rng.Split(2), ladder, RateBased{}, net, DefaultConfig(), 600, 0, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	if res.QoE.JoinFailed {
		t.Fatal("join failed")
	}
	// Mean 2500 supports the 1500 rung most of the time; bad states pull
	// the average down but stalls should be limited by adaptation.
	if res.QoE.BitrateKbps < 500 || res.QoE.BitrateKbps > 2600 {
		t.Errorf("adaptive bitrate = %v", res.QoE.BitrateKbps)
	}
	if res.QoE.BufRatio > 0.4 {
		t.Errorf("buffering ratio = %v, adaptation should limit stalls", res.QoE.BufRatio)
	}
}

func TestABRComparisonUnderCongestion(t *testing.T) {
	// The motivation for adaptive players: fixed-at-top stalls, adaptive
	// players trade bitrate for smoothness.
	rngA, rngB := stats.NewRNG(5), stats.NewRNG(5)
	netA := NewMarkovNetwork(stats.NewRNG(99), 1800, 15)
	netB := NewMarkovNetwork(stats.NewRNG(99), 1800, 15)
	fixed, err := Play(rngA, ladder, Fixed{Index: 3}, netA, DefaultConfig(), 600, 0, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := Play(rngB, ladder, RateBased{}, netB, DefaultConfig(), 600, 0, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	if fixed.QoE.JoinFailed || adaptive.QoE.JoinFailed {
		t.Skip("join failed under congestion; comparison not meaningful")
	}
	if adaptive.QoE.BufRatio >= fixed.QoE.BufRatio {
		t.Errorf("adaptive buffering %v should beat fixed-at-top %v",
			adaptive.QoE.BufRatio, fixed.QoE.BufRatio)
	}
}

func TestPlayErrors(t *testing.T) {
	rng := stats.NewRNG(1)
	if _, err := Play(rng, nil, RateBased{}, ConstNetwork(1000), DefaultConfig(), 60, 0, 0); err == nil {
		t.Error("empty ladder accepted")
	}
	if _, err := Play(rng, ladder, RateBased{}, ConstNetwork(1000), DefaultConfig(), 0, 0, 0); err == nil {
		t.Error("zero duration accepted")
	}
	bad := DefaultConfig()
	bad.SegmentS = 0
	if _, err := Play(rng, ladder, RateBased{}, ConstNetwork(1000), bad, 60, 0, 0); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestConfigValidate(t *testing.T) {
	muts := []func(*Config){
		func(c *Config) { c.SegmentS = 0 },
		func(c *Config) { c.StartupBufferS = 0 },
		func(c *Config) { c.MaxBufferS = 1 },
		func(c *Config) { c.JoinTimeoutS = 0 },
		func(c *Config) { c.StartupOverheadS = -1 },
	}
	for i, mut := range muts {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestABRNames(t *testing.T) {
	for _, a := range []ABR{Fixed{}, RateBased{}, BufferBased{}} {
		if a.Name() == "" {
			t.Error("empty ABR name")
		}
	}
}

func TestMarkovNetworkLevels(t *testing.T) {
	net := NewMarkovNetwork(stats.NewRNG(3), 1000, 5)
	seen := map[float64]bool{}
	for t1 := 0.0; t1 < 2000; t1 += 1 {
		seen[net.ThroughputKbps(t1)] = true
	}
	if len(seen) < 2 {
		t.Errorf("Markov network never changed state: %v", seen)
	}
	for rate := range seen {
		if rate <= 0 || rate > 1300 {
			t.Errorf("rate %v outside expected envelope", rate)
		}
	}
}
