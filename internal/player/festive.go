package player

// Festive is a FESTIVE-style ABR (Jiang, Sekar, Zhang — CoNEXT 2012, cited
// by the paper as [17]): bandwidth is estimated by the harmonic mean of the
// last W segment throughputs (robust to outliers), the target rendition is
// the highest one below a safety fraction of that estimate, and switches
// are gradual — one rung at a time, with an up-switch only after the target
// has persisted for a few segments. The original's fairness machinery
// (randomised scheduling, bitrate-delay trade-off) is out of scope; this
// captures its stability behaviour, which is what matters for session QoE.
type Festive struct {
	// Window is the harmonic-mean window in segments (default 5).
	Window int
	// Safety is the usable fraction of the estimate (default 0.85).
	Safety float64
	// UpPersistence is how many consecutive segments the target must
	// exceed the current rung before switching up (default 3).
	UpPersistence int

	samples   []float64
	upStreak  int
	haveState bool
}

// Name implements ABR.
func (f *Festive) Name() string { return "festive" }

// Next implements ABR.
func (f *Festive) Next(s State) int {
	window := f.Window
	if window <= 0 {
		window = 5
	}
	safety := f.Safety
	if safety <= 0 {
		safety = 0.85
	}
	persistence := f.UpPersistence
	if persistence <= 0 {
		persistence = 3
	}

	if s.LastThroughputKbps > 0 {
		f.samples = append(f.samples, s.LastThroughputKbps)
		if len(f.samples) > window {
			f.samples = f.samples[len(f.samples)-window:]
		}
	}
	if len(f.samples) == 0 {
		f.haveState = true
		return 0 // conservative start, like the original
	}

	// Harmonic mean damps transient spikes.
	var invSum float64
	for _, v := range f.samples {
		invSum += 1 / v
	}
	estimate := float64(len(f.samples)) / invSum
	budget := safety * estimate

	target := 0
	for i, b := range s.Ladder {
		if b <= budget {
			target = i
		}
	}

	cur := s.CurrentIndex
	if !f.haveState {
		f.haveState = true
		cur = 0
	}
	switch {
	case target > cur:
		// Gradual up-switch after persistent headroom.
		f.upStreak++
		if f.upStreak >= persistence {
			f.upStreak = 0
			return cur + 1
		}
		return cur
	case target < cur:
		// Down-switches are immediate (avoid stalls) but also gradual.
		f.upStreak = 0
		return cur - 1
	default:
		f.upStreak = 0
		return cur
	}
}
