package events

import (
	"testing"

	"repro/internal/attr"
	"repro/internal/epoch"
	"repro/internal/metric"
	"repro/internal/stats"
	"repro/internal/world"
)

func testWorld(t *testing.T) *world.World {
	t.Helper()
	w, err := world.New(world.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func weekRange() epoch.Range { return epoch.Range{Start: 0, End: epoch.HoursPerWeek} }

func generate(t *testing.T, cfg Config) *Schedule {
	t.Helper()
	s, err := Generate(testWorld(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGenerateDeterminism(t *testing.T) {
	cfg := DefaultConfig(weekRange())
	a := generate(t, cfg)
	b := generate(t, cfg)
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		ea, eb := a.Events[i], b.Events[i]
		if ea.Anchor != eb.Anchor || ea.Metric != eb.Metric || ea.Severity != eb.Severity {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestChronicEventsCoverTable3(t *testing.T) {
	cfg := DefaultConfig(weekRange())
	cfg.DisableEpisodic = true
	s := generate(t, cfg)
	tags := map[string]int{}
	for i := range s.Events {
		ev := &s.Events[i]
		if !ev.Chronic {
			t.Fatalf("episodic event generated with DisableEpisodic: %+v", ev)
		}
		if ev.TotalHours() != weekRange().Len() {
			t.Errorf("chronic event %d active %d hours, want full trace", i, ev.TotalHours())
		}
		tags[ev.Tag]++
	}
	for _, want := range []string{
		"asian-isp", "single-bitrate-site", "in-house-cdn", "mobile-wireless",
		"chinese-isp-remote-player", "ugc-inhouse-cdn", "high-bitrate-site",
		"low-priority-on-global-cdn", "wireless-provider", "ugc-site",
	} {
		if tags[want] == 0 {
			t.Errorf("no chronic events with tag %q (Table 3 row missing)", want)
		}
	}
}

func TestChronicAnchorsMatchTraits(t *testing.T) {
	w := testWorld(t)
	cfg := DefaultConfig(weekRange())
	cfg.DisableEpisodic = true
	s, err := Generate(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Events {
		ev := &s.Events[i]
		switch ev.Tag {
		case "single-bitrate-site":
			id := ev.Anchor.Vals[attr.Site]
			if !w.Sites[id].SingleBitrate() {
				t.Errorf("event %d anchored at non-single-bitrate site %d", i, id)
			}
		case "wireless-provider":
			id := ev.Anchor.Vals[attr.ASN]
			if !w.ASNs[id].Wireless {
				t.Errorf("event %d anchored at non-wireless ASN %d", i, id)
			}
		case "chinese-isp-remote-player":
			id := ev.Anchor.Vals[attr.ASN]
			if w.ASNs[id].Region != world.RegionChina {
				t.Errorf("event %d anchored at non-Chinese ASN %d", i, id)
			}
		case "low-priority-on-global-cdn":
			id := ev.Anchor.Vals[attr.Site]
			if !w.Sites[id].LowPriority {
				t.Errorf("event %d anchored at non-low-priority site %d", i, id)
			}
		}
		if ev.Severity <= 0 || ev.Severity >= 1 {
			t.Errorf("event %d severity %v out of (0,1)", i, ev.Severity)
		}
	}
}

func TestEpisodicStructure(t *testing.T) {
	cfg := DefaultConfig(weekRange())
	cfg.DisableChronic = true
	s := generate(t, cfg)
	if len(s.Events) < 100 {
		t.Fatalf("only %d episodic events for a week; expected ~%v", len(s.Events), cfg.EpisodicPerWeek)
	}
	longCount := 0
	for i := range s.Events {
		ev := &s.Events[i]
		if ev.Chronic {
			t.Fatal("chronic event generated with DisableChronic")
		}
		if len(ev.Intervals) == 0 {
			t.Fatalf("event %d has no intervals", i)
		}
		prevEnd := epoch.Index(-1)
		for _, r := range ev.Intervals {
			if r.Len() < 1 {
				t.Fatalf("event %d has empty interval", i)
			}
			if r.Start < prevEnd {
				t.Fatalf("event %d has overlapping/unsorted intervals", i)
			}
			prevEnd = r.End
			if r.Start < cfg.Trace.Start || r.End > cfg.Trace.End {
				t.Fatalf("event %d interval %+v outside trace", i, r)
			}
			if r.Len() > cfg.MaxDurationHours {
				t.Fatalf("event %d interval longer than cap", i)
			}
			if r.Len() > 24 {
				longCount++
			}
		}
		if ev.Severity <= 0 || ev.Severity > cfg.SeverityMax {
			t.Fatalf("event %d severity %v outside bounds", i, ev.Severity)
		}
	}
	if longCount == 0 {
		t.Error("no >1-day intervals; the Fig. 8(b) tail needs some")
	}
}

func TestActiveAtIndex(t *testing.T) {
	cfg := DefaultConfig(weekRange())
	s := generate(t, cfg)
	// Cross-check the index against direct interval tests.
	for _, e := range []epoch.Index{0, 1, 50, 100, 167} {
		act := map[int32]bool{}
		for _, id := range s.ActiveAt(e) {
			act[id] = true
		}
		for i := range s.Events {
			ev := &s.Events[i]
			if ev.ActiveAt(e) != act[ev.ID] {
				t.Fatalf("epoch %d: index disagrees with ActiveAt for event %d", e, ev.ID)
			}
		}
	}
	if s.ActiveAt(-1) != nil || s.ActiveAt(9999) != nil {
		t.Error("ActiveAt outside trace should be nil")
	}
}

func TestMatchingSeverities(t *testing.T) {
	w := testWorld(t)
	trace := weekRange()
	s := &Schedule{trace: trace}
	anchor := attr.NewKey(map[attr.Dim]int32{attr.CDN: 3})
	s.Events = append(s.Events,
		Event{ID: 0, Metric: metric.BufRatio, Anchor: anchor, Severity: 0.5,
			Intervals: []epoch.Range{{Start: 0, End: 10}}},
		Event{ID: 1, Metric: metric.BufRatio, Anchor: anchor, Severity: 0.2,
			Intervals: []epoch.Range{{Start: 5, End: 10}}},
		Event{ID: 2, Metric: metric.JoinTime, Anchor: anchor, Severity: 0.3,
			Intervals: []epoch.Range{{Start: 0, End: 10}}},
	)
	s.buildIndex()

	v := w.SampleAttrs(stats.NewRNG(1))
	v[attr.CDN] = 3
	sev := make([]float64, metric.NumMetrics)
	matched := make([]int32, metric.NumMetrics)

	s.MatchingSeverities(v, 7, sev, matched)
	// Two BufRatio events compose: 1-(1-0.5)(1-0.2) = 0.6.
	if diff := sev[metric.BufRatio] - 0.6; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("composed severity = %v, want 0.6", sev[metric.BufRatio])
	}
	if matched[metric.BufRatio] != 0 {
		t.Errorf("matched id = %d, want 0 (most severe)", matched[metric.BufRatio])
	}
	if d := sev[metric.JoinTime] - 0.3; d > 1e-12 || d < -1e-12 || matched[metric.JoinTime] != 2 {
		t.Errorf("join time severity/match = %v/%d", sev[metric.JoinTime], matched[metric.JoinTime])
	}
	if sev[metric.Bitrate] != 0 || matched[metric.Bitrate] != -1 {
		t.Errorf("unaffected metric should be zero: %v/%d", sev[metric.Bitrate], matched[metric.Bitrate])
	}

	// Outside the interval nothing matches.
	s.MatchingSeverities(v, 20, sev, matched)
	for m := range sev {
		if sev[m] != 0 || matched[m] != -1 {
			t.Errorf("epoch 20 metric %d: severity %v, matched %d", m, sev[m], matched[m])
		}
	}

	// Non-matching attributes.
	v[attr.CDN] = 4
	s.MatchingSeverities(v, 7, sev, matched)
	if sev[metric.BufRatio] != 0 {
		t.Error("severity leaked to non-matching session")
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(weekRange())
	if err := good.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Trace = epoch.Range{} },
		func(c *Config) { c.EpisodicPerWeek = -1 },
		func(c *Config) { c.MeanOccurrences = 0.5 },
		func(c *Config) { c.DurationMedianHours = 0 },
		func(c *Config) { c.SeverityMin = 0 },
		func(c *Config) { c.SeverityMax = c.SeverityMin },
		func(c *Config) { c.MaxDurationHours = 0 },
		func(c *Config) { c.MaxEpochImpact = -1 },
	}
	for i, mutate := range bad {
		c := DefaultConfig(weekRange())
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestEventLookup(t *testing.T) {
	s := generate(t, DefaultConfig(weekRange()))
	if ev := s.Event(0); ev == nil || ev.ID != 0 {
		t.Error("Event(0) lookup failed")
	}
	if s.Event(-1) != nil || s.Event(int32(len(s.Events))) != nil {
		t.Error("out-of-range Event should be nil")
	}
	if s.Trace() != weekRange() {
		t.Error("Trace() mismatch")
	}
}
