// Package events models the ground-truth quality problems injected into the
// synthetic trace. Each event anchors at an attribute combination (the
// paper's "critical cluster" notion, here known by construction), affects
// one quality metric, raises the problem probability of matching sessions
// by its severity while active, and is active over one or more epoch
// intervals.
//
// Two event populations reproduce the paper's temporal structure (§4.1):
//
//   - chronic events, derived from structural traits of the world (Asian
//     ISPs with poor peering, single-bitrate sites, in-house CDNs, wireless
//     carriers, low-priority sites sharing one global CDN) — these are
//     active for the whole trace and surface as the high-prevalence
//     critical clusters of Table 3;
//
//   - episodic events (outages, overloads, flash crowds) with heavy-tailed
//     durations — the bulk of problem clusters, with the >1-day tail the
//     paper observes in Fig. 8(b).
//
// The analysis pipeline never sees this package's output; it is used by the
// generator (package synth) and by validation tests that score detections
// against ground truth.
package events

import (
	"fmt"
	"math"

	"repro/internal/attr"
	"repro/internal/epoch"
	"repro/internal/metric"
	"repro/internal/stats"
	"repro/internal/world"
)

// Event is one injected ground-truth problem cause.
type Event struct {
	// ID indexes the event in its Schedule; sessions carry it for
	// validation.
	ID int32
	// Metric is the quality metric the event degrades.
	Metric metric.Metric
	// Anchor is the attribute combination whose sessions the event hits.
	Anchor attr.Key
	// Severity is the problem probability added (via independent-cause
	// composition) to matching sessions while active.
	Severity float64
	// Intervals lists the active spans, non-overlapping and sorted.
	Intervals []epoch.Range
	// Chronic marks trait-derived, trace-long events.
	Chronic bool
	// Tag is the ground-truth cause category (e.g. "asian-isp",
	// "single-bitrate-site"), used by the Table 3 reproduction.
	Tag string
}

// ActiveAt reports whether the event is active in epoch e.
func (ev *Event) ActiveAt(e epoch.Index) bool {
	for _, r := range ev.Intervals {
		if r.Contains(e) {
			return true
		}
	}
	return false
}

// Matches reports whether the event applies to a session with attributes v
// at epoch e.
func (ev *Event) Matches(v attr.Vector, e epoch.Index) bool {
	return ev.ActiveAt(e) && ev.Anchor.Matches(v)
}

// TotalHours returns the summed length of the active intervals.
func (ev *Event) TotalHours() int {
	n := 0
	for _, r := range ev.Intervals {
		n += r.Len()
	}
	return n
}

// Config controls event generation.
type Config struct {
	Seed uint64
	// Trace is the epoch span events may occupy.
	Trace epoch.Range

	// EpisodicPerWeek is the expected number of episodic events arising
	// each week (per metric weighting is internal).
	EpisodicPerWeek float64

	// MeanOccurrences is the expected number of distinct active intervals
	// per episodic event (recurrent problems; paper Fig. 7 prevalence).
	MeanOccurrences float64

	// DurationMedianHours sets the median episodic interval length; the
	// lognormal body is mixed with a Pareto tail so ~1% of events run
	// beyond a day (paper Fig. 8).
	DurationMedianHours float64
	// DurationSigma is the lognormal shape of the duration body.
	DurationSigma float64
	// LongTailProb is the probability an interval draws from the Pareto
	// tail instead of the body.
	LongTailProb float64
	// MaxDurationHours caps any single interval.
	MaxDurationHours int

	// SeverityMin and SeverityMax bound episodic severities; the draw is
	// Beta-shaped between them.
	SeverityMin, SeverityMax float64

	// MaxEpochImpact caps severity × anchor-population-share so no single
	// episodic event moves the epoch-wide problem ratio by more than this
	// (the paper's Fig. 2 aggregate is stable over time). Zero disables
	// the cap.
	MaxEpochImpact float64

	// DisableChronic turns off trait-derived chronic events (used by
	// ablations).
	DisableChronic bool
	// DisableEpisodic turns off episodic events.
	DisableEpisodic bool

	// Extra appends caller-specified events (scenario studies, examples).
	// IDs are reassigned; intervals outside the trace are clipped.
	Extra []Event
}

// DefaultConfig returns generation parameters calibrated so the detected
// cluster populations land in the paper's reported bands.
func DefaultConfig(trace epoch.Range) Config {
	return Config{
		Seed:                1,
		Trace:               trace,
		EpisodicPerWeek:     130,
		MeanOccurrences:     2.0,
		DurationMedianHours: 2.4,
		DurationSigma:       0.95,
		LongTailProb:        0.045,
		MaxDurationHours:    64,
		SeverityMin:         0.20,
		SeverityMax:         0.85,
		MaxEpochImpact:      0.025,
	}
}

// Validate reports the first invalid field.
func (c Config) Validate() error {
	switch {
	case c.Trace.Len() <= 0:
		return fmt.Errorf("events: empty trace range %+v", c.Trace)
	case c.EpisodicPerWeek < 0:
		return fmt.Errorf("events: negative EpisodicPerWeek")
	case c.MeanOccurrences < 1:
		return fmt.Errorf("events: MeanOccurrences %v < 1", c.MeanOccurrences)
	case c.DurationMedianHours <= 0:
		return fmt.Errorf("events: non-positive DurationMedianHours")
	case c.SeverityMin <= 0 || c.SeverityMax <= c.SeverityMin || c.SeverityMax >= 1:
		return fmt.Errorf("events: bad severity bounds [%v, %v]", c.SeverityMin, c.SeverityMax)
	case c.MaxDurationHours < 1:
		return fmt.Errorf("events: MaxDurationHours %d < 1", c.MaxDurationHours)
	case c.MaxEpochImpact < 0:
		return fmt.Errorf("events: negative MaxEpochImpact")
	}
	return nil
}

// Schedule is the full set of events of a trace with per-epoch activity
// indexes for fast matching during generation.
type Schedule struct {
	Events []Event

	trace  epoch.Range
	active [][]int32 // per epoch offset from trace.Start: event ids active
}

// Generate builds the ground-truth schedule for a world.
func Generate(w *world.World, cfg Config) (*Schedule, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(cfg.Seed).Split(0xE7E275)
	s := &Schedule{trace: cfg.Trace}
	if !cfg.DisableChronic {
		s.addChronic(w, rng.Split(1))
	}
	if !cfg.DisableEpisodic {
		s.addEpisodic(w, cfg, rng.Split(2))
	}
	for _, ev := range cfg.Extra {
		ev.ID = int32(len(s.Events))
		ev.Intervals = clipRanges(ev.Intervals, cfg.Trace)
		if len(ev.Intervals) == 0 {
			continue
		}
		s.Events = append(s.Events, ev)
	}
	s.buildIndex()
	return s, nil
}

// clipRanges intersects ranges with the trace span.
func clipRanges(rs []epoch.Range, trace epoch.Range) []epoch.Range {
	var out []epoch.Range
	for _, r := range rs {
		if r.Start < trace.Start {
			r.Start = trace.Start
		}
		if r.End > trace.End {
			r.End = trace.End
		}
		if r.Len() > 0 {
			out = append(out, r)
		}
	}
	return out
}

// chronicSpec describes one family of trait-derived events.
type chronicSpec struct {
	tag      string
	metric   metric.Metric
	severity float64 // mean severity; per-event jitter applied
	anchors  func(w *world.World, r *stats.RNG) []attr.Key
}

// pickTop selects up to n ids from the front (most popular) portion of ids
// after skipping the first skip entries, spreading choices so multiple specs
// do not all claim the identical set. Skipping matters when the predicate
// matches head-of-Zipf entities: a chronic problem on the single most
// popular site would dominate the global ratio, which contradicts the
// paper's stable aggregate (Fig. 2).
func pickTop(r *stats.RNG, ids []int32, n, skip int) []int32 {
	if skip >= len(ids) {
		skip = 0
	}
	ids = ids[skip:]
	if len(ids) == 0 {
		return nil
	}
	if n > len(ids) {
		n = len(ids)
	}
	// Choose from the most popular end of the list so anchored clusters
	// clear the statistical-significance floor.
	pool := ids
	if max := n + n/2 + 1; len(pool) > max {
		pool = pool[:max]
	}
	perm := r.Perm(len(pool))
	out := make([]int32, 0, n)
	for _, i := range perm[:n] {
		out = append(out, pool[i])
	}
	return out
}

func keysFor(d attr.Dim, ids []int32) []attr.Key {
	out := make([]attr.Key, 0, len(ids))
	for _, id := range ids {
		out = append(out, attr.NewKey(map[attr.Dim]int32{d: id}))
	}
	return out
}

func chronicSpecs() []chronicSpec {
	return []chronicSpec{
		// Paper Table 3, BufRatio row: Asian ISPs; single-bitrate sites;
		// in-house CDNs; mobile wireless connections.
		{
			tag: "asian-isp", metric: metric.BufRatio, severity: 0.30,
			anchors: func(w *world.World, r *stats.RNG) []attr.Key {
				ids := w.ASNsWhere(func(a *world.ASN) bool {
					return a.Region == world.RegionChina || a.Region == world.RegionAsiaOther
				})
				return keysFor(attr.ASN, pickTop(r, ids, 4, 0))
			},
		},
		{
			tag: "single-bitrate-site", metric: metric.BufRatio, severity: 0.24,
			anchors: func(w *world.World, r *stats.RNG) []attr.Key {
				ids := w.SitesWhere(func(s *world.Site) bool { return s.SingleBitrate() })
				return keysFor(attr.Site, pickTop(r, ids, 4, 0))
			},
		},
		{
			tag: "in-house-cdn", metric: metric.BufRatio, severity: 0.22,
			anchors: func(w *world.World, r *stats.RNG) []attr.Key {
				ids := w.CDNsWhere(func(c *world.CDN) bool { return c.Kind == world.CDNInHouse })
				return keysFor(attr.CDN, pickTop(r, ids, 2, 0))
			},
		},
		{
			tag: "mobile-wireless", metric: metric.BufRatio, severity: 0.15,
			anchors: func(w *world.World, r *stats.RNG) []attr.Key {
				return []attr.Key{attr.NewKey(map[attr.Dim]int32{attr.ConnType: world.ConnMobileWireless})}
			},
		},

		// JoinTime row: Chinese ISPs loading player modules from US CDNs;
		// in-house CDNs of UGC providers; high-bitrate sites.
		{
			tag: "chinese-isp-remote-player", metric: metric.JoinTime, severity: 0.36,
			anchors: func(w *world.World, r *stats.RNG) []attr.Key {
				ids := w.ASNsWhere(func(a *world.ASN) bool { return a.Region == world.RegionChina })
				return keysFor(attr.ASN, pickTop(r, ids, 3, 0))
			},
		},
		{
			tag: "ugc-inhouse-cdn", metric: metric.JoinTime, severity: 0.22,
			anchors: func(w *world.World, r *stats.RNG) []attr.Key {
				ids := w.CDNsWhere(func(c *world.CDN) bool { return c.Kind == world.CDNInHouse })
				return keysFor(attr.CDN, pickTop(r, ids, 2, 0))
			},
		},
		{
			tag: "high-bitrate-site", metric: metric.JoinTime, severity: 0.22,
			anchors: func(w *world.World, r *stats.RNG) []attr.Key {
				ids := w.SitesWhere(func(s *world.Site) bool {
					top := s.BitrateLadder[len(s.BitrateLadder)-1]
					return top >= 4300
				})
				return keysFor(attr.Site, pickTop(r, ids, 3, 10))
			},
		},

		// JoinFailure row: the same ASN set as buffering ratio; sites
		// sharing the same single global CDN (presumably low priority).
		{
			tag: "asian-isp", metric: metric.JoinFailure, severity: 0.26,
			anchors: func(w *world.World, r *stats.RNG) []attr.Key {
				ids := w.ASNsWhere(func(a *world.ASN) bool {
					return a.Region == world.RegionChina || a.Region == world.RegionAsiaOther
				})
				return keysFor(attr.ASN, pickTop(r, ids, 4, 0))
			},
		},
		{
			tag: "low-priority-on-global-cdn", metric: metric.JoinFailure, severity: 0.40,
			anchors: func(w *world.World, r *stats.RNG) []attr.Key {
				ids := w.SitesWhere(func(s *world.Site) bool { return s.LowPriority })
				return keysFor(attr.Site, pickTop(r, ids, 4, 0))
			},
		},

		// Bitrate row: wireless providers; UGC sites; single-bitrate sites
		// stay below the 700 kbps threshold by construction.
		{
			tag: "wireless-provider", metric: metric.Bitrate, severity: 0.26,
			anchors: func(w *world.World, r *stats.RNG) []attr.Key {
				ids := w.ASNsWhere(func(a *world.ASN) bool { return a.Wireless })
				return keysFor(attr.ASN, pickTop(r, ids, 3, 0))
			},
		},
		{
			tag: "ugc-site", metric: metric.Bitrate, severity: 0.22,
			anchors: func(w *world.World, r *stats.RNG) []attr.Key {
				ids := w.SitesWhere(func(s *world.Site) bool { return s.UGC })
				return keysFor(attr.Site, pickTop(r, ids, 4, 0))
			},
		},
		{
			// Every site whose only rendition sits below the 700 kbps
			// threshold is a structural bitrate cause; anchor them all so
			// ground-truth tagging covers the whole population.
			tag: "single-bitrate-site", metric: metric.Bitrate, severity: 0.65,
			anchors: func(w *world.World, r *stats.RNG) []attr.Key {
				ids := w.SitesWhere(func(s *world.Site) bool {
					return s.SingleBitrate() && s.BitrateLadder[0] < 700
				})
				return keysFor(attr.Site, ids)
			},
		},
	}
}

func (s *Schedule) addChronic(w *world.World, rng *stats.RNG) {
	for i, spec := range chronicSpecs() {
		r := rng.Split(uint64(i))
		for _, anchor := range spec.anchors(w, r) {
			sev := spec.severity * (0.8 + 0.4*r.Float64())
			s.Events = append(s.Events, Event{
				ID:        int32(len(s.Events)),
				Metric:    spec.metric,
				Anchor:    anchor,
				Severity:  stats.Clamp(sev, 0.05, 0.9),
				Intervals: []epoch.Range{s.trace},
				Chronic:   true,
				Tag:       spec.tag,
			})
		}
	}
}

// episodic anchor shapes with sampling weights: the paper's Fig. 10 shows
// Site, CDN, ASN, and ConnType dominating, with a tail of pair combinations.
var episodicShapes = []struct {
	dims   []attr.Dim
	weight float64
}{
	{[]attr.Dim{attr.Site}, 0.32},
	{[]attr.Dim{attr.CDN}, 0.13},
	{[]attr.Dim{attr.ASN}, 0.18},
	{[]attr.Dim{attr.ConnType}, 0.05},
	{[]attr.Dim{attr.CDN, attr.ASN}, 0.08},
	{[]attr.Dim{attr.Site, attr.ConnType}, 0.06},
	{[]attr.Dim{attr.CDN, attr.ConnType}, 0.05},
	{[]attr.Dim{attr.Site, attr.Browser}, 0.04},
	{[]attr.Dim{attr.CDN, attr.Browser}, 0.03},
	{[]attr.Dim{attr.Site, attr.ASN}, 0.03},
	{[]attr.Dim{attr.VoDOrLive, attr.PlayerType}, 0.02},
	{[]attr.Dim{attr.PlayerType, attr.Browser}, 0.01},
}

// metricWeights biases which metric an episodic event degrades; join
// failures and join time see the sharpest incident structure in the paper.
var episodicMetricWeights = []float64{0.28, 0.22, 0.25, 0.25}

func (s *Schedule) addEpisodic(w *world.World, cfg Config, rng *stats.RNG) {
	weeks := float64(cfg.Trace.Len()) / float64(epoch.HoursPerWeek)
	n := rng.Poisson(cfg.EpisodicPerWeek * weeks)
	shapeWeights := make([]float64, len(episodicShapes))
	for i, sh := range episodicShapes {
		shapeWeights[i] = sh.weight
	}
	for i := 0; i < n; i++ {
		r := rng.Split(uint64(1000 + i))
		shape := episodicShapes[stats.WeightedChoice(r, shapeWeights)]
		anchor := s.sampleAnchor(w, r, shape.dims)
		m := metric.Metric(stats.WeightedChoice(r, episodicMetricWeights))
		sev := cfg.SeverityMin + (cfg.SeverityMax-cfg.SeverityMin)*r.Beta(1.6, 2.4)
		// Bound the epoch-wide impact: big anchors get milder events.
		if cfg.MaxEpochImpact > 0 {
			if share := w.KeyShare(anchor); share > 0 && sev*share > cfg.MaxEpochImpact {
				sev = cfg.MaxEpochImpact / share
			}
		}
		s.Events = append(s.Events, Event{
			ID:        int32(len(s.Events)),
			Metric:    m,
			Anchor:    anchor,
			Severity:  sev,
			Intervals: s.sampleIntervals(cfg, r),
			Tag:       "episodic",
		})
	}
}

// sampleAnchor draws concrete values for the anchor dimensions, biased
// toward (but not pinned to) popular entities so anchored clusters are
// statistically significant without dwarfing the epoch.
func (s *Schedule) sampleAnchor(w *world.World, r *stats.RNG, dims []attr.Dim) attr.Key {
	k := attr.Key{}
	for _, d := range dims {
		var card int
		switch d {
		case attr.ASN:
			card = len(w.ASNs)
		case attr.CDN:
			card = len(w.CDNs)
		case attr.Site:
			card = len(w.Sites)
		case attr.VoDOrLive:
			card = 2
		case attr.PlayerType:
			card = len(world.PlayerTypeNames)
		case attr.Browser:
			card = len(world.BrowserNames)
		case attr.ConnType:
			card = world.NumConnTypes
		}
		var id int
		if card <= 8 {
			id = r.Intn(card)
		} else {
			// Skip the very top ranks (their outages would dominate the
			// epoch-wide ratio; Fig. 2 shows a stable aggregate) and cap at
			// the popularity rank still large enough to clear the
			// statistical-significance floor, decaying with rank between.
			minRank := 2
			maxRank := card
			if maxRank > 80 {
				maxRank = 80
			}
			z, err := stats.NewZipf(maxRank-minRank, 0.55)
			if err != nil {
				id = r.Intn(card)
			} else {
				id = minRank + z.Sample(r)
			}
		}
		k = k.Child(d, int32(id))
	}
	return k
}

// sampleIntervals draws the recurrence structure of an episodic event.
func (s *Schedule) sampleIntervals(cfg Config, r *stats.RNG) []epoch.Range {
	occ := 1 + r.Geometric(1/cfg.MeanOccurrences)
	if occ > 10 {
		occ = 10
	}
	used := make(map[epoch.Index]bool)
	var out []epoch.Range
	for o := 0; o < occ; o++ {
		var hours int
		if r.Bool(cfg.LongTailProb) {
			hours = int(r.Pareto(8, 1.05))
		} else {
			hours = int(math.Round(r.LogNormal(math.Log(cfg.DurationMedianHours), cfg.DurationSigma)))
		}
		if hours < 1 {
			hours = 1
		}
		if hours > cfg.MaxDurationHours {
			hours = cfg.MaxDurationHours
		}
		span := cfg.Trace.Len()
		if hours >= span {
			hours = span
		}
		start := cfg.Trace.Start + epoch.Index(r.Intn(span-hours+1))
		rg := epoch.Range{Start: start, End: start + epoch.Index(hours)}
		// Avoid overlapping occurrences of the same event.
		overlap := false
		for e := rg.Start; e < rg.End; e++ {
			if used[e] {
				overlap = true
				break
			}
		}
		if overlap {
			continue
		}
		for e := rg.Start; e < rg.End; e++ {
			used[e] = true
		}
		out = append(out, rg)
	}
	if len(out) == 0 {
		start := cfg.Trace.Start + epoch.Index(r.Intn(cfg.Trace.Len()))
		out = append(out, epoch.Range{Start: start, End: start + 1})
	}
	sortRanges(out)
	return out
}

func sortRanges(rs []epoch.Range) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].Start < rs[j-1].Start; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

func (s *Schedule) buildIndex() {
	n := s.trace.Len()
	s.active = make([][]int32, n)
	for i := range s.Events {
		ev := &s.Events[i]
		for _, rg := range ev.Intervals {
			for e := rg.Start; e < rg.End; e++ {
				if !s.trace.Contains(e) {
					continue
				}
				off := int(e - s.trace.Start)
				s.active[off] = append(s.active[off], ev.ID)
			}
		}
	}
}

// ActiveAt returns the ids of events active in epoch e (shared slice; do
// not mutate).
func (s *Schedule) ActiveAt(e epoch.Index) []int32 {
	if !s.trace.Contains(e) {
		return nil
	}
	return s.active[int(e-s.trace.Start)]
}

// Trace returns the epoch span the schedule covers.
func (s *Schedule) Trace() epoch.Range { return s.trace }

// Event returns the event with the given id, or nil.
func (s *Schedule) Event(id int32) *Event {
	if id < 0 || int(id) >= len(s.Events) {
		return nil
	}
	return &s.Events[id]
}

// MatchingSeverities accumulates, per metric, the active-event severities
// matching a session with attributes v at epoch e. The returned slice of
// matched event ids (at most one recorded per metric — the most severe) is
// written into matched, which must have length metric.NumMetrics; entries
// are -1 when no event matched. severities must also have length
// metric.NumMetrics and accumulates the composed probability boost
// 1-∏(1-sev).
func (s *Schedule) MatchingSeverities(v attr.Vector, e epoch.Index, severities []float64, matched []int32) {
	for m := range severities {
		severities[m] = 0
		matched[m] = -1
	}
	strongest := make([]float64, len(severities))
	for _, id := range s.ActiveAt(e) {
		ev := &s.Events[id]
		if !ev.Anchor.Matches(v) {
			continue
		}
		m := int(ev.Metric)
		// Compose as independent causes: keep 1-∏(1-sev) in severities.
		severities[m] = 1 - (1-severities[m])*(1-ev.Severity)
		if ev.Severity > strongest[m] {
			strongest[m] = ev.Severity
			matched[m] = ev.ID
		}
	}
}
