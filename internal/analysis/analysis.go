// Package analysis computes the paper's §4 characterisations over a
// trace-wide analysis result: prevalence and persistence of problem and
// critical clusters (Figs. 6–8), the problem-vs-critical cluster count
// timeseries (Fig. 9), the Table 1 reduction/coverage aggregates, the
// critical-cluster type breakdown (Fig. 10), the cross-metric Jaccard
// overlap of top critical clusters (Table 2), and the most prevalent
// critical clusters (Table 3).
package analysis

import (
	"sort"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/core/eps"
	"repro/internal/epoch"
	"repro/internal/metric"
	"repro/internal/stats"
)

// Kind selects which cluster population a temporal query covers.
type Kind uint8

// Cluster populations.
const (
	ProblemClusters Kind = iota
	CriticalClusters
)

// KeyStats is the across-epoch record of one critical cluster key.
type KeyStats struct {
	// Epochs lists the epochs (ascending) in which the key was critical.
	Epochs []epoch.Index
	// AttrProblems and AttrSessions parallel Epochs with the per-epoch
	// fractional attribution.
	AttrProblems []float64
	AttrSessions []float64
	// TotalProblems and TotalSessions sum the attributions (the coverage
	// ranking of §5.1).
	TotalProblems float64
	TotalSessions float64
}

// History indexes one metric's cluster occurrences across the trace.
type History struct {
	Trace  epoch.Range
	Metric metric.Metric
	// Problem maps each key to the ascending epochs it was a problem
	// cluster in.
	Problem map[attr.Key][]epoch.Index
	// Critical maps each key to its across-epoch record.
	Critical map[attr.Key]*KeyStats
}

// BuildHistory scans a trace result for metric m.
func BuildHistory(tr *core.TraceResult, m metric.Metric) *History {
	h := &History{
		Trace:    tr.Trace,
		Metric:   m,
		Problem:  make(map[attr.Key][]epoch.Index),
		Critical: make(map[attr.Key]*KeyStats),
	}
	for i := range tr.Epochs {
		er := &tr.Epochs[i]
		ms := &er.Metrics[m]
		for _, k := range ms.ProblemKeys {
			h.Problem[k] = append(h.Problem[k], er.Epoch)
		}
		for j := range ms.Critical {
			cs := &ms.Critical[j]
			ks := h.Critical[cs.Key]
			if ks == nil {
				ks = &KeyStats{}
				h.Critical[cs.Key] = ks
			}
			ks.Epochs = append(ks.Epochs, er.Epoch)
			ks.AttrProblems = append(ks.AttrProblems, cs.AttributedProblems)
			ks.AttrSessions = append(ks.AttrSessions, cs.AttributedSessions)
			ks.TotalProblems += cs.AttributedProblems
			ks.TotalSessions += cs.AttributedSessions
		}
	}
	return h
}

// occurrences returns the epoch list for key k in the chosen population.
func (h *History) occurrences(kind Kind, k attr.Key) []epoch.Index {
	if kind == ProblemClusters {
		return h.Problem[k]
	}
	if ks := h.Critical[k]; ks != nil {
		return ks.Epochs
	}
	return nil
}

// keys returns the keys of the chosen population.
func (h *History) keys(kind Kind) []attr.Key {
	var out []attr.Key
	if kind == ProblemClusters {
		for k := range h.Problem {
			out = append(out, k)
		}
	} else {
		for k := range h.Critical {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return KeyLess(out[i], out[j]) })
	return out
}

// Prevalence returns the fraction of trace epochs in which key k appears in
// the chosen population (paper §4.1, Fig. 6).
func (h *History) Prevalence(kind Kind, k attr.Key) float64 {
	n := h.Trace.Len()
	if n == 0 {
		return 0
	}
	return float64(len(h.occurrences(kind, k))) / float64(n)
}

// Persistence returns the median and maximum streak length (consecutive
// epochs) of key k in the chosen population (paper §4.1, Fig. 6).
func (h *History) Persistence(kind Kind, k attr.Key) (median, max int) {
	occ := h.occurrences(kind, k)
	if len(occ) == 0 {
		return 0, 0
	}
	pos := make([]int32, len(occ))
	for i, e := range occ {
		pos[i] = int32(e)
	}
	streaks := stats.Streaks(pos)
	return stats.MedianInt(streaks), stats.MaxInt(streaks)
}

// PrevalenceDist returns the prevalence of every key in the population —
// the sample set behind Fig. 7's inverse CDF.
func (h *History) PrevalenceDist(kind Kind) []float64 {
	ks := h.keys(kind)
	out := make([]float64, 0, len(ks))
	for _, k := range ks {
		out = append(out, h.Prevalence(kind, k))
	}
	return out
}

// PersistenceDist returns the per-key median and max streak lengths — the
// sample sets behind Fig. 8(a) and 8(b).
func (h *History) PersistenceDist(kind Kind) (medians, maxes []float64) {
	ks := h.keys(kind)
	medians = make([]float64, 0, len(ks))
	maxes = make([]float64, 0, len(ks))
	for _, k := range ks {
		med, max := h.Persistence(kind, k)
		medians = append(medians, float64(med))
		maxes = append(maxes, float64(max))
	}
	return medians, maxes
}

// Streaks returns, for key k, the maximal runs of consecutive epochs in the
// population as epoch ranges (the reactive what-if consumes these).
func (h *History) Streaks(kind Kind, k attr.Key) []epoch.Range {
	occ := h.occurrences(kind, k)
	if len(occ) == 0 {
		return nil
	}
	var out []epoch.Range
	start := occ[0]
	prev := occ[0]
	for _, e := range occ[1:] {
		if e == prev+1 {
			prev = e
			continue
		}
		out = append(out, epoch.Range{Start: start, End: prev + 1})
		start, prev = e, e
	}
	out = append(out, epoch.Range{Start: start, End: prev + 1})
	return out
}

// TopCritical returns up to k critical keys ranked by total attributed
// problem sessions (the paper's coverage ranking).
func (h *History) TopCritical(k int) []attr.Key {
	keys := h.keys(CriticalClusters)
	sort.SliceStable(keys, func(i, j int) bool {
		a, b := h.Critical[keys[i]].TotalProblems, h.Critical[keys[j]].TotalProblems
		if a != b {
			return a > b
		}
		return KeyLess(keys[i], keys[j])
	})
	if k > len(keys) {
		k = len(keys)
	}
	if k < 0 {
		k = 0
	}
	return keys[:k]
}

// ClusterCounts returns the per-epoch problem and critical cluster counts
// for metric m (Fig. 9's two series).
func ClusterCounts(tr *core.TraceResult, m metric.Metric) (problems, criticals []int) {
	problems = make([]int, len(tr.Epochs))
	criticals = make([]int, len(tr.Epochs))
	for i := range tr.Epochs {
		ms := &tr.Epochs[i].Metrics[m]
		problems[i] = ms.NumProblemClusters
		criticals[i] = len(ms.Critical)
	}
	return problems, criticals
}

// Table1Row aggregates the paper's Table 1 for one metric.
type Table1Row struct {
	Metric               metric.Metric
	MeanProblemClusters  float64
	MeanCriticalClusters float64
	// CriticalFraction = MeanCriticalClusters / MeanProblemClusters.
	CriticalFraction     float64
	MeanProblemCoverage  float64
	MeanCriticalCoverage float64
}

// Table1 computes the reduction and coverage aggregates of Table 1.
func Table1(tr *core.TraceResult) [metric.NumMetrics]Table1Row {
	var rows [metric.NumMetrics]Table1Row
	if len(tr.Epochs) == 0 {
		return rows
	}
	n := float64(len(tr.Epochs))
	for _, m := range metric.All() {
		row := Table1Row{Metric: m}
		for i := range tr.Epochs {
			ms := &tr.Epochs[i].Metrics[m]
			row.MeanProblemClusters += float64(ms.NumProblemClusters)
			row.MeanCriticalClusters += float64(len(ms.Critical))
			row.MeanProblemCoverage += ms.ProblemCoverage()
			row.MeanCriticalCoverage += ms.CriticalCoverage()
		}
		row.MeanProblemClusters /= n
		row.MeanCriticalClusters /= n
		row.MeanProblemCoverage /= n
		row.MeanCriticalCoverage /= n
		if row.MeanProblemClusters > 0 {
			row.CriticalFraction = row.MeanCriticalClusters / row.MeanProblemClusters
		}
		rows[m] = row
	}
	return rows
}

// Breakdown is the Fig. 10 decomposition of problem sessions for one
// metric: attributed to critical clusters by attribute combination, inside
// problem clusters but unattributed, and outside any problem cluster.
type Breakdown struct {
	Metric metric.Metric
	// ByMask sums attributed problem sessions per critical-cluster mask.
	ByMask map[attr.Mask]float64
	// NotAttributed counts problem sessions inside problem clusters but
	// not covered by any critical cluster.
	NotAttributed float64
	// NotInProblemCluster counts problem sessions outside every problem
	// cluster.
	NotInProblemCluster float64
	// Total is all problem sessions.
	Total float64
}

// TypeBreakdown computes the Fig. 10 decomposition over the whole trace.
func TypeBreakdown(tr *core.TraceResult, m metric.Metric) Breakdown {
	b := Breakdown{Metric: m, ByMask: make(map[attr.Mask]float64)}
	for i := range tr.Epochs {
		ms := &tr.Epochs[i].Metrics[m]
		b.Total += float64(ms.GlobalProblems)
		b.NotAttributed += float64(ms.ProblemsInProblemClusters - ms.CoveredProblems)
		b.NotInProblemCluster += float64(ms.GlobalProblems - ms.ProblemsInProblemClusters)
		for j := range ms.Critical {
			cs := &ms.Critical[j]
			b.ByMask[cs.Key.Mask] += cs.AttributedProblems
		}
	}
	return b
}

// MaskShares returns the Fig. 10 slices sorted by share descending: each
// mask's fraction of total problem sessions, then the two residual slices.
func (b Breakdown) MaskShares() []MaskShare {
	out := make([]MaskShare, 0, len(b.ByMask))
	for m, v := range b.ByMask {
		out = append(out, MaskShare{Mask: m, Sessions: v, Share: safeDiv(v, b.Total)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sessions != out[j].Sessions {
			return out[i].Sessions > out[j].Sessions
		}
		return out[i].Mask < out[j].Mask
	})
	return out
}

// MaskShare is one Fig. 10 pie slice.
type MaskShare struct {
	Mask     attr.Mask
	Sessions float64
	Share    float64
}

func safeDiv(a, b float64) float64 {
	if eps.Zero(b) {
		return 0
	}
	return a / b
}

// Table2 computes the average Jaccard similarity between the top-k critical
// clusters of every metric pair (paper Table 2; k=100 there).
func Table2(tr *core.TraceResult, k int) map[[2]metric.Metric]float64 {
	hists := make([]*History, metric.NumMetrics)
	tops := make([]map[attr.Key]bool, metric.NumMetrics)
	for _, m := range metric.All() {
		hists[m] = BuildHistory(tr, m)
		set := make(map[attr.Key]bool)
		for _, key := range hists[m].TopCritical(k) {
			set[key] = true
		}
		tops[m] = set
	}
	out := make(map[[2]metric.Metric]float64)
	for a := metric.Metric(0); a < metric.NumMetrics; a++ {
		for b := a + 1; b < metric.NumMetrics; b++ {
			out[[2]metric.Metric{a, b}] = stats.Jaccard(tops[a], tops[b])
		}
	}
	return out
}

// PrevalentCritical is a Table 3 row candidate: a critical cluster with its
// prevalence.
type PrevalentCritical struct {
	Key        attr.Key
	Prevalence float64
	// TotalProblems is the summed attribution, for secondary ranking.
	TotalProblems float64
}

// PrevalentCriticals returns the critical clusters of metric m with
// prevalence above minPrev, most prevalent first (paper §4.3 uses 60%),
// optionally restricted to single-attribute clusters of the dominant types
// the paper tabulates (ASN, CDN, Site, ConnType).
func PrevalentCriticals(h *History, minPrev float64, restrict bool) []PrevalentCritical {
	allowed := map[attr.Mask]bool{
		attr.MaskOf(attr.ASN):      true,
		attr.MaskOf(attr.CDN):      true,
		attr.MaskOf(attr.Site):     true,
		attr.MaskOf(attr.ConnType): true,
	}
	var out []PrevalentCritical
	for k, ks := range h.Critical {
		if restrict && !allowed[k.Mask] {
			continue
		}
		prev := h.Prevalence(CriticalClusters, k)
		if prev < minPrev {
			continue
		}
		out = append(out, PrevalentCritical{Key: k, Prevalence: prev, TotalProblems: ks.TotalProblems})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prevalence != out[j].Prevalence {
			return out[i].Prevalence > out[j].Prevalence
		}
		if out[i].TotalProblems != out[j].TotalProblems {
			return out[i].TotalProblems > out[j].TotalProblems
		}
		return KeyLess(out[i].Key, out[j].Key)
	})
	return out
}

// KeyLess is a deterministic total order over keys.
func KeyLess(a, b attr.Key) bool {
	if a.Mask != b.Mask {
		return a.Mask < b.Mask
	}
	for d := attr.Dim(0); d < attr.NumDims; d++ {
		if a.Vals[d] != b.Vals[d] {
			return a.Vals[d] < b.Vals[d]
		}
	}
	return false
}
