package analysis

import (
	"math"
	"testing"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/metric"
)

func k(pairs map[attr.Dim]int32) attr.Key { return attr.NewKey(pairs) }

var (
	asn1     = k(map[attr.Dim]int32{attr.ASN: 1})
	asn2     = k(map[attr.Dim]int32{attr.ASN: 2})
	cdn1     = k(map[attr.Dim]int32{attr.CDN: 1})
	cdn2     = k(map[attr.Dim]int32{attr.CDN: 2})
	asn1cdn1 = k(map[attr.Dim]int32{attr.ASN: 1, attr.CDN: 1})
	asn2cdn1 = k(map[attr.Dim]int32{attr.ASN: 2, attr.CDN: 1})
)

// fig6Trace encodes the paper's Fig. 6 worked example (6 epochs) as problem
// cluster occurrences:
//
//	epoch1: ASN1, CDN2             epoch2: ASN1, ASN1∧CDN1, CDN2
//	epoch3: ASN1∧CDN1, ASN2∧CDN1, CDN2   epoch4: ASN2, ASN2∧CDN1
//	epoch5: ASN2, ASN1∧CDN1, CDN2  epoch6: ASN2, ASN1∧CDN1, CDN2, CDN1
//
// (1-based in the figure; 0-based here.)
func fig6Trace() *core.TraceResult {
	occ := [][]attr.Key{
		{asn1, cdn2},
		{asn1, asn1cdn1, cdn2},
		{asn1cdn1, asn2cdn1, cdn2},
		{asn2, asn2cdn1},
		{asn2, asn1cdn1, cdn2},
		{asn2, asn1cdn1, cdn2, cdn1},
	}
	tr := &core.TraceResult{
		Trace:  epoch.Range{Start: 0, End: 6},
		Epochs: make([]core.EpochResult, 6),
	}
	for i, keys := range occ {
		er := &tr.Epochs[i]
		er.Epoch = epoch.Index(i)
		ms := &er.Metrics[metric.BufRatio]
		ms.Metric = metric.BufRatio
		ms.ProblemKeys = append([]attr.Key(nil), keys...)
		ms.NumProblemClusters = len(keys)
		for _, key := range keys {
			ms.Critical = append(ms.Critical, core.CriticalSummary{Key: key, AttributedProblems: 10, AttributedSessions: 50})
		}
	}
	return tr
}

// TestFig6PrevalenceAndPersistence checks the worked example verbatim:
// prevalence(ASN1∧CDN1)=4/6, prevalence(CDN2)=5/6, persistence streaks
// {2,2} and {3,2}, ASN2 max persistence 3 consecutive epochs... the paper's
// figure lists ASN2={4} counting epochs 4–6 plus epoch 4; here ASN2 appears
// in epochs 3,4,5 (0-based) giving a single streak of 3 — the figure's "4"
// counts its occurrences 4/6 in the prevalence row; its persistence set is
// {3} in our 0-based encoding of the drawn occurrences.
func TestFig6PrevalenceAndPersistence(t *testing.T) {
	tr := fig6Trace()
	h := BuildHistory(tr, metric.BufRatio)

	if got := h.Prevalence(ProblemClusters, asn1cdn1); math.Abs(got-4.0/6) > 1e-12 {
		t.Errorf("prevalence(ASN1∧CDN1) = %v, want 4/6", got)
	}
	if got := h.Prevalence(ProblemClusters, cdn2); math.Abs(got-5.0/6) > 1e-12 {
		t.Errorf("prevalence(CDN2) = %v, want 5/6", got)
	}
	if got := h.Prevalence(ProblemClusters, asn1); math.Abs(got-2.0/6) > 1e-12 {
		t.Errorf("prevalence(ASN1) = %v, want 2/6", got)
	}
	if got := h.Prevalence(ProblemClusters, cdn1); math.Abs(got-1.0/6) > 1e-12 {
		t.Errorf("prevalence(CDN1) = %v, want 1/6", got)
	}

	med, max := h.Persistence(ProblemClusters, asn1cdn1)
	if med != 2 || max != 2 {
		t.Errorf("persistence(ASN1∧CDN1) = %d/%d, want 2/2 (streaks {2,2})", med, max)
	}
	med, max = h.Persistence(ProblemClusters, cdn2)
	if med != 2 || max != 3 {
		t.Errorf("persistence(CDN2) = %d/%d, want 2/3 (streaks {3,2})", med, max)
	}
	med, max = h.Persistence(ProblemClusters, cdn1)
	if med != 1 || max != 1 {
		t.Errorf("persistence(CDN1) = %d/%d, want 1/1", med, max)
	}
	if m, x := h.Persistence(ProblemClusters, k(map[attr.Dim]int32{attr.Site: 9})); m != 0 || x != 0 {
		t.Error("persistence of absent key should be 0/0")
	}
}

func TestStreaksRanges(t *testing.T) {
	tr := fig6Trace()
	h := BuildHistory(tr, metric.BufRatio)
	streaks := h.Streaks(ProblemClusters, asn1cdn1)
	want := []epoch.Range{{Start: 1, End: 3}, {Start: 4, End: 6}}
	if len(streaks) != len(want) {
		t.Fatalf("streaks = %v, want %v", streaks, want)
	}
	for i := range want {
		if streaks[i] != want[i] {
			t.Errorf("streak %d = %v, want %v", i, streaks[i], want[i])
		}
	}
	if h.Streaks(ProblemClusters, k(map[attr.Dim]int32{attr.Site: 9})) != nil {
		t.Error("absent key should have no streaks")
	}
}

func TestPrevalenceDistAndPersistenceDist(t *testing.T) {
	tr := fig6Trace()
	h := BuildHistory(tr, metric.BufRatio)
	prev := h.PrevalenceDist(ProblemClusters)
	if len(prev) != 6 { // 6 distinct keys
		t.Fatalf("prevalence dist over %d keys, want 6", len(prev))
	}
	meds, maxes := h.PersistenceDist(ProblemClusters)
	if len(meds) != 6 || len(maxes) != 6 {
		t.Fatal("persistence dists wrong length")
	}
	for i := range meds {
		if maxes[i] < meds[i] {
			t.Errorf("max < median at %d", i)
		}
	}
	// Critical population mirrors problem keys in this constructed trace.
	if got := len(h.PrevalenceDist(CriticalClusters)); got != 6 {
		t.Errorf("critical prevalence dist = %d keys", got)
	}
}

func TestTopCritical(t *testing.T) {
	tr := fig6Trace()
	h := BuildHistory(tr, metric.BufRatio)
	top := h.TopCritical(2)
	// CDN2 appears 5 times (50 attributed problems), ASN1∧CDN1 4 times.
	if len(top) != 2 || top[0] != cdn2 || top[1] != asn1cdn1 {
		t.Errorf("TopCritical = %v", top)
	}
	if len(h.TopCritical(100)) != 6 {
		t.Error("TopCritical should clamp")
	}
	if len(h.TopCritical(-1)) != 0 {
		t.Error("TopCritical(-1) should be empty")
	}
}

func TestClusterCountsAndTable1(t *testing.T) {
	tr := fig6Trace()
	probs, crits := ClusterCounts(tr, metric.BufRatio)
	if len(probs) != 6 || probs[0] != 2 || probs[5] != 4 {
		t.Errorf("problem counts = %v", probs)
	}
	if crits[0] != 2 {
		t.Errorf("critical counts = %v", crits)
	}
	rows := Table1(tr)
	row := rows[metric.BufRatio]
	if math.Abs(row.MeanProblemClusters-17.0/6) > 1e-12 {
		t.Errorf("mean problem clusters = %v", row.MeanProblemClusters)
	}
	if row.CriticalFraction != 1 {
		t.Errorf("critical fraction = %v, want 1 (constructed 1:1)", row.CriticalFraction)
	}
	if Table1(&core.TraceResult{})[0].MeanProblemClusters != 0 {
		t.Error("empty Table1 should be zero")
	}
}

func TestTypeBreakdown(t *testing.T) {
	tr := fig6Trace()
	// Give the epochs global counts so the residual slices are non-zero.
	for i := range tr.Epochs {
		ms := &tr.Epochs[i].Metrics[metric.BufRatio]
		ms.GlobalProblems = 100
		ms.CoveredProblems = 10 * int32(len(ms.Critical))
		ms.ProblemsInProblemClusters = ms.CoveredProblems + 20
	}
	b := TypeBreakdown(tr, metric.BufRatio)
	if b.Total != 600 {
		t.Errorf("total = %v", b.Total)
	}
	if b.NotAttributed != 6*20 {
		t.Errorf("not attributed = %v", b.NotAttributed)
	}
	// ByMask: ASN mask keys (ASN1, ASN2): 2+3 occurrences ×10 = 50, CDN
	// mask (CDN1, CDN2): 1+5 = 60, pair mask: 4+2 = 60.
	if got := b.ByMask[attr.MaskOf(attr.ASN)]; got != 50 {
		t.Errorf("ASN mask share = %v, want 50", got)
	}
	if got := b.ByMask[attr.MaskOf(attr.CDN)]; got != 60 {
		t.Errorf("CDN mask share = %v, want 60", got)
	}
	if got := b.ByMask[attr.MaskOf(attr.ASN, attr.CDN)]; got != 60 {
		t.Errorf("pair mask share = %v, want 60", got)
	}
	shares := b.MaskShares()
	if len(shares) != 3 {
		t.Fatalf("shares = %v", shares)
	}
	if shares[0].Sessions < shares[1].Sessions || shares[1].Sessions < shares[2].Sessions {
		t.Error("shares not sorted descending")
	}
	var sum float64
	for _, s := range shares {
		sum += s.Share
	}
	if math.Abs(sum-170.0/600) > 1e-12 {
		t.Errorf("share sum = %v", sum)
	}
}

func TestTable2Jaccard(t *testing.T) {
	tr := fig6Trace()
	// Duplicate the BufRatio structure into Bitrate with disjoint keys, and
	// into JoinTime with identical keys.
	for i := range tr.Epochs {
		src := tr.Epochs[i].Metrics[metric.BufRatio]
		var bitrate core.MetricSummary
		bitrate.Metric = metric.Bitrate
		for _, cs := range src.Critical {
			cs.Key = k(map[attr.Dim]int32{attr.Site: cs.Key.Vals[attr.ASN] + 10})
			bitrate.Critical = append(bitrate.Critical, cs)
		}
		tr.Epochs[i].Metrics[metric.Bitrate] = bitrate
		jt := src
		jt.Metric = metric.JoinTime
		tr.Epochs[i].Metrics[metric.JoinTime] = jt
	}
	out := Table2(tr, 100)
	if got := out[[2]metric.Metric{metric.BufRatio, metric.JoinTime}]; got != 1 {
		t.Errorf("identical metrics Jaccard = %v, want 1", got)
	}
	if got := out[[2]metric.Metric{metric.BufRatio, metric.Bitrate}]; got != 0 {
		t.Errorf("disjoint metrics Jaccard = %v, want 0", got)
	}
	if len(out) != 6 {
		t.Errorf("pair count = %d, want 6", len(out))
	}
}

func TestPrevalentCriticals(t *testing.T) {
	tr := fig6Trace()
	h := BuildHistory(tr, metric.BufRatio)
	got := PrevalentCriticals(h, 0.6, true)
	// Only CDN2 (5/6) among single-attribute ASN/CDN/Site/ConnType keys
	// exceeds 60%; ASN1∧CDN1 (4/6) is excluded by the mask restriction.
	if len(got) != 1 || got[0].Key != cdn2 {
		t.Fatalf("prevalent = %+v, want just CDN2", got)
	}
	unrestricted := PrevalentCriticals(h, 0.6, false)
	if len(unrestricted) != 2 {
		t.Fatalf("unrestricted prevalent = %+v, want CDN2 and ASN1∧CDN1", unrestricted)
	}
	if unrestricted[0].Key != cdn2 || unrestricted[1].Key != asn1cdn1 {
		t.Errorf("ordering wrong: %+v", unrestricted)
	}
}
