package heartbeat

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/session"
	"repro/internal/stats"
)

// ErrSenderClosed is returned by Send after Close.
var ErrSenderClosed = errors.New("heartbeat: sender closed")

// SenderConfig shapes the reconnect behaviour of a Sender.
type SenderConfig struct {
	// BaseBackoff is the delay before the first retry (default 50ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 5s).
	MaxBackoff time.Duration
	// MaxAttempts bounds connection/write attempts per Send, counting the
	// first (default 8). A Send that exhausts them is abandoned.
	MaxAttempts int
	// Jitter is the fraction of each backoff that is randomized (default
	// 0.5): sleep = d*(1-Jitter/2) + uniform(0, d*Jitter). Jitter keeps a
	// fleet of players reconnecting to a restarted collector from
	// thundering in lockstep.
	Jitter float64
	// Seed makes the jitter stream deterministic: a non-zero seed derives
	// the stream reproducibly, the zero seed draws per-sender entropy so
	// distinct senders never share a jitter schedule (a fleet of zero-seed
	// senders used to share one stream and back off in lockstep —
	// thundering herd by construction).
	Seed uint64
	// Rand, when non-nil, supplies the jitter stream directly and wins over
	// Seed — chaos soaks inject a split of the scenario RNG so distributed
	// runs replay deterministically without touching any global state.
	Rand *stats.RNG
	// AckMode asks the collector (via a Hello flags bit) to acknowledge
	// End, Failed, and Session frames; Send then returns success only once
	// the frame is acknowledged, so replay state retires only after the
	// collector has durably assembled the session. This is what makes exact
	// session conservation provable when a collector is killed with frames
	// still in its socket buffers.
	AckMode bool
	// AckTimeout bounds the wait for each acknowledgment before the
	// connection is dropped and the frame retried (default 2s). Close may
	// block up to this long if it races an in-flight ack wait.
	AckTimeout time.Duration
}

func (c SenderConfig) withDefaults() SenderConfig {
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 50 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
	if c.Jitter <= 0 || c.Jitter > 1 {
		c.Jitter = 0.5
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = 2 * time.Second
	}
	return c
}

// senderEntropy decorrelates zero-seed senders: each draws a distinct
// counter value mixed with the wall clock, so no two share a jitter stream.
var senderEntropy atomic.Uint64

// jitterRNG resolves the configured jitter stream: an injected Rand wins,
// then a non-zero Seed (deterministic), then per-sender entropy.
func (c SenderConfig) jitterRNG() *stats.RNG {
	if c.Rand != nil {
		return c.Rand
	}
	seed := c.Seed
	if seed == 0 {
		seed = uint64(time.Now().UnixNano()) ^ senderEntropy.Add(1)<<32
	}
	return stats.NewRNG(seed).Split(0x5E4D)
}

// SenderStats snapshots a sender's delivery counters.
type SenderStats struct {
	// Sent counts frames written successfully (including replays).
	Sent int64
	// Reconnects counts re-dials after a connection was lost.
	Reconnects int64
	// Replays counts reconnects that re-sent session state (Hello/Joined).
	Replays int64
	// Abandoned counts Sends that exhausted MaxAttempts.
	Abandoned int64
}

// Sender is the fault-tolerant client side of the heartbeat channel: it
// reports one session at a time (like Emitter) but survives connection
// loss and collector restarts. On a write failure it reconnects with
// exponential backoff plus jitter and replays the active session's Hello
// (and Joined, if playback had started) so the collector can re-establish
// the session — the paper's measurement channel kept reporting through the
// very pathologies it measured, and so does this one.
//
// Sender is safe for use from one goroutine per instance; Close may be
// called concurrently and interrupts an in-flight backoff.
type Sender struct {
	dial func() (net.Conn, error)
	cfg  SenderConfig
	// Logf receives reconnect/abandon diagnostics (nil silences).
	Logf func(format string, args ...any)

	mu        sync.Mutex
	conn      net.Conn
	w         *Writer
	r         *Reader // ack stream; non-nil only in ack mode with a live conn
	replay    []Message
	rng       *stats.RNG
	connected bool // a connection has succeeded at least once

	closeOnce sync.Once
	done      chan struct{}

	sent, reconnects, replays, abandoned atomic.Int64
}

// NewSender builds a sender that obtains connections from dial. Dialing is
// lazy: the first Send connects.
func NewSender(dial func() (net.Conn, error), cfg SenderConfig) *Sender {
	cfg = cfg.withDefaults()
	return &Sender{
		dial: dial,
		cfg:  cfg,
		rng:  cfg.jitterRNG(),
		done: make(chan struct{}),
	}
}

// DialSender is NewSender over plain TCP to addr.
func DialSender(addr string, cfg SenderConfig) *Sender {
	return NewSender(func() (net.Conn, error) {
		return net.Dial("tcp", addr)
	}, cfg)
}

// Stats snapshots the sender counters.
func (s *Sender) Stats() SenderStats {
	return SenderStats{
		Sent:       s.sent.Load(),
		Reconnects: s.reconnects.Load(),
		Replays:    s.replays.Load(),
		Abandoned:  s.abandoned.Load(),
	}
}

// Send delivers one heartbeat, reconnecting and replaying session state as
// needed. It returns nil once the frame is written to a connection, an
// error once MaxAttempts is exhausted, and ErrSenderClosed if the sender is
// (or becomes) closed.
func (s *Sender) Send(m *Message) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.isClosed() {
		return ErrSenderClosed
	}
	if s.cfg.AckMode && m.Kind == KindHello {
		m.AckMode = true // carried on replays too, via trackLocked's copy
	}
	for attempt := 0; attempt < s.cfg.MaxAttempts; attempt++ {
		if attempt > 0 && !s.backoffLocked(attempt) {
			return ErrSenderClosed
		}
		if s.conn == nil && !s.connectLocked() {
			continue
		}
		if err := s.w.Write(m); err != nil {
			s.dropConnLocked(err)
			continue
		}
		if s.cfg.AckMode && kindNeedsAck(m.Kind) && !s.awaitAckLocked(m.SessionID) {
			// The frame may or may not have been assembled; retry re-writes
			// it and the collector's dedup window absorbs the duplicate.
			continue
		}
		s.sent.Add(1)
		s.trackLocked(m)
		return nil
	}
	s.abandoned.Add(1)
	if s.Logf != nil {
		s.Logf("heartbeat: sender abandoned %v for session %d after %d attempts", m.Kind, m.SessionID, s.cfg.MaxAttempts)
	}
	return fmt.Errorf("heartbeat: send abandoned after %d attempts", s.cfg.MaxAttempts)
}

// EmitSession reports a completed session as its heartbeat sequence with
// progressEvery cumulative progress reports (minimum 1).
func (s *Sender) EmitSession(sess *session.Session, progressEvery int) error {
	msgs := sessionMessages(nil, sess, progressEvery)
	for i := range msgs {
		if err := s.Send(&msgs[i]); err != nil {
			return err
		}
	}
	return nil
}

// Close interrupts any in-flight backoff and tears down the connection.
func (s *Sender) Close() error {
	s.closeOnce.Do(func() { close(s.done) })
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conn != nil {
		err := s.conn.Close()
		s.conn, s.w = nil, nil
		return err
	}
	return nil
}

func (s *Sender) isClosed() bool {
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

// connectLocked dials and replays the active session's state. It reports
// whether the sender holds a usable connection afterwards.
func (s *Sender) connectLocked() bool {
	conn, err := s.dial()
	if err != nil {
		if s.Logf != nil {
			s.Logf("heartbeat: sender dial: %v", err)
		}
		return false
	}
	if s.connected {
		s.reconnects.Add(1)
	}
	s.connected = true
	s.conn, s.w = conn, NewWriter(conn)
	if s.cfg.AckMode {
		s.r = NewReader(conn)
	}
	if len(s.replay) == 0 {
		return true
	}
	// Re-Hello (and re-Joined): the collector may have restarted, or may
	// have salvaged the session already — its dedup window makes replays
	// idempotent either way.
	for i := range s.replay {
		if err := s.w.Write(&s.replay[i]); err != nil {
			s.dropConnLocked(err)
			return false
		}
		s.sent.Add(1)
	}
	s.replays.Add(1)
	return true
}

func (s *Sender) dropConnLocked(err error) {
	if s.Logf != nil {
		s.Logf("heartbeat: sender write: %v (reconnecting)", err)
	}
	if s.conn != nil {
		_ = s.conn.Close() // the write error is the one that matters
	}
	s.conn, s.w, s.r = nil, nil, nil
}

// kindNeedsAck reports whether a frame retires replay state and therefore
// must be acknowledged before Send may report success in ack mode.
func kindNeedsAck(k Kind) bool {
	return k == KindEnd || k == KindFailed || k == KindSession
}

// awaitAckLocked blocks (bounded by AckTimeout) for the collector's
// acknowledgment of the frame just written for session id. Any failure —
// timeout, connection loss, or a frame that is not the expected ack — drops
// the connection so the caller's retry loop re-delivers.
func (s *Sender) awaitAckLocked(id uint64) bool {
	if err := s.conn.SetReadDeadline(time.Now().Add(s.cfg.AckTimeout)); err != nil {
		s.dropConnLocked(fmt.Errorf("heartbeat: arming ack deadline: %w", err))
		return false
	}
	var ack Message
	err := s.r.Read(&ack)
	if err == nil {
		if ack.Kind == KindAck && ack.SessionID == id {
			_ = s.conn.SetReadDeadline(time.Time{})
			return true
		}
		// The sender keeps at most one acked frame outstanding, so anything
		// else here is a protocol violation, not a stale ack.
		err = fmt.Errorf("heartbeat: unexpected %v frame for session %d awaiting ack for %d", ack.Kind, ack.SessionID, id)
	}
	s.dropConnLocked(err)
	return false
}

// trackLocked maintains the replay state after a successful write: Hello
// opens a session, Joined extends its replayable prefix, End/Failed retire
// it. Progress is deliberately not replayed — it is cumulative and End
// carries the authoritative totals.
func (s *Sender) trackLocked(m *Message) {
	switch m.Kind {
	case KindHello:
		s.replay = append(s.replay[:0], *m)
	case KindJoined:
		if len(s.replay) == 1 && s.replay[0].Kind == KindHello {
			s.replay = append(s.replay, *m)
		}
	case KindEnd, KindFailed:
		s.replay = s.replay[:0]
	}
}

// backoffLocked sleeps the exponential-with-jitter delay for the given
// attempt (1-based), returning false if the sender closed while waiting.
// The sender lock stays held: a Sender serializes its frames by design, so
// nothing useful could interleave anyway.
func (s *Sender) backoffLocked(attempt int) bool {
	d := s.cfg.BaseBackoff << (attempt - 1)
	if d > s.cfg.MaxBackoff || d <= 0 {
		d = s.cfg.MaxBackoff
	}
	j := s.cfg.Jitter
	sleep := time.Duration(float64(d) * (1 - j/2 + j*s.rng.Float64()))
	t := time.NewTimer(sleep)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-s.done:
		return false
	}
}
