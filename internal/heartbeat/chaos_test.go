package heartbeat

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/attr"
	"repro/internal/epoch"
	"repro/internal/faultnet"
	"repro/internal/player"
	"repro/internal/session"
	"repro/internal/stats"
	"repro/internal/testutil"
)

// chaosSeed pins the whole soak — player behaviour, fault schedules, and
// backoff jitter — so a failure replays exactly.
const chaosSeed = 0xC0DE

// TestChaosSoak drives hundreds of simulated players through a
// fault-injecting network into one collector and checks that the pipeline
// degrades by accounting, never by crashing: zero handler panics, zero
// leaked goroutines, and every session started is either delivered through
// the spool, shed with a counter, or salvaged as a join failure.
//
// Enabled fault classes: write stalls, connection resets, partial writes
// (all client-side), and transient accept failures (server-side). In-flight
// corruption is exercised separately in TestChaosCorruptionNeverForges —
// corruption is only detectable receiver-side, so it trades the exact
// conservation law asserted here for a no-phantoms guarantee.
func TestChaosSoak(t *testing.T) {
	defer testutil.CheckGoroutineLeaks(t)()

	players := 500
	if testing.Short() {
		players = 120
	}

	// Trace-writer stand-in: slow enough that the 500-session burst
	// overflows the bounded spool and exercises the shed path.
	var delivered []session.Session
	sp := NewSpool(16, func(s session.Session) {
		time.Sleep(5 * time.Millisecond)
		delivered = append(delivered, s)
	})

	c := NewCollector(sp.Emit)
	c.Logf = nil
	c.ReadIdleTimeout = 30 * time.Second

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fln := faultnet.WrapListener(ln, faultnet.Config{Seed: chaosSeed, AcceptFailProb: 0.05})
	if err := c.Serve(fln); err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()

	ladder := []float64{400, 1000, 2500, 5000}
	abrs := []player.ABR{player.RateBased{}, player.BufferBased{}, player.Fixed{Index: 1}}

	var (
		connMu      sync.Mutex
		conns       []*faultnet.Conn
		abandoned   atomic.Int64
		expSalvaged atomic.Int64
		wg          sync.WaitGroup
	)
	for i := 0; i < players; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()

			// Simulate the session this player will report.
			prng := stats.NewRNG(chaosSeed).Split(uint64(1000 + i))
			netw := player.NewMarkovNetwork(prng.Split(1), 1500+float64((i*37)%2000), 10)
			res, err := player.Play(prng.Split(2), ladder, abrs[i%len(abrs)], netw,
				player.DefaultConfig(), 90, 0.05, 0.03)
			if err != nil {
				t.Errorf("player %d: %v", i, err)
				return
			}
			sess := session.Session{
				ID:       uint64(i + 1),
				Epoch:    epoch.Index(i % 4),
				Attrs:    attr.Vector{int32(i % 3), int32(i % 2), int32(i % 4), 0, 1, 0, 1},
				QoE:      res.QoE,
				EventIDs: session.NoEvents,
			}

			// Per-player fault stream: each dialed connection gets its own
			// RNG split, so the schedule is independent of goroutine
			// interleaving across players.
			cfg := faultnet.Config{
				Seed:             chaosSeed + uint64(i),
				StallProb:        0.02,
				StallMax:         2 * time.Millisecond,
				ResetProb:        0.03,
				PartialWriteProb: 0.02,
			}
			var nextConn uint64
			dial := func() (net.Conn, error) {
				raw, err := net.Dial("tcp", addr)
				if err != nil {
					return nil, err
				}
				nextConn++
				fc := faultnet.WrapConn(raw, cfg, nextConn)
				connMu.Lock()
				conns = append(conns, fc)
				connMu.Unlock()
				return fc, nil
			}
			snd := NewSender(dial, SenderConfig{
				BaseBackoff: 500 * time.Microsecond,
				MaxBackoff:  5 * time.Millisecond,
				MaxAttempts: 25,
				Seed:        chaosSeed + uint64(i),
			})
			snd.Logf = nil
			defer snd.Close()

			msgs := sessionMessages(nil, &sess, 3)
			switch {
			case i%9 == 4:
				// Player process dies right after registering: Hello with no
				// player status ever. The collector must salvage it as a
				// join failure at drain time.
				msgs = msgs[:1]
				expSalvaged.Add(1)
			case i%17 == 11 && len(msgs) > 3:
				// Dies mid-stream after joining: flushed from its last
				// progress report, counted as delivered, not salvaged.
				msgs = msgs[:3]
			}
			for j := range msgs {
				if err := snd.Send(&msgs[j]); err != nil {
					abandoned.Add(1)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	// Drain barrier: every dial that succeeded left a connection in the
	// kernel accept queue, but injected accept failures delay the accept
	// loop. Wait for it to catch up before closing, or queued-but-never-
	// accepted connections would be discarded and their frames lost outside
	// the accounted fault model.
	connMu.Lock()
	dialed := len(conns)
	connMu.Unlock()
	for deadline := time.Now().Add(5 * time.Second); ; time.Sleep(time.Millisecond) {
		if accepted, _ := fln.AcceptStats(); accepted >= dialed || time.Now().After(deadline) {
			break
		}
	}
	if err := c.CloseGrace(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	sp.Close()

	if n := abandoned.Load(); n != 0 {
		t.Fatalf("%d sends abandoned; the soak config is tuned so retries always win", n)
	}
	cs := c.Stats()
	if cs.HandlerPanics != 0 {
		t.Fatalf("collector recorded %d handler panics", cs.HandlerPanics)
	}
	if cs.ProtocolErrors != 0 {
		t.Fatalf("collector recorded %d protocol errors; faults must stay below the protocol layer", cs.ProtocolErrors)
	}
	if cs.ForceClosed != 0 {
		t.Fatalf("drain force-closed %d connections despite all players exiting", cs.ForceClosed)
	}

	// The conservation law: every session started is accounted for exactly
	// once — delivered through the spool or shed with a counter (salvaged
	// sessions flow through the spool like any other emission).
	st := sp.Stats()
	if st.Delivered+st.Shed != int64(players) {
		t.Fatalf("delivered %d + shed %d != %d started (emitted %d, salvaged %d)",
			st.Delivered, st.Shed, players, cs.SessionsEmitted, cs.Salvaged)
	}
	if cs.SessionsEmitted != int64(players) {
		t.Fatalf("assembler emitted %d sessions, want %d", cs.SessionsEmitted, players)
	}
	if want := expSalvaged.Load(); cs.Salvaged != want {
		t.Fatalf("salvaged %d sessions, want exactly the %d that vanished after Hello", cs.Salvaged, want)
	}
	if st.Shed == 0 {
		t.Error("spool never shed despite a sink slower than the burst")
	}
	if int64(len(delivered)) != st.Delivered {
		t.Fatalf("sink saw %d sessions, spool counted %d", len(delivered), st.Delivered)
	}
	seen := make(map[uint64]bool, len(delivered))
	for _, s := range delivered {
		if s.ID == 0 || s.ID > uint64(players) {
			t.Fatalf("phantom session ID %d delivered", s.ID)
		}
		if seen[s.ID] {
			t.Fatalf("session %d delivered twice; dedup window failed under replay", s.ID)
		}
		seen[s.ID] = true
	}

	// Prove the fault classes actually fired.
	var fc faultnet.ConnStats
	connMu.Lock()
	for _, cn := range conns {
		s := cn.Stats()
		fc.Stalls += s.Stalls
		fc.Resets += s.Resets
		fc.PartialWrites += s.PartialWrites
		fc.Corruptions += s.Corruptions
	}
	connMu.Unlock()
	if fc.Stalls == 0 || fc.Resets == 0 || fc.PartialWrites == 0 {
		t.Fatalf("fault classes did not all fire: %+v", fc)
	}
	if _, failed := fln.AcceptStats(); failed == 0 || cs.AcceptErrors == 0 {
		t.Fatalf("accept failures did not fire (injected %d, collector saw %d)", failed, cs.AcceptErrors)
	}
	t.Logf("soak: %d players, delivered %d, shed %d, salvaged %d, reconnect faults %+v, accept errors %d",
		players, st.Delivered, st.Shed, cs.Salvaged, fc, cs.AcceptErrors)
}

// TestChaosCorruptionNeverForges soaks the collector with bit-flip
// corruption. Corruption is invisible to the sender (the write succeeds),
// so sessions can be lost when every post-corruption write lands before the
// connection teardown propagates — but the CRC framing guarantees a corrupt
// frame can only kill its connection, never misparse: no phantom sessions,
// no duplicates, no panics.
func TestChaosCorruptionNeverForges(t *testing.T) {
	defer testutil.CheckGoroutineLeaks(t)()
	const n = 60

	var mu sync.Mutex
	var got []session.Session
	c := NewCollector(func(s session.Session) {
		mu.Lock()
		got = append(got, s)
		mu.Unlock()
	})
	c.Logf = nil
	if err := c.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := c.Addr().String()

	var (
		connMu sync.Mutex
		conns  []*faultnet.Conn
		wg     sync.WaitGroup
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := faultnet.Config{Seed: chaosSeed + uint64(i), CorruptProb: 0.08}
			var nextConn uint64
			dial := func() (net.Conn, error) {
				raw, err := net.Dial("tcp", addr)
				if err != nil {
					return nil, err
				}
				nextConn++
				fc := faultnet.WrapConn(raw, cfg, nextConn)
				connMu.Lock()
				conns = append(conns, fc)
				connMu.Unlock()
				return fc, nil
			}
			snd := NewSender(dial, SenderConfig{
				BaseBackoff: 500 * time.Microsecond,
				MaxBackoff:  5 * time.Millisecond,
				MaxAttempts: 40,
				Seed:        chaosSeed + uint64(i),
			})
			snd.Logf = nil
			defer snd.Close()
			sess := sampleSession(uint64(i + 1))
			_ = snd.EmitSession(&sess, 2) // losses are tolerated; forgeries are not
		}(i)
	}
	wg.Wait()
	if err := c.CloseGrace(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	var corruptions int
	connMu.Lock()
	for _, cn := range conns {
		corruptions += cn.Stats().Corruptions
	}
	connMu.Unlock()
	if corruptions == 0 {
		t.Fatal("corruption never fired; the test proved nothing")
	}
	cs := c.Stats()
	if cs.HandlerPanics != 0 {
		t.Fatalf("corruption caused %d handler panics", cs.HandlerPanics)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) == 0 {
		t.Fatal("no session survived mild corruption; retries should carry most through")
	}
	seen := make(map[uint64]bool, len(got))
	for _, s := range got {
		if s.ID == 0 || s.ID > n {
			t.Fatalf("corruption forged phantom session ID %d", s.ID)
		}
		if seen[s.ID] {
			t.Fatalf("session %d assembled twice under corruption", s.ID)
		}
		seen[s.ID] = true
	}
	if int64(len(got)) > int64(n) {
		t.Fatalf("emitted %d sessions from %d players", len(got), n)
	}
	t.Logf("corruption soak: %d/%d sessions survived %d injected bit flips (salvaged %d)",
		len(got), n, corruptions, cs.Salvaged)
}
