package heartbeat

import (
	"errors"
	"io"
	"log"
	"net"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metric"
	"repro/internal/session"
)

// Collector is the measurement back end: a TCP server that decodes
// heartbeat streams from many concurrent clients and assembles completed
// sessions. It is built to survive a hostile network: per-connection idle
// read deadlines bound half-open connections, transient accept failures are
// retried with backoff instead of killing the accept loop, and a panic in a
// handler (or in the emit callback) tears down one connection, never the
// process.
type Collector struct {
	asm *Assembler
	ln  net.Listener

	// ReadIdleTimeout bounds the gap between heartbeats on one connection;
	// a connection that stalls longer is dropped and its sessions are left
	// to the idle flusher to salvage. Zero disables the deadline.
	ReadIdleTimeout time.Duration

	mu     sync.Mutex
	conns  map[net.Conn]bool
	closed bool
	wg     sync.WaitGroup

	// Logf receives per-connection protocol errors (default: log.Printf).
	Logf func(format string, args ...any)

	connsAccepted  atomic.Int64
	framesHandled  atomic.Int64
	protocolErrors atomic.Int64
	acceptErrors   atomic.Int64
	handlerPanics  atomic.Int64
	forceClosed    atomic.Int64
}

// Stats is a snapshot of collector counters.
type Stats struct {
	ConnsAccepted  int64
	FramesHandled  int64
	ProtocolErrors int64
	// AcceptErrors counts transient Accept failures that were retried.
	AcceptErrors int64
	// HandlerPanics counts connection handlers torn down by a panic.
	HandlerPanics int64
	// ForceClosed counts straggler connections killed because the drain
	// grace expired during Close.
	ForceClosed    int64
	PendingSession int
	// SessionsEmitted, Salvaged, and ReplaysDropped mirror the assembler's
	// accounting (see AssemblerStats).
	SessionsEmitted int64
	Salvaged        int64
	ReplaysDropped  int64
}

// Stats returns current counters.
func (c *Collector) Stats() Stats {
	as := c.asm.Stats()
	return Stats{
		ConnsAccepted:   c.connsAccepted.Load(),
		FramesHandled:   c.framesHandled.Load(),
		ProtocolErrors:  c.protocolErrors.Load(),
		AcceptErrors:    c.acceptErrors.Load(),
		HandlerPanics:   c.handlerPanics.Load(),
		ForceClosed:     c.forceClosed.Load(),
		PendingSession:  as.Pending,
		SessionsEmitted: as.Emitted,
		Salvaged:        as.Salvaged,
		ReplaysDropped:  as.ReplaysDropped,
	}
}

// NewCollector builds a collector delivering completed sessions to emit.
// emit may be called concurrently.
func NewCollector(emit func(session.Session)) *Collector {
	return &Collector{
		asm:             NewAssembler(emit),
		conns:           make(map[net.Conn]bool),
		Logf:            log.Printf,
		ReadIdleTimeout: 2 * time.Minute,
	}
}

// Assembler exposes the underlying assembler (for Flush policies).
func (c *Collector) Assembler() *Assembler { return c.asm }

// Listen starts accepting on addr ("127.0.0.1:0" for an ephemeral test
// port) and serves until Close.
func (c *Collector) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return c.Serve(ln)
}

// Serve accepts heartbeat connections from an existing listener (a
// fault-injecting wrapper in the chaos tests, a TCP listener in Listen).
func (c *Collector) Serve(ln net.Listener) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		_ = ln.Close() // the caller's error is the closed collector, not the unwind
		return errors.New("heartbeat: collector closed")
	}
	c.ln = ln
	c.mu.Unlock()

	c.wg.Add(1)
	go c.acceptLoop(ln)
	return nil
}

// Addr returns the bound listen address (nil before Listen).
func (c *Collector) Addr() net.Addr {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ln == nil {
		return nil
	}
	return c.ln.Addr()
}

func (c *Collector) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

func (c *Collector) acceptLoop(ln net.Listener) {
	defer c.wg.Done()
	var backoff time.Duration
	for {
		conn, err := ln.Accept()
		if err != nil {
			// Listener closed or drain deadline reached. Connections
			// accepted before this point are still served to EOF.
			if errors.Is(err, net.ErrClosed) {
				return
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				return
			}
			if c.isClosed() {
				return
			}
			// Transient failure (EMFILE, injected chaos, a reset mid
			// handshake): log, back off briefly, keep accepting. A flaky
			// accept path must degrade to slower admission, not shutdown.
			c.acceptErrors.Add(1)
			if c.Logf != nil {
				c.Logf("heartbeat: accept: %v", err)
			}
			if backoff < time.Millisecond {
				backoff = time.Millisecond
			} else if backoff *= 2; backoff > 50*time.Millisecond {
				backoff = 50 * time.Millisecond
			}
			time.Sleep(backoff)
			continue
		}
		backoff = 0
		c.connsAccepted.Add(1)
		c.mu.Lock()
		c.conns[conn] = true
		c.mu.Unlock()
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.ServeConn(conn)
			c.mu.Lock()
			delete(c.conns, conn)
			c.mu.Unlock()
		}()
	}
}

// readDeadliner is the slice of net.Conn the idle deadline needs; io-only
// streams (files, pipes in tests) simply run without one.
type readDeadliner interface {
	SetReadDeadline(t time.Time) error
}

// writeDeadliner bounds ack writes the same way.
type writeDeadliner interface {
	SetWriteDeadline(t time.Time) error
}

// ackWriteTimeout bounds one acknowledgment write; a client that stops
// draining its ack stream loses the connection, never wedges the handler.
const ackWriteTimeout = 5 * time.Second

// ServeConn decodes one heartbeat stream until EOF, a protocol error, or an
// idle timeout. Exposed so tests and in-process pipelines can drive the
// collector over net.Pipe or any io.ReadCloser. A panic while handling a
// frame (including inside the emit callback) is isolated to this
// connection.
func (c *Collector) ServeConn(conn io.ReadCloser) {
	defer conn.Close()
	defer func() {
		if r := recover(); r != nil {
			c.handlerPanics.Add(1)
			if c.Logf != nil {
				c.Logf("heartbeat: handler panic (connection dropped): %v\n%s", r, debug.Stack())
			}
		}
	}()
	rd, _ := conn.(readDeadliner)
	r := NewReader(conn)
	var ackW *Writer // non-nil once a Hello asked for ack mode
	var m Message
	for {
		if rd != nil && c.ReadIdleTimeout > 0 {
			if err := rd.SetReadDeadline(time.Now().Add(c.ReadIdleTimeout)); err != nil {
				rd = nil // transport without working deadlines; serve unbounded
			}
		}
		if err := r.Read(&m); err != nil {
			if err != io.EOF && c.Logf != nil {
				c.Logf("heartbeat: connection error: %v", err)
			}
			return
		}
		c.framesHandled.Add(1)
		if err := c.asm.Handle(&m); err != nil {
			c.protocolErrors.Add(1)
			if c.Logf != nil {
				c.Logf("heartbeat: %v", err)
			}
			// Protocol violations drop the message, not the connection:
			// one misbehaving player must not sever a shared reporter.
			continue
		}
		if m.Kind == KindHello && m.AckMode && ackW == nil {
			if w, ok := conn.(io.Writer); ok {
				ackW = NewWriter(w)
			}
		}
		if ackW != nil && kindNeedsAck(m.Kind) {
			// Acknowledge only after Handle succeeded — including the dedup
			// path, where the session is already assembled and the replayed
			// frame was dropped; either way the sender may retire it.
			if wd, ok := conn.(writeDeadliner); ok {
				_ = wd.SetWriteDeadline(time.Now().Add(ackWriteTimeout))
			}
			if err := ackW.Write(&Message{Kind: KindAck, SessionID: m.SessionID}); err != nil {
				if c.Logf != nil {
					c.Logf("heartbeat: ack write: %v (connection dropped)", err)
				}
				return // the sender will reconnect and re-deliver
			}
		}
	}
}

// Abort is the process-kill model: listener and every live connection close
// immediately, with no drain grace, and pending assembler state is dropped —
// not flushed — exactly as a killed process would drop it. The chaos soak
// uses it to model a collector node dying mid-epoch. Idempotent; Close after
// Abort reports the collector already closed.
func (c *Collector) Abort() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	ln := c.ln
	for conn := range c.conns {
		c.forceClosed.Add(1)
		_ = conn.Close() // abrupt teardown is the point
	}
	c.mu.Unlock()
	if ln != nil {
		_ = ln.Close() // accept loop exits via net.ErrClosed
	}
	c.wg.Wait()
}

// Close stops accepting and shuts down gracefully: connection handlers get
// up to ten seconds to drain buffered heartbeats (clients that have closed
// their side produce EOF naturally); stragglers are then force-closed.
// Finally the assembler force-flushes so no pending session is lost.
func (c *Collector) Close() error { return c.CloseGrace(10 * time.Second) }

// CloseGrace is Close with an explicit drain deadline. Stragglers killed at
// the deadline are counted in Stats.ForceClosed, so operators can tell a
// clean drain from a timed-out one.
func (c *Collector) CloseGrace(grace time.Duration) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return errors.New("heartbeat: collector already closed")
	}
	c.closed = true
	ln := c.ln
	c.mu.Unlock()

	var closeErr error
	lnClosed := false
	closeListener := func() {
		if err := ln.Close(); err != nil && closeErr == nil {
			closeErr = err
		}
		lnClosed = true
	}
	if ln != nil {
		// Connections may sit in the kernel accept queue (their dials
		// already succeeded); give the accept loop a moment to drain them
		// before tearing the listener down, so their heartbeats are not
		// silently discarded.
		if tl, ok := ln.(*net.TCPListener); ok {
			if err := tl.SetDeadline(time.Now().Add(150 * time.Millisecond)); err != nil {
				// Can't bound the drain; tear the listener down now rather
				// than risk hanging in accept.
				closeListener()
			}
		} else {
			closeListener()
		}
	}

	done := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(grace):
		c.mu.Lock()
		for conn := range c.conns {
			c.forceClosed.Add(1)
			_ = conn.Close() // best-effort teardown of stragglers
		}
		c.mu.Unlock()
		<-done
	}
	if ln != nil && !lnClosed {
		closeListener()
	}
	c.asm.Flush(true)
	return closeErr
}

// sessionMessages appends the heartbeat sequence reporting one completed
// session: Hello → Failed, or Hello → Joined → Progress×steps → End. Both
// the in-process Emitter and the reconnecting Sender emit exactly this
// sequence.
func sessionMessages(dst []Message, s *session.Session, progressEvery int) []Message {
	dst = append(dst, Message{Kind: KindHello, SessionID: s.ID, Epoch: s.Epoch, Attrs: s.Attrs})
	if s.QoE.JoinFailed {
		return append(dst, Message{Kind: KindFailed, SessionID: s.ID})
	}
	dst = append(dst, Message{Kind: KindJoined, SessionID: s.ID, JoinTimeMS: s.QoE.JoinTimeMS})
	steps := progressEvery
	if steps < 1 {
		steps = 1
	}
	q := s.QoE
	total := q.DurationS
	buffering := totalBuffering(q)
	for i := 1; i <= steps; i++ {
		frac := float64(i) / float64(steps)
		dst = append(dst, Message{
			Kind:            KindProgress,
			SessionID:       s.ID,
			PlayedS:         total * frac,
			BufferingS:      buffering * frac,
			WeightedKbpsSec: q.BitrateKbps * total * frac,
		})
	}
	// End carries the authoritative totals: if the connection died after the
	// last Progress frame was lost, the collector still reconstructs the
	// exact final QoE from End alone.
	return append(dst, Message{
		Kind:            KindEnd,
		SessionID:       s.ID,
		DurationS:       total,
		BufferingS:      buffering,
		WeightedKbpsSec: q.BitrateKbps * total,
	})
}

// Emitter is the client-side measurement module: it reports one session's
// lifecycle over a stream. A zero ProgressInterval sends a single progress
// report before End.
type Emitter struct {
	W *Writer
	// ProgressEvery splits playback into this many progress reports
	// (default 1).
	ProgressEvery int
	// Pace inserts a real-time delay between heartbeats (demos; zero for
	// tests and bulk replay).
	Pace time.Duration

	msgs []Message
}

// EmitSession reports a completed session as its heartbeat sequence.
func (e *Emitter) EmitSession(s *session.Session) error {
	e.msgs = sessionMessages(e.msgs[:0], s, e.ProgressEvery)
	for i := range e.msgs {
		if err := e.send(&e.msgs[i]); err != nil {
			return err
		}
	}
	return nil
}

func totalBuffering(q metric.QoE) float64 {
	// QoE stores buffering as a ratio of total session time; invert it.
	if q.BufRatio <= 0 || q.BufRatio >= 1 {
		return 0
	}
	return q.BufRatio * q.DurationS / (1 - q.BufRatio)
}

func (e *Emitter) send(m *Message) error {
	if e.Pace > 0 {
		time.Sleep(e.Pace)
	}
	return e.W.Write(m)
}
