package heartbeat

import (
	"bytes"
	"testing"

	"repro/internal/session"
)

// FuzzDecode ensures arbitrary payloads never panic the heartbeat decoder
// and that accepted messages re-encode/decode stably.
func FuzzDecode(f *testing.F) {
	for _, m := range []Message{
		{Kind: KindHello, SessionID: 1, Epoch: 3},
		{Kind: KindJoined, SessionID: 1, JoinTimeMS: 500},
		{Kind: KindProgress, SessionID: 1, PlayedS: 10, BufferingS: 1, WeightedKbpsSec: 100},
		{Kind: KindEnd, SessionID: 1, DurationS: 60},
		{Kind: KindFailed, SessionID: 1},
		{Kind: KindHello, SessionID: 2, Epoch: 4, AckMode: true},
		SessionMessage(&session.Session{ID: 7, Epoch: 2, EventIDs: session.NoEvents}),
		{Kind: KindStatus, SessionID: ControlSessionBit | 3, Status: [4]uint64{1, 2, 3, 4}},
		{Kind: KindAck, SessionID: 9},
	} {
		frame, err := Append(nil, &m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[4 : len(frame)-4]) // payload without length prefix or checksum
	}
	f.Add([]byte{})
	f.Add([]byte{9, 9, 9})
	f.Fuzz(func(t *testing.T, payload []byte) {
		var m Message
		if err := Decode(payload, &m); err != nil {
			return
		}
		// Byte-level comparison: NaN payloads round-trip exactly but defeat
		// struct equality.
		frame, err := Append(nil, &m)
		if err != nil {
			t.Fatalf("decoded message failed to encode: %v", err)
		}
		var back Message
		if err := Decode(frame[4:len(frame)-4], &back); err != nil {
			t.Fatalf("re-encoded message failed to decode: %v", err)
		}
		frame2, err := Append(nil, &back)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(frame, frame2) {
			t.Fatal("heartbeat round trip not byte-stable")
		}
	})
}
