package heartbeat

import (
	"sync"
	"sync/atomic"

	"repro/internal/session"
)

// Spool is the bounded buffer between the assembler's emit callback and a
// slow sink (the trace writer). The assembler emits while holding
// per-connection handlers' time; blocking there on a stalled disk would
// backpressure the whole accept plane. The spool instead degrades
// explicitly: when the buffer is full the session is shed and counted, so
// ingestion stays live and the loss is visible in the accounting (sessions
// delivered + shed always sums to sessions emitted).
type Spool struct {
	ch chan session.Session

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup

	accepted  atomic.Int64
	shed      atomic.Int64
	delivered atomic.Int64
}

// SpoolStats snapshots the spool's accounting.
type SpoolStats struct {
	// Accepted counts sessions buffered for delivery.
	Accepted int64
	// Shed counts sessions dropped because the buffer was full (or the
	// spool already closed). Shed + Accepted = sessions offered.
	Shed int64
	// Delivered counts sessions the sink has consumed.
	Delivered int64
}

// NewSpool starts a spool delivering to sink from a single goroutine (so a
// sink like trace.Writer needs no locking of its own for spool traffic).
// capacity bounds the in-flight buffer (default 1024).
func NewSpool(capacity int, sink func(session.Session)) *Spool {
	if capacity <= 0 {
		capacity = 1024
	}
	sp := &Spool{ch: make(chan session.Session, capacity)}
	sp.wg.Add(1)
	go sp.run(sink)
	return sp
}

// run is the delivery goroutine. It owns the sink for its whole lifetime —
// handed over at spawn rather than read back out of a field, so delivery
// never depends on later mutation of the Spool.
func (sp *Spool) run(sink func(session.Session)) {
	defer sp.wg.Done()
	for s := range sp.ch {
		sink(s)
		sp.delivered.Add(1)
	}
}

// Emit offers one session; it never blocks. A full buffer sheds the
// session and counts it.
func (sp *Spool) Emit(s session.Session) {
	if sp.tryBuffer(s) {
		sp.accepted.Add(1)
	} else {
		sp.shed.Add(1)
	}
}

// tryBuffer enqueues s unless the spool is closed or full. The lock only
// fences the closed flag against a concurrent Close (sending on a closed
// channel would panic); the channel send itself never blocks.
func (sp *Spool) tryBuffer(s session.Session) bool {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.closed {
		return false
	}
	select {
	case sp.ch <- s:
		return true
	default:
		return false
	}
}

// Close drains the buffered sessions through the sink and stops the
// delivery goroutine. Sessions offered after Close are shed.
func (sp *Spool) Close() {
	sp.mu.Lock()
	if sp.closed {
		sp.mu.Unlock()
		return
	}
	sp.closed = true
	close(sp.ch)
	sp.mu.Unlock()
	sp.wg.Wait()
}

// Stats snapshots the spool counters.
func (sp *Spool) Stats() SpoolStats {
	return SpoolStats{
		Accepted:  sp.accepted.Load(),
		Shed:      sp.shed.Load(),
		Delivered: sp.delivered.Load(),
	}
}
