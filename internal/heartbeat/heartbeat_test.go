package heartbeat

import (
	"bytes"
	"io"
	"math"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/attr"
	"repro/internal/epoch"
	"repro/internal/metric"
	"repro/internal/session"
	"repro/internal/testutil"
)

func TestMessageRoundTrip(t *testing.T) {
	msgs := []Message{
		{Kind: KindHello, SessionID: 7, Epoch: 12, Attrs: attr.Vector{1, 2, 3, 0, 1, 2, 3}},
		{Kind: KindJoined, SessionID: 7, JoinTimeMS: 1234.5},
		{Kind: KindProgress, SessionID: 7, PlayedS: 60, BufferingS: 2.5, WeightedKbpsSec: 90_000},
		{Kind: KindEnd, SessionID: 7, DurationS: 300},
		{Kind: KindFailed, SessionID: 8},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := range msgs {
		if err := w.Write(&msgs[i]); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&buf)
	for i := range msgs {
		var got Message
		if err := r.Read(&got); err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if got != msgs[i] {
			t.Errorf("message %d mismatch:\n got %+v\nwant %+v", i, got, msgs[i])
		}
	}
	var extra Message
	if err := r.Read(&extra); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestMessageProperty(t *testing.T) {
	f := func(id uint64, ep int32, a [attr.NumDims]int32, jt, played, buffering, weighted, dur float64) bool {
		if math.IsNaN(jt) || math.IsNaN(played) || math.IsNaN(buffering) || math.IsNaN(weighted) || math.IsNaN(dur) {
			return true
		}
		msgs := []Message{
			{Kind: KindHello, SessionID: id, Epoch: epochIdx(ep), Attrs: a},
			{Kind: KindJoined, SessionID: id, JoinTimeMS: jt},
			{Kind: KindProgress, SessionID: id, PlayedS: played, BufferingS: buffering, WeightedKbpsSec: weighted},
			{Kind: KindEnd, SessionID: id, DurationS: dur},
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for i := range msgs {
			if err := w.Write(&msgs[i]); err != nil {
				return false
			}
		}
		r := NewReader(&buf)
		for i := range msgs {
			var got Message
			if err := r.Read(&got); err != nil || got != msgs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	var m Message
	if err := Decode([]byte{1, 2}, &m); err == nil {
		t.Error("short payload accepted")
	}
	if err := Decode(make([]byte, 9), &m); err == nil {
		t.Error("kind 0 accepted")
	}
	payload := make([]byte, 9)
	payload[0] = byte(KindJoined) // missing f64
	if err := Decode(payload, &m); err == nil {
		t.Error("truncated Joined accepted")
	}
	if _, err := Append(nil, &Message{Kind: 99}); err == nil {
		t.Error("unknown kind encoded")
	}
	// Bad frame length.
	r := NewReader(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff}))
	if err := r.Read(&m); err == nil {
		t.Error("huge frame accepted")
	}
	r = NewReader(bytes.NewReader([]byte{0, 0, 0, 0}))
	if err := r.Read(&m); err == nil {
		t.Error("zero frame accepted")
	}
}

func sampleSession(id uint64) session.Session {
	return session.Session{
		ID:    id,
		Epoch: 4,
		Attrs: attr.Vector{3, 1, 17, 0, 1, 2, 3},
		QoE: metric.QoE{
			JoinTimeMS:  2100,
			BufRatio:    0.08,
			BitrateKbps: 1500,
			DurationS:   400,
		},
		EventIDs: session.NoEvents,
	}
}

// collect runs an emitter against an assembler over an in-memory pipe.
func collect(t *testing.T, sessions []session.Session, progressEvery int) []session.Session {
	t.Helper()
	var mu sync.Mutex
	var got []session.Session
	c := NewCollector(func(s session.Session) {
		mu.Lock()
		got = append(got, s)
		mu.Unlock()
	})
	c.Logf = t.Logf
	client, server := net.Pipe()
	done := make(chan struct{})
	go func() {
		c.ServeConn(server)
		close(done)
	}()
	em := &Emitter{W: NewWriter(client), ProgressEvery: progressEvery}
	for i := range sessions {
		if err := em.EmitSession(&sessions[i]); err != nil {
			t.Fatal(err)
		}
	}
	client.Close()
	<-done
	c.Assembler().Flush(true)
	return got
}

func TestEmitAssembleRoundTrip(t *testing.T) {
	want := sampleSession(1)
	got := collect(t, []session.Session{want}, 3)
	if len(got) != 1 {
		t.Fatalf("assembled %d sessions, want 1", len(got))
	}
	g := got[0]
	if g.ID != want.ID || g.Epoch != want.Epoch || g.Attrs != want.Attrs {
		t.Errorf("identity mismatch: %+v", g)
	}
	if math.Abs(g.QoE.JoinTimeMS-want.QoE.JoinTimeMS) > 1e-9 {
		t.Errorf("join time = %v", g.QoE.JoinTimeMS)
	}
	if math.Abs(g.QoE.BufRatio-want.QoE.BufRatio) > 1e-9 {
		t.Errorf("buf ratio = %v, want %v", g.QoE.BufRatio, want.QoE.BufRatio)
	}
	if math.Abs(g.QoE.BitrateKbps-want.QoE.BitrateKbps) > 1e-6 {
		t.Errorf("bitrate = %v", g.QoE.BitrateKbps)
	}
	if math.Abs(g.QoE.DurationS-want.QoE.DurationS) > 1e-9 {
		t.Errorf("duration = %v", g.QoE.DurationS)
	}
}

func TestFailedSessionRoundTrip(t *testing.T) {
	want := session.Session{ID: 9, Epoch: 1, QoE: metric.QoE{JoinFailed: true}, EventIDs: session.NoEvents}
	got := collect(t, []session.Session{want}, 1)
	if len(got) != 1 || !got[0].QoE.JoinFailed {
		t.Fatalf("failed session not assembled: %+v", got)
	}
}

func TestDroppedConnectionBecomesJoinFailure(t *testing.T) {
	var mu sync.Mutex
	var got []session.Session
	asm := NewAssembler(func(s session.Session) {
		mu.Lock()
		got = append(got, s)
		mu.Unlock()
	})
	hello := Message{Kind: KindHello, SessionID: 5, Epoch: 2}
	if err := asm.Handle(&hello); err != nil {
		t.Fatal(err)
	}
	if asm.Pending() != 1 {
		t.Fatalf("pending = %d", asm.Pending())
	}
	if n := asm.Flush(true); n != 1 {
		t.Fatalf("flushed %d", n)
	}
	if len(got) != 1 || !got[0].QoE.JoinFailed {
		t.Fatalf("dropped session should assemble as join failure: %+v", got)
	}
}

func TestJoinedDropFlushesWithProgress(t *testing.T) {
	var got []session.Session
	asm := NewAssembler(func(s session.Session) { got = append(got, s) })
	msgs := []Message{
		{Kind: KindHello, SessionID: 5, Epoch: 2},
		{Kind: KindJoined, SessionID: 5, JoinTimeMS: 900},
		{Kind: KindProgress, SessionID: 5, PlayedS: 120, BufferingS: 6, WeightedKbpsSec: 120 * 800},
	}
	for i := range msgs {
		if err := asm.Handle(&msgs[i]); err != nil {
			t.Fatal(err)
		}
	}
	asm.Flush(true)
	if len(got) != 1 {
		t.Fatalf("got %d sessions", len(got))
	}
	q := got[0].QoE
	if q.JoinFailed {
		t.Fatal("joined session flushed as failure")
	}
	if math.Abs(q.BitrateKbps-800) > 1e-9 || math.Abs(q.BufRatio-6.0/126) > 1e-9 {
		t.Errorf("flushed QoE = %+v", q)
	}
}

func TestAssemblerProtocolErrors(t *testing.T) {
	asm := NewAssembler(func(session.Session) {})
	if err := asm.Handle(&Message{Kind: KindJoined, SessionID: 1}); err == nil {
		t.Error("Joined without Hello accepted")
	}
	hello := Message{Kind: KindHello, SessionID: 1}
	if err := asm.Handle(&hello); err != nil {
		t.Fatal(err)
	}
	// Re-Hello with identical identity is a sender replay: idempotent.
	if err := asm.Handle(&hello); err != nil {
		t.Errorf("idempotent re-Hello rejected: %v", err)
	}
	conflicting := Message{Kind: KindHello, SessionID: 1, Epoch: 9}
	if err := asm.Handle(&conflicting); err == nil {
		t.Error("conflicting Hello accepted")
	}
	if err := asm.Handle(&Message{Kind: KindProgress, SessionID: 1}); err == nil {
		t.Error("Progress before Joined accepted")
	}
	if err := asm.Handle(&Message{Kind: KindEnd, SessionID: 1}); err == nil {
		t.Error("End before Joined accepted")
	}
	if err := asm.Handle(&Message{Kind: 77, SessionID: 1}); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestIdleTimeoutFlush(t *testing.T) {
	var got []session.Session
	asm := NewAssembler(func(s session.Session) { got = append(got, s) })
	asm.IdleTimeout = time.Minute
	base := time.Unix(1000, 0)
	asm.now = func() time.Time { return base }
	hello := Message{Kind: KindHello, SessionID: 1}
	asm.Handle(&hello)
	// Not yet stale.
	if n := asm.Flush(false); n != 0 {
		t.Fatalf("flushed %d fresh sessions", n)
	}
	asm.now = func() time.Time { return base.Add(2 * time.Minute) }
	if n := asm.Flush(false); n != 1 {
		t.Fatalf("stale flush = %d", n)
	}
	if len(got) != 1 {
		t.Fatal("session not emitted")
	}
}

func TestTCPCollectorEndToEnd(t *testing.T) {
	defer testutil.CheckGoroutineLeaks(t)()
	var mu sync.Mutex
	var got []session.Session
	c := NewCollector(func(s session.Session) {
		mu.Lock()
		got = append(got, s)
		mu.Unlock()
	})
	c.Logf = t.Logf
	if err := c.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := c.Addr().String()

	const clients = 4
	const perClient = 25
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer conn.Close()
			em := &Emitter{W: NewWriter(conn), ProgressEvery: 2}
			for i := 0; i < perClient; i++ {
				s := sampleSession(uint64(cl*1000 + i))
				if i%5 == 0 {
					s.QoE = metric.QoE{JoinFailed: true}
				}
				if err := em.EmitSession(&s); err != nil {
					t.Errorf("emit: %v", err)
					return
				}
			}
		}(cl)
	}
	wg.Wait()
	// Give handlers a moment to drain, then close (which flushes).
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == clients*perClient || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if len(got) != clients*perClient {
		t.Fatalf("assembled %d sessions, want %d", len(got), clients*perClient)
	}
	failures := 0
	for _, s := range got {
		if s.QoE.JoinFailed {
			failures++
		}
	}
	if failures != clients*perClient/5 {
		t.Errorf("failures = %d, want %d", failures, clients*perClient/5)
	}
	if err := c.Close(); err == nil {
		t.Error("double Close accepted")
	}
}

// TestCollectorShutdownNoLeak verifies CloseGrace tears down the accept
// loop and every connection handler: an idle client that never completes
// its stream must be force-closed after the grace window, leaving the
// goroutine count at its pre-test baseline.
func TestCollectorShutdownNoLeak(t *testing.T) {
	defer testutil.CheckGoroutineLeaks(t)()
	c := NewCollector(func(session.Session) {})
	c.Logf = nil
	if err := c.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", c.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send a Hello so the handler is mid-stream, then go idle.
	w := NewWriter(conn)
	if err := w.Write(&Message{Kind: KindHello, SessionID: 42}); err != nil {
		t.Fatal(err)
	}
	// Wait until the collector has actually accepted the connection so the
	// shutdown exercises the straggler path, not a race with accept.
	deadline := time.Now().Add(2 * time.Second)
	for c.Stats().ConnsAccepted == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if err := c.CloseGrace(50 * time.Millisecond); err != nil {
		t.Fatalf("CloseGrace: %v", err)
	}
}

func TestKindString(t *testing.T) {
	if KindHello.String() != "Hello" || Kind(99).String() == "" {
		t.Error("Kind names wrong")
	}
}

func epochIdx(v int32) epoch.Index { return epoch.Index(v) }

func TestCollectorStats(t *testing.T) {
	c := NewCollector(func(session.Session) {})
	c.Logf = nil
	client, server := net.Pipe()
	done := make(chan struct{})
	go func() {
		c.ServeConn(server)
		close(done)
	}()
	w := NewWriter(client)
	msgs := []Message{
		{Kind: KindHello, SessionID: 1},
		{Kind: KindJoined, SessionID: 1, JoinTimeMS: 500},
		{Kind: KindJoined, SessionID: 99}, // protocol error: no Hello
	}
	for i := range msgs {
		if err := w.Write(&msgs[i]); err != nil {
			t.Fatal(err)
		}
	}
	client.Close()
	<-done
	st := c.Stats()
	if st.FramesHandled != 3 {
		t.Errorf("frames = %d, want 3", st.FramesHandled)
	}
	if st.ProtocolErrors != 1 {
		t.Errorf("protocol errors = %d, want 1", st.ProtocolErrors)
	}
	if st.PendingSession != 1 {
		t.Errorf("pending = %d, want 1", st.PendingSession)
	}
}
