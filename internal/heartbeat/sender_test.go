package heartbeat

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/session"
	"repro/internal/testutil"
)

// fastSender returns a sender with millisecond-scale backoff so failure
// paths resolve quickly in tests.
func fastSender(dial func() (net.Conn, error), attempts int) *Sender {
	return NewSender(dial, SenderConfig{
		BaseBackoff: time.Millisecond,
		MaxBackoff:  10 * time.Millisecond,
		MaxAttempts: attempts,
		Seed:        1,
	})
}

func TestSenderSurvivesCollectorRestart(t *testing.T) {
	defer testutil.CheckGoroutineLeaks(t)()
	var mu sync.Mutex
	var got []session.Session
	emit := func(s session.Session) {
		mu.Lock()
		got = append(got, s)
		mu.Unlock()
	}

	c1 := NewCollector(emit)
	c1.Logf = nil
	if err := c1.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := c1.Addr().String()

	snd := fastSender(func() (net.Conn, error) { return net.Dial("tcp", addr) }, 200)
	snd.Logf = nil
	defer snd.Close()

	// Open a session on the first collector...
	if err := snd.Send(&Message{Kind: KindHello, SessionID: 1, Epoch: 3}); err != nil {
		t.Fatal(err)
	}
	if err := snd.Send(&Message{Kind: KindJoined, SessionID: 1, JoinTimeMS: 700}); err != nil {
		t.Fatal(err)
	}
	// ...kill it (pending session and all)...
	if err := c1.CloseGrace(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	got = got[:0] // discard the force-flushed carcass from the dead collector
	mu.Unlock()

	// ...and restart on the same address. The sender must reconnect,
	// replay Hello+Joined, and complete the session on the new instance.
	c2 := NewCollector(emit)
	c2.Logf = nil
	var lerr error
	for i := 0; i < 50; i++ { // the kernel may briefly hold the port
		if lerr = c2.Listen(addr); lerr == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if lerr != nil {
		t.Fatalf("relisten: %v", lerr)
	}
	// TCP delivers the death notice one round-trip late: the first write
	// after a peer close succeeds into the void and only a later one gets
	// the RST. The heartbeat cadence is what detects it — keep beating
	// Progress until the sender notices and replays onto the new
	// collector, exactly as a real player would.
	beatDeadline := time.Now().Add(5 * time.Second)
	for i := 1; snd.Stats().Reconnects == 0 && time.Now().Before(beatDeadline); i++ {
		_ = snd.Send(&Message{Kind: KindProgress, SessionID: 1, PlayedS: float64(i)}) // lost beats are the point
		time.Sleep(5 * time.Millisecond)
	}
	if snd.Stats().Reconnects == 0 {
		t.Fatal("sender never noticed the collector restart")
	}
	if err := snd.Send(&Message{Kind: KindEnd, SessionID: 1, DurationS: 60}); err != nil {
		t.Fatalf("End after restart: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := snd.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 {
		t.Fatalf("assembled %d sessions after restart, want 1", len(got))
	}
	s := got[0]
	if s.ID != 1 || s.Epoch != 3 || s.QoE.JoinFailed {
		t.Fatalf("restarted session assembled wrong: %+v", s)
	}
	st := snd.Stats()
	if st.Reconnects == 0 || st.Replays == 0 {
		t.Fatalf("sender never exercised the replay path: %+v", st)
	}
}

func TestSenderAbandonsAfterMaxAttempts(t *testing.T) {
	defer testutil.CheckGoroutineLeaks(t)()
	snd := fastSender(func() (net.Conn, error) {
		return nil, errors.New("synthetic dial failure")
	}, 3)
	snd.Logf = nil
	defer snd.Close()
	err := snd.Send(&Message{Kind: KindHello, SessionID: 1})
	if err == nil {
		t.Fatal("send succeeded with a dead dialer")
	}
	if st := snd.Stats(); st.Abandoned != 1 {
		t.Fatalf("abandoned = %d, want 1", st.Abandoned)
	}
}

func TestSenderCloseInterruptsBackoff(t *testing.T) {
	defer testutil.CheckGoroutineLeaks(t)()
	snd := NewSender(func() (net.Conn, error) {
		return nil, errors.New("down")
	}, SenderConfig{BaseBackoff: time.Hour, MaxBackoff: time.Hour, MaxAttempts: 5, Seed: 1})
	snd.Logf = nil
	errc := make(chan error, 1)
	go func() {
		errc <- snd.Send(&Message{Kind: KindHello, SessionID: 1})
	}()
	time.Sleep(20 * time.Millisecond) // let Send enter its hour-long backoff
	if err := snd.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if !errors.Is(err, ErrSenderClosed) {
			t.Fatalf("interrupted Send returned %v, want ErrSenderClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not interrupt the backoff sleep")
	}
	if err := snd.Send(&Message{Kind: KindHello, SessionID: 2}); !errors.Is(err, ErrSenderClosed) {
		t.Fatalf("Send after Close = %v, want ErrSenderClosed", err)
	}
}

func TestSenderEmitSessionRoundTrip(t *testing.T) {
	defer testutil.CheckGoroutineLeaks(t)()
	var mu sync.Mutex
	var got []session.Session
	c := NewCollector(func(s session.Session) {
		mu.Lock()
		got = append(got, s)
		mu.Unlock()
	})
	c.Logf = nil
	if err := c.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	snd := DialSender(c.Addr().String(), SenderConfig{Seed: 1})
	defer snd.Close()
	want := sampleSession(77)
	if err := snd.EmitSession(&want, 3); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := snd.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0].ID != want.ID || got[0].Attrs != want.Attrs {
		t.Fatalf("sender round trip got %+v", got)
	}
}

func TestAssemblerDedupsCompletedReplays(t *testing.T) {
	var got []session.Session
	asm := NewAssembler(func(s session.Session) { got = append(got, s) })
	seq := []Message{
		{Kind: KindHello, SessionID: 4, Epoch: 1},
		{Kind: KindJoined, SessionID: 4, JoinTimeMS: 300},
		{Kind: KindEnd, SessionID: 4, DurationS: 50},
	}
	for i := range seq {
		if err := asm.Handle(&seq[i]); err != nil {
			t.Fatal(err)
		}
	}
	// A reconnecting sender replays the whole prefix; none of it may
	// resurrect or re-emit the completed session, and none of it is a
	// protocol error (the connection must survive).
	for i := range seq {
		if err := asm.Handle(&seq[i]); err != nil {
			t.Fatalf("replay %v rejected: %v", seq[i].Kind, err)
		}
	}
	if len(got) != 1 {
		t.Fatalf("emitted %d sessions, want 1 (replay deduplicated)", len(got))
	}
	st := asm.Stats()
	if st.Emitted != 1 || st.ReplaysDropped == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCollectorIsolatesHandlerPanic(t *testing.T) {
	defer testutil.CheckGoroutineLeaks(t)()
	var mu sync.Mutex
	var got []session.Session
	c := NewCollector(func(s session.Session) {
		if s.ID == 13 {
			panic("poisoned session")
		}
		mu.Lock()
		got = append(got, s)
		mu.Unlock()
	})
	c.Logf = nil
	if err := c.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := c.Addr().String()

	// Connection 1 trips the panic; the process (and the collector) live.
	poisoned := session.Session{ID: 13, Epoch: 1, QoE: sampleSession(0).QoE, EventIDs: session.NoEvents}
	snd1 := DialSender(addr, SenderConfig{Seed: 1, MaxAttempts: 1, BaseBackoff: time.Millisecond})
	snd1.Logf = nil
	_ = snd1.EmitSession(&poisoned, 1) // the killed conn may surface as a send error
	snd1.Close()

	deadline := time.Now().Add(2 * time.Second)
	for c.Stats().HandlerPanics == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := c.Stats().HandlerPanics; got != 1 {
		t.Fatalf("handler panics = %d, want 1", got)
	}

	// Connection 2 proceeds normally on the same collector.
	good := sampleSession(14)
	snd2 := DialSender(addr, SenderConfig{Seed: 2})
	if err := snd2.EmitSession(&good, 1); err != nil {
		t.Fatal(err)
	}
	snd2.Close()
	deadline = time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0].ID != 14 {
		t.Fatalf("collector did not survive the panic: %+v", got)
	}
}

func TestCollectorIdleReadDeadline(t *testing.T) {
	defer testutil.CheckGoroutineLeaks(t)()
	c := NewCollector(func(session.Session) {})
	c.Logf = nil
	c.ReadIdleTimeout = 50 * time.Millisecond
	if err := c.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", c.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	w := NewWriter(conn)
	if err := w.Write(&Message{Kind: KindHello, SessionID: 8}); err != nil {
		t.Fatal(err)
	}
	// Go idle: the collector must drop the connection on its own (the
	// client never closes), then Close must not need the force path.
	deadline := time.Now().Add(2 * time.Second)
	buf := make([]byte, 1)
	_ = conn.SetReadDeadline(deadline)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("collector kept the idle connection open")
	}
	if err := c.CloseGrace(time.Second); err != nil {
		t.Fatal(err)
	}
	if fc := c.Stats().ForceClosed; fc != 0 {
		t.Fatalf("idle deadline should have closed the conn before the grace expired (force-closed %d)", fc)
	}
}
