package heartbeat

import (
	"sync"
	"testing"
	"time"

	"repro/internal/session"
	"repro/internal/testutil"
)

func TestSpoolDeliversInOrder(t *testing.T) {
	defer testutil.CheckGoroutineLeaks(t)()
	var got []uint64
	sp := NewSpool(16, func(s session.Session) { got = append(got, s.ID) })
	for i := uint64(1); i <= 10; i++ {
		sp.Emit(session.Session{ID: i})
	}
	sp.Close()
	if len(got) != 10 {
		t.Fatalf("delivered %d, want 10", len(got))
	}
	for i, id := range got {
		if id != uint64(i+1) {
			t.Fatalf("order broken at %d: %v", i, got)
		}
	}
	st := sp.Stats()
	if st.Accepted != 10 || st.Delivered != 10 || st.Shed != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSpoolShedsInsteadOfBlocking(t *testing.T) {
	defer testutil.CheckGoroutineLeaks(t)()
	release := make(chan struct{})
	var mu sync.Mutex
	delivered := 0
	sp := NewSpool(2, func(session.Session) {
		<-release // a stalled sink (disk hiccup)
		mu.Lock()
		delivered++
		mu.Unlock()
	})
	// Capacity 2 plus the one the sink goroutine has already taken: every
	// Emit must return immediately whether buffered or shed.
	const offered = 20
	start := time.Now()
	for i := 0; i < offered; i++ {
		sp.Emit(session.Session{ID: uint64(i)})
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Emit blocked for %v with a stalled sink", elapsed)
	}
	close(release)
	sp.Close()
	st := sp.Stats()
	if st.Shed == 0 {
		t.Fatal("nothing shed despite a full buffer")
	}
	if st.Accepted+st.Shed != offered {
		t.Fatalf("accepted %d + shed %d != offered %d", st.Accepted, st.Shed, offered)
	}
	if st.Delivered != st.Accepted {
		t.Fatalf("delivered %d != accepted %d after Close drain", st.Delivered, st.Accepted)
	}
	mu.Lock()
	defer mu.Unlock()
	if int64(delivered) != st.Delivered {
		t.Fatalf("sink saw %d, counter says %d", delivered, st.Delivered)
	}
}

func TestSpoolEmitAfterCloseSheds(t *testing.T) {
	defer testutil.CheckGoroutineLeaks(t)()
	sp := NewSpool(4, func(session.Session) {})
	sp.Close()
	sp.Close() // idempotent
	sp.Emit(session.Session{ID: 1})
	if st := sp.Stats(); st.Shed != 1 || st.Accepted != 0 {
		t.Fatalf("post-close stats = %+v", st)
	}
}
