package heartbeat

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
)

// HTTP transport: production measurement modules of the paper's era
// reported over HTTP(S) beacons rather than raw TCP (browser sandboxes
// allow nothing else). This file adapts the same binary frame stream to an
// HTTP POST body, so a fleet can batch many heartbeats per request while
// the assembler stays transport-agnostic.

// ContentType identifies a heartbeat batch body.
const ContentType = "application/x-vq-heartbeats"

// HTTPHandler serves POSTed heartbeat batches into an assembler.
type HTTPHandler struct {
	Asm *Assembler
	// MaxBodyBytes bounds a request body (default 1 MiB).
	MaxBodyBytes int64
	// Logf receives per-request protocol errors (nil silences).
	Logf func(format string, args ...any)
}

// ServeHTTP implements http.Handler: the body is a sequence of
// length-prefixed frames, exactly the TCP stream format.
func (h *HTTPHandler) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "POST heartbeats", http.StatusMethodNotAllowed)
		return
	}
	if ct := req.Header.Get("Content-Type"); ct != ContentType {
		http.Error(w, fmt.Sprintf("want Content-Type %s", ContentType), http.StatusUnsupportedMediaType)
		return
	}
	limit := h.MaxBodyBytes
	if limit <= 0 {
		limit = 1 << 20
	}
	r := NewReader(http.MaxBytesReader(w, req.Body, limit))
	accepted, rejected := 0, 0
	var m Message
	for {
		err := r.Read(&m)
		if err == io.EOF {
			break
		}
		if err != nil {
			if h.Logf != nil {
				h.Logf("heartbeat: http body: %v", err)
			}
			http.Error(w, "malformed heartbeat frame", http.StatusBadRequest)
			return
		}
		if err := h.Asm.Handle(&m); err != nil {
			rejected++
			if h.Logf != nil {
				h.Logf("heartbeat: %v", err)
			}
			continue
		}
		accepted++
	}
	w.Header().Set("X-Heartbeats-Accepted", fmt.Sprint(accepted))
	w.Header().Set("X-Heartbeats-Rejected", fmt.Sprint(rejected))
	w.WriteHeader(http.StatusNoContent)
}

// HTTPEmitter batches heartbeats and POSTs them to a collector endpoint.
type HTTPEmitter struct {
	// URL is the collector endpoint.
	URL string
	// Client defaults to http.DefaultClient.
	Client *http.Client
	// BatchFrames flushes automatically after this many frames (default
	// 64).
	BatchFrames int

	buf    []byte
	frames int
}

// Write buffers one heartbeat, flushing when the batch fills.
func (e *HTTPEmitter) Write(m *Message) error {
	var err error
	e.buf, err = Append(e.buf, m)
	if err != nil {
		return err
	}
	e.frames++
	batch := e.BatchFrames
	if batch <= 0 {
		batch = 64
	}
	if e.frames >= batch {
		return e.Flush()
	}
	return nil
}

// Flush POSTs the pending batch.
func (e *HTTPEmitter) Flush() error {
	if e.frames == 0 {
		return nil
	}
	client := e.Client
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequest(http.MethodPost, e.URL, bytes.NewReader(e.buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", ContentType)
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	_, _ = io.Copy(io.Discard, resp.Body) // drain for connection reuse; the status decides success
	cerr := resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("heartbeat: collector returned %s", resp.Status)
	}
	if cerr != nil {
		return cerr
	}
	e.buf = e.buf[:0]
	e.frames = 0
	return nil
}
