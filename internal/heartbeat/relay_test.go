package heartbeat

import (
	"bytes"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/metric"
	"repro/internal/session"
	"repro/internal/stats"
	"repro/internal/testutil"
)

// relaySession builds a session with awkward float payloads so the Session
// frame's bit-exactness is actually exercised.
func relaySession(id uint64) session.Session {
	s := session.Session{ID: id, Epoch: 5, EventIDs: session.NoEvents}
	s.Attrs[0], s.Attrs[3] = 2, 7
	s.QoE = metric.QoE{
		JoinTimeMS:  1234.5000000000002,
		BufRatio:    math.Nextafter(0.02, 1),
		BitrateKbps: 1712.9999999999998,
		DurationS:   3599.00000000001,
	}
	return s
}

func TestSessionFrameRoundTripsBitExact(t *testing.T) {
	s := relaySession(41)
	m := SessionMessage(&s)
	frame, err := Append(nil, &m)
	if err != nil {
		t.Fatal(err)
	}
	var back Message
	if err := Decode(frame[4:len(frame)-4], &back); err != nil {
		t.Fatal(err)
	}
	want := session.AppendBinary(nil, &s)
	got := session.AppendBinary(nil, &back.Sess)
	if !bytes.Equal(want, got) {
		t.Fatalf("session record not bit-exact through the frame:\n want %x\n got  %x", want, got)
	}
}

func TestSessionFrameRejectsIDMismatch(t *testing.T) {
	s := relaySession(41)
	m := Message{Kind: KindSession, SessionID: 99, Sess: s}
	if _, err := Append(nil, &m); err == nil {
		t.Fatal("Append accepted a session frame whose IDs disagree")
	}
	// And on the wire: a frame whose embedded record disagrees with the
	// header must not decode into a session attributed to the wrong ID.
	good := SessionMessage(&s)
	frame, err := Append(nil, &good)
	if err != nil {
		t.Fatal(err)
	}
	payload := frame[4 : len(frame)-4]
	payload[1] ^= 0x01 // corrupt the header ID only
	var back Message
	if err := Decode(payload, &back); err == nil {
		t.Fatal("Decode accepted a session frame whose IDs disagree")
	}
}

func TestAssemblerEmitsSessionFrames(t *testing.T) {
	var got []session.Session
	a := NewAssembler(func(s session.Session) { got = append(got, s) })

	s := relaySession(7)
	m := SessionMessage(&s)
	if err := a.Handle(&m); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != s {
		t.Fatalf("session frame not emitted verbatim: %+v", got)
	}
	// A replay (lost ack) must dedup, not double-count.
	if err := a.Handle(&m); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("replayed session frame emitted again (%d emits)", len(got))
	}
	if st := a.Stats(); st.ReplaysDropped != 1 || st.Emitted != 1 {
		t.Fatalf("stats after replay: %+v", st)
	}
}

func TestSessionFrameSupersedesPendingHeartbeats(t *testing.T) {
	var got []session.Session
	a := NewAssembler(func(s session.Session) { got = append(got, s) })

	s := relaySession(8)
	if err := a.Handle(&Message{Kind: KindHello, SessionID: 8, Epoch: s.Epoch, Attrs: s.Attrs}); err != nil {
		t.Fatal(err)
	}
	m := SessionMessage(&s)
	if err := a.Handle(&m); err != nil {
		t.Fatal(err)
	}
	if a.Pending() != 0 {
		t.Fatalf("full record left partial state pending (%d)", a.Pending())
	}
	if n := a.Flush(true); n != 0 {
		t.Fatalf("flush salvaged %d sessions after the record superseded them", n)
	}
	if len(got) != 1 || got[0] != s {
		t.Fatalf("emitted %+v", got)
	}
}

func TestAssemblerIgnoresControlHello(t *testing.T) {
	var got []session.Session
	a := NewAssembler(func(s session.Session) { got = append(got, s) })
	if err := a.Handle(&Message{Kind: KindHello, SessionID: ControlSessionBit | 3}); err != nil {
		t.Fatal(err)
	}
	if a.Pending() != 0 {
		t.Fatal("control Hello created a pending session")
	}
	if n := a.Flush(true); n != 0 || len(got) != 0 {
		t.Fatalf("control Hello salvaged as a phantom session (flushed %d, emitted %d)", n, len(got))
	}
	// Status and Ack frames are connection-level; the assembler drops them.
	if err := a.Handle(&Message{Kind: KindStatus, SessionID: ControlSessionBit | 3, Status: [4]uint64{1}}); err != nil {
		t.Fatal(err)
	}
	if err := a.Handle(&Message{Kind: KindAck, SessionID: 3}); err != nil {
		t.Fatal(err)
	}
}

// TestAckModeEndToEnd drives an ack-mode sender against a live collector:
// every acked kind must complete, the collector must have assembled the
// session before Send returns, and replay state must retire.
func TestAckModeEndToEnd(t *testing.T) {
	defer testutil.CheckGoroutineLeaks(t)()
	var mu sync.Mutex
	var got []session.Session
	c := NewCollector(func(s session.Session) {
		mu.Lock()
		got = append(got, s)
		mu.Unlock()
	})
	c.Logf = nil
	if err := c.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := c.Addr().String()

	snd := NewSender(func() (net.Conn, error) { return net.Dial("tcp", addr) }, SenderConfig{
		BaseBackoff: time.Millisecond,
		MaxBackoff:  10 * time.Millisecond,
		MaxAttempts: 50,
		Seed:        1,
		AckMode:     true,
		AckTimeout:  2 * time.Second,
	})
	snd.Logf = nil
	defer snd.Close()

	// Heartbeat path: End is acked, so the session is assembled by the time
	// Send returns — no drain, no sleep.
	hb := relaySession(1)
	if err := snd.EmitSession(&hb, 2); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	n := len(got)
	mu.Unlock()
	if n != 1 {
		t.Fatalf("session not assembled before acked Send returned (%d emitted)", n)
	}
	if len(snd.replay) != 0 {
		t.Fatalf("acked End left %d replay frames", len(snd.replay))
	}

	// Relay path: a Session frame through the same connection.
	rs := relaySession(2)
	m := SessionMessage(&rs)
	if err := snd.Send(&m); err != nil {
		t.Fatal(err)
	}
	// Failed path.
	if err := snd.Send(&Message{Kind: KindHello, SessionID: 3, Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	if err := snd.Send(&Message{Kind: KindFailed, SessionID: 3}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	n = len(got)
	mu.Unlock()
	if n != 3 {
		t.Fatalf("want 3 assembled sessions before returns, got %d", n)
	}
	if err := snd.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.CloseGrace(time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestAckModeRetriesUnacked proves Send does not report success for an acked
// kind until an ack arrives: a server that swallows frames without acking
// forces abandonment, and one that acks only the retry lets Send succeed.
func TestAckModeRetriesUnacked(t *testing.T) {
	defer testutil.CheckGoroutineLeaks(t)()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	ends := make(chan uint64, 16)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		first := true
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func(conn net.Conn, ack bool) {
				defer wg.Done()
				defer conn.Close()
				r, w := NewReader(conn), NewWriter(conn)
				var m Message
				for {
					if err := r.Read(&m); err != nil {
						return
					}
					if m.Kind != KindEnd {
						continue
					}
					ends <- m.SessionID
					if ack {
						_ = w.Write(&Message{Kind: KindAck, SessionID: m.SessionID})
					}
				}
			}(conn, !first)
			first = false
		}
	}()

	snd := NewSender(func() (net.Conn, error) { return net.Dial("tcp", ln.Addr().String()) }, SenderConfig{
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
		MaxAttempts: 8,
		Seed:        1,
		AckMode:     true,
		AckTimeout:  50 * time.Millisecond,
	})
	snd.Logf = nil
	defer snd.Close()

	if err := snd.Send(&Message{Kind: KindHello, SessionID: 9, Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	if err := snd.Send(&Message{Kind: KindJoined, SessionID: 9, JoinTimeMS: 1}); err != nil {
		t.Fatal(err)
	}
	// First connection never acks: the write "succeeds" into the socket but
	// Send must not — it reconnects and the second connection's ack lands.
	if err := snd.Send(&Message{Kind: KindEnd, SessionID: 9, DurationS: 5}); err != nil {
		t.Fatal(err)
	}
	// The End was delivered at least twice: once unacknowledged, once acked.
	seen := 0
	for done := false; !done; {
		select {
		case id := <-ends:
			if id != 9 {
				t.Fatalf("unexpected End for session %d", id)
			}
			seen++
		default:
			done = true
		}
	}
	if seen < 2 {
		t.Fatalf("want ≥2 End deliveries (unacked + acked retry), saw %d", seen)
	}
	if st := snd.Stats(); st.Reconnects == 0 {
		t.Fatalf("expected an ack-timeout reconnect, stats %+v", st)
	}
	if err := snd.Close(); err != nil {
		t.Fatal(err)
	}
	_ = ln.Close()
	wg.Wait()
}

// TestSenderJitterStreams pins satellite 1: an injected RNG wins over Seed,
// equal seeds reproduce the stream, and two zero-seed senders must NOT share
// one — the lockstep thundering herd the old global default produced.
func TestSenderJitterStreams(t *testing.T) {
	draw := func(s *Sender, n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = s.rng.Float64()
		}
		return out
	}
	dial := func() (net.Conn, error) { return nil, net.ErrClosed }

	a := NewSender(dial, SenderConfig{Seed: 42})
	b := NewSender(dial, SenderConfig{Seed: 42})
	if da, db := draw(a, 8), draw(b, 8); !equalF64(da, db) {
		t.Fatal("equal seeds produced different jitter streams")
	}

	inj := stats.NewRNG(7).Split(0x1234)
	c := NewSender(dial, SenderConfig{Seed: 42, Rand: inj})
	if c.rng != inj {
		t.Fatal("injected Rand did not win over Seed")
	}

	z1 := NewSender(dial, SenderConfig{})
	z2 := NewSender(dial, SenderConfig{})
	if equalF64(draw(z1, 8), draw(z2, 8)) {
		t.Fatal("two zero-seed senders share one jitter stream (lockstep herd)")
	}
}

func equalF64(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
