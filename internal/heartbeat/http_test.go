package heartbeat

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/session"
)

func TestHTTPTransportRoundTrip(t *testing.T) {
	var mu sync.Mutex
	var got []session.Session
	asm := NewAssembler(func(s session.Session) {
		mu.Lock()
		got = append(got, s)
		mu.Unlock()
	})
	srv := httptest.NewServer(&HTTPHandler{Asm: asm, Logf: t.Logf})
	defer srv.Close()

	em := &HTTPEmitter{URL: srv.URL, BatchFrames: 4}
	want := sampleSession(5)
	// Route the session's heartbeat sequence through the HTTP batcher.
	seq := &Emitter{W: NewWriter(writerFunc(func(p []byte) (int, error) {
		var m Message
		if err := Decode(p[4:], &m); err != nil {
			return 0, err
		}
		return len(p), em.Write(&m)
	})), ProgressEvery: 2}
	if err := seq.EmitSession(&want); err != nil {
		t.Fatal(err)
	}
	if err := em.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("assembled %d sessions, want 1", len(got))
	}
	if got[0].ID != want.ID || got[0].QoE.JoinFailed {
		t.Errorf("assembled session = %+v", got[0])
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestHTTPHandlerRejections(t *testing.T) {
	asm := NewAssembler(func(session.Session) {})
	srv := httptest.NewServer(&HTTPHandler{Asm: asm})
	defer srv.Close()

	// Wrong method.
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d", resp.StatusCode)
	}
	// Wrong content type.
	resp, err = http.Post(srv.URL, "text/plain", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Errorf("bad content type status = %d", resp.StatusCode)
	}
	// Malformed frame.
	resp, err = http.Post(srv.URL, ContentType, bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff}))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed frame status = %d", resp.StatusCode)
	}
}

func TestHTTPEmitterBatching(t *testing.T) {
	posts := 0
	asm := NewAssembler(func(session.Session) {})
	h := &HTTPHandler{Asm: asm}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		posts++
		h.ServeHTTP(w, r)
	}))
	defer srv.Close()

	em := &HTTPEmitter{URL: srv.URL, BatchFrames: 3}
	for i := 0; i < 7; i++ {
		m := Message{Kind: KindHello, SessionID: uint64(100 + i)}
		if err := em.Write(&m); err != nil {
			t.Fatal(err)
		}
	}
	if posts != 2 { // two full batches of 3; one frame pending
		t.Errorf("posts = %d, want 2 before flush", posts)
	}
	if err := em.Flush(); err != nil {
		t.Fatal(err)
	}
	if posts != 3 {
		t.Errorf("posts = %d, want 3 after flush", posts)
	}
	if err := em.Flush(); err != nil {
		t.Error("empty flush should be a no-op, got", err)
	}
	if asm.Pending() != 7 {
		t.Errorf("pending sessions = %d, want 7 Hellos", asm.Pending())
	}
}
