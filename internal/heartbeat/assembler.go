package heartbeat

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/metric"
	"repro/internal/session"
)

// Assembler folds a heartbeat stream into completed sessions. It is safe
// for concurrent use by multiple connection handlers.
type Assembler struct {
	mu      sync.Mutex
	pending map[uint64]*pendingSession
	emit    func(session.Session)
	// IdleTimeout flushes sessions that stop reporting (Flush enforces
	// it); zero disables time-based flushing.
	IdleTimeout time.Duration
	now         func() time.Time
}

type pendingSession struct {
	s        session.Session
	joined   bool
	progress Message
	lastSeen time.Time
}

// NewAssembler builds an assembler delivering completed sessions to emit.
func NewAssembler(emit func(session.Session)) *Assembler {
	return &Assembler{
		pending:     make(map[uint64]*pendingSession),
		emit:        emit,
		IdleTimeout: 2 * time.Minute,
		now:         time.Now,
	}
}

// Handle processes one heartbeat.
func (a *Assembler) Handle(m *Message) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch m.Kind {
	case KindHello:
		if _, dup := a.pending[m.SessionID]; dup {
			return fmt.Errorf("heartbeat: duplicate Hello for session %d", m.SessionID)
		}
		a.pending[m.SessionID] = &pendingSession{
			s: session.Session{
				ID:       m.SessionID,
				Epoch:    m.Epoch,
				Attrs:    m.Attrs,
				EventIDs: session.NoEvents,
			},
			lastSeen: a.now(),
		}
	case KindJoined:
		p, err := a.get(m.SessionID)
		if err != nil {
			return err
		}
		p.joined = true
		p.s.QoE.JoinTimeMS = m.JoinTimeMS
		p.lastSeen = a.now()
	case KindProgress:
		p, err := a.get(m.SessionID)
		if err != nil {
			return err
		}
		if !p.joined {
			return fmt.Errorf("heartbeat: Progress before Joined for session %d", m.SessionID)
		}
		p.progress = *m
		p.lastSeen = a.now()
	case KindEnd:
		p, err := a.get(m.SessionID)
		if err != nil {
			return err
		}
		if !p.joined {
			return fmt.Errorf("heartbeat: End before Joined for session %d", m.SessionID)
		}
		delete(a.pending, m.SessionID)
		a.finishLocked(p, m.DurationS)
	case KindFailed:
		p, err := a.get(m.SessionID)
		if err != nil {
			return err
		}
		delete(a.pending, m.SessionID)
		p.s.QoE = metric.QoE{JoinFailed: true}
		a.emit(p.s)
	default:
		return fmt.Errorf("heartbeat: unknown kind %v", m.Kind)
	}
	return nil
}

func (a *Assembler) get(id uint64) (*pendingSession, error) {
	p, ok := a.pending[id]
	if !ok {
		return nil, fmt.Errorf("heartbeat: session %d has no Hello", id)
	}
	return p, nil
}

// finishLocked completes a joined session from its last progress report.
func (a *Assembler) finishLocked(p *pendingSession, durationS float64) {
	q := &p.s.QoE
	played := p.progress.PlayedS
	if durationS > played {
		played = durationS
	}
	total := played + p.progress.BufferingS
	if total > 0 {
		q.BufRatio = p.progress.BufferingS / total
	}
	if played > 0 {
		q.BitrateKbps = p.progress.WeightedKbpsSec / played
	}
	q.DurationS = played
	a.emit(p.s)
}

// Pending reports the number of in-flight sessions.
func (a *Assembler) Pending() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.pending)
}

// Flush force-completes stale sessions: joined sessions finish with their
// last progress report; sessions that never reported a player status
// assemble as join failures (paper §2 footnote 1). With force set, every
// pending session flushes regardless of idle time.
func (a *Assembler) Flush(force bool) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	cutoff := a.now().Add(-a.IdleTimeout)
	for id, p := range a.pending {
		if !force && a.IdleTimeout > 0 && p.lastSeen.After(cutoff) {
			continue
		}
		delete(a.pending, id)
		n++
		if p.joined {
			a.finishLocked(p, p.progress.PlayedS)
		} else {
			p.s.QoE = metric.QoE{JoinFailed: true}
			a.emit(p.s)
		}
	}
	return n
}
