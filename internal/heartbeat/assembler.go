package heartbeat

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/metric"
	"repro/internal/session"
)

// recentCompletedCap bounds the completed-session dedup window. Reconnecting
// senders replay a session's Hello (and Joined) after a connection loss; if
// the session already completed on the collector side, the replay must not
// resurrect it as a phantom — the window absorbs replays arriving up to this
// many completions late.
const recentCompletedCap = 4096

// Assembler folds a heartbeat stream into completed sessions. It is safe
// for concurrent use by multiple connection handlers.
type Assembler struct {
	mu      sync.Mutex
	pending map[uint64]*pendingSession
	emit    func(session.Session)
	// IdleTimeout flushes sessions that stop reporting (Flush enforces
	// it); zero disables time-based flushing.
	IdleTimeout time.Duration
	now         func() time.Time

	// Completed-session dedup: a bounded FIFO window of session IDs that
	// have already been emitted. Replayed heartbeats for them are dropped
	// silently (counted), never assembled twice.
	recent  map[uint64]struct{}
	recentQ []uint64

	emitted       int64
	salvaged      int64
	replaysDroppd int64
}

// AssemblerStats snapshots the assembler's accounting counters.
type AssemblerStats struct {
	// Pending is the number of in-flight sessions.
	Pending int
	// Emitted counts every session delivered to emit (completed, flushed,
	// or salvaged).
	Emitted int64
	// Salvaged counts the subset of Emitted that never reported a player
	// status and were assembled as join failures (paper §2 footnote 1).
	Salvaged int64
	// ReplaysDropped counts heartbeats for already-completed sessions
	// (sender replays after reconnect) that were deduplicated.
	ReplaysDropped int64
}

type pendingSession struct {
	s        session.Session
	joined   bool
	progress Message
	lastSeen time.Time
}

// NewAssembler builds an assembler delivering completed sessions to emit.
func NewAssembler(emit func(session.Session)) *Assembler {
	return &Assembler{
		pending:     make(map[uint64]*pendingSession),
		emit:        emit,
		IdleTimeout: 2 * time.Minute,
		now:         time.Now,
		recent:      make(map[uint64]struct{}),
	}
}

// Handle processes one heartbeat.
func (a *Assembler) Handle(m *Message) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch m.Kind {
	case KindHello:
		if m.SessionID&ControlSessionBit != 0 {
			// Control-plane identity (a relay node announcing itself), not a
			// player session — never assemble, never salvage as a phantom
			// join failure. Connection-level handling happens in the serving
			// layer; the assembler just refuses to track it.
			return nil
		}
		if p, dup := a.pending[m.SessionID]; dup {
			// Re-Hello: a sender replaying its session after reconnect.
			// Identical identity refreshes the session; a conflicting one
			// is a real protocol violation (two players sharing an ID).
			if p.s.Epoch == m.Epoch && p.s.Attrs == m.Attrs {
				p.lastSeen = a.now()
				return nil
			}
			return fmt.Errorf("heartbeat: conflicting Hello for session %d", m.SessionID)
		}
		if _, done := a.recent[m.SessionID]; done {
			// The session already completed (possibly salvaged while its
			// sender was backing off); drop the replay, don't resurrect.
			a.replaysDroppd++
			return nil
		}
		a.pending[m.SessionID] = &pendingSession{
			s: session.Session{
				ID:       m.SessionID,
				Epoch:    m.Epoch,
				Attrs:    m.Attrs,
				EventIDs: session.NoEvents,
			},
			lastSeen: a.now(),
		}
	case KindJoined:
		p, err := a.get(m.SessionID)
		if err != nil {
			return err
		}
		if p == nil {
			return nil
		}
		p.joined = true
		p.s.QoE.JoinTimeMS = m.JoinTimeMS
		p.lastSeen = a.now()
	case KindProgress:
		p, err := a.get(m.SessionID)
		if err != nil {
			return err
		}
		if p == nil {
			return nil
		}
		if !p.joined {
			return fmt.Errorf("heartbeat: Progress before Joined for session %d", m.SessionID)
		}
		p.progress = *m
		p.lastSeen = a.now()
	case KindEnd:
		p, err := a.get(m.SessionID)
		if err != nil {
			return err
		}
		if p == nil {
			return nil
		}
		if !p.joined {
			return fmt.Errorf("heartbeat: End before Joined for session %d", m.SessionID)
		}
		delete(a.pending, m.SessionID)
		a.finishLocked(p, m.DurationS, m.BufferingS, m.WeightedKbpsSec)
	case KindFailed:
		p, err := a.get(m.SessionID)
		if err != nil {
			return err
		}
		if p == nil {
			return nil
		}
		delete(a.pending, m.SessionID)
		p.s.QoE = metric.QoE{JoinFailed: true}
		a.emitLocked(p.s)
	case KindSession:
		// A relay forwarding an already-assembled record: emit it verbatim.
		// Duplicates (sender replay after a lost ack) dedup exactly like
		// completed heartbeat sessions; a full record supersedes any partial
		// heartbeat state accumulated under the same ID.
		if _, done := a.recent[m.SessionID]; done {
			a.replaysDroppd++
			return nil
		}
		delete(a.pending, m.SessionID)
		a.emitLocked(m.Sess)
	case KindStatus, KindAck:
		// Connection-level frames; nothing to assemble.
	default:
		return fmt.Errorf("heartbeat: unknown kind %v", m.Kind)
	}
	return nil
}

// get resolves a non-Hello heartbeat's pending session. A nil, nil return
// means the heartbeat is a replay for an already-completed session and must
// be dropped silently.
func (a *Assembler) get(id uint64) (*pendingSession, error) {
	p, ok := a.pending[id]
	if !ok {
		if _, done := a.recent[id]; done {
			a.replaysDroppd++
			return nil, nil
		}
		return nil, fmt.Errorf("heartbeat: session %d has no Hello", id)
	}
	return p, nil
}

// emitLocked delivers one completed session and records its ID in the
// bounded dedup window.
func (a *Assembler) emitLocked(s session.Session) {
	a.emitted++
	if _, dup := a.recent[s.ID]; !dup {
		a.recent[s.ID] = struct{}{}
		a.recentQ = append(a.recentQ, s.ID)
		if len(a.recentQ) > recentCompletedCap {
			evict := a.recentQ[0]
			a.recentQ = a.recentQ[1:]
			delete(a.recent, evict)
		}
	}
	a.emit(s)
}

// finishLocked completes a joined session from the monotone max of its last
// progress report and the End frame's final totals. The counters are
// cumulative and nondecreasing, so max reconstructs the true final state
// even when the last Progress frame was lost with a dropped connection and
// only the replayed End made it through — without it, such a session would
// finish with stale buffering/bitrate totals and could flip problem bits
// nondeterministically.
func (a *Assembler) finishLocked(p *pendingSession, durationS, bufferingS, weightedKbpsSec float64) {
	q := &p.s.QoE
	played := p.progress.PlayedS
	if durationS > played {
		played = durationS
	}
	buffering := p.progress.BufferingS
	if bufferingS > buffering {
		buffering = bufferingS
	}
	weighted := p.progress.WeightedKbpsSec
	if weightedKbpsSec > weighted {
		weighted = weightedKbpsSec
	}
	total := played + buffering
	if total > 0 {
		q.BufRatio = buffering / total
	}
	if played > 0 {
		q.BitrateKbps = weighted / played
	}
	q.DurationS = played
	a.emitLocked(p.s)
}

// Pending reports the number of in-flight sessions.
func (a *Assembler) Pending() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.pending)
}

// Stats snapshots the assembler counters.
func (a *Assembler) Stats() AssemblerStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AssemblerStats{
		Pending:        len(a.pending),
		Emitted:        a.emitted,
		Salvaged:       a.salvaged,
		ReplaysDropped: a.replaysDroppd,
	}
}

// Flush force-completes stale sessions: joined sessions finish with their
// last progress report; sessions that never reported a player status
// assemble as join failures (paper §2 footnote 1) and count as salvaged.
// With force set, every pending session flushes regardless of idle time.
func (a *Assembler) Flush(force bool) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	cutoff := a.now().Add(-a.IdleTimeout)
	for id, p := range a.pending {
		if !force && a.IdleTimeout > 0 && p.lastSeen.After(cutoff) {
			continue
		}
		delete(a.pending, id)
		n++
		if p.joined {
			a.finishLocked(p, p.progress.PlayedS, 0, 0)
		} else {
			a.salvaged++
			p.s.QoE = metric.QoE{JoinFailed: true}
			a.emitLocked(p.s)
		}
	}
	return n
}
