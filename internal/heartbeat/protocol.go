// Package heartbeat reproduces the paper's measurement substrate: the
// client-side module embedded in video players that reports player status
// over the network, and the collector that assembles those heartbeats into
// the per-session records the analysis consumes. Join failures exist in the
// dataset precisely because this channel reports player status even when no
// video ever renders (paper §2, footnote 1).
//
// The wire protocol is length-prefixed binary over any stream transport
// (TCP in production, net.Pipe in tests). Every frame carries a CRC-32C of
// its payload so in-flight corruption is detected at the framing layer —
// a corrupt frame can drop a connection, but it can never misparse into a
// phantom session:
//
//	frame  := u32 payload-length, payload, u32 crc32c(payload)
//	payload:= u8 type, u64 session-id, fields…
//
//	Hello    (1): i32 epoch, 7×i32 attributes, u8 flags (optional; bit 0: ack mode)
//	Joined   (2): f64 join-time-ms
//	Progress (3): f64 played-s, f64 buffering-s, f64 Σ(bitrate×played)-kbps·s
//	End      (4): f64 duration-s, f64 buffering-s, f64 Σ(bitrate×played)-kbps·s
//	              (authoritative final totals; the two trailing fields are
//	              absent in frames from old encoders and decode as zero)
//	Failed   (5): —
//	Session  (6): fixed-width session record (see session.AppendBinary)
//	Status   (7): 4×u64 cumulative counters
//	Ack      (8): — (collector→sender delivery acknowledgment)
//
// A session is Hello → (Joined → Progress* → End | Failed). Sessions whose
// connection drops after Hello without a player status are assembled as
// join failures — the paper's semantics for players that never reported
// playback.
//
// Session frames are the relay tier's format: one frame carries one
// fully-assembled session record bit-exactly (the QoE floats round-trip
// through math.Float64bits), so an edge collector can forward sessions to a
// central aggregator without re-deriving QoE from heartbeat arithmetic.
// Status frames carry a relay node's cumulative loss counters for coverage
// accounting. Ack frames flow the other way: a collector acknowledges End,
// Failed, and Session frames on connections whose Hello asked for ack mode,
// so a sender retires its replay state only once the session is assembled —
// the property that makes exact session conservation provable when a
// collector process is killed with frames still in its socket buffers.
package heartbeat

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/attr"
	"repro/internal/epoch"
	"repro/internal/session"
)

// crcTable is the Castagnoli polynomial, hardware-accelerated on the
// platforms the collector runs on.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Kind identifies a heartbeat message type.
type Kind uint8

// Message kinds.
const (
	KindHello Kind = iota + 1
	KindJoined
	KindProgress
	KindEnd
	KindFailed
	// KindSession carries one fully-assembled session record in a single
	// frame — the idempotent unit of node→aggregator relay transfer.
	KindSession
	// KindStatus carries cumulative node counters (relay/spool loss
	// accounting); index semantics belong to the relay tier.
	KindStatus
	// KindAck acknowledges delivery of an End, Failed, or Session frame on
	// ack-mode connections.
	KindAck
)

// ControlSessionBit marks a session ID as a control-plane identity — a
// relay node announcing itself to an aggregator — rather than a player
// session. Hellos carrying it register connection context but must never
// assemble into a session record; the assembler drops them on the floor so
// a node identity cannot surface as a phantom join failure.
const ControlSessionBit uint64 = 1 << 63

var kindNames = map[Kind]string{
	KindHello: "Hello", KindJoined: "Joined", KindProgress: "Progress",
	KindEnd: "End", KindFailed: "Failed",
	KindSession: "Session", KindStatus: "Status", KindAck: "Ack",
}

// String returns the message kind name.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Message is one heartbeat.
type Message struct {
	Kind      Kind
	SessionID uint64

	// Hello fields. AckMode asks the collector to acknowledge End, Failed,
	// and Session frames on this connection (see KindAck).
	Epoch   epoch.Index
	Attrs   attr.Vector
	AckMode bool

	// Joined field.
	JoinTimeMS float64

	// Progress fields (cumulative since join).
	PlayedS         float64
	BufferingS      float64
	WeightedKbpsSec float64

	// End field; the frame's final buffering/weighted-bitrate totals ride
	// the cumulative Progress fields above.
	DurationS float64

	// Session field: the fully-assembled record (Sess.ID must equal
	// SessionID; both codecs enforce it).
	Sess session.Session

	// Status fields: cumulative counters whose index semantics belong to
	// the relay tier (see internal/ingest).
	Status [4]uint64
}

// SessionMessage wraps a completed session as a relay frame.
func SessionMessage(s *session.Session) Message {
	return Message{Kind: KindSession, SessionID: s.ID, Sess: *s}
}

// MaxFrameSize bounds a legal frame, defending the collector against
// corrupt or hostile length prefixes.
const MaxFrameSize = 256

// Append encodes the message as one frame appended to dst.
func Append(dst []byte, m *Message) ([]byte, error) {
	var payload [MaxFrameSize]byte
	payload[0] = byte(m.Kind)
	binary.LittleEndian.PutUint64(payload[1:], m.SessionID)
	n := 9
	put := func(v float64) {
		binary.LittleEndian.PutUint64(payload[n:], math.Float64bits(v))
		n += 8
	}
	switch m.Kind {
	case KindHello:
		binary.LittleEndian.PutUint32(payload[n:], uint32(m.Epoch))
		n += 4
		for i := 0; i < attr.NumDims; i++ {
			binary.LittleEndian.PutUint32(payload[n:], uint32(m.Attrs[i]))
			n += 4
		}
		// Trailing flags byte; old decoders ignore payload past the attrs.
		if m.AckMode {
			payload[n] = 1
		}
		n++
	case KindJoined:
		put(m.JoinTimeMS)
	case KindProgress:
		put(m.PlayedS)
		put(m.BufferingS)
		put(m.WeightedKbpsSec)
	case KindEnd:
		put(m.DurationS)
		put(m.BufferingS)
		put(m.WeightedKbpsSec)
	case KindFailed:
	case KindSession:
		if m.Sess.ID != m.SessionID {
			return nil, fmt.Errorf("heartbeat: session frame ID %d != record ID %d", m.SessionID, m.Sess.ID)
		}
		n = len(session.AppendBinary(payload[:n], &m.Sess))
	case KindStatus:
		for _, v := range m.Status {
			binary.LittleEndian.PutUint64(payload[n:], v)
			n += 8
		}
	case KindAck:
	default:
		return nil, fmt.Errorf("heartbeat: unknown kind %v", m.Kind)
	}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(n))
	dst = append(dst, lenBuf[:]...)
	dst = append(dst, payload[:n]...)
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc32.Checksum(payload[:n], crcTable))
	return append(dst, crcBuf[:]...), nil
}

// Decode parses one payload (without the length prefix).
func Decode(payload []byte, m *Message) error {
	if len(payload) < 9 {
		return fmt.Errorf("heartbeat: payload too short (%d bytes)", len(payload))
	}
	*m = Message{
		Kind:      Kind(payload[0]),
		SessionID: binary.LittleEndian.Uint64(payload[1:]),
	}
	rest := payload[9:]
	need := func(n int) error {
		if len(rest) < n {
			return fmt.Errorf("heartbeat: %v payload truncated (%d bytes)", m.Kind, len(payload))
		}
		return nil
	}
	f64 := func() float64 {
		v := math.Float64frombits(binary.LittleEndian.Uint64(rest))
		rest = rest[8:]
		return v
	}
	switch m.Kind {
	case KindHello:
		if err := need(4 + 4*attr.NumDims); err != nil {
			return err
		}
		m.Epoch = epoch.Index(int32(binary.LittleEndian.Uint32(rest)))
		rest = rest[4:]
		for i := 0; i < attr.NumDims; i++ {
			m.Attrs[i] = int32(binary.LittleEndian.Uint32(rest))
			rest = rest[4:]
		}
		// Optional trailing flags byte; absent in frames from old encoders.
		if len(rest) > 0 {
			m.AckMode = rest[0]&1 != 0
		}
	case KindJoined:
		if err := need(8); err != nil {
			return err
		}
		m.JoinTimeMS = f64()
	case KindProgress:
		if err := need(24); err != nil {
			return err
		}
		m.PlayedS = f64()
		m.BufferingS = f64()
		m.WeightedKbpsSec = f64()
	case KindEnd:
		if err := need(8); err != nil {
			return err
		}
		m.DurationS = f64()
		// Optional final totals; absent in frames from old encoders. Without
		// them the assembler falls back to the last Progress report alone.
		if len(rest) >= 16 {
			m.BufferingS = f64()
			m.WeightedKbpsSec = f64()
		}
	case KindFailed:
	case KindSession:
		if err := need(session.BinarySize()); err != nil {
			return err
		}
		if _, err := session.DecodeBinary(rest, &m.Sess); err != nil {
			return fmt.Errorf("heartbeat: session frame: %w", err)
		}
		if m.Sess.ID != m.SessionID {
			return fmt.Errorf("heartbeat: session frame ID %d != record ID %d", m.SessionID, m.Sess.ID)
		}
	case KindStatus:
		if err := need(8 * len(m.Status)); err != nil {
			return err
		}
		for i := range m.Status {
			m.Status[i] = binary.LittleEndian.Uint64(rest)
			rest = rest[8:]
		}
	case KindAck:
	default:
		return fmt.Errorf("heartbeat: unknown kind %d", payload[0])
	}
	return nil
}

// Writer frames messages onto a stream.
type Writer struct {
	w   io.Writer
	buf []byte
}

// NewWriter wraps a stream.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Write sends one message.
func (hw *Writer) Write(m *Message) error {
	var err error
	hw.buf, err = Append(hw.buf[:0], m)
	if err != nil {
		return err
	}
	_, err = hw.w.Write(hw.buf)
	return err
}

// Reader de-frames messages from a stream.
type Reader struct {
	r   io.Reader
	buf []byte
}

// NewReader wraps a stream.
func NewReader(r io.Reader) *Reader { return &Reader{r: r, buf: make([]byte, MaxFrameSize)} }

// Read receives the next message. io.EOF marks a clean end of stream.
func (hr *Reader) Read(m *Message) error {
	var lenBuf [4]byte
	if _, err := io.ReadFull(hr.r, lenBuf[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("heartbeat: reading frame length: %w", err)
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n == 0 || n > MaxFrameSize {
		return fmt.Errorf("heartbeat: implausible frame length %d", n)
	}
	if _, err := io.ReadFull(hr.r, hr.buf[:n]); err != nil {
		return fmt.Errorf("heartbeat: reading frame body: %w", err)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(hr.r, crcBuf[:]); err != nil {
		return fmt.Errorf("heartbeat: reading frame checksum: %w", err)
	}
	if got, want := crc32.Checksum(hr.buf[:n], crcTable), binary.LittleEndian.Uint32(crcBuf[:]); got != want {
		return fmt.Errorf("heartbeat: frame checksum mismatch (%#x != %#x): corrupt stream", got, want)
	}
	return Decode(hr.buf[:n], m)
}
