// Package eps centralises tolerant floating-point comparison for the
// analysis pipeline. Every threshold the paper's methodology turns on — the
// 5% buffering ratio, the 700 kbps bitrate floor, the 1.5× global
// problem-ratio factor — is derived arithmetically, so values that are
// mathematically on a boundary can sit one ulp off it. Exact ==/</> at
// those boundaries silently misclassifies sessions and clusters; the
// floatcmp lint rule forbids direct float equality, and this package is the
// sanctioned replacement.
//
// Eq uses a relative tolerance scaled to the operands' magnitude, with an
// absolute floor near zero (relative tolerance is meaningless there).
package eps

import "math"

const (
	// Rel is the relative comparison tolerance: roughly a thousand ulps at
	// unit scale, far above accumulated rounding noise and far below any
	// physically meaningful metric difference.
	Rel = 1e-12
	// Abs is the absolute floor used when both operands are near zero.
	Abs = 1e-12
)

// Eq reports whether a and b are equal within tolerance.
func Eq(a, b float64) bool {
	if a == b { //vqlint:ignore floatcmp fast path; the tolerance test below covers inexact inputs
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= Abs || diff <= Rel*scale
}

// Zero reports whether a is zero within the absolute tolerance.
func Zero(a float64) bool { return math.Abs(a) <= Abs }

// Div returns a/b, or 0 when b is zero within tolerance. It is the
// sanctioned fallback for metric ratios whose denominator can be starved
// (an epoch with no sessions, a cluster with no traffic): a share of an
// empty population is zero, not NaN. Use an explicit zero test instead
// when the caller must distinguish "empty" from "ratio is zero" — the
// ratioguard lint rule accepts either form.
func Div(a, b float64) float64 {
	if Zero(b) {
		return 0
	}
	return a / b
}

// GT reports a > b beyond tolerance: boundary values (a ≈ b) are not
// greater. This is the comparison behind "exceeds the threshold" rules —
// a session at exactly the 5% buffering ratio is not a problem session.
func GT(a, b float64) bool { return a > b && !Eq(a, b) }

// GTE reports a > b or a ≈ b: boundary values pass. This is the comparison
// behind "at least the threshold" rules — a cluster at exactly 1.5× the
// global ratio is a problem cluster even if the product is one ulp low.
func GTE(a, b float64) bool { return a > b || Eq(a, b) }

// LT reports a < b beyond tolerance.
func LT(a, b float64) bool { return a < b && !Eq(a, b) }

// LTE reports a < b or a ≈ b.
func LTE(a, b float64) bool { return a < b || Eq(a, b) }
