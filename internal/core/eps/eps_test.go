package eps

import (
	"math"
	"testing"
)

func TestEq(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{0, 0, true},
		{1, 1, true},
		{0.05, 0.05, true},
		// One ulp apart: must compare equal.
		{0.05, math.Nextafter(0.05, 1), true},
		{700, math.Nextafter(700, 0), true},
		// Arithmetic that famously misses exactness.
		{0.1 + 0.2, 0.3, true},
		{0.05 * 3, 0.15, true},
		// Near zero the absolute floor applies.
		{0, 1e-13, true},
		{0, 1e-9, false},
		// Physically meaningful differences stay different.
		{0.05, 0.0501, false},
		{700, 699.9, false},
		{1.5, 1.49, false},
	}
	for _, c := range cases {
		if got := Eq(c.a, c.b); got != c.want {
			t.Errorf("Eq(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestZero(t *testing.T) {
	if !Zero(0) || !Zero(1e-13) || !Zero(-1e-13) {
		t.Error("Zero should accept values within the absolute floor")
	}
	if Zero(1e-6) || Zero(-1e-6) {
		t.Error("Zero should reject clearly nonzero values")
	}
}

func TestDiv(t *testing.T) {
	cases := []struct {
		a, b, want float64
	}{
		{6, 3, 2},
		{1, 4, 0.25},
		{0, 5, 0},
		// Starved denominators: the share of an empty population is zero.
		{7, 0, 0},
		{7, 1e-13, 0},
		{-3, 0, 0},
	}
	for _, c := range cases {
		if got := Div(c.a, c.b); got != c.want { //vqlint:ignore floatcmp exact expected values by construction
			t.Errorf("Div(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestOrderedComparisons pins the semantics the classifier depends on: GT is
// "exceeds the threshold" (boundary excluded), GTE is "at least the
// threshold" (boundary included), each tolerant of one-ulp noise.
func TestOrderedComparisons(t *testing.T) {
	ulpAbove := math.Nextafter(0.05, 1)
	ulpBelow := math.Nextafter(0.05, 0)
	cases := []struct {
		name    string
		a, b    float64
		gt, gte bool
	}{
		{"clearly above", 0.06, 0.05, true, true},
		{"clearly below", 0.04, 0.05, false, false},
		{"exactly at", 0.05, 0.05, false, true},
		{"one ulp above", ulpAbove, 0.05, false, true},
		{"one ulp below", ulpBelow, 0.05, false, true},
	}
	for _, c := range cases {
		if got := GT(c.a, c.b); got != c.gt {
			t.Errorf("%s: GT(%v, %v) = %v, want %v", c.name, c.a, c.b, got, c.gt)
		}
		if got := GTE(c.a, c.b); got != c.gte {
			t.Errorf("%s: GTE(%v, %v) = %v, want %v", c.name, c.a, c.b, got, c.gte)
		}
		// LT/LTE mirror GT/GTE with the operands swapped.
		if got := LT(c.b, c.a); got != c.gt {
			t.Errorf("%s: LT(%v, %v) = %v, want %v", c.name, c.b, c.a, got, c.gt)
		}
		if got := LTE(c.b, c.a); got != c.gte {
			t.Errorf("%s: LTE(%v, %v) = %v, want %v", c.name, c.b, c.a, got, c.gte)
		}
	}
}

// TestPaperBoundaries pins the three headline thresholds at their exact
// paper values: 5% buffering ratio, 700 kbps, and a 1.5× problem-ratio
// factor derived through division (the way cluster.IsProblemCounts computes
// it).
func TestPaperBoundaries(t *testing.T) {
	// A buffering ratio computed as 5 seconds of 100 must be "at" 0.05.
	if GT(5.0/100.0, 0.05) {
		t.Error("5/100 must not exceed the 0.05 threshold")
	}
	// A bitrate of exactly 700 kbps is not below the floor.
	if LT(700.0, 700.0) {
		t.Error("700 kbps must not be below the 700 kbps floor")
	}
	// A cluster ratio of exactly 1.5× the global ratio passes GTE even when
	// both sides come from division and multiplication.
	global := 1.0 / 3.0
	threshold := 1.5 * global
	ratio := 0.5 // 50 problems of 100 sessions
	if !GTE(ratio, threshold) {
		t.Errorf("ratio %v must pass the 1.5×global=%v threshold", ratio, threshold)
	}
}
