package core

import (
	"bytes"
	"testing"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/epoch"
	"repro/internal/metric"
	"repro/internal/session"
	"repro/internal/synth"
	"repro/internal/trace"
)

func smallGen(t *testing.T, epochs int, perEpoch int) *synth.Generator {
	t.Helper()
	cfg := synth.DefaultConfig()
	cfg.Trace = epoch.Range{Start: 0, End: epoch.Index(epochs)}
	cfg.SessionsPerEpoch = perEpoch
	cfg.Events.Trace = cfg.Trace
	g, err := synth.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAnalyzeEpochBasics(t *testing.T) {
	var lites []cluster.Lite
	for i := 0; i < 100; i++ {
		var l cluster.Lite
		l.Attrs[attr.CDN] = 1
		if i < 60 {
			l.Bits |= 1 << metric.BufRatio
			l.Attrs[attr.CDN] = 0
		}
		lites = append(lites, l)
	}
	cfg := DefaultConfig(100)
	cfg.Thresholds.MinClusterSessions = 20
	res, err := AnalyzeEpoch(5, lites, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 5 {
		t.Errorf("Epoch = %d", res.Epoch)
	}
	ms := &res.Metrics[metric.BufRatio]
	if ms.GlobalSessions != 100 || ms.GlobalProblems != 60 {
		t.Errorf("globals = %d/%d", ms.GlobalSessions, ms.GlobalProblems)
	}
	if ms.NumProblemClusters == 0 || len(ms.Critical) == 0 {
		t.Errorf("no clusters detected: %d problem, %d critical", ms.NumProblemClusters, len(ms.Critical))
	}
	if len(ms.ProblemKeys) != ms.NumProblemClusters {
		t.Errorf("problem keys %d != count %d", len(ms.ProblemKeys), ms.NumProblemClusters)
	}
	if ms.CriticalCoverage() <= 0 || ms.CriticalCoverage() > 1 {
		t.Errorf("coverage = %v", ms.CriticalCoverage())
	}

	bad := cfg
	bad.Thresholds.ProblemRatioFactor = 0.5
	if _, err := AnalyzeEpoch(0, lites, bad); err == nil {
		t.Error("invalid thresholds accepted")
	}
}

func TestAnalyzeGeneratorParallelDeterminism(t *testing.T) {
	g := smallGen(t, 12, 800)
	cfg := DefaultConfig(800)
	cfg.Workers = 4
	a, err := AnalyzeGenerator(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 1
	b, err := AnalyzeGenerator(smallGen(t, 12, 800), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Epochs) != 12 || len(b.Epochs) != 12 {
		t.Fatalf("epoch counts: %d, %d", len(a.Epochs), len(b.Epochs))
	}
	for i := range a.Epochs {
		for _, m := range metric.All() {
			am, bm := &a.Epochs[i].Metrics[m], &b.Epochs[i].Metrics[m]
			if am.GlobalProblems != bm.GlobalProblems ||
				am.NumProblemClusters != bm.NumProblemClusters ||
				len(am.Critical) != len(bm.Critical) {
				t.Fatalf("epoch %d metric %v differs between worker counts", i, m)
			}
			for j := range am.Critical {
				if am.Critical[j].Key != bm.Critical[j].Key {
					t.Fatalf("epoch %d metric %v critical order differs", i, m)
				}
			}
		}
	}
}

func TestTraceResultAtAndSlice(t *testing.T) {
	g := smallGen(t, 6, 300)
	tr, err := AnalyzeGenerator(g, DefaultConfig(300))
	if err != nil {
		t.Fatal(err)
	}
	if tr.At(3) == nil || tr.At(3).Epoch != 3 {
		t.Error("At(3) wrong")
	}
	if tr.At(-1) != nil || tr.At(6) != nil {
		t.Error("At outside range should be nil")
	}
	sl := tr.Slice(epoch.Range{Start: 2, End: 5})
	if sl.Trace.Len() != 3 || sl.At(2) == nil || sl.At(5) != nil {
		t.Error("Slice wrong")
	}
	// Clamping.
	sl = tr.Slice(epoch.Range{Start: -5, End: 99})
	if sl.Trace != tr.Trace {
		t.Error("Slice should clamp to trace")
	}
}

func TestAnalyzeTraceMatchesGenerator(t *testing.T) {
	g := smallGen(t, 5, 400)
	cfg := DefaultConfig(400)

	direct, err := AnalyzeGenerator(g, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Round-trip through a trace container.
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, trace.HeaderFor(g.World().Space(), 5, 1), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.ForEach(func(s *session.Session) error { return w.Write(s) }); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fromFile, err := AnalyzeTrace(r, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if fromFile.Trace != direct.Trace {
		t.Fatalf("trace ranges differ: %+v vs %+v", fromFile.Trace, direct.Trace)
	}
	for i := range direct.Epochs {
		for _, m := range metric.All() {
			a, b := &direct.Epochs[i].Metrics[m], &fromFile.Epochs[i].Metrics[m]
			if a.GlobalProblems != b.GlobalProblems || a.NumProblemClusters != b.NumProblemClusters ||
				a.CoveredProblems != b.CoveredProblems || len(a.Critical) != len(b.Critical) {
				t.Fatalf("epoch %d metric %v differs between direct and file analysis", i, m)
			}
		}
	}
}

func TestAnalyzeTraceErrors(t *testing.T) {
	// Empty trace.
	var buf bytes.Buffer
	g := smallGen(t, 1, 100)
	w, _ := trace.NewWriter(&buf, trace.HeaderFor(g.World().Space(), 0, 1), false)
	w.Close()
	r, err := trace.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AnalyzeTrace(r, DefaultConfig(100)); err == nil {
		t.Error("empty trace accepted")
	}

	// Out-of-order epochs.
	buf.Reset()
	w, _ = trace.NewWriter(&buf, trace.HeaderFor(g.World().Space(), 2, 1), false)
	s1 := session.Session{ID: 1, Epoch: 1, EventIDs: session.NoEvents}
	s0 := session.Session{ID: 2, Epoch: 0, EventIDs: session.NoEvents}
	w.Write(&s1)
	w.Write(&s0)
	w.Close()
	r, err = trace.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AnalyzeTrace(r, DefaultConfig(100)); err == nil {
		t.Error("out-of-order trace accepted")
	}
}

// TestCriticalSetAndSummaryHelpers exercises the summary accessors.
func TestCriticalSetAndSummaryHelpers(t *testing.T) {
	ms := MetricSummary{GlobalProblems: 100, CoveredProblems: 40, ProblemsInProblemClusters: 60}
	ms.Critical = []CriticalSummary{{Key: attr.NewKey(map[attr.Dim]int32{attr.CDN: 1})}}
	if ms.CriticalCoverage() != 0.4 || ms.ProblemCoverage() != 0.6 {
		t.Error("coverage helpers wrong")
	}
	set := ms.CriticalSet()
	if len(set) != 1 || !set[attr.NewKey(map[attr.Dim]int32{attr.CDN: 1})] {
		t.Error("CriticalSet wrong")
	}
	empty := MetricSummary{}
	if empty.CriticalCoverage() != 0 || empty.ProblemCoverage() != 0 {
		t.Error("empty coverage should be 0")
	}
}

func TestAnalyzeEpochMaxDimsAndNoProblemKeys(t *testing.T) {
	g := smallGen(t, 1, 500)
	batch := g.EpochSessions(0)
	cfg := DefaultConfig(500)
	lites := make([]cluster.Lite, len(batch))
	for i := range batch {
		lites[i] = cluster.Digest(&batch[i], cfg.Thresholds)
	}

	cfg.MaxDims = 2
	cfg.KeepProblemKeys = false
	res, err := AnalyzeEpoch(0, lites, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range metric.All() {
		ms := &res.Metrics[m]
		if ms.ProblemKeys != nil {
			t.Errorf("%v: problem keys retained despite KeepProblemKeys=false", m)
		}
		for _, cs := range ms.Critical {
			if cs.Key.Size() > 2 {
				t.Errorf("%v: critical key %v exceeds MaxDims", m, cs.Key)
			}
		}
	}
}
