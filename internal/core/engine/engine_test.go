package engine

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/epoch"
)

// TestPipelineOrderAndDrain: epochs come out of the analysis stage exactly
// in submission order, and Drain waits for every queued epoch.
func TestPipelineOrderAndDrain(t *testing.T) {
	var got []epoch.Index
	p := New(2, func(e epoch.Index, lites []cluster.Lite) error {
		got = append(got, e) // single analysis goroutine: no lock needed
		return nil
	})
	for e := epoch.Index(0); e < 50; e++ {
		if err := p.Submit(e, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("analyzed %d epochs, want 50", len(got))
	}
	for i, e := range got {
		if e != epoch.Index(i) {
			t.Fatalf("epoch %d analyzed at position %d", e, i)
		}
	}
	st := p.Stats()
	if st.Submitted != 50 || st.Analyzed != 50 {
		t.Fatalf("stats %+v, want 50 submitted and analyzed", st)
	}
	// Drain is idempotent.
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineBackpressure: a slow analysis stage fills the bounded
// hand-off and Submit stalls are counted.
func TestPipelineBackpressure(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	p := New(1, func(e epoch.Index, lites []cluster.Lite) error {
		once.Do(func() { <-release }) // first epoch blocks until released
		return nil
	})
	// Epoch 0 enters analysis and blocks; epoch 1 fills the queue; epoch 2
	// must stall in Submit.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for e := epoch.Index(0); e < 3; e++ {
			if err := p.Submit(e, nil); err != nil {
				t.Errorf("submit %d: %v", e, err)
			}
		}
	}()
	select {
	case <-done:
		t.Fatal("submits completed without backpressure")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	<-done
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.SubmitStalls == 0 {
		t.Fatalf("stats %+v: expected at least one submit stall", st)
	}
	if st.Analyzed != 3 {
		t.Fatalf("stats %+v: want 3 analyzed", st)
	}
}

// TestPipelineIdleAnalyzer: a slow producer leaves the analyzer waiting on
// an empty hand-off, counted as InputWaits.
func TestPipelineIdleAnalyzer(t *testing.T) {
	p := New(4, func(e epoch.Index, lites []cluster.Lite) error { return nil })
	for e := epoch.Index(0); e < 3; e++ {
		time.Sleep(10 * time.Millisecond)
		if err := p.Submit(e, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.InputWaits == 0 {
		t.Fatalf("stats %+v: expected input waits with a slow producer", st)
	}
}

// TestPipelineErrorPropagation: an analysis error surfaces on a later
// Submit or on Drain, queued epochs are drained without deadlock, and no
// further epochs are analysed.
func TestPipelineErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	var analyzed int
	p := New(1, func(e epoch.Index, lites []cluster.Lite) error {
		analyzed++
		if e == 1 {
			return boom
		}
		return nil
	})
	sawErr := false
	for e := epoch.Index(0); e < 20; e++ {
		if err := p.Submit(e, nil); err != nil {
			if !errors.Is(err, boom) {
				t.Fatalf("submit error %v, want %v", err, boom)
			}
			sawErr = true
			break
		}
	}
	if err := p.Drain(); !errors.Is(err, boom) {
		t.Fatalf("Drain error %v, want %v", err, boom)
	}
	if !sawErr && analyzed > 2 {
		t.Fatalf("analyzed %d epochs after error", analyzed)
	}
	// Submitting after a failed drain keeps reporting the error.
	if err := p.Submit(99, nil); !errors.Is(err, boom) {
		t.Fatalf("post-drain Submit error %v, want %v", err, boom)
	}
}

// TestPipelineEmptyDrain: draining an unused pipeline terminates cleanly.
func TestPipelineEmptyDrain(t *testing.T) {
	p := New(1, func(e epoch.Index, lites []cluster.Lite) error { return nil })
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Submitted != 0 || st.Analyzed != 0 {
		t.Fatalf("stats %+v on empty pipeline", st)
	}
}
