// Package engine provides the two-stage epoch-analysis pipeline that
// overlaps analysis with ingestion: stage 1 (the caller — a trace reader,
// the heartbeat collector's spool drain, or the online detector's Add loop)
// accumulates the digests of epoch N+1 while stage 2 (a single analysis
// goroutine) runs the sharded cluster/critical analysis of epoch N.
//
// The hand-off is a bounded channel, so a slow analysis stage exerts
// backpressure on ingestion instead of queueing unbounded epochs, and a
// slow ingest stage leaves the analyzer idle; both conditions are counted
// per stage (SubmitStalls / InputWaits) so operators can see which side of
// the pipeline is the bottleneck. Epochs are analysed strictly in
// submission order by one goroutine, which keeps every downstream
// observable (alert streams, result tables) as deterministic as the
// synchronous path.
package engine

import (
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/epoch"
)

// AnalyzeFunc consumes one completed epoch of session digests. Ownership of
// the lites slice transfers with a successful Submit; the function (or its
// closure) is responsible for returning the buffer to a pool if desired.
type AnalyzeFunc func(e epoch.Index, lites []cluster.Lite) error

// Stats snapshots the pipeline's progress and stall counters.
type Stats struct {
	// Submitted counts epochs handed to the analysis stage; Analyzed
	// counts epochs the analysis stage completed (successfully or not).
	Submitted uint64
	Analyzed  uint64
	// SubmitStalls counts Submit calls that blocked because the bounded
	// hand-off was full — the analysis stage is the bottleneck and is
	// backpressuring ingestion.
	SubmitStalls uint64
	// InputWaits counts analysis-stage waits on an empty hand-off — the
	// ingest stage is the bottleneck and the analyzer sat idle.
	InputWaits uint64
}

type job struct {
	e     epoch.Index
	lites []cluster.Lite
}

// Pipeline is the bounded two-stage hand-off. Create one with New, feed it
// with Submit from a single producer, and finish with Drain. The zero value
// is not usable.
type Pipeline struct {
	ch chan job
	wg sync.WaitGroup

	submitted    atomic.Uint64
	analyzed     atomic.Uint64
	submitStalls atomic.Uint64
	inputWaits   atomic.Uint64

	mu     sync.Mutex
	err    error
	closed bool
}

// New starts a pipeline whose analysis stage runs analyze once per
// submitted epoch, in submission order, on its own goroutine. depth bounds
// how many completed epochs may be queued between the stages (minimum 1:
// one epoch analysing + one queued + one accumulating at the producer).
func New(depth int, analyze AnalyzeFunc) *Pipeline {
	if depth < 1 {
		depth = 1
	}
	p := &Pipeline{ch: make(chan job, depth)}
	p.wg.Add(1)
	go p.run(analyze)
	return p
}

// run is the analysis stage: drain jobs in order until the channel closes.
// After the first analyze error the remaining queue is drained without
// analysing, so a producer blocked in Submit always unblocks.
func (p *Pipeline) run(analyze AnalyzeFunc) {
	defer p.wg.Done()
	for {
		var j job
		var ok bool
		select {
		case j, ok = <-p.ch:
		default:
			p.inputWaits.Add(1)
			j, ok = <-p.ch
		}
		if !ok {
			return
		}
		if p.Err() == nil {
			if err := analyze(j.e, j.lites); err != nil {
				p.setErr(err)
			}
		}
		p.analyzed.Add(1)
	}
}

// Submit hands one completed epoch to the analysis stage, blocking when the
// hand-off is full (counted as a SubmitStall). If a previous epoch's
// analysis already failed, Submit reports that error and the caller keeps
// ownership of lites.
func (p *Pipeline) Submit(e epoch.Index, lites []cluster.Lite) error {
	if err := p.Err(); err != nil {
		return err
	}
	select {
	case p.ch <- job{e: e, lites: lites}:
	default:
		p.submitStalls.Add(1)
		p.ch <- job{e: e, lites: lites}
	}
	p.submitted.Add(1)
	return nil
}

// Drain closes the hand-off, waits for the analysis stage to finish every
// queued epoch, and returns the first analysis error. Drain is idempotent.
func (p *Pipeline) Drain() error {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.ch)
	}
	p.mu.Unlock()
	p.wg.Wait()
	return p.Err()
}

// Err returns the first analysis error observed so far, if any.
func (p *Pipeline) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

func (p *Pipeline) setErr(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
}

// Stats returns a snapshot of the pipeline's counters. It may be called
// concurrently with Submit; counters are monotonic.
func (p *Pipeline) Stats() Stats {
	return Stats{
		Submitted:    p.submitted.Load(),
		Analyzed:     p.analyzed.Load(),
		SubmitStalls: p.submitStalls.Load(),
		InputWaits:   p.inputWaits.Load(),
	}
}
