package cktable

import (
	"math/rand"
	"testing"

	"repro/internal/attr"
	"repro/internal/metric"
)

// fillRandom adds n random sessions to tbl and the reference map.
func fillRandom(tbl *Table, ref map[attr.Key]Counts, rng *rand.Rand, n, maxDims, valRange int) {
	for i := 0; i < n; i++ {
		var v attr.Vector
		for d := range v {
			v[d] = int32(rng.Intn(valRange))
		}
		flags := uint8(rng.Intn(16))
		failed := flags&(1<<metric.JoinFailure) != 0
		tbl.AddSession(v, flags, failed)
		if ref != nil {
			refAdd(ref, v, flags, failed, maxDims)
		}
	}
}

// assertTableEquals checks tbl holds exactly the reference mapping: same
// cardinality, same counts per key, both lookup directions.
func assertTableEquals(t *testing.T, tbl *Table, ref map[attr.Key]Counts) {
	t.Helper()
	if tbl.Len() != len(ref) {
		t.Fatalf("Len=%d, want %d", tbl.Len(), len(ref))
	}
	tbl.ForEach(func(k attr.Key, c Counts) {
		if ref[k] != c {
			t.Fatalf("key %v counts %+v, want %+v", k, c, ref[k])
		}
	})
	for k, want := range ref {
		if got, ok := tbl.Get(k); !ok || got != want {
			t.Fatalf("Get(%v) = %+v/%v, want %+v", k, got, ok, want)
		}
	}
}

// TestUnmergeOfMergeIsIdentity: merging a table and unmerging the same
// table restores the destination bit for bit — cardinality, every cell,
// and the probe invariant (every surviving key still reachable).
func TestUnmergeOfMergeIsIdentity(t *testing.T) {
	for _, maxDims := range []int{2, attr.NumDims} {
		rng := rand.New(rand.NewSource(int64(41 + maxDims)))
		base := Acquire(0, maxDims)
		src := Acquire(0, maxDims)
		ref := make(map[attr.Key]Counts)
		fillRandom(base, ref, rng, 300, maxDims, 4)
		fillRandom(src, nil, rng, 200, maxDims, 4)

		base.Merge(src)
		base.Unmerge(src)
		assertTableEquals(t, base, ref)

		src.Release()
		base.Release()
	}
}

// TestUnmergeEmptySource: unmerging an empty table is a no-op.
func TestUnmergeEmptySource(t *testing.T) {
	base := Acquire(0, attr.NumDims)
	empty := Acquire(0, attr.NumDims)
	defer base.Release()
	defer empty.Release()
	ref := make(map[attr.Key]Counts)
	rng := rand.New(rand.NewSource(3))
	fillRandom(base, ref, rng, 100, attr.NumDims, 4)
	base.Unmerge(empty)
	assertTableEquals(t, base, ref)
}

// TestUnmergeToEmpty: unmerging a table from itself (as a copy) leaves an
// empty table with every slot reclaimed.
func TestUnmergeToEmpty(t *testing.T) {
	base := Acquire(0, attr.NumDims)
	src := Acquire(0, attr.NumDims)
	defer base.Release()
	defer src.Release()
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 150; i++ {
		var v attr.Vector
		for d := range v {
			v[d] = int32(rng.Intn(3))
		}
		flags := uint8(rng.Intn(16))
		failed := flags&(1<<metric.JoinFailure) != 0
		base.AddSession(v, flags, failed)
		src.AddSession(v, flags, failed)
	}
	base.Unmerge(src)
	if base.Len() != 0 {
		t.Fatalf("Len=%d after full unmerge, want 0", base.Len())
	}
	for i := range base.slots {
		if base.slots[i].hash != 0 {
			t.Fatalf("slot %d not reclaimed after full unmerge", i)
		}
	}
}

// TestUnmergeMissingKeyPanics: subtracting a key the table does not hold is
// a window-accounting bug and must fail loudly, not corrupt counts.
func TestUnmergeMissingKeyPanics(t *testing.T) {
	base := Acquire(0, attr.NumDims)
	src := Acquire(0, attr.NumDims)
	defer base.Release()
	defer src.Release()
	base.AddSession(attr.Vector{1, 1, 1, 1, 1, 1, 1}, 1, false)
	src.AddSession(attr.Vector{2, 2, 2, 2, 2, 2, 2}, 1, false)
	defer func() {
		if recover() == nil {
			t.Fatal("Unmerge of a missing key did not panic")
		}
	}()
	base.Unmerge(src)
}

// TestUnmergeReclaimsUnderCycling drives a long merge/unmerge window over a
// churning key population and asserts the table's occupancy — and therefore
// its load factor and capacity — tracks the live window rather than the
// total history. Without slot reclamation the dead cells of expired
// sub-buckets would accrete and force unbounded growth.
func TestUnmergeReclaimsUnderCycling(t *testing.T) {
	const windowLen = 8
	rng := rand.New(rand.NewSource(71))
	total := Acquire(0, attr.NumDims)
	defer total.Release()

	var window []*Table
	capAfterWarmup := 0
	for round := 0; round < 200; round++ {
		b := Acquire(0, attr.NumDims)
		// Distinct per-round value range so key sets churn across rounds.
		for i := 0; i < 20; i++ {
			var v attr.Vector
			for d := range v {
				v[d] = int32(rng.Intn(5)) + int32(round%37)*8
			}
			b.AddSession(v, uint8(rng.Intn(16)), false)
		}
		total.Merge(b)
		window = append(window, b)
		if len(window) > windowLen {
			old := window[0]
			window = window[1:]
			total.Unmerge(old)
			old.Release()
		}
		if round == 2*windowLen {
			capAfterWarmup = len(total.slots)
		}
		if capAfterWarmup > 0 && len(total.slots) > 2*capAfterWarmup {
			t.Fatalf("round %d: capacity %d grew past 2x warmed-up capacity %d — reclamation failed",
				round, len(total.slots), capAfterWarmup)
		}
		if total.used > total.maxUsed {
			t.Fatalf("round %d: load factor exceeded ceiling (%d > %d)", round, total.used, total.maxUsed)
		}
	}
	for _, b := range window {
		b.Release()
	}
}

// FuzzUnmergeWindowAdvance is the bit-for-bit window-advance oracle: a
// sliding window maintained by Merge of the entering sub-bucket and Unmerge
// of the expiring one must equal, after every advance, a table rebuilt from
// scratch over exactly the sub-buckets in the window.
func FuzzUnmergeWindowAdvance(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint8(12), uint8(10))
	f.Add(uint64(99), uint8(1), uint8(3), uint8(25))
	f.Add(uint64(7), uint8(6), uint8(20), uint8(1))
	f.Fuzz(func(t *testing.T, seed uint64, windowLen, rounds, perBucket uint8) {
		wl := int(windowLen)%8 + 1
		nRounds := int(rounds)%24 + wl
		per := int(perBucket)%30 + 1
		rng := rand.New(rand.NewSource(int64(seed)))

		type bucket struct {
			vecs   []attr.Vector
			flags  []uint8
			failed []bool
			tbl    *Table
		}
		total := Acquire(0, attr.NumDims)
		defer total.Release()
		var window []bucket

		for round := 0; round < nRounds; round++ {
			b := bucket{tbl: Acquire(0, attr.NumDims)}
			for i := 0; i < per; i++ {
				var v attr.Vector
				for d := range v {
					v[d] = int32(rng.Intn(4))
				}
				fl := uint8(rng.Intn(16))
				fa := fl&(1<<metric.JoinFailure) != 0
				b.vecs = append(b.vecs, v)
				b.flags = append(b.flags, fl)
				b.failed = append(b.failed, fa)
				b.tbl.AddSession(v, fl, fa)
			}
			total.Merge(b.tbl)
			window = append(window, b)
			if len(window) > wl {
				old := window[0]
				window = window[1:]
				total.Unmerge(old.tbl)
				old.tbl.Release()
			}

			// Oracle: rebuild from the live sub-buckets.
			rebuilt := Acquire(0, attr.NumDims)
			for _, wb := range window {
				for i := range wb.vecs {
					rebuilt.AddSession(wb.vecs[i], wb.flags[i], wb.failed[i])
				}
			}
			if total.Len() != rebuilt.Len() {
				t.Fatalf("round %d: windowed Len=%d, rebuilt Len=%d", round, total.Len(), rebuilt.Len())
			}
			rebuilt.ForEach(func(k attr.Key, c Counts) {
				if got, ok := total.Get(k); !ok || got != c {
					t.Fatalf("round %d: key %v windowed %+v/%v, rebuilt %+v", round, k, got, ok, c)
				}
			})
			total.ForEach(func(k attr.Key, c Counts) {
				if got, ok := rebuilt.Get(k); !ok || got != c {
					t.Fatalf("round %d: windowed-only key %v (%+v vs %+v/%v)", round, k, c, got, ok)
				}
			})
			rebuilt.Release()
		}
		for _, wb := range window {
			wb.tbl.Release()
		}
	})
}
