// Package cktable is the epoch-aggregation engine behind the cluster count
// table (paper §3.1): for every session of a one-hour epoch it enumerates
// the up-to-127 attribute-subset cluster keys the session belongs to and
// accumulates per-cluster problem tallies.
//
// The engine exists because this enumeration is the dominant cost of the
// whole analysis at production volume: a Go map keyed by the 32-byte
// attr.Key re-hashes every key from scratch, 127 times per session. Here
// instead:
//
//   - storage is a flat open-addressing hash table (power-of-two capacity,
//     linear probing) of 64-byte slots {hash, key, Counts};
//   - keys are hashed with a 64-bit xor-decomposable scheme — one mixed
//     hash per (dimension, value) pair, xor-combined per subset and
//     finalised with a per-mask salt — so per-session enumeration walks the
//     masks in Gray-code order and derives each projected key and its hash
//     from the previous mask's partial state in O(changed bits);
//   - tables are recycled through a sync.Pool, so steady-state epoch
//     analysis allocates nothing: the slot array is cleared and reused, and
//     its grown capacity carries over to the next epoch.
//
// Iteration order over slots is a pure function of the inserted key set
// (the hash is seedless), never of insertion order; consumers that emit
// reports still sort, exactly as they did over map keys.
package cktable

import "repro/internal/metric"

// Counts aggregates one cluster's sessions across all four metrics in a
// single pass. cluster.Counts is an alias of this type.
type Counts struct {
	// Total is the number of sessions in the cluster.
	Total int32
	// Failed is the number of join-failed sessions (these do not define
	// the continuous metrics).
	Failed int32
	// Problems counts problem sessions per metric.
	Problems [metric.NumMetrics]int32
}

// Add accumulates one session: flags holds one problem bit per metric in
// metric order, failed mirrors QoE.JoinFailed.
func (c *Counts) Add(flags uint8, failed bool) {
	c.Total++
	if failed {
		c.Failed++
	}
	for m := 0; m < metric.NumMetrics; m++ {
		if flags&(1<<m) != 0 {
			c.Problems[m]++
		}
	}
}

// Merge accumulates another cell's tallies into c. All fields are integer
// sums, so merging is exact and order-independent — the property the sharded
// aggregation path relies on for bit-identical results at any worker count.
func (c *Counts) Merge(o Counts) {
	c.Total += o.Total
	c.Failed += o.Failed
	for m := 0; m < metric.NumMetrics; m++ {
		c.Problems[m] += o.Problems[m]
	}
}

// Sub removes another cell's tallies from c — the exact inverse of Merge.
// The sliding-window engine uses it to retire an expired sub-bucket: the
// counts are integer differences, so subtracting a previously merged cell
// restores the pre-merge tallies bit for bit.
func (c *Counts) Sub(o Counts) {
	c.Total -= o.Total
	c.Failed -= o.Failed
	for m := 0; m < metric.NumMetrics; m++ {
		c.Problems[m] -= o.Problems[m]
	}
}

// IsZero reports whether every tally is zero — the condition under which a
// windowed cell holds no live sessions and its slot can be reclaimed.
func (c Counts) IsZero() bool { return c == Counts{} }

// Sessions returns the number of sessions for which metric m is defined.
func (c Counts) Sessions(m metric.Metric) int32 {
	if m == metric.JoinFailure {
		return c.Total
	}
	return c.Total - c.Failed
}

// Ratio returns the problem ratio for metric m (0 when empty).
func (c Counts) Ratio(m metric.Metric) float64 {
	n := c.Sessions(m)
	if n == 0 {
		return 0
	}
	return float64(c.Problems[m]) / float64(n)
}
