package cktable

import (
	"math/bits"

	"repro/internal/attr"
)

// step is one stop of the per-session mask walk: the mask to aggregate
// under and the dimensions that changed relative to the previous step.
type step struct {
	mask attr.Mask
	// diff is mask ^ previous-step-mask: the dimensions whose value (and
	// dimension hash) must be toggled in the walker's partial state.
	diff attr.Mask
}

// plans[maxDims] enumerates every non-empty mask of at most maxDims
// dimensions in binary-reflected Gray-code order, so consecutive masks
// differ in one bit; filtering oversized masks out of the sequence widens
// some diffs to a few bits, but the walk stays far cheaper than the
// seven-dimension re-projection attr.KeyOf performs per mask. The set of
// masks visited is exactly attr.MasksUpTo(maxDims); only the visit order
// differs, which the commutative count accumulation cannot observe.
var plans = func() [attr.NumDims + 1][]step {
	var ps [attr.NumDims + 1][]step
	for maxDims := 1; maxDims <= attr.NumDims; maxDims++ {
		var steps []step
		prev := attr.Mask(0)
		for i := 1; i <= int(attr.AllDims); i++ {
			m := attr.Mask(i ^ (i >> 1))
			if bits.OnesCount8(uint8(m)) > maxDims {
				continue
			}
			steps = append(steps, step{mask: m, diff: m ^ prev})
			prev = m
		}
		ps[maxDims] = steps
	}
	return ps
}()

// planFor clamps maxDims the same way attr.MasksUpTo does.
func planFor(maxDims int) []step {
	if maxDims < 1 {
		maxDims = 1
	}
	if maxDims > attr.NumDims {
		maxDims = attr.NumDims
	}
	return plans[maxDims]
}
