package cktable

import (
	mathbits "math/bits"
	"sync"

	"repro/internal/attr"
)

// slot is one open-addressing cell: 64 bytes, so a probe touches one cache
// line. hash is the key's finalised hash with bit 0 forced on; 0 marks an
// empty cell.
type slot struct {
	hash   uint64
	key    attr.Key
	counts Counts
}

// Table is the open-addressing cluster count table of one epoch. Obtain
// instances with Acquire and return them with Release; the zero value is
// not usable.
type Table struct {
	slots []slot
	// used counts occupied slots; the table grows when used exceeds 3/4 of
	// capacity.
	used    int
	maxUsed int
	plan    []step
}

var tablePool = sync.Pool{New: func() any { return new(Table) }}

// maxInitialSlots caps the Acquire pre-size: beyond ~2M slots (128 MB) the
// keys-per-session heuristic overshoots badly — at millions of sessions per
// epoch distinct-key cardinality saturates near the attribute universe, not
// sessions × masks — so large epochs start here and double on demand.
// Pooled reuse keeps whatever capacity growth settles on.
const maxInitialSlots = 1 << 21

// Acquire returns a cleared table ready for one epoch of sessions, drawn
// from the pool when possible so its slot array is reused across epochs.
//
// Sizing: cluster cardinality is driven by the subset enumeration, not by
// the session count alone — at the reproduction's synthetic volumes each
// session contributes ~100 distinct keys of the 127 it touches (the fine
// masks are nearly all unique), so the old map pre-size of 2× sessions was
// off by ~50× and rehashed continually. We pre-size for 64 keys per
// session at a 75% load ceiling (capped at maxInitialSlots) and double from
// there; pooled reuse makes the initial estimate matter only for the very
// first epoch.
func Acquire(sessions, maxDims int) *Table {
	t := tablePool.Get().(*Table)
	t.plan = planFor(maxDims)
	want := sessions * 64 * 4 / 3
	if want < 1024 {
		want = 1024
	}
	if want > maxInitialSlots {
		want = maxInitialSlots
	}
	if len(t.slots) < want {
		t.slots = make([]slot, nextPow2(want))
	}
	t.maxUsed = len(t.slots) / 4 * 3
	return t
}

// Release clears the table and returns it to the pool. The table must not
// be used afterwards.
func (t *Table) Release() {
	clear(t.slots)
	t.used = 0
	t.plan = nil
	tablePool.Put(t)
}

// Len returns the number of distinct keys in the table.
func (t *Table) Len() int { return t.used }

// AddSession enumerates every mask of the table's plan for attribute
// vector v and accumulates (flags, failed) into each projected cluster.
// The walk keeps a partial key and xor-accumulated hash, updating both
// only for the dimensions that changed since the previous mask.
func (t *Table) AddSession(v attr.Vector, flags uint8, failed bool) {
	for t.used+len(t.plan) > t.maxUsed {
		// Worst case every step inserts a fresh key; growing up front keeps
		// the inner loop free of capacity checks.
		t.grow()
	}
	var h Hasher
	h.Reset(v)
	var cur attr.Key
	var acc uint64
	for _, st := range t.plan {
		diff := st.diff
		for diff != 0 {
			d := attr.Dim(mathbits.TrailingZeros8(uint8(diff)))
			diff &^= 1 << d
			acc ^= h.dim[d]
			if st.mask.Has(d) {
				cur.Vals[d] = v[d]
			} else {
				cur.Vals[d] = 0
			}
		}
		cur.Mask = st.mask
		t.upsert(mix64(acc^maskSalt[st.mask]), cur).Add(flags, failed)
	}
}

// Upsert returns the counts cell for key k, inserting a zero cell if
// absent. Point callers (tests, differential harnesses) may use it with
// KeyHash; AddSession is the fast path.
func (t *Table) Upsert(k attr.Key) *Counts {
	if t.used >= t.maxUsed {
		t.grow()
	}
	return t.upsert(KeyHash(k), k)
}

func (t *Table) upsert(h uint64, k attr.Key) *Counts {
	hs := h | 1
	mask := uint64(len(t.slots) - 1)
	for i := hs & mask; ; i = (i + 1) & mask {
		s := &t.slots[i]
		if s.hash == 0 {
			s.hash = hs
			s.key = k
			t.used++
			return &s.counts
		}
		if s.hash == hs && s.key == k {
			return &s.counts
		}
	}
}

// Get returns the counts of key k and whether it is present.
func (t *Table) Get(k attr.Key) (Counts, bool) {
	if len(t.slots) == 0 {
		return Counts{}, false
	}
	hs := KeyHash(k) | 1
	mask := uint64(len(t.slots) - 1)
	for i := hs & mask; ; i = (i + 1) & mask {
		s := &t.slots[i]
		if s.hash == 0 {
			return Counts{}, false
		}
		if s.hash == hs && s.key == k {
			return s.counts, true
		}
	}
}

// Merge folds every cell of src into t, summing counts cell-wise. It is a
// linear walk over src's slots: the stored hash of each occupied slot is the
// key's finalised hash, so no key is re-hashed and no subset enumeration
// reruns — this is what makes sharded epoch aggregation cheap to recombine.
// Counts are integer sums, so the merged table is identical (as a key→counts
// mapping) regardless of merge order or shard count. src is not modified;
// release it separately.
func (t *Table) Merge(src *Table) {
	// Reserve for the no-overlap worst case up front: one rehash instead of
	// a cascade of doublings, each of which would re-probe every live slot
	// and leave a dead half-size array behind for the GC.
	t.reserve(t.used + src.used)
	for i := range src.slots {
		s := &src.slots[i]
		if s.hash == 0 {
			continue
		}
		if t.used >= t.maxUsed {
			t.grow()
		}
		t.upsert(s.hash, s.key).Merge(s.counts)
	}
}

// Unmerge subtracts every cell of src from t, cell-wise — the exact inverse
// of a prior Merge(src). Like Merge it is a linear walk over src's slots
// probing t by the stored hash, so no key is re-hashed and no subset
// enumeration reruns. A cell whose counts reach zero is deleted and its
// slot reclaimed immediately by backward-shift compaction (no tombstones),
// so a long-running sliding window that merges and unmerges sub-bucket
// tables forever stays at the load factor of its live key set instead of
// accreting dead slots. Subtracting a key t does not hold, or driving any
// session tally negative, panics: the window contract is exact — src must
// be (cell-wise) contained in t.
func (t *Table) Unmerge(src *Table) {
	for i := range src.slots {
		s := &src.slots[i]
		if s.hash == 0 {
			continue
		}
		t.unmerge(s.hash, s.key, s.counts)
	}
}

func (t *Table) unmerge(h uint64, k attr.Key, c Counts) {
	if len(t.slots) == 0 {
		panic("cktable: Unmerge from an empty table")
	}
	mask := uint64(len(t.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		s := &t.slots[i]
		if s.hash == 0 {
			panic("cktable: Unmerge of a key not present in the table")
		}
		if s.hash == h && s.key == k {
			s.counts.Sub(c)
			if s.counts.Total < 0 {
				panic("cktable: Unmerge drove a session count negative")
			}
			if s.counts.IsZero() {
				t.deleteSlot(i)
			}
			return
		}
	}
}

// deleteSlot removes the entry at slot i with backward-shift compaction:
// subsequent probe-chain entries whose home position lies at or before the
// vacated slot shift back into it, preserving the linear-probing invariant
// (every key is reachable from its home slot with no gaps) without
// tombstones. The resulting layout can differ from a fresh build of the
// same key set — consumers already tolerate that, since Merge-built tables
// differ from AddSession-built ones the same way; nothing downstream reads
// slot order into results.
func (t *Table) deleteSlot(i uint64) {
	mask := uint64(len(t.slots) - 1)
	t.used--
	j := i
	for {
		t.slots[i] = slot{}
		for {
			j = (j + 1) & mask
			s := &t.slots[j]
			if s.hash == 0 {
				return
			}
			home := s.hash & mask
			// Entry j may move into the hole at i only if its home slot is
			// not cyclically within (i, j] — otherwise the move would place
			// it before its home and break its probe chain.
			if i <= j {
				if home <= i || home > j {
					break
				}
			} else if home <= i && home > j {
				break
			}
		}
		t.slots[i] = t.slots[j]
		i = j
	}
}

// reserve grows the table, in a single rehash, until it can hold n keys
// without exceeding the load ceiling.
func (t *Table) reserve(n int) {
	want := nextPow2(n*4/3 + 1)
	if want <= len(t.slots) {
		return
	}
	t.growTo(want)
}

// ForEach calls fn for every (key, counts) pair. The visit order is a pure
// function of the stored key set — deterministic across runs, unlike map
// ranges — but not sorted; consumers that need sorted keys sort as before.
func (t *Table) ForEach(fn func(k attr.Key, c Counts)) {
	for i := range t.slots {
		if t.slots[i].hash != 0 {
			fn(t.slots[i].key, t.slots[i].counts)
		}
	}
}

func (t *Table) grow() { t.growTo(2 * len(t.slots)) }

func (t *Table) growTo(newLen int) {
	old := t.slots
	t.slots = make([]slot, newLen)
	t.maxUsed = len(t.slots) / 4 * 3
	mask := uint64(len(t.slots) - 1)
	for i := range old {
		s := &old[i]
		if s.hash == 0 {
			continue
		}
		j := s.hash & mask
		for t.slots[j].hash != 0 {
			j = (j + 1) & mask
		}
		t.slots[j] = *s
	}
}

func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << (64 - mathbits.LeadingZeros64(uint64(n-1)))
}
