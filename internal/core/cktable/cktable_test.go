package cktable

import (
	"math/rand"
	"testing"

	"repro/internal/attr"
	"repro/internal/metric"
)

// refAdd is the straightforward map-based accumulation AddSession replaces.
func refAdd(ref map[attr.Key]Counts, v attr.Vector, flags uint8, failed bool, maxDims int) {
	for _, m := range attr.MasksUpTo(maxDims) {
		k := attr.KeyOf(v, m)
		c := ref[k]
		c.Add(flags, failed)
		ref[k] = c
	}
}

func randVector(rng *rand.Rand) attr.Vector {
	var v attr.Vector
	for d := range v {
		v[d] = int32(rng.Intn(4))
	}
	return v
}

// TestPlanCoversMasksUpTo: the Gray-code plan visits exactly the masks of
// attr.MasksUpTo, each once, with diffs that chain from the empty mask.
func TestPlanCoversMasksUpTo(t *testing.T) {
	for maxDims := 1; maxDims <= attr.NumDims; maxDims++ {
		steps := planFor(maxDims)
		want := attr.MasksUpTo(maxDims)
		if len(steps) != len(want) {
			t.Fatalf("maxDims=%d: %d steps, want %d", maxDims, len(steps), len(want))
		}
		seen := make(map[attr.Mask]bool)
		prev := attr.Mask(0)
		for _, st := range steps {
			if st.mask == 0 || st.mask.Size() > maxDims {
				t.Fatalf("maxDims=%d: bad mask %v", maxDims, st.mask)
			}
			if seen[st.mask] {
				t.Fatalf("maxDims=%d: mask %v visited twice", maxDims, st.mask)
			}
			seen[st.mask] = true
			if prev^st.diff != st.mask {
				t.Fatalf("maxDims=%d: diff %v does not chain %v -> %v", maxDims, st.diff, prev, st.mask)
			}
			prev = st.mask
		}
	}
}

// TestIncrementalHashMatchesKeyHash: the walk's derived hashes equal the
// from-scratch KeyHash for every mask.
func TestIncrementalHashMatchesKeyHash(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		v := randVector(rng)
		var h Hasher
		h.Reset(v)
		var acc uint64
		prev := attr.Mask(0)
		for _, st := range planFor(attr.NumDims) {
			diff := st.mask ^ prev
			for d := attr.Dim(0); d < attr.NumDims; d++ {
				if diff.Has(d) {
					acc ^= h.dim[d]
				}
			}
			prev = st.mask
			got := mix64(acc ^ maskSalt[st.mask])
			if want := KeyHash(attr.KeyOf(v, st.mask)); got != want {
				t.Fatalf("hash mismatch for mask %v", st.mask)
			}
		}
	}
}

// TestTableMatchesMap: random sessions aggregated through the table and a
// reference map agree on every key, including misses.
func TestTableMatchesMap(t *testing.T) {
	for _, maxDims := range []int{1, 2, 3, attr.NumDims} {
		rng := rand.New(rand.NewSource(int64(maxDims)))
		tbl := Acquire(0, maxDims)
		ref := make(map[attr.Key]Counts)
		for i := 0; i < 400; i++ {
			v := randVector(rng)
			flags := uint8(rng.Intn(16))
			failed := flags&(1<<metric.JoinFailure) != 0
			tbl.AddSession(v, flags, failed)
			refAdd(ref, v, flags, failed, maxDims)
		}
		if tbl.Len() != len(ref) {
			t.Fatalf("maxDims=%d: Len=%d, want %d", maxDims, tbl.Len(), len(ref))
		}
		tbl.ForEach(func(k attr.Key, c Counts) {
			if ref[k] != c {
				t.Errorf("maxDims=%d: key %v counts %+v, want %+v", maxDims, k, c, ref[k])
			}
		})
		for k, want := range ref {
			if got, ok := tbl.Get(k); !ok || got != want {
				t.Errorf("maxDims=%d: Get(%v) = %+v/%v, want %+v", maxDims, k, got, ok, want)
			}
		}
		if _, ok := tbl.Get(attr.KeyOf(attr.Vector{9, 9, 9, 9, 9, 9, 9}, attr.AllDims)); ok {
			t.Error("absent key reported present")
		}
		tbl.Release()
	}
}

// TestTableGrowth forces repeated doubling and checks nothing is lost.
func TestTableGrowth(t *testing.T) {
	tbl := Acquire(0, attr.NumDims)
	start := len(tbl.slots)
	ref := make(map[attr.Key]Counts)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 200; i++ {
		var v attr.Vector
		for d := range v {
			v[d] = rng.Int31() // near-unique vectors: ~127 fresh keys each
		}
		tbl.AddSession(v, 1, false)
		refAdd(ref, v, 1, false, attr.NumDims)
	}
	if len(tbl.slots) <= start {
		t.Fatalf("table never grew (cap %d, used %d)", len(tbl.slots), tbl.used)
	}
	if tbl.Len() != len(ref) {
		t.Fatalf("Len=%d, want %d", tbl.Len(), len(ref))
	}
	for k, want := range ref {
		if got, ok := tbl.Get(k); !ok || got != want {
			t.Fatalf("lost key %v after growth", k)
		}
	}
	tbl.Release()
}

// TestPoolReuseIsClean: a released table comes back empty.
func TestPoolReuseIsClean(t *testing.T) {
	tbl := Acquire(10, attr.NumDims)
	tbl.AddSession(attr.Vector{1, 2, 3, 4, 5, 6, 7}, 3, false)
	tbl.Release()
	reused := Acquire(10, attr.NumDims)
	defer reused.Release()
	if reused.Len() != 0 {
		t.Fatalf("pooled table not cleared: Len=%d", reused.Len())
	}
	if _, ok := reused.Get(attr.KeyOf(attr.Vector{1, 2, 3, 4, 5, 6, 7}, attr.AllDims)); ok {
		t.Fatal("stale key visible after Release")
	}
}

func TestUpsertAgreesWithAddSession(t *testing.T) {
	tbl := Acquire(0, attr.NumDims)
	defer tbl.Release()
	v := attr.Vector{1, 0, 2, 0, 1, 0, 3}
	tbl.AddSession(v, 1, false)
	k := attr.KeyOf(v, attr.MaskOf(attr.ASN, attr.Site))
	tbl.Upsert(k).Add(2, false)
	got, ok := tbl.Get(k)
	if !ok || got.Total != 2 || got.Problems[0] != 1 || got.Problems[1] != 1 {
		t.Fatalf("Upsert/AddSession disagree: %+v ok=%v", got, ok)
	}
}

// TestMergeMatchesUnsharded: splitting a session stream across several
// tables and merging them must reproduce the single-table accumulation
// exactly — every cell, both lookup directions, any shard count.
func TestMergeMatchesUnsharded(t *testing.T) {
	for _, shards := range []int{2, 3, 8} {
		for _, maxDims := range []int{2, attr.NumDims} {
			rng := rand.New(rand.NewSource(int64(31*shards + maxDims)))
			whole := Acquire(0, maxDims)
			parts := make([]*Table, shards)
			for s := range parts {
				parts[s] = Acquire(0, maxDims)
			}
			for i := 0; i < 500; i++ {
				v := randVector(rng)
				flags := uint8(rng.Intn(16))
				failed := flags&(1<<metric.JoinFailure) != 0
				whole.AddSession(v, flags, failed)
				parts[VectorHash(v)%uint64(shards)].AddSession(v, flags, failed)
			}
			merged := parts[0]
			for _, src := range parts[1:] {
				merged.Merge(src)
				src.Release()
			}
			if merged.Len() != whole.Len() {
				t.Fatalf("shards=%d maxDims=%d: merged Len=%d, want %d",
					shards, maxDims, merged.Len(), whole.Len())
			}
			whole.ForEach(func(k attr.Key, c Counts) {
				if got, ok := merged.Get(k); !ok || got != c {
					t.Errorf("shards=%d maxDims=%d: key %v merged %+v/%v, want %+v",
						shards, maxDims, k, got, ok, c)
				}
			})
			merged.ForEach(func(k attr.Key, c Counts) {
				if got, ok := whole.Get(k); !ok || got != c {
					t.Errorf("shards=%d maxDims=%d: merged-only key %v (%+v vs %+v/%v)",
						shards, maxDims, k, c, got, ok)
				}
			})
			merged.Release()
			whole.Release()
		}
	}
}

// TestMergeGrowsDestination: merging a large source into a small, nearly
// full destination must trigger growth without losing cells.
func TestMergeGrowsDestination(t *testing.T) {
	dst := Acquire(0, attr.NumDims)
	src := Acquire(0, attr.NumDims)
	defer dst.Release()
	defer src.Release()
	ref := make(map[attr.Key]Counts)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 40; i++ {
		var v attr.Vector
		for d := range v {
			v[d] = rng.Int31() // near-unique: ~127 fresh keys per session
		}
		dst.AddSession(v, 1, false)
		refAdd(ref, v, 1, false, attr.NumDims)
	}
	for i := 0; i < 400; i++ {
		var v attr.Vector
		for d := range v {
			v[d] = rng.Int31()
		}
		src.AddSession(v, 2, true)
		refAdd(ref, v, 2, true, attr.NumDims)
	}
	dst.Merge(src)
	if dst.Len() != len(ref) {
		t.Fatalf("Len=%d after growing merge, want %d", dst.Len(), len(ref))
	}
	for k, want := range ref {
		if got, ok := dst.Get(k); !ok || got != want {
			t.Fatalf("key %v lost or wrong after growing merge: %+v/%v want %+v", k, got, ok, want)
		}
	}
}

// TestVectorHashMatchesLeafKeyHash: the shard partition hash is exactly the
// leaf key's hash, so equal vectors shard together and the partition is a
// pure function of the attribute vector.
func TestVectorHashMatchesLeafKeyHash(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 100; i++ {
		v := randVector(rng)
		if VectorHash(v) != KeyHash(attr.KeyOf(v, attr.AllDims)) {
			t.Fatalf("VectorHash(%v) != KeyHash(leaf)", v)
		}
	}
}
