package cktable

import "repro/internal/attr"

// The hash is built from three ingredients chosen so that per-session
// enumeration can update it incrementally:
//
//	dimHash(d, val) — a strongly mixed 64-bit hash of one fixed dimension
//	acc             — the xor of dimHash over the mask's dimensions
//	KeyHash         — mix64(acc ^ maskSalt[mask])
//
// xor makes acc updatable in O(1) when one dimension enters or leaves the
// mask; the final mix64 with a per-mask salt breaks the linearity of plain
// xor composition (so e.g. {A,B} and {C} cannot collide by cancellation
// alone) and spreads the bits for the power-of-two probe index.

// mix64 is the splitmix64 finaliser: a fast, well-distributed bijection.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// maskSalt holds one salt per mask value (index 0, the root, is unused by
// the table but kept so the array indexes directly by mask).
var maskSalt = func() [int(attr.AllDims) + 1]uint64 {
	var salts [int(attr.AllDims) + 1]uint64
	for m := range salts {
		salts[m] = mix64(0x9e3779b97f4a7c15 ^ uint64(m))
	}
	return salts
}()

// dimHash hashes one (dimension, value) pair. The +1 keeps dimension 0
// with value 0 away from the all-zero input, whose mixed hash is 0 and
// would make acc insensitive to that pair.
func dimHash(d attr.Dim, val int32) uint64 {
	return mix64(uint64(d+1)<<32 | uint64(uint32(val)))
}

// Hasher caches the seven per-dimension hashes of one session's attribute
// vector so subset hashes cost one xor per changed dimension.
type Hasher struct {
	dim [attr.NumDims]uint64
}

// Reset recomputes the per-dimension hashes for vector v.
func (h *Hasher) Reset(v attr.Vector) {
	for d := attr.Dim(0); d < attr.NumDims; d++ {
		h.dim[d] = dimHash(d, v[d])
	}
}

// VectorHash hashes a full attribute vector: the xor of all seven dimension
// hashes finalised with the all-dims salt (identical to KeyHash of the leaf
// key). The sharded aggregation path partitions sessions by this hash, so
// sessions with equal attribute vectors always land in the same shard and
// fine-mask keys stay shard-local — only coarse projections overlap at
// merge time.
func VectorHash(v attr.Vector) uint64 {
	var acc uint64
	for d := attr.Dim(0); d < attr.NumDims; d++ {
		acc ^= dimHash(d, v[d])
	}
	return mix64(acc ^ maskSalt[attr.AllDims])
}

// KeyHash hashes a canonical cluster key from scratch. It agrees exactly
// with the incremental hashes the enumeration produces, so point lookups
// (Get) find keys inserted by AddSession.
func KeyHash(k attr.Key) uint64 {
	var acc uint64
	for d := attr.Dim(0); d < attr.NumDims; d++ {
		if k.Mask.Has(d) {
			acc ^= dimHash(d, k.Vals[d])
		}
	}
	return mix64(acc ^ maskSalt[k.Mask])
}
