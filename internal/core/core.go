// Package core orchestrates the paper's end-to-end analysis: it turns a
// trace (streamed from disk or regenerated synthetically) into per-epoch,
// per-metric summaries — problem clusters, critical clusters with
// attribution, and coverage — that the temporal analyses (§4), the
// breakdowns (§4.3), and the what-if simulations (§5) consume.
//
// Epochs are analysed independently and in parallel; the retained summaries
// are compact (cluster keys and tallies, never raw sessions), so two-week
// traces analyse in memory comfortably.
package core

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/core/engine"
	"repro/internal/critical"
	"repro/internal/epoch"
	"repro/internal/metric"
	"repro/internal/session"
	"repro/internal/synth"
	"repro/internal/trace"
)

// Config parameterises the analysis.
type Config struct {
	// Thresholds are the problem-session and problem-cluster thresholds.
	Thresholds metric.Thresholds
	// MaxDims caps the attribute-subset sizes enumerated (0 = all seven,
	// the paper's full hierarchy).
	MaxDims int
	// Options tunes the critical-cluster detector.
	Options critical.Options
	// Workers bounds analysis parallelism (0 = GOMAXPROCS): the shard
	// count of the per-epoch aggregation and the fan-out of trace-level
	// epoch analysis.
	Workers int
	// PipelineDepth bounds how many completed epochs may queue between the
	// ingest and analysis stages of AnalyzeTrace (and other engine.Pipeline
	// consumers); values < 1 mean 1.
	PipelineDepth int
	// KeepProblemKeys retains the per-epoch problem-cluster key sets
	// (needed by the prevalence/persistence analyses; on by default in
	// DefaultConfig).
	KeepProblemKeys bool
}

// DefaultConfig returns the analysis configuration used across the
// reproduction, with the cluster-size floor scaled to the epoch volume.
func DefaultConfig(sessionsPerEpoch int) Config {
	return Config{
		Thresholds:      metric.Default().ScaleMinSessions(sessionsPerEpoch),
		Options:         critical.DefaultOptions(),
		KeepProblemKeys: true,
	}
}

// CriticalSummary is the retained record of one critical cluster.
type CriticalSummary struct {
	Key                attr.Key
	Sessions           int32
	Problems           int32
	Ratio              float64
	AttributedProblems float64
	AttributedSessions float64
	ProblemClusters    float64
}

// MetricSummary is the retained analysis of one (epoch, metric) pair.
type MetricSummary struct {
	Metric         metric.Metric
	GlobalSessions int32
	GlobalProblems int32
	GlobalRatio    float64
	Threshold      float64

	// NumProblemClusters counts the epoch's problem clusters.
	NumProblemClusters int
	// ProblemKeys holds the problem-cluster keys when retained.
	ProblemKeys []attr.Key
	// Critical lists the epoch's critical clusters, sorted by key.
	Critical []CriticalSummary
	// CoveredProblems counts problem sessions inside ≥1 critical cluster.
	CoveredProblems int32
	// ProblemsInProblemClusters counts problem sessions inside ≥1 problem
	// cluster.
	ProblemsInProblemClusters int32
}

// CriticalCoverage returns the fraction of problem sessions covered by
// critical clusters.
func (ms *MetricSummary) CriticalCoverage() float64 {
	if ms.GlobalProblems == 0 {
		return 0
	}
	return float64(ms.CoveredProblems) / float64(ms.GlobalProblems)
}

// ProblemCoverage returns the fraction of problem sessions inside problem
// clusters.
func (ms *MetricSummary) ProblemCoverage() float64 {
	if ms.GlobalProblems == 0 {
		return 0
	}
	return float64(ms.ProblemsInProblemClusters) / float64(ms.GlobalProblems)
}

// CriticalSet returns the epoch's critical keys as a set.
func (ms *MetricSummary) CriticalSet() map[attr.Key]bool {
	set := make(map[attr.Key]bool, len(ms.Critical))
	for i := range ms.Critical {
		set[ms.Critical[i].Key] = true
	}
	return set
}

// EpochResult bundles the four metric summaries of one epoch.
type EpochResult struct {
	Epoch   epoch.Index
	Metrics [metric.NumMetrics]MetricSummary
}

// TraceResult is the full analysis of a trace.
type TraceResult struct {
	Trace      epoch.Range
	Thresholds metric.Thresholds
	// Epochs holds one result per epoch, ordered; index i is epoch
	// Trace.Start+i.
	Epochs []EpochResult
	// Pipeline snapshots the two-stage pipeline's stall counters when the
	// result came from AnalyzeTrace (zero otherwise).
	Pipeline engine.Stats
}

// At returns the result of epoch e, or nil when outside the trace.
func (tr *TraceResult) At(e epoch.Index) *EpochResult {
	if !tr.Trace.Contains(e) {
		return nil
	}
	return &tr.Epochs[int(e-tr.Trace.Start)]
}

// Slice returns a TraceResult restricted to sub-range r (shared epochs).
func (tr *TraceResult) Slice(r epoch.Range) *TraceResult {
	if r.Start < tr.Trace.Start {
		r.Start = tr.Trace.Start
	}
	if r.End > tr.Trace.End {
		r.End = tr.Trace.End
	}
	return &TraceResult{
		Trace:      r,
		Thresholds: tr.Thresholds,
		Epochs:     tr.Epochs[int(r.Start-tr.Trace.Start):int(r.End-tr.Trace.Start)],
	}
}

// minShardedSessions keeps small epochs on the serial path: below this
// volume the shard fan-out and merge walk cost more than the enumeration
// they parallelise. The sharded and serial paths are bit-identical (the
// differential tests prove it), so the cutover is purely a perf heuristic.
const minShardedSessions = 2048

// effectiveWorkers resolves the configured worker count for one epoch.
func effectiveWorkers(workers, sessions int) int {
	w := cluster.ResolveWorkers(workers)
	if sessions < minShardedSessions {
		return 1
	}
	return w
}

// AnalyzeEpoch analyses one epoch of digested sessions. The count table is
// drawn from the aggregation-engine pool and returned to it before this
// function returns (the summaries copy everything they keep), so a
// steady-state stream of epochs rebuilds the table without allocating.
//
// When cfg.Workers resolves to more than one and the epoch is large enough,
// the table is built by sharding sessions across workers (see
// cluster.NewTableParallel) and the four per-metric view/detect passes run
// concurrently. Results are byte-identical to the serial path for any
// worker count: table counts are exact integer sums, the per-metric
// summaries share no accumulation state, and every retained slice is
// sorted.
func AnalyzeEpoch(e epoch.Index, lites []cluster.Lite, cfg Config) (*EpochResult, error) {
	if err := cfg.Thresholds.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	workers := effectiveWorkers(cfg.Workers, len(lites))
	var tbl *cluster.Table
	if workers > 1 {
		tbl = cluster.NewTableParallel(e, lites, cfg.MaxDims, workers)
	} else {
		tbl = cluster.NewTable(e, lites, cfg.MaxDims)
	}
	defer tbl.Release()
	return analyzeTable(tbl, cfg, workers)
}

// AnalyzeEpochTable analyses a pre-built count table — the aggregator's
// path, where the table was merged from per-node partials (see
// cluster.AssembleTable) rather than built from one local session slice.
// The caller keeps ownership of tbl and releases it. Results are identical
// to AnalyzeEpoch over the same sessions in the same order: table counts
// are exact integer sums however they were accumulated, and every float
// pass reads the table and tbl.Sessions deterministically.
func AnalyzeEpochTable(tbl *cluster.Table, cfg Config) (*EpochResult, error) {
	if err := cfg.Thresholds.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return analyzeTable(tbl, cfg, effectiveWorkers(cfg.Workers, len(tbl.Sessions)))
}

// analyzeTable runs the per-metric view/detect passes over a built table.
func analyzeTable(tbl *cluster.Table, cfg Config, workers int) (*EpochResult, error) {
	res := &EpochResult{Epoch: tbl.Epoch}
	if workers > 1 {
		// Fan the independent metrics out as a second parallel dimension:
		// each goroutine reads the shared (now read-only) table and writes
		// only its own res.Metrics cell.
		var (
			wg       sync.WaitGroup
			mu       sync.Mutex
			firstErr error
		)
		for _, m := range metric.All() {
			wg.Add(1)
			go func(m metric.Metric) {
				defer wg.Done()
				view, err := cluster.BuildView(tbl, m, cfg.Thresholds)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				det := critical.DetectOpts(view, cfg.Options)
				res.Metrics[m] = summarize(m, view, det, cfg.KeepProblemKeys)
			}(m)
		}
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
		return res, nil
	}
	for _, m := range metric.All() {
		view, err := cluster.BuildView(tbl, m, cfg.Thresholds)
		if err != nil {
			return nil, err
		}
		det := critical.DetectOpts(view, cfg.Options)
		res.Metrics[m] = summarize(m, view, det, cfg.KeepProblemKeys)
	}
	return res, nil
}

func summarize(m metric.Metric, v *cluster.View, det *critical.Result, keepProblemKeys bool) MetricSummary {
	ms := MetricSummary{
		Metric:                    m,
		GlobalSessions:            v.GlobalSessions,
		GlobalProblems:            v.GlobalProblems,
		GlobalRatio:               v.GlobalRatio,
		Threshold:                 v.Threshold,
		NumProblemClusters:        len(v.Problem),
		CoveredProblems:           det.CoveredProblems,
		ProblemsInProblemClusters: det.ProblemsInProblemClusters,
	}
	if keepProblemKeys {
		ms.ProblemKeys = make([]attr.Key, 0, len(v.Problem))
		for k := range v.Problem {
			ms.ProblemKeys = append(ms.ProblemKeys, k)
		}
		sort.Slice(ms.ProblemKeys, func(i, j int) bool { return ms.ProblemKeys[i].Less(ms.ProblemKeys[j]) })
	}
	for _, k := range det.Keys() {
		c := det.Critical[k]
		ms.Critical = append(ms.Critical, CriticalSummary{
			Key:                k,
			Sessions:           c.Counts.Sessions(m),
			Problems:           c.Counts.Problems[m],
			Ratio:              c.Counts.Ratio(m),
			AttributedProblems: c.AttributedProblems,
			AttributedSessions: c.AttributedSessions,
			ProblemClusters:    c.ProblemClusters,
		})
	}
	return ms
}

// AnalyzeGenerator regenerates every epoch from the synthetic generator and
// analyses them in parallel. Parallelism here is across epochs (the
// generator produces them independently), so each AnalyzeEpoch call runs
// serially within its worker — sharding inside an epoch on top of the epoch
// fan-out would oversubscribe without adding concurrency.
func AnalyzeGenerator(g *synth.Generator, cfg Config) (*TraceResult, error) {
	tr := &TraceResult{
		Trace:      g.Config().Trace,
		Thresholds: cfg.Thresholds,
		Epochs:     make([]EpochResult, g.Config().Trace.Len()),
	}
	epochCfg := cfg
	epochCfg.Workers = 1
	err := g.ForEachEpoch(cfg.Workers, func(e epoch.Index, batch []session.Session) error {
		lites := cluster.AcquireLites()
		for i := range batch {
			lites = append(lites, cluster.Digest(&batch[i], cfg.Thresholds))
		}
		res, err := AnalyzeEpoch(e, lites, epochCfg)
		cluster.ReleaseLites(lites)
		if err != nil {
			return err
		}
		tr.Epochs[int(e-tr.Trace.Start)] = *res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return tr, nil
}

// AnalyzeTrace streams a trace reader (sessions ordered by epoch, as the
// generator and collector write them) and analyses it through the two-stage
// pipeline: the read loop digests epoch N+1 while the engine's analysis
// stage runs the sharded AnalyzeEpoch on epoch N. The bounded hand-off
// keeps at most PipelineDepth completed epochs in flight, and the
// pipeline's stall counters are returned on the result for backpressure
// observability.
func AnalyzeTrace(r *trace.Reader, cfg Config) (*TraceResult, error) {
	results := make(map[epoch.Index]*EpochResult)
	// The analysis closure runs on the pipeline's single analysis
	// goroutine; results needs no lock (Drain publishes it to this
	// goroutine before the map is read).
	pipe := engine.New(cfg.PipelineDepth, func(e epoch.Index, lites []cluster.Lite) error {
		res, err := AnalyzeEpoch(e, lites, cfg)
		cluster.ReleaseLites(lites)
		if err != nil {
			return err
		}
		results[e] = res
		return nil
	})

	var (
		cur   epoch.Index
		lites []cluster.Lite
		any   bool
		lo    epoch.Index
		hi    epoch.Index
	)
	flush := func() error {
		if len(lites) == 0 {
			return nil
		}
		if err := pipe.Submit(cur, lites); err != nil {
			return err
		}
		lites = cluster.AcquireLites()
		return nil
	}
	var s session.Session
	for {
		err := r.Next(&s)
		if err == io.EOF {
			break
		}
		if err != nil {
			_ = pipe.Drain() // the read error is the one worth surfacing
			return nil, err
		}
		if !any {
			any = true
			cur, lo, hi = s.Epoch, s.Epoch, s.Epoch
		}
		if s.Epoch != cur {
			if s.Epoch < cur {
				_ = pipe.Drain() // the ordering error is the one worth surfacing
				return nil, fmt.Errorf("core: trace not ordered by epoch (%d after %d)", s.Epoch, cur)
			}
			if err := flush(); err != nil {
				_ = pipe.Drain() // Submit already surfaced the analysis error
				return nil, err
			}
			cur = s.Epoch
		}
		if s.Epoch > hi {
			hi = s.Epoch
		}
		lites = append(lites, cluster.Digest(&s, cfg.Thresholds))
	}
	if err := flush(); err != nil {
		_ = pipe.Drain() // Submit already surfaced the analysis error
		return nil, err
	}
	if err := pipe.Drain(); err != nil {
		return nil, err
	}
	if !any {
		return nil, fmt.Errorf("core: empty trace")
	}

	tr := &TraceResult{
		Trace:      epoch.Range{Start: lo, End: hi + 1},
		Thresholds: cfg.Thresholds,
		Epochs:     make([]EpochResult, int(hi-lo)+1),
		Pipeline:   pipe.Stats(),
	}
	for e, res := range results {
		tr.Epochs[int(e-lo)] = *res
	}
	// Epochs absent from the file remain zero-valued with their index set.
	for i := range tr.Epochs {
		if tr.Epochs[i].Epoch == 0 && epoch.Index(i)+lo != 0 {
			tr.Epochs[i].Epoch = lo + epoch.Index(i)
		}
	}
	return tr, nil
}
