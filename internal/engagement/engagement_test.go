package engagement

import (
	"math"
	"testing"

	"repro/internal/metric"
)

func TestCleanSessionKeepsBaseline(t *testing.T) {
	m := Default()
	th := metric.Default()
	q := metric.QoE{JoinTimeMS: 1000, BufRatio: 0, BitrateKbps: 3000, DurationS: 600}
	if got := m.ExpectedMinutes(q, th); got != m.BaselineMinutes {
		t.Errorf("clean session minutes = %v, want %v", got, m.BaselineMinutes)
	}
	if m.LossMinutes(q, th) != 0 {
		t.Error("clean session should lose nothing")
	}
}

func TestJoinFailureLosesEverything(t *testing.T) {
	m := Default()
	th := metric.Default()
	q := metric.QoE{JoinFailed: true}
	if m.ExpectedMinutes(q, th) != 0 {
		t.Error("failed join should watch nothing")
	}
	if m.LossMinutes(q, th) != m.BaselineMinutes {
		t.Error("failed join should lose the baseline")
	}
}

// TestDobrianSlope encodes the paper's §2 citation: a 1% increase in
// buffering ratio costs 3–4 minutes of viewing (below the threshold).
func TestDobrianSlope(t *testing.T) {
	m := Default()
	th := metric.Default()
	base := metric.QoE{JoinTimeMS: 1000, BitrateKbps: 3000}
	at := func(buf float64) float64 {
		q := base
		q.BufRatio = buf
		return m.ExpectedMinutes(q, th)
	}
	slope := at(0.01) - at(0.02) // minutes lost per +1% buffering
	if slope < 3 || slope > 4 {
		t.Errorf("loss per 1%% buffering = %v minutes, want 3-4 (Dobrian)", slope)
	}
	// Beyond the 5% threshold the drop sharpens.
	steep := at(0.06) - at(0.07)
	if steep <= slope {
		t.Errorf("post-threshold slope %v should exceed pre-threshold %v", steep, slope)
	}
	// Monotone: worse buffering never watches longer.
	prev := at(0)
	for buf := 0.01; buf <= 0.5; buf += 0.01 {
		cur := at(buf)
		if cur > prev+1e-9 {
			t.Fatalf("non-monotone at %v", buf)
		}
		prev = cur
	}
}

func TestJoinAbandonment(t *testing.T) {
	m := Default()
	th := metric.Default()
	q := metric.QoE{BitrateKbps: 3000}
	q.JoinTimeMS = 2000 // at the grace boundary
	grace := m.ExpectedMinutes(q, th)
	q.JoinTimeMS = 12_000 // 10 seconds beyond
	slow := m.ExpectedMinutes(q, th)
	wantStay := 1 - 0.058*10
	if math.Abs(slow/grace-wantStay) > 1e-9 {
		t.Errorf("stay fraction = %v, want %v (Krishnan-Sitaraman)", slow/grace, wantStay)
	}
	// Extremely slow joins floor at zero, never negative.
	q.JoinTimeMS = 120_000
	if got := m.ExpectedMinutes(q, th); got != 0 {
		t.Errorf("2-minute join = %v minutes, want 0", got)
	}
}

func TestLowBitratePenalty(t *testing.T) {
	m := Default()
	th := metric.Default()
	hd := metric.QoE{JoinTimeMS: 1000, BitrateKbps: 3000}
	sd := hd
	sd.BitrateKbps = 400
	ratio := m.ExpectedMinutes(sd, th) / m.ExpectedMinutes(hd, th)
	if math.Abs(ratio-(1-m.LowBitratePenalty)) > 1e-9 {
		t.Errorf("low-bitrate ratio = %v, want %v", ratio, 1-m.LowBitratePenalty)
	}
}

func TestValidate(t *testing.T) {
	if Default().Validate() != nil {
		t.Error("default model invalid")
	}
	muts := []func(*Model){
		func(m *Model) { m.BaselineMinutes = 0 },
		func(m *Model) { m.LossPerBufPct = -1 },
		func(m *Model) { m.AbandonPerJoinSecond = 1 },
		func(m *Model) { m.JoinGraceSeconds = -1 },
		func(m *Model) { m.LowBitratePenalty = 2 },
	}
	for i, mut := range muts {
		m := Default()
		mut(&m)
		if m.Validate() == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}
}
