// Package engagement models the quality→engagement relationship that
// motivates the paper (§1): quality problems cost viewing time and
// therefore subscription/advertising revenue. The model follows the two
// studies the paper leans on — Dobrian et al. (SIGCOMM'11: ~3–4 minutes of
// viewing lost per percentage point of buffering ratio, with a sharp drop
// past the 5% threshold) and Krishnan & Sitaraman (IMC'12: viewers abandon
// at roughly 6% per second of startup delay beyond two seconds) — and lets
// the what-if analyses express alleviated problem sessions in recovered
// viewing minutes.
package engagement

import (
	"fmt"

	"repro/internal/metric"
)

// Model prices engagement loss per session.
type Model struct {
	// BaselineMinutes is the expected viewing time of a problem-free
	// session.
	BaselineMinutes float64
	// LossPerBufPct is viewing minutes lost per percentage point of
	// buffering ratio (Dobrian et al.: 3–4 minutes).
	LossPerBufPct float64
	// AbandonPerJoinSecond is the probability of abandonment per second of
	// join time beyond JoinGraceSeconds (Krishnan & Sitaraman: ~5.8%).
	AbandonPerJoinSecond float64
	// JoinGraceSeconds is the startup delay viewers tolerate freely.
	JoinGraceSeconds float64
	// LowBitratePenalty is the fractional viewing-time reduction for
	// sessions stuck below the acceptable rendition.
	LowBitratePenalty float64
}

// Default returns the literature-calibrated model.
func Default() Model {
	return Model{
		BaselineMinutes:      40,
		LossPerBufPct:        3.5,
		AbandonPerJoinSecond: 0.058,
		JoinGraceSeconds:     2,
		LowBitratePenalty:    0.25,
	}
}

// Validate reports the first invalid field.
func (m Model) Validate() error {
	switch {
	case m.BaselineMinutes <= 0:
		return fmt.Errorf("engagement: BaselineMinutes %v must be positive", m.BaselineMinutes)
	case m.LossPerBufPct < 0:
		return fmt.Errorf("engagement: negative LossPerBufPct")
	case m.AbandonPerJoinSecond < 0 || m.AbandonPerJoinSecond >= 1:
		return fmt.Errorf("engagement: AbandonPerJoinSecond %v out of [0,1)", m.AbandonPerJoinSecond)
	case m.JoinGraceSeconds < 0:
		return fmt.Errorf("engagement: negative JoinGraceSeconds")
	case m.LowBitratePenalty < 0 || m.LowBitratePenalty > 1:
		return fmt.Errorf("engagement: LowBitratePenalty %v out of [0,1]", m.LowBitratePenalty)
	}
	return nil
}

// ExpectedMinutes returns the modelled viewing time of a session with the
// given quality, in [0, BaselineMinutes].
func (m Model) ExpectedMinutes(q metric.QoE, th metric.Thresholds) float64 {
	if q.JoinFailed {
		return 0
	}
	minutes := m.BaselineMinutes

	// Startup abandonment scales the whole expectation.
	joinS := q.JoinTimeMS / 1000
	if extra := joinS - m.JoinGraceSeconds; extra > 0 {
		stay := 1 - m.AbandonPerJoinSecond*extra
		if stay < 0 {
			stay = 0
		}
		minutes *= stay
	}

	// Buffering bites linearly, with the paper's observation of a sharp
	// drop beyond the 5% threshold modelled by doubling the slope there.
	bufPct := q.BufRatio * 100
	cut := th.BufRatio * 100
	if bufPct <= cut {
		minutes -= m.LossPerBufPct * bufPct
	} else {
		minutes -= m.LossPerBufPct*cut + 2*m.LossPerBufPct*(bufPct-cut)
	}

	// Sub-threshold bitrate shaves a constant fraction.
	if q.BitrateKbps < th.BitrateKbps {
		minutes *= 1 - m.LowBitratePenalty
	}

	if minutes < 0 {
		minutes = 0
	}
	return minutes
}

// LossMinutes returns the viewing time a session lost to quality problems.
func (m Model) LossMinutes(q metric.QoE, th metric.Thresholds) float64 {
	return m.BaselineMinutes - m.ExpectedMinutes(q, th)
}
