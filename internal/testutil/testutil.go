// Package testutil holds small helpers shared by the repository's tests.
package testutil

import (
	"runtime"
	"time"
)

// TB is the subset of testing.TB the helpers need, kept narrow so the
// package stays importable from non-test code without dragging testing in.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
}

// CheckGoroutineLeaks snapshots the live goroutine count and returns a
// function that, when called (normally via defer at the top of a test),
// verifies the count has returned to the baseline. Goroutine exits are
// asynchronous — a handler may still be unwinding after Close returns — so
// the check retries for up to one second before declaring a leak.
//
//	defer testutil.CheckGoroutineLeaks(t)()
func CheckGoroutineLeaks(tb TB) func() {
	before := runtime.NumGoroutine()
	return func() {
		tb.Helper()
		deadline := time.Now().Add(time.Second)
		var after int
		for {
			after = runtime.NumGoroutine()
			if after <= before || time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if after > before {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			tb.Errorf("goroutine leak: %d before, %d after\n%s", before, after, buf[:n])
		}
	}
}
