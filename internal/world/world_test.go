package world

import (
	"math"
	"testing"

	"repro/internal/attr"
	"repro/internal/stats"
)

func build(t *testing.T) *World {
	t.Helper()
	w, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewPopulationSizes(t *testing.T) {
	w := build(t)
	if len(w.Sites) != 379 {
		t.Errorf("sites = %d, want 379 (paper §2)", len(w.Sites))
	}
	if len(w.CDNs) != 19 {
		t.Errorf("CDNs = %d, want 19 (paper §2)", len(w.CDNs))
	}
	if len(w.Countries) != 213 {
		t.Errorf("countries = %d, want 213 (paper §2)", len(w.Countries))
	}
	if len(w.ASNs) != DefaultConfig().NumASNs {
		t.Errorf("ASNs = %d, want %d", len(w.ASNs), DefaultConfig().NumASNs)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Sites {
		if a.Sites[i].Name != b.Sites[i].Name || a.Sites[i].UGC != b.Sites[i].UGC ||
			len(a.Sites[i].BitrateLadder) != len(b.Sites[i].BitrateLadder) {
			t.Fatalf("site %d differs between identically seeded worlds", i)
		}
	}
	ra, rb := stats.NewRNG(9), stats.NewRNG(9)
	for i := 0; i < 100; i++ {
		if a.SampleAttrs(ra) != b.SampleAttrs(rb) {
			t.Fatal("SampleAttrs not deterministic")
		}
	}
	cfg := DefaultConfig()
	cfg.Seed = 999
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.Sites {
		if a.Sites[i].UGC == c.Sites[i].UGC {
			same++
		}
	}
	if same == len(a.Sites) {
		t.Error("different seeds produced identical site traits")
	}
}

func TestValidateConfig(t *testing.T) {
	bad := []Config{
		{NumSites: 0, NumCDNs: 19, NumASNs: 10, NumCountries: 10},
		{NumSites: 10, NumCDNs: 1, NumASNs: 10, NumCountries: 10},
		{NumSites: 10, NumCDNs: 19, NumASNs: 1, NumCountries: 10},
		{NumSites: 10, NumCDNs: 19, NumASNs: 10, NumCountries: 2},
		{NumSites: 10, NumCDNs: 19, NumASNs: 10, NumCountries: 10, ZipfSites: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestRegionMix(t *testing.T) {
	w := build(t)
	counts := make([]int, NumRegions)
	for i := range w.ASNs {
		counts[w.ASNs[i].Region]++
	}
	frac := func(r Region) float64 { return float64(counts[r]) / float64(len(w.ASNs)) }
	if f := frac(RegionUS); f < 0.45 || f > 0.65 {
		t.Errorf("US ASN share = %v, want ~0.55", f)
	}
	if f := frac(RegionChina); f < 0.03 || f > 0.14 {
		t.Errorf("China ASN share = %v, want ~0.08", f)
	}
	for i := range w.ASNs {
		a := &w.ASNs[i]
		if w.Countries[a.Country].Region != a.Region {
			t.Fatalf("ASN %d country region mismatch", i)
		}
	}
}

func TestSiteInvariants(t *testing.T) {
	w := build(t)
	singles, ugc, lowPri := 0, 0, 0
	for i := range w.Sites {
		s := &w.Sites[i]
		if len(s.CDNIDs) == 0 || len(s.CDNIDs) != len(s.CDNWeights) {
			t.Fatalf("site %d has bad CDN mix", i)
		}
		for _, id := range s.CDNIDs {
			if id < 0 || int(id) >= len(w.CDNs) {
				t.Fatalf("site %d references CDN %d out of range", i, id)
			}
		}
		if len(s.BitrateLadder) == 0 {
			t.Fatalf("site %d has empty ladder", i)
		}
		for j := 1; j < len(s.BitrateLadder); j++ {
			if s.BitrateLadder[j] <= s.BitrateLadder[j-1] {
				t.Fatalf("site %d ladder not ascending", i)
			}
		}
		if s.SingleBitrate() {
			singles++
		}
		if s.UGC {
			ugc++
		}
		if s.LowPriority {
			lowPri++
			if len(s.CDNIDs) != 1 || s.CDNIDs[0] != 0 {
				t.Errorf("low-priority site %d should use the single global CDN", i)
			}
		}
		if s.InHouseCDN {
			if len(s.CDNIDs) != 1 || w.CDNs[s.CDNIDs[0]].Kind != CDNInHouse {
				t.Errorf("in-house site %d not wired to an in-house CDN", i)
			}
		}
	}
	if singles == 0 {
		t.Error("no single-bitrate sites generated (needed for Table 3)")
	}
	if ugc == 0 {
		t.Error("no UGC sites generated (needed for Table 3)")
	}
	if lowPri == 0 {
		t.Error("no low-priority sites generated (needed for Table 3)")
	}
}

func TestSampleAttrsInCatalog(t *testing.T) {
	w := build(t)
	r := stats.NewRNG(4)
	space := w.Space()
	for i := 0; i < 5000; i++ {
		v := w.SampleAttrs(r)
		if !space.Valid(v) {
			t.Fatalf("sampled vector %v outside catalog", v)
		}
		site := &w.Sites[v[attr.Site]]
		found := false
		for _, id := range site.CDNIDs {
			if id == v[attr.CDN] {
				found = true
			}
		}
		if !found {
			t.Fatalf("session got CDN %d not in site %d's mix", v[attr.CDN], v[attr.Site])
		}
	}
}

func TestSampleAttrsZipfSkew(t *testing.T) {
	w := build(t)
	r := stats.NewRNG(5)
	siteCounts := make([]int, len(w.Sites))
	n := 50_000
	for i := 0; i < n; i++ {
		v := w.SampleAttrs(r)
		siteCounts[v[attr.Site]]++
	}
	if siteCounts[0] <= siteCounts[100] {
		t.Errorf("site popularity not skewed: top=%d rank100=%d", siteCounts[0], siteCounts[100])
	}
	top10 := 0
	for i := 0; i < 10; i++ {
		top10 += siteCounts[i]
	}
	if f := float64(top10) / float64(n); f < 0.15 || f > 0.6 {
		t.Errorf("top-10 site share = %v, want skewed but not degenerate", f)
	}
}

func TestWirelessASNConnMix(t *testing.T) {
	w := build(t)
	r := stats.NewRNG(6)
	wireless := w.ASNsWhere(func(a *ASN) bool { return a.Wireless })
	if len(wireless) == 0 {
		t.Fatal("no wireless ASNs")
	}
	a := &w.ASNs[wireless[0]]
	mobile := 0
	n := 5000
	for i := 0; i < n; i++ {
		if stats.SampleCum(r, a.connCum) == int(ConnMobileWireless) {
			mobile++
		}
	}
	if f := float64(mobile) / float64(n); math.Abs(f-0.85) > 0.05 {
		t.Errorf("wireless ASN mobile share = %v, want ~0.85", f)
	}
}

func TestWhereHelpers(t *testing.T) {
	w := build(t)
	inHouse := w.CDNsWhere(func(c *CDN) bool { return c.Kind == CDNInHouse })
	if len(inHouse) == 0 {
		t.Error("no in-house CDNs")
	}
	ugc := w.SitesWhere(func(s *Site) bool { return s.UGC })
	for _, id := range ugc {
		if !w.Sites[id].UGC {
			t.Fatal("SitesWhere returned non-matching site")
		}
	}
	china := w.ASNsWhere(func(a *ASN) bool { return a.Region == RegionChina })
	if len(china) == 0 {
		t.Error("no Chinese ASNs (needed for Table 3)")
	}
}

func TestKindAndRegionStrings(t *testing.T) {
	if RegionChina.String() != "China" || CDNInHouse.String() != "InHouse" {
		t.Error("String() names wrong")
	}
	if Region(99).String() == "" || CDNKind(99).String() == "" {
		t.Error("out-of-range String() should not be empty")
	}
}

func TestMarginalShares(t *testing.T) {
	w := build(t)
	for d := attr.Dim(0); d < attr.NumDims; d++ {
		var sum float64
		card := 0
		switch d {
		case attr.ASN:
			card = len(w.ASNs)
		case attr.CDN:
			card = len(w.CDNs)
		case attr.Site:
			card = len(w.Sites)
		case attr.VoDOrLive:
			card = 2
		case attr.PlayerType:
			card = len(PlayerTypeNames)
		case attr.Browser:
			card = len(BrowserNames)
		case attr.ConnType:
			card = NumConnTypes
		}
		for id := int32(0); int(id) < card; id++ {
			share := w.MarginalShare(d, id)
			if share < 0 || share > 1 {
				t.Fatalf("%v[%d] share = %v", d, id, share)
			}
			sum += share
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%v shares sum to %v, want 1", d, sum)
		}
	}
	// Zipf head dominates.
	if w.MarginalShare(attr.Site, 0) <= w.MarginalShare(attr.Site, 100) {
		t.Error("site popularity not decreasing in rank")
	}
	if w.MarginalShare(attr.Site, -1) != 0 || w.MarginalShare(attr.Dim(99), 0) != 0 {
		t.Error("out-of-range shares should be 0")
	}
}

func TestKeyShare(t *testing.T) {
	w := build(t)
	root := attr.Key{}
	if w.KeyShare(root) != 1 {
		t.Error("root share should be 1")
	}
	single := attr.NewKey(map[attr.Dim]int32{attr.VoDOrLive: 0})
	if s := w.KeyShare(single); s < 0.5 || s > 0.95 {
		t.Errorf("VoD share = %v, want the majority", s)
	}
	pair := attr.NewKey(map[attr.Dim]int32{attr.VoDOrLive: 0, attr.ConnType: ConnMobileWireless})
	if w.KeyShare(pair) >= w.KeyShare(single) {
		t.Error("adding a dimension must shrink the share")
	}
}
