// Package world builds the synthetic video-delivery universe that stands in
// for the paper's proprietary dataset: 379 content providers, 19 CDNs,
// thousands of ASNs across 213 countries, device and connectivity mixes,
// and the structural traits the paper's root-cause table (Table 3) turns on
// — single-bitrate sites, UGC providers with in-house CDNs, Asian and
// Chinese ISPs, wireless carriers, and low-priority sites sharing one
// global CDN.
//
// The world is purely structural: it says who exists and how sessions are
// attributed, not when problems happen. Problem injection lives in package
// events; metric-value synthesis lives in package synth.
package world

import (
	"fmt"

	"repro/internal/attr"
	"repro/internal/stats"
)

// Region groups countries the way the paper's analysis talks about them
// (§2: ~55% US, ~12% Europe, ~8% China; §4.3: "Asian ISPs", "Chinese ISPs").
type Region uint8

// Regions of the synthetic world.
const (
	RegionUS Region = iota
	RegionEurope
	RegionChina
	RegionAsiaOther
	RegionOther

	NumRegions = 5
)

var regionNames = [NumRegions]string{"US", "Europe", "China", "AsiaOther", "Other"}

// String returns the region name.
func (r Region) String() string {
	if int(r) < len(regionNames) {
		return regionNames[r]
	}
	return fmt.Sprintf("Region(%d)", uint8(r))
}

// regionShare is the population share of viewers per region (paper §2).
var regionShare = [NumRegions]float64{0.55, 0.12, 0.08, 0.10, 0.15}

// CDNKind classifies CDNs the way paper §2 and Table 3 do.
type CDNKind uint8

// CDN kinds.
const (
	CDNGlobal     CDNKind = iota // large third-party CDN (Akamai-like)
	CDNDatacenter                // data-center CDN
	CDNInHouse                   // run by a content provider itself
	CDNISPRun                    // operated by an ISP
)

var cdnKindNames = []string{"Global", "Datacenter", "InHouse", "ISPRun"}

// String returns the CDN kind name.
func (k CDNKind) String() string {
	if int(k) < len(cdnKindNames) {
		return cdnKindNames[k]
	}
	return fmt.Sprintf("CDNKind(%d)", uint8(k))
}

// Connection types (attr.ConnType values), annotated like the paper's
// third-party connectivity feed.
const (
	ConnDSL int32 = iota
	ConnCable
	ConnFiber
	ConnMobileWireless
	ConnFixedWireless
	ConnEthernet

	NumConnTypes = 6
)

// ConnTypeNames lists the connection-type catalog in id order.
var ConnTypeNames = []string{"DSL", "Cable", "Fiber", "MobileWireless", "FixedWireless", "Ethernet"}

// PlayerTypeNames and BrowserNames list the device catalogs (paper §2).
var (
	PlayerTypeNames = []string{"Flash", "Silverlight", "HTML5"}
	BrowserNames    = []string{"Chrome", "Firefox", "MSIE", "Safari"}
	VoDOrLiveNames  = []string{"VoD", "Live"}
)

// Config sizes the synthetic world. The defaults mirror the paper's
// population at laptop scale; NumASNs is the main scale knob (the paper saw
// 15K ASNs).
type Config struct {
	Seed         uint64
	NumSites     int
	NumCDNs      int
	NumASNs      int
	NumCountries int

	// ZipfSites and ZipfASNs set the popularity skew exponents.
	ZipfSites float64
	ZipfASNs  float64
}

// DefaultConfig returns the paper-shaped world at laptop scale.
func DefaultConfig() Config {
	return Config{
		Seed:         1,
		NumSites:     379,
		NumCDNs:      19,
		NumASNs:      400,
		NumCountries: 213,
		ZipfSites:    0.9,
		ZipfASNs:     1.0,
	}
}

// PaperScaleConfig returns the full population sizes of the paper. Traces
// at this scale are large; use for overnight runs.
func PaperScaleConfig() Config {
	c := DefaultConfig()
	c.NumASNs = 15_000
	return c
}

// Validate reports the first invalid config field.
func (c Config) Validate() error {
	switch {
	case c.NumSites < 1:
		return fmt.Errorf("world: NumSites %d < 1", c.NumSites)
	case c.NumCDNs < 2:
		return fmt.Errorf("world: NumCDNs %d < 2", c.NumCDNs)
	case c.NumASNs < 2:
		return fmt.Errorf("world: NumASNs %d < 2", c.NumASNs)
	case c.NumCountries < NumRegions:
		return fmt.Errorf("world: NumCountries %d < %d", c.NumCountries, NumRegions)
	case c.ZipfSites < 0 || c.ZipfASNs < 0:
		return fmt.Errorf("world: negative Zipf exponent")
	}
	return nil
}

// Site is one content provider ("Site" in the paper).
type Site struct {
	Name string
	// CDNIDs and CDNWeights give the provider's CDN mix; single-element
	// mixes model single-CDN providers.
	CDNIDs     []int32
	CDNWeights []float64
	// LiveFraction is the share of Live (vs VoD) sessions.
	LiveFraction float64
	// BitrateLadder lists the offered renditions in kbps, ascending.
	// Single-element ladders model the paper's "single bitrate" sites.
	BitrateLadder []float64
	// UGC marks user-generated-content providers.
	UGC bool
	// InHouseCDN marks sites that primarily serve from their own CDN.
	InHouseCDN bool
	// LowPriority marks presumably low-end providers whose traffic a
	// shared global CDN deprioritises (the paper's join-failure anecdote).
	LowPriority bool
	// PlayerWeights is the per-site player mix (some sites are Flash-only
	// and so on).
	PlayerWeights []float64

	cdnCum    []float64
	playerCum []float64
}

// SingleBitrate reports whether the site offers exactly one rendition.
func (s *Site) SingleBitrate() bool { return len(s.BitrateLadder) == 1 }

// CDN is one content delivery network.
type CDN struct {
	Name string
	Kind CDNKind
	// OwnerSite is the site owning an in-house CDN, or -1.
	OwnerSite int32
}

// ASN is one autonomous system.
type ASN struct {
	Name    string
	Country int32
	Region  Region
	// Wireless marks mobile carriers.
	Wireless bool
	// ConnMix is the distribution over connection types for this ASN's
	// clients.
	ConnMix []float64

	connCum []float64
}

// Country is one viewer country.
type Country struct {
	Name   string
	Region Region
}

// World is the assembled universe. It is immutable after New and safe for
// concurrent readers.
type World struct {
	Config Config

	Sites     []Site
	CDNs      []CDN
	ASNs      []ASN
	Countries []Country

	space    *attr.Space
	siteZipf *stats.Zipf
	asnZipf  *stats.Zipf
	// browserCum is the global browser mix.
	browserCum []float64
	// marginals holds empirical per-dimension value shares, estimated once
	// at construction by Monte Carlo over SampleAttrs. Event generation
	// uses them to bound how much of an epoch a single anchor can touch.
	marginals [attr.NumDims][]float64
}

// standard bitrate ladders (kbps); index chosen per site.
var ladders = [][]float64{
	{235, 375, 560, 750, 1050, 1750, 2350, 3000, 4300},
	{375, 560, 750, 1400, 2350, 3000},
	{300, 700, 1500, 2500},
	{560, 1050, 1750, 3000, 4300, 6000},
}

// New builds a world from the config. Construction is deterministic in
// Config.Seed.
func New(cfg Config) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(cfg.Seed).Split(0x77_0801)
	w := &World{Config: cfg}

	w.buildCountries(rng.Split(1))
	w.buildCDNs(rng.Split(2))
	w.buildSites(rng.Split(3))
	w.buildASNs(rng.Split(4))
	if err := w.buildSpace(); err != nil {
		return nil, err
	}

	var err error
	if w.siteZipf, err = stats.NewZipf(cfg.NumSites, cfg.ZipfSites); err != nil {
		return nil, err
	}
	if w.asnZipf, err = stats.NewZipf(cfg.NumASNs, cfg.ZipfASNs); err != nil {
		return nil, err
	}
	if w.browserCum, err = stats.CumWeights([]float64{0.42, 0.22, 0.20, 0.16}); err != nil {
		return nil, err
	}
	w.estimateMarginals()
	return w, nil
}

// estimateMarginals samples the attribute distribution to record each
// value's population share per dimension.
func (w *World) estimateMarginals() {
	cards := [attr.NumDims]int{
		len(w.ASNs), len(w.CDNs), len(w.Sites),
		len(VoDOrLiveNames), len(PlayerTypeNames), len(BrowserNames), NumConnTypes,
	}
	for d := attr.Dim(0); d < attr.NumDims; d++ {
		w.marginals[d] = make([]float64, cards[d])
	}
	const samples = 20000
	r := stats.NewRNG(w.Config.Seed).Split(0x3A26)
	for i := 0; i < samples; i++ {
		v := w.SampleAttrs(r)
		for d := attr.Dim(0); d < attr.NumDims; d++ {
			w.marginals[d][v[d]]++
		}
	}
	for d := attr.Dim(0); d < attr.NumDims; d++ {
		for i := range w.marginals[d] {
			w.marginals[d][i] /= samples
		}
	}
}

// MarginalShare returns the estimated fraction of sessions carrying value
// id on dimension d.
func (w *World) MarginalShare(d attr.Dim, id int32) float64 {
	if int(d) >= len(w.marginals) || id < 0 || int(id) >= len(w.marginals[d]) {
		return 0
	}
	return w.marginals[d][id]
}

// KeyShare estimates the fraction of sessions matching key k under an
// independence approximation across dimensions.
func (w *World) KeyShare(k attr.Key) float64 {
	share := 1.0
	for _, d := range k.Mask.Dims() {
		share *= w.MarginalShare(d, k.Vals[d])
	}
	return share
}

func (w *World) buildCountries(rng *stats.RNG) {
	n := w.Config.NumCountries
	w.Countries = make([]Country, n)
	// Fixed flagship countries per region, remainder distributed.
	fixed := []Region{RegionUS, RegionChina, RegionEurope, RegionEurope, RegionEurope,
		RegionAsiaOther, RegionAsiaOther, RegionOther, RegionOther, RegionOther}
	for i := range w.Countries {
		var reg Region
		if i < len(fixed) {
			reg = fixed[i]
		} else {
			// Weighted by how many countries each region plausibly has.
			reg = Region(stats.WeightedChoice(rng, []float64{0.01, 0.20, 0.005, 0.25, 0.53}))
		}
		w.Countries[i] = Country{Name: fmt.Sprintf("country-%03d", i), Region: reg}
	}
}

func (w *World) buildCDNs(rng *stats.RNG) {
	n := w.Config.NumCDNs
	w.CDNs = make([]CDN, n)
	for i := range w.CDNs {
		kind := CDNGlobal
		switch {
		case i == 0 || i == 1: // the big global CDNs
			kind = CDNGlobal
		case i < 5:
			kind = CDNDatacenter
		case float64(i) < 0.55*float64(n):
			kind = CDNGlobal
		case float64(i) < 0.8*float64(n):
			kind = CDNISPRun
		default:
			kind = CDNInHouse
		}
		w.CDNs[i] = CDN{
			Name:      fmt.Sprintf("cdn-%02d", i),
			Kind:      kind,
			OwnerSite: -1,
		}
	}
	_ = rng
}

func (w *World) buildSites(rng *stats.RNG) {
	n := w.Config.NumSites
	w.Sites = make([]Site, n)
	inHouse := w.cdnIDsOfKind(CDNInHouse)
	nonInHouse := w.cdnIDsOfKindNot(CDNInHouse)
	for i := range w.Sites {
		r := rng.Split(uint64(i))
		s := Site{
			Name:         fmt.Sprintf("site-%03d", i),
			LiveFraction: 0.05 + 0.25*r.Beta(1.2, 4),
		}
		// Content class: ~12% UGC, ~6% single-bitrate, ~4% low-priority.
		// The single-bitrate and low-priority traits skip the head of the
		// popularity ranking: top providers run full ladders on first-tier
		// CDN contracts, and a top site with a sub-threshold ladder would
		// dominate the global bitrate problem ratio.
		s.UGC = r.Bool(0.12)
		single := i >= 30 && r.Bool(0.07)
		s.LowPriority = i >= 15 && i < 200 && r.Bool(0.05)

		// Bitrate ladder.
		if single {
			// Single-bitrate sites serve one mid-to-low rendition; many of
			// them sit below decent HD, per the paper's Table 3.
			opts := []float64{500, 560, 800, 1200}
			s.BitrateLadder = []float64{opts[r.Intn(len(opts))]}
		} else {
			s.BitrateLadder = ladders[r.Intn(len(ladders))]
		}

		// CDN mix. Some sites run their content off an in-house CDN; some
		// low-priority sites share the same single global CDN (cdn-00);
		// the rest use one to three third-party CDNs.
		switch {
		case len(inHouse) > 0 && s.UGC && !s.LowPriority && r.Bool(0.5):
			s.InHouseCDN = true
			cdn := inHouse[r.Intn(len(inHouse))]
			s.CDNIDs = []int32{cdn}
			s.CDNWeights = []float64{1}
			if w.CDNs[cdn].OwnerSite < 0 {
				w.CDNs[cdn].OwnerSite = int32(i)
			}
		case s.LowPriority:
			s.CDNIDs = []int32{0}
			s.CDNWeights = []float64{1}
		default:
			k := 1 + r.Intn(3)
			perm := r.Perm(len(nonInHouse))
			for j := 0; j < k; j++ {
				s.CDNIDs = append(s.CDNIDs, nonInHouse[perm[j]])
				s.CDNWeights = append(s.CDNWeights, 0.2+r.Float64())
			}
		}

		// Player mix: mostly Flash-era with HTML5 ramping; some sites are
		// single-player.
		switch {
		case r.Bool(0.1):
			s.PlayerWeights = []float64{1, 0, 0} // Flash only
		case r.Bool(0.05):
			s.PlayerWeights = []float64{0, 0, 1} // HTML5 only
		default:
			s.PlayerWeights = []float64{0.55 + 0.2*r.Float64(), 0.1 + 0.1*r.Float64(), 0.2 + 0.2*r.Float64()}
		}

		var err error
		if s.cdnCum, err = stats.CumWeights(s.CDNWeights); err != nil {
			panic(fmt.Sprintf("world: site %d cdn weights: %v", i, err))
		}
		if s.playerCum, err = stats.CumWeights(s.PlayerWeights); err != nil {
			panic(fmt.Sprintf("world: site %d player weights: %v", i, err))
		}
		w.Sites[i] = s
	}
}

func (w *World) buildASNs(rng *stats.RNG) {
	n := w.Config.NumASNs
	w.ASNs = make([]ASN, n)
	// Countries by region for assignment.
	byRegion := make([][]int32, NumRegions)
	for i, c := range w.Countries {
		byRegion[c.Region] = append(byRegion[c.Region], int32(i))
	}
	for i := range w.ASNs {
		r := rng.Split(uint64(i))
		reg := Region(stats.WeightedChoice(r, regionShare[:]))
		countries := byRegion[reg]
		if len(countries) == 0 {
			countries = []int32{0}
		}
		a := ASN{
			Name:     fmt.Sprintf("AS%d", 1000+i),
			Country:  countries[r.Intn(len(countries))],
			Region:   reg,
			Wireless: r.Bool(0.18),
		}
		a.ConnMix = connMix(r, reg, a.Wireless)
		var err error
		if a.connCum, err = stats.CumWeights(a.ConnMix); err != nil {
			panic(fmt.Sprintf("world: asn %d conn mix: %v", i, err))
		}
		w.ASNs[i] = a
	}
}

// connMix returns the connection-type distribution for an ASN.
func connMix(r *stats.RNG, reg Region, wireless bool) []float64 {
	if wireless {
		return []float64{0.02, 0.02, 0.01, 0.85, 0.08, 0.02}
	}
	mix := make([]float64, NumConnTypes)
	switch reg {
	case RegionUS:
		copy(mix, []float64{0.22, 0.38, 0.14, 0.08, 0.04, 0.14})
	case RegionEurope:
		copy(mix, []float64{0.38, 0.22, 0.16, 0.08, 0.04, 0.12})
	case RegionChina, RegionAsiaOther:
		copy(mix, []float64{0.34, 0.12, 0.22, 0.14, 0.08, 0.10})
	default:
		copy(mix, []float64{0.36, 0.16, 0.06, 0.22, 0.12, 0.08})
	}
	// Mild per-ASN perturbation so ASNs are not identical.
	for i := range mix {
		mix[i] *= 0.7 + 0.6*r.Float64()
	}
	return mix
}

func (w *World) cdnIDsOfKind(k CDNKind) []int32 {
	var out []int32
	for i := range w.CDNs {
		if w.CDNs[i].Kind == k {
			out = append(out, int32(i))
		}
	}
	return out
}

func (w *World) cdnIDsOfKindNot(k CDNKind) []int32 {
	var out []int32
	for i := range w.CDNs {
		if w.CDNs[i].Kind != k {
			out = append(out, int32(i))
		}
	}
	return out
}

func (w *World) buildSpace() error {
	names := map[attr.Dim][]string{
		attr.VoDOrLive:  VoDOrLiveNames,
		attr.PlayerType: PlayerTypeNames,
		attr.Browser:    BrowserNames,
		attr.ConnType:   ConnTypeNames,
	}
	siteNames := make([]string, len(w.Sites))
	for i := range w.Sites {
		siteNames[i] = w.Sites[i].Name
	}
	cdnNames := make([]string, len(w.CDNs))
	for i := range w.CDNs {
		cdnNames[i] = w.CDNs[i].Name
	}
	asnNames := make([]string, len(w.ASNs))
	for i := range w.ASNs {
		asnNames[i] = w.ASNs[i].Name
	}
	names[attr.Site] = siteNames
	names[attr.CDN] = cdnNames
	names[attr.ASN] = asnNames
	space, err := attr.NewSpace(names)
	if err != nil {
		return err
	}
	w.space = space
	return nil
}

// Space returns the attribute catalog of the world.
func (w *World) Space() *attr.Space { return w.space }

// SampleAttrs draws one session's attribute vector. The draw is independent
// across calls given the RNG stream.
func (w *World) SampleAttrs(r *stats.RNG) attr.Vector {
	var v attr.Vector
	siteID := w.siteZipf.Sample(r)
	site := &w.Sites[siteID]
	asnID := w.asnZipf.Sample(r)
	asn := &w.ASNs[asnID]

	v[attr.Site] = int32(siteID)
	v[attr.ASN] = int32(asnID)
	v[attr.CDN] = site.CDNIDs[stats.SampleCum(r, site.cdnCum)]
	if r.Bool(site.LiveFraction) {
		v[attr.VoDOrLive] = 1
	}
	v[attr.PlayerType] = int32(stats.SampleCum(r, site.playerCum))
	v[attr.Browser] = int32(stats.SampleCum(r, w.browserCum))
	v[attr.ConnType] = int32(stats.SampleCum(r, asn.connCum))
	return v
}

// ASNsWhere returns ASN ids satisfying pred, most popular first (ids are
// popularity-ranked by construction).
func (w *World) ASNsWhere(pred func(*ASN) bool) []int32 {
	var out []int32
	for i := range w.ASNs {
		if pred(&w.ASNs[i]) {
			out = append(out, int32(i))
		}
	}
	return out
}

// SitesWhere returns site ids satisfying pred, most popular first.
func (w *World) SitesWhere(pred func(*Site) bool) []int32 {
	var out []int32
	for i := range w.Sites {
		if pred(&w.Sites[i]) {
			out = append(out, int32(i))
		}
	}
	return out
}

// CDNsWhere returns CDN ids satisfying pred.
func (w *World) CDNsWhere(pred func(*CDN) bool) []int32 {
	var out []int32
	for i := range w.CDNs {
		if pred(&w.CDNs[i]) {
			out = append(out, int32(i))
		}
	}
	return out
}
