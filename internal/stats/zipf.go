package stats

import (
	"fmt"
	"math"
	"sort"
)

// Zipf samples ranks 0..n-1 with probability proportional to
// 1/(rank+1)^alpha. Popularity of sites, ASNs, and content in the synthetic
// world follows Zipf laws, matching the long literature on video popularity
// the paper cites (§7, "Other video measurements").
//
// Sampling is by inverted CDF over precomputed cumulative weights: O(log n)
// per draw, exact, and allocation-free after construction.
type Zipf struct {
	cum []float64 // cumulative probabilities; cum[n-1] == 1
}

// NewZipf constructs a sampler over n ranks with exponent alpha >= 0
// (alpha = 0 is uniform).
func NewZipf(n int, alpha float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stats: Zipf needs n > 0, got %d", n)
	}
	if alpha < 0 || math.IsNaN(alpha) {
		return nil, fmt.Errorf("stats: Zipf needs alpha >= 0, got %v", alpha)
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), alpha)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	cum[n-1] = 1
	return &Zipf{cum: cum}, nil
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cum) }

// Sample draws a rank using randomness from r.
func (z *Zipf) Sample(r *RNG) int {
	u := r.Float64()
	return sort.SearchFloat64s(z.cum, u)
}

// Prob returns the probability of rank i.
func (z *Zipf) Prob(i int) float64 {
	if i < 0 || i >= len(z.cum) {
		return 0
	}
	if i == 0 {
		return z.cum[0]
	}
	return z.cum[i] - z.cum[i-1]
}

// WeightedChoice samples an index proportionally to the given non-negative
// weights. It returns -1 when all weights are zero or the slice is empty.
func WeightedChoice(r *RNG, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return -1
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// CumWeights precomputes a cumulative distribution for repeated sampling via
// SampleCum. Weights must be non-negative with a positive sum.
func CumWeights(weights []float64) ([]float64, error) {
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("stats: negative weight %v at %d", w, i)
		}
		total += w
		cum[i] = total
	}
	if total <= 0 {
		return nil, fmt.Errorf("stats: weights sum to %v, need > 0", total)
	}
	for i := range cum {
		cum[i] /= total
	}
	cum[len(cum)-1] = 1
	return cum, nil
}

// SampleCum draws an index from a cumulative distribution built by
// CumWeights.
func SampleCum(r *RNG, cum []float64) int {
	return sort.SearchFloat64s(cum, r.Float64())
}
