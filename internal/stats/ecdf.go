package stats

import (
	"fmt"
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution function over float64
// samples, used to regenerate the paper's CDF figures (Fig. 1) and inverse
// CDFs (Figs. 7, 8).
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from samples. The input is copied; NaNs are
// rejected.
func NewECDF(samples []float64) (*ECDF, error) {
	s := make([]float64, 0, len(samples))
	for i, v := range samples {
		if math.IsNaN(v) {
			return nil, fmt.Errorf("stats: NaN sample at index %d", i)
		}
		s = append(s, v)
	}
	sort.Float64s(s)
	return &ECDF{sorted: s}, nil
}

// N returns the sample count.
func (e *ECDF) N() int { return len(e.sorted) }

// At returns P(X <= x), the CDF evaluated at x. An empty ECDF returns 0.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Exceeds returns P(X > x), the inverse-CDF style fraction the paper plots
// in Figs. 7 and 8 ("fraction of problem clusters with value greater than x").
func (e *ECDF) Exceeds(x float64) float64 { return 1 - e.At(x) }

// Quantile returns the q-th quantile (q in [0, 1]) using nearest-rank on the
// sorted samples. Empty ECDFs return 0.
func (e *ECDF) Quantile(q float64) float64 {
	n := len(e.sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[n-1]
	}
	i := int(math.Ceil(q*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	return e.sorted[i]
}

// Points samples the CDF at n evenly spaced sample-rank positions, returning
// (x, P(X<=x)) pairs suitable for plotting or table output. n < 2 yields a
// single point at the maximum.
func (e *ECDF) Points(n int) []Point {
	if len(e.sorted) == 0 {
		return nil
	}
	if n < 2 {
		return []Point{{X: e.sorted[len(e.sorted)-1], Y: 1}}
	}
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		q := float64(i) / float64(n-1)
		x := e.Quantile(q)
		pts = append(pts, Point{X: x, Y: e.At(x)})
	}
	return pts
}

// Point is an (x, y) pair of a plotted series.
type Point struct {
	X, Y float64
}

// Summary holds the standard moments and order statistics of a sample set.
type Summary struct {
	N              int
	Mean, Std      float64
	Min, Max       float64
	P10, P50, P90  float64
	P95, P99, P999 float64
}

// Summarize computes a Summary. Empty input yields the zero Summary.
func Summarize(samples []float64) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	e, err := NewECDF(samples)
	if err != nil {
		return Summary{}
	}
	var sum, sq float64
	for _, v := range samples {
		sum += v
	}
	mean := sum / float64(len(samples))
	for _, v := range samples {
		d := v - mean
		sq += d * d
	}
	std := 0.0
	if len(samples) > 1 {
		std = math.Sqrt(sq / float64(len(samples)-1))
	}
	return Summary{
		N:    len(samples),
		Mean: mean, Std: std,
		Min: e.sorted[0], Max: e.sorted[len(e.sorted)-1],
		P10: e.Quantile(0.10), P50: e.Quantile(0.50), P90: e.Quantile(0.90),
		P95: e.Quantile(0.95), P99: e.Quantile(0.99), P999: e.Quantile(0.999),
	}
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range samples {
		sum += v
	}
	return sum / float64(len(samples))
}

// Median returns the 50th percentile (0 for empty input).
func Median(samples []float64) float64 {
	e, err := NewECDF(samples)
	if err != nil || e.N() == 0 {
		return 0
	}
	return e.Quantile(0.5)
}
