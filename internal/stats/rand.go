// Package stats supplies the small statistics substrate the analysis needs:
// a deterministic splittable random source, the heavy-tailed samplers that
// drive the synthetic workload (Zipf, lognormal, Pareto), empirical CDFs and
// quantiles for figure reproduction, streak extraction for the persistence
// analysis, and the Jaccard index used to compare critical clusters across
// metrics (paper Table 2).
//
// Go has no dominant data-analysis library; everything here is stdlib-only
// and purpose-built for the paper's computations.
package stats

import "math"

// RNG is a deterministic, splittable pseudo-random generator based on
// SplitMix64. Determinism matters: every experiment in the repository is
// reproducible from a single seed, and splitting lets independent model
// components (sites, ASNs, events, epochs) draw from decorrelated streams
// without sharing mutable state.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Split derives an independent generator from the current one, keyed by a
// caller-chosen label so the derived stream is stable regardless of how many
// draws the parent has made when unrelated code changes.
func (r *RNG) Split(label uint64) *RNG {
	// Mix the label through one SplitMix64 round against the seed state.
	z := r.state + 0x9e3779b97f4a7c15*(label+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return &RNG{state: z ^ (z >> 31)}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics when n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// NormFloat64 returns a standard normal variate (Box–Muller; one value per
// call keeps the generator splittable without cached state).
func (r *RNG) NormFloat64() float64 {
	u := r.nonZero()
	v := r.Float64()
	return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
}

// nonZero returns a uniform variate in (0, 1): the zero draw that would
// blow up a log or division is redrawn, preserving the draw sequence of the
// guard loops it replaces.
func (r *RNG) nonZero() float64 {
	for {
		if u := r.Float64(); u > 0 {
			return u
		}
	}
}

// ExpFloat64 returns an exponential variate with mean 1.
func (r *RNG) ExpFloat64() float64 {
	return -math.Log(r.nonZero())
}

// LogNormal returns a lognormal variate with the given parameters of the
// underlying normal (mu, sigma). The median is e^mu.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Pareto returns a Pareto variate with scale xm > 0 and shape alpha > 0.
// Heavy tails (small alpha) model the day-long problem events of paper §4.1.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	return xm / math.Pow(r.nonZero(), 1/alpha)
}

// Geometric returns the number of failures before the first success of a
// Bernoulli(p) process (support 0, 1, 2, …). p must be in (0, 1].
func (r *RNG) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("stats: Geometric with non-positive p")
	}
	u := r.nonZero()
	return int(math.Floor(math.Log(u) / math.Log(1-p)))
}

// Poisson returns a Poisson variate with the given mean (Knuth's method;
// means here are small — event arrivals per epoch).
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Beta returns a Beta(a, b) variate via Jöhnk's algorithm for small shape
// parameters and gamma ratios otherwise. Used for event severities.
func (r *RNG) Beta(a, b float64) float64 {
	x := r.gamma(a)
	y := r.gamma(b)
	if x+y <= 0 {
		return 0.5
	}
	return x / (x + y)
}

// gamma returns a Gamma(shape, 1) variate using Marsaglia–Tsang.
func (r *RNG) gamma(shape float64) float64 {
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		return r.gamma(shape+1) * math.Pow(r.nonZero(), 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.nonZero()
		if math.Log(u) < 0.5*x*x+d-d*v+d*math.Log(v) {
			return d * v
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
