package stats

import (
	"fmt"
	"math"
	"sort"
)

// Jaccard returns the Jaccard similarity |A∩B| / |A∪B| of two sets given as
// membership maps (paper Table 2 compares the top-100 critical clusters of
// metric pairs this way). Two empty sets have similarity 0.
func Jaccard[K comparable](a, b map[K]bool) float64 {
	inter, union := 0, 0
	for k := range a {
		if a[k] {
			union++
			if b[k] {
				inter++
			}
		}
	}
	for k := range b {
		if b[k] && !a[k] {
			union++
		}
	}
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Streaks collapses a sorted slice of integer positions (epoch indexes in
// which a cluster was a problem cluster) into the lengths of its maximal
// runs of consecutive values. This is the paper's persistence measure
// (§4.1, Fig. 6): occurrences at epochs {2,3, 5,6,7} yield streaks {2, 3}.
// The input must be strictly increasing.
func Streaks(positions []int32) []int {
	if len(positions) == 0 {
		return nil
	}
	var runs []int
	runLen := 1
	for i := 1; i < len(positions); i++ {
		if positions[i] == positions[i-1]+1 {
			runLen++
			continue
		}
		runs = append(runs, runLen)
		runLen = 1
	}
	runs = append(runs, runLen)
	return runs
}

// MedianInt returns the median of a slice of ints using the lower middle for
// even lengths (matching nearest-rank). Zero for empty input.
func MedianInt(xs []int) int {
	if len(xs) == 0 {
		return 0
	}
	s := append([]int(nil), xs...)
	sort.Ints(s)
	return s[(len(s)-1)/2]
}

// MaxInt returns the maximum (0 for empty input).
func MaxInt(xs []int) int {
	m := 0
	for i, x := range xs {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}

// LogBins returns n logarithmically spaced bin edges from lo to hi
// inclusive, for histograms over heavy-tailed quantities (Fig. 1's log-x
// CDFs). lo and hi must be positive with lo < hi and n >= 2.
func LogBins(lo, hi float64, n int) ([]float64, error) {
	if lo <= 0 || hi <= lo || n < 2 {
		return nil, fmt.Errorf("stats: bad log bins (lo=%v hi=%v n=%d)", lo, hi, n)
	}
	edges := make([]float64, n)
	ratio := math.Log(hi / lo)
	for i := 0; i < n; i++ {
		edges[i] = lo * math.Exp(ratio*float64(i)/float64(n-1))
	}
	edges[n-1] = hi
	return edges, nil
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// TopK returns the indexes of the k largest scores, ties broken by lower
// index for determinism. k is clamped to len(scores).
func TopK(scores []float64, k int) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] > scores[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	if k < 0 {
		k = 0
	}
	return idx[:k]
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// series (0 for degenerate inputs). The paper's §2 observes that the four
// metrics' problem-ratio timeseries are only weakly correlated.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return 0
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx <= 0 || syy <= 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
