package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Error("different seeds produced identical first value")
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(7)
	s1 := r.Split(1)
	s2 := r.Split(2)
	s1again := NewRNG(7).Split(1)
	if s1.Uint64() != s1again.Uint64() {
		t.Error("Split is not stable for the same label")
	}
	if s1.Uint64() == s2.Uint64() {
		t.Error("Split streams for different labels collide immediately")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10_000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(4)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn(5) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Errorf("Intn(5) visited %d values, want 5", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(5)
	n := 200_000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sq += v * v
	}
	mean := sum / float64(n)
	variance := sq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := NewRNG(6)
	var samples []float64
	for i := 0; i < 50_000; i++ {
		samples = append(samples, r.LogNormal(math.Log(3), 0.8))
	}
	med := Median(samples)
	if med < 2.7 || med > 3.3 {
		t.Errorf("lognormal median = %v, want ~3", med)
	}
}

func TestParetoTail(t *testing.T) {
	r := NewRNG(8)
	n := 100_000
	over := 0
	for i := 0; i < n; i++ {
		v := r.Pareto(1, 1.5)
		if v < 1 {
			t.Fatalf("Pareto below scale: %v", v)
		}
		if v > 10 {
			over++
		}
	}
	// P(X > 10) = 10^-1.5 ≈ 0.0316.
	frac := float64(over) / float64(n)
	if frac < 0.025 || frac > 0.04 {
		t.Errorf("Pareto tail frac = %v, want ~0.0316", frac)
	}
}

func TestGeometricMean(t *testing.T) {
	r := NewRNG(9)
	p := 0.25
	n := 100_000
	sum := 0
	for i := 0; i < n; i++ {
		sum += r.Geometric(p)
	}
	mean := float64(sum) / float64(n)
	want := (1 - p) / p // = 3
	if math.Abs(mean-want) > 0.1 {
		t.Errorf("geometric mean = %v, want %v", mean, want)
	}
	if NewRNG(1).Geometric(1) != 0 {
		t.Error("Geometric(1) should be 0")
	}
}

func TestPoissonMean(t *testing.T) {
	r := NewRNG(10)
	n := 50_000
	sum := 0
	for i := 0; i < n; i++ {
		sum += r.Poisson(2.5)
	}
	mean := float64(sum) / float64(n)
	if math.Abs(mean-2.5) > 0.1 {
		t.Errorf("poisson mean = %v, want 2.5", mean)
	}
	if r.Poisson(0) != 0 {
		t.Error("Poisson(0) should be 0")
	}
}

func TestBetaRange(t *testing.T) {
	r := NewRNG(11)
	var sum float64
	n := 50_000
	for i := 0; i < n; i++ {
		v := r.Beta(2, 5)
		if v < 0 || v > 1 {
			t.Fatalf("Beta out of range: %v", v)
		}
		sum += v
	}
	mean := sum / float64(n)
	if math.Abs(mean-2.0/7.0) > 0.02 {
		t.Errorf("Beta(2,5) mean = %v, want %v", mean, 2.0/7.0)
	}
}

func TestPerm(t *testing.T) {
	r := NewRNG(12)
	p := r.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("bad permutation %v", p)
		}
		seen[v] = true
	}
}

func TestZipfSkew(t *testing.T) {
	z, err := NewZipf(100, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRNG(13)
	counts := make([]int, 100)
	n := 100_000
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	if counts[0] < counts[1] || counts[1] < counts[10] {
		t.Errorf("Zipf not skewed: c0=%d c1=%d c10=%d", counts[0], counts[1], counts[10])
	}
	// Rank 0 probability for alpha=1, n=100 is 1/H(100) ≈ 0.1928.
	p0 := float64(counts[0]) / float64(n)
	if math.Abs(p0-0.1928) > 0.01 {
		t.Errorf("Zipf p(0) = %v, want ~0.1928", p0)
	}
	if math.Abs(z.Prob(0)-0.1928) > 0.001 {
		t.Errorf("Zipf.Prob(0) = %v, want ~0.1928", z.Prob(0))
	}
}

func TestZipfUniform(t *testing.T) {
	z, err := NewZipf(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if math.Abs(z.Prob(i)-0.25) > 1e-12 {
			t.Errorf("uniform Zipf Prob(%d) = %v", i, z.Prob(i))
		}
	}
	if z.Prob(-1) != 0 || z.Prob(4) != 0 {
		t.Error("out-of-range Prob should be 0")
	}
}

func TestZipfErrors(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Error("NewZipf(0) succeeded")
	}
	if _, err := NewZipf(5, -1); err == nil {
		t.Error("NewZipf(alpha<0) succeeded")
	}
}

func TestWeightedChoice(t *testing.T) {
	r := NewRNG(14)
	counts := [3]int{}
	for i := 0; i < 30_000; i++ {
		counts[WeightedChoice(r, []float64{1, 0, 3})]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Errorf("weight ratio = %v, want ~3", ratio)
	}
	if WeightedChoice(r, nil) != -1 || WeightedChoice(r, []float64{0, 0}) != -1 {
		t.Error("degenerate WeightedChoice should return -1")
	}
}

func TestCumWeights(t *testing.T) {
	cum, err := CumWeights([]float64{2, 2, 6})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.2, 0.4, 1}
	for i := range want {
		if math.Abs(cum[i]-want[i]) > 1e-12 {
			t.Errorf("cum[%d] = %v, want %v", i, cum[i], want[i])
		}
	}
	if _, err := CumWeights([]float64{-1, 2}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := CumWeights([]float64{0, 0}); err == nil {
		t.Error("zero-sum weights accepted")
	}
	r := NewRNG(15)
	counts := [3]int{}
	for i := 0; i < 30_000; i++ {
		counts[SampleCum(r, cum)]++
	}
	if counts[2] < counts[0] || counts[2] < counts[1] {
		t.Errorf("SampleCum distribution off: %v", counts)
	}
}

func TestECDFBasics(t *testing.T) {
	e, err := NewECDF([]float64{3, 1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if e.N() != 4 {
		t.Errorf("N = %d", e.N())
	}
	cases := []struct {
		x    float64
		want float64
	}{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {99, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", c.x, got, c.want)
		}
		if got := e.Exceeds(c.x); math.Abs(got-(1-c.want)) > 1e-12 {
			t.Errorf("Exceeds(%v) = %v, want %v", c.x, got, 1-c.want)
		}
	}
	if _, err := NewECDF([]float64{math.NaN()}); err == nil {
		t.Error("NaN sample accepted")
	}
}

func TestECDFQuantile(t *testing.T) {
	e, _ := NewECDF([]float64{10, 20, 30, 40})
	cases := []struct{ q, want float64 }{
		{0, 10}, {0.25, 10}, {0.5, 20}, {0.75, 30}, {1, 40},
	}
	for _, c := range cases {
		if got := e.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	empty, _ := NewECDF(nil)
	if empty.Quantile(0.5) != 0 || empty.At(1) != 0 {
		t.Error("empty ECDF should return zeros")
	}
}

func TestECDFPoints(t *testing.T) {
	e, _ := NewECDF([]float64{1, 2, 3, 4, 5})
	pts := e.Points(5)
	if len(pts) != 5 {
		t.Fatalf("Points(5) returned %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].Y < pts[i-1].Y {
			t.Errorf("Points not monotone at %d: %+v", i, pts)
		}
	}
	if pts[len(pts)-1].Y != 1 {
		t.Errorf("last point Y = %v, want 1", pts[len(pts)-1].Y)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("Summarize = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("Std = %v, want %v", s.Std, math.Sqrt(2.5))
	}
	if Summarize(nil).N != 0 {
		t.Error("empty Summarize should be zero")
	}
}

func TestJaccard(t *testing.T) {
	a := map[string]bool{"x": true, "y": true, "z": true}
	b := map[string]bool{"y": true, "z": true, "w": true}
	if got := Jaccard(a, b); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Jaccard = %v, want 0.5", got)
	}
	if Jaccard(a, a) != 1 {
		t.Error("self Jaccard should be 1")
	}
	if Jaccard(map[string]bool{}, map[string]bool{}) != 0 {
		t.Error("empty Jaccard should be 0")
	}
	// false entries do not count as members.
	c := map[string]bool{"x": false}
	if Jaccard(c, c) != 0 {
		t.Error("false membership counted")
	}
}

// TestStreaksPaperExample encodes the worked example of paper Fig. 6:
// the cluster (ASN1, CDN1) occurs in epochs {2,3, 5,6} → streaks {2,2};
// CDN2 occurs in epochs {1,2,3, 5,6} → streaks {3,2}.
func TestStreaksPaperExample(t *testing.T) {
	got := Streaks([]int32{2, 3, 5, 6})
	if len(got) != 2 || got[0] != 2 || got[1] != 2 {
		t.Errorf("ASN1,CDN1 streaks = %v, want [2 2]", got)
	}
	got = Streaks([]int32{1, 2, 3, 5, 6})
	if len(got) != 2 || got[0] != 3 || got[1] != 2 {
		t.Errorf("CDN2 streaks = %v, want [3 2]", got)
	}
	if Streaks(nil) != nil {
		t.Error("empty Streaks should be nil")
	}
	got = Streaks([]int32{7})
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("single streak = %v", got)
	}
}

func TestStreaksProperty(t *testing.T) {
	// Sum of streak lengths must equal the number of positions.
	f := func(raw []uint8) bool {
		seen := map[int32]bool{}
		var pos []int32
		for _, v := range raw {
			seen[int32(v)] = true
		}
		for v := int32(0); v < 256; v++ {
			if seen[v] {
				pos = append(pos, v)
			}
		}
		total := 0
		for _, s := range Streaks(pos) {
			total += s
		}
		return total == len(pos)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMedianIntMaxInt(t *testing.T) {
	if MedianInt([]int{5, 1, 3}) != 3 {
		t.Error("MedianInt odd wrong")
	}
	if MedianInt([]int{4, 1, 3, 2}) != 2 {
		t.Error("MedianInt even should take lower middle")
	}
	if MedianInt(nil) != 0 || MaxInt(nil) != 0 {
		t.Error("empty medians should be 0")
	}
	if MaxInt([]int{-5, -2, -9}) != -2 {
		t.Error("MaxInt with negatives wrong")
	}
}

func TestLogBins(t *testing.T) {
	edges, err := LogBins(1e-5, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if edges[0] != 1e-5 || edges[5] != 1 {
		t.Errorf("edges endpoints = %v", edges)
	}
	for i := 1; i < len(edges); i++ {
		ratio := edges[i] / edges[i-1]
		if math.Abs(ratio-10) > 1e-9 {
			t.Errorf("edge ratio %d = %v, want 10", i, ratio)
		}
	}
	if _, err := LogBins(0, 1, 5); err == nil {
		t.Error("LogBins(lo=0) accepted")
	}
	if _, err := LogBins(1, 1, 5); err == nil {
		t.Error("LogBins(hi==lo) accepted")
	}
	if _, err := LogBins(1, 2, 1); err == nil {
		t.Error("LogBins(n=1) accepted")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp wrong")
	}
}

func TestTopK(t *testing.T) {
	scores := []float64{0.3, 0.9, 0.1, 0.9, 0.5}
	got := TopK(scores, 3)
	want := []int{1, 3, 4} // ties broken by lower index
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopK = %v, want %v", got, want)
		}
	}
	if len(TopK(scores, 99)) != 5 {
		t.Error("TopK should clamp k")
	}
	if len(TopK(scores, -1)) != 0 {
		t.Error("TopK(-1) should be empty")
	}
}

func TestMeanMedianHelpers(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
	if Median([]float64{9, 1, 5}) != 5 {
		t.Error("Median wrong")
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if got := Pearson(x, y); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect correlation = %v", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(x, neg); math.Abs(got+1) > 1e-12 {
		t.Errorf("perfect anticorrelation = %v", got)
	}
	if Pearson(x, []float64{1, 1, 1, 1, 1}) != 0 {
		t.Error("constant series should give 0")
	}
	if Pearson(x, y[:3]) != 0 {
		t.Error("length mismatch should give 0")
	}
	if Pearson(nil, nil) != 0 {
		t.Error("empty should give 0")
	}
	// Independent-ish noise: small magnitude.
	r := NewRNG(77)
	a := make([]float64, 2000)
	b := make([]float64, 2000)
	for i := range a {
		a[i] = r.Float64()
		b[i] = r.Float64()
	}
	if got := Pearson(a, b); math.Abs(got) > 0.1 {
		t.Errorf("independent noise correlation = %v", got)
	}
}
