package synth

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/world"
)

// White-box tests for the conditional metric-value generators: the problem
// decision must always be consistent with the drawn value relative to the
// paper's thresholds.

func valueGen(t *testing.T) *Generator {
	t.Helper()
	g, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBufRatioConditional(t *testing.T) {
	g := valueGen(t)
	r := stats.NewRNG(1)
	for i := 0; i < 5000; i++ {
		if v := g.bufRatio(r, true); v <= 0.05 || v > 1 {
			t.Fatalf("problem buffering ratio %v outside (0.05, 1]", v)
		}
		if v := g.bufRatio(r, false); v < 0 || v >= 0.05 {
			t.Fatalf("healthy buffering ratio %v outside [0, 0.05)", v)
		}
	}
}

func TestJoinTimeConditional(t *testing.T) {
	g := valueGen(t)
	r := stats.NewRNG(2)
	var maxProblem float64
	for i := 0; i < 5000; i++ {
		v := g.joinTime(r, true)
		if v <= 10_000 || v > 1e6 {
			t.Fatalf("problem join time %v outside (10s, 1000s]", v)
		}
		if v > maxProblem {
			maxProblem = v
		}
		if h := g.joinTime(r, false); h <= 0 || h >= 10_000 {
			t.Fatalf("healthy join time %v outside (0, 10s)", h)
		}
	}
	if maxProblem < 30_000 {
		t.Errorf("problem join times lack the Fig. 1c heavy tail: max %v", maxProblem)
	}
}

func TestBitrateConditional(t *testing.T) {
	g := valueGen(t)
	r := stats.NewRNG(3)
	w := g.World()
	for si := range w.Sites {
		site := &w.Sites[si]
		for conn := int32(0); conn < world.NumConnTypes; conn++ {
			v := g.bitrate(r, site, conn, true)
			// A decided problem materialises below threshold whenever the
			// ladder offers a sub-threshold rendition.
			hasLow := site.BitrateLadder[0] < 700
			if hasLow && v >= 700 {
				t.Fatalf("site %d: problem bitrate %v at or above threshold", si, v)
			}
			if !hasLow && v < site.BitrateLadder[0]*0.95 {
				t.Fatalf("site %d: bitrate %v below the only rendition", si, v)
			}

			h := g.bitrate(r, site, conn, false)
			// Healthy decisions stay at/above threshold when the ladder
			// allows it.
			hasHigh := site.BitrateLadder[len(site.BitrateLadder)-1] >= 700
			if hasHigh && h < 700 {
				t.Fatalf("site %d conn %d: healthy bitrate %v below threshold", si, conn, h)
			}
		}
	}
}

func TestDurationBounds(t *testing.T) {
	g := valueGen(t)
	r := stats.NewRNG(4)
	for i := 0; i < 5000; i++ {
		d := g.duration(r)
		if d < 5 || d > 4*3600 {
			t.Fatalf("duration %v outside [5s, 4h]", d)
		}
	}
}

func TestProblemDecisionProbability(t *testing.T) {
	g := valueGen(t)
	r := stats.NewRNG(5)
	// With a 0.5 severity on one metric and known base, the decision rate
	// must approach 1-(1-base)(1-0.5).
	sev := []float64{0.5, 0, 0, 0}
	n, hits, caused := 50_000, 0, 0
	for i := 0; i < n; i++ {
		problems, eventCaused := g.problemDecisions(r, sev)
		if problems[0] {
			hits++
			if eventCaused[0] {
				caused++
			}
		}
	}
	base := g.Config().Base[0]
	want := 1 - (1-base)*(1-0.5)
	got := float64(hits) / float64(n)
	if math.Abs(got-want) > 0.01 {
		t.Errorf("decision rate = %v, want %v", got, want)
	}
	// Cause attribution: the background explains base/want of the mass.
	wantCaused := 1 - base/want
	gotCaused := float64(caused) / float64(hits)
	if math.Abs(gotCaused-wantCaused) > 0.02 {
		t.Errorf("event-caused fraction = %v, want %v", gotCaused, wantCaused)
	}
}
