package synth

import (
	"math"
	"sync"
	"testing"

	"repro/internal/attr"
	"repro/internal/epoch"
	"repro/internal/metric"
	"repro/internal/session"
)

// smallConfig keeps unit-test generation fast.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Trace = epoch.Range{Start: 0, End: 48}
	cfg.SessionsPerEpoch = 1500
	cfg.Events.Trace = cfg.Trace
	return cfg
}

func newGen(t *testing.T, cfg Config) *Generator {
	t.Helper()
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDeterminismPerEpoch(t *testing.T) {
	g1 := newGen(t, smallConfig())
	g2 := newGen(t, smallConfig())
	a := g1.EpochSessions(7)
	b := g2.EpochSessions(7)
	if len(a) != len(b) {
		t.Fatalf("epoch sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("session %d differs between identical generators", i)
		}
	}
	// Epochs are independent: generating epoch 3 first must not change 7.
	g3 := newGen(t, smallConfig())
	_ = g3.EpochSessions(3)
	c := g3.EpochSessions(7)
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("epoch 7 depends on generation order (session %d)", i)
		}
	}
}

func TestSessionsAreValid(t *testing.T) {
	g := newGen(t, smallConfig())
	space := g.World().Space()
	batch := g.EpochSessions(12)
	if len(batch) == 0 {
		t.Fatal("empty epoch")
	}
	for i := range batch {
		if err := batch[i].Validate(space); err != nil {
			t.Fatalf("session %d invalid: %v", i, err)
		}
		if batch[i].Epoch != 12 {
			t.Fatalf("session %d has epoch %d", i, batch[i].Epoch)
		}
	}
}

func TestDiurnalVolume(t *testing.T) {
	g := newGen(t, smallConfig())
	peak := g.EpochVolume(20)  // evening
	trough := g.EpochVolume(8) // morning
	base := g.Config().SessionsPerEpoch
	if peak <= trough {
		t.Errorf("no diurnal cycle: peak %d <= trough %d", peak, trough)
	}
	if peak > int(float64(base)*1.4) || trough < int(float64(base)*0.6) {
		t.Errorf("diurnal swing out of range: %d..%d around %d", trough, peak, base)
	}
}

// TestGlobalProblemRatios checks the calibration lands near the paper's
// aggregate statistics (§2): buffering ratio problems ≈ 10%, bitrate
// problems ≈ 10-14%, join time ≈ 5-8%, join failures ≈ 4-7%.
func TestGlobalProblemRatios(t *testing.T) {
	g := newGen(t, smallConfig())
	th := metric.Default()
	var problems [metric.NumMetrics]int
	total := 0
	for e := epoch.Index(0); e < 48; e += 4 {
		batch := g.EpochSessions(e)
		total += len(batch)
		for i := range batch {
			for _, m := range metric.All() {
				if batch[i].Problem(m, th) {
					problems[m]++
				}
			}
		}
	}
	ratio := func(m metric.Metric) float64 { return float64(problems[m]) / float64(total) }
	checks := []struct {
		m      metric.Metric
		lo, hi float64
	}{
		{metric.BufRatio, 0.05, 0.17},
		{metric.Bitrate, 0.06, 0.20},
		{metric.JoinTime, 0.02, 0.15},
		{metric.JoinFailure, 0.02, 0.10},
	}
	for _, c := range checks {
		if r := ratio(c.m); r < c.lo || r > c.hi {
			t.Errorf("%v global problem ratio = %.4f, want in [%v, %v]", c.m, r, c.lo, c.hi)
		}
	}
}

// TestFig1Shapes checks the value distributions have the paper's Fig. 1
// shape: >5% of sessions exceed 10% buffering in problem-heavy slices, most
// sessions below 2 Mbps, join times spanning decades.
func TestFig1Shapes(t *testing.T) {
	g := newGen(t, smallConfig())
	var buf, br, jt []float64
	for e := epoch.Index(0); e < 24; e++ {
		for _, s := range g.EpochSessions(e) {
			if s.QoE.JoinFailed {
				continue
			}
			buf = append(buf, s.QoE.BufRatio)
			br = append(br, s.QoE.BitrateKbps)
			jt = append(jt, s.QoE.JoinTimeMS)
		}
	}
	frac := func(xs []float64, pred func(float64) bool) float64 {
		n := 0
		for _, x := range xs {
			if pred(x) {
				n++
			}
		}
		return float64(n) / float64(len(xs))
	}
	if f := frac(buf, func(x float64) bool { return x > 0.10 }); f < 0.02 || f > 0.15 {
		t.Errorf("fraction with buffering > 10%% = %.4f, want a visible tail (paper: >5%%)", f)
	}
	if f := frac(br, func(x float64) bool { return x < 2000 }); f < 0.55 {
		t.Errorf("fraction below 2 Mbps = %.4f, want the majority (paper: >80%%)", f)
	}
	if f := frac(jt, func(x float64) bool { return x > 10_000 }); f < 0.02 || f > 0.18 {
		t.Errorf("fraction with join time > 10 s = %.4f, want ~5%%", f)
	}
	// Join-time problems stretch far beyond the threshold.
	maxJT := 0.0
	for _, x := range jt {
		if x > maxJT {
			maxJT = x
		}
	}
	if maxJT < 30_000 {
		t.Errorf("max join time = %v ms; expected a heavy tail", maxJT)
	}
}

func TestEventsElevateAnchoredSessions(t *testing.T) {
	g := newGen(t, smallConfig())
	th := metric.Default()
	sched := g.Schedule()
	// Find a chronic buffering event and compare anchored vs global ratio.
	var anchored, anchorProblems, total, totalProblems int
	var anchor attr.Key
	var am metric.Metric
	found := false
	for i := range sched.Events {
		ev := &sched.Events[i]
		if ev.Chronic && ev.Metric == metric.BufRatio && ev.Severity > 0.15 {
			anchor, am = ev.Anchor, ev.Metric
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no chronic buffering event in schedule")
	}
	for e := epoch.Index(0); e < 24; e++ {
		for _, s := range g.EpochSessions(e) {
			total++
			p := s.Problem(am, th)
			if p {
				totalProblems++
			}
			if anchor.Matches(s.Attrs) {
				anchored++
				if p {
					anchorProblems++
				}
			}
		}
	}
	if anchored < 50 {
		t.Skipf("anchor %v too small in sample (%d sessions)", anchor, anchored)
	}
	anchorRatio := float64(anchorProblems) / float64(anchored)
	globalRatio := float64(totalProblems) / float64(total)
	if anchorRatio < 1.5*globalRatio {
		t.Errorf("anchored ratio %.3f not elevated vs global %.3f", anchorRatio, globalRatio)
	}
}

func TestEventTagging(t *testing.T) {
	g := newGen(t, smallConfig())
	th := metric.Default()
	sched := g.Schedule()
	tagged, taggedProblem := 0, 0
	for _, s := range g.EpochSessions(5) {
		for m, id := range s.EventIDs {
			if id == session.NoEvent {
				continue
			}
			tagged++
			ev := sched.Event(id)
			if ev == nil {
				t.Fatalf("session tagged with unknown event %d", id)
			}
			if int(ev.Metric) != m {
				t.Fatalf("session tagged event metric %v under slot %d", ev.Metric, m)
			}
			if !ev.Anchor.Matches(s.Attrs) {
				t.Fatalf("session tagged with non-matching event %d", id)
			}
			if !ev.ActiveAt(5) {
				t.Fatalf("session tagged with inactive event %d", id)
			}
			if s.Problem(ev.Metric, th) {
				taggedProblem++
			}
		}
	}
	if tagged == 0 {
		t.Fatal("no sessions tagged with ground-truth events")
	}
	// Most tagged sessions should indeed be problems on the event metric
	// (bitrate problems can fail to materialise on high-rate ladders).
	if f := float64(taggedProblem) / float64(tagged); f < 0.7 {
		t.Errorf("only %.2f of tagged sessions are problems on the event metric", f)
	}
}

func TestForEachOrdered(t *testing.T) {
	cfg := smallConfig()
	cfg.Trace = epoch.Range{Start: 0, End: 3}
	cfg.SessionsPerEpoch = 100
	g := newGen(t, cfg)
	var lastEpoch epoch.Index = -1
	n := 0
	err := g.ForEach(func(s *session.Session) error {
		if s.Epoch < lastEpoch {
			t.Fatal("ForEach not epoch-ordered")
		}
		lastEpoch = s.Epoch
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no sessions")
	}
}

func TestForEachEpochParallelMatchesSerial(t *testing.T) {
	cfg := smallConfig()
	cfg.Trace = epoch.Range{Start: 0, End: 8}
	cfg.SessionsPerEpoch = 200
	g := newGen(t, cfg)

	serial := make(map[epoch.Index]int)
	for e := epoch.Index(0); e < 8; e++ {
		serial[e] = len(g.EpochSessions(e))
	}
	var mu syncMap
	err := g.ForEachEpoch(4, func(e epoch.Index, batch []session.Session) error {
		mu.set(e, len(batch))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for e, want := range serial {
		if got := mu.get(e); got != want {
			t.Errorf("epoch %d: parallel %d vs serial %d", e, got, want)
		}
	}
}

func TestForEachEpochError(t *testing.T) {
	cfg := smallConfig()
	cfg.Trace = epoch.Range{Start: 0, End: 6}
	cfg.SessionsPerEpoch = 50
	g := newGen(t, cfg)
	wantErr := errSentinel("boom")
	err := g.ForEachEpoch(2, func(e epoch.Index, batch []session.Session) error {
		return wantErr
	})
	if err != wantErr {
		t.Errorf("ForEachEpoch error = %v, want %v", err, wantErr)
	}
}

type errSentinel string

func (e errSentinel) Error() string { return string(e) }

type syncMap struct {
	mu sync.Mutex
	m  map[epoch.Index]int
}

func (s *syncMap) set(e epoch.Index, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = make(map[epoch.Index]int)
	}
	s.m[e] = v
}

func (s *syncMap) get(e epoch.Index) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[e]
}

func TestConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Trace = epoch.Range{} },
		func(c *Config) { c.SessionsPerEpoch = 0 },
		func(c *Config) { c.DiurnalAmplitude = 1.5 },
		func(c *Config) { c.Base[0] = -0.1 },
		func(c *Config) { c.World.NumSites = 0 },
	}
	for i, mutate := range bad {
		cfg := smallConfig()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestBitrateLadderQuantization(t *testing.T) {
	g := newGen(t, smallConfig())
	w := g.World()
	for _, s := range g.EpochSessions(2) {
		if s.QoE.JoinFailed {
			continue
		}
		ladder := w.Sites[s.Attrs[attr.Site]].BitrateLadder
		// Value must be within jitter range of some rung.
		ok := false
		for _, b := range ladder {
			if math.Abs(s.QoE.BitrateKbps-b)/b <= 0.05 {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("bitrate %v not near any rung of %v", s.QoE.BitrateKbps, ladder)
		}
	}
}
