// Package synth generates the synthetic session trace: it samples session
// attributes from the world, composes background problem probabilities with
// the severities of matching ground-truth events, decides per-metric
// problem outcomes, and synthesises metric values whose distributions match
// the shapes of the paper's Fig. 1 (log-scale buffering-ratio CDF, ladder-
// quantised bitrates, lognormal join times with a heavy problem tail).
//
// Generation is deterministic per (seed, epoch): every epoch can be
// regenerated independently, which both parallelises generation and lets
// experiments re-derive any slice of the trace without storing it.
package synth

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/attr"
	"repro/internal/epoch"
	"repro/internal/events"
	"repro/internal/metric"
	"repro/internal/session"
	"repro/internal/stats"
	"repro/internal/world"
)

// Config sizes and calibrates the generator.
type Config struct {
	Seed uint64
	// Trace is the epoch span to generate.
	Trace epoch.Range
	// SessionsPerEpoch is the mean hourly session volume (modulated by the
	// diurnal cycle).
	SessionsPerEpoch int
	// DiurnalAmplitude in [0,1) scales the sinusoidal volume cycle.
	DiurnalAmplitude float64

	// Base holds the background (diffuse, unclustered) problem probability
	// per metric. These calibrate the paper's coverage gaps: problem
	// sessions outside any problem cluster (Table 1).
	Base [metric.NumMetrics]float64

	// World configures the entity population.
	World world.Config
	// Events configures ground-truth problem injection. Its Trace and Seed
	// fields are overwritten from this Config.
	Events events.Config
}

// DefaultConfig returns a laptop-scale configuration calibrated so the
// analysis lands in the paper's reported bands (global problem ratios
// ≈0.05–0.13, critical-cluster coverage 44–84%).
func DefaultConfig() Config {
	trace := epoch.Range{Start: 0, End: epoch.DefaultTraceEpochs}
	cfg := Config{
		Seed:             1,
		Trace:            trace,
		SessionsPerEpoch: 4000,
		DiurnalAmplitude: 0.30,
		World:            world.DefaultConfig(),
		Events:           events.DefaultConfig(trace),
	}
	cfg.Base[metric.BufRatio] = 0.035
	cfg.Base[metric.Bitrate] = 0.042
	cfg.Base[metric.JoinTime] = 0.012
	cfg.Base[metric.JoinFailure] = 0.007
	return cfg
}

// Validate reports the first invalid field.
func (c Config) Validate() error {
	if c.Trace.Len() <= 0 {
		return fmt.Errorf("synth: empty trace range")
	}
	if c.SessionsPerEpoch < 1 {
		return fmt.Errorf("synth: SessionsPerEpoch %d < 1", c.SessionsPerEpoch)
	}
	if c.DiurnalAmplitude < 0 || c.DiurnalAmplitude >= 1 {
		return fmt.Errorf("synth: DiurnalAmplitude %v out of [0,1)", c.DiurnalAmplitude)
	}
	for m, b := range c.Base {
		if b < 0 || b >= 1 {
			return fmt.Errorf("synth: Base[%s] = %v out of [0,1)", metric.Metric(m), b)
		}
	}
	return c.World.Validate()
}

// Generator produces sessions for a configured world and event schedule.
type Generator struct {
	cfg   Config
	w     *world.World
	sched *events.Schedule
	root  *stats.RNG
}

// New builds a generator: the world and the ground-truth schedule are
// derived deterministically from the config.
func New(cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.World.Seed = cfg.Seed
	w, err := world.New(cfg.World)
	if err != nil {
		return nil, err
	}
	cfg.Events.Seed = cfg.Seed
	cfg.Events.Trace = cfg.Trace
	sched, err := events.Generate(w, cfg.Events)
	if err != nil {
		return nil, err
	}
	return &Generator{cfg: cfg, w: w, sched: sched, root: stats.NewRNG(cfg.Seed)}, nil
}

// World returns the generated universe.
func (g *Generator) World() *world.World { return g.w }

// Schedule returns the ground-truth event schedule.
func (g *Generator) Schedule() *events.Schedule { return g.sched }

// Config returns the generator configuration.
func (g *Generator) Config() Config { return g.cfg }

// EpochVolume returns the session count of epoch e under the diurnal cycle.
func (g *Generator) EpochVolume(e epoch.Index) int {
	h := float64(epoch.HourOfDay(e))
	// Peak at 20:00, trough at 08:00.
	cycle := math.Sin(2 * math.Pi * (h - 14) / 24)
	n := float64(g.cfg.SessionsPerEpoch) * (1 + g.cfg.DiurnalAmplitude*cycle)
	if n < 1 {
		n = 1
	}
	return int(n)
}

// EpochSessions generates every session of epoch e. The result is
// deterministic in (Config.Seed, e) and independent of other epochs.
func (g *Generator) EpochSessions(e epoch.Index) []session.Session {
	rng := g.root.Split(0x5E551 + uint64(uint32(e)))
	n := g.EpochVolume(e)
	out := make([]session.Session, 0, n)
	sev := make([]float64, metric.NumMetrics)
	matched := make([]int32, metric.NumMetrics)
	for i := 0; i < n; i++ {
		v := g.w.SampleAttrs(rng)
		g.sched.MatchingSeverities(v, e, sev, matched)
		s := session.Session{
			ID:       uint64(uint32(e))<<32 | uint64(i),
			Epoch:    e,
			Attrs:    v,
			EventIDs: session.NoEvents,
		}
		g.synthesizeQoE(rng, &s, sev, matched)
		out = append(out, s)
	}
	return out
}

// problemDecisions decides per-metric problem outcomes by composing the
// background base rate with matching event severities as independent
// causes, and records which decisions were event-caused.
func (g *Generator) problemDecisions(rng *stats.RNG, sev []float64) (problems [metric.NumMetrics]bool, eventCaused [metric.NumMetrics]bool) {
	for m := 0; m < metric.NumMetrics; m++ {
		base := g.cfg.Base[m]
		p := 1 - (1-base)*(1-sev[m])
		if p > 0.95 {
			p = 0.95
		}
		u := rng.Float64()
		if u < p {
			problems[m] = true
			// Attribute the cause proportionally: the background explains
			// base/p of the probability mass.
			if p > 0 && rng.Float64() >= base/p {
				eventCaused[m] = true
			}
		}
	}
	return problems, eventCaused
}

func (g *Generator) synthesizeQoE(rng *stats.RNG, s *session.Session, sev []float64, matched []int32) {
	problems, eventCaused := g.problemDecisions(rng, sev)

	// Tag the session, per metric, with the ground-truth event that caused
	// its problem (validation only; the analysis never reads it).
	for m := 0; m < metric.NumMetrics; m++ {
		if problems[m] && eventCaused[m] && matched[m] >= 0 {
			s.EventIDs[m] = matched[m]
		}
	}

	if problems[metric.JoinFailure] {
		s.QoE = metric.QoE{JoinFailed: true}
		return
	}

	site := &g.w.Sites[s.Attrs[attr.Site]]
	q := metric.QoE{
		JoinTimeMS:  g.joinTime(rng, problems[metric.JoinTime]),
		BufRatio:    g.bufRatio(rng, problems[metric.BufRatio]),
		BitrateKbps: g.bitrate(rng, site, s.Attrs[attr.ConnType], problems[metric.Bitrate]),
		DurationS:   g.duration(rng),
	}
	s.QoE = q
}

// bufRatio draws a buffering ratio conditioned on the problem decision.
// Problem sessions are log-uniform in [0.05, 1]; healthy sessions mix a
// mass near zero with a lognormal body below the threshold (Fig. 1a).
func (g *Generator) bufRatio(rng *stats.RNG, problem bool) float64 {
	if problem {
		return stats.Clamp(0.05*math.Pow(10, 1.3*rng.Float64()), 0.05001, 1)
	}
	if rng.Bool(0.55) {
		return rng.Float64() * 1e-4
	}
	v := rng.LogNormal(math.Log(0.005), 1.1)
	if v >= 0.05 {
		v = 0.0499 * rng.Float64()
	}
	return v
}

// joinTime draws a join time in milliseconds. Problem sessions follow a
// Pareto tail beyond the 10 s threshold (Fig. 1c spans 1 ms–1000 s);
// healthy sessions are lognormal around ~1.6 s.
func (g *Generator) joinTime(rng *stats.RNG, problem bool) float64 {
	if problem {
		return stats.Clamp(10_000*rng.Pareto(1, 1.6), 10_001, 1e6)
	}
	for i := 0; i < 8; i++ {
		v := rng.LogNormal(math.Log(1600), 0.8)
		if v < 10_000 {
			return v
		}
	}
	return 9_500
}

// connCapacityKbps is the mean downstream capacity per connection type.
// The values reflect the paper's 2013 access-network era, where >80% of
// sessions averaged below 2 Mbps (Fig. 1b).
var connCapacityKbps = [world.NumConnTypes]float64{
	2200, // DSL
	3800, // Cable
	7000, // Fiber
	1200, // MobileWireless
	1600, // FixedWireless
	4500, // Ethernet
}

// bitrate draws a time-weighted average bitrate from the site's rendition
// ladder and the connection's capacity. Problem sessions pick the best
// rendition below the 700 kbps threshold; healthy sessions pick the best
// rendition the connection sustains, at or above the threshold when the
// ladder offers one. Ladder quantisation produces the step-shaped CDF of
// Fig. 1b.
func (g *Generator) bitrate(rng *stats.RNG, site *world.Site, conn int32, problem bool) float64 {
	ladder := site.BitrateLadder
	jitter := 0.96 + 0.08*rng.Float64() // mid-stream switching wobble
	if problem {
		best := -1.0
		for _, b := range ladder {
			if b < 700 && b > best {
				best = b
			}
		}
		if best < 0 {
			// The site offers nothing below the threshold; the problem
			// cannot physically materialise (single high-rate rendition).
			best = ladder[0]
		}
		return best * jitter
	}
	capKbps := connCapacityKbps[conn] * rng.LogNormal(0, 0.45)
	best := -1.0
	for _, b := range ladder {
		if b <= 0.6*capKbps && b > best {
			best = b
		}
	}
	if best < 700 {
		// Prefer the smallest rendition at or above the threshold: healthy
		// sessions should not read as bitrate problems when avoidable.
		for _, b := range ladder {
			if b >= 700 && (best < 700 || b < best) {
				best = b
			}
		}
	}
	if best < 0 {
		best = ladder[0]
	}
	v := best * jitter
	if best >= 700 && v < 700 {
		// The rung at the threshold boundary must not wobble into problem
		// territory on a healthy decision.
		v = best * (1 + 0.04*rng.Float64())
	}
	return v
}

func (g *Generator) duration(rng *stats.RNG) float64 {
	return stats.Clamp(rng.LogNormal(math.Log(280), 1.1), 5, 4*3600)
}

// ForEach streams every session of the trace, epoch by epoch in order,
// through fn, stopping at the first error.
func (g *Generator) ForEach(fn func(*session.Session) error) error {
	for e := g.cfg.Trace.Start; e < g.cfg.Trace.End; e++ {
		batch := g.EpochSessions(e)
		for i := range batch {
			if err := fn(&batch[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// ForEachEpoch generates epochs concurrently with the given parallelism
// (<=0 means GOMAXPROCS) and invokes handle once per epoch. handle may be
// called concurrently from multiple goroutines; epoch order is not
// guaranteed. The first error cancels outstanding work and is returned.
func (g *Generator) ForEachEpoch(workers int, handle func(e epoch.Index, batch []session.Session) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type result struct {
		err error
	}
	epochs := g.cfg.Trace.Epochs()
	work := make(chan epoch.Index)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error

	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	hasErr := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for e := range work {
				if hasErr() {
					continue
				}
				batch := g.EpochSessions(e)
				if err := handle(e, batch); err != nil {
					setErr(err)
				}
			}
		}()
	}
	for _, e := range epochs {
		work <- e
	}
	close(work)
	wg.Wait()
	return firstErr
}
