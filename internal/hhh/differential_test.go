package hhh

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/metric"
)

// detectRef is the original map-based implementation of Detect, preserved
// verbatim as the differential oracle for the flat counting-sort rewrite.
// Any behavioural divergence — ordering, tie-breaking, discount semantics —
// is a bug in the rewrite, not a new convention.
func detectRef(sessions []cluster.Lite, m metric.Metric, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	maxDims := cfg.MaxDims
	if maxDims <= 0 || maxDims > attr.NumDims {
		maxDims = attr.NumDims
	}

	var idx []int32
	for i := range sessions {
		l := &sessions[i]
		if l.Defined(m) && l.Problem(m) {
			idx = append(idx, int32(i))
		}
	}
	res := &Result{Metric: m, Total: len(idx)}
	if res.Total == 0 {
		return res, nil
	}
	threshold := cfg.Phi * float64(res.Total)
	if threshold < 1 {
		threshold = 1
	}

	claimed := make([]bool, len(idx))

	raw := make(map[attr.Key]int)
	for _, si := range idx {
		l := &sessions[si]
		for _, mk := range attr.MasksUpTo(maxDims) {
			raw[attr.KeyOf(l.Attrs, mk)]++
		}
	}

	masks := attr.MasksUpTo(maxDims)
	sort.SliceStable(masks, func(i, j int) bool { return masks[i].Size() > masks[j].Size() })

	for start := 0; start < len(masks); {
		size := masks[start].Size()
		end := start
		for end < len(masks) && masks[end].Size() == size {
			end++
		}
		level := masks[start:end]
		start = end

		unclaimed := make(map[attr.Key][]int32)
		for pos, si := range idx {
			if claimed[pos] {
				continue
			}
			l := &sessions[si]
			for _, mk := range level {
				key := attr.KeyOf(l.Attrs, mk)
				unclaimed[key] = append(unclaimed[key], int32(pos))
			}
		}
		var cands []attr.Key
		for key, list := range unclaimed {
			if float64(len(list)) >= threshold {
				cands = append(cands, key)
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			a, b := len(unclaimed[cands[i]]), len(unclaimed[cands[j]])
			if a != b {
				return a > b
			}
			return cands[i].Less(cands[j])
		})
		for _, key := range cands {
			n := 0
			for _, pos := range unclaimed[key] {
				if !claimed[pos] {
					claimed[pos] = true
					n++
				}
			}
			if n > 0 {
				res.Hitters = append(res.Hitters, Hitter{Key: key, Discounted: n})
			}
		}
	}

	for i := range res.Hitters {
		res.Hitters[i].Raw = raw[res.Hitters[i].Key]
	}
	sort.SliceStable(res.Hitters, func(i, j int) bool {
		if res.Hitters[i].Discounted != res.Hitters[j].Discounted {
			return res.Hitters[i].Discounted > res.Hitters[j].Discounted
		}
		return res.Hitters[i].Key.Less(res.Hitters[j].Key)
	})
	return res, nil
}

// genHHHLites draws sessions from a small attribute universe (so keys
// collide and levels overlap) with a few concentrated problem cells layered
// over background noise — the shape that exercises claiming and tie-breaks.
func genHHHLites(r *rand.Rand, n int) []cluster.Lite {
	cards := [attr.NumDims]int32{3, 4, 2, 3, 2, 3, 4}
	lites := make([]cluster.Lite, n)
	for i := range lites {
		l := &lites[i]
		for d := attr.Dim(0); d < attr.NumDims; d++ {
			l.Attrs[d] = r.Int31n(cards[d])
		}
		if r.Float64() < 0.05 {
			l.Failed = true
			l.Bits = 1 << metric.JoinFailure
			continue
		}
		for m := metric.Metric(0); m < metric.NumMetrics; m++ {
			if r.Float64() < 0.15 {
				l.Bits |= 1 << m
			}
		}
	}
	// Concentrate problems in one cell to guarantee hitters above phi.
	hot := lites[0].Attrs
	for i := 0; i < n/5; i++ {
		l := &lites[r.Intn(n)]
		l.Attrs = hot
		l.Failed = false
		l.Bits |= 1 << metric.BufRatio
	}
	return lites
}

// TestDetectMatchesMapReference: the flat counting-sort Detect is
// bit-identical to the preserved map-based reference across fuzzed session
// sets, metrics, phi values, and maxDims, including repeated runs that
// exercise pooled-scratch reuse.
func TestDetectMatchesMapReference(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	phis := []float64{0.01, 0.05, 0.2, 0.6}
	dims := []int{1, 2, 3, attr.NumDims}
	for trial := 0; trial < 8; trial++ {
		n := 50 + r.Intn(900)
		lites := genHHHLites(r, n)
		for _, m := range []metric.Metric{metric.BufRatio, metric.JoinTime} {
			for _, phi := range phis {
				for _, md := range dims {
					cfg := Config{Phi: phi, MaxDims: md}
					got, err := Detect(lites, m, cfg)
					if err != nil {
						t.Fatal(err)
					}
					want, err := detectRef(lites, m, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("trial %d metric %v phi %v maxDims %d:\nflat %+v\nref  %+v",
							trial, m, phi, md, got, want)
					}
				}
			}
		}
	}
}

// TestDetectEmptyAndNoProblems: degenerate inputs agree with the reference.
func TestDetectEmptyAndNoProblems(t *testing.T) {
	for _, lites := range [][]cluster.Lite{nil, make([]cluster.Lite, 10)} {
		got, err := Detect(lites, metric.BufRatio, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		want, err := detectRef(lites, metric.BufRatio, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("flat %+v != ref %+v", got, want)
		}
	}
}

// TestDetectScratchReuseDeterminism: back-to-back detections over different
// inputs reuse the pooled scratch without cross-contamination.
func TestDetectScratchReuseDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	big := genHHHLites(r, 800)
	small := genHHHLites(r, 60)
	first, err := Detect(small, metric.BufRatio, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// A large detection dirties the pooled scratch far beyond the small
	// input's extents...
	if _, err := Detect(big, metric.BufRatio, DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	// ...and the small input must still produce the identical result.
	again, err := Detect(small, metric.BufRatio, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Fatalf("scratch reuse changed output:\nfirst %+v\nagain %+v", first, again)
	}
}

// TestDetectFromTableMatchesDetect: the sliding-window path — raw counts
// read from an epoch count table instead of re-enumerated — is bit-identical
// to Detect over the same sessions, across fuzzed inputs, metrics, phi
// values, and maxDims (including a table enumerated wider than the query).
func TestDetectFromTableMatchesDetect(t *testing.T) {
	r := rand.New(rand.NewSource(271))
	phis := []float64{0.01, 0.05, 0.3}
	dims := []int{1, 3, attr.NumDims}
	for trial := 0; trial < 6; trial++ {
		n := 50 + r.Intn(700)
		lites := genHHHLites(r, n)
		tbl := cluster.NewTable(0, lites, 0)
		for _, m := range []metric.Metric{metric.BufRatio, metric.JoinTime, metric.JoinFailure} {
			for _, phi := range phis {
				for _, md := range dims {
					cfg := Config{Phi: phi, MaxDims: md}
					got, err := DetectFromTable(tbl, m, cfg)
					if err != nil {
						t.Fatal(err)
					}
					want, err := Detect(lites, m, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("trial %d metric %v phi %v maxDims %d:\ntable %+v\nbatch %+v",
							trial, m, phi, md, got, want)
					}
				}
			}
		}
		tbl.Release()
	}
}

// TestDetectFromTableRejectsNarrowTable: querying more dimensions than the
// table enumerated cannot produce correct raw counts and must error.
func TestDetectFromTableRejectsNarrowTable(t *testing.T) {
	lites := genHHHLites(rand.New(rand.NewSource(1)), 50)
	tbl := cluster.NewTable(0, lites, 2)
	defer tbl.Release()
	if _, err := DetectFromTable(tbl, metric.BufRatio, Config{Phi: 0.05, MaxDims: 3}); err == nil {
		t.Fatal("DetectFromTable over a narrower table did not fail")
	}
	if _, err := DetectFromTable(tbl, metric.BufRatio, Config{Phi: 0.05, MaxDims: 2}); err != nil {
		t.Fatal(err)
	}
}
