package hhh

import (
	"testing"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/metric"
)

func addCell(dst []cluster.Lite, asn, cdn int32, n, p int) []cluster.Lite {
	for i := 0; i < n; i++ {
		var l cluster.Lite
		l.Attrs[attr.ASN] = asn
		l.Attrs[attr.CDN] = cdn
		if i < p {
			l.Bits |= 1 << metric.BufRatio
		}
		dst = append(dst, l)
	}
	return dst
}

func key(pairs map[attr.Dim]int32) attr.Key { return attr.NewKey(pairs) }

func TestDetectBasics(t *testing.T) {
	var sessions []cluster.Lite
	sessions = addCell(sessions, 1, 1, 100, 80)
	sessions = addCell(sessions, 2, 2, 100, 20)
	r, err := Detect(sessions, metric.BufRatio, Config{Phi: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if r.Total != 100 {
		t.Fatalf("total = %d", r.Total)
	}
	if len(r.Hitters) == 0 {
		t.Fatal("no hitters")
	}
	// The finest combination containing the 80 problems is reported first
	// and claims them; coarser ancestors have no unclaimed mass left.
	top := r.Hitters[0]
	if top.Discounted != 80 {
		t.Errorf("top discounted = %d, want 80", top.Discounted)
	}
	if !top.Key.Matches(sessions[0].Attrs) {
		t.Errorf("top hitter %v does not contain the problem cell", top.Key)
	}
	var totalDiscounted int
	for _, h := range r.Hitters {
		totalDiscounted += h.Discounted
	}
	if totalDiscounted > r.Total {
		t.Errorf("discounted sum %d exceeds total %d", totalDiscounted, r.Total)
	}
}

// addVariedCell is addCell with the remaining dimensions spread thin so no
// constant-valued dimension aggregates the whole population.
func addVariedCell(dst []cluster.Lite, asn, cdn int32, n, p int) []cluster.Lite {
	base := len(dst)
	for i := 0; i < n; i++ {
		var l cluster.Lite
		j := base + i
		l.Attrs[attr.ASN] = asn
		l.Attrs[attr.CDN] = cdn
		l.Attrs[attr.Site] = int32(j % 97)
		l.Attrs[attr.VoDOrLive] = int32(j % 2)
		l.Attrs[attr.PlayerType] = int32(j % 3)
		l.Attrs[attr.Browser] = int32((j / 2) % 4)
		l.Attrs[attr.ConnType] = int32((j / 3) % 6)
		if i < p {
			l.Bits |= 1 << metric.BufRatio
		}
		dst = append(dst, l)
	}
	return dst
}

// TestHHHPrefersVolumeOverConcentration demonstrates the paper's §7
// argument: a big mildly-problematic cluster outranks a small broken one,
// so HHH is the wrong tool for root-cause attribution.
func TestHHHPrefersVolumeOverConcentration(t *testing.T) {
	var sessions []cluster.Lite
	// Big healthy-ish ASN: 5% ratio but 50 problem sessions.
	sessions = addVariedCell(sessions, 1, 1, 1000, 50)
	// Small broken ASN: 60% ratio but only 30 problem sessions.
	sessions = addVariedCell(sessions, 2, 2, 50, 30)
	r, err := Detect(sessions, metric.BufRatio, Config{Phi: 0.3, MaxDims: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hitters) == 0 {
		t.Fatal("no hitters")
	}
	top := r.Hitters[0].Key
	broken := key(map[attr.Dim]int32{attr.ASN: 2})
	if top == broken {
		t.Error("HHH ranked the concentrated broken cluster first; volume should win")
	}
	if r.Hitters[0].Discounted < 40 {
		t.Errorf("top hitter mass = %d, want the big cluster's ~50", r.Hitters[0].Discounted)
	}
}

func TestDiscountingClaimsOnce(t *testing.T) {
	// One problem cell: after the leaf-level key claims it, no ancestor may
	// report the same sessions again.
	var sessions []cluster.Lite
	sessions = addCell(sessions, 1, 1, 100, 100)
	r, err := Detect(sessions, metric.BufRatio, Config{Phi: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hitters) != 1 {
		t.Fatalf("hitters = %+v, want exactly one", r.Hitters)
	}
	if r.Hitters[0].Key.Size() != attr.NumDims {
		t.Errorf("hitter should be the finest mask, got %v", r.Hitters[0].Key)
	}
	if r.Hitters[0].Raw != 100 || r.Hitters[0].Discounted != 100 {
		t.Errorf("raw/discounted = %d/%d", r.Hitters[0].Raw, r.Hitters[0].Discounted)
	}
}

func TestMaxDims(t *testing.T) {
	var sessions []cluster.Lite
	sessions = addCell(sessions, 1, 1, 100, 100)
	r, err := Detect(sessions, metric.BufRatio, Config{Phi: 0.5, MaxDims: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range r.Hitters {
		if h.Key.Size() > 1 {
			t.Errorf("hitter %v exceeds MaxDims", h.Key)
		}
	}
}

func TestEmptyAndErrors(t *testing.T) {
	r, err := Detect(nil, metric.BufRatio, DefaultConfig())
	if err != nil || r.Total != 0 || len(r.Hitters) != 0 {
		t.Errorf("empty detect = %+v, %v", r, err)
	}
	if _, err := Detect(nil, metric.BufRatio, Config{Phi: 0}); err == nil {
		t.Error("Phi 0 accepted")
	}
	if _, err := Detect(nil, metric.BufRatio, Config{Phi: 1}); err == nil {
		t.Error("Phi 1 accepted")
	}
	// Healthy sessions only.
	var sessions []cluster.Lite
	sessions = addCell(sessions, 1, 1, 50, 0)
	r, err = Detect(sessions, metric.BufRatio, DefaultConfig())
	if err != nil || r.Total != 0 {
		t.Error("healthy epoch should have no hitters")
	}
}

func TestKeysOrder(t *testing.T) {
	var sessions []cluster.Lite
	sessions = addCell(sessions, 1, 1, 100, 60)
	sessions = addCell(sessions, 2, 2, 100, 40)
	r, err := Detect(sessions, metric.BufRatio, Config{Phi: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	keys := r.Keys()
	if len(keys) != len(r.Hitters) {
		t.Fatal("Keys length mismatch")
	}
	for i := 1; i < len(r.Hitters); i++ {
		if r.Hitters[i].Discounted > r.Hitters[i-1].Discounted {
			t.Error("hitters not sorted")
		}
	}
	_ = key
}
