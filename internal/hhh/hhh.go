// Package hhh implements the hierarchical heavy hitters baseline the paper
// contrasts its critical clusters against (§7, Zhang et al.): find every
// cluster whose problem-session volume — after discounting sessions already
// claimed by finer HHH clusters — exceeds a fraction φ of the total.
//
// The paper argues HHH is the wrong tool for root-cause attribution because
// it counts volume rather than problem concentration: a huge healthy ISP
// carries more problem sessions than a small broken one. The ablation
// benchmark quantifies exactly that, comparing HHH output against the
// phase-transition critical clusters on ground-truth events.
//
// Detection runs on flat, pooled storage in the style of the cktable
// engine: per level, a pass over the unclaimed problem sessions counts
// occurrences per key in an open-addressing table, a prefix sum over the
// occupied slots carves one shared positions array into per-key segments,
// and a second pass fills the segments — a counting sort that replaces the
// old map[attr.Key][]int32 (one map insert plus amortised slice growth per
// session×mask) with two linear scans and zero steady-state allocation.
package hhh

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/core/cktable"
	"repro/internal/metric"
)

// Config parameterises detection.
type Config struct {
	// Phi is the heavy-hitter fraction: a cluster is reported when its
	// discounted problem-session count is at least Phi × total problem
	// sessions. Classic values are 0.01–0.1.
	Phi float64
	// MaxDims caps the enumerated attribute-subset sizes (0 = all seven).
	MaxDims int
}

// DefaultConfig returns the baseline settings used by the ablation.
func DefaultConfig() Config { return Config{Phi: 0.02} }

// Validate reports the first invalid field.
func (c Config) Validate() error {
	if c.Phi <= 0 || c.Phi >= 1 {
		return fmt.Errorf("hhh: Phi %v out of (0,1)", c.Phi)
	}
	return nil
}

// Hitter is one detected hierarchical heavy hitter.
type Hitter struct {
	Key attr.Key
	// Discounted is the problem-session count not claimed by finer
	// hitters.
	Discounted int
	// Raw is the undiscounted problem-session count.
	Raw int
}

// Result is an epoch's HHH detection.
type Result struct {
	Metric metric.Metric
	// Total is the epoch's problem-session count.
	Total int
	// Hitters are sorted by discounted count descending.
	Hitters []Hitter
}

// levelMasks groups the subset masks by size so the per-level loop does not
// re-derive (and re-allocate) the grouping on every Detect call; within a
// size the masks keep attr.MasksUpTo's order, matching the map-based
// reference's stable sort.
var levelMasks = func() [attr.NumDims + 1][]attr.Mask {
	var lv [attr.NumDims + 1][]attr.Mask
	for _, mk := range attr.MasksUpTo(attr.NumDims) {
		lv[mk.Size()] = append(lv[mk.Size()], mk)
	}
	return lv
}()

// hslot is one occupied cell of the per-level counting table. hash is the
// key's cktable.KeyHash with bit 0 forced on so zero means empty; start/next
// delimit the key's segment of the shared positions array.
type hslot struct {
	hash  uint64
	key   attr.Key
	count int32
	start int32
	next  int32
}

// scratch holds every per-Detect buffer so repeated detections (one per
// metric per epoch) reuse capacity instead of re-allocating ~14k objects.
type scratch struct {
	idx       []int32 // problem-session indices into the lites slice
	claimed   []bool  // per idx entry: claimed by a finer hitter
	slots     []hslot // open-addressing counting table, power-of-two len
	used      []int32 // occupied slot indices, for clearing and iteration
	maxUsed   int     // grow threshold: 75% load
	positions []int32 // per-key position segments, carved by prefix sum
	cands     []int32 // slot indices of threshold-crossing candidates
}

var scratchPool sync.Pool

func acquireScratch() *scratch {
	if p, ok := scratchPool.Get().(*scratch); ok {
		return p
	}
	return &scratch{}
}

func releaseScratch(sc *scratch) {
	scratchPool.Put(sc)
}

// resetTable clears the occupied slots (keeping capacity) and sizes the
// table for about hint keys if it has never been sized.
func (sc *scratch) resetTable(hint int) {
	for _, si := range sc.used {
		sc.slots[si] = hslot{}
	}
	sc.used = sc.used[:0]
	if len(sc.slots) == 0 {
		want := 1024
		for want*3/4 < hint && want < 1<<18 {
			want <<= 1
		}
		sc.slots = make([]hslot, want)
		sc.maxUsed = want * 3 / 4
	}
}

// grow doubles the table and re-probes the occupied slots by their stored
// hashes (no re-hashing), refreshing the used index list.
func (sc *scratch) grow() {
	old := sc.slots
	oldUsed := sc.used
	sc.slots = make([]hslot, len(old)*2)
	sc.maxUsed = len(sc.slots) * 3 / 4
	sc.used = sc.used[:0]
	mask := uint64(len(sc.slots) - 1)
	for _, si := range oldUsed {
		s := old[si]
		i := s.hash & mask
		for sc.slots[i].hash != 0 {
			i = (i + 1) & mask
		}
		sc.slots[i] = s
		sc.used = append(sc.used, int32(i))
	}
}

// upsert returns the slot for (h, key), inserting an empty one if absent.
func (sc *scratch) upsert(h uint64, key attr.Key) *hslot {
	mask := uint64(len(sc.slots) - 1)
	i := h & mask
	for {
		s := &sc.slots[i]
		if s.hash == 0 {
			if len(sc.used) >= sc.maxUsed {
				sc.grow()
				return sc.upsert(h, key)
			}
			s.hash, s.key = h, key
			sc.used = append(sc.used, int32(i))
			return s
		}
		if s.hash == h && s.key == key {
			return s
		}
		i = (i + 1) & mask
	}
}

// find returns the slot for (h, key), which must have been upserted.
func (sc *scratch) find(h uint64, key attr.Key) *hslot {
	mask := uint64(len(sc.slots) - 1)
	i := h & mask
	for {
		s := &sc.slots[i]
		if s.hash == h && s.key == key {
			return s
		}
		i = (i + 1) & mask
	}
}

func normDims(maxDims int) int {
	if maxDims <= 0 || maxDims > attr.NumDims {
		maxDims = attr.NumDims
	}
	return maxDims
}

// Detect runs bottom-up discounted heavy-hitter detection over one epoch of
// session digests for metric m: masks are processed finest-first; a cluster
// whose unclaimed problem sessions reach φ×total claims those sessions so
// coarser ancestors only count what remains (the classic "discounted"
// semantics). The output is bit-identical to the map-based reference
// implementation kept in this package's differential test.
func Detect(sessions []cluster.Lite, m metric.Metric, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	maxDims := normDims(cfg.MaxDims)
	sc := acquireScratch()
	defer releaseScratch(sc)

	res := detectDiscounted(sessions, m, maxDims, cfg.Phi, sc)
	if len(res.Hitters) > 0 {
		// Raw (undiscounted) problem-session counts per key, aggregated once
		// through the pooled open-addressing engine instead of 127 map
		// increments per problem session.
		raw := cktable.Acquire(len(sc.idx), maxDims)
		for _, si := range sc.idx {
			raw.AddSession(sessions[si].Attrs, 0, false)
		}
		for i := range res.Hitters {
			c, _ := raw.Get(res.Hitters[i].Key)
			res.Hitters[i].Raw = int(c.Total)
		}
		raw.Release()
	}
	sortHitters(res)
	return res, nil
}

// DetectFromTable runs the same discounted detection over the sessions an
// epoch count table retains, taking the raw (undiscounted) per-cluster
// counts from the table's already-maintained Problems[m] tallies instead of
// re-enumerating every problem session's subset keys. This is the
// sliding-window path: the window engine keeps the count table current
// incrementally, so the 127-mask raw-count pass — the part of Detect that
// scales with the whole window rather than with the discounting working set
// — is free. Problems[m] equals Detect's raw table exactly because a
// session's problem bit is only ever set when metric m is defined for it.
//
// Discounted claims are inherently order-dependent (a finer hitter's claim
// changes every coarser count), so the claim passes themselves are rerun
// over the window's problem sessions rather than maintained decrementally;
// DESIGN.md records the measurements behind that choice. Output is
// bit-identical to Detect(tbl.Sessions, m, cfg).
func DetectFromTable(tbl *cluster.Table, m metric.Metric, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	maxDims := normDims(cfg.MaxDims)
	if maxDims > tbl.MaxDims {
		return nil, fmt.Errorf("hhh: MaxDims %d exceeds the table's %d", maxDims, tbl.MaxDims)
	}
	sc := acquireScratch()
	defer releaseScratch(sc)

	res := detectDiscounted(tbl.Sessions, m, maxDims, cfg.Phi, sc)
	for i := range res.Hitters {
		res.Hitters[i].Raw = int(tbl.Get(res.Hitters[i].Key).Problems[m])
	}
	sortHitters(res)
	return res, nil
}

// detectDiscounted is the shared discounting core: it fills every Hitter
// field except Raw and leaves the hitters unsorted (sortHitters finishes
// the job). sc.idx holds the problem-session indices on return.
func detectDiscounted(sessions []cluster.Lite, m metric.Metric, maxDims int, phi float64, sc *scratch) *Result {
	// Problem sessions only.
	idx := sc.idx[:0]
	for i := range sessions {
		l := &sessions[i]
		if l.Defined(m) && l.Problem(m) {
			idx = append(idx, int32(i))
		}
	}
	sc.idx = idx
	res := &Result{Metric: m, Total: len(idx)}
	if res.Total == 0 {
		return res
	}
	threshold := phi * float64(res.Total)
	if threshold < 1 {
		threshold = 1
	}

	claimed := sc.claimed
	if cap(claimed) < len(idx) {
		claimed = make([]bool, len(idx))
	}
	claimed = claimed[:len(idx)]
	for i := range claimed {
		claimed[i] = false
	}
	sc.claimed = claimed

	for size := maxDims; size >= 1; size-- {
		level := levelMasks[size]

		// Pass A: count unclaimed problem sessions per key at this level.
		sc.resetTable(len(idx))
		for pos, si := range idx {
			if claimed[pos] {
				continue
			}
			l := &sessions[si]
			for _, mk := range level {
				key := attr.KeyOf(l.Attrs, mk)
				sc.upsert(cktable.KeyHash(key)|1, key).count++
			}
		}

		// Prefix sum carves the shared positions array into per-key
		// segments; pass B fills them in session order, so each segment
		// lists positions ascending exactly like the reference's append
		// loop.
		var total int32
		for _, si := range sc.used {
			s := &sc.slots[si]
			s.start = total
			s.next = total
			total += s.count
		}
		positions := sc.positions
		if cap(positions) < int(total) {
			positions = make([]int32, total)
		}
		positions = positions[:total]
		sc.positions = positions
		for pos, si := range idx {
			if claimed[pos] {
				continue
			}
			l := &sessions[si]
			for _, mk := range level {
				key := attr.KeyOf(l.Attrs, mk)
				s := sc.find(cktable.KeyHash(key)|1, key)
				positions[s.next] = int32(pos)
				s.next++
			}
		}

		// Keys reaching the threshold become hitters and claim their
		// sessions. Deterministic order: larger counts first, then key
		// order, so overlapping candidates claim stably.
		cands := sc.cands[:0]
		for _, si := range sc.used {
			if float64(sc.slots[si].count) >= threshold {
				cands = append(cands, si)
			}
		}
		sc.cands = cands
		sort.Slice(cands, func(i, j int) bool {
			a, b := sc.slots[cands[i]].count, sc.slots[cands[j]].count
			if a != b {
				return a > b
			}
			return sc.slots[cands[i]].key.Less(sc.slots[cands[j]].key)
		})
		for _, si := range cands {
			s := &sc.slots[si]
			n := 0
			for _, pos := range positions[s.start : s.start+s.count] {
				if !claimed[pos] {
					claimed[pos] = true
					n++
				}
			}
			// Overlap with an earlier hitter at this level may have
			// consumed some of the mass; whatever remains is still this
			// hitter's discounted count (the reference appends on any
			// n > 0 for threshold ≥ 1).
			if n > 0 {
				res.Hitters = append(res.Hitters, Hitter{Key: s.key, Discounted: n})
			}
		}
	}

	return res
}

// sortHitters applies the deterministic output order: discounted count
// descending, then key order.
func sortHitters(res *Result) {
	sort.SliceStable(res.Hitters, func(i, j int) bool {
		if res.Hitters[i].Discounted != res.Hitters[j].Discounted {
			return res.Hitters[i].Discounted > res.Hitters[j].Discounted
		}
		return res.Hitters[i].Key.Less(res.Hitters[j].Key)
	})
}

// Keys returns the hitter keys in rank order.
func (r *Result) Keys() []attr.Key {
	out := make([]attr.Key, len(r.Hitters))
	for i := range r.Hitters {
		out[i] = r.Hitters[i].Key
	}
	return out
}
