// Package hhh implements the hierarchical heavy hitters baseline the paper
// contrasts its critical clusters against (§7, Zhang et al.): find every
// cluster whose problem-session volume — after discounting sessions already
// claimed by finer HHH clusters — exceeds a fraction φ of the total.
//
// The paper argues HHH is the wrong tool for root-cause attribution because
// it counts volume rather than problem concentration: a huge healthy ISP
// carries more problem sessions than a small broken one. The ablation
// benchmark quantifies exactly that, comparing HHH output against the
// phase-transition critical clusters on ground-truth events.
package hhh

import (
	"fmt"
	"sort"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/core/cktable"
	"repro/internal/metric"
)

// Config parameterises detection.
type Config struct {
	// Phi is the heavy-hitter fraction: a cluster is reported when its
	// discounted problem-session count is at least Phi × total problem
	// sessions. Classic values are 0.01–0.1.
	Phi float64
	// MaxDims caps the enumerated attribute-subset sizes (0 = all seven).
	MaxDims int
}

// DefaultConfig returns the baseline settings used by the ablation.
func DefaultConfig() Config { return Config{Phi: 0.02} }

// Validate reports the first invalid field.
func (c Config) Validate() error {
	if c.Phi <= 0 || c.Phi >= 1 {
		return fmt.Errorf("hhh: Phi %v out of (0,1)", c.Phi)
	}
	return nil
}

// Hitter is one detected hierarchical heavy hitter.
type Hitter struct {
	Key attr.Key
	// Discounted is the problem-session count not claimed by finer
	// hitters.
	Discounted int
	// Raw is the undiscounted problem-session count.
	Raw int
}

// Result is an epoch's HHH detection.
type Result struct {
	Metric metric.Metric
	// Total is the epoch's problem-session count.
	Total int
	// Hitters are sorted by discounted count descending.
	Hitters []Hitter
}

// Detect runs bottom-up discounted heavy-hitter detection over one epoch of
// session digests for metric m: masks are processed finest-first; a cluster
// whose unclaimed problem sessions reach φ×total claims those sessions so
// coarser ancestors only count what remains (the classic "discounted"
// semantics).
func Detect(sessions []cluster.Lite, m metric.Metric, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	maxDims := cfg.MaxDims
	if maxDims <= 0 || maxDims > attr.NumDims {
		maxDims = attr.NumDims
	}

	// Problem sessions only.
	var idx []int32
	for i := range sessions {
		l := &sessions[i]
		if l.Defined(m) && l.Problem(m) {
			idx = append(idx, int32(i))
		}
	}
	res := &Result{Metric: m, Total: len(idx)}
	if res.Total == 0 {
		return res, nil
	}
	threshold := cfg.Phi * float64(res.Total)
	if threshold < 1 {
		threshold = 1
	}

	claimed := make([]bool, len(idx))

	// Raw (undiscounted) problem-session counts per key, aggregated once
	// through the pooled open-addressing engine instead of 127 map
	// increments per problem session.
	raw := cktable.Acquire(len(idx), maxDims)
	defer raw.Release()
	for _, si := range idx {
		raw.AddSession(sessions[si].Attrs, 0, false)
	}

	// Masks grouped by size, finest first.
	masks := attr.MasksUpTo(maxDims)
	sort.SliceStable(masks, func(i, j int) bool { return masks[i].Size() > masks[j].Size() })

	for start := 0; start < len(masks); {
		size := masks[start].Size()
		end := start
		for end < len(masks) && masks[end].Size() == size {
			end++
		}
		level := masks[start:end]
		start = end

		// Count unclaimed problem sessions per key at this level.
		unclaimed := make(map[attr.Key][]int32)
		for pos, si := range idx {
			if claimed[pos] {
				continue
			}
			l := &sessions[si]
			for _, mk := range level {
				key := attr.KeyOf(l.Attrs, mk)
				unclaimed[key] = append(unclaimed[key], int32(pos))
			}
		}
		// Keys reaching the threshold become hitters and claim their
		// sessions. Deterministic order: larger counts first, then key
		// order, so overlapping candidates claim stably.
		var cands []attr.Key
		for key, list := range unclaimed {
			if float64(len(list)) >= threshold {
				cands = append(cands, key)
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			a, b := len(unclaimed[cands[i]]), len(unclaimed[cands[j]])
			if a != b {
				return a > b
			}
			return cands[i].Less(cands[j])
		})
		for _, key := range cands {
			n := 0
			for _, pos := range unclaimed[key] {
				if !claimed[pos] {
					claimed[pos] = true
					n++
				}
			}
			if float64(n) >= threshold {
				res.Hitters = append(res.Hitters, Hitter{Key: key, Discounted: n})
			} else {
				// Overlap with an earlier hitter at this level consumed its
				// mass; release nothing (claimed sessions stay claimed by
				// the earlier hitter's semantics).
				if n > 0 {
					res.Hitters = append(res.Hitters, Hitter{Key: key, Discounted: n})
				}
			}
		}
	}

	for i := range res.Hitters {
		c, _ := raw.Get(res.Hitters[i].Key)
		res.Hitters[i].Raw = int(c.Total)
	}
	sort.SliceStable(res.Hitters, func(i, j int) bool {
		if res.Hitters[i].Discounted != res.Hitters[j].Discounted {
			return res.Hitters[i].Discounted > res.Hitters[j].Discounted
		}
		return res.Hitters[i].Key.Less(res.Hitters[j].Key)
	})
	return res, nil
}


// Keys returns the hitter keys in rank order.
func (r *Result) Keys() []attr.Key {
	out := make([]attr.Key, len(r.Hitters))
	for i := range r.Hitters {
		out[i] = r.Hitters[i].Key
	}
	return out
}
