package lint

import (
	"go/ast"
	"go/token"

	"repro/internal/lint/cfg"
	"repro/internal/lint/flow"
	"repro/internal/lint/summary"
)

// LockBalance reports lock/unlock imbalance on sync.Mutex and sync.RWMutex
// along every control-flow path: a path that returns (or falls off the end)
// with a lock still outstanding, an unlock with no matching lock, and an
// exclusive Lock taken while the same mutex is already held (self-deadlock).
// It replaces the v1 `lockheld` rule, whose syntactic walk could not follow
// the collector's reconnect/drain branches: a `return` inside a `select`
// clause that skipped the unlock was invisible to it.
//
// The analysis runs per function over the CFG. The state per mutex (keyed by
// the rendered receiver expression, read and write sides separately) is a
// small interval [lo,hi] bounding the outstanding count = locks − unlocks −
// deferred unlocks on the paths reaching a point; `defer mu.Unlock()` is
// credited immediately, which is exactly right for exit checks and makes the
// conditional lock-plus-defer idiom (`if x { mu.Lock(); defer mu.Unlock() }`)
// come out balanced. Joins take the interval hull; lo > 0 at a path end is a
// definite leak, hi > 0 a leak on some path. Panic-terminated paths are
// exempt by construction (they never reach the exit checks). Mutexes
// reachable only through captured variables inside nested function literals
// are each literal's own problem — every literal is analyzed separately.
var LockBalance = &Analyzer{
	Name: "lockbalance",
	Doc:  "Lock/RLock not matched by exactly one Unlock/RUnlock on every path",
	Run:  runLockBalance,
}

// lbKey identifies one lock side: the rendered receiver plus whether this
// is the read side of an RWMutex (RLock/RUnlock pair separately from
// Lock/Unlock).
type lbKey struct {
	recv string
	read bool
}

func (k lbKey) lockOp() string {
	if k.read {
		return "RLock"
	}
	return "Lock"
}

func (k lbKey) unlockOp() string {
	if k.read {
		return "RUnlock"
	}
	return "Unlock"
}

// lbIv is the outstanding-count interval. Counts are clamped to ±lbCap so
// pathological loops (for { mu.Lock() }) still reach a fixed point.
type lbIv struct{ lo, hi int8 }

const lbCap = 3

func lbClamp(v int8) int8 {
	if v > lbCap {
		return lbCap
	}
	if v < -lbCap {
		return -lbCap
	}
	return v
}

type lbState map[lbKey]lbIv

func lbClone(s lbState) lbState {
	c := make(lbState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func lbEqual(a, b lbState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// lbJoin hulls the intervals; a key missing on one side is [0,0] there.
func lbJoin(dst, src lbState) lbState {
	for k, sv := range src {
		dv, ok := dst[k]
		if !ok {
			dv = lbIv{}
		}
		if sv.lo < dv.lo {
			dv.lo = sv.lo
		}
		if sv.hi > dv.hi {
			dv.hi = sv.hi
		}
		dst[k] = dv
	}
	for k, dv := range dst {
		if _, ok := src[k]; !ok {
			if dv.lo > 0 {
				dv.lo = 0
			}
			if dv.hi < 0 {
				dv.hi = 0
			}
			dst[k] = dv
		}
	}
	// Normalize: [0,0] and absent are the same state.
	for k, v := range dst {
		if v == (lbIv{}) {
			delete(dst, k)
		}
	}
	return dst
}

func runLockBalance(p *Pass) {
	for _, f := range p.Files {
		for _, fn := range functionsIn(f) {
			lockBalanceFunc(p, fn)
		}
	}
}

func lockBalanceFunc(p *Pass, fn funcScope) {
	g := cfg.New(fn.body)
	prob := flow.Problem[lbState]{
		Boundary: func() lbState { return lbState{} },
		Transfer: func(b *cfg.Block, s lbState) lbState {
			lbTransfer(p, b, g, s, fn.deferredLit, nil)
			return s
		},
		Join:  lbJoin,
		Equal: lbEqual,
		Clone: lbClone,
	}
	res := flow.Solve(g, prob)

	// Replay each reachable block once from its fixed-point entry state,
	// this time with reporting enabled.
	for _, b := range g.Reachable() {
		in, ok := res.In[b]
		if !ok {
			continue
		}
		lbTransfer(p, b, g, lbClone(in), fn.deferredLit, p.Reportf)
	}
}

// lbTransfer interprets one block. When report is non-nil it also emits the
// diagnostics for this block (the solver passes nil; the replay passes
// Pass.Reportf). lenient relaxes the unmatched-unlock check for deferred
// literals, which release locks their enclosing function took.
func lbTransfer(p *Pass, b *cfg.Block, g *cfg.Graph, s lbState, lenient bool, report func(token.Pos, string, ...any)) {
	for _, n := range b.Nodes {
		switch n := n.(type) {
		case *ast.ExprStmt:
			call, ok := n.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			recv, op := mutexCall(p, call)
			if op == "" {
				lbApplyCallee(p, call, s, false, lenient, report)
				continue
			}
			k := lbKey{recv: recv, read: op == "RLock" || op == "RUnlock"}
			iv := s[k]
			switch op {
			case "Lock":
				if iv.lo >= 1 && report != nil {
					report(n.Pos(), "%s.Lock() while %s is already locked on every path to here (self-deadlock)", recv, recv)
				}
				iv.lo, iv.hi = lbClamp(iv.lo+1), lbClamp(iv.hi+1)
			case "RLock":
				// Recursive read locks are legal; just count.
				iv.lo, iv.hi = lbClamp(iv.lo+1), lbClamp(iv.hi+1)
			case "Unlock", "RUnlock":
				switch {
				case iv.hi <= 0:
					if !lenient && report != nil {
						report(n.Pos(), "%s.%s() without a matching %s on any path to here", recv, op, k.lockOp())
					}
					// Do not decrement: the report already covers this, and
					// cascading negative counts would double-report.
				case iv.lo <= 0:
					if report != nil {
						report(n.Pos(), "%s.%s() but %s is not locked on every path to here", recv, op, recv)
					}
					iv.hi = lbClamp(iv.hi - 1)
				default:
					iv.lo, iv.hi = lbClamp(iv.lo-1), lbClamp(iv.hi-1)
				}
			}
			s[k] = iv

		case *ast.DeferStmt:
			for _, cr := range deferredUnlocks(p, n) {
				k := lbKey{recv: cr.recv, read: cr.read}
				iv := s[k]
				iv.lo, iv.hi = lbClamp(iv.lo-1), lbClamp(iv.hi-1)
				s[k] = iv
			}
			// A deferred in-package helper with a proven net-unlock effect
			// (`defer c.unlockAll()`) credits its unlocks immediately, the
			// same convention as `defer mu.Unlock()`.
			if _, op := mutexCall(p, n.Call); op == "" {
				if _, isLit := n.Call.Fun.(*ast.FuncLit); !isLit {
					lbApplyCallee(p, n.Call, s, true, lenient, report)
				}
			}

		case *ast.ReturnStmt:
			if report != nil {
				lbCheckExit(s, n.Pos(), "this return", report)
			}
		}
	}
	if report != nil && blockFallsToExit(b, g) {
		lbCheckExit(s, g.End, "the end of the function", report)
	}
}

// lbApplyCallee maps an in-package callee's net mutex deltas onto the
// caller's keys: a helper that provably returns holding `c.mu` (delta +1 on
// its receiver's .mu) makes the caller's count go up at the call site, so
// leaks and double-locks through helpers surface in the caller. A callee
// whose lock behavior is conditional or unknown has no delta entry and —
// like before the interprocedural tier — leaves the state untouched.
// deferred marks `defer helper()`: only unlock credits apply (the helper
// runs at exit, so lock acquisitions there are outside this accounting).
func lbApplyCallee(p *Pass, call *ast.CallExpr, s lbState, deferred, lenient bool, report func(token.Pos, string, ...any)) {
	sum := p.Sums.ForCall(call)
	if sum == nil || len(sum.MutexDelta) == 0 {
		return
	}
	for mref, delta := range sum.MutexDelta {
		base, ok := lbArgBase(call, mref.Param)
		if !ok || delta == 0 {
			continue
		}
		// Deltas beyond the interval cap behave identically to the cap.
		if delta > lbCap {
			delta = lbCap
		} else if delta < -lbCap {
			delta = -lbCap
		}
		d := int8(delta)
		k := lbKey{recv: base + mref.Path, read: mref.Read}
		iv := s[k]
		if d > 0 {
			if deferred {
				continue
			}
			if !k.read && iv.lo >= 1 && report != nil {
				report(call.Pos(), "%s locks %s which is already locked on every path to here (self-deadlock)", calleeLabel(call), k.recv)
			}
			iv.lo, iv.hi = lbClamp(iv.lo+d), lbClamp(iv.hi+d)
			s[k] = iv
			continue
		}
		for n := -d; n > 0; n-- {
			switch {
			case iv.hi <= 0:
				if !lenient && report != nil {
					report(call.Pos(), "%s unlocks %s without a matching %s on any path to here", calleeLabel(call), k.recv, k.lockOp())
				}
				// As with a direct unmatched unlock: report once, don't
				// cascade negative counts.
				n = 0
			case iv.lo <= 0:
				iv.hi = lbClamp(iv.hi - 1)
			default:
				iv.lo, iv.hi = lbClamp(iv.lo-1), lbClamp(iv.hi-1)
			}
		}
		s[k] = iv
	}
}

// lbArgBase renders the caller-side expression bound to a callee parameter
// (or receiver) as a key base.
func lbArgBase(call *ast.CallExpr, param int) (string, bool) {
	if param == summary.Recv {
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			return renderWgBase(sel.X), true
		}
		return "", false
	}
	if param < 0 || param >= len(call.Args) {
		return "", false
	}
	return renderWgBase(call.Args[param]), true
}

// lbCheckExit reports outstanding or over-credited locks at a path end.
func lbCheckExit(s lbState, pos token.Pos, where string, report func(token.Pos, string, ...any)) {
	for k, iv := range s {
		switch {
		case iv.lo > 0:
			report(pos, "%s reaches %s still locked: no %s or deferred %s on this path", k.recv, where, k.unlockOp(), k.unlockOp())
		case iv.hi > 0:
			report(pos, "%s may reach %s still locked: %s on some path to here has no %s", k.recv, where, k.lockOp(), k.unlockOp())
		case iv.hi < 0:
			report(pos, "deferred %s of %s without a matching %s on every path to %s", k.unlockOp(), k.recv, k.lockOp(), where)
		}
	}
}

type lbCredit struct {
	recv string
	read bool
}

// deferredUnlocks extracts the unlock credits a defer statement carries:
// either `defer mu.Unlock()` directly, or unlock calls inside a deferred
// function literal. Unlocks inside a deferred literal are credited
// unconditionally even if the literal guards them — a deliberate
// approximation (the guard almost always tests "did we lock", which the
// interval already models).
func deferredUnlocks(p *Pass, d *ast.DeferStmt) []lbCredit {
	if recv, op := mutexCall(p, d.Call); op == "Unlock" || op == "RUnlock" {
		return []lbCredit{{recv: recv, read: op == "RUnlock"}}
	}
	lit, ok := d.Call.Fun.(*ast.FuncLit)
	if !ok {
		return nil
	}
	var out []lbCredit
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv, op := mutexCall(p, call); op == "Unlock" || op == "RUnlock" {
			out = append(out, lbCredit{recv: recv, read: op == "RUnlock"})
		}
		return true
	})
	return out
}
