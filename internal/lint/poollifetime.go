package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/cfg"
	"repro/internal/lint/flow"
	"repro/internal/lint/summary"
)

// PoolLifetime reports uses of a pooled value after its Release and double
// releases. PoolRelease proves the obligation side — every acquired value
// reaches Release; this analyzer proves the other half of the lifetime
// contract: once a value with a Release method (cktable.Table, the hhh
// scratch, digest buffers) or a sync.Pool member is released, the current
// holder must not touch it again — the pool may already have handed it to
// another goroutine, so a late Merge or Write is a data race the type
// system cannot see, and a second Release poisons the pool with a
// double-freed object.
//
// The analysis is a forward may-released problem over the CFG, keyed by
// expression rendering rather than by object so element lifetimes like
// `shards[src]` are tracked (the wgbalance convention); local roots are
// disambiguated by declaration position, and a rendering that indexes by a
// variable records the dependence — reassigning `src` kills the
// `shards[src]` fact. Releases through in-package helpers are seen via the
// Releases effect summary, so Merge-then-release pipelines like
// cluster.NewTableParallel check cleanly. Rebinding the expression, or a
// nil comparison, ends the tracked lifetime (nil tests are how callers
// guard optional releases). A deferred release registers instead of
// releasing; an explicit release while one is pending is reported at
// function exit.
var PoolLifetime = &Analyzer{
	Name: "poollifetime",
	Doc:  "pooled value used after Release, or released twice",
	Run:  runPoolLifetime,
}

// plFact is one released value.
type plFact struct {
	releasedAt token.Pos
	// what renders the released expression for diagnostics.
	what string
	// deps are variables the rendering indexes by (`src` in `shards[src]`);
	// reassigning one retargets the rendering, ending the fact.
	deps map[*types.Var]bool
}

type plState struct {
	// rel: renderings released on some incoming path.
	rel map[string]plFact
	// def: renderings with a deferred release pending (registration
	// position), tracked in flow state so the pairing is path-aware.
	def map[string]token.Pos
}

func plClone(s plState) plState {
	c := plState{rel: make(map[string]plFact, len(s.rel)), def: make(map[string]token.Pos, len(s.def))}
	for k, v := range s.rel {
		c.rel[k] = v
	}
	for k, v := range s.def {
		c.def[k] = v
	}
	return c
}

func plEqual(a, b plState) bool {
	if len(a.rel) != len(b.rel) || len(a.def) != len(b.def) {
		return false
	}
	for k, v := range a.rel {
		if bv, ok := b.rel[k]; !ok || bv.releasedAt != v.releasedAt {
			return false
		}
	}
	for k, v := range a.def {
		if bv, ok := b.def[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// plJoin unions: released on any path is released (may-analysis). The
// first-seen fact wins so positions stay deterministic.
func plJoin(dst, src plState) plState {
	for k, v := range src.rel {
		if _, ok := dst.rel[k]; !ok {
			dst.rel[k] = v
		}
	}
	for k, v := range src.def {
		if dv, ok := dst.def[k]; !ok || v < dv {
			dst.def[k] = v
		}
	}
	return dst
}

func runPoolLifetime(p *Pass) {
	for _, f := range p.Files {
		for _, fn := range functionsIn(f) {
			poolLifetimeFunc(p, fn)
		}
	}
}

func poolLifetimeFunc(p *Pass, fn funcScope) {
	ctx := &plCtx{p: p, caps: capturedVars(p, fn.body)}
	g := cfg.New(fn.body)
	prob := flow.Problem[plState]{
		Boundary: func() plState { return plState{rel: map[string]plFact{}, def: map[string]token.Pos{}} },
		Transfer: func(b *cfg.Block, s plState) plState {
			ctx.transfer(b, s, false)
			return s
		},
		Join:  plJoin,
		Equal: plEqual,
		Clone: plClone,
	}
	res := flow.Solve(g, prob)
	for _, b := range g.Reachable() {
		in, ok := res.In[b]
		if !ok {
			continue
		}
		ctx.transfer(b, plClone(in), true)
	}
	// An explicit release while a deferred one is pending: the defer fires
	// at return and releases again.
	if exit, ok := res.In[g.Exit]; ok {
		for k, fact := range exit.rel {
			if dpos, pending := exit.def[k]; pending && fact.releasedAt > dpos {
				p.Reportf(fact.releasedAt, "%s is released here and again by the deferred release at line %d",
					fact.what, p.Fset.Position(dpos).Line)
			}
		}
	}
}

type plCtx struct {
	p    *Pass
	caps map[*types.Var]bool
}

func (ctx *plCtx) transfer(b *cfg.Block, s plState, report bool) {
	for _, n := range b.Nodes {
		// The use check sees the state before this node's own releases and
		// rebinds; release-event operands are exempt (a second Release is
		// the double-release diagnostic, not a use).
		if report {
			exempt := map[ast.Expr]bool{}
			inspectCFGNode(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					for _, t := range ctx.releaseTargets(call) {
						exempt[t] = true
					}
				}
				return true
			})
			ctx.useCheck(n, s, exempt)
		}
		switch n := n.(type) {
		case *ast.DeferStmt:
			ctx.applyDefer(n, s, report)
		default:
			inspectCFGNode(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					ctx.applyRelease(call, s, report)
				}
				return true
			})
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			ctx.applyAssign(n, s)
		case *ast.IncDecStmt:
			ctx.applyRebind(n.X, s)
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, name := range vs.Names {
							ctx.applyRebind(name, s)
						}
					}
				}
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if e != nil {
					ctx.applyRebind(e, s)
				}
			}
		}
	}
}

// releaseTargets returns the expressions this call releases: the receiver
// of x.Release(), the arguments of a Put on a sync.Pool (or of a typed
// wrapper whose argument has a Release method), and arguments/receiver an
// in-package callee summary proves it releases.
func (ctx *plCtx) releaseTargets(call *ast.CallExpr) []ast.Expr {
	p := ctx.p
	var out []ast.Expr
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "Release":
			if len(call.Args) == 0 && hasReleaseMethod(p.TypeOf(sel.X)) {
				out = append(out, sel.X)
			}
		case "Put":
			for _, arg := range call.Args {
				bare := arg
				if u, ok := bare.(*ast.UnaryExpr); ok && u.Op == token.AND {
					bare = u.X
				}
				if isSyncPool(p, sel.X) || hasReleaseMethod(p.TypeOf(bare)) {
					out = append(out, bare)
				}
			}
		}
	}
	if sum := p.Sums.ForCall(call); sum != nil {
		// Sorted so target (and thus report) order is deterministic.
		refs := make([]summary.Ref, 0, len(sum.Releases))
		for ref := range sum.Releases {
			if ref.Path == "" {
				refs = append(refs, ref)
			}
		}
		sort.Slice(refs, func(i, j int) bool { return refs[i].Param < refs[j].Param })
		for _, ref := range refs {
			if ref.Param == summary.Recv {
				if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
					out = append(out, sel.X)
				}
				continue
			}
			if ref.Param >= 0 && ref.Param < len(call.Args) {
				out = append(out, call.Args[ref.Param])
			}
		}
	}
	return out
}

func (ctx *plCtx) applyRelease(call *ast.CallExpr, s plState, report bool) {
	for _, target := range ctx.releaseTargets(call) {
		key, deps, ok := ctx.render(target)
		if !ok {
			continue
		}
		if old, released := s.rel[key]; released {
			if report {
				ctx.p.Reportf(call.Pos(), "%s released twice: already released at line %d",
					old.what, ctx.p.Fset.Position(old.releasedAt).Line)
			}
			continue
		}
		s.rel[key] = plFact{releasedAt: call.Pos(), what: types.ExprString(unparen(target)), deps: deps}
	}
}

// applyDefer registers a deferred release instead of applying it: the
// release runs at return, so the value stays usable on the fallthrough —
// but a value already released now, or a second deferred release, is a
// guaranteed double release.
func (ctx *plCtx) applyDefer(n *ast.DeferStmt, s plState, report bool) {
	targets := ctx.releaseTargets(n.Call)
	if len(targets) == 0 {
		return
	}
	for _, target := range targets {
		key, _, ok := ctx.render(target)
		if !ok {
			continue
		}
		if old, released := s.rel[key]; released {
			if report {
				ctx.p.Reportf(n.Pos(), "deferred release of %s: value already released at line %d",
					old.what, ctx.p.Fset.Position(old.releasedAt).Line)
			}
			continue
		}
		if prev, pending := s.def[key]; pending {
			if report {
				ctx.p.Reportf(n.Pos(), "%s has two deferred releases (first at line %d)",
					types.ExprString(unparen(target)), ctx.p.Fset.Position(prev).Line)
			}
			continue
		}
		s.def[key] = n.Pos()
	}
}

// applyAssign ends lifetimes: rebinding a tracked rendering (or a variable
// such a rendering indexes by) retargets it, and `y := x` of a released x
// makes y an alias of the dead value.
func (ctx *plCtx) applyAssign(n *ast.AssignStmt, s plState) {
	for i, lhs := range n.Lhs {
		var aliasFact plFact
		hasAlias := false
		if (n.Tok == token.ASSIGN || n.Tok == token.DEFINE) && len(n.Rhs) == len(n.Lhs) {
			if rk, _, ok := ctx.render(n.Rhs[i]); ok {
				if f, dead := s.rel[rk]; dead {
					aliasFact, hasAlias = f, true
				}
			}
		}
		ctx.applyRebind(lhs, s)
		if hasAlias {
			if lk, deps, ok := ctx.render(lhs); ok {
				aliasFact.deps = deps
				s.rel[lk] = aliasFact
			}
		}
	}
}

// applyRebind kills facts for e's rendering, anything rendered beneath it,
// and any fact whose index dependence names e (when e is an identifier).
func (ctx *plCtx) applyRebind(e ast.Expr, s plState) {
	if key, _, ok := ctx.render(e); ok {
		for k := range s.rel {
			if k == key || strings.HasPrefix(k, key+".") || strings.HasPrefix(k, key+"[") {
				delete(s.rel, k)
			}
		}
		for k := range s.def {
			if k == key || strings.HasPrefix(k, key+".") || strings.HasPrefix(k, key+"[") {
				delete(s.def, k)
			}
		}
	}
	if id, ok := unparen(e).(*ast.Ident); ok {
		if v := prObjOf(ctx.p, id); v != nil {
			for k, f := range s.rel {
				if f.deps[v] {
					delete(s.rel, k)
				}
			}
		}
	}
}

// useCheck reports maximal expressions whose rendering names a released
// value. Assignment LHS is skipped (a rebind is how lifetimes end), as are
// nil comparisons (the guard idiom for optional releases) and the exempted
// release operands of this very node.
func (ctx *plCtx) useCheck(n ast.Node, s plState, exempt map[ast.Expr]bool) {
	if len(s.rel) == 0 {
		return
	}
	var checkExpr func(e ast.Expr)
	var checkNode func(m ast.Node)
	checkExpr = func(e ast.Expr) {
		if e == nil || exempt[e] {
			return
		}
		if bin, ok := e.(*ast.BinaryExpr); ok && (bin.Op == token.EQL || bin.Op == token.NEQ) {
			if plIsNil(ctx.p, bin.X) || plIsNil(ctx.p, bin.Y) {
				return
			}
		}
		if key, _, ok := ctx.render(e); ok {
			if f, dead := s.rel[key]; dead {
				ctx.p.Reportf(e.Pos(), "use of %s after its release at line %d",
					f.what, ctx.p.Fset.Position(f.releasedAt).Line)
				delete(s.rel, key)
				return
			}
		}
		switch e := e.(type) {
		case *ast.ParenExpr:
			checkExpr(e.X)
		case *ast.SelectorExpr:
			checkExpr(e.X)
		case *ast.IndexExpr:
			checkExpr(e.X)
			checkExpr(e.Index)
		case *ast.StarExpr:
			checkExpr(e.X)
		case *ast.UnaryExpr:
			checkExpr(e.X)
		case *ast.BinaryExpr:
			checkExpr(e.X)
			checkExpr(e.Y)
		case *ast.CallExpr:
			checkExpr(e.Fun)
			for _, a := range e.Args {
				checkExpr(a)
			}
		case *ast.CompositeLit:
			for _, elt := range e.Elts {
				checkExpr(elt)
			}
		case *ast.KeyValueExpr:
			checkExpr(e.Value)
		case *ast.SliceExpr:
			checkExpr(e.X)
		case *ast.TypeAssertExpr:
			checkExpr(e.X)
		case *ast.FuncLit:
			// The literal's body has its own pass.
		}
	}
	checkNode = func(m ast.Node) {
		switch m := m.(type) {
		case *ast.AssignStmt:
			for _, r := range m.Rhs {
				// A bare identifier RHS copies the pointer without touching
				// the released object; the alias it creates is tracked, and
				// its first dereference is where the finding lands.
				if _, isIdent := unparen(r).(*ast.Ident); isIdent {
					continue
				}
				checkExpr(r)
			}
			// Index expressions on the LHS still read their index and base
			// bindings, but a released base being *assigned into* is the
			// rebind idiom — skip the whole LHS.
		case *ast.IncDecStmt:
			// Rebind idiom.
		case *ast.DeclStmt:
			if gd, ok := m.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, v := range vs.Values {
							checkExpr(v)
						}
					}
				}
			}
		case *ast.ExprStmt:
			checkExpr(m.X)
		case *ast.DeferStmt:
			checkExpr(m.Call)
		case *ast.GoStmt:
			checkExpr(m.Call)
		case *ast.SendStmt:
			checkExpr(m.Chan)
			checkExpr(m.Value)
		case *ast.ReturnStmt:
			for _, r := range m.Results {
				checkExpr(r)
			}
		case ast.Expr:
			checkExpr(m)
		}
	}
	checkNode(n)
}

// render produces the tracking key for e: identifiers (disambiguated by
// declaration position so shadowed names stay distinct), field selections,
// variable- or literal-indexed elements, and dereferences. The root must be
// a local or package-level variable not captured by a nested literal
// (captured values have cross-function lifetimes this per-function pass
// cannot judge). Returns the index-variable dependences alongside.
func (ctx *plCtx) render(e ast.Expr) (string, map[*types.Var]bool, bool) {
	var deps map[*types.Var]bool
	var build func(e ast.Expr) (string, bool)
	build = func(e ast.Expr) (string, bool) {
		switch e := e.(type) {
		case *ast.ParenExpr:
			return build(e.X)
		case *ast.Ident:
			v := prObjOf(ctx.p, e)
			if v == nil || ctx.caps[v] {
				return "", false
			}
			return fmt.Sprintf("%s#%d", e.Name, v.Pos()), true
		case *ast.SelectorExpr:
			base, ok := build(e.X)
			if !ok {
				return "", false
			}
			return base + "." + e.Sel.Name, true
		case *ast.IndexExpr:
			base, ok := build(e.X)
			if !ok {
				return "", false
			}
			switch idx := unparen(e.Index).(type) {
			case *ast.Ident:
				v := prObjOf(ctx.p, idx)
				if v == nil {
					return "", false
				}
				if deps == nil {
					deps = map[*types.Var]bool{}
				}
				deps[v] = true
				return fmt.Sprintf("%s[%s#%d]", base, idx.Name, v.Pos()), true
			case *ast.BasicLit:
				return fmt.Sprintf("%s[%s]", base, idx.Value), true
			}
			return "", false
		case *ast.StarExpr:
			base, ok := build(e.X)
			if !ok {
				return "", false
			}
			return "*" + base, true
		}
		return "", false
	}
	key, ok := build(e)
	return key, deps, ok
}

func plIsNil(p *Pass, e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := p.Info.Uses[id].(*types.Nil)
	return isNil
}
