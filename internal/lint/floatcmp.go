package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmp reports direct ==/!= comparisons between floating-point
// expressions. The analysis pipeline classifies sessions against thresholds
// (5% buffering ratio, 700 kbps, 1.5× the global problem ratio) that are
// derived arithmetically, so exact equality silently misclassifies values
// one ulp off the boundary; comparisons must go through the eps helpers
// (repro/internal/core/eps). Two exemptions: comparisons where both
// operands are compile-time constants (exact by construction), and
// comparisons inside a comparator literal passed to sort/slices (an epsilon
// tie-break there violates strict weak ordering and corrupts the sort).
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "direct ==/!= on floating-point expressions (use internal/core/eps)",
	Run:  runFloatCmp,
}

func runFloatCmp(p *Pass) {
	for _, f := range p.Files {
		comparators := comparatorRanges(p, f)
		ast.Inspect(f, func(n ast.Node) bool {
			cmp, ok := n.(*ast.BinaryExpr)
			if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
				return true
			}
			if !isFloat(p.TypeOf(cmp.X)) && !isFloat(p.TypeOf(cmp.Y)) {
				return true
			}
			if isConstExpr(p, cmp.X) && isConstExpr(p, cmp.Y) {
				return true
			}
			for _, r := range comparators {
				if cmp.Pos() >= r[0] && cmp.Pos() < r[1] {
					return true
				}
			}
			p.Reportf(cmp.OpPos, "float comparison with %s; use eps.Eq or an explicit tolerance", cmp.Op)
			return true
		})
	}
}

// comparatorRanges returns the source ranges of function literals passed as
// arguments to sort/slices ordering functions.
func comparatorRanges(p *Pass, f *ast.File) [][2]token.Pos {
	var out [][2]token.Pos
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, name := calleePkgFunc(p, call)
		if (pkg != "sort" && pkg != "slices") || !sortFuncNames[name] {
			return true
		}
		for _, arg := range call.Args {
			if lit, ok := arg.(*ast.FuncLit); ok {
				out = append(out, [2]token.Pos{lit.Pos(), lit.End()})
			}
		}
		return true
	})
	return out
}

// isFloat reports whether t's underlying type is a floating-point type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isConstExpr reports whether e evaluated to a compile-time constant.
func isConstExpr(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.Value != nil
}
