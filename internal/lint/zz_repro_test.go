package lint

import "testing"

// Repro A: selector-LHS assignment does not kill facts about s.n.
func TestRatioguardSelectorKillGap(t *testing.T) {
	src := `package fix
type S struct{ n int }
func f(s *S, x float64) float64 {
	if s.n == 0 {
		return 0
	}
	s.n = 0
	return x / float64(s.n) // division by zero at runtime; should be flagged
}
`
	diags := analyzeSrc(t, src, RatioGuard)
	if len(diags) == 0 {
		t.Fatalf("NOT FLAGGED: stale fact survived selector assignment")
	}
	t.Logf("flagged: %v", diags)
}

// Repro B: fallthrough after a nested switch loses its CFG edge.
func TestLockbalanceFallthroughNestedSwitch(t *testing.T) {
	src := `package fix
import "sync"
func g(mu *sync.Mutex, x, y int) {
	switch x {
	case 1:
		switch y {
		case 2:
		}
		fallthrough
	case 3:
		mu.Unlock() // reached with mu unlocked via fallthrough; but also...
	}
}
`
	diags := analyzeSrc(t, src, LockBalance)
	t.Logf("diags: %v", diags)
}
