package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/cfg"
	"repro/internal/lint/flow"
	"repro/internal/lint/summary"
)

// ChanDiscipline reports channel operations that are guaranteed to panic or
// block forever: send on a closed channel, double close (direct, via an
// in-package helper, or by a deferred close running after an explicit one),
// close of a nil channel, and send/receive/range on a definitely-nil
// channel outside a select. The analysis is definite-only: it tracks a
// three-state machine (nil / open / closed) per local channel variable over
// the CFG and reports only when the bad state holds on every path — channel
// values cannot be "un-closed" or "un-nil'd" by a callee, so a definite
// state can only be invalidated by an assignment the analysis sees.
//
// The nil-channel-in-select idiom is exempt by design: disabling a case by
// setting its channel to nil is how select loops retire a source, so comm
// clauses never get nil-blocks reports (send on a closed channel still
// panics inside select and is still reported).
var ChanDiscipline = &Analyzer{
	Name: "chandiscipline",
	Doc:  "channel operation that must panic (closed/nil close, send on closed) or block forever (nil send/receive)",
	Run:  runChanDiscipline,
}

// cdSt is the definite state of one channel variable; untracked/unknown
// variables are simply absent.
type cdSt uint8

const (
	cdNil cdSt = iota + 1
	cdOpen
	cdClosed
)

func (s cdSt) String() string {
	switch s {
	case cdNil:
		return "nil"
	case cdOpen:
		return "open"
	case cdClosed:
		return "closed"
	}
	return "unknown"
}

// cdState maps channel variables to their definite state, plus a must-flag
// for channels with a pending deferred close.
type cdState struct {
	st          map[*types.Var]cdSt
	deferClosed map[*types.Var]bool
}

func cdNew() cdState {
	return cdState{st: make(map[*types.Var]cdSt), deferClosed: make(map[*types.Var]bool)}
}

func cdClone(s cdState) cdState {
	c := cdState{
		st:          make(map[*types.Var]cdSt, len(s.st)),
		deferClosed: make(map[*types.Var]bool, len(s.deferClosed)),
	}
	for k, v := range s.st {
		c.st[k] = v
	}
	for k := range s.deferClosed {
		c.deferClosed[k] = true
	}
	return c
}

func cdEqual(a, b cdState) bool {
	if len(a.st) != len(b.st) || len(a.deferClosed) != len(b.deferClosed) {
		return false
	}
	for k, v := range a.st {
		if b.st[k] != v {
			return false
		}
	}
	for k := range a.deferClosed {
		if !b.deferClosed[k] {
			return false
		}
	}
	return true
}

// cdJoin keeps only the facts the paths agree on (must semantics).
func cdJoin(dst, src cdState) cdState {
	for k, v := range dst.st {
		if src.st[k] != v {
			delete(dst.st, k)
		}
	}
	for k := range dst.deferClosed {
		if !src.deferClosed[k] {
			delete(dst.deferClosed, k)
		}
	}
	return dst
}

func runChanDiscipline(p *Pass) {
	for _, f := range p.Files {
		for _, fn := range functionsIn(f) {
			chanDisciplineFunc(p, fn)
		}
	}
}

// cdCtx is the per-function context: which variables are trackable and
// which statements are select comm clauses (exempt from nil-blocks).
type cdCtx struct {
	pass      *Pass
	untracked map[*types.Var]bool
	commStmt  map[ast.Node]bool
	// rangeX marks range operands: the CFG records them as bare expression
	// nodes evaluated once before the loop, which is exactly where a nil
	// channel blocks.
	rangeX map[ast.Node]bool
}

func chanDisciplineFunc(p *Pass, fn funcScope) {
	ctx := &cdCtx{
		pass:      p,
		untracked: capturedVars(p, fn.body),
		commStmt:  make(map[ast.Node]bool),
		rangeX:    make(map[ast.Node]bool),
	}
	ast.Inspect(fn.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate scope
		case *ast.UnaryExpr:
			// &ch escapes the variable itself: anyone can swap the value.
			if n.Op == token.AND {
				if v := chanIdentVar(p, n.X); v != nil {
					ctx.untracked[v] = true
				}
			}
		case *ast.SelectStmt:
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					ctx.commStmt[cc.Comm] = true
				}
			}
		case *ast.RangeStmt:
			if isChanType(p.TypeOf(n.X)) {
				ctx.rangeX[n.X] = true
			}
		}
		return true
	})

	g := cfg.New(fn.body)
	prob := flow.Problem[cdState]{
		Boundary: cdNew,
		Transfer: func(b *cfg.Block, s cdState) cdState {
			ctx.transfer(b, g, s, nil)
			return s
		},
		Join:  cdJoin,
		Equal: cdEqual,
		Clone: cdClone,
	}
	res := flow.Solve(g, prob)
	for _, b := range g.Reachable() {
		in, ok := res.In[b]
		if !ok {
			continue
		}
		ctx.transfer(b, g, cdClone(in), p.Reportf)
	}
}

func (ctx *cdCtx) transfer(b *cfg.Block, g *cfg.Graph, s cdState, report func(token.Pos, string, ...any)) {
	for _, n := range b.Nodes {
		switch n := n.(type) {
		case *ast.DeferStmt:
			ctx.applyDefer(n, s, report)
			continue
		case *ast.RangeStmt:
			// Per-iteration key/value binding only; the operand was handled
			// as a bare expression node before the loop head.
			continue
		}
		if ctx.rangeX[n] {
			if v := ctx.tracked(n.(ast.Expr)); v != nil && s.st[v] == cdNil && report != nil {
				report(n.Pos(), "range over nil channel %s blocks forever", v.Name())
			}
			continue
		}

		exempt := ctx.commStmt[n]
		inspectCFGNode(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.CallExpr:
				ctx.applyCall(m, s, report)
			case *ast.SendStmt:
				if v := ctx.tracked(m.Chan); v != nil {
					switch s.st[v] {
					case cdClosed:
						if report != nil {
							report(m.Pos(), "send on %s which is closed on every path to here (panics)", v.Name())
						}
					case cdNil:
						if report != nil && !exempt {
							report(m.Pos(), "send on nil channel %s blocks forever", v.Name())
						}
					}
				}
			case *ast.UnaryExpr:
				if m.Op == token.ARROW {
					if v := ctx.tracked(m.X); v != nil && s.st[v] == cdNil {
						if report != nil && !exempt {
							report(m.Pos(), "receive from nil channel %s blocks forever", v.Name())
						}
					}
				}
			}
			return true
		})

		// State transitions after the node's reads.
		switch n := n.(type) {
		case *ast.AssignStmt:
			ctx.applyAssign(n, s)
		case *ast.DeclStmt:
			ctx.applyDecl(n, s)
		case *ast.ReturnStmt:
			// The result expressions (inspected above) are evaluated first;
			// then the deferred closes fire.
			if report != nil {
				ctx.checkExit(s, n.Pos(), report)
			}
		}
	}
	if report != nil && blockFallsToExit(b, g) {
		ctx.checkExit(s, g.End, report)
	}
}

// checkExit fires the deferred closes: one running on a channel already
// definitely closed is a guaranteed panic at return.
func (ctx *cdCtx) checkExit(s cdState, pos token.Pos, report func(token.Pos, string, ...any)) {
	for v := range s.deferClosed {
		if s.st[v] == cdClosed {
			report(pos, "deferred close of %s runs here after %s is already closed on every path (panics)", v.Name(), v.Name())
		}
	}
}

// applyDefer records deferred closes (direct or inside a deferred literal)
// without transitioning the state — the close runs at function exit.
func (ctx *cdCtx) applyDefer(d *ast.DeferStmt, s cdState, report func(token.Pos, string, ...any)) {
	noteClose := func(call *ast.CallExpr) {
		v := ctx.closedChan(call)
		if v == nil {
			return
		}
		if s.deferClosed[v] {
			if report != nil {
				report(call.Pos(), "close of %s deferred twice; the second deferred close panics", v.Name())
			}
			return
		}
		s.deferClosed[v] = true
	}
	noteClose(d.Call)
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				noteClose(call)
			}
			return true
		})
	}
}

// closedChan returns the tracked channel variable a call closes, for the
// builtin close only.
func (ctx *cdCtx) closedChan(call *ast.CallExpr) *types.Var {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "close" || len(call.Args) != 1 {
		return nil
	}
	if _, isBuiltin := ctx.pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return nil
	}
	return ctx.tracked(call.Args[0])
}

// applyCall handles the builtin close and in-package callees with a proven
// Closes fact. Other calls cannot invalidate a definite state: a callee
// receives a copy of the channel value and can close the channel (Open
// becomes a miss, never a false report) but can never reopen it or change
// the variable.
func (ctx *cdCtx) applyCall(call *ast.CallExpr, s cdState, report func(token.Pos, string, ...any)) {
	if v := ctx.closedChan(call); v != nil {
		switch s.st[v] {
		case cdClosed:
			if report != nil {
				report(call.Pos(), "close of %s which is already closed on every path to here (panics)", v.Name())
			}
		case cdNil:
			if report != nil {
				report(call.Pos(), "close of nil channel %s (panics)", v.Name())
			}
		}
		s.st[v] = cdClosed
		return
	}
	sum := ctx.pass.Sums.ForCall(call)
	if sum == nil {
		return
	}
	for i, arg := range call.Args {
		v := ctx.tracked(arg)
		if v == nil {
			continue
		}
		if sum.Closes[summary.Ref{Param: i}] {
			if s.st[v] == cdClosed && report != nil {
				report(call.Pos(), "%s closes %s which is already closed on every path to here (panics)", calleeLabel(call), v.Name())
			}
			s.st[v] = cdClosed
		}
	}
}

// applyAssign transitions the states of assigned channel variables.
func (ctx *cdCtx) applyAssign(asg *ast.AssignStmt, s cdState) {
	if len(asg.Lhs) != len(asg.Rhs) {
		// Multi-value form (v, ok := <-ch, or a call): results unknowable.
		for _, lhs := range asg.Lhs {
			if v := chanIdentVar(ctx.pass, lhs); v != nil {
				delete(s.st, v)
			}
		}
		return
	}
	for i, lhs := range asg.Lhs {
		v := chanIdentVar(ctx.pass, lhs)
		if v == nil || ctx.untracked[v] {
			continue
		}
		if st, ok := ctx.classify(asg.Rhs[i], s); ok {
			s.st[v] = st
		} else {
			delete(s.st, v)
		}
	}
}

func (ctx *cdCtx) applyDecl(decl *ast.DeclStmt, s cdState) {
	gen, ok := decl.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gen.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			v, ok := ctx.pass.Info.Defs[name].(*types.Var)
			if !ok || ctx.untracked[v] || !isChanType(v.Type()) {
				continue
			}
			if len(vs.Values) == 0 {
				s.st[v] = cdNil // var ch chan T: the zero value is nil
				continue
			}
			if i < len(vs.Values) {
				if st, ok := ctx.classify(vs.Values[i], s); ok {
					s.st[v] = st
				}
			}
		}
	}
}

// classify derives the definite state a right-hand side produces.
func (ctx *cdCtx) classify(rhs ast.Expr, s cdState) (cdSt, bool) {
	switch e := unparen(rhs).(type) {
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" {
			if _, isBuiltin := ctx.pass.Info.Uses[id].(*types.Builtin); isBuiltin {
				return cdOpen, true
			}
		}
	case *ast.Ident:
		if _, isNil := ctx.pass.Info.Uses[e].(*types.Nil); isNil {
			return cdNil, true
		}
		// Copy of another tracked channel: aliases share close-state, and a
		// copied definite state stays definite (it can only go stale in the
		// safe direction — see applyCall).
		if v := ctx.tracked(e); v != nil {
			if st, ok := s.st[v]; ok {
				return st, true
			}
		}
	}
	return 0, false
}

// tracked resolves e to a trackable channel variable.
func (ctx *cdCtx) tracked(e ast.Expr) *types.Var {
	v := chanIdentVar(ctx.pass, e)
	if v == nil || ctx.untracked[v] {
		return nil
	}
	return v
}

// chanIdentVar returns the channel-typed local/param variable e names.
func chanIdentVar(p *Pass, e ast.Expr) *types.Var {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := p.Info.Uses[id].(*types.Var)
	if !ok {
		if v, ok = p.Info.Defs[id].(*types.Var); !ok {
			return nil
		}
	}
	if v.IsField() || !isChanType(v.Type()) {
		return nil
	}
	return v
}

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// calleeLabel renders a call's function expression for diagnostics.
func calleeLabel(call *ast.CallExpr) string {
	return types.ExprString(call.Fun)
}
