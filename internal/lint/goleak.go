package lint

import (
	"go/ast"
	"go/types"
)

// GoLeak reports go statements that spawn a goroutine which can reach a
// state where it spins or blocks forever with no channel operation anywhere
// in that region — a busy loop with no stop signal, or a select{} it can
// never leave. Such a goroutine is unstoppable by construction: it survives
// every shutdown path and leaks for the life of the process, which for the
// ingestion daemons means one leaked collector loop per reconnect.
//
// The check is interprocedural: `go m.loop()` is analyzed through loop's
// summary (including loops buried further down the call chain), and a
// goroutine literal's body is analyzed directly against the same summaries.
// A region that contains any channel receive, send, or range is exempt —
// someone can signal it — as is a region that can only be reached on some
// paths but still has a channel-guarded exit.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "spawned goroutine can spin or block forever with no channel to stop it",
	Run:  runGoLeak,
}

func runGoLeak(p *Pass) {
	if p.Sums == nil {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				if _, noComm := p.Sums.BodyStuck(lit.Body); noComm {
					p.Reportf(g.Pos(), "goroutine can run forever with no channel operation to stop it; add a quit channel or context")
				}
				return true
			}
			if sum := p.Sums.ForCall(g.Call); sum != nil && sum.StuckNoComm {
				p.Reportf(g.Pos(), "goroutine %s can run forever with no channel operation to stop it; add a quit channel or context", types.ExprString(g.Call.Fun))
			}
			return true
		})
	}
}
