package lint

import (
	"go/ast"
	"strings"
	"testing"
)

// TestMutationKill proves the concurrency analyzers guard real code, not
// just fixtures: each case applies one small mutation to the heartbeat
// layer's AST — the kind of edit a careless refactor makes — and asserts
// vqlint fails on the mutated package with the expected rule. The package is
// reloaded per case because mutations are destructive; type information
// survives node removal and duplication since it is keyed by node identity.
func TestMutationKill(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks internal/heartbeat repeatedly")
	}
	cases := []struct {
		name string
		rule string
		// mutate edits the package in place and reports whether it found
		// its target — a false return means the real code changed shape and
		// the test must be updated, not silently skipped.
		mutate  func(pkg *Package) bool
		wantMsg string
	}{
		{
			name:    "delete wg.Done in Spool.run",
			rule:    "wgbalance",
			mutate:  func(pkg *Package) bool { return deleteStmt(pkg, "Spool", "run", isWgDoneDefer) },
			wantMsg: "counter is still positive",
		},
		{
			name:    "duplicate close(done) in Collector.CloseGrace's waiter",
			rule:    "chandiscipline",
			mutate:  duplicateWaiterClose,
			wantMsg: "already closed on every path",
		},
		{
			name:    "delete the exits of Collector.acceptLoop",
			rule:    "goleak",
			mutate:  func(pkg *Package) bool { return deleteStmt(pkg, "Collector", "acceptLoop", isReturn) },
			wantMsg: "can run forever with no channel operation",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pkgs, err := Load("../..", []string{"./internal/heartbeat"})
			if err != nil {
				t.Fatalf("loading internal/heartbeat: %v", err)
			}
			if len(pkgs) != 1 {
				t.Fatalf("loaded %d packages, want 1", len(pkgs))
			}
			pkg := pkgs[0]
			if !tc.mutate(pkg) {
				t.Fatal("mutation target not found; the heartbeat layer changed shape — update this test")
			}
			diags := Run(pkgs, All())
			for _, d := range diags {
				if d.Rule == tc.rule && strings.Contains(d.Msg, tc.wantMsg) {
					return
				}
			}
			t.Errorf("mutation survived: no %s diagnostic matching %q; got:\n%s",
				tc.rule, tc.wantMsg, formatDiags(diags))
		})
	}
}

// TestHeartbeatCleanBeforeMutation is the control: the unmutated package
// must be finding-free, so every TestMutationKill hit is caused by its
// mutation alone.
func TestHeartbeatCleanBeforeMutation(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks internal/heartbeat")
	}
	pkgs, err := Load("../..", []string{"./internal/heartbeat"})
	if err != nil {
		t.Fatalf("loading internal/heartbeat: %v", err)
	}
	if diags := Run(pkgs, All()); len(diags) != 0 {
		t.Errorf("unmutated heartbeat layer has findings:\n%s", formatDiags(diags))
	}
}

func isWgDoneDefer(s ast.Stmt) bool {
	d, ok := s.(*ast.DeferStmt)
	if !ok {
		return false
	}
	sel, ok := d.Call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Done"
}

func isReturn(s ast.Stmt) bool {
	_, ok := s.(*ast.ReturnStmt)
	return ok
}

// deleteStmt removes every statement matching pred (at any nesting depth)
// from the named method's body.
func deleteStmt(pkg *Package, recvName, funcName string, pred func(ast.Stmt) bool) bool {
	fn := findMethod(pkg, recvName, funcName)
	if fn == nil {
		return false
	}
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		kept := block.List[:0]
		for _, s := range block.List {
			if pred(s) {
				found = true
				continue
			}
			kept = append(kept, s)
		}
		block.List = kept
		return true
	})
	return found
}

// duplicateWaiterClose doubles the close(done) statement inside the waiter
// goroutine literal of Collector.CloseGrace. Reusing the original node keeps
// its type information valid, and the second occurrence runs with the
// channel already definitely closed.
func duplicateWaiterClose(pkg *Package) bool {
	fn := findMethod(pkg, "Collector", "CloseGrace")
	if fn == nil {
		return false
	}
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok || found {
			return !found
		}
		for i, s := range lit.Body.List {
			es, ok := s.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "close" {
				continue
			}
			lit.Body.List = append(lit.Body.List[:i+1], append([]ast.Stmt{es}, lit.Body.List[i+1:]...)...)
			found = true
			return false
		}
		return true
	})
	return found
}

// findMethod locates recvName's method by name (several heartbeat types
// have a Close, so the receiver matters).
func findMethod(pkg *Package, recvName, name string) *ast.FuncDecl {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != name || fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			t := fd.Recv.List[0].Type
			if star, ok := t.(*ast.StarExpr); ok {
				t = star.X
			}
			if id, ok := t.(*ast.Ident); ok && id.Name == recvName {
				return fd
			}
		}
	}
	return nil
}
