package lint

import (
	"go/ast"
	"go/types"
	"strings"
	"testing"
)

// TestMutationKill proves the concurrency analyzers guard real code, not
// just fixtures: each case applies one small mutation to the heartbeat
// layer's AST — the kind of edit a careless refactor makes — and asserts
// vqlint fails on the mutated package with the expected rule. The package is
// reloaded per case because mutations are destructive; type information
// survives node removal and duplication since it is keyed by node identity.
func TestMutationKill(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks internal/heartbeat repeatedly")
	}
	cases := []struct {
		name string
		rule string
		// mutate edits the package in place and reports whether it found
		// its target — a false return means the real code changed shape and
		// the test must be updated, not silently skipped.
		mutate  func(pkg *Package) bool
		wantMsg string
	}{
		{
			name:    "delete wg.Done in Spool.run",
			rule:    "wgbalance",
			mutate:  func(pkg *Package) bool { return deleteStmt(pkg, "Spool", "run", isWgDoneDefer) },
			wantMsg: "counter is still positive",
		},
		{
			name:    "duplicate close(done) in Collector.CloseGrace's waiter",
			rule:    "chandiscipline",
			mutate:  duplicateWaiterClose,
			wantMsg: "already closed on every path",
		},
		{
			name:    "delete the exits of Collector.acceptLoop",
			rule:    "goleak",
			mutate:  func(pkg *Package) bool { return deleteStmt(pkg, "Collector", "acceptLoop", isReturn) },
			wantMsg: "can run forever with no channel operation",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pkgs, err := Load("../..", []string{"./internal/heartbeat"})
			if err != nil {
				t.Fatalf("loading internal/heartbeat: %v", err)
			}
			if len(pkgs) != 1 {
				t.Fatalf("loaded %d packages, want 1", len(pkgs))
			}
			pkg := pkgs[0]
			if !tc.mutate(pkg) {
				t.Fatal("mutation target not found; the heartbeat layer changed shape — update this test")
			}
			diags := Run(pkgs, All())
			for _, d := range diags {
				if d.Rule == tc.rule && strings.Contains(d.Msg, tc.wantMsg) {
					return
				}
			}
			t.Errorf("mutation survived: no %s diagnostic matching %q; got:\n%s",
				tc.rule, tc.wantMsg, formatDiags(diags))
		})
	}
}

// TestHeartbeatCleanBeforeMutation is the control: the unmutated package
// must be finding-free, so every TestMutationKill hit is caused by its
// mutation alone.
func TestHeartbeatCleanBeforeMutation(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks internal/heartbeat")
	}
	pkgs, err := Load("../..", []string{"./internal/heartbeat"})
	if err != nil {
		t.Fatalf("loading internal/heartbeat: %v", err)
	}
	if diags := Run(pkgs, All()); len(diags) != 0 {
		t.Errorf("unmutated heartbeat layer has findings:\n%s", formatDiags(diags))
	}
}

// TestDeterminismMutationKill proves the determinism analyzers guard the
// exact-attribution contract on the real merge path: removing either
// canonical-order sort, reordering the parallel merge against its Release,
// or letting a wall-clock read into the cone must each fail vqlint.
func TestDeterminismMutationKill(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks cone packages repeatedly")
	}
	cases := []struct {
		name    string
		pattern string
		rule    string
		mutate  func(pkg *Package) bool
		wantMsg string
	}{
		{
			name:    "delete the node-order sort in Aggregator.sealLocked",
			pattern: "./internal/ingest",
			rule:    "detorder",
			mutate: func(pkg *Package) bool {
				return deleteStmt(pkg, "Aggregator", "sealLocked", isSortSliceOf("nodeIDs"))
			},
			wantMsg: "nodeIDs accumulates map keys in map order",
		},
		{
			name:    "delete the ProblemKeys sort in core summarize",
			pattern: "./internal/core",
			rule:    "detorder",
			mutate: func(pkg *Package) bool {
				fn := findFunc(pkg, "summarize")
				return fn != nil && deleteStmtIn(fn, isSortSliceOf("ms.ProblemKeys"))
			},
			wantMsg: "ms.ProblemKeys accumulates map keys in map order",
		},
		{
			name:    "swap Merge and Release in NewTableParallel's tree merge",
			pattern: "./internal/cluster",
			rule:    "poollifetime",
			mutate:  swapMergeRelease,
			wantMsg: "use of shards[src] after its release",
		},
		{
			name:    "insert a time.Now read into core summarize",
			pattern: "./internal/core",
			rule:    "wallclock",
			mutate: func(pkg *Package) bool {
				fn := findFunc(pkg, "summarize")
				return fn != nil && insertTimeNow(fn)
			},
			wantMsg: "call to time.Now in the deterministic analysis cone",
		},
		{
			// The sliding-window engine's clock must come from heartbeat
			// timestamps, never the wall: a time.Now smuggled into the
			// advance path is exactly the edit that would silently break
			// batch/streaming byte-identity.
			name:    "insert a time.Now read into window Engine.Advance",
			pattern: "./internal/window",
			rule:    "wallclock",
			mutate: func(pkg *Package) bool {
				fn := findMethod(pkg, "Engine", "Advance")
				return fn != nil && insertTimeNow(fn)
			},
			wantMsg: "call to time.Now in the deterministic analysis cone",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pkgs, err := Load("../..", []string{tc.pattern})
			if err != nil {
				t.Fatalf("loading %s: %v", tc.pattern, err)
			}
			if len(pkgs) != 1 {
				t.Fatalf("loaded %d packages, want 1", len(pkgs))
			}
			if !tc.mutate(pkgs[0]) {
				t.Fatal("mutation target not found; the code changed shape — update this test")
			}
			diags := Run(pkgs, All())
			for _, d := range diags {
				if d.Rule == tc.rule && strings.Contains(d.Msg, tc.wantMsg) {
					return
				}
			}
			t.Errorf("mutation survived: no %s diagnostic matching %q; got:\n%s",
				tc.rule, tc.wantMsg, formatDiags(diags))
		})
	}
}

// TestConeCleanBeforeMutation is the control for the determinism mutations:
// each target package must be finding-free unmutated, so every
// TestDeterminismMutationKill hit is caused by its mutation alone.
func TestConeCleanBeforeMutation(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks four cone packages")
	}
	for _, pattern := range []string{"./internal/ingest", "./internal/core", "./internal/cluster", "./internal/window"} {
		pkgs, err := Load("../..", []string{pattern})
		if err != nil {
			t.Fatalf("loading %s: %v", pattern, err)
		}
		if diags := Run(pkgs, All()); len(diags) != 0 {
			t.Errorf("unmutated %s has findings:\n%s", pattern, formatDiags(diags))
		}
	}
}

// isSortSliceOf matches `sort.Slice(<target>, …)` statements by the
// rendering of the first argument.
func isSortSliceOf(target string) func(ast.Stmt) bool {
	return func(s ast.Stmt) bool {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return false
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Slice" {
			return false
		}
		if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "sort" {
			return false
		}
		return types.ExprString(call.Args[0]) == target
	}
}

// swapMergeRelease reorders the pairwise tree-merge closure in
// NewTableParallel to release the source shard before merging it — the
// use-after-release a careless "free early" refactor introduces. Moving the
// original nodes keeps their type information valid.
func swapMergeRelease(pkg *Package) bool {
	fn := findFunc(pkg, "NewTableParallel")
	if fn == nil {
		return false
	}
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok || found {
			return !found
		}
		list := lit.Body.List
		for i := 0; i+1 < len(list); i++ {
			if isMethodCallStmt(list[i], "Merge") && isMethodCallStmt(list[i+1], "Release") {
				list[i], list[i+1] = list[i+1], list[i]
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isMethodCallStmt(s ast.Stmt, name string) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == name
}

// insertTimeNow prepends a synthesized `time.Now()` statement to fn's body.
// The new identifiers resolve to nothing in the type info — exactly the
// state the wallclock analyzer's syntactic fallback exists for.
func insertTimeNow(fn *ast.FuncDecl) bool {
	if fn.Body == nil || len(fn.Body.List) == 0 {
		return false
	}
	pos := fn.Body.List[0].Pos()
	timeID := ast.NewIdent("time")
	timeID.NamePos = pos
	nowID := ast.NewIdent("Now")
	nowID.NamePos = pos
	stmt := &ast.ExprStmt{X: &ast.CallExpr{
		Fun:    &ast.SelectorExpr{X: timeID, Sel: nowID},
		Lparen: pos,
		Rparen: pos,
	}}
	fn.Body.List = append([]ast.Stmt{stmt}, fn.Body.List...)
	return true
}

// findFunc locates a plain (non-method) function declaration by name.
func findFunc(pkg *Package, name string) *ast.FuncDecl {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Recv == nil && fd.Name.Name == name && fd.Body != nil {
				return fd
			}
		}
	}
	return nil
}

func isWgDoneDefer(s ast.Stmt) bool {
	d, ok := s.(*ast.DeferStmt)
	if !ok {
		return false
	}
	sel, ok := d.Call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Done"
}

func isReturn(s ast.Stmt) bool {
	_, ok := s.(*ast.ReturnStmt)
	return ok
}

// deleteStmt removes every statement matching pred (at any nesting depth)
// from the named method's body.
func deleteStmt(pkg *Package, recvName, funcName string, pred func(ast.Stmt) bool) bool {
	fn := findMethod(pkg, recvName, funcName)
	if fn == nil {
		return false
	}
	return deleteStmtIn(fn, pred)
}

// deleteStmtIn removes every statement matching pred from fn's body.
func deleteStmtIn(fn *ast.FuncDecl, pred func(ast.Stmt) bool) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		kept := block.List[:0]
		for _, s := range block.List {
			if pred(s) {
				found = true
				continue
			}
			kept = append(kept, s)
		}
		block.List = kept
		return true
	})
	return found
}

// duplicateWaiterClose doubles the close(done) statement inside the waiter
// goroutine literal of Collector.CloseGrace. Reusing the original node keeps
// its type information valid, and the second occurrence runs with the
// channel already definitely closed.
func duplicateWaiterClose(pkg *Package) bool {
	fn := findMethod(pkg, "Collector", "CloseGrace")
	if fn == nil {
		return false
	}
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok || found {
			return !found
		}
		for i, s := range lit.Body.List {
			es, ok := s.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "close" {
				continue
			}
			lit.Body.List = append(lit.Body.List[:i+1], append([]ast.Stmt{es}, lit.Body.List[i+1:]...)...)
			found = true
			return false
		}
		return true
	})
	return found
}

// findMethod locates recvName's method by name (several heartbeat types
// have a Close, so the receiver matters).
func findMethod(pkg *Package, recvName, name string) *ast.FuncDecl {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != name || fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			t := fd.Recv.List[0].Type
			if star, ok := t.(*ast.StarExpr); ok {
				t = star.X
			}
			if id, ok := t.(*ast.Ident); ok && id.Name == recvName {
				return fd
			}
		}
	}
	return nil
}
