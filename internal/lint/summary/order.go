package summary

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/callgraph"
)

// SortFuncNames are the sort/slices package functions that establish an
// order on their first argument. The canonical set lives here because both
// the kSort effect computation and the detorder analyzer key on it.
var SortFuncNames = map[string]bool{
	"Sort": true, "SortFunc": true, "SortStableFunc": true,
	"Slice": true, "SliceStable": true, "Stable": true,
	"Strings": true, "Ints": true, "Float64s": true,
}

// sortTarget matches sort.X(arg, ...) / slices.X(arg, ...) ordering calls
// whose first argument resolves to a param-derived ref — the site that sets
// the kSort effect. A single-argument conversion around the slice
// (sort.Sort(byLen(keys))) is looked through.
func (fc *funcCtx) sortTarget(call *ast.CallExpr) (Ref, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return Ref{}, false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return Ref{}, false
	}
	pn, ok := fc.info.Uses[id].(*types.PkgName)
	if !ok {
		return Ref{}, false
	}
	if p := pn.Imported().Path(); p != "sort" && p != "slices" {
		return Ref{}, false
	}
	if !SortFuncNames[sel.Sel.Name] {
		return Ref{}, false
	}
	arg := unparen(call.Args[0])
	if conv, ok := arg.(*ast.CallExpr); ok && len(conv.Args) == 1 {
		if tv, isConv := fc.info.Types[conv.Fun]; isConv && tv.IsType() {
			arg = conv.Args[0]
		}
	}
	return fc.refOf(arg)
}

// printFamily is the fmt output functions that emit in call order.
var printFamily = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// IsEmissionCall reports whether call emits order-sensitive output: the fmt
// print family, or a Write*/AddRow/AddPoint method call (io writers, hash
// and digest updates, the repo's report builders). Shared with detorder.
func IsEmissionCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := info.Uses[id].(*types.PkgName); ok {
			return pn.Imported().Path() == "fmt" && printFamily[sel.Sel.Name]
		}
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "AddRow", "AddPoint":
		// Methods only — a package-level function of the same name is not an
		// output sink.
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			return true
		}
	}
	return false
}

// computeOrderFacts fills OrderSensitive: the function emits order-sensitive
// output of its own, accumulates floats into state that outlives the call,
// or synchronously calls an in-package function that does. Sites inside
// stored literals do not count (the caller's loop does not run them), and
// spawned callees emit asynchronously — their output order is not the
// caller's call order — matching the conventions of computeMayFacts.
func (set *Set) computeOrderFacts(fc *funcCtx, sum *Summary) {
	walkBodyStmts(fc.node.Decl.Body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			if IsEmissionCall(fc.info, n) {
				sum.OrderSensitive = true
			}
		case *ast.AssignStmt:
			if (n.Tok == token.ADD_ASSIGN || n.Tok == token.SUB_ASSIGN) &&
				len(n.Lhs) == 1 && isFloatType(fc.info.TypeOf(n.Lhs[0])) &&
				fc.persistentRoot(n.Lhs[0]) {
				sum.OrderSensitive = true
			}
		}
	})
	if sum.OrderSensitive {
		return
	}
	for _, site := range fc.node.Sites {
		if site.InLiteral || site.Mode == callgraph.Go {
			continue
		}
		if cs, _ := fc.calleeSummary(site.Callee); cs != nil && cs.OrderSensitive {
			sum.OrderSensitive = true
			return
		}
	}
}

func isFloatType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// persistentRoot reports whether the lvalue's base names state that outlives
// the call: a parameter or receiver, a package-level variable (this package
// or, via a qualified selector, another one). Accumulating into a plain
// local stays invisible to callers — the local's order sensitivity is the
// function's own business.
func (fc *funcCtx) persistentRoot(e ast.Expr) bool {
	for {
		switch x := unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			if _, isPkg := fc.info.Uses[x].(*types.PkgName); isPkg {
				return true
			}
			v, ok := fc.info.Uses[x].(*types.Var)
			if !ok {
				return false
			}
			if _, isParam := fc.params[v]; isParam {
				return true
			}
			return v.Parent() != nil && v.Parent().Parent() == types.Universe
		default:
			return false
		}
	}
}
