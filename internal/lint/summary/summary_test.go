package summary

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"repro/internal/lint/callgraph"
)

// compute type-checks src and returns the summary set plus a name lookup.
func compute(t *testing.T, src string) (*Set, func(string) *Summary) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("fix", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	g := callgraph.Build([]*ast.File{f}, info)
	set := Compute(g, info)
	byName := func(name string) *Summary {
		for _, n := range g.Funcs() {
			if n.Decl.Name.Name == name {
				if s := set.Of(n.Obj); s != nil {
					return s
				}
				t.Fatalf("no summary for %s", name)
			}
		}
		t.Fatalf("no function named %s", name)
		return nil
	}
	return set, byName
}

const poolSrc = `package fix
type Res struct{}
func (r *Res) Release() {}
`

func TestReleasesDirectAndViaHelper(t *testing.T) {
	_, sum := compute(t, poolSrc+`
func direct(r *Res) { r.Release() }
func viaHelper(r *Res) { direct(r) }
func viaDefer(r *Res) { defer r.Release() }
func conditional(r *Res, c bool) {
	if c {
		r.Release()
	}
}
`)
	for _, name := range []string{"direct", "viaHelper", "viaDefer"} {
		if !sum(name).Releases[Ref{Param: 0}] {
			t.Errorf("%s: missing Releases fact for param 0", name)
		}
	}
	if sum("conditional").Releases[Ref{Param: 0}] {
		t.Error("conditional release must not produce a must-fact")
	}
}

func TestMutualRecursionFixpoint(t *testing.T) {
	// relA/relB release on the base case and recurse otherwise: the
	// optimistic descent must keep the fact. badA/badB have a non-releasing
	// path, so the fixpoint must drop it.
	_, sum := compute(t, poolSrc+`
func relA(r *Res, c bool) {
	if c {
		r.Release()
		return
	}
	relB(r, c)
}
func relB(r *Res, c bool) { relA(r, true) }
func badA(r *Res, c bool) {
	if c {
		return
	}
	badB(r)
}
func badB(r *Res) { badA(r, false) }
`)
	if !sum("relA").Releases[Ref{Param: 0}] || !sum("relB").Releases[Ref{Param: 0}] {
		t.Error("release through mutual recursion lost by the fixpoint")
	}
	if sum("badA").Releases[Ref{Param: 0}] || sum("badB").Releases[Ref{Param: 0}] {
		t.Error("non-releasing recursion gained a false Releases fact")
	}
}

func TestInterfaceCallDegradesToUnknown(t *testing.T) {
	// Handing the value to an interface method that "looks like" a releaser
	// must not produce a fact: the dispatch is dynamic.
	_, sum := compute(t, poolSrc+`
type Releaser interface{ ReleaseAll(r *Res) }
func throughIface(r *Res, rel Releaser) {
	rel.ReleaseAll(r)
}
func throughFuncValue(r *Res, f func(*Res)) {
	f(r)
}
`)
	if len(sum("throughIface").Releases) != 0 {
		t.Error("interface call produced a false Releases fact")
	}
	if len(sum("throughFuncValue").Releases) != 0 {
		t.Error("func-value call produced a false Releases fact")
	}
}

func TestMutexDeltaHelpers(t *testing.T) {
	_, sum := compute(t, `package fix
import "sync"
type store struct {
	mu sync.RWMutex
	n  int
}
func lockIt(s *store) { s.mu.Lock() }
func unlockIt(s *store) { s.mu.Unlock() }
func (s *store) unlockMe() { s.mu.Unlock() }
func balanced(s *store) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}
func viaHelpers(s *store) {
	lockIt(s)
	s.n++
	unlockIt(s)
}
func conditionalLock(s *store, c bool) {
	if c {
		s.mu.Lock()
	}
}
func readSide(s *store) { s.mu.RLock() }
`)
	wKey := MutexRef{Ref: Ref{Param: 0, Path: ".mu"}}
	if d := sum("lockIt").MutexDelta[wKey]; d != 1 {
		t.Errorf("lockIt delta = %d, want 1", d)
	}
	if d := sum("unlockIt").MutexDelta[wKey]; d != -1 {
		t.Errorf("unlockIt delta = %d, want -1", d)
	}
	recvKey := MutexRef{Ref: Ref{Param: Recv, Path: ".mu"}}
	if d := sum("unlockMe").MutexDelta[recvKey]; d != -1 {
		t.Errorf("unlockMe receiver delta = %d, want -1", d)
	}
	if d, ok := sum("balanced").MutexDelta[wKey]; ok && d != 0 {
		t.Errorf("balanced delta = %d, want 0/absent", d)
	}
	if d, ok := sum("viaHelpers").MutexDelta[wKey]; ok && d != 0 {
		t.Errorf("viaHelpers delta = %d, want 0/absent (helper deltas must compose)", d)
	}
	if _, ok := sum("conditionalLock").MutexDelta[wKey]; ok {
		t.Error("conditional lock must not produce an exact delta")
	}
	rKey := MutexRef{Ref: Ref{Param: 0, Path: ".mu"}, Read: true}
	if d := sum("readSide").MutexDelta[rKey]; d != 1 {
		t.Errorf("readSide RLock delta = %d, want 1", d)
	}
}

func TestClosesAndWaitGroup(t *testing.T) {
	_, sum := compute(t, `package fix
import "sync"
type C struct {
	wg sync.WaitGroup
	ch chan int
}
func closeIt(ch chan int) { close(ch) }
func closeDeferred(ch chan int) { defer close(ch) }
func closeField(c *C) { close(c.ch) }
func closeMaybe(ch chan int, c bool) {
	if c {
		close(ch)
	}
}
func (c *C) track() { c.wg.Add(1) }
func (c *C) done() { defer c.wg.Done() }
func (c *C) spawnBalanced() {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
	}()
}
func addVar(wg *sync.WaitGroup, n int) { wg.Add(n) }
`)
	if !sum("closeIt").Closes[Ref{Param: 0}] || !sum("closeDeferred").Closes[Ref{Param: 0}] {
		t.Error("close fact missing for direct/deferred close")
	}
	if !sum("closeField").Closes[Ref{Param: 0, Path: ".ch"}] {
		t.Error("close fact missing for field channel")
	}
	if len(sum("closeMaybe").Closes) != 0 {
		t.Error("conditional close must not be a must-fact")
	}
	wgRecv := Ref{Param: Recv, Path: ".wg"}
	if d := sum("track").WgDelta[wgRecv]; d != 1 {
		t.Errorf("track WgDelta = %d, want 1", d)
	}
	if d := sum("done").WgDelta[wgRecv]; d != -1 {
		t.Errorf("done WgDelta = %d, want -1", d)
	}
	if d, ok := sum("spawnBalanced").WgDelta[wgRecv]; ok && d != 0 {
		t.Errorf("spawnBalanced WgDelta = %d, want 0/absent (goroutine Done credits)", d)
	}
	if _, ok := sum("addVar").WgDelta[Ref{Param: 0}]; ok {
		t.Error("variable Add count must poison the delta, not record one")
	}
}

func TestErrorClassification(t *testing.T) {
	_, sum := compute(t, `package fix
import (
	"errors"
	"fmt"
)
func alwaysNil() error { return nil }
func neverNil() error { return errors.New("boom") }
func neverNilF(n int) error { return fmt.Errorf("bad %d", n) }
func passThrough() error { return alwaysNil() }
func mixed(c bool) error {
	if c {
		return errors.New("x")
	}
	return nil
}
func opaque(f func() error) error { return f() }
`)
	if sum("alwaysNil").Error != ErrAlwaysNil || sum("passThrough").Error != ErrAlwaysNil {
		t.Error("always-nil classification failed")
	}
	if sum("neverNil").Error != ErrNeverNil || sum("neverNilF").Error != ErrNeverNil {
		t.Error("never-nil classification failed")
	}
	if sum("mixed").Error != ErrUnknown || sum("opaque").Error != ErrUnknown {
		t.Error("unclassifiable results must stay unknown")
	}
}

func TestTerminationFacts(t *testing.T) {
	_, sum := compute(t, `package fix
func spin() {
	for {
	}
}
func wrapper() { spin() }
func eventLoop(ch chan int, out chan int) {
	for {
		v := <-ch
		out <- v
	}
}
func drain(ch chan int) {
	for range ch {
	}
}
func blockForever() {
	select {}
}
`)
	for _, name := range []string{"spin", "wrapper", "blockForever"} {
		s := sum(name)
		if !s.NeverTerminates || !s.StuckNoComm {
			t.Errorf("%s: NeverTerminates=%v StuckNoComm=%v, want true/true", name, s.NeverTerminates, s.StuckNoComm)
		}
	}
	el := sum("eventLoop")
	if !el.NeverTerminates {
		t.Error("eventLoop: channel loop without return still never terminates")
	}
	if el.StuckNoComm {
		t.Error("eventLoop: a loop with channel ops is externally signallable")
	}
	d := sum("drain")
	if d.NeverTerminates || d.StuckNoComm {
		t.Error("drain: range over channel terminates on close")
	}
}

func TestSpawnsAndMayBlock(t *testing.T) {
	_, sum := compute(t, `package fix
import "sync"
func worker(ch chan int) {
	for range ch {
	}
}
func spawner(ch chan int) {
	go worker(ch)
}
func indirectSpawner(ch chan int) { spawner(ch) }
func sender(ch chan int, v int) { ch <- v }
func waiter(wg *sync.WaitGroup) { wg.Wait() }
func nonBlocking(ch chan int) int {
	select {
	case v := <-ch:
		return v
	default:
		return 0
	}
}
func pure(a, b int) int { return a + b }
`)
	if !sum("spawner").Spawns || !sum("indirectSpawner").Spawns {
		t.Error("Spawns must propagate through synchronous callees")
	}
	if !sum("sender").MayBlock || !sum("waiter").MayBlock {
		t.Error("send/Wait must set MayBlock")
	}
	s := sum("nonBlocking")
	if s.MayBlock {
		t.Error("select with default is non-blocking")
	}
	p := sum("pure")
	if p.Spawns || p.MayBlock || len(p.Releases)+len(p.Closes)+len(p.MutexDelta)+len(p.WgDelta) != 0 {
		t.Error("pure function must have an empty summary")
	}
}

func TestUnknownCalleePoisonsPassedSync(t *testing.T) {
	// Locking, then handing the lock's owner to an unknown callee: the
	// delta can no longer be vouched for.
	_, sum := compute(t, `package fix
import "sync"
type store struct{ mu sync.Mutex }
func leaky(s *store, f func(*store)) {
	s.mu.Lock()
	f(s)
}
func harmless(s *store, n int) int {
	s.mu.Lock()
	println(n)
	s.mu.Unlock()
	return n
}
`)
	if _, ok := sum("leaky").MutexDelta[MutexRef{Ref: Ref{Param: 0, Path: ".mu"}}]; ok {
		t.Error("delta survived an unknown callee that received the lock owner")
	}
	if d, ok := sum("harmless").MutexDelta[MutexRef{Ref: Ref{Param: 0, Path: ".mu"}}]; ok && d != 0 {
		t.Errorf("harmless delta = %d, want 0/absent (int arg cannot reach the mutex)", d)
	}
}

func TestReassignedParamDropsFacts(t *testing.T) {
	_, sum := compute(t, poolSrc+`
func reassigned(r *Res) {
	r = &Res{}
	r.Release()
}
`)
	if sum("reassigned").Releases[Ref{Param: 0}] {
		t.Error("release after param reassignment is not a fact about the caller's value")
	}
}
