package summary

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/callgraph"
	"repro/internal/lint/cfg"
)

// computeTermination fills NeverTerminates and StuckNoComm using the CFG's
// stuck-block analysis. A statement call to an in-package function already
// known to never terminate blocks its path exactly like select{} does —
// this is where the fact propagates bottom-up through wrappers.
func (set *Set) computeTermination(fc *funcCtx, g *cfg.Graph, sum *Summary) {
	lookup := func(call *ast.CallExpr) *Summary {
		s, _ := fc.calleeSummary(callgraph.Callee(fc.info, call))
		return s
	}
	sum.NeverTerminates, sum.StuckNoComm = stuckFacts(fc.info, g, lookup)
}

// BodyStuck analyzes an arbitrary function body against the completed
// summary set: whether it provably never terminates, and whether it has a
// non-terminating region containing no channel operation (so nothing
// external can ever signal it). Goroutine literals have no summary of their
// own; this is the goleak analyzer's entry point for them.
func (set *Set) BodyStuck(body *ast.BlockStmt) (neverTerminates, stuckNoComm bool) {
	if set == nil {
		return false, false
	}
	return stuckFacts(set.info, cfg.New(body), set.ForCall)
}

// stuckFacts runs the stuck-region analysis: a block is stuck when every
// continuation loops or blocks forever. lookup resolves a call to its
// callee's summary (nil for unknown) so that calling a never-terminating
// in-package function blocks a path like select{} does.
func stuckFacts(info *types.Info, g *cfg.Graph, lookup func(*ast.CallExpr) *Summary) (neverTerminates, stuckNoComm bool) {
	stuckCall := func(n ast.Node) bool {
		found := false
		walkCFGNode(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if s := lookup(call); s != nil && s.NeverTerminates {
					found = true
				}
			}
			return !found
		})
		return found
	}
	stuck := g.StuckBlocks(stuckCall)
	if len(stuck) == 0 {
		return false, false
	}
	inStuck := make(map[*cfg.Block]bool, len(stuck))
	for _, b := range stuck {
		inStuck[b] = true
	}
	neverTerminates = inStuck[g.Entry]

	// StuckNoComm: the stuck region has no channel operation at all —
	// nothing external can ever signal it. A receive, send, or range over a
	// channel anywhere in the region counts as a potential signal.
	for _, b := range stuck {
		for _, n := range b.Nodes {
			if nodeHasComm(info, n) {
				return neverTerminates, false
			}
		}
	}
	return neverTerminates, true
}

// nodeHasComm reports whether a CFG node performs a channel operation.
func nodeHasComm(info *types.Info, n ast.Node) bool {
	if rng, ok := n.(*ast.RangeStmt); ok {
		if t := info.TypeOf(rng.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				return true
			}
		}
		return false
	}
	found := false
	walkCFGNode(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				found = true
			}
		}
		return !found
	})
	return found
}

// computeError classifies the function's trailing error result across every
// return statement (nested literals excluded: their returns are their own).
// Bare returns with named results bail to unknown.
func (set *Set) computeError(fc *funcCtx, sum *Summary) {
	sig, ok := fc.node.Obj.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	if !isErrorType(last) {
		return
	}
	allNil, allNonNil, classified := true, true, true
	sawReturn := false
	walkBodyStmts(fc.node.Decl.Body, func(n ast.Node) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return
		}
		sawReturn = true
		if len(ret.Results) == 0 {
			classified = false
			return
		}
		switch fc.classifyErrExpr(ret.Results[len(ret.Results)-1]) {
		case ErrAlwaysNil:
			allNonNil = false
		case ErrNeverNil:
			allNil = false
		default:
			classified = false
		}
	})
	if !classified || !sawReturn {
		return
	}
	switch {
	case allNil && !allNonNil:
		sum.Error = ErrAlwaysNil
	case allNonNil && !allNil:
		sum.Error = ErrNeverNil
	}
}

// classifyErrExpr classifies one returned error expression.
func (fc *funcCtx) classifyErrExpr(e ast.Expr) ErrResult {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		if _, isNil := fc.info.Uses[e].(*types.Nil); isNil {
			return ErrAlwaysNil
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if _, isLit := unparen(e.X).(*ast.CompositeLit); isLit {
				return ErrNeverNil // &SomeError{...}
			}
		}
	case *ast.CallExpr:
		if isErrCtor(fc.info, e) {
			return ErrNeverNil
		}
		if sum, _ := fc.calleeSummary(callgraph.Callee(fc.info, e)); sum != nil {
			// Pass-through: `return helper()` inherits the callee's fact
			// when the error is the callee's own trailing result.
			return sum.Error
		}
	}
	return ErrUnknown
}

// isErrCtor matches the standard never-nil constructors errors.New and
// fmt.Errorf.
func isErrCtor(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	path := pn.Imported().Path()
	return (path == "errors" && sel.Sel.Name == "New") ||
		(path == "fmt" && sel.Sel.Name == "Errorf")
}

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// computeMayFacts fills the may-facts: Spawns (a goroutine may start) and
// MayBlock (a channel op or Wait may block the caller). Both union through
// synchronous in-package calls; sites inside stored literals count for
// Spawns (the literal may run) but not for MayBlock (the caller does not
// block when the literal is merely built).
func (set *Set) computeMayFacts(fc *funcCtx, sum *Summary) {
	for _, site := range fc.node.Sites {
		if site.Mode == callgraph.Go {
			sum.Spawns = true
			continue
		}
		calleeSum, _ := fc.calleeSummary(site.Callee)
		if calleeSum == nil {
			continue
		}
		if calleeSum.Spawns {
			sum.Spawns = true
		}
		if calleeSum.MayBlock && !site.InLiteral {
			sum.MayBlock = true
		}
	}
	if sum.MayBlock {
		return
	}
	// Comm statements of a select WITH a default never block — the default
	// fires instead. Collect them so the scan can skip them.
	nonBlockingComm := make(map[ast.Stmt]bool)
	walkBodyStmts(fc.node.Decl.Body, func(n ast.Node) {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return
		}
		hasDefault := false
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return
		}
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
				nonBlockingComm[cc.Comm] = true
			}
		}
	})
	ast.Inspect(fc.node.Decl.Body, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if stmt, ok := m.(ast.Stmt); ok && nonBlockingComm[stmt] {
			// The comm op itself cannot block, but a Wait nested in its
			// operand expression still can — scan just for those.
			ast.Inspect(m, func(inner ast.Node) bool {
				if _, ok := inner.(*ast.FuncLit); ok {
					return false
				}
				if call, ok := inner.(*ast.CallExpr); ok {
					if _, op, _, isWg := fc.wgOp(call); isWg && op == "Wait" {
						sum.MayBlock = true
					}
				}
				return true
			})
			return false
		}
		switch m := m.(type) {
		case *ast.SendStmt:
			sum.MayBlock = true
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				sum.MayBlock = true
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range m.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				sum.MayBlock = true
			}
		case *ast.RangeStmt:
			if t := fc.info.TypeOf(m.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					sum.MayBlock = true
				}
			}
		case *ast.CallExpr:
			if _, op, _, isWg := fc.wgOp(m); isWg && op == "Wait" {
				sum.MayBlock = true
			}
		}
		return true
	})
}

// walkBodyStmts walks a function body skipping nested function literals
// that are not immediately part of the function's own execution: stored
// literals are separate functions. Deferred and spawned literal bodies ARE
// walked — a blocking op in `go func(){...}()` does not block the caller,
// but that distinction is handled by the callers of this helper needing it;
// for Spawns/MayBlock the sites loop above already covers modes, and the
// syntactic scan here deliberately skips ALL literals for that reason.
func walkBodyStmts(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if m != nil {
			fn(m)
		}
		return true
	})
}
