package summary

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"repro/internal/lint/callgraph"
	"repro/internal/lint/cfg"
	"repro/internal/lint/flow"
)

// effKind distinguishes the fact families tracked per ref.
type effKind uint8

const (
	kRelease effKind = iota // pooled value released (bool)
	kClose                  // channel closed (bool)
	kMu                     // mutex write-side delta
	kMuR                    // RWMutex read-side delta
	kWg                     // WaitGroup Add-Done delta
	kSort                   // slice handed to a sort call (bool)
)

// effKey is one tracked fact: a kind on a param-derived ref.
type effKey struct {
	kind effKind
	ref  Ref
}

// deltaCap clamps numeric deltas so loops reach a fixed point.
const deltaCap = 3

func clamp(v int8) int8 {
	if v > deltaCap {
		return deltaCap
	}
	if v < -deltaCap {
		return -deltaCap
	}
	return v
}

// effState is the must-state at a program point. vals holds booleans (1 for
// kRelease/kClose) and clamped deltas; an absent numeric key means delta 0.
// poison marks keys whose value can no longer be trusted on some path;
// paramPoison poisons every key (present and future) based on that param.
type effState struct {
	vals        map[effKey]int8
	poison      map[effKey]bool
	paramPoison map[int]bool
}

func newEffState() effState {
	return effState{
		vals:        make(map[effKey]int8),
		poison:      make(map[effKey]bool),
		paramPoison: make(map[int]bool),
	}
}

func effClone(s effState) effState {
	c := effState{
		vals:        make(map[effKey]int8, len(s.vals)),
		poison:      make(map[effKey]bool, len(s.poison)),
		paramPoison: make(map[int]bool, len(s.paramPoison)),
	}
	for k, v := range s.vals {
		c.vals[k] = v
	}
	for k := range s.poison {
		c.poison[k] = true
	}
	for k := range s.paramPoison {
		c.paramPoison[k] = true
	}
	return c
}

func effEqual(a, b effState) bool {
	if len(a.vals) != len(b.vals) || len(a.poison) != len(b.poison) || len(a.paramPoison) != len(b.paramPoison) {
		return false
	}
	for k, v := range a.vals {
		if bv, ok := b.vals[k]; !ok || bv != v {
			return false
		}
	}
	for k := range a.poison {
		if !b.poison[k] {
			return false
		}
	}
	for k := range a.paramPoison {
		if !b.paramPoison[k] {
			return false
		}
	}
	return true
}

// effJoin merges two path states: booleans intersect (a release must happen
// on both paths), deltas must agree exactly (absent counts as zero) or the
// key is poisoned, and poison unions (it is a may-property).
func effJoin(dst, src effState) effState {
	for k := range src.poison {
		dst.poison[k] = true
	}
	for k := range src.paramPoison {
		dst.paramPoison[k] = true
	}
	for k, dv := range dst.vals {
		sv, inSrc := src.vals[k]
		switch k.kind {
		case kRelease, kClose, kSort:
			if !inSrc {
				delete(dst.vals, k)
			}
		default:
			if sv != dv { // absent in src reads as sv == 0
				delete(dst.vals, k)
				dst.poison[k] = true
			}
		}
	}
	for k, sv := range src.vals {
		if _, inDst := dst.vals[k]; inDst {
			continue
		}
		switch k.kind {
		case kRelease, kClose, kSort:
			// Absent in dst: not established on that path — stays absent.
		default:
			if sv != 0 && !dst.poison[k] {
				// dst reads as zero: the paths disagree.
				dst.poison[k] = true
			}
		}
	}
	for k := range dst.poison {
		delete(dst.vals, k)
	}
	return dst
}

// set records a fact unless the key is poisoned.
func (s effState) set(k effKey, v int8) {
	if s.poison[k] || s.paramPoison[k.ref.Param] {
		return
	}
	s.vals[k] = v
}

func (s effState) add(k effKey, d int8) {
	if s.poison[k] || s.paramPoison[k.ref.Param] {
		return
	}
	nv := clamp(s.vals[k] + d)
	if nv == 0 {
		delete(s.vals, k)
	} else {
		s.vals[k] = nv
	}
}

func (s effState) poisonKey(k effKey) {
	s.poison[k] = true
	delete(s.vals, k)
}

func (s effState) poisonParam(idx int) {
	s.paramPoison[idx] = true
	for k := range s.vals {
		if k.ref.Param == idx {
			delete(s.vals, k)
		}
	}
}

// funcCtx is the resolution context for one summarized function.
type funcCtx struct {
	set  *Set
	info *types.Info
	node *callgraph.Node
	// params maps receiver/parameter objects to their Ref index.
	params map[*types.Var]int
	// invalid marks params that were reassigned or had their address taken:
	// refs through them no longer name the caller's value.
	invalid map[*types.Var]bool
	// inSCC marks the members of the component being fixpointed; a nil
	// summary for one of them is replaced by the optimistic universal
	// summary on the first round.
	inSCC      map[*types.Func]bool
	optimistic bool
}

func newFuncCtx(set *Set, n *callgraph.Node, inSCC map[*types.Func]bool, optimistic bool) *funcCtx {
	fc := &funcCtx{
		set: set, info: set.info, node: n,
		params:  make(map[*types.Var]int),
		invalid: make(map[*types.Var]bool),
		inSCC:   inSCC, optimistic: optimistic,
	}
	addNames := func(fl *ast.FieldList, start int) int {
		if fl == nil {
			return start
		}
		idx := start
		for _, field := range fl.List {
			if len(field.Names) == 0 {
				idx++ // unnamed param still occupies an index
				continue
			}
			for _, name := range field.Names {
				if v, ok := set.info.Defs[name].(*types.Var); ok {
					fc.params[v] = idx
				}
				idx++
			}
		}
		return idx
	}
	if n.Decl.Recv != nil && len(n.Decl.Recv.List) == 1 {
		recv := n.Decl.Recv.List[0]
		if len(recv.Names) == 1 {
			if v, ok := set.info.Defs[recv.Names[0]].(*types.Var); ok {
				fc.params[v] = Recv
			}
		}
	}
	addNames(n.Decl.Type.Params, 0)

	// A param whose identifier is assigned or address-taken stops naming the
	// caller's value; drop it.
	ast.Inspect(n.Decl.Body, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.AssignStmt:
			for _, lhs := range m.Lhs {
				if id, ok := unparen(lhs).(*ast.Ident); ok {
					if v, ok := set.info.Uses[id].(*types.Var); ok {
						if _, isParam := fc.params[v]; isParam {
							fc.invalid[v] = true
						}
					}
				}
			}
		case *ast.UnaryExpr:
			if m.Op == token.AND {
				if id, ok := unparen(m.X).(*ast.Ident); ok {
					if v, ok := set.info.Uses[id].(*types.Var); ok {
						if _, isParam := fc.params[v]; isParam {
							fc.invalid[v] = true
						}
					}
				}
			}
		}
		return true
	})
	return fc
}

// refOf resolves an expression to the parameter-derived value it names:
// a param/receiver identifier, a field chain on one, possibly behind * or &.
func (fc *funcCtx) refOf(e ast.Expr) (Ref, bool) {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		v, ok := fc.info.Uses[e].(*types.Var)
		if !ok || fc.invalid[v] {
			return Ref{}, false
		}
		idx, ok := fc.params[v]
		return Ref{Param: idx}, ok
	case *ast.SelectorExpr:
		sel, ok := fc.info.Selections[e]
		if !ok || sel.Kind() != types.FieldVal {
			return Ref{}, false
		}
		base, ok := fc.refOf(e.X)
		if !ok {
			return Ref{}, false
		}
		return Ref{Param: base.Param, Path: base.Path + "." + e.Sel.Name}, true
	case *ast.StarExpr:
		return fc.refOf(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return fc.refOf(e.X)
		}
	}
	return Ref{}, false
}

// calleeSummary returns the summary to use for an in-package callee during
// this round: the computed one, or — first optimistic round inside a cycle —
// the universal summary marker (nil, true).
func (fc *funcCtx) calleeSummary(fn *types.Func) (sum *Summary, universal bool) {
	if fn == nil {
		return nil, false
	}
	if s := fc.set.sums[fn]; s != nil {
		return s, false
	}
	if fc.optimistic && fc.inSCC[fn] {
		return nil, true
	}
	return nil, false
}

// computeOne derives the summary of one function with the current summary
// map. optimistic selects the universal treatment of unsummarized in-SCC
// callees (first round of a cyclic component).
func (set *Set) computeOne(n *callgraph.Node, inSCC map[*types.Func]bool, optimistic bool) *Summary {
	fc := newFuncCtx(set, n, inSCC, optimistic)
	g := cfg.New(n.Decl.Body)

	prob := flow.Problem[effState]{
		Boundary: newEffState,
		Transfer: func(b *cfg.Block, s effState) effState {
			for _, node := range b.Nodes {
				fc.transferNode(node, s)
			}
			return s
		},
		Join:  effJoin,
		Equal: effEqual,
		Clone: effClone,
	}
	res := flow.Solve(g, prob)

	sum := &Summary{
		Releases:         make(map[Ref]bool),
		Closes:           make(map[Ref]bool),
		MutexDelta:       make(map[MutexRef]int),
		WgDelta:          make(map[Ref]int),
		EstablishesOrder: make(map[Ref]bool),
		poisoned:         make(map[effKey]bool),
		paramPoison:      make(map[int]bool),
	}

	// The fixed-point state entering Exit is the join over every normal
	// return path — exactly the must-summary of the function's effects.
	if exit, ok := res.In[g.Exit]; ok {
		for k, v := range exit.vals {
			switch k.kind {
			case kRelease:
				sum.Releases[k.ref] = true
			case kClose:
				sum.Closes[k.ref] = true
			case kMu:
				sum.MutexDelta[MutexRef{Ref: k.ref}] = int(v)
			case kMuR:
				sum.MutexDelta[MutexRef{Ref: k.ref, Read: true}] = int(v)
			case kWg:
				sum.WgDelta[k.ref] = int(v)
			case kSort:
				sum.EstablishesOrder[k.ref] = true
			}
		}
		for k := range exit.poison {
			sum.poisoned[k] = true
		}
		for idx := range exit.paramPoison {
			sum.paramPoison[idx] = true
		}
	} else {
		// No normal return: effect facts are meaningless to callers.
		sum.NeverTerminates = !reachesAnySink(g)
	}

	set.computeTermination(fc, g, sum)
	set.computeError(fc, sum)
	set.computeMayFacts(fc, sum)
	set.computeOrderFacts(fc, sum)
	return sum
}

// reachesAnySink reports whether some reachable block terminates the
// function at all (normal exit or panic-shaped sink).
func reachesAnySink(g *cfg.Graph) bool {
	for _, b := range g.Reachable() {
		if b == g.Exit {
			return true
		}
		if len(b.Succs) == 0 && !b.Stuck {
			return true
		}
	}
	return false
}

// transferNode applies one CFG node's effects to the state.
func (fc *funcCtx) transferNode(n ast.Node, s effState) {
	switch n := n.(type) {
	case *ast.DeferStmt:
		// Deferred effects run before control returns to the caller, so for
		// exit-state facts they can be credited immediately — the same
		// convention lockbalance uses for `defer mu.Unlock()`.
		fc.applyCall(n.Call, s)
		if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
			fc.applyLitEffects(lit, s)
		}
	case *ast.GoStmt:
		fc.applyGo(n, s)
	default:
		// Walk the node for calls, skipping nested literals (their bodies
		// run elsewhere, if ever) and the opaque parts of range bindings.
		walkCFGNode(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				fc.applyCall(call, s)
			}
			return true
		})
	}
}

// applyGo handles a go statement: asynchronous effects are not must-facts,
// with one deliberate exception — WaitGroup.Done calls the goroutine is
// going to make are credited immediately (the accounting convention shared
// with wgbalance). Mutex refs the goroutine touches are poisoned: an
// asynchronous unlock makes the caller's count meaningless.
func (fc *funcCtx) applyGo(n *ast.GoStmt, s effState) {
	// Arguments are evaluated synchronously at the go statement.
	for _, arg := range n.Call.Args {
		walkCFGNode(arg, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				fc.applyCall(call, s)
			}
			return true
		})
	}
	if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
		walkCFGNode(lit.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if ref, read, op, isMu := fc.mutexOp(call); isMu {
				_ = op
				kind := kMu
				if read {
					kind = kMuR
				}
				s.poisonKey(effKey{kind: kind, ref: ref})
			}
			if ref, op, _, isWg := fc.wgOp(call); isWg && op == "Done" {
				s.add(effKey{kind: kWg, ref: ref}, -1)
			}
			return true
		})
		return
	}
	// go f(x...) / go x.m(): apply the callee's Done credits; poison mutex
	// refs it touches.
	if sum, _ := fc.calleeSummary(callgraph.Callee(fc.info, n.Call)); sum != nil {
		fc.mapCalleeEffects(n.Call, sum, s, true)
	} else {
		fc.poisonUnknownCall(n.Call, s)
	}
}

// applyLitEffects credits the effects inside a directly deferred literal:
// `defer func() { s.mu.Unlock(); close(ch) }()` runs at every exit.
func (fc *funcCtx) applyLitEffects(lit *ast.FuncLit, s effState) {
	walkCFGNode(lit.Body, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			fc.applyCall(call, s)
		}
		return true
	})
}

// applyCall interprets one call expression against the state.
func (fc *funcCtx) applyCall(call *ast.CallExpr, s effState) {
	// Builtin close.
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := fc.info.Uses[id].(*types.Builtin); isBuiltin {
			if id.Name == "close" && len(call.Args) == 1 {
				if ref, ok := fc.refOf(call.Args[0]); ok {
					s.set(effKey{kind: kClose, ref: ref}, 1)
				}
			}
			return
		}
	}
	// Mutex and WaitGroup primitives.
	if ref, read, op, isMu := fc.mutexOp(call); isMu {
		kind := kMu
		if read {
			kind = kMuR
		}
		switch op {
		case "Lock", "RLock":
			s.add(effKey{kind: kind, ref: ref}, 1)
		case "Unlock", "RUnlock":
			s.add(effKey{kind: kind, ref: ref}, -1)
		}
		return
	}
	if ref, op, cnt, isWg := fc.wgOp(call); isWg {
		switch op {
		case "Add":
			if cnt == unknownCount {
				s.poisonKey(effKey{kind: kWg, ref: ref})
			} else {
				s.add(effKey{kind: kWg, ref: ref}, int8(cnt))
			}
		case "Done":
			s.add(effKey{kind: kWg, ref: ref}, -1)
		}
		return
	}
	// sort.X / slices.X establishing order on a param-derived slice.
	if ref, ok := fc.sortTarget(call); ok {
		s.set(effKey{kind: kSort, ref: ref}, 1)
		return
	}
	// Release/Put, mirroring poolrelease's site patterns.
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "Release":
			if len(call.Args) == 0 {
				if ref, ok := fc.refOf(sel.X); ok {
					s.set(effKey{kind: kRelease, ref: ref}, 1)
					return
				}
			}
		case "Put":
			for _, arg := range call.Args {
				if ref, ok := fc.refOf(arg); ok {
					s.set(effKey{kind: kRelease, ref: ref}, 1)
				}
			}
			return
		}
	}
	// Resolved callee: in-package summaries transfer; anything else is the
	// unknown callee and poisons what it could touch.
	callee := callgraph.Callee(fc.info, call)
	if sum, universal := fc.calleeSummary(callee); sum != nil {
		fc.mapCalleeEffects(call, sum, s, false)
	} else if universal {
		fc.applyUniversal(call, s)
	} else {
		fc.poisonUnknownCall(call, s)
	}
}

// mapCalleeEffects translates a callee summary's param-indexed facts into
// the caller's refs at this call site. goCredit restricts the application
// to WaitGroup Done credits and mutex poison (the `go callee()` case).
func (fc *funcCtx) mapCalleeEffects(call *ast.CallExpr, sum *Summary, s effState, goCredit bool) {
	base := func(idx int) (Ref, bool) {
		if idx == Recv {
			if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
				return fc.refOf(sel.X)
			}
			return Ref{}, false
		}
		if idx < 0 || idx >= len(call.Args) {
			return Ref{}, false
		}
		return fc.refOf(call.Args[idx])
	}
	joinRef := func(calleeRef Ref) (Ref, bool) {
		b, ok := base(calleeRef.Param)
		if !ok {
			return Ref{}, false
		}
		return Ref{Param: b.Param, Path: b.Path + calleeRef.Path}, true
	}
	if !goCredit {
		for r := range sum.Releases {
			if cr, ok := joinRef(r); ok {
				s.set(effKey{kind: kRelease, ref: cr}, 1)
			}
		}
		for r := range sum.Closes {
			if cr, ok := joinRef(r); ok {
				s.set(effKey{kind: kClose, ref: cr}, 1)
			}
		}
		for mr, d := range sum.MutexDelta {
			if cr, ok := joinRef(mr.Ref); ok {
				kind := kMu
				if mr.Read {
					kind = kMuR
				}
				s.add(effKey{kind: kind, ref: cr}, int8(d))
			}
		}
		for r := range sum.EstablishesOrder {
			if cr, ok := joinRef(r); ok {
				s.set(effKey{kind: kSort, ref: cr}, 1)
			}
		}
	}
	for r, d := range sum.WgDelta {
		if goCredit && d >= 0 {
			continue // a spawned callee's Adds are its own business
		}
		if cr, ok := joinRef(r); ok {
			s.add(effKey{kind: kWg, ref: cr}, int8(d))
		}
	}
	if goCredit {
		for mr := range sum.MutexDelta {
			if cr, ok := joinRef(mr.Ref); ok {
				kind := kMu
				if mr.Read {
					kind = kMuR
				}
				s.poisonKey(effKey{kind: kind, ref: cr})
			}
		}
	}
	// The callee's own uncertainty transfers: a ref it poisoned is one we
	// can no longer vouch for either.
	for k := range sum.poisoned {
		if cr, ok := joinRef(k.ref); ok {
			s.poisonKey(effKey{kind: k.kind, ref: cr})
		}
	}
	for idx := range sum.paramPoison {
		if cr, ok := base(idx); ok {
			fc.poisonRefKeys(s, cr)
		}
	}
}

// applyUniversal is the optimistic first-round treatment of an in-SCC
// callee: it releases and closes everything handed to it directly, so a
// base-case fact can survive the descent; numeric deltas stay pessimistic
// (poisoned) through cycles.
func (fc *funcCtx) applyUniversal(call *ast.CallExpr, s effState) {
	apply := func(e ast.Expr) {
		if ref, ok := fc.refOf(e); ok {
			s.set(effKey{kind: kRelease, ref: ref}, 1)
			s.set(effKey{kind: kClose, ref: ref}, 1)
			s.set(effKey{kind: kSort, ref: ref}, 1)
			s.poisonKey(effKey{kind: kMu, ref: ref})
			s.poisonKey(effKey{kind: kMuR, ref: ref})
			s.poisonKey(effKey{kind: kWg, ref: ref})
		}
	}
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		apply(sel.X)
	}
	for _, arg := range call.Args {
		apply(arg)
	}
}

// poisonUnknownCall poisons the facts of every param-derived argument (and
// method receiver) through which an unknown or external callee could reach
// a sync primitive or channel.
func (fc *funcCtx) poisonUnknownCall(call *ast.CallExpr, s effState) {
	consider := func(e ast.Expr) {
		ref, ok := fc.refOf(e)
		if !ok {
			return
		}
		if t := fc.info.TypeOf(e); t != nil && !canReachSync(t) {
			return
		}
		fc.poisonRefKeys(s, ref)
	}
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isSel := fc.info.Selections[sel]; isSel {
			consider(sel.X)
		}
	}
	for _, arg := range call.Args {
		consider(arg)
	}
}

// poisonRefKeys poisons every fact kind on ref and on refs extending it
// (handing out `s` compromises `s.mu` too). A bare param ref poisons the
// whole param.
func (fc *funcCtx) poisonRefKeys(s effState, ref Ref) {
	if ref.Path == "" {
		s.poisonParam(ref.Param)
		return
	}
	for _, kind := range []effKind{kRelease, kClose, kMu, kMuR, kWg, kSort} {
		s.poisonKey(effKey{kind: kind, ref: ref})
		for k := range s.vals {
			if k.ref.Param == ref.Param && len(k.ref.Path) > len(ref.Path) &&
				k.ref.Path[:len(ref.Path)] == ref.Path {
				s.poisonKey(k)
			}
		}
	}
}

// unknownCount marks a non-constant WaitGroup.Add argument.
const unknownCount = -1 << 10

// mutexOp matches <ref>.Lock/Unlock/RLock/RUnlock() on sync.Mutex/RWMutex.
func (fc *funcCtx) mutexOp(call *ast.CallExpr) (ref Ref, read bool, op string, ok bool) {
	sel, isSel := unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return Ref{}, false, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return Ref{}, false, "", false
	}
	if !isSyncNamed(fc.info.TypeOf(sel.X), "Mutex", "RWMutex") {
		return Ref{}, false, "", false
	}
	r, resolved := fc.refOf(sel.X)
	if !resolved {
		return Ref{}, false, "", false
	}
	op = sel.Sel.Name
	return r, op == "RLock" || op == "RUnlock", op, true
}

// wgOp matches <ref>.Add(n)/Done()/Wait() on sync.WaitGroup. For Add, cnt
// is the constant argument or unknownCount.
func (fc *funcCtx) wgOp(call *ast.CallExpr) (ref Ref, op string, cnt int, ok bool) {
	sel, isSel := unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return Ref{}, "", 0, false
	}
	switch sel.Sel.Name {
	case "Add", "Done", "Wait":
	default:
		return Ref{}, "", 0, false
	}
	if !isSyncNamed(fc.info.TypeOf(sel.X), "WaitGroup") {
		return Ref{}, "", 0, false
	}
	r, resolved := fc.refOf(sel.X)
	if !resolved {
		return Ref{}, "", 0, false
	}
	op = sel.Sel.Name
	if op == "Add" {
		cnt = unknownCount
		if len(call.Args) == 1 {
			if tv, isConst := fc.info.Types[call.Args[0]]; isConst && tv.Value != nil && tv.Value.Kind() == constant.Int {
				if v, exact := constant.Int64Val(tv.Value); exact && v > -deltaCap && v < deltaCap {
					cnt = int(v)
				}
			}
		}
	}
	return r, op, cnt, true
}

// isSyncNamed reports whether t (possibly behind a pointer) is one of the
// named sync package types.
func isSyncNamed(t types.Type, names ...string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return false
	}
	for _, n := range names {
		if named.Obj().Name() == n {
			return true
		}
	}
	return false
}

// canReachSync reports whether a value of type t could give a callee access
// to a sync primitive or channel (transitively, through pointers and
// containers). Interfaces count: they can hold anything.
func canReachSync(t types.Type) bool {
	return canReachSyncSeen(t, make(map[types.Type]bool))
}

func canReachSyncSeen(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return false
	case *types.Chan, *types.Interface, *types.Signature:
		return true
	case *types.Pointer:
		return canReachSyncSeen(u.Elem(), seen)
	case *types.Slice:
		return canReachSyncSeen(u.Elem(), seen)
	case *types.Array:
		return canReachSyncSeen(u.Elem(), seen)
	case *types.Map:
		return canReachSyncSeen(u.Key(), seen) || canReachSyncSeen(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if canReachSyncSeen(u.Field(i).Type(), seen) {
				return true
			}
		}
		return false
	}
	return true
}

// walkCFGNode walks n the way the CFG assigns nodes to blocks: it does not
// descend into nested function literals, and on a *ast.RangeStmt — which a
// block holds only as the per-iteration binding — it visits neither the
// operand nor the body.
func walkCFGNode(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.RangeStmt:
			return false
		}
		if m == nil {
			return true
		}
		return fn(m)
	})
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
