// Package summary computes per-function facts for the interprocedural tier
// of internal/lint: what a function provably does to the values reachable
// from its parameters (releases a pooled value, unlocks a mutex, closes a
// channel, balances a WaitGroup), what its error result looks like across
// all returns, and whether it can fail to terminate. The path-sensitive
// analyzers consume these facts at call sites, so a `Release` buried in a
// helper is no longer invisible to `poolrelease`, and a lock-courier helper
// no longer trips `lockbalance`.
//
// Facts are "must" facts unless documented otherwise: guaranteed on every
// path that returns normally. They are computed bottom-up over the SCCs of
// the package call graph; inside a cyclic component the release/close facts
// start optimistic (the greatest-fixpoint convention for must-analyses, so
// a base-case release survives recursion) and descend to a fixed point,
// while numeric deltas and error facts stay pessimistic through cycles.
// A call whose callee is unknown (interface dispatch, func value) or lives
// outside the package poisons the facts of any argument through which the
// callee could reach a sync primitive or channel — an unknown callee may do
// anything, so it proves nothing.
package summary

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/callgraph"
)

// Recv is the Param index of the method receiver.
const Recv = -1

// Ref names a value reachable from a parameter of the summarized function:
// the parameter itself (Path == "") or a chain of field selections on it
// (".mu", ".wg").
type Ref struct {
	Param int
	Path  string
}

// MutexRef is one lock side of a mutex ref: the write side, or the read
// (RLock/RUnlock) side of an RWMutex.
type MutexRef struct {
	Ref
	Read bool
}

// ErrResult classifies a function's error result across all returns.
type ErrResult uint8

const (
	// ErrUnknown: the analysis cannot classify the result.
	ErrUnknown ErrResult = iota
	// ErrAlwaysNil: every return yields a nil error.
	ErrAlwaysNil
	// ErrNeverNil: every return yields a non-nil error.
	ErrNeverNil
)

// Summary is the derived facts of one declared function. A missing entry
// always means "unknown", never "provably does not" — consumers must treat
// absence exactly as they treat an unknown callee.
type Summary struct {
	// Releases: the ref reaches Release/Put on every normal return.
	Releases map[Ref]bool
	// Closes: the channel ref is closed on every normal return (deferred
	// closes count — they run before the call returns to the caller).
	Closes map[Ref]bool
	// MutexDelta: exact net Lock-minus-Unlock count per mutex ref, present
	// only when every normal return agrees (and no unknown callee touched
	// the ref). Negative values are the lock-courier helpers.
	MutexDelta map[MutexRef]int
	// WgDelta: net WaitGroup Add-minus-Done count per ref. By convention a
	// goroutine the function spawns contributes its Done calls as immediate
	// credit — the accounting the wgbalance analyzer uses, not a strict
	// happens-before fact.
	WgDelta map[Ref]int
	// Error classifies the last result when it has type error.
	Error ErrResult
	// NeverTerminates: no path from entry can reach a normal return or a
	// panic-shaped sink — every execution loops or blocks forever.
	NeverTerminates bool
	// StuckNoComm: some reachable region never terminates AND contains no
	// channel operation — a busy loop or select{} that nothing external can
	// ever signal. The goleak analyzer's flag condition for spawned callees.
	StuckNoComm bool
	// Spawns: may start a goroutine (directly or via a callee). May-fact.
	Spawns bool
	// MayBlock: may block on a channel operation or WaitGroup.Wait
	// (directly or via a synchronous callee). May-fact.
	MayBlock bool
	// OrderSensitive: each call may emit order-sensitive output — a write to
	// an io.Writer or hash (Write*), fmt printing, a report-builder row, or a
	// floating-point accumulation into state that outlives the call
	// (receiver, parameter, package-level variable) — directly or via a
	// synchronous in-package callee. Calling such a function from inside a
	// map-range loop makes the iteration order observable. May-fact.
	OrderSensitive bool
	// EstablishesOrder: the ref (a slice reachable from a param/receiver) is
	// handed to a sort.*/slices.Sort* call on every normal return, so the
	// caller may rely on the value being sorted afterwards. Must-fact; the
	// detorder analyzer uses it to see helper-performed sorts.
	EstablishesOrder map[Ref]bool

	// poisoned/paramPoison record refs whose numeric facts disagreed across
	// paths or escaped to an unknown callee; they propagate caller-ward
	// during computation but are deliberately unexported — consumers treat
	// a poisoned ref the same as an absent fact.
	poisoned    map[effKey]bool
	paramPoison map[int]bool
}

// ParamUncertain reports whether the summary lost track of what the
// function does to values reachable from parameter idx (Recv for the
// receiver): the parameter was reassigned, escaped to an unknown callee, or
// its effects disagreed across paths. Consumers that rely on "no fact means
// no effect" (wgbalance's delta accounting) must treat an uncertain
// parameter as unanalyzable rather than unaffected.
func (s *Summary) ParamUncertain(idx int) bool {
	if s.paramPoison[idx] {
		return true
	}
	for k := range s.poisoned {
		if k.ref.Param == idx {
			return true
		}
	}
	return false
}

// Set holds the summaries of one package.
type Set struct {
	graph *callgraph.Graph
	info  *types.Info
	sums  map[*types.Func]*Summary
}

// Of returns the summary for fn, or nil when fn is not a declared function
// of this package.
func (s *Set) Of(fn *types.Func) *Summary {
	if s == nil || fn == nil {
		return nil
	}
	return s.sums[fn]
}

// ForCall resolves call's callee and returns its summary, or nil for
// unknown, external, or unsummarized callees.
func (s *Set) ForCall(call *ast.CallExpr) *Summary {
	if s == nil {
		return nil
	}
	return s.Of(callgraph.Callee(s.info, call))
}

// Graph returns the call graph the set was computed over.
func (s *Set) Graph() *callgraph.Graph { return s.graph }

// Compute derives summaries for every declared function in the package,
// bottom-up over the call-graph SCCs.
func Compute(g *callgraph.Graph, info *types.Info) *Set {
	set := &Set{graph: g, info: info, sums: make(map[*types.Func]*Summary)}
	for _, scc := range g.SCCs() {
		set.computeSCC(scc)
	}
	return set
}

// sccRounds bounds the optimistic-descent iterations inside one cyclic
// component; the lattice is finite and descent is monotone, so this is a
// backstop, not a budget that real code reaches.
const sccRounds = 10

func (set *Set) computeSCC(scc []*callgraph.Node) {
	cyclic := callgraph.InCycle(scc)
	// First round: members of a cycle see their in-SCC callees as the
	// optimistic universal summary (releases/closes everything handed to
	// them, numeric deltas poisoned).
	for _, n := range scc {
		set.sums[n.Obj] = set.computeOne(n, sccMembers(scc), true)
	}
	if !cyclic {
		return
	}
	for round := 0; round < sccRounds; round++ {
		changed := false
		for _, n := range scc {
			next := set.computeOne(n, sccMembers(scc), false)
			if !summariesEqual(set.sums[n.Obj], next) {
				changed = true
			}
			set.sums[n.Obj] = next
		}
		if !changed {
			return
		}
	}
}

func sccMembers(scc []*callgraph.Node) map[*types.Func]bool {
	m := make(map[*types.Func]bool, len(scc))
	for _, n := range scc {
		m[n.Obj] = true
	}
	return m
}

func summariesEqual(a, b *Summary) bool {
	if len(a.Releases) != len(b.Releases) || len(a.Closes) != len(b.Closes) ||
		len(a.MutexDelta) != len(b.MutexDelta) || len(a.WgDelta) != len(b.WgDelta) ||
		len(a.EstablishesOrder) != len(b.EstablishesOrder) ||
		a.Error != b.Error || a.NeverTerminates != b.NeverTerminates ||
		a.StuckNoComm != b.StuckNoComm || a.Spawns != b.Spawns || a.MayBlock != b.MayBlock ||
		a.OrderSensitive != b.OrderSensitive {
		return false
	}
	for k := range a.EstablishesOrder {
		if !b.EstablishesOrder[k] {
			return false
		}
	}
	for k := range a.Releases {
		if !b.Releases[k] {
			return false
		}
	}
	for k := range a.Closes {
		if !b.Closes[k] {
			return false
		}
	}
	for k, v := range a.MutexDelta {
		if bv, ok := b.MutexDelta[k]; !ok || bv != v {
			return false
		}
	}
	for k, v := range a.WgDelta {
		if bv, ok := b.WgDelta[k]; !ok || bv != v {
			return false
		}
	}
	return true
}
