package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder reports order-sensitive work done while ranging over a map. Map
// iteration order is randomised per run, so a loop that appends keys to an
// outer slice (without a later sort), emits report rows or writer output,
// or accumulates floating-point sums produces nondeterministic reports and
// non-reproducible critical-cluster rankings. The safe patterns are: collect
// keys then sort before use, or iterate a pre-sorted key slice.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "order-sensitive append/output/float-accumulation inside a map range without a sort",
	Run:  runMapOrder,
}

func runMapOrder(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkMapRanges(p, body)
			}
			return true
		})
	}
}

// checkMapRanges scans one function body (not descending into nested
// function literals, which are visited as functions in their own right).
func checkMapRanges(p *Pass, body *ast.BlockStmt) {
	sorts := collectSortCalls(p, body)
	inspectShallow(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if _, isMap := typeUnder(p.TypeOf(rng.X)).(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(p, rng, sorts)
		return true
	})
}

// sortCall is one call to a sort/slices ordering function, with the
// rendering of its first argument.
type sortCall struct {
	pos token.Pos
	arg string
}

func collectSortCalls(p *Pass, body *ast.BlockStmt) []sortCall {
	var out []sortCall
	inspectShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		pkg, name := calleePkgFunc(p, call)
		if (pkg == "sort" || pkg == "slices") && sortFuncNames[name] {
			out = append(out, sortCall{pos: call.Pos(), arg: types.ExprString(call.Args[0])})
		}
		return true
	})
	return out
}

var sortFuncNames = map[string]bool{
	"Sort": true, "SortFunc": true, "SortStableFunc": true,
	"Slice": true, "SliceStable": true, "Stable": true,
	"Strings": true, "Ints": true, "Float64s": true,
}

func checkMapRangeBody(p *Pass, rng *ast.RangeStmt, sorts []sortCall) {
	inspectShallow(rng.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			checkMapRangeAssign(p, rng, stmt, sorts)
		case *ast.CallExpr:
			if emitsOutput(p, stmt) {
				p.Reportf(stmt.Pos(), "output emitted while ranging over a map; iterate sorted keys for deterministic reports")
			}
		}
		return true
	})
}

func checkMapRangeAssign(p *Pass, rng *ast.RangeStmt, stmt *ast.AssignStmt, sorts []sortCall) {
	switch stmt.Tok {
	case token.ASSIGN, token.DEFINE:
		// x = append(x, ...) into a slice that outlives the loop, with no
		// sort afterwards: the slice order is the map iteration order.
		if len(stmt.Lhs) != 1 || len(stmt.Rhs) != 1 {
			return
		}
		call, ok := stmt.Rhs[0].(*ast.CallExpr)
		if !ok || !isBuiltinAppend(p, call) || len(call.Args) == 0 {
			return
		}
		target := types.ExprString(stmt.Lhs[0])
		if types.ExprString(call.Args[0]) != target {
			return
		}
		if declaredInside(p, stmt.Lhs[0], rng) {
			return
		}
		for _, s := range sorts {
			if s.pos > rng.End() && s.arg == target {
				return
			}
		}
		p.Reportf(stmt.Pos(), "%s accumulates map keys in map order and is never sorted afterwards", target)
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		// Floating-point accumulation order changes the low bits of the sum.
		if len(stmt.Lhs) == 1 && isFloat(p.TypeOf(stmt.Lhs[0])) && !declaredInside(p, stmt.Lhs[0], rng) {
			p.Reportf(stmt.Pos(), "floating-point accumulation in map order; iterate sorted keys for reproducible sums")
		}
	}
}

// declaredInside reports whether e is an identifier whose declaration lies
// within the range statement (loop-local state is order-independent by
// construction).
func declaredInside(p *Pass, e ast.Expr, rng *ast.RangeStmt) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	obj := p.Info.ObjectOf(id)
	return obj != nil && obj.Pos() >= rng.Pos() && obj.Pos() < rng.End()
}

func isBuiltinAppend(p *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.Info.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}

// emitsOutput reports whether a call writes user-visible output: the fmt
// print family, io/writer Write* methods, and the repo's report builders
// (Table.AddRow, Figure.AddPoint).
func emitsOutput(p *Pass, call *ast.CallExpr) bool {
	pkg, name := calleePkgFunc(p, call)
	if pkg == "fmt" && printFamily[name] {
		return true
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "AddRow", "AddPoint":
		// Methods only — a package-level function of the same name is not an
		// output sink.
		if s, ok := p.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			return true
		}
	}
	return false
}

var printFamily = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// calleePkgFunc returns (package path's base name, function name) for calls
// of the form pkg.Func, and ("", method or func name) otherwise.
func calleePkgFunc(p *Pass, call *ast.CallExpr) (pkg, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		if id, ok := call.Fun.(*ast.Ident); ok {
			return "", id.Name
		}
		return "", ""
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := p.Info.ObjectOf(id).(*types.PkgName); ok {
			return pn.Imported().Name(), sel.Sel.Name
		}
	}
	return "", sel.Sel.Name
}

// inspectShallow walks n without descending into nested function literals.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, isLit := m.(*ast.FuncLit); isLit {
			return false
		}
		return fn(m)
	})
}

// typeUnder returns t's underlying type (nil-safe).
func typeUnder(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	return t.Underlying()
}
