package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/callgraph"
	"repro/internal/lint/cfg"
	"repro/internal/lint/flow"
	"repro/internal/lint/summary"
)

// DetOrder reports order-sensitive work fed by map iteration. Map iteration
// order is randomised per run, so report output, float accumulation, or a
// slice built by appending inside a map range carries nondeterminism unless
// a sort dominates every use. The analyzer works in two phases:
//
//   - Inside each map-range body it reports sinks that observe the iteration
//     order directly: emission calls (io/hash Write*, fmt printing, report
//     builders — including in-package helpers whose OrderSensitive summary
//     says they emit), and floating-point += into state declared outside the
//     loop.
//
//   - Slices built by `x = append(x, …)` inside the loop become tainted
//     seeds tracked by a forward CFG dataflow. The taint dies at a
//     sort.*/slices.* call, at an in-package callee whose EstablishesOrder
//     summary proves it sorts that argument (or a field of its receiver),
//     or — conservatively, a documented false-negative — when the value
//     escapes to an unknown external callee. Taint that reaches an emission
//     call, an OrderSensitive callee, or a normal function exit is reported.
//
// Compared to the syntactic maporder rule this replaces, sorts performed by
// helpers or on other statements than the loop's own function are seen, and
// a sort on only one branch protects only that branch.
var DetOrder = &Analyzer{
	Name: "detorder",
	Doc:  "map-order-tainted value reaches an order-sensitive sink or escapes without a dominating sort",
	Run:  runDetOrder,
}

var sortFuncNames = summary.SortFuncNames

func runDetOrder(p *Pass) {
	for _, f := range p.Files {
		for _, fn := range functionsIn(f) {
			detOrderFunc(p, fn)
		}
	}
}

// doSeed is one tainted accumulator: a `x = append(x, …)` inside a map
// range whose target outlives the loop.
type doSeed struct {
	target string // rendering of the accumulated lvalue
	pos    token.Pos
}

// doState maps lvalue renderings to the seed whose taint they carry.
// Renderings (types.ExprString) rather than objects so selector targets like
// `ms.ProblemKeys` and aliases are one key space; the smallest seed index
// wins at joins to keep reports deterministic.
type doState map[string]int

func doClone(s doState) doState {
	c := make(doState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func doEqual(a, b doState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

func doJoin(dst, src doState) doState {
	for k, v := range src {
		if dv, ok := dst[k]; !ok || v < dv {
			dst[k] = v
		}
	}
	return dst
}

// doCtx carries the per-function analysis inputs through transfer/replay.
type doCtx struct {
	p     *Pass
	seeds map[*ast.AssignStmt]int
	info  []doSeed
	caps  map[*types.Var]bool
	// reported marks seeds already diagnosed (at a sink or at exit) so one
	// accumulator yields one finding however many paths expose it.
	reported map[int]bool
}

func detOrderFunc(p *Pass, fn funcScope) {
	ctx := &doCtx{
		p:        p,
		seeds:    make(map[*ast.AssignStmt]int),
		caps:     capturedVars(p, fn.body),
		reported: make(map[int]bool),
	}
	detOrderScanRanges(ctx, fn.body)
	if len(ctx.seeds) == 0 {
		return
	}
	g := cfg.New(fn.body)
	prob := flow.Problem[doState]{
		Boundary: func() doState { return doState{} },
		Transfer: func(b *cfg.Block, s doState) doState {
			ctx.transfer(b, s, false)
			return s
		},
		Edge: func(from *cfg.Block, succIdx int, s doState) doState {
			if from.Branch == cfg.Cond && from.Cond != nil && succIdx <= 1 {
				ctx.refine(s, from.Cond, succIdx == 0)
			}
			return s
		},
		Join:  doJoin,
		Equal: doEqual,
		Clone: doClone,
	}
	res := flow.Solve(g, prob)
	for _, b := range g.Reachable() {
		in, ok := res.In[b]
		if !ok {
			continue
		}
		ctx.transfer(b, doClone(in), true)
	}
	// Taint alive at the normal-exit join was never sorted on some path:
	// the slice leaves the function (or the function ends) in map order.
	if exit, ok := res.In[g.Exit]; ok {
		ids := make([]int, 0, len(exit))
		for _, id := range exit {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			if !ctx.reported[id] {
				ctx.reported[id] = true
				p.Reportf(ctx.info[id].pos, "%s accumulates map keys in map order and is never sorted afterwards", ctx.info[id].target)
			}
		}
	}
}

// detOrderScanRanges finds every map range in the function body, emits the
// direct-sink diagnostics, and registers append seeds for the dataflow.
// Immediate reports are deduplicated by position: a nested map range is
// scanned both as its own range and as part of the enclosing body.
func detOrderScanRanges(ctx *doCtx, body *ast.BlockStmt) {
	seen := make(map[token.Pos]bool)
	inspectShallow(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if _, isMap := typeUnder(ctx.p.TypeOf(rng.X)).(*types.Map); !isMap {
			return true
		}
		detOrderScanBody(ctx, rng, seen)
		return true
	})
}

func detOrderScanBody(ctx *doCtx, rng *ast.RangeStmt, seen map[token.Pos]bool) {
	p := ctx.p
	report := func(pos token.Pos, format string, args ...any) {
		if !seen[pos] {
			seen[pos] = true
			p.Reportf(pos, format, args...)
		}
	}
	inspectShallow(rng.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.CallExpr:
			if summary.IsEmissionCall(p.Info, stmt) {
				report(stmt.Pos(), "output emitted while ranging over a map; iterate sorted keys for deterministic reports")
			} else if sum := p.Sums.ForCall(stmt); sum != nil && sum.OrderSensitive {
				report(stmt.Pos(), "%s emits order-sensitive output, called while ranging over a map; iterate sorted keys for deterministic reports", types.ExprString(stmt.Fun))
			}
		case *ast.AssignStmt:
			detOrderRangeAssign(ctx, rng, stmt, report)
		}
		return true
	})
}

func detOrderRangeAssign(ctx *doCtx, rng *ast.RangeStmt, stmt *ast.AssignStmt, report func(token.Pos, string, ...any)) {
	p := ctx.p
	switch stmt.Tok {
	case token.ASSIGN, token.DEFINE:
		// x = append(x, …) into a slice that outlives the loop: the slice
		// order is the map iteration order until something sorts it.
		if len(stmt.Lhs) != 1 || len(stmt.Rhs) != 1 {
			return
		}
		call, ok := stmt.Rhs[0].(*ast.CallExpr)
		if !ok || !isBuiltinAppend(p, call) || len(call.Args) == 0 {
			return
		}
		target := types.ExprString(stmt.Lhs[0])
		if types.ExprString(call.Args[0]) != target {
			return
		}
		if declaredInside(p, stmt.Lhs[0], rng) {
			return
		}
		// A target captured by a nested literal may be sorted (or emitted)
		// by code this per-function analysis cannot see; stay silent.
		if id, ok := stmt.Lhs[0].(*ast.Ident); ok {
			if v := prObjOf(p, id); v != nil && ctx.caps[v] {
				return
			}
		}
		if _, dup := ctx.seeds[stmt]; !dup {
			ctx.seeds[stmt] = len(ctx.info)
			ctx.info = append(ctx.info, doSeed{target: target, pos: stmt.Pos()})
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		// Floating-point accumulation order changes the low bits of the sum.
		if len(stmt.Lhs) == 1 && isFloat(p.TypeOf(stmt.Lhs[0])) && !declaredInside(p, stmt.Lhs[0], rng) {
			report(stmt.Pos(), "floating-point accumulation in map order; iterate sorted keys for reproducible sums")
		}
	}
}

// transfer applies one block's statements to the taint state; with report
// set it also emits the sink diagnostics (the replay convention shared with
// poolrelease).
func (ctx *doCtx) transfer(b *cfg.Block, s doState, report bool) {
	for _, n := range b.Nodes {
		// Calls first: `out = append(out, k)` both mentions calls and
		// rebinds; the call scan must see the pre-assignment state.
		inspectCFGNode(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				ctx.applyCall(call, s, report)
			}
			return true
		})
		switch n := n.(type) {
		case *ast.AssignStmt:
			ctx.applyAssign(n, s)
		case *ast.IncDecStmt:
			doKill(s, types.ExprString(n.X))
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for i, name := range vs.Names {
							doKill(s, name.Name)
							if i < len(vs.Values) {
								doAlias(s, name.Name, vs.Values[i])
							}
						}
					}
				}
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if e != nil {
					doKill(s, types.ExprString(e))
				}
			}
		}
	}
}

// refine narrows taint along branch edges: on an edge that proves
// `len(x) <= 1` the slice has at most one element, so its order is
// deterministic by construction and the taint dies. This is what makes the
// common `if len(out) == 0 { continue }` guard before a sort check clean.
func (ctx *doCtx) refine(s doState, cond ast.Expr, truthy bool) {
	if len(s) == 0 {
		return
	}
	switch e := unparen(cond).(type) {
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			ctx.refine(s, e.X, !truthy)
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			if truthy {
				ctx.refine(s, e.X, true)
				ctx.refine(s, e.Y, true)
			}
		case token.LOR:
			if !truthy {
				ctx.refine(s, e.X, false)
				ctx.refine(s, e.Y, false)
			}
		default:
			if key, ok := doLenAtMostOne(ctx.p, e, truthy); ok {
				doKill(s, key)
			}
		}
	}
}

// doLenAtMostOne decides whether the comparison e, known to evaluate to
// `truthy`, proves len(x) <= 1 for some len-call operand x, returning x's
// rendering.
func doLenAtMostOne(p *Pass, e *ast.BinaryExpr, truthy bool) (string, bool) {
	arg, lit := doLenCmp(p, e.X, e.Y)
	op := e.Op
	if arg == nil {
		// Reversed form (0 == len(x)): flip the comparison.
		if arg, lit = doLenCmp(p, e.Y, e.X); arg == nil {
			return "", false
		}
		switch op {
		case token.LSS:
			op = token.GTR
		case token.GTR:
			op = token.LSS
		case token.LEQ:
			op = token.GEQ
		case token.GEQ:
			op = token.LEQ
		}
	}
	k, ok := doIntLit(lit)
	if !ok {
		return "", false
	}
	proves := false
	switch op {
	case token.EQL:
		proves = truthy && k <= 1
	case token.NEQ:
		proves = !truthy && k == 0
	case token.LSS:
		proves = truthy && k <= 2
	case token.LEQ:
		proves = truthy && k <= 1
	case token.GTR:
		proves = !truthy && k >= 1
	case token.GEQ:
		proves = !truthy && k >= 2
	}
	if !proves {
		return "", false
	}
	return types.ExprString(unparen(arg)), true
}

// doLenCmp matches `len(arg)` on the left and returns (arg, right).
func doLenCmp(p *Pass, left, right ast.Expr) (ast.Expr, ast.Expr) {
	call, ok := unparen(left).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil, nil
	}
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "len" {
		return nil, nil
	}
	if b, ok := p.Info.ObjectOf(id).(*types.Builtin); !ok || b.Name() != "len" {
		return nil, nil
	}
	return call.Args[0], right
}

func doIntLit(e ast.Expr) (int, bool) {
	lit, ok := unparen(e).(*ast.BasicLit)
	if !ok || lit.Kind != token.INT {
		return 0, false
	}
	switch lit.Value {
	case "0":
		return 0, true
	case "1":
		return 1, true
	case "2":
		return 2, true
	}
	return 0, false
}

// applyAssign kills rebound lvalues and propagates taint through aliases:
// `y := x` and `y = append(x, …)` give y x's taint.
func (ctx *doCtx) applyAssign(n *ast.AssignStmt, s doState) {
	if id, seeded := ctx.seeds[n]; seeded {
		s[ctx.info[id].target] = id
		return
	}
	if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
		if len(n.Lhs) == 1 {
			doKill(s, types.ExprString(n.Lhs[0]))
		}
		return
	}
	for i, lhs := range n.Lhs {
		lr := types.ExprString(lhs)
		var rhs ast.Expr
		if len(n.Rhs) == len(n.Lhs) {
			rhs = n.Rhs[i]
		}
		doKill(s, lr)
		if rhs != nil {
			doAlias(s, lr, rhs)
		}
	}
}

// doAlias copies taint from rhs onto key: a direct alias, or an append from
// a tainted base (`sorted := append([]string(nil), tainted...)` keeps the
// map order).
func doAlias(s doState, key string, rhs ast.Expr) {
	rhs = unparen(rhs)
	if id, ok := s[types.ExprString(rhs)]; ok {
		s[key] = id
		return
	}
	if call, ok := rhs.(*ast.CallExpr); ok && len(call.Args) > 0 {
		if fn, ok := call.Fun.(*ast.Ident); ok && fn.Name == "append" {
			for _, arg := range call.Args {
				if id, ok := s[types.ExprString(unparen(arg))]; ok {
					s[key] = id
					return
				}
			}
		}
	}
}

// doKill drops the key and everything rendered beneath it (`ms` also kills
// `ms.ProblemKeys`, `shards` also kills `shards[i]`).
func doKill(s doState, key string) {
	for k := range s {
		if k == key || strings.HasPrefix(k, key+".") || strings.HasPrefix(k, key+"[") {
			delete(s, k)
		}
	}
}

// applyCall is the heart of the dataflow: sorts kill taint, sinks report it,
// unknown callees swallow it.
func (ctx *doCtx) applyCall(call *ast.CallExpr, s doState, report bool) {
	if len(s) == 0 {
		return
	}
	p := ctx.p
	// sort.X(arg) / slices.X(arg): the argument is ordered from here on. A
	// one-argument conversion (sort.Sort(byLen(keys))) is looked through.
	if pkg, name := calleePkgFunc(p, call); (pkg == "sort" || pkg == "slices") && sortFuncNames[name] && len(call.Args) > 0 {
		arg := unparen(call.Args[0])
		if conv, ok := arg.(*ast.CallExpr); ok && len(conv.Args) == 1 {
			if tv, isConv := p.Info.Types[conv.Fun]; isConv && tv.IsType() {
				arg = unparen(conv.Args[0])
			}
		}
		doKill(s, types.ExprString(arg))
		return
	}
	if isBuiltinAppend(p, call) {
		return
	}
	// Emission sink: a tainted slice handed to Write*/fmt/report builders is
	// observable in map order.
	if summary.IsEmissionCall(p.Info, call) {
		ctx.sinkArgs(call, s, report, "emitted")
		return
	}
	callee := callgraph.Callee(p.Info, call)
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	if callee == nil || p.Sums.Of(callee) == nil {
		if isBuiltinName(p, call) {
			return
		}
		// Unknown or external callee: it may sort, store, or emit the value.
		// Dropping the taint is the sound-for-false-positives choice; an
		// external emitter is a documented false negative.
		ctx.killCallOperands(call, s)
		return
	}
	sum := p.Sums.Of(callee)
	if sum.OrderSensitive {
		ctx.sinkArgs(call, s, report, "passed to an order-sensitive callee")
	}
	// Helper-performed sorts: EstablishesOrder refs name the argument (or a
	// field path under the receiver/argument) the callee sorts on every
	// return.
	for ref := range sum.EstablishesOrder {
		if base, ok := doRefBase(call, ref); ok {
			doKill(s, base+ref.Path)
		}
	}
	// A parameter the summary lost track of may have been sorted or stored.
	for i, arg := range call.Args {
		if _, tainted := s[types.ExprString(unparen(arg))]; tainted && sum.ParamUncertain(i) {
			doKill(s, types.ExprString(unparen(arg)))
		}
	}
}

// sinkArgs reports (once per seed) every tainted argument of an
// order-sensitive call, then kills the taint — one finding per defect.
func (ctx *doCtx) sinkArgs(call *ast.CallExpr, s doState, report bool, how string) {
	for _, arg := range call.Args {
		ar := types.ExprString(unparen(arg))
		id, tainted := s[ar]
		if !tainted {
			continue
		}
		if report && !ctx.reported[id] {
			ctx.reported[id] = true
			ctx.p.Reportf(arg.Pos(), "%s accumulates map keys in map order and is %s without an intervening sort", ctx.info[id].target, how)
		}
		doKill(s, ar)
	}
}

// killCallOperands drops taint on every argument and on the receiver of an
// unresolvable call.
func (ctx *doCtx) killCallOperands(call *ast.CallExpr, s doState) {
	for _, arg := range call.Args {
		doKill(s, types.ExprString(unparen(arg)))
	}
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		doKill(s, types.ExprString(unparen(sel.X)))
	}
}

// doRefBase renders the call operand a summary Ref is rooted at.
func doRefBase(call *ast.CallExpr, ref summary.Ref) (string, bool) {
	if ref.Param == summary.Recv {
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			return types.ExprString(unparen(sel.X)), true
		}
		return "", false
	}
	if ref.Param >= 0 && ref.Param < len(call.Args) {
		return types.ExprString(unparen(call.Args[ref.Param])), true
	}
	return "", false
}

// isBuiltinName reports calls to universe builtins (len, cap, delete, …)
// which never take ownership of their operands.
func isBuiltinName(p *Pass, call *ast.CallExpr) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, isB := p.Info.ObjectOf(id).(*types.Builtin)
	return isB
}

// declaredInside reports whether e is an identifier whose declaration lies
// within the range statement (loop-local state is order-independent by
// construction).
func declaredInside(p *Pass, e ast.Expr, rng *ast.RangeStmt) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	obj := p.Info.ObjectOf(id)
	return obj != nil && obj.Pos() >= rng.Pos() && obj.Pos() < rng.End()
}

func isBuiltinAppend(p *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.Info.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}

// calleePkgFunc returns (package path's base name, function name) for calls
// of the form pkg.Func, and ("", method or func name) otherwise.
func calleePkgFunc(p *Pass, call *ast.CallExpr) (pkg, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		if id, ok := call.Fun.(*ast.Ident); ok {
			return "", id.Name
		}
		return "", ""
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := p.Info.ObjectOf(id).(*types.PkgName); ok {
			return pn.Imported().Name(), sel.Sel.Name
		}
	}
	return "", sel.Sel.Name
}

// inspectShallow walks n without descending into nested function literals.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, isLit := m.(*ast.FuncLit); isLit {
			return false
		}
		return fn(m)
	})
}

// typeUnder returns t's underlying type (nil-safe).
func typeUnder(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	return t.Underlying()
}
