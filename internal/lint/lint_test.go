package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// All fixtures share one FileSet and source importer so the (expensive)
// stdlib type-checking is paid once per test binary, not once per fixture.
var (
	fixtureFset     = token.NewFileSet()
	fixtureImporter = importer.ForCompiler(fixtureFset, "source", nil)
	fixtureSeq      int
)

// analyzeSrc type-checks one in-memory fixture file and runs the given
// analyzers over it, returning the sorted diagnostics.
func analyzeSrc(t *testing.T, src string, analyzers ...*Analyzer) []Diagnostic {
	t.Helper()
	fixtureSeq++
	return analyzeSrcPath(t, fmt.Sprintf("fixture%d", fixtureSeq), src, analyzers...)
}

// analyzeSrcPath is analyzeSrc with an explicit package path, for rules
// whose behavior keys on the path (ratioguard's eps recognition).
func analyzeSrcPath(t *testing.T, pkgPath, src string, analyzers ...*Analyzer) []Diagnostic {
	t.Helper()
	fixtureSeq++
	name := fmt.Sprintf("fixture%d.go", fixtureSeq)
	f, err := parser.ParseFile(fixtureFset, name, src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: fixtureImporter}
	tpkg, err := conf.Check(pkgPath, fixtureFset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	return Run([]*Package{{
		Path:  tpkg.Path(),
		Fset:  fixtureFset,
		Files: []*ast.File{f},
		Types: tpkg,
		Info:  info,
	}}, analyzers)
}

// rulesOf extracts the rule IDs of a diagnostic list, in order.
func rulesOf(diags []Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.Rule
	}
	return out
}

// TestAnalyzers is the per-analyzer fixture table: each analyzer gets a
// positive case (deliberately broken code that must trigger it), a negative
// case (correct code that must not), and a suppression case (the positive
// code with a //vqlint:ignore comment, which must silence it).
func TestAnalyzers(t *testing.T) {
	cases := []struct {
		name     string
		analyzer *Analyzer
		src      string
		want     []string // expected rule IDs, in diagnostic order
	}{
		// ---- floatcmp ----
		{
			name:     "floatcmp positive",
			analyzer: FloatCmp,
			src: `package fixture
func atThreshold(ratio, threshold float64) bool {
	return ratio == threshold
}
func offThreshold(ratio float64) bool {
	return ratio != 0.05
}
`,
			want: []string{"floatcmp", "floatcmp"},
		},
		{
			name:     "floatcmp negative",
			analyzer: FloatCmp,
			src: `package fixture
import "sort"
const a, b = 0.05, 1.5
var constOnly = a == b // both operands constant: exact by construction
func ordered(x, y float64) bool { return x > y }
func comparator(xs []float64) {
	// Inside a sort comparator an epsilon would break strict weak
	// ordering, so direct equality is exempt there.
	sort.Slice(xs, func(i, j int) bool {
		if xs[i] == xs[j] {
			return false
		}
		return xs[i] < xs[j]
	})
}
`,
			want: nil,
		},
		{
			name:     "floatcmp suppressed",
			analyzer: FloatCmp,
			src: `package fixture
func sentinel(v float64) bool {
	return v == 0 //vqlint:ignore floatcmp zero is an exact sentinel here
}
`,
			want: nil,
		},

		// ---- detorder ----
		{
			name:     "detorder positive append",
			analyzer: DetOrder,
			src: `package fixture
func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`,
			want: []string{"detorder"},
		},
		{
			name:     "detorder positive float accumulation",
			analyzer: DetOrder,
			src: `package fixture
func sum(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}
`,
			want: []string{"detorder"},
		},
		{
			name:     "detorder positive output",
			analyzer: DetOrder,
			src: `package fixture
import "fmt"
func dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}
`,
			want: []string{"detorder"},
		},
		{
			name:     "detorder negative sorted after",
			analyzer: DetOrder,
			src: `package fixture
import "sort"
func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
func countOnly(m map[string]float64) int {
	n := 0
	for range m {
		n++ // integer accumulation is order-independent
	}
	return n
}
`,
			want: nil,
		},
		{
			name:     "detorder positive sort on one branch only",
			analyzer: DetOrder,
			src: `package fixture
import "sort"
func keys(m map[string]int, ordered bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	if ordered {
		sort.Strings(out)
	}
	return out
}
`,
			want: []string{"detorder"},
		},
		{
			name:     "detorder suppressed",
			analyzer: DetOrder,
			src: `package fixture
func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		//vqlint:ignore detorder order is irrelevant to the caller
		out = append(out, k)
	}
	return out
}
`,
			want: nil,
		},

		// ---- mutexcopy ----
		{
			name:     "mutexcopy positive",
			analyzer: MutexCopy,
			src: `package fixture
import "sync"
type counter struct {
	mu sync.Mutex
	n  int
}
func byValue(c counter) int { // parameter copies the lock
	return c.n
}
func assign(c *counter) {
	dup := *c // assignment copies the lock
	dup.n++
}
func iterate(cs []counter) {
	for _, c := range cs { // range value copies the lock
		_ = c.n
	}
}
`,
			want: []string{"mutexcopy", "mutexcopy", "mutexcopy"},
		},
		{
			name:     "mutexcopy negative",
			analyzer: MutexCopy,
			src: `package fixture
import "sync"
type counter struct {
	mu sync.Mutex
	n  int
}
func byPointer(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}
func fresh() *counter {
	c := counter{} // composite literal constructs, not copies
	return &c
}
func iterate(cs []counter) {
	for i := range cs {
		_ = cs[i].n
	}
}
`,
			want: nil,
		},
		{
			name:     "mutexcopy suppressed",
			analyzer: MutexCopy,
			src: `package fixture
import "sync"
type counter struct {
	mu sync.Mutex
	n  int
}
func snapshot(c counter) int { //vqlint:ignore mutexcopy value is never locked after construction
	return c.n
}
`,
			want: nil,
		},

		// ---- lockbalance ----
		{
			name:     "lockbalance positive early return",
			analyzer: LockBalance,
			src: `package fixture
import "sync"
type counter struct {
	mu sync.Mutex
	n  int
}
func bad(c *counter) int {
	c.mu.Lock()
	if c.n > 0 {
		return c.n // leaves c.mu held
	}
	c.mu.Unlock()
	return 0
}
`,
			want: []string{"lockbalance"},
		},
		{
			name:     "lockbalance positive fall off end",
			analyzer: LockBalance,
			src: `package fixture
import "sync"
func leak(mu *sync.Mutex, n *int) {
	mu.Lock()
	*n++
}
`,
			want: []string{"lockbalance"},
		},
		{
			name:     "lockbalance positive return inside select clause",
			analyzer: LockBalance,
			src: `package fixture
import "sync"
func drain(mu *sync.Mutex, ch chan int) int {
	mu.Lock()
	select {
	case v := <-ch:
		return v // leaves mu locked — invisible to a syntactic walk
	default:
	}
	mu.Unlock()
	return 0
}
`,
			want: []string{"lockbalance"},
		},
		{
			name:     "lockbalance positive double unlock",
			analyzer: LockBalance,
			src: `package fixture
import "sync"
func double(mu *sync.Mutex) {
	mu.Lock()
	mu.Unlock()
	mu.Unlock()
}
`,
			want: []string{"lockbalance"},
		},
		{
			name:     "lockbalance positive self deadlock",
			analyzer: LockBalance,
			src: `package fixture
import "sync"
func again(mu *sync.Mutex) {
	mu.Lock()
	mu.Lock()
	mu.Unlock()
	mu.Unlock()
}
`,
			want: []string{"lockbalance"},
		},
		{
			name:     "lockbalance negative",
			analyzer: LockBalance,
			src: `package fixture
import "sync"
type counter struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}
func deferred(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.n > 0 {
		return c.n
	}
	return 0
}
func paired(c *counter) int {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	return n
}
func conditional(c *counter, use bool) {
	if use {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	c.n = 0
}
func reader(c *counter) int {
	c.rw.RLock()
	n := c.n
	c.rw.RUnlock()
	return n
}
func branches(c *counter, closed bool) int {
	c.mu.Lock()
	if closed {
		c.mu.Unlock()
		return -1
	}
	n := c.n
	c.mu.Unlock()
	return n
}
func deferredLit(c *counter) {
	c.mu.Lock()
	defer func() {
		c.n = 0
		c.mu.Unlock()
	}()
	c.n++
}
`,
			want: nil,
		},
		{
			name:     "lockbalance suppressed",
			analyzer: LockBalance,
			src: `package fixture
import "sync"
func handoff(mu *sync.Mutex) {
	mu.Lock()
	//vqlint:ignore lockbalance ownership transfers to the caller
}
`,
			want: nil,
		},

		// ---- poolrelease ----
		{
			name:     "poolrelease positive early return leak",
			analyzer: PoolRelease,
			src: `package fixture
type res struct{ n int }
func (r *res) Release() {}
func Acquire() *res { return &res{} }
func leak(cond bool) int {
	r := Acquire()
	if cond {
		return 0 // r never reaches Release on this path
	}
	r.Release()
	return 1
}
`,
			want: []string{"poolrelease"},
		},
		{
			name:     "poolrelease positive pool Get without Put",
			analyzer: PoolRelease,
			src: `package fixture
import "sync"
var pool sync.Pool
func use(cond bool) {
	b := pool.Get().(*[]byte)
	if cond {
		return // b never goes back to the pool
	}
	pool.Put(b)
}
`,
			want: []string{"poolrelease"},
		},
		{
			name:     "poolrelease negative",
			analyzer: PoolRelease,
			src: `package fixture
type res struct{ n int }
func (r *res) Release() {}
func Acquire() *res { return &res{} }
func view(r *res) int { return r.n }
func deferred(cond bool) int {
	r := Acquire()
	defer r.Release()
	if cond {
		return 0
	}
	return view(r) // borrowing through a call argument is fine
}
func escapes() *res {
	r := Acquire()
	return r // ownership moves to the caller
}
func panicPath(cond bool) {
	r := Acquire()
	if cond {
		panic("corrupt state") // crash paths owe the pool nothing
	}
	r.Release()
}
`,
			want: nil,
		},
		{
			name:     "poolrelease negative comma-ok and nil guards",
			analyzer: PoolRelease,
			src: `package fixture
import "sync"
var pool sync.Pool
func commaOK(out []byte) []byte {
	b, ok := pool.Get().(*[]byte)
	if !ok {
		return nil // assertion failed: b is nil, nothing to put back
	}
	out = append(out, (*b)...)
	pool.Put(b)
	return out
}
func nilCheck(out []byte) []byte {
	b, _ := pool.Get().(*[]byte)
	if b == nil {
		return nil
	}
	out = append(out, (*b)...)
	pool.Put(b)
	return out
}
`,
			want: nil,
		},
		{
			name:     "poolrelease positive still leaks past the comma-ok guard",
			analyzer: PoolRelease,
			src: `package fixture
import "sync"
var pool sync.Pool
func leak(n int) int {
	b, ok := pool.Get().(*[]byte)
	if !ok {
		return 0
	}
	if n == 0 {
		return 0 // ok-true path: b is live and never put back
	}
	pool.Put(b)
	return len(*b)
}
`,
			want: []string{"poolrelease"},
		},
		{
			name:     "poolrelease suppressed",
			analyzer: PoolRelease,
			src: `package fixture
type res struct{ n int }
func (r *res) Release() {}
func Acquire() *res { return &res{} }
func leak(cond bool) {
	r := Acquire()
	if cond {
		return //vqlint:ignore poolrelease released by the caller via Done()
	}
	r.Release()
}
`,
			want: nil,
		},

		// ---- errflow ----
		{
			name:     "errflow positive overwrite and drop",
			analyzer: ErrFlow,
			src: `package fixture
var errStep error
func step() error { return errStep } // opaque: summary stays ErrUnknown
func overwrite() error {
	err := step()
	err = step() // the first error was never checked
	return err
}
func dead() {
	err := step() // assigned, then the function ends without reading it
	err = step()
	_ = err
}
`,
			want: []string{"errflow", "errflow"},
		},
		{
			name:     "errflow negative",
			analyzer: ErrFlow,
			src: `package fixture
func step() error { return nil }
func checked() error {
	err := step()
	if err != nil {
		return err
	}
	err = step()
	return err
}
func loopRetry() error {
	var err error
	for i := 0; i < 3; i++ {
		err = step()
		if err == nil {
			break
		}
	}
	return err
}
func named() (err error) {
	err = step()
	return // naked return reads the named result
}
func viaClosure() error {
	var err error
	fn := func() { err = step() } // captured: exempt from the analysis
	fn()
	return err
}
`,
			want: nil,
		},
		{
			name:     "errflow suppressed",
			analyzer: ErrFlow,
			src: `package fixture
func step() error { return nil }
func overwrite() error {
	err := step() //vqlint:ignore errflow first probe is best-effort
	err = step()
	return err
}
`,
			want: nil,
		},

		// ---- ratioguard ----
		{
			name:     "ratioguard positive",
			analyzer: RatioGuard,
			src: `package fixture
func ratio(problems, total int) float64 {
	return float64(problems) / float64(total) // NaN on a starved epoch
}
func intdiv(a, n int) int {
	return a / n // panics outright
}
`,
			want: []string{"ratioguard", "ratioguard"},
		},
		{
			name:     "ratioguard positive guard on one path only",
			analyzer: RatioGuard,
			src: `package fixture
func half(sum float64, n int, skip bool) float64 {
	if !skip {
		if n == 0 {
			return 0
		}
	}
	return sum / float64(n) // the skip path arrives unguarded
}
`,
			want: []string{"ratioguard"},
		},
		{
			name:     "ratioguard negative",
			analyzer: RatioGuard,
			src: `package fixture
func guarded(problems, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(problems) / float64(total)
}
func positiveTest(sum float64, n int) float64 {
	if n > 0 {
		return sum / float64(n)
	}
	return 0
}
func clamp(x float64, steps int) float64 {
	if steps < 1 {
		steps = 1 // the clamp idiom proves the bound on both paths
	}
	return x / float64(steps)
}
func alias(problems, total int) float64 {
	if total == 0 {
		return 0
	}
	n := float64(total)
	return float64(problems) / n
}
func orChain(a, b, n int) float64 {
	if a < 0 || n == 0 {
		return 0
	}
	return float64(b) / float64(n)
}
func minusOne(n int) float64 {
	if n < 2 {
		return 0
	}
	return 1 / float64(n-1) // n ≥ 2 ⇒ n−1 ≥ 1
}
func constDen(a int) float64 {
	return float64(a) / 4
}
func loopGuard(groups [][]int) float64 {
	var out float64
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		out += 1 / float64(len(g))
	}
	return out
}
`,
			want: nil,
		},
		{
			name:     "ratioguard negative non-empty literal length",
			analyzer: RatioGuard,
			src: `package fixture
func rotate(i int) string {
	names := []string{"buffer", "bitrate", "join"}
	return names[i%len(names)] // a 3-element literal cannot have len 0
}
`,
			want: nil,
		},
		{
			name:     "ratioguard positive literal length lost on reassignment",
			analyzer: RatioGuard,
			src: `package fixture
func pick(i int, extra []string) string {
	names := []string{"buffer", "bitrate", "join"}
	names = extra // could be empty: the literal fact must die here
	return names[i%len(names)]
}
`,
			want: []string{"ratioguard"},
		},
		{
			name:     "ratioguard suppressed",
			analyzer: RatioGuard,
			src: `package fixture
func ratio(problems, total int) float64 {
	return float64(problems) / float64(total) //vqlint:ignore ratioguard caller validates total
}
`,
			want: nil,
		},

		// ---- ctxcheck ----
		{
			name:     "ctxcheck positive",
			analyzer: CtxCheck,
			src: `package fixture
func spawn(n int) {
	for i := 0; i < n; i++ {
		go func() {
			println(n) // no receive, no select, no context, no WaitGroup
		}()
	}
}
`,
			want: []string{"ctxcheck"},
		},
		{
			name:     "ctxcheck negative",
			analyzer: CtxCheck,
			src: `package fixture
import (
	"context"
	"sync"
)
func viaChannel(n int, stop chan struct{}) {
	for i := 0; i < n; i++ {
		go func() {
			<-stop
		}()
	}
}
func viaWaitGroup(n int, wg *sync.WaitGroup) {
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			println(n)
		}()
	}
}
func viaContext(ctx context.Context, n int) {
	for i := 0; i < n; i++ {
		go func() {
			<-ctx.Done()
		}()
	}
}
`,
			want: nil,
		},
		{
			name:     "ctxcheck suppressed",
			analyzer: CtxCheck,
			src: `package fixture
func spawn(n int) {
	for i := 0; i < n; i++ {
		//vqlint:ignore ctxcheck fire-and-forget by design in this demo
		go func() {
			println(n)
		}()
	}
}
`,
			want: nil,
		},

		// ---- errdrop ----
		{
			name:     "errdrop positive",
			analyzer: ErrDrop,
			src: `package fixture
import "os"
func drop(f *os.File) {
	f.Close()
}
`,
			want: []string{"errdrop"},
		},
		{
			name:     "errdrop negative",
			analyzer: ErrDrop,
			src: `package fixture
import (
	"fmt"
	"os"
	"strings"
)
func handled(f *os.File) error {
	defer f.Close() // deferred cleanup is exempt
	_ = f.Sync()    // explicit discard is exempt
	var sb strings.Builder
	sb.WriteString("x")          // strings.Builder never errors
	fmt.Println("hello")         // terminal chatter
	fmt.Fprintln(os.Stderr, "x") // std stream
	fmt.Fprintln(&sb, "y")       // in-memory sink
	return f.Close()
}
`,
			want: nil,
		},
		{
			name:     "errdrop suppressed",
			analyzer: ErrDrop,
			src: `package fixture
import "os"
func drop(f *os.File) {
	f.Close() //vqlint:ignore errdrop best-effort cleanup on the error path
}
`,
			want: nil,
		},
		{
			name:     "errdrop deferred file sync positive",
			analyzer: ErrDrop,
			src: `package fixture
import "os"
func write(f *os.File) {
	defer f.Sync() // drops the durability verdict
	defer f.Close()
}
`,
			want: []string{"errdrop"},
		},
		{
			name:     "errdrop deferred sync on non-file negative",
			analyzer: ErrDrop,
			src: `package fixture
type flusher struct{}
func (flusher) Sync() error { return nil }
func use(fl flusher) {
	defer fl.Sync() // only *os.File carries the durability contract
}
`,
			want: nil,
		},
		{
			name:     "errdrop deferred file sync suppressed",
			analyzer: ErrDrop,
			src: `package fixture
import "os"
func write(f *os.File) {
	defer f.Sync() //vqlint:ignore errdrop scratch file, durability irrelevant
}
`,
			want: nil,
		},

		// ---- goleak ----
		{
			name:     "goleak positive",
			analyzer: GoLeak,
			src: `package fixture
func spin() {
	for {
	}
}
func spawn() {
	go spin()
	go func() {
		select {}
	}()
}
`,
			want: []string{"goleak", "goleak"},
		},
		{
			name:     "goleak negative",
			analyzer: GoLeak,
			src: `package fixture
func pump(in, out chan int) {
	for v := range in {
		out <- v
	}
}
func spawn(in, out chan int, quit chan struct{}) {
	go pump(in, out)
	go func() {
		for {
			select {
			case <-quit:
				return
			case v := <-in:
				out <- v
			}
		}
	}()
}
`,
			want: nil,
		},
		{
			name:     "goleak suppressed",
			analyzer: GoLeak,
			src: `package fixture
func spin() {
	for {
	}
}
func spawn() {
	go spin() //vqlint:ignore goleak intentional busy daemon for the demo
}
`,
			want: nil,
		},

		// ---- chandiscipline ----
		{
			name:     "chandiscipline positive",
			analyzer: ChanDiscipline,
			src: `package fixture
func doubleClose() {
	ch := make(chan int)
	close(ch)
	close(ch)
}
func nilSend() {
	var ch chan int
	ch <- 1
}
`,
			want: []string{"chandiscipline", "chandiscipline"},
		},
		{
			name:     "chandiscipline negative",
			analyzer: ChanDiscipline,
			src: `package fixture
func conditional(c bool) {
	ch := make(chan int)
	if c {
		close(ch)
	} else {
		close(ch)
	}
}
func disabled(a chan int) {
	var b chan int
	select {
	case <-a:
	case <-b:
	}
}
`,
			want: nil,
		},
		{
			name:     "chandiscipline suppressed",
			analyzer: ChanDiscipline,
			src: `package fixture
func doubleClose() {
	ch := make(chan int)
	close(ch)
	close(ch) //vqlint:ignore chandiscipline deliberate panic under test
}
`,
			want: nil,
		},

		// ---- wgbalance ----
		{
			name:     "wgbalance positive",
			analyzer: WgBalance,
			src: `package fixture
import "sync"
func negative() {
	var wg sync.WaitGroup
	wg.Add(1)
	wg.Done()
	wg.Done()
}
func stuck() {
	var wg sync.WaitGroup
	wg.Add(1)
	wg.Wait()
}
`,
			want: []string{"wgbalance", "wgbalance"},
		},
		{
			name:     "wgbalance negative",
			analyzer: WgBalance,
			src: `package fixture
import "sync"
func pool(n int, work func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			work(i)
		}(i)
	}
	wg.Wait()
}
func worker(wg *sync.WaitGroup, work func()) {
	defer wg.Done()
	work()
}
`,
			want: nil,
		},
		{
			name:     "wgbalance suppressed",
			analyzer: WgBalance,
			src: `package fixture
import "sync"
func stuck() {
	var wg sync.WaitGroup
	wg.Add(1)
	wg.Wait() //vqlint:ignore wgbalance deadlock fixture for the watchdog test
}
`,
			want: nil,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := analyzeSrc(t, tc.src, tc.analyzer)
			if len(got) != len(tc.want) {
				t.Fatalf("got %d diagnostics, want %d:\n%s", len(got), len(tc.want), formatDiags(got))
			}
			for i, rule := range rulesOf(got) {
				if rule != tc.want[i] {
					t.Errorf("diagnostic %d rule = %s, want %s", i, rule, tc.want[i])
				}
			}
		})
	}
}

func formatDiags(diags []Diagnostic) string {
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString("  " + d.String() + "\n")
	}
	return sb.String()
}

// TestAllAnalyzersFireOnBrokenFixture feeds one deliberately broken file to
// the full analyzer set and checks every rule fires — the acceptance
// criterion that no analyzer silently degrades into a no-op.
func TestAllAnalyzersFireOnBrokenFixture(t *testing.T) {
	const src = `package fixture
import (
	"fmt"
	"os"
	"sync"
	"time"
)
type guarded struct {
	mu sync.Mutex
	n  int
}
func broken(g guarded, m map[string]float64, f *os.File, vals []float64) float64 {
	g.mu.Lock()
	var total float64
	for k, v := range m {
		total += v
		fmt.Println(k)
	}
	for i := 0; i < 3; i++ {
		go func() {
			println(i)
		}()
	}
	f.Close()
	if total == 0.05 {
		return g.hold()
	}
	return total
}
func (g *guarded) hold() float64 {
	g.mu.Lock()
	return float64(g.n)
}
type res struct{ n int }
func (r *res) Release() {}
func Acquire() *res { return &res{} }
func leakRes(cond bool) int {
	r := Acquire()
	if cond {
		return 0
	}
	r.Release()
	return 1
}
var errStep error
func step() error { return errStep }
func overwrite() error {
	err := step()
	err = step()
	return err
}
func ratio(problems, total int) float64 {
	return float64(problems) / float64(total)
}
func spinner() {
	for {
	}
}
func spawnLeaks() {
	go spinner()
}
func channelAbuse() {
	ch := make(chan int)
	close(ch)
	close(ch)
}
func wgAbuse() {
	var wg sync.WaitGroup
	wg.Add(1)
	wg.Wait()
}
func useAfterRelease() int {
	r := Acquire()
	r.Release()
	return r.n
}
func stamp() int64 {
	return time.Now().UnixNano()
}
`
	// The corpus/ package path puts the fixture inside wallclock's
	// deterministic cone.
	got := analyzeSrcPath(t, "corpus/wallclock_broken", src, All()...)
	fired := make(map[string]bool)
	for _, d := range got {
		fired[d.Rule] = true
	}
	for _, a := range All() {
		if !fired[a.Name] {
			t.Errorf("analyzer %s did not fire on the broken fixture; diagnostics:\n%s", a.Name, formatDiags(got))
		}
	}
}

// TestSuppressionMechanics pins the comment placement contract: a
// //vqlint:ignore covers its own line and the next, names specific rules or
// "all", and does not leak beyond that.
func TestSuppressionMechanics(t *testing.T) {
	const src = `package fixture
func trailing(a, b float64) bool {
	return a == b //vqlint:ignore floatcmp trailing placement
}
func standalone(a, b float64) bool {
	//vqlint:ignore floatcmp standalone placement
	return a == b
}
func wildcard(a, b float64) bool {
	return a == b //vqlint:ignore all wildcard
}
func wrongRule(a, b float64) bool {
	return a == b //vqlint:ignore errdrop names a different rule
}
func outOfRange(a, b float64) bool {
	//vqlint:ignore floatcmp two lines above the finding

	return a == b
}
`
	got := analyzeSrc(t, src, FloatCmp)
	if len(got) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (wrongRule and outOfRange):\n%s", len(got), formatDiags(got))
	}
}

// TestBlockSuppression pins the //vqlint:ignore-start / ignore-end contract:
// a well-formed block suppresses the named rules between its markers and
// nothing outside them, and every malformed shape — end without start, a
// start with no rule list, a nested start, a block left open at EOF — is
// itself reported under the "vqlint" rule rather than silently changing what
// gets suppressed.
func TestBlockSuppression(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want map[string]int // rule → expected diagnostic count
	}{
		{
			name: "valid block suppresses inside only",
			src: `package fixture
func eq(a, b float64) bool {
	//vqlint:ignore-start floatcmp generated comparison table
	if a == b {
		return true
	}
	//vqlint:ignore-end
	return a != b
}
`,
			want: map[string]int{"floatcmp": 1},
		},
		{
			name: "end without start",
			src: `package fixture
//vqlint:ignore-end
func eq(a, b float64) bool { return a == b }
`,
			want: map[string]int{"vqlint": 1, "floatcmp": 1},
		},
		{
			name: "start without rule list",
			src: `package fixture
//vqlint:ignore-start
func eq(a, b float64) bool { return a == b }
//vqlint:ignore-end
`,
			// The bare start is rejected, so no block ever opens: the end is
			// then also orphaned, and the finding between them comes through.
			want: map[string]int{"vqlint": 2, "floatcmp": 1},
		},
		{
			name: "nested start rejected but outer block holds",
			src: `package fixture
func eq(a, b float64) bool {
	//vqlint:ignore-start floatcmp outer
	//vqlint:ignore-start floatcmp inner
	if a == b {
		return true
	}
	//vqlint:ignore-end
	return false
}
`,
			want: map[string]int{"vqlint": 1},
		},
		{
			name: "unclosed block suppresses nothing",
			src: `package fixture
func eq(a, b float64) bool {
	//vqlint:ignore-start floatcmp forgot to close
	return a == b
}
`,
			want: map[string]int{"vqlint": 1, "floatcmp": 1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := analyzeSrc(t, tc.src, FloatCmp)
			counts := make(map[string]int)
			for _, d := range got {
				counts[d.Rule]++
			}
			for rule, n := range tc.want {
				if counts[rule] != n {
					t.Errorf("rule %s fired %d times, want %d:\n%s", rule, counts[rule], n, formatDiags(got))
				}
			}
			for rule := range counts {
				if _, ok := tc.want[rule]; !ok {
					t.Errorf("unexpected rule %s:\n%s", rule, formatDiags(got))
				}
			}
		})
	}
}

// TestRatioGuardEpsZero covers the eps.Zero guard recognition, which keys on
// the package path: a fixture type-checked under a path ending in /eps can
// call its own Zero unqualified and ratioguard must honor the guard.
func TestRatioGuardEpsZero(t *testing.T) {
	const src = `package eps
func Zero(x float64) bool { return x < 1e-9 && x > -1e-9 }
func guarded(sum float64, n int) float64 {
	if Zero(float64(n)) {
		return 0
	}
	return sum / float64(n)
}
func unguarded(sum float64, n int) float64 {
	return sum / float64(n)
}
`
	got := analyzeSrcPath(t, "repro/internal/eps", src, RatioGuard)
	if len(got) != 1 || got[0].Rule != "ratioguard" {
		t.Fatalf("want exactly one ratioguard finding (the unguarded division):\n%s", formatDiags(got))
	}
}

// TestDiagnosticString pins the file:line:col rendering.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Rule: "floatcmp", Pos: token.Position{Filename: "x.go", Line: 3, Column: 9}, Msg: "float comparison"}
	if got, want := d.String(), "x.go:3:9: float comparison [floatcmp]"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestByName covers analyzer lookup.
func TestByName(t *testing.T) {
	for _, a := range All() {
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not return the registered analyzer", a.Name)
		}
	}
	if ByName("nosuchrule") != nil {
		t.Error("ByName of an unknown rule should be nil")
	}
}

// TestSelfCheck runs every analyzer over the repository itself and demands
// zero findings: the tree must stay vqlint-clean, and any new finding must
// be fixed or explicitly suppressed with a rationale.
func TestSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository")
	}
	pkgs, err := Load("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	diags := Run(pkgs, All())
	if len(diags) != 0 {
		t.Errorf("repository is not vqlint-clean: %d findings\n%s", len(diags), formatDiags(diags))
	}
}
