package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// cacheSchemaVersion invalidates every cache entry when the on-disk finding
// format or the keying scheme changes shape.
const cacheSchemaVersion = "vqlint-cache-v1"

// CacheEntry names one package selected by a pattern set together with its
// content key: a hash over the analyzer configuration, the toolchain, the
// package's own source bytes, and — transitively — the keys of every
// in-module package it imports. Equal keys guarantee equal findings, so a
// warm CI run can replay stored findings instead of type-checking and
// re-analyzing the package.
type CacheEntry struct {
	// Dir is the package directory on disk.
	Dir string
	// Path is the import path.
	Path string
	// Key is the hex content hash.
	Key string
}

// PlanCache expands patterns exactly as Load does and computes the content
// key of each selected package. Salt folds the run configuration (enabled
// rules, output schema) into every key.
func PlanCache(dir string, patterns []string, salt string) ([]CacheEntry, error) {
	modRoot, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(dir, patterns)
	if err != nil {
		return nil, err
	}
	h := &cacheHasher{
		modRoot: modRoot,
		modPath: modPath,
		salt:    salt,
		keys:    make(map[string]string),
		inProg:  make(map[string]bool),
	}
	var entries []CacheEntry
	for _, d := range dirs {
		names, err := goFileNames(d)
		if err != nil {
			return nil, err
		}
		if len(names) == 0 {
			continue
		}
		path, err := importPath(modRoot, modPath, d)
		if err != nil {
			return nil, err
		}
		key, err := h.keyOf(d)
		if err != nil {
			return nil, err
		}
		entries = append(entries, CacheEntry{Dir: d, Path: path, Key: key})
	}
	return entries, nil
}

type cacheHasher struct {
	modRoot string
	modPath string
	salt    string
	// keys memoizes finished directory hashes; inProg breaks import cycles
	// (invalid Go, but the hasher must still terminate on bad input).
	keys   map[string]string
	inProg map[string]bool
}

// keyOf computes the recursive content key of the package in dir.
func (h *cacheHasher) keyOf(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	if k, ok := h.keys[abs]; ok {
		return k, nil
	}
	if h.inProg[abs] {
		return "", fmt.Errorf("lint: import cycle through %s", dir)
	}
	h.inProg[abs] = true
	defer delete(h.inProg, abs)

	names, err := goFileNames(abs)
	if err != nil {
		return "", err
	}
	hash := sha256.New()
	_, _ = io.WriteString(hash, cacheSchemaVersion+"\n")
	_, _ = io.WriteString(hash, h.salt+"\n")
	_, _ = io.WriteString(hash, runtime.Version()+"\n")
	if p, err := importPath(h.modRoot, h.modPath, abs); err == nil {
		_, _ = io.WriteString(hash, p+"\n")
	}
	depDirs := make(map[string]bool)
	for _, name := range names {
		full := filepath.Join(abs, name)
		data, err := os.ReadFile(full)
		if err != nil {
			return "", err
		}
		_, _ = fmt.Fprintf(hash, "file %s %d\n", name, len(data))
		_, _ = hash.Write(data)
		for _, dep := range h.moduleImports(full) {
			depDirs[dep] = true
		}
	}
	// Fold in dependency keys in sorted order so the hash is stable.
	deps := make([]string, 0, len(depDirs))
	for d := range depDirs {
		deps = append(deps, d)
	}
	sort.Strings(deps)
	for _, d := range deps {
		dk, err := h.keyOf(d)
		if err != nil {
			return "", err
		}
		_, _ = fmt.Fprintf(hash, "dep %s %s\n", d, dk)
	}
	key := hex.EncodeToString(hash.Sum(nil))
	h.keys[abs] = key
	return key, nil
}

// moduleImports returns the directories of in-module packages the file
// imports. Parse errors are ignored here — the analysis load will surface
// them with a real diagnostic; an unparseable file simply contributes its
// raw bytes to the hash.
func (h *cacheHasher) moduleImports(file string) []string {
	f, err := parser.ParseFile(token.NewFileSet(), file, nil, parser.ImportsOnly)
	if err != nil {
		return nil
	}
	var dirs []string
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		if p == h.modPath {
			dirs = append(dirs, h.modRoot)
			continue
		}
		if rest, ok := strings.CutPrefix(p, h.modPath+"/"); ok {
			dirs = append(dirs, filepath.Join(h.modRoot, filepath.FromSlash(rest)))
		}
	}
	return dirs
}
