package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/cfg"
	"repro/internal/lint/flow"
	"repro/internal/lint/summary"
)

// PoolRelease reports pooled values that can leak: a value obtained from a
// registered acquire function (a function named `Acquire` or `NewTable`
// whose result has a `Release` method, or a `sync.Pool` `Get`) must reach
// `Release`/`Put` on every non-panicking exit path. The epoch engine's
// cktable.Table and the collector's digest buffers live in sync.Pools
// precisely to keep the steady state allocation-free; one early-return path
// that skips Release silently turns the pool into a leak and the zero-alloc
// claim into fiction — without failing any test.
//
// The analysis is a forward may-leak problem over the CFG: each tracked
// variable is Unreleased from its acquire until a release (`x.Release()`,
// `pool.Put(x)`, or the deferred forms) or an ownership escape. A value
// escapes — and stops being this function's obligation — when it is
// returned, stored into a field/element/composite literal, sent on a
// channel, aliased, or has its address taken. Passing the value as an
// ordinary call argument is NOT an escape (callees like
// cluster.BuildView(tbl, …) borrow, they do not take ownership). Variables
// captured by nested function literals are not tracked at all. Paths that
// end in panic/os.Exit are exempt (crash paths owe the pool nothing).
var PoolRelease = &Analyzer{
	Name: "poolrelease",
	Doc:  "pooled value acquired here does not reach Release/Put on every exit path",
	Run:  runPoolRelease,
}

// poolAcquireNames registers the function/method names whose results carry
// a Release obligation. A name match alone is not enough: the result type
// must itself have a Release method (sync.Pool Get is the exception, paired
// with Put).
var poolAcquireNames = map[string]bool{
	"Acquire":  true,
	"NewTable": true,
}

// prFact tracks one acquired variable on the current path set.
type prFact struct {
	released bool
	// acquiredAt positions the acquire for the diagnostic.
	acquiredAt token.Pos
	// what renders the acquire call ("cktable.Acquire").
	what string
	// guard is the ok variable of a comma-ok acquire
	// (`x, ok := pool.Get().(*T)`): on the ok-false edge the assertion
	// failed and x is nil, so the obligation is dropped there.
	guard *types.Var
}

type prState map[*types.Var]prFact

func prClone(s prState) prState {
	c := make(prState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func prEqual(a, b prState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// prJoin: a variable unreleased on any incoming path is unreleased; one
// known only as released (or absent — no obligation) stays released.
func prJoin(dst, src prState) prState {
	for k, sv := range src {
		dv, ok := dst[k]
		if !ok || (!sv.released && dv.released) {
			dst[k] = sv
		}
	}
	return dst
}

func runPoolRelease(p *Pass) {
	for _, f := range p.Files {
		for _, fn := range functionsIn(f) {
			poolReleaseFunc(p, fn)
		}
	}
}

func poolReleaseFunc(p *Pass, fn funcScope) {
	caps := capturedVars(p, fn.body)
	g := cfg.New(fn.body)
	prob := flow.Problem[prState]{
		Boundary: func() prState { return prState{} },
		Transfer: func(b *cfg.Block, s prState) prState {
			prTransfer(p, b, g, s, caps, nil)
			return s
		},
		Edge: func(from *cfg.Block, succIdx int, s prState) prState {
			if from.Branch == cfg.Cond && from.Cond != nil && succIdx <= 1 {
				prRefine(p, s, from.Cond, succIdx == 0)
			}
			return s
		},
		Join:  prJoin,
		Equal: prEqual,
		Clone: prClone,
	}
	res := flow.Solve(g, prob)
	for _, b := range g.Reachable() {
		in, ok := res.In[b]
		if !ok {
			continue
		}
		prTransfer(p, b, g, prClone(in), caps, p.Reportf)
	}
}

func prTransfer(p *Pass, b *cfg.Block, g *cfg.Graph, s prState, caps map[*types.Var]bool, report func(token.Pos, string, ...any)) {
	for _, n := range b.Nodes {
		switch n := n.(type) {
		case *ast.AssignStmt:
			prEscapeScan(p, s, n.Rhs)
			prHandleAssign(p, s, n, caps, report)

		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						prEscapeScan(p, s, vs.Values)
						prHandleValueSpec(p, s, vs, caps)
					}
				}
			}

		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				prApplyRelease(p, s, call)
			}

		case *ast.DeferStmt:
			prApplyRelease(p, s, n.Call)

		case *ast.GoStmt:
			// The goroutine outlives this path: everything it mentions
			// escapes.
			prMarkAllIdents(p, s, n.Call)

		case *ast.SendStmt:
			prMarkAllIdents(p, s, n.Value)

		case *ast.ReturnStmt:
			// Any tracked value mentioned in the results transfers (or may
			// transfer) ownership to the caller first; then everything
			// still unreleased on this path is a leak.
			for _, r := range n.Results {
				prMarkAllIdents(p, s, r)
			}
			if report != nil {
				prCheckExit(p, s, n.Pos(), "this return", report)
			}

		case *ast.RangeStmt:
			// Key/Value rebinding kills any tracked obligation on those
			// names (an acquired value should never be a range variable,
			// but stay sound).
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if id, ok := e.(*ast.Ident); ok {
					if v, ok := p.Info.Defs[id].(*types.Var); ok {
						delete(s, v)
					}
				}
			}

		default:
			// Condition expressions and other atomic nodes: composite
			// literals or address-of mentions still escape.
			if e, ok := n.(ast.Expr); ok {
				prEscapeScan(p, s, []ast.Expr{e})
			}
		}
	}
	if report != nil && blockFallsToExit(b, g) {
		prCheckExit(p, s, g.End, "the end of the function", report)
	}
}

func prCheckExit(p *Pass, s prState, pos token.Pos, where string, report func(token.Pos, string, ...any)) {
	for v, fact := range s {
		if fact.released {
			continue
		}
		report(pos, "%s acquired from %s (line %d) does not reach Release/Put on the path through %s",
			v.Name(), fact.what, p.Fset.Position(fact.acquiredAt).Line, where)
	}
}

// prHandleAssign applies an assignment: kills and re-gens tracked LHS
// variables, and begins tracking acquire results assigned to plain local
// identifiers.
func prHandleAssign(p *Pass, s prState, n *ast.AssignStmt, caps map[*types.Var]bool, report func(token.Pos, string, ...any)) {
	// Pair up LHS and RHS. The comma-ok form (x, ok := pool.Get().(*T))
	// and the multi-result call keep the acquire in Rhs[0].
	for i, lhs := range n.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		v := prObjOf(p, id)
		if v == nil {
			continue
		}
		if old, tracked := s[v]; tracked && !old.released && report != nil {
			report(id.Pos(), "%s is reassigned while the value acquired from %s (line %d) is still unreleased",
				v.Name(), old.what, p.Fset.Position(old.acquiredAt).Line)
		}
		delete(s, v)
		var rhs ast.Expr
		if len(n.Rhs) == len(n.Lhs) {
			rhs = n.Rhs[i]
		} else if len(n.Rhs) == 1 && i == 0 {
			rhs = n.Rhs[0]
		}
		if rhs == nil || caps[v] {
			continue
		}
		if what, ok := prAcquireExpr(p, rhs); ok {
			f := prFact{acquiredAt: rhs.Pos(), what: what}
			// Comma-ok acquire: remember the ok variable so the branch
			// refinement can drop the obligation on the assertion-failed
			// edge (x is nil there).
			if len(n.Lhs) == 2 && len(n.Rhs) == 1 && i == 0 {
				if _, isAssert := unparen(n.Rhs[0]).(*ast.TypeAssertExpr); isAssert {
					if okID, isIdent := n.Lhs[1].(*ast.Ident); isIdent && okID.Name != "_" {
						f.guard = prObjOf(p, okID)
					}
				}
			}
			s[v] = f
		}
	}
}

// prRefine narrows the state flowing along one branch edge of a Cond block.
// Two proofs of nil-ness drop an obligation: the false edge of a comma-ok
// guard recorded at the acquire, and an explicit `x == nil` / `x != nil`
// test. A nil value was never taken from the pool, so it owes no Release.
func prRefine(p *Pass, s prState, cond ast.Expr, truthy bool) {
	if len(s) == 0 {
		return
	}
	switch e := unparen(cond).(type) {
	case *ast.Ident:
		if truthy {
			return
		}
		v := prObjOf(p, e)
		if v == nil {
			return
		}
		for tracked, f := range s {
			if f.guard == v {
				delete(s, tracked)
			}
		}
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			prRefine(p, s, e.X, !truthy)
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.EQL, token.NEQ:
			var id *ast.Ident
			if prIsNil(p, e.Y) {
				id, _ = unparen(e.X).(*ast.Ident)
			} else if prIsNil(p, e.X) {
				id, _ = unparen(e.Y).(*ast.Ident)
			}
			if id == nil {
				return
			}
			if nilHere := (e.Op == token.EQL) == truthy; nilHere {
				if v := prObjOf(p, id); v != nil {
					delete(s, v)
				}
			}
		case token.LAND:
			if truthy {
				prRefine(p, s, e.X, true)
				prRefine(p, s, e.Y, true)
			}
		case token.LOR:
			if !truthy {
				prRefine(p, s, e.X, false)
				prRefine(p, s, e.Y, false)
			}
		}
	}
}

func prIsNil(p *Pass, e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := p.Info.Uses[id].(*types.Nil)
	return isNil
}

func prHandleValueSpec(p *Pass, s prState, vs *ast.ValueSpec, caps map[*types.Var]bool) {
	for i, name := range vs.Names {
		v, _ := p.Info.Defs[name].(*types.Var)
		if v == nil || caps[v] || i >= len(vs.Values) {
			continue
		}
		if what, ok := prAcquireExpr(p, vs.Values[i]); ok {
			s[v] = prFact{acquiredAt: vs.Values[i].Pos(), what: what}
		}
	}
}

// prObjOf resolves an identifier to the local variable it uses or defines.
func prObjOf(p *Pass, id *ast.Ident) *types.Var {
	var obj types.Object
	if o, ok := p.Info.Defs[id]; ok {
		obj = o
	} else {
		obj = p.Info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	return v
}

// prAcquireExpr reports whether e (possibly behind a type assertion or
// parens) is a registered acquire call, returning the rendered callee.
func prAcquireExpr(p *Pass, e ast.Expr) (string, bool) {
	for {
		switch w := e.(type) {
		case *ast.ParenExpr:
			e = w.X
		case *ast.TypeAssertExpr:
			e = w.X
		default:
			call, ok := e.(*ast.CallExpr)
			if !ok {
				return "", false
			}
			return prAcquireCall(p, call)
		}
	}
}

func prAcquireCall(p *Pass, call *ast.CallExpr) (string, bool) {
	// sync.Pool Get.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Get" && isSyncPool(p, sel.X) {
		return types.ExprString(call.Fun), true
	}
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return "", false
	}
	if !poolAcquireNames[name] {
		return "", false
	}
	// The result type must itself carry a Release method; this keeps an
	// unrelated NewTable from creating phantom obligations.
	t := p.TypeOf(call)
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return "", false
		}
		t = tup.At(0).Type()
	}
	if t == nil || !hasReleaseMethod(t) {
		return "", false
	}
	return types.ExprString(call.Fun), true
}

func hasReleaseMethod(t types.Type) bool {
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, "Release")
	_, ok := obj.(*types.Func)
	return ok
}

func isSyncPool(p *Pass, e ast.Expr) bool {
	t := p.TypeOf(e)
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "Pool"
}

// prApplyRelease marks tracked variables released by this call:
// `x.Release()` or `pool.Put(x)` (or any call named Put whose argument is a
// tracked identifier, covering typed pool wrappers) — and, interprocedurally,
// any in-package callee whose summary proves it releases the parameter the
// tracked value is passed as, on every path.
func prApplyRelease(p *Pass, s prState, call *ast.CallExpr) {
	prApplyCalleeReleases(p, s, call)
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	switch sel.Sel.Name {
	case "Release":
		if id, ok := sel.X.(*ast.Ident); ok {
			if v := prObjOf(p, id); v != nil {
				if f, tracked := s[v]; tracked {
					f.released = true
					s[v] = f
				}
			}
		}
	case "Put":
		for _, arg := range call.Args {
			if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
				arg = u.X
			}
			if id, ok := arg.(*ast.Ident); ok {
				if v := prObjOf(p, id); v != nil {
					if f, tracked := s[v]; tracked {
						f.released = true
						s[v] = f
					}
				}
			}
		}
	}
}

// prApplyCalleeReleases discharges obligations through a callee summary: a
// helper that provably calls Release/Put on its i-th parameter (or its
// receiver) on every path releases the argument here, so wrappers like
// `cleanup(tbl)` no longer read as leaks.
func prApplyCalleeReleases(p *Pass, s prState, call *ast.CallExpr) {
	if len(s) == 0 {
		return
	}
	sum := p.Sums.ForCall(call)
	if sum == nil || len(sum.Releases) == 0 {
		return
	}
	release := func(e ast.Expr) {
		if id, ok := unparen(e).(*ast.Ident); ok {
			if v := prObjOf(p, id); v != nil {
				if f, tracked := s[v]; tracked {
					f.released = true
					s[v] = f
				}
			}
		}
	}
	for ref := range sum.Releases {
		if ref.Path != "" {
			continue // a field of the argument, not the argument itself
		}
		if ref.Param == summary.Recv {
			if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
				release(sel.X)
			}
			continue
		}
		if ref.Param >= 0 && ref.Param < len(call.Args) {
			release(call.Args[ref.Param])
		}
	}
}

// prMarkAllIdents discharges every tracked identifier mentioned anywhere in
// n. Used where the whole expression outlives or leaves the current path
// (return results, goroutine calls, channel sends): conservatively treating
// any mention as an ownership transfer trades a rare false negative for
// zero false positives on `return view(t)`-shaped code.
func prMarkAllIdents(p *Pass, s prState, n ast.Node) {
	if len(s) == 0 || n == nil {
		return
	}
	inspectCFGNode(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if v := prObjOf(p, id); v != nil {
				if f, tracked := s[v]; tracked {
					f.released = true
					s[v] = f
				}
			}
		}
		return true
	})
}

// prEscapeScan releases this function from obligations whose value escapes
// through any of the given expressions: a bare alias of the tracked
// identifier, a composite literal, an address-of, an index/field store (the
// tracked ident as the RHS root), or anything inside a go statement. Plain
// call arguments do not escape — see the analyzer comment.
func prEscapeScan(p *Pass, s prState, exprs []ast.Expr) {
	if len(s) == 0 {
		return
	}
	markDone := func(id *ast.Ident) {
		if v := prObjOf(p, id); v != nil {
			if f, tracked := s[v]; tracked {
				f.released = true
				s[v] = f
			}
		}
	}
	for _, e := range exprs {
		if e == nil {
			continue
		}
		// A bare tracked identifier as a whole RHS/result/operand value is
		// an ownership transfer.
		if id, ok := unparen(e).(*ast.Ident); ok {
			markDone(id)
			continue
		}
		inspectCFGNode(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					target := elt
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						target = kv.Value
					}
					if id, ok := unparen(target).(*ast.Ident); ok {
						markDone(id)
					}
				}
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					if id, ok := unparen(n.X).(*ast.Ident); ok {
						markDone(id)
					}
				}
			case *ast.GoStmt:
				// Handled at the statement level; nothing extra here.
			}
			return true
		})
	}
}

func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}
