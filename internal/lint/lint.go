// Package lint is a repo-specific static-analysis framework built entirely
// on the standard library (go/parser, go/ast, go/types). It exists because
// the analysis pipeline is numeric, map-heavy, and increasingly concurrent:
// the failure modes that corrupt its results — float equality on thresholds,
// nondeterministic map iteration feeding reports, copied mutexes, leaked
// goroutines, dropped errors — do not fail tests, so they are locked out by
// tooling instead. cmd/vqlint runs every registered analyzer over the tree
// and exits non-zero on findings, gating CI.
//
// Analyzers report diagnostics with a stable rule ID. A finding can be
// suppressed by a trailing or preceding comment:
//
//	//vqlint:ignore <rule>[,<rule>...] [rationale]
//
// The comment suppresses the named rules (or "all") on its own line and on
// the line that follows, so both trailing and standalone placements work.
// For generated or fixture-heavy regions there is a block form:
//
//	//vqlint:ignore-start <rule>[,<rule>...] [rationale]
//	...
//	//vqlint:ignore-end
//
// Blocks must be flat and closed: a nested ignore-start, an ignore-end with
// no open block, a start with no rule list, or a block left open at end of
// file is itself reported as a finding under the "vqlint" rule — a
// malformed suppression silently suppressing nothing (or everything) is
// exactly the kind of bug a linter must not have.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/lint/callgraph"
	"repro/internal/lint/summary"
)

// Diagnostic is one finding: a rule ID, a position, and a message.
type Diagnostic struct {
	Rule string
	Pos  token.Position
	Msg  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Msg, d.Rule)
}

// Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	// Name is the stable rule ID used in diagnostics and suppressions.
	Name string
	// Doc is a one-line description of what the rule catches.
	Doc string
	// Run inspects the package and reports findings through the pass.
	Run func(*Pass)
}

// Pass is the per-(package, analyzer) context handed to Analyzer.Run.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Sums holds the interprocedural summaries of the package's declared
	// functions (nil only in tests that construct a Pass by hand). Analyzers
	// use it to see through in-package helpers: a Release inside a helper, a
	// lock-courier's net delta, a spawned worker that can never terminate.
	Sums *summary.Set

	rule       string
	report     func(Diagnostic)
	suppressed func(rule string, line int, file string) bool
}

// Reportf records a finding at pos unless a suppression comment covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppressed != nil && p.suppressed(p.rule, position.Line, position.Filename) {
		return
	}
	p.report(Diagnostic{Rule: p.rule, Pos: position, Msg: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of expression e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// All returns the registered analyzers in a stable order. The CFG analyzers
// (detorder, lockbalance, poolrelease, poollifetime, errflow, ratioguard)
// are the path-sensitive tier; lockbalance subsumes the v1 syntactic
// lockheld rule and detorder the v1 maporder rule. The concurrency and
// determinism analyzers (goleak, chandiscipline, wgbalance, wallclock) sit
// on the interprocedural tier and consume the per-function summaries in
// Pass.Sums.
func All() []*Analyzer {
	return []*Analyzer{
		FloatCmp,
		DetOrder,
		MutexCopy,
		LockBalance,
		PoolRelease,
		PoolLifetime,
		ErrFlow,
		RatioGuard,
		CtxCheck,
		ErrDrop,
		GoLeak,
		ChanDiscipline,
		WgBalance,
		WallClock,
	}
}

// ByName returns the analyzer with the given rule ID, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// PkgTiming records how long one package took to analyze: total wall time
// plus a per-rule breakdown. The pseudo-rule "(setup)" covers the work
// shared by every analyzer — the suppression table and the interprocedural
// summaries.
type PkgTiming struct {
	Path    string                   `json:"path"`
	Elapsed time.Duration            `json:"elapsedNs"`
	Rules   map[string]time.Duration `json:"ruleNs,omitempty"`
	// Cached marks a package whose findings were replayed from the content
	// cache (-cache) without re-analysis; Elapsed and Rules are then zero.
	Cached bool `json:"cached,omitempty"`
}

// runPackage analyzes one package: it builds the suppression table and the
// interprocedural summaries, then runs every analyzer, timing each. The
// returned slice is in analyzer-then-report order; callers sort.
func runPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, map[string]time.Duration) {
	var diags []Diagnostic
	rules := make(map[string]time.Duration, len(analyzers)+1)
	start := time.Now()
	sup, bad := buildSuppressions(pkg.Fset, pkg.Files)
	diags = append(diags, bad...)
	sums := summary.Compute(callgraph.Build(pkg.Files, pkg.Info), pkg.Info)
	rules["(setup)"] = time.Since(start)
	for _, a := range analyzers {
		pass := &Pass{
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			Info:       pkg.Info,
			Sums:       sums,
			rule:       a.Name,
			report:     func(d Diagnostic) { diags = append(diags, d) },
			suppressed: sup.covers,
		}
		start = time.Now()
		a.Run(pass)
		rules[a.Name] += time.Since(start)
	}
	return diags, rules
}

// Run applies the analyzers to every package and returns the findings
// sorted by file, line, column, then rule.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunConcurrent(pkgs, analyzers, 1)
	return diags
}

// RunConcurrent is Run with a bounded worker pool over packages. Loading is
// the caller's problem (the source importer is not safe for concurrent use);
// analysis of already-type-checked packages is read-only per package, so
// packages can run in parallel. Results land in per-package slots, so the
// final ordering is deterministic regardless of scheduling. The second
// result reports per-package wall time, in the input package order.
func RunConcurrent(pkgs []*Package, analyzers []*Analyzer, workers int) ([]Diagnostic, []PkgTiming) {
	if workers < 1 {
		workers = 1
	}
	if workers > len(pkgs) && len(pkgs) > 0 {
		workers = len(pkgs)
	}
	slots := make([][]Diagnostic, len(pkgs))
	timings := make([]PkgTiming, len(pkgs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				start := time.Now()
				diags, rules := runPackage(pkgs[i], analyzers)
				slots[i] = diags
				timings[i] = PkgTiming{Path: pkgs[i].Path, Elapsed: time.Since(start), Rules: rules}
			}
		}()
	}
	for i := range pkgs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	var diags []Diagnostic
	for _, s := range slots {
		diags = append(diags, s...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	return diags, timings
}

// Suppression comment markers. The block markers must be matched before the
// line marker: they share its prefix.
const (
	ignorePrefix      = "//vqlint:ignore"
	ignoreStartPrefix = "//vqlint:ignore-start"
	ignoreEndPrefix   = "//vqlint:ignore-end"
)

// configRule is the rule ID under which malformed suppression comments are
// reported.
const configRule = "vqlint"

// supRange is one //vqlint:ignore-start…ignore-end region (line numbers
// inclusive on both marker lines).
type supRange struct {
	start, end int
	rules      map[string]bool
}

type fileSup struct {
	lines  map[int]map[string]bool
	ranges []supRange
}

// suppressions maps file → its line- and block-form suppression records
// ("all" matches every rule).
type suppressions map[string]*fileSup

func (s suppressions) covers(rule string, line int, file string) bool {
	fs := s[file]
	if fs == nil {
		return false
	}
	if rules := fs.lines[line]; rules != nil && (rules[rule] || rules["all"]) {
		return true
	}
	for _, r := range fs.ranges {
		if line >= r.start && line <= r.end && (r.rules[rule] || r.rules["all"]) {
			return true
		}
	}
	return false
}

// cutMarker matches a marker followed by a word boundary, so that
// "ignore-start" is never parsed as the line form "ignore" with a "-start"
// rule list.
func cutMarker(text, marker string) (string, bool) {
	rest, ok := strings.CutPrefix(text, marker)
	if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return "", false
	}
	return rest, true
}

func parseRuleList(field string) map[string]bool {
	rules := make(map[string]bool)
	for _, r := range strings.Split(field, ",") {
		if r = strings.TrimSpace(r); r != "" {
			rules[r] = true
		}
	}
	return rules
}

// buildSuppressions collects the suppression comments of a package's files
// and reports malformed block comments as diagnostics (see the package
// comment).
func buildSuppressions(fset *token.FileSet, files []*ast.File) (suppressions, []Diagnostic) {
	sup := make(suppressions)
	var bad []Diagnostic
	reportf := func(pos token.Position, format string, args ...any) {
		bad = append(bad, Diagnostic{Rule: configRule, Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
	fileFor := func(name string) *fileSup {
		fs := sup[name]
		if fs == nil {
			fs = &fileSup{lines: make(map[int]map[string]bool)}
			sup[name] = fs
		}
		return fs
	}
	for _, f := range files {
		var open *supRange
		openAt := 0
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := fset.Position(c.Pos())
				if _, ok := cutMarker(c.Text, ignoreEndPrefix); ok {
					if open == nil {
						reportf(pos, "%s without a matching %s", ignoreEndPrefix, ignoreStartPrefix)
						continue
					}
					open.end = pos.Line
					fileFor(pos.Filename).ranges = append(fileFor(pos.Filename).ranges, *open)
					open = nil
					continue
				}
				if rest, ok := cutMarker(c.Text, ignoreStartPrefix); ok {
					fields := strings.Fields(rest)
					if len(fields) == 0 {
						reportf(pos, "%s needs a rule list (or \"all\")", ignoreStartPrefix)
						continue
					}
					if open != nil {
						reportf(pos, "nested %s: the block opened at line %d is still open", ignoreStartPrefix, openAt)
						continue
					}
					open = &supRange{start: pos.Line, rules: parseRuleList(fields[0])}
					openAt = pos.Line
					continue
				}
				rest, ok := cutMarker(c.Text, ignorePrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				// Cover the comment's own line (trailing placement) and the
				// next line (standalone placement).
				fs := fileFor(pos.Filename)
				for _, line := range []int{pos.Line, pos.Line + 1} {
					rules := fs.lines[line]
					if rules == nil {
						rules = make(map[string]bool)
						fs.lines[line] = rules
					}
					for r := range parseRuleList(fields[0]) {
						rules[r] = true
					}
				}
			}
		}
		if open != nil {
			end := fset.Position(f.End())
			reportf(end, "%s at line %d is never closed by %s", ignoreStartPrefix, openAt, ignoreEndPrefix)
		}
	}
	return sup, bad
}
