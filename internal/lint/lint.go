// Package lint is a repo-specific static-analysis framework built entirely
// on the standard library (go/parser, go/ast, go/types). It exists because
// the analysis pipeline is numeric, map-heavy, and increasingly concurrent:
// the failure modes that corrupt its results — float equality on thresholds,
// nondeterministic map iteration feeding reports, copied mutexes, leaked
// goroutines, dropped errors — do not fail tests, so they are locked out by
// tooling instead. cmd/vqlint runs every registered analyzer over the tree
// and exits non-zero on findings, gating CI.
//
// Analyzers report diagnostics with a stable rule ID. A finding can be
// suppressed by a trailing or preceding comment:
//
//	//vqlint:ignore <rule>[,<rule>...] [rationale]
//
// The comment suppresses the named rules (or "all") on its own line and on
// the line that follows, so both trailing and standalone placements work.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: a rule ID, a position, and a message.
type Diagnostic struct {
	Rule string
	Pos  token.Position
	Msg  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Msg, d.Rule)
}

// Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	// Name is the stable rule ID used in diagnostics and suppressions.
	Name string
	// Doc is a one-line description of what the rule catches.
	Doc string
	// Run inspects the package and reports findings through the pass.
	Run func(*Pass)
}

// Pass is the per-(package, analyzer) context handed to Analyzer.Run.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	rule       string
	report     func(Diagnostic)
	suppressed func(rule string, line int, file string) bool
}

// Reportf records a finding at pos unless a suppression comment covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppressed != nil && p.suppressed(p.rule, position.Line, position.Filename) {
		return
	}
	p.report(Diagnostic{Rule: p.rule, Pos: position, Msg: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of expression e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// All returns the registered analyzers in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		FloatCmp,
		MapOrder,
		MutexCopy,
		LockHeld,
		CtxCheck,
		ErrDrop,
	}
}

// ByName returns the analyzer with the given rule ID, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run applies the analyzers to every package and returns the findings
// sorted by file, line, column, then rule.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		sup := buildSuppressions(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				Info:       pkg.Info,
				rule:       a.Name,
				report:     func(d Diagnostic) { diags = append(diags, d) },
				suppressed: sup.covers,
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	return diags
}

// ignorePrefix introduces a suppression comment.
const ignorePrefix = "//vqlint:ignore"

// suppressions maps file → line → suppressed rule set ("all" matches every
// rule).
type suppressions map[string]map[int]map[string]bool

func (s suppressions) covers(rule string, line int, file string) bool {
	rules := s[file][line]
	return rules != nil && (rules[rule] || rules["all"])
}

func buildSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	sup := make(suppressions)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := sup[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					sup[pos.Filename] = byLine
				}
				// Cover the comment's own line (trailing placement) and the
				// next line (standalone placement).
				for _, line := range []int{pos.Line, pos.Line + 1} {
					rules := byLine[line]
					if rules == nil {
						rules = make(map[string]bool)
						byLine[line] = rules
					}
					for _, r := range strings.Split(fields[0], ",") {
						if r = strings.TrimSpace(r); r != "" {
							rules[r] = true
						}
					}
				}
			}
		}
	}
	return sup
}
