package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/cfg"
	"repro/internal/lint/flow"
	"repro/internal/lint/summary"
)

// WgBalance reports sync.WaitGroup misuse along control-flow paths:
//
//   - Done without a matching Add (drives the counter negative, which
//     panics) — including a Done hidden in an in-package helper.
//   - Wait that blocks forever: the counter is positive on every path and
//     every Done the function (or a goroutine it spawned) will ever perform
//     has already been credited.
//   - A function returning with a locally-declared WaitGroup's counter
//     still positive — the Adds can never be matched once the variable is
//     unreachable.
//   - Add inside a spawned goroutine on a WaitGroup from the enclosing
//     scope: it races with the parent's Wait, which may find the counter at
//     zero and return before the goroutine runs (the documented misuse).
//
// The accounting convention matches the summary package: a Done performed
// by a goroutine this function spawns is credited immediately at the go
// statement. That is not a happens-before fact — it is exactly what Wait
// guarantees to observe, which is the balance this analyzer checks.
// Counters are tracked per rendered receiver expression as intervals, like
// lockbalance; a key exists only once an Add is seen, so worker-side
// functions that only call Done are never flagged here (their net effect is
// the caller's business, via their summary). Passing the WaitGroup to an
// unknown callee, or to one whose summary lost track of it, poisons the key.
var WgBalance = &Analyzer{
	Name: "wgbalance",
	Doc:  "WaitGroup Add/Done/Wait imbalance: negative counter, Wait that cannot return, or racy Add",
	Run:  runWgBalance,
}

// wgIv bounds the outstanding count (Add minus Done credits) on the paths
// reaching a point.
type wgIv struct{ lo, hi int8 }

type wgState struct {
	iv     map[string]wgIv
	poison map[string]bool
	// seen marks keys that had an Add on some path: an interval normalized
	// away at [0,0] is still "tracked at zero" for Done accounting, as
	// opposed to a worker-side key that never had an Add at all.
	seen map[string]bool
}

func wgNew() wgState {
	return wgState{iv: make(map[string]wgIv), poison: make(map[string]bool), seen: make(map[string]bool)}
}

func wgClone(s wgState) wgState {
	c := wgState{
		iv:     make(map[string]wgIv, len(s.iv)),
		poison: make(map[string]bool, len(s.poison)),
		seen:   make(map[string]bool, len(s.seen)),
	}
	for k, v := range s.iv {
		c.iv[k] = v
	}
	for k := range s.poison {
		c.poison[k] = true
	}
	for k := range s.seen {
		c.seen[k] = true
	}
	return c
}

func wgEqual(a, b wgState) bool {
	if len(a.iv) != len(b.iv) || len(a.poison) != len(b.poison) || len(a.seen) != len(b.seen) {
		return false
	}
	for k, v := range a.iv {
		if b.iv[k] != v {
			return false
		}
	}
	for k := range a.poison {
		if !b.poison[k] {
			return false
		}
	}
	for k := range a.seen {
		if !b.seen[k] {
			return false
		}
	}
	return true
}

// wgJoin hulls the intervals (absent reads as [0,0]) and unions poison and
// seen.
func wgJoin(dst, src wgState) wgState {
	for k := range src.poison {
		dst.poison[k] = true
	}
	for k := range src.seen {
		dst.seen[k] = true
	}
	for k, sv := range src.iv {
		dv, ok := dst.iv[k]
		if !ok {
			dv = wgIv{}
		}
		if sv.lo < dv.lo {
			dv.lo = sv.lo
		}
		if sv.hi > dv.hi {
			dv.hi = sv.hi
		}
		dst.iv[k] = dv
	}
	for k, dv := range dst.iv {
		if _, ok := src.iv[k]; !ok {
			if dv.lo > 0 {
				dv.lo = 0
			}
			if dv.hi < 0 {
				dv.hi = 0
			}
			dst.iv[k] = dv
		}
	}
	for k, v := range dst.iv {
		if v == (wgIv{}) || dst.poison[k] {
			delete(dst.iv, k)
		}
	}
	return dst
}

func (s wgState) credit(k string, d int8) {
	if s.poison[k] {
		return
	}
	iv, ok := s.iv[k]
	if !ok {
		return // Done on an untracked key: the worker side, not ours to judge
	}
	iv.lo, iv.hi = lbClamp(iv.lo+d), lbClamp(iv.hi+d)
	if iv == (wgIv{}) {
		delete(s.iv, k)
	} else {
		s.iv[k] = iv
	}
}

func (s wgState) track(k string, d int8) {
	if s.poison[k] {
		return
	}
	s.seen[k] = true
	iv := s.iv[k]
	iv.lo, iv.hi = lbClamp(iv.lo+d), lbClamp(iv.hi+d)
	s.iv[k] = iv
}

func (s wgState) poisonKey(k string) {
	s.poison[k] = true
	delete(s.iv, k)
}

// poisonPrefix poisons every key derived from the rendered base expression:
// handing out `c` compromises `c.wg` too.
func (s wgState) poisonPrefix(base string) {
	for k := range s.iv {
		if k == base || strings.HasPrefix(k, base+".") {
			s.poisonKey(k)
		}
	}
}

func runWgBalance(p *Pass) {
	for _, f := range p.Files {
		for _, fn := range functionsIn(f) {
			wgBalanceFunc(p, fn)
		}
	}
}

type wgCtx struct {
	pass *Pass
	fn   funcScope
	// local marks rendered keys whose base variable is declared inside this
	// function and never captured by a stored literal: only those get the
	// exit-positive report (an escaping WaitGroup may be Done'd elsewhere).
	local map[string]bool
}

func wgBalanceFunc(p *Pass, fn funcScope) {
	ctx := &wgCtx{pass: p, fn: fn, local: make(map[string]bool)}

	// Pre-pass: classify each WaitGroup key's base variable. Captures by
	// literals that are not the direct body of a go/defer statement mean the
	// variable's lifetime escapes this function's flow.
	captured := capturedVars(p, fn.body)
	ast.Inspect(fn.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		key, _, baseVar, ok := wgCall(p, call)
		if !ok || baseVar == nil {
			return true
		}
		ctx.local[key] = baseVar.Pos() > fn.body.Pos() && baseVar.Pos() < fn.body.End() && !captured[baseVar]
		return true
	})

	g := cfg.New(fn.body)
	prob := flow.Problem[wgState]{
		Boundary: wgNew,
		Transfer: func(b *cfg.Block, s wgState) wgState {
			ctx.transfer(b, g, s, nil)
			return s
		},
		Join:  wgJoin,
		Equal: wgEqual,
		Clone: wgClone,
	}
	res := flow.Solve(g, prob)
	for _, b := range g.Reachable() {
		in, ok := res.In[b]
		if !ok {
			continue
		}
		ctx.transfer(b, g, wgClone(in), p.Reportf)
	}
}

func (ctx *wgCtx) transfer(b *cfg.Block, g *cfg.Graph, s wgState, report func(token.Pos, string, ...any)) {
	for _, n := range b.Nodes {
		switch n := n.(type) {
		case *ast.GoStmt:
			ctx.applyGo(n, s, report)
		case *ast.DeferStmt:
			ctx.applyDefer(n, s, report)
		case *ast.ReturnStmt:
			if report != nil {
				ctx.checkExit(s, n.Pos(), report)
			}
		default:
			inspectCFGNode(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					ctx.applyCall(call, s, report)
				}
				return true
			})
		}
	}
	if report != nil && blockFallsToExit(b, g) {
		ctx.checkExit(s, g.End, report)
	}
}

func (ctx *wgCtx) checkExit(s wgState, pos token.Pos, report func(token.Pos, string, ...any)) {
	for k, iv := range s.iv {
		if iv.lo > 0 && ctx.local[k] {
			report(pos, "%s counter is still positive here on every path: %s.Wait() (or a missing Done) can never be satisfied", k, k)
		}
	}
}

// applyCall interprets one synchronous call: WaitGroup primitives, and
// callee summaries for everything passed onward.
func (ctx *wgCtx) applyCall(call *ast.CallExpr, s wgState, report func(token.Pos, string, ...any)) {
	p := ctx.pass
	if key, op, _, ok := wgCall(p, call); ok {
		switch op {
		case "Add":
			n, known := wgAddCount(p, call)
			if !known {
				s.poisonKey(key)
				return
			}
			if n >= 0 {
				s.track(key, int8(n))
				return
			}
			// Add with a negative constant is a Done in disguise.
			ctx.done(key, int8(-n), call.Pos(), s, report)
		case "Done":
			ctx.done(key, 1, call.Pos(), s, report)
		case "Wait":
			if iv, ok := s.iv[key]; ok && iv.lo > 0 {
				if report != nil {
					report(call.Pos(), "%s.Wait() blocks forever: the counter is positive on every path to here and all Done credits are already counted", key)
				}
				// Nothing past this Wait executes in reality; consume the
				// key so the exit check does not re-report the same bug.
				delete(s.iv, key)
			}
		}
		return
	}
	ctx.applyCalleeDeltas(call, s, false, report)
}

// done applies n Done credits, reporting a guaranteed-negative counter. A
// key absent from iv but present in seen is tracked at exactly [0,0]: its
// Adds and Dones cancelled, so one more Done is the panic.
func (ctx *wgCtx) done(key string, n int8, pos token.Pos, s wgState, report func(token.Pos, string, ...any)) {
	if s.poison[key] {
		return
	}
	iv, tracked := s.iv[key]
	if !tracked {
		if !s.seen[key] {
			return
		}
		iv = wgIv{}
	}
	for ; n > 0; n-- {
		if iv.hi <= 0 {
			if report != nil {
				report(pos, "%s.Done() without a matching Add on any path to here: the counter goes negative and panics", key)
			}
			return // do not cascade further reports from the same site
		}
		iv.lo, iv.hi = lbClamp(iv.lo-1), lbClamp(iv.hi-1)
	}
	if iv == (wgIv{}) {
		delete(s.iv, key)
	} else {
		s.iv[key] = iv
	}
}

// applyGo handles a spawned goroutine: its future Done calls are credited
// immediately (the Wait-observable balance), its Adds are reported as racy,
// and anything else it does to a tracked WaitGroup poisons the key.
func (ctx *wgCtx) applyGo(gs *ast.GoStmt, s wgState, report func(token.Pos, string, ...any)) {
	p := ctx.pass
	if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			key, op, baseVar, ok := wgCall(p, call)
			if !ok {
				return true
			}
			switch op {
			case "Done":
				ctx.done(key, 1, gs.Pos(), s, nil)
			case "Add":
				// An Add on a captured WaitGroup races with the parent's
				// Wait; an Add on the goroutine's own local WaitGroup is fine.
				if baseVar != nil && !(baseVar.Pos() > lit.Body.Pos() && baseVar.Pos() < lit.Body.End()) {
					if report != nil {
						report(call.Pos(), "%s.Add() inside the spawned goroutine races with Wait; call Add before the go statement", key)
					}
					s.poisonKey(key)
				}
			}
			return true
		})
		return
	}
	// go callee(...): negative summary deltas are Done credits; positive
	// ones are Adds happening inside the goroutine — the same race.
	ctx.applyCalleeDeltas(gs.Call, s, true, report)
}

// applyDefer credits deferred Done calls (they run before the caller
// resumes, so exit accounting may count them immediately) — directly, in a
// deferred literal, or through a deferred in-package helper.
func (ctx *wgCtx) applyDefer(d *ast.DeferStmt, s wgState, report func(token.Pos, string, ...any)) {
	p := ctx.pass
	if key, op, _, ok := wgCall(p, d.Call); ok {
		if op == "Done" {
			ctx.done(key, 1, d.Pos(), s, report)
		}
		return
	}
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if key, op, _, ok := wgCall(p, call); ok && op == "Done" {
					ctx.done(key, 1, d.Pos(), s, nil)
				}
			}
			return true
		})
		return
	}
	ctx.applyCalleeDeltas(d.Call, s, false, report)
}

// applyCalleeDeltas maps an in-package callee's WaitGroup deltas onto the
// caller's rendered keys; unknown callees (and callees that lost track of a
// parameter) poison every key reachable through the arguments. spawned
// marks `go callee(...)`: negative deltas become immediate credits, while
// positive deltas are reported as the Add-in-goroutine race.
func (ctx *wgCtx) applyCalleeDeltas(call *ast.CallExpr, s wgState, spawned bool, report func(token.Pos, string, ...any)) {
	p := ctx.pass
	argBase := func(idx int) (string, bool) {
		if idx == summary.Recv {
			if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
				return renderWgBase(sel.X), true
			}
			return "", false
		}
		if idx < 0 || idx >= len(call.Args) {
			return "", false
		}
		return renderWgBase(call.Args[idx]), true
	}
	poisonAll := func() {
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			if _, isMethod := p.Info.Selections[sel]; isMethod {
				s.poisonPrefix(renderWgBase(sel.X))
			}
		}
		for _, arg := range call.Args {
			s.poisonPrefix(renderWgBase(arg))
		}
	}

	sum := p.Sums.ForCall(call)
	if sum == nil {
		poisonAll()
		return
	}
	// Poison what the callee itself lost track of, then apply its deltas.
	uncertain := make(map[int]bool)
	for _, idx := range wgParamIndices(call, sum) {
		if sum.ParamUncertain(idx) {
			uncertain[idx] = true
			if base, ok := argBase(idx); ok {
				s.poisonPrefix(base)
			}
		}
	}
	for ref, d := range sum.WgDelta {
		if uncertain[ref.Param] {
			continue
		}
		base, ok := argBase(ref.Param)
		if !ok {
			continue
		}
		key := base + ref.Path
		switch {
		case spawned && d > 0:
			if report != nil {
				report(call.Pos(), "%s adds to %s inside the spawned goroutine, racing with Wait; Add before the go statement", calleeLabel(call), key)
			}
			s.poisonKey(key)
		case spawned:
			ctx.done(key, int8(-d), call.Pos(), s, nil)
		case d > 0:
			s.track(key, int8(d))
		case d < 0:
			ctx.done(key, int8(-d), call.Pos(), s, report)
		}
	}
}

// wgParamIndices lists the parameter indices (plus Recv for methods) a call
// site actually binds — the ones whose uncertainty matters here.
func wgParamIndices(call *ast.CallExpr, sum *summary.Summary) []int {
	idxs := make([]int, 0, len(call.Args)+1)
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && sel != nil {
		idxs = append(idxs, summary.Recv)
	}
	for i := range call.Args {
		idxs = append(idxs, i)
	}
	return idxs
}

// renderWgBase renders an argument expression as a key base, unwrapping the
// address-of that pointer-passing adds (`&wg` and `wg` name the same
// counter).
func renderWgBase(e ast.Expr) string {
	e = unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = unparen(u.X)
	}
	return types.ExprString(e)
}

// wgCall matches <expr>.Add/Done/Wait() on sync.WaitGroup, returning the
// rendered receiver key and the base identifier's object (nil when the base
// is not a simple identifier chain).
func wgCall(p *Pass, call *ast.CallExpr) (key, op string, baseVar *types.Var, ok bool) {
	sel, isSel := unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", nil, false
	}
	switch sel.Sel.Name {
	case "Add", "Done", "Wait":
	default:
		return "", "", nil, false
	}
	t := p.TypeOf(sel.X)
	if t == nil {
		return "", "", nil, false
	}
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" || named.Obj().Name() != "WaitGroup" {
		return "", "", nil, false
	}
	return types.ExprString(sel.X), sel.Sel.Name, baseIdentVar(p, sel.X), true
}

// wgAddCount extracts Add's constant argument.
func wgAddCount(p *Pass, call *ast.CallExpr) (int, bool) {
	if len(call.Args) != 1 {
		return 0, false
	}
	tv, ok := p.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	v, exact := constant.Int64Val(tv.Value)
	if !exact || v <= -lbCap || v >= lbCap {
		return 0, false
	}
	return int(v), true
}

// baseIdentVar walks down an expression to its base identifier's variable.
func baseIdentVar(p *Pass, e ast.Expr) *types.Var {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			v, _ := p.Info.Uses[x].(*types.Var)
			return v
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}
