package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildFunc parses "package p\n" + src and builds the CFG of the first
// function declaration. The builder is purely syntactic, so no type
// checking is needed.
func buildFunc(t *testing.T, src string) *Graph {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return New(fd.Body)
		}
	}
	t.Fatal("fixture has no function declaration")
	return nil
}

// callName renders the callee of a call statement ("work", "os.Exit").
func callName(n ast.Node) string {
	es, ok := n.(*ast.ExprStmt)
	if !ok {
		return ""
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return ""
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if pkg, ok := fun.X.(*ast.Ident); ok {
			return pkg.Name + "." + fun.Sel.Name
		}
	}
	return ""
}

// callBlock finds the reachable block containing a call statement to name.
func callBlock(t *testing.T, g *Graph, name string) *Block {
	t.Helper()
	for _, b := range g.Reachable() {
		for _, n := range b.Nodes {
			if callName(n) == name {
				return b
			}
		}
	}
	t.Fatalf("no reachable block calls %s()", name)
	return nil
}

// hasCall reports whether any reachable block calls name.
func hasCall(g *Graph, name string) bool {
	for _, b := range g.Reachable() {
		for _, n := range b.Nodes {
			if callName(n) == name {
				return true
			}
		}
	}
	return false
}

// branchBlock finds the reachable block containing a break/continue/goto of
// the given token.
func branchBlock(t *testing.T, g *Graph, tok token.Token) *Block {
	t.Helper()
	for _, b := range g.Reachable() {
		for _, n := range b.Nodes {
			if br, ok := n.(*ast.BranchStmt); ok && br.Tok == tok {
				return b
			}
		}
	}
	t.Fatalf("no reachable block holds a %s statement", tok)
	return nil
}

// reaches reports whether to is reachable from from by following one or
// more edges — a block reaches itself only through a cycle.
func reaches(from, to *Block) bool {
	seen := make(map[*Block]bool)
	queue := append([]*Block{}, from.Succs...)
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		if seen[b] {
			continue
		}
		seen[b] = true
		if b == to {
			return true
		}
		queue = append(queue, b.Succs...)
	}
	return false
}

func TestIfElseShape(t *testing.T) {
	g := buildFunc(t, `func f(c bool) {
	if c {
		a()
	} else {
		b()
	}
	tail()
}`)
	var head *Block
	for _, bl := range g.Reachable() {
		if bl.Branch == Cond {
			head = bl
			break
		}
	}
	if head == nil || head.Cond == nil {
		t.Fatal("no Cond block with a condition expression")
	}
	if len(head.Succs) != 2 {
		t.Fatalf("Cond block has %d successors, want 2", len(head.Succs))
	}
	if head.Succs[0] != callBlock(t, g, "a") {
		t.Error("Succs[0] of the if head is not the then-branch (true edge contract)")
	}
	if head.Succs[1] != callBlock(t, g, "b") {
		t.Error("Succs[1] of the if head is not the else-branch (false edge contract)")
	}
	tail := callBlock(t, g, "tail")
	if !reaches(callBlock(t, g, "a"), tail) || !reaches(callBlock(t, g, "b"), tail) {
		t.Error("both branches must rejoin at the statement after the if")
	}
}

func TestDeferInLoop(t *testing.T) {
	g := buildFunc(t, `func f(n int) {
	for i := 0; i < n; i++ {
		defer cleanup()
	}
	tail()
}`)
	var deferBlock *Block
	for _, bl := range g.Reachable() {
		for _, n := range bl.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				deferBlock = bl
			}
		}
	}
	if deferBlock == nil {
		t.Fatal("defer statement not recorded in any reachable block")
	}
	if !reaches(deferBlock, deferBlock) {
		t.Error("loop body holding the defer is not on a cycle")
	}
	if !reaches(deferBlock, g.Exit) {
		t.Error("loop body cannot reach the function exit")
	}
}

func TestGotoForwardSkipsCode(t *testing.T) {
	g := buildFunc(t, `func f(c bool) {
	if c {
		goto cleanup
	}
	work()
cleanup:
	tail()
}`)
	gotoBlock := branchBlock(t, g, token.GOTO)
	if !reaches(gotoBlock, callBlock(t, g, "tail")) {
		t.Error("goto cleanup does not reach the labeled statement")
	}
	if reaches(gotoBlock, callBlock(t, g, "work")) {
		t.Error("goto cleanup must jump over work(), not fall into it")
	}
	if !reaches(g.Entry, g.Exit) {
		t.Error("function exit unreachable")
	}
}

func TestGotoBackwardFormsLoop(t *testing.T) {
	g := buildFunc(t, `func f(n int) {
retry:
	n++
	if n < 3 {
		goto retry
	}
	tail()
}`)
	gotoBlock := branchBlock(t, g, token.GOTO)
	if !reaches(gotoBlock, gotoBlock) {
		t.Error("backward goto does not form a cycle")
	}
	if !reaches(g.Entry, callBlock(t, g, "tail")) || !reaches(g.Entry, g.Exit) {
		t.Error("loop exit path is unreachable")
	}
}

func TestLabeledBreakAndContinue(t *testing.T) {
	g := buildFunc(t, `func f(m [][]int) {
outer:
	for i := 0; i < len(m); i++ {
		for _, v := range m[i] {
			if v < 0 {
				continue outer
			}
			if v == 0 {
				break outer
			}
			work()
		}
	}
	tail()
}`)
	breakBlock := branchBlock(t, g, token.BREAK)
	if !reaches(breakBlock, callBlock(t, g, "tail")) {
		t.Error("break outer does not reach the code after the outer loop")
	}
	if reaches(breakBlock, callBlock(t, g, "work")) {
		t.Error("break outer must leave both loops, yet work() is reachable from it")
	}
	contBlock := branchBlock(t, g, token.CONTINUE)
	if len(contBlock.Succs) != 1 {
		t.Fatalf("continue block has %d successors, want 1", len(contBlock.Succs))
	}
	// continue outer must target the *outer* loop's post statement (i++),
	// not the inner range head — the distinction a syntactic walker misses.
	foundInc := false
	for _, n := range contBlock.Succs[0].Nodes {
		if _, ok := n.(*ast.IncDecStmt); ok {
			foundInc = true
		}
	}
	if !foundInc {
		t.Error("continue outer does not target the outer loop's post block")
	}
}

func TestSelectWithDefault(t *testing.T) {
	g := buildFunc(t, `func f(ch chan int) {
	select {
	case v := <-ch:
		use(v)
	default:
		fallback()
	}
	tail()
}`)
	var head *Block
	for _, bl := range g.Reachable() {
		if bl.Branch == Multi {
			head = bl
			break
		}
	}
	if head == nil {
		t.Fatal("no Multi head for the select")
	}
	if len(head.Succs) != 2 {
		t.Fatalf("select head has %d successors, want one per clause (2)", len(head.Succs))
	}
	if head.Succs[0] != callBlock(t, g, "use") || head.Succs[1] != callBlock(t, g, "fallback") {
		t.Error("select head successors are not the clause bodies in order")
	}
	tail := callBlock(t, g, "tail")
	if !reaches(callBlock(t, g, "use"), tail) || !reaches(callBlock(t, g, "fallback"), tail) {
		t.Error("both select clauses must rejoin after the select")
	}
}

func TestEmptySelectBlocksForever(t *testing.T) {
	g := buildFunc(t, `func f() {
	select {}
	tail()
}`)
	if reaches(g.Entry, g.Exit) {
		t.Error("select{} never proceeds: the exit must be unreachable")
	}
	if hasCall(g, "tail") {
		t.Error("code after select{} is dead and must not be reachable")
	}
}

func TestInfiniteForHasNoExit(t *testing.T) {
	g := buildFunc(t, `func f() {
	for {
		work()
	}
}`)
	if reaches(g.Entry, g.Exit) {
		t.Error("for{} without break must not reach the exit")
	}
	wb := callBlock(t, g, "work")
	if !reaches(wb, wb) {
		t.Error("infinite loop body is not on a cycle")
	}
}

func TestInfiniteForWithBreak(t *testing.T) {
	g := buildFunc(t, `func f(c bool) {
	for {
		if c {
			break
		}
		work()
	}
	tail()
}`)
	if !reaches(g.Entry, g.Exit) {
		t.Error("break must open an exit path out of for{}")
	}
	if !reaches(branchBlock(t, g, token.BREAK), callBlock(t, g, "tail")) {
		t.Error("break does not reach the code after the loop")
	}
}

func TestSwitchFallthrough(t *testing.T) {
	g := buildFunc(t, `func f(x int) {
	switch x {
	case 1:
		a()
		fallthrough
	case 2:
		b()
	default:
		c()
	}
	tail()
}`)
	var head *Block
	for _, bl := range g.Reachable() {
		if bl.Branch == Multi {
			head = bl
			break
		}
	}
	if head == nil {
		t.Fatal("no Multi head for the switch")
	}
	// A default clause exists, so the head dispatches only to the three
	// clause bodies — no bypass edge to done.
	if len(head.Succs) != 3 {
		t.Fatalf("switch head has %d successors, want 3 (one per clause, no bypass)", len(head.Succs))
	}
	aBlock, bBlock := callBlock(t, g, "a"), callBlock(t, g, "b")
	direct := false
	for _, s := range aBlock.Succs {
		if s == bBlock {
			direct = true
		}
	}
	if !direct {
		t.Error("fallthrough edge from case 1 to case 2 is missing")
	}
	tail := callBlock(t, g, "tail")
	for _, name := range []string{"a", "b", "c"} {
		if !reaches(callBlock(t, g, name), tail) {
			t.Errorf("clause %s() does not rejoin after the switch", name)
		}
	}
}

func TestSwitchWithoutDefaultBypasses(t *testing.T) {
	g := buildFunc(t, `func f(x int) {
	switch x {
	case 1:
		a()
	}
	tail()
}`)
	var head *Block
	for _, bl := range g.Reachable() {
		if bl.Branch == Multi {
			head = bl
			break
		}
	}
	if head == nil {
		t.Fatal("no Multi head for the switch")
	}
	if len(head.Succs) != 2 {
		t.Fatalf("switch head has %d successors, want 2 (clause + bypass)", len(head.Succs))
	}
	tail := callBlock(t, g, "tail")
	bypass := false
	for _, s := range head.Succs {
		if s == tail {
			bypass = true
		}
	}
	if !bypass {
		t.Error("switch without default must have a direct edge past the clauses")
	}
}

func TestPanicAndExitTerminate(t *testing.T) {
	g := buildFunc(t, `func f(c bool) {
	if c {
		panic("boom")
	}
	tail()
}`)
	if n := len(callBlock(t, g, "panic").Succs); n != 0 {
		t.Errorf("panic block has %d successors, want 0 (no normal-exit edge)", n)
	}
	if !reaches(g.Entry, callBlock(t, g, "tail")) || !reaches(g.Entry, g.Exit) {
		t.Error("the non-panicking path must still reach the exit")
	}

	g = buildFunc(t, `func f() {
	os.Exit(1)
	dead()
}`)
	if n := len(callBlock(t, g, "os.Exit").Succs); n != 0 {
		t.Errorf("os.Exit block has %d successors, want 0", n)
	}
	if hasCall(g, "dead") {
		t.Error("code after os.Exit must be unreachable")
	}
}

func TestDeadCodeAfterReturn(t *testing.T) {
	g := buildFunc(t, `func f() int {
	return 1
	dead()
}`)
	if hasCall(g, "dead") {
		t.Error("statements after return must not appear in any reachable block")
	}
	if !reaches(g.Entry, g.Exit) {
		t.Error("return must edge to the exit")
	}
}

func TestRangeLoopShape(t *testing.T) {
	g := buildFunc(t, `func f(xs []int) {
	for _, v := range xs {
		use(v)
	}
	tail()
}`)
	var head *Block
	for _, bl := range g.Reachable() {
		if bl.Branch == Multi {
			head = bl
			break
		}
	}
	if head == nil {
		t.Fatal("no Multi head for the range loop")
	}
	if len(head.Succs) != 2 {
		t.Fatalf("range head has %d successors, want 2 (iterate, done)", len(head.Succs))
	}
	body := head.Succs[0]
	foundBinding := false
	for _, n := range body.Nodes {
		if _, ok := n.(*ast.RangeStmt); ok {
			foundBinding = true
		}
	}
	if !foundBinding {
		t.Error("per-iteration binding (the RangeStmt node) missing from the body block")
	}
	if body != callBlock(t, g, "use") {
		t.Error("Succs[0] of the range head is not the loop body")
	}
	if head.Succs[1] != callBlock(t, g, "tail") {
		t.Error("Succs[1] of the range head is not the done block")
	}
	if !reaches(body, head) {
		t.Error("loop body does not edge back to the head")
	}
}

func TestReachableDeterministic(t *testing.T) {
	g := buildFunc(t, `func f(c bool, xs []int) {
	for _, v := range xs {
		if c {
			use(v)
			continue
		}
		work()
	}
	tail()
}`)
	a, b := g.Reachable(), g.Reachable()
	if len(a) != len(b) {
		t.Fatalf("Reachable() returned %d then %d blocks", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Reachable() order differs at position %d", i)
		}
	}
}

func TestFallthroughAfterNestedSwitch(t *testing.T) {
	// A nested switch inside a clause body must not clobber the outer
	// clause's pending fallthrough target: the edge from case 1's tail to
	// case 3's body has to survive building the inner switch.
	g := buildFunc(t, `func f(x, y int) {
	switch x {
	case 1:
		switch y {
		case 2:
			inner()
		}
		after()
		fallthrough
	case 3:
		next()
	}
	tail()
}`)
	if !reaches(callBlock(t, g, "after"), callBlock(t, g, "next")) {
		t.Error("fallthrough after a nested switch lost its edge to the next clause")
	}
	if !reaches(callBlock(t, g, "inner"), callBlock(t, g, "next")) {
		t.Error("the inner clause path must also flow through the fallthrough")
	}
	if !reaches(g.Entry, g.Exit) {
		t.Error("function exit unreachable")
	}
}

func TestStuckFlagDistinguishesSelectFromPanic(t *testing.T) {
	g := buildFunc(t, `func f() {
	select {}
}`)
	var sel *Block
	for _, b := range g.Reachable() {
		if len(b.Succs) == 0 && b != g.Exit {
			sel = b
		}
	}
	if sel == nil {
		t.Fatal("no terminal block for select{}")
	}
	if !sel.Stuck {
		t.Error("select{} block must be marked Stuck")
	}

	g = buildFunc(t, `func f() {
	panic("boom")
}`)
	for _, b := range g.Reachable() {
		if b.Stuck {
			t.Error("panic sink must not be marked Stuck")
		}
	}
}

func TestStuckBlocksInfiniteLoop(t *testing.T) {
	// for{} with no break: the body can never terminate.
	g := buildFunc(t, `func f() {
	for {
		work()
	}
}`)
	stuck := g.StuckBlocks(nil)
	if len(stuck) == 0 {
		t.Fatal("infinite loop reported no stuck blocks")
	}
	found := false
	wb := callBlock(t, g, "work")
	for _, b := range stuck {
		if b == wb {
			found = true
		}
	}
	if !found {
		t.Error("the infinite loop body is not in the stuck set")
	}

	// The same loop with a break terminates on some path — nothing stuck.
	g = buildFunc(t, `func f(c bool) {
	for {
		if c {
			break
		}
		work()
	}
}`)
	if s := g.StuckBlocks(nil); len(s) != 0 {
		t.Errorf("loop with break reported %d stuck blocks, want 0", len(s))
	}

	// A loop whose only way out is a panic still terminates the goroutine.
	g = buildFunc(t, `func f(c bool) {
	for {
		if c {
			panic("boom")
		}
		work()
	}
}`)
	if s := g.StuckBlocks(nil); len(s) != 0 {
		t.Errorf("loop escaping via panic reported %d stuck blocks, want 0", len(s))
	}

	// select{} is not a terminator: everything upstream of it is stuck.
	g = buildFunc(t, `func f() {
	work()
	select {}
}`)
	if s := g.StuckBlocks(nil); len(s) == 0 {
		t.Error("path ending in select{} must be stuck")
	}
}

func TestStuckBlocksNodeCallback(t *testing.T) {
	// With a callback classifying spin() as non-terminating, the block
	// holding it — and everything that can only proceed through it — is
	// stuck even though the graph shape reaches Exit.
	g := buildFunc(t, `func f() {
	work()
	spin()
	tail()
}`)
	if s := g.StuckBlocks(nil); len(s) != 0 {
		t.Fatalf("straight-line body reported %d stuck blocks with nil callback", len(s))
	}
	stuck := g.StuckBlocks(func(n ast.Node) bool {
		return callName(n) == "spin"
	})
	if len(stuck) == 0 {
		t.Fatal("stuck-node callback had no effect")
	}
	wb := callBlock(t, g, "work")
	inSet := func(b *Block) bool {
		for _, s := range stuck {
			if s == b {
				return true
			}
		}
		return false
	}
	if !inSet(wb) {
		t.Error("block upstream of the stuck call must be stuck")
	}
	if inSet(g.Exit) {
		t.Error("Exit itself must never be in the stuck set")
	}
}
