// Package cfg builds per-function control-flow graphs for the repo's
// static-analysis rules (internal/lint). The syntactic walkers of vqlint v1
// could not see that a `return` inside a reconnect branch skips a `Release`,
// or that a division is only reached on the branch where its denominator was
// tested — every rule that needs "on every path" or "dominated by a test"
// semantics builds on this package instead.
//
// The graph is deliberately small: blocks hold the atomic statements and
// condition expressions they execute, in order, and edges carry just enough
// structure for branch-sensitive dataflow (a Cond block's first successor is
// the true edge, its second the false edge). The builder handles the full
// statement language: if/else chains, all three for-loop forms and range
// loops, switch/type-switch with fallthrough, select with and without
// default, defer, goto and labeled break/continue, and terminators (return,
// panic, os.Exit, log.Fatal*).
//
// Panic-shaped terminators end their block with no successors: obligations
// checked at function exit (releases, unlocks) are deliberately not demanded
// on panicking paths, matching the analyzers' "panic-free paths" contract.
// Nested function literals are opaque — each literal is its own function
// with its own graph.
package cfg

import (
	"go/ast"
	"go/token"
)

// Branch classifies how control leaves a block.
type Branch uint8

const (
	// Seq blocks have zero or one successor, taken unconditionally. Zero
	// successors means the block terminates (return edges go to Exit;
	// panic-shaped terminators simply end).
	Seq Branch = iota
	// Cond blocks end in a two-way test: Succs[0] is the true edge,
	// Succs[1] the false edge, and Cond holds the tested expression.
	Cond
	// Multi blocks dispatch to several successors with no expression the
	// analyzers can refine on: switch and select heads, and range loops
	// (Succs[0] = iterate, Succs[1] = done).
	Multi
)

// Block is one straight-line region: its Nodes execute in order with no
// internal control transfer.
//
// Nodes holds atomic statements (assignments, calls, defer/go, returns,
// declarations, sends, inc/dec) and bare expressions (if/for conditions,
// switch tags, range operands — recorded so dataflow sees their reads). A
// *ast.RangeStmt appearing as a node stands for the per-iteration key/value
// binding only; analyzers must not descend into its X or Body fields.
type Block struct {
	Index  int
	Nodes  []ast.Node
	Branch Branch
	// Cond is the tested expression of a Cond block, nil otherwise.
	Cond  ast.Expr
	Succs []*Block
	Preds []*Block

	// Stuck marks a block that ends by blocking forever rather than by
	// panicking: an empty select{}. Both shapes have no successors, but they
	// mean opposite things to a termination analysis — a panic ends the
	// goroutine, a permanent block leaks it (see StuckBlocks).
	Stuck bool

	// unreachable marks blocks synthesized after a terminator (dead code
	// anchors); they keep the builder simple and are skipped by Reachable.
	unreachable bool
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	Blocks []*Block
	// Entry is the block control enters first.
	Entry *Block
	// Exit is the single normal-exit block: every return and every
	// fall-off-the-end path has an edge to it. Panic-shaped terminators do
	// not — their blocks simply have no successors.
	Exit *Block
	// End is the closing brace of the function body, used by analyzers to
	// position fall-off-the-end diagnostics.
	End token.Pos
}

// New builds the graph of one function body. fn is the *ast.FuncDecl or
// *ast.FuncLit that owns body; it is retained only for error positions.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{End: body.Rbrace}}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.cur = b.g.Entry
	b.labels = make(map[string]*labelTarget)
	b.stmtList(body.List)
	b.edge(b.cur, b.g.Exit)
	return b.g
}

// Reachable returns the blocks reachable from Entry, in a deterministic
// breadth-first order. Dead-code anchor blocks and code after terminators
// never appear.
func (g *Graph) Reachable() []*Block {
	seen := make([]bool, len(g.Blocks))
	queue := []*Block{g.Entry}
	seen[g.Entry.Index] = true
	var out []*Block
	for len(queue) > 0 {
		bl := queue[0]
		queue = queue[1:]
		out = append(out, bl)
		for _, s := range bl.Succs {
			if !seen[s.Index] {
				seen[s.Index] = true
				queue = append(queue, s)
			}
		}
	}
	return out
}

// StuckBlocks returns the reachable blocks from which execution can never
// terminate: no path leads to the Exit block or to a panic-shaped sink. A
// goroutine whose body has a stuck block can enter it and then run (or
// block) forever — the goleak analyzer's core question.
//
// stuckNode, if non-nil, classifies individual nodes as themselves
// non-terminating (a statement call to a function whose summary says it
// loops forever). A block containing such a node never completes: its own
// successors do not count as a way out, and predecessors cannot escape
// through it.
//
// Termination here means the path END exists: reaching Exit (return or
// fall-off) or a no-successor panic sink. A Stuck no-successor block
// (select{}) is not termination — it is the purest form of the problem.
func (g *Graph) StuckBlocks(stuckNode func(ast.Node) bool) []*Block {
	reach := g.Reachable()
	hasStuckNode := func(b *Block) bool {
		if stuckNode == nil {
			return false
		}
		for _, n := range b.Nodes {
			if stuckNode(n) {
				return true
			}
		}
		return false
	}

	// Reverse BFS from the termination set; blocks that contain a stuck node
	// never complete, so reachability does not propagate through them.
	canEnd := make(map[*Block]bool, len(reach))
	var queue []*Block
	seed := func(b *Block) {
		if !canEnd[b] {
			canEnd[b] = true
			queue = append(queue, b)
		}
	}
	for _, b := range reach {
		if hasStuckNode(b) {
			continue
		}
		if b == g.Exit || (len(b.Succs) == 0 && !b.Stuck) {
			seed(b)
		}
	}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		for _, p := range b.Preds {
			if !canEnd[p] && !hasStuckNode(p) {
				seed(p)
			}
		}
	}

	var stuck []*Block
	for _, b := range reach {
		if !canEnd[b] {
			stuck = append(stuck, b)
		}
	}
	return stuck
}

// labelTarget resolves one label: the block a goto jumps to, plus the
// break/continue targets when the label names a loop, switch, or select.
type labelTarget struct {
	block      *Block // goto target (also the fall-in entry)
	breakTo    *Block
	continueTo *Block
}

// frame is one enclosing breakable construct. continueTo is nil for switch
// and select frames, so continue correctly skips past them to the nearest
// loop.
type frame struct {
	label      string
	breakTo    *Block
	continueTo *Block
}

type builder struct {
	g      *Graph
	cur    *Block
	frames []frame
	labels map[string]*labelTarget
	// pendingLabel is the label of the statement being built, claimed by
	// the loop/switch/select builders for their break/continue frames.
	pendingLabel string
	// fallthroughTo is the next case body while building a switch clause.
	fallthroughTo *Block
}

func (b *builder) newBlock() *Block {
	bl := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, bl)
	return bl
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// terminate ends the current block (its edges are already in place) and
// parks the builder on a fresh dead-code anchor.
func (b *builder) terminate() {
	dead := b.newBlock()
	dead.unreachable = true
	b.cur = dead
}

func (b *builder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for the construct being built.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) stmt(s ast.Stmt) {
	// Any statement other than a labeled loop/switch/select consumes the
	// pending label without binding break/continue to it.
	switch s.(type) {
	case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
	default:
		b.pendingLabel = ""
	}

	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		head := b.cur
		head.Branch, head.Cond = Cond, s.Cond
		then := b.newBlock()
		done := b.newBlock()
		b.edge(head, then) // Succs[0]: condition true
		if s.Else != nil {
			els := b.newBlock()
			b.edge(head, els) // Succs[1]: condition false
			b.cur = then
			b.stmt(s.Body)
			b.edge(b.cur, done)
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, done)
		} else {
			b.edge(head, done) // Succs[1]: condition false
			b.cur = then
			b.stmt(s.Body)
			b.edge(b.cur, done)
		}
		b.cur = done

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		done := b.newBlock()
		b.edge(b.cur, head)
		if s.Cond != nil {
			head.Branch, head.Cond = Cond, s.Cond
			head.Nodes = append(head.Nodes, s.Cond)
			b.edge(head, body) // true
			b.edge(head, done) // false
		} else {
			// Infinite loop: the only way to done is break.
			b.edge(head, body)
		}
		continueTo := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			continueTo = post
		}
		if label != "" {
			b.labels[label].breakTo = done
			b.labels[label].continueTo = continueTo
		}
		b.frames = append(b.frames, frame{label: label, breakTo: done, continueTo: continueTo})
		b.cur = body
		b.stmt(s.Body)
		b.frames = b.frames[:len(b.frames)-1]
		if post != nil {
			b.edge(b.cur, post)
			b.cur = post
			b.stmt(s.Post)
			b.edge(b.cur, head)
		} else {
			b.edge(b.cur, head)
		}
		b.cur = done

	case *ast.RangeStmt:
		label := b.takeLabel()
		b.add(s.X) // the range operand is evaluated once, before the loop
		head := b.newBlock()
		body := b.newBlock()
		done := b.newBlock()
		b.edge(b.cur, head)
		head.Branch = Multi
		b.edge(head, body) // Succs[0]: next element
		b.edge(head, done) // Succs[1]: exhausted
		if label != "" {
			b.labels[label].breakTo = done
			b.labels[label].continueTo = head
		}
		b.frames = append(b.frames, frame{label: label, breakTo: done, continueTo: head})
		b.cur = body
		// The RangeStmt node itself stands for the per-iteration key/value
		// binding (see Block.Nodes).
		if s.Key != nil || s.Value != nil {
			b.add(s)
		}
		b.stmt(s.Body)
		b.frames = b.frames[:len(b.frames)-1]
		b.edge(b.cur, head)
		b.cur = done

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Tag)
		b.switchClauses(label, s.Body.List, func(c *ast.CaseClause) ([]ast.Expr, []ast.Stmt, bool) {
			return c.List, c.Body, c.List == nil
		})

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.switchClauses(label, s.Body.List, func(c *ast.CaseClause) ([]ast.Expr, []ast.Stmt, bool) {
			return c.List, c.Body, c.List == nil
		})

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		head.Branch = Multi
		done := b.newBlock()
		if label != "" {
			b.labels[label].breakTo = done
		}
		b.frames = append(b.frames, frame{label: label, breakTo: done})
		anyClause := false
		for _, c := range s.Body.List {
			comm, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			anyClause = true
			body := b.newBlock()
			b.edge(head, body)
			b.cur = body
			if comm.Comm != nil {
				b.stmt(comm.Comm)
			}
			b.stmtList(comm.Body)
			b.edge(b.cur, done)
		}
		b.frames = b.frames[:len(b.frames)-1]
		if !anyClause {
			// select{} blocks forever: no successors at all, and unlike a
			// panic the path never ends — mark it so termination analyses
			// (goleak) can tell the two apart.
			head.Stuck = true
			b.terminate()
			return
		}
		b.cur = done

	case *ast.LabeledStmt:
		lt := b.labelFor(s.Label.Name)
		b.edge(b.cur, lt.block)
		b.cur = lt.block
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if to := b.branchTarget(s.Label, false); to != nil {
				b.add(s)
				b.edge(b.cur, to)
				b.terminate()
			}
		case token.CONTINUE:
			if to := b.branchTarget(s.Label, true); to != nil {
				b.add(s)
				b.edge(b.cur, to)
				b.terminate()
			}
		case token.GOTO:
			b.add(s)
			b.edge(b.cur, b.labelFor(s.Label.Name).block)
			b.terminate()
		case token.FALLTHROUGH:
			if b.fallthroughTo != nil {
				b.edge(b.cur, b.fallthroughTo)
				b.terminate()
			}
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.terminate()

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && isTerminalCall(call) {
			// panic / os.Exit / log.Fatal*: the path ends here, with no
			// normal-exit edge (see the package comment).
			b.terminate()
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// Assignments, declarations, defer, go, send, inc/dec: atomic.
		b.add(s)
	}
}

// switchClauses builds the shared switch/type-switch shape: one Multi head
// dispatching to a body block per clause, fallthrough edges between
// consecutive bodies, and a done block that also receives the head's edge
// when no default clause exists. Case expressions are recorded in the head
// (they are all evaluated there, in order, as far as dataflow cares).
func (b *builder) switchClauses(label string, clauses []ast.Stmt, split func(*ast.CaseClause) ([]ast.Expr, []ast.Stmt, bool)) {
	// A switch nested inside an outer switch's clause must not clobber the
	// outer clause's fallthrough target: a `fallthrough` written after the
	// nested switch still belongs to the outer clause.
	savedFallthrough := b.fallthroughTo
	head := b.cur
	head.Branch = Multi
	done := b.newBlock()
	if label != "" {
		b.labels[label].breakTo = done
	}

	type clauseInfo struct {
		body  []ast.Stmt
		block *Block
	}
	var infos []clauseInfo
	hasDefault := false
	for _, raw := range clauses {
		c, ok := raw.(*ast.CaseClause)
		if !ok {
			continue
		}
		exprs, body, isDefault := split(c)
		for _, e := range exprs {
			head.Nodes = append(head.Nodes, e)
		}
		if isDefault {
			hasDefault = true
		}
		infos = append(infos, clauseInfo{body: body, block: b.newBlock()})
	}
	for _, info := range infos {
		b.edge(head, info.block)
	}
	if !hasDefault {
		b.edge(head, done)
	}

	b.frames = append(b.frames, frame{label: label, breakTo: done})
	for i, info := range infos {
		b.fallthroughTo = nil
		if i+1 < len(infos) {
			b.fallthroughTo = infos[i+1].block
		}
		b.cur = info.block
		b.stmtList(info.body)
		b.edge(b.cur, done)
	}
	b.fallthroughTo = savedFallthrough
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = done
}

// labelFor returns (creating on first use, so forward gotos work) the
// target record of a label.
func (b *builder) labelFor(name string) *labelTarget {
	lt := b.labels[name]
	if lt == nil {
		lt = &labelTarget{block: b.newBlock()}
		b.labels[name] = lt
	}
	return lt
}

// branchTarget resolves break (wantContinue=false) or continue
// (wantContinue=true), labeled or not, to its destination block.
func (b *builder) branchTarget(label *ast.Ident, wantContinue bool) *Block {
	if label != nil {
		lt := b.labels[label.Name]
		if lt == nil {
			return nil
		}
		if wantContinue {
			return lt.continueTo
		}
		return lt.breakTo
	}
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if wantContinue {
			if f.continueTo != nil {
				return f.continueTo
			}
			continue // switch/select frames are transparent to continue
		}
		return f.breakTo
	}
	return nil
}

// isTerminalCall reports whether a call statement never returns: the panic
// builtin, os.Exit, or the log.Fatal family. The test is syntactic — the
// lint loader does not hand cfg a types.Info — but shadowing `os` or `log`
// locally is not an idiom this repository has or wants.
func isTerminalCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name + "." + fun.Sel.Name {
		case "os.Exit", "log.Fatal", "log.Fatalf", "log.Fatalln":
			return true
		}
	}
	return false
}
