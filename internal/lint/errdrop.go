package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrDrop reports call statements that silently discard an error result.
// The measurement path must never lose a failure signal: a dropped Close or
// SetDeadline error hides exactly the transport problems the collector
// exists to count. Explicit discards (`_ = f()`), deferred cleanup calls,
// and conventionally error-free sinks (strings.Builder, bytes.Buffer, the
// fmt print family writing to the terminal) are exempt. Test files are not
// analyzed at all.
//
// One deferred call is NOT exempt: `defer f.Sync()` on an *os.File. Unlike
// Close-on-cleanup, Sync exists solely to report whether data reached
// stable storage — deferring it throws the durability verdict away, which
// is how a crash-safe writer silently stops being crash-safe. Sync
// explicitly (checking the error) or drop it.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "call statement discards an error result",
	Run:  runErrDrop,
}

func runErrDrop(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				c, ok := stmt.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				call = c
			case *ast.DeferStmt:
				// Deferred cleanup is exempt in general, but a deferred
				// file Sync discards the one error that says whether the
				// data is durable.
				if !isFileSync(p, stmt.Call) {
					return true
				}
				call = stmt.Call
			default:
				return true
			}
			if !returnsError(p, call) || errExempt(p, call) {
				return true
			}
			p.Reportf(call.Pos(), "result of %s contains a discarded error; handle it or assign to _ explicitly", types.ExprString(call.Fun))
			return true
		})
	}
}

// isFileSync reports whether call is a Sync method call on an *os.File (or
// os.File) receiver.
func isFileSync(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Sync" {
		return false
	}
	s, ok := p.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	recv := s.Recv()
	if ptr, ok := recv.Underlying().(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "os" && named.Obj().Name() == "File"
}

// returnsError reports whether the call's result is, or ends with, an error.
func returnsError(p *Pass, call *ast.CallExpr) bool {
	t := p.TypeOf(call)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return false
		}
		t = tup.At(tup.Len() - 1).Type()
	}
	return isErrorType(t)
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// errExempt lists the conventionally error-free calls the rule ignores.
func errExempt(p *Pass, call *ast.CallExpr) bool {
	pkg, name := calleePkgFunc(p, call)
	if pkg == "fmt" {
		switch name {
		case "Print", "Printf", "Println":
			return true
		case "Fprint", "Fprintf", "Fprintln":
			// Terminal chatter and in-memory sinks are exempt; a real
			// writer is not.
			return len(call.Args) > 0 && (isStdStream(p, call.Args[0]) || isErrFreeWriter(p, call.Args[0]))
		}
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := p.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	recv := s.Recv()
	if ptr, ok := recv.Underlying().(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() + "." + obj.Name() {
	case "strings.Builder", "bytes.Buffer":
		// Their Write methods are documented to always return a nil error.
		return true
	}
	return false
}

// isErrFreeWriter reports whether e is a strings.Builder or bytes.Buffer
// (possibly behind & or a pointer type), whose writes never fail.
func isErrFreeWriter(p *Pass, e ast.Expr) bool {
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = u.X
	}
	t := p.TypeOf(e)
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

// isStdStream reports whether e is os.Stdout or os.Stderr.
func isStdStream(p *Pass, e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Stdout" && sel.Sel.Name != "Stderr") {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.Info.ObjectOf(id).(*types.PkgName)
	return ok && pn.Imported().Path() == "os"
}
