// Package callgraph resolves the static call structure of one type-checked
// package: which declared function each call site targets, how control
// reaches the callee (plain call, defer, go), and the bottom-up SCC order a
// summary computation needs to process callees before callers.
//
// Resolution is deliberately conservative. A call is resolved only when the
// callee is a single statically-known function: a package-level function
// named directly, or a method called on a value of concrete named type.
// Everything dynamic — calls through interfaces, function-typed variables,
// fields, and method values — resolves to nil, the "unknown callee". Callers
// (internal/lint/summary) must treat an unknown callee as able to do
// anything and guaranteed to do nothing: it may mutate every argument, but
// it never *provably* releases, unlocks, or closes one. Degrading to
// ignorance keeps the derived facts sound.
package callgraph

import (
	"go/ast"
	"go/types"
)

// Mode classifies how a call site transfers control to its callee.
type Mode uint8

const (
	// Call is an ordinary synchronous call on the enclosing function's path.
	Call Mode = iota
	// Defer runs the callee when the enclosing function returns. Statements
	// inside a directly-deferred literal (`defer func() { ... }()`) also
	// carry this mode: they execute exactly once, at exit.
	Defer
	// Go runs the callee on a new goroutine. Statements inside a
	// directly-spawned literal (`go func() { ... }()`) also carry this mode.
	Go
)

// Site is one call expression inside a declared function.
type Site struct {
	Call *ast.CallExpr
	Mode Mode
	// Callee is the statically-resolved target, nil when the call is
	// dynamic (interface, func value, method value) or targets a builtin.
	// A non-nil Callee may belong to another package; Graph.Node returns
	// nil for it then.
	Callee *types.Func
	// InLiteral marks sites nested inside a function literal other than a
	// directly deferred/spawned one. Such sites run whenever the literal
	// runs — possibly never, possibly many times — so synchronous-effect
	// summaries must ignore them.
	InLiteral bool
}

// Node is one declared function with a body and its outgoing call sites in
// source order.
type Node struct {
	Obj   *types.Func
	Decl  *ast.FuncDecl
	Sites []Site
}

// Graph is the call graph of one package.
type Graph struct {
	nodes map[*types.Func]*Node
	// order preserves declaration order for deterministic iteration.
	order []*Node
}

// Node returns the graph node for fn, or nil when fn is not a declared
// function of this package (external callee, or resolved but bodyless).
func (g *Graph) Node(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.nodes[fn]
}

// Funcs returns the nodes in declaration order.
func (g *Graph) Funcs() []*Node { return g.order }

// Build constructs the call graph of the package spanned by files.
func Build(files []*ast.File, info *types.Info) *Graph {
	g := &Graph{nodes: make(map[*types.Func]*Node)}
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &Node{Obj: obj, Decl: fd}
			collectSites(n, fd.Body, info, Call, false)
			g.nodes[obj] = n
			g.order = append(g.order, n)
		}
	}
	return g
}

// collectSites records every call under n (a statement list region) with the
// given ambient mode. mode upgrades at defer/go statements; inLit is set
// once the walk enters a literal that is not directly deferred/spawned.
func collectSites(node *Node, n ast.Node, info *types.Info, mode Mode, inLit bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.DeferStmt:
			collectCall(node, m.Call, info, Defer, inLit)
			return false
		case *ast.GoStmt:
			collectCall(node, m.Call, info, Go, inLit)
			return false
		case *ast.FuncLit:
			collectSites(node, m.Body, info, mode, true)
			return false
		case *ast.CallExpr:
			// Record the call, then walk its arguments (they may contain
			// further calls) — but resolve the Fun ourselves so a selector
			// callee is not double-visited.
			site := Site{Call: m, Mode: mode, Callee: Callee(info, m), InLiteral: inLit}
			node.Sites = append(node.Sites, site)
			for _, arg := range m.Args {
				collectSites(node, arg, info, mode, inLit)
			}
			walkFun(node, m.Fun, info, mode, inLit)
			return false
		}
		return true
	})
}

// collectCall handles the operand of a defer or go statement: the call
// itself runs under the statement's mode, while its arguments are evaluated
// synchronously at the statement.
func collectCall(node *Node, call *ast.CallExpr, info *types.Info, mode Mode, inLit bool) {
	site := Site{Call: call, Mode: mode, Callee: Callee(info, call), InLiteral: inLit}
	node.Sites = append(node.Sites, site)
	for _, arg := range call.Args {
		collectSites(node, arg, info, Call, inLit)
	}
	walkFun(node, call.Fun, info, mode, inLit)
}

// walkFun records sites nested inside a call's callee expression. A directly
// invoked literal's body inherits the ambient mode (`defer func(){...}()`
// runs at exit, `go func(){...}()` on the new goroutine); a selector callee
// may hide calls in its receiver expression (getObj().M()).
func walkFun(node *Node, fun ast.Expr, info *types.Info, mode Mode, inLit bool) {
	switch fn := unparen(fun).(type) {
	case *ast.FuncLit:
		collectSites(node, fn.Body, info, mode, inLit)
	case *ast.Ident:
		// A bare name holds no nested calls.
	case *ast.SelectorExpr:
		collectSites(node, fn.X, info, Call, inLit)
	default:
		collectSites(node, fn, info, Call, inLit)
	}
}

// Callee statically resolves the target of call, or returns nil for dynamic
// and builtin callees. Resolved targets may live in other packages.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		// Direct name: a package-level function resolves; a variable of
		// function type (including a bound method value) does not.
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			// x.M(...) — resolved only for a method *call* on a concrete
			// receiver. Field reads of function type (FieldVal) and method
			// expressions (MethodExpr, T.M) stay dynamic/unhandled.
			if sel.Kind() != types.MethodVal {
				return nil
			}
			f, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			if recv := f.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
				// Interface dispatch: any implementation could run.
				return nil
			}
			return f
		}
		// No selection entry: a package-qualified call (pkg.Fn).
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	case *ast.IndexExpr:
		// Explicit generic instantiation: f[T](...).
		if id, ok := unparen(fun.X).(*ast.Ident); ok {
			if f, ok := info.Uses[id].(*types.Func); ok {
				return f
			}
		}
	}
	return nil
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// SCCs returns the strongly connected components of the intra-package call
// graph in bottom-up order: every component is emitted after all components
// it calls into, so a summary computation can process the slice front to
// back and always have callee summaries ready (modulo cycles within one
// component, which the caller fixpoints). Sites whose callee is unknown or
// external contribute no edge. Tarjan's algorithm emits components in
// exactly this order.
func (g *Graph) SCCs() [][]*Node {
	type vstate struct {
		index, lowlink int
		onStack        bool
		visited        bool
	}
	state := make(map[*Node]*vstate, len(g.order))
	for _, n := range g.order {
		state[n] = &vstate{}
	}
	var (
		stack []*Node
		sccs  [][]*Node
		next  int
	)
	var strongconnect func(v *Node)
	strongconnect = func(v *Node) {
		sv := state[v]
		sv.visited = true
		sv.index, sv.lowlink = next, next
		next++
		stack = append(stack, v)
		sv.onStack = true
		for _, site := range v.Sites {
			w := g.Node(site.Callee)
			if w == nil {
				continue
			}
			sw := state[w]
			if !sw.visited {
				strongconnect(w)
				if sw.lowlink < sv.lowlink {
					sv.lowlink = sw.lowlink
				}
			} else if sw.onStack && sw.index < sv.lowlink {
				sv.lowlink = sw.index
			}
		}
		if sv.lowlink == sv.index {
			var comp []*Node
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				state[w].onStack = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, comp)
		}
	}
	for _, n := range g.order {
		if !state[n].visited {
			strongconnect(n)
		}
	}
	return sccs
}

// InCycle reports whether n sits on a call cycle: its SCC has more than one
// member, or it calls itself directly.
func InCycle(scc []*Node) bool {
	if len(scc) > 1 {
		return true
	}
	n := scc[0]
	for _, site := range n.Sites {
		if site.Callee == n.Obj {
			return true
		}
	}
	return false
}
