package callgraph

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// load type-checks one source string and returns the pieces Build needs.
func load(t *testing.T, src string) ([]*ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("fix", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return []*ast.File{f}, info
}

func build(t *testing.T, src string) *Graph {
	files, info := load(t, src)
	return Build(files, info)
}

// nodeByName finds the node for the named function ("f", "T.M").
func nodeByName(t *testing.T, g *Graph, name string) *Node {
	t.Helper()
	for _, n := range g.Funcs() {
		nm := n.Decl.Name.Name
		if n.Decl.Recv != nil {
			// Render "T.M" from the receiver's named type.
			if sig, ok := n.Obj.Type().(*types.Signature); ok && sig.Recv() != nil {
				rt := sig.Recv().Type()
				if p, ok := rt.(*types.Pointer); ok {
					rt = p.Elem()
				}
				if named, ok := rt.(*types.Named); ok {
					nm = named.Obj().Name() + "." + nm
				}
			}
		}
		if nm == name {
			return n
		}
	}
	t.Fatalf("no node named %s", name)
	return nil
}

// resolvedCallees returns the names of the in-package functions the node's
// resolved sites target (duplicates preserved, source order).
func resolvedCallees(g *Graph, n *Node) []string {
	var out []string
	for _, s := range n.Sites {
		if c := g.Node(s.Callee); c != nil {
			out = append(out, c.Decl.Name.Name)
		}
	}
	return out
}

func TestResolvesDirectAndMethodCalls(t *testing.T) {
	g := build(t, `package fix
type T struct{ n int }
func (t *T) M() { helper() }
func helper() {}
func f(t *T) {
	helper()
	t.M()
}
`)
	got := resolvedCallees(g, nodeByName(t, g, "f"))
	if len(got) != 2 || got[0] != "helper" || got[1] != "M" {
		t.Errorf("f resolved callees = %v, want [helper M]", got)
	}
}

func TestDynamicCallsResolveToUnknown(t *testing.T) {
	// Method values, function-typed fields, interface calls, and func-typed
	// locals must all degrade to the unknown callee — a false resolution
	// here would let summary derive a false "releases" fact.
	g := build(t, `package fix
type T struct {
	fn func()
}
func (t *T) M() {}
type I interface{ M() }
func f(t *T, i I, cb func()) {
	mv := t.M
	mv()     // method value
	t.fn()   // function-typed field
	i.M()    // interface dispatch
	cb()     // func-typed parameter
}
`)
	n := nodeByName(t, g, "f")
	if got := resolvedCallees(g, n); len(got) != 0 {
		t.Errorf("dynamic calls resolved to %v, want none", got)
	}
	// All four dynamic sites must still be *recorded* (as unknown).
	if len(n.Sites) != 4 {
		t.Errorf("f has %d sites, want 4 unknown sites", len(n.Sites))
	}
	for _, s := range n.Sites {
		if s.Callee != nil && g.Node(s.Callee) != nil {
			t.Errorf("site %v resolved to an in-package callee", s.Call.Fun)
		}
	}
}

func TestDeferGoAndLiteralModes(t *testing.T) {
	g := build(t, `package fix
func a() {}
func b() {}
func c() {}
func d() {}
func f() {
	a()
	defer b()
	go c()
	go func() {
		d()
	}()
	cb := func() { a() }
	_ = cb
}
`)
	n := nodeByName(t, g, "f")
	modes := make(map[string]Mode)
	lits := make(map[string]bool)
	for _, s := range n.Sites {
		if cn := g.Node(s.Callee); cn != nil {
			name := cn.Decl.Name.Name
			modes[name] = s.Mode
			lits[name] = s.InLiteral
		}
	}
	if modes["a"] != Call || modes["b"] != Defer || modes["c"] != Go {
		t.Errorf("modes = %v, want a:Call b:Defer c:Go", modes)
	}
	// d() runs on the spawned goroutine: mode Go, not InLiteral (the literal
	// is the goroutine body itself).
	if modes["d"] != Go || lits["d"] {
		t.Errorf("d: mode=%v inLiteral=%v, want Go/false", modes["d"], lits["d"])
	}
	// The second a() lives inside a stored literal: it may never run.
	sawLitA := false
	for _, s := range n.Sites {
		if cn := g.Node(s.Callee); cn != nil && cn.Decl.Name.Name == "a" && s.InLiteral {
			sawLitA = true
		}
	}
	if !sawLitA {
		t.Error("call inside a stored literal not marked InLiteral")
	}
}

func TestDeferredLiteralBodyIsDeferMode(t *testing.T) {
	g := build(t, `package fix
func cleanup() {}
func f() {
	defer func() {
		cleanup()
	}()
}
`)
	n := nodeByName(t, g, "f")
	for _, s := range n.Sites {
		if cn := g.Node(s.Callee); cn != nil && cn.Decl.Name.Name == "cleanup" {
			if s.Mode != Defer || s.InLiteral {
				t.Errorf("cleanup in deferred literal: mode=%v inLiteral=%v, want Defer/false", s.Mode, s.InLiteral)
			}
			return
		}
	}
	t.Fatal("cleanup site not recorded")
}

func TestCallInReceiverExpression(t *testing.T) {
	g := build(t, `package fix
type T struct{}
func (t *T) M() {}
func get() *T { return nil }
func f() {
	get().M()
}
`)
	got := resolvedCallees(g, nodeByName(t, g, "f"))
	want := map[string]bool{"get": false, "M": false}
	for _, name := range got {
		want[name] = true
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("call to %s not recorded (got %v)", name, got)
		}
	}
}

func TestSCCOrderBottomUp(t *testing.T) {
	// leaf <- mid <- top, plus a mutual-recursion pair {pa, pb} called by
	// top. Components must come out callees-first.
	g := build(t, `package fix
func leaf() {}
func mid() { leaf() }
func top() { mid(); pa() }
func pa() { pb() }
func pb() { pa(); leaf() }
`)
	sccs := g.SCCs()
	pos := make(map[string]int)
	for i, comp := range sccs {
		for _, n := range comp {
			pos[n.Decl.Name.Name] = i
		}
	}
	if !(pos["leaf"] < pos["mid"] && pos["mid"] < pos["top"]) {
		t.Errorf("chain order wrong: %v", pos)
	}
	if pos["pa"] != pos["pb"] {
		t.Errorf("mutual recursion split across components: %v", pos)
	}
	if !(pos["leaf"] < pos["pa"] && pos["pa"] < pos["top"]) {
		t.Errorf("cycle component ordered wrong: %v", pos)
	}
	// Cycle detection: {pa,pb} is a cycle, {leaf} is not, self-recursion is.
	for _, comp := range sccs {
		names := map[string]bool{}
		for _, n := range comp {
			names[n.Decl.Name.Name] = true
		}
		switch {
		case names["pa"]:
			if len(comp) != 2 || !InCycle(comp) {
				t.Errorf("pa/pb component wrong: %d members, InCycle=%v", len(comp), InCycle(comp))
			}
		case names["leaf"]:
			if InCycle(comp) {
				t.Error("leaf reported as cyclic")
			}
		}
	}

	g = build(t, `package fix
func self(n int) int {
	if n == 0 {
		return 0
	}
	return self(n - 1)
}
`)
	sccs = g.SCCs()
	if len(sccs) != 1 || !InCycle(sccs[0]) {
		t.Errorf("direct recursion not reported as a cycle: %v", sccs)
	}
}

func TestPackageQualifiedCalleeIsExternal(t *testing.T) {
	g := build(t, `package fix
import "strings"
func f() string {
	return strings.TrimSpace(" x ")
}
`)
	n := nodeByName(t, g, "f")
	if len(n.Sites) != 1 {
		t.Fatalf("f has %d sites, want 1", len(n.Sites))
	}
	s := n.Sites[0]
	if s.Callee == nil {
		t.Error("package-qualified call did not resolve to a *types.Func")
	}
	if g.Node(s.Callee) != nil {
		t.Error("external callee must have no in-package node")
	}
}
