package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxCheck reports goroutines started inside loops with no shutdown path.
// The collector's accept loop, the generator's worker pools, and the
// orchestrator all spawn per-iteration goroutines; each must either be
// cancellable from inside (a channel receive, range-over-channel, select,
// or context.Done) or joinable from outside (tracked by a sync.WaitGroup),
// or the process leaks goroutines under load until memory runs out. Only
// function-literal goroutines are inspected — a named function's body is
// not visible here, so `go named(...)` is given the benefit of the doubt.
var CtxCheck = &Analyzer{
	Name: "ctxcheck",
	Doc:  "goroutine spawned in a loop without a cancellation/shutdown path",
	Run:  runCtxCheck,
}

func runCtxCheck(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
			default:
				return true
			}
			var body *ast.BlockStmt
			if fs, ok := n.(*ast.ForStmt); ok {
				body = fs.Body
			} else {
				body = n.(*ast.RangeStmt).Body
			}
			ast.Inspect(body, func(m ast.Node) bool {
				gs, ok := m.(*ast.GoStmt)
				if !ok {
					return true
				}
				lit, ok := gs.Call.Fun.(*ast.FuncLit)
				if !ok {
					return true
				}
				if !cancellable(p, lit.Body) && !waitGroupTracked(p, lit.Body) {
					p.Reportf(gs.Pos(), "goroutine spawned in a loop has no shutdown path (no channel receive/select/context.Done and not WaitGroup-tracked)")
				}
				return true
			})
			return true
		})
	}
}

// cancellable reports whether the goroutine body contains any construct
// through which a shutdown can reach it: a channel receive, a range over a
// channel, a select, or a context.Context method/value.
func cancellable(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch e := n.(type) {
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				found = true
			}
		case *ast.SelectStmt:
			found = true
		case *ast.RangeStmt:
			if _, ok := typeUnder(p.TypeOf(e.X)).(*types.Chan); ok {
				found = true
			}
		case ast.Expr:
			if isContextType(p.TypeOf(e)) {
				found = true
			}
		}
		return !found
	})
	return found
}

// waitGroupTracked reports whether the goroutine body calls Done on a
// sync.WaitGroup (typically `defer wg.Done()`): such goroutines have a join
// point the owner waits on at shutdown.
func waitGroupTracked(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" {
			return true
		}
		t := p.TypeOf(sel.X)
		if t == nil {
			return true
		}
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup" {
				found = true
			}
		}
		return !found
	})
	return found
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
