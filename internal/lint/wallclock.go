package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WallClock reports wall-clock and global-randomness reads reachable from
// the deterministic analysis cone. The byte-identity contract — sharded and
// distributed runs produce identical cluster output — only holds if nothing
// on the analysis path observes time.Now, timer channels, or the global
// rand source; PR 7's GOMAXPROCS=4 digest bit-flip took a week to corner
// precisely because the nondeterminism entered through an innocent-looking
// helper. The rule is the static form of that lesson: inside the cone
// packages every wall-clock read must either be threaded through an
// explicit clock/seed in the config, or named on the allowlist (ingestion
// deadlines and reconnect backoff are legitimately wall-clock-bound).
//
// A function with a direct read is reported at each read site. The taint
// then propagates up the package call graph: calling an allowlisted
// function from non-allowlisted code is reported at the call site (the
// allowlist excuses the function, not its callers); calling a tainted but
// non-allowlisted function is not re-reported — the finding already exists
// at the deeper frame. Package-level variable initializers have no
// allowlist: init order runs before any config exists.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "wall-clock time or global randomness reachable from the deterministic analysis cone",
	Run:  runWallClock,
}

// wallClockCone is the set of import paths holding the deterministic
// analysis pipeline: epoch aggregation and clustering, critical-cluster
// detection, hierarchical heavy hitters, and the distributed merge path.
// corpus/wallclock_basic is the fixture package.
var wallClockCone = map[string]bool{
	"repro/internal/core":         true,
	"repro/internal/core/cktable": true,
	"repro/internal/core/engine":  true,
	"repro/internal/core/eps":     true,
	"repro/internal/cluster":      true,
	"repro/internal/critical":     true,
	"repro/internal/hhh":          true,
	"repro/internal/ingest":       true,
	"repro/internal/window":       true,
	"corpus/wallclock_basic":      true,
	"corpus/wallclock_broken":     true,
}

// wallClockAllow names functions ("Recv.Name" or "Name") excused per
// package: connection deadlines, graceful-shutdown timeouts, and reconnect
// backoff are wall-clock-bound by design and sit outside the merge path.
var wallClockAllow = map[string][]string{
	"repro/internal/ingest": {
		// Connection read deadlines, the accept loop that spawns them, and
		// the Serve entry point that starts it.
		"Aggregator.serveConn",
		"Aggregator.acceptLoop",
		"Aggregator.Serve",
		"Aggregator.Listen",
		// Graceful-drain timeouts.
		"Aggregator.CloseGrace",
		"Aggregator.Close",
		// Reconnect backoff, its driver loop, and the constructor that
		// starts the loop.
		"Relay.announce",
		"Relay.run",
		"NewRelay",
		"StartNode",
	},
	"corpus/wallclock_basic": {"backoffAllowed"},
}

// wallClockTimeFuncs are the time-package reads that observe the wall (or a
// runtime timer): conversions and arithmetic on time.Duration are fine.
var wallClockTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"AfterFunc": true, "Tick": true, "NewTimer": true, "NewTicker": true,
}

func runWallClock(p *Pass) {
	if !wallClockCone[p.Pkg.Path()] {
		return
	}
	allowed := map[string]bool{}
	for _, name := range wallClockAllow[p.Pkg.Path()] {
		allowed[name] = true
	}

	type siteInfo struct {
		pos  token.Pos
		what string
	}
	directSites := map[*ast.FuncDecl][]siteInfo{}
	var decls []*ast.FuncDecl

	for _, f := range p.Files {
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				if decl.Body == nil {
					continue
				}
				decls = append(decls, decl)
				d := decl
				ast.Inspect(decl.Body, func(n ast.Node) bool {
					if pos, what, ok := wallClockSite(p, n); ok {
						directSites[d] = append(directSites[d], siteInfo{pos, what})
					}
					return true
				})
			case *ast.GenDecl:
				if decl.Tok != token.VAR {
					continue
				}
				ast.Inspect(decl, func(n ast.Node) bool {
					if pos, what, ok := wallClockSite(p, n); ok {
						p.Reportf(pos, "%s in a package-level initializer of the deterministic analysis cone", what)
					}
					return true
				})
			}
		}
	}

	// Taint closure over the package call graph: a function is tainted if
	// it reads the clock directly or calls a tainted in-package function
	// (any call mode — a spawned timer loop is still the cone's
	// nondeterminism).
	tainted := map[*types.Func]bool{}
	g := p.Sums.Graph()
	for _, decl := range decls {
		if len(directSites[decl]) > 0 {
			if fn := wallClockObj(p, decl); fn != nil {
				tainted[fn] = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, node := range g.Funcs() {
			if tainted[node.Obj] {
				continue
			}
			for _, site := range node.Sites {
				if site.Callee != nil && tainted[site.Callee] {
					tainted[node.Obj] = true
					changed = true
					break
				}
			}
		}
	}

	allowedObjs := map[*types.Func]bool{}
	for _, decl := range decls {
		if allowed[wallClockName(decl)] {
			if fn := wallClockObj(p, decl); fn != nil {
				allowedObjs[fn] = true
			}
		}
	}

	for _, decl := range decls {
		if allowed[wallClockName(decl)] {
			continue
		}
		for _, site := range directSites[decl] {
			p.Reportf(site.pos, "%s in the deterministic analysis cone; thread a clock through the config or allowlist %s", site.what, wallClockName(decl))
		}
		fn := wallClockObj(p, decl)
		if fn == nil {
			continue
		}
		node := g.Node(fn)
		if node == nil {
			continue
		}
		for _, site := range node.Sites {
			if site.Callee != nil && allowedObjs[site.Callee] && tainted[site.Callee] {
				p.Reportf(site.Call.Pos(), "call to %s, which reads the wall clock, from non-allowlisted code in the deterministic analysis cone", site.Callee.Name())
			}
		}
	}
}

// wallClockSite classifies one AST node as a wall-clock or global-rand
// read, returning its position and description.
func wallClockSite(p *Pass, n ast.Node) (token.Pos, string, bool) {
	sel, ok := n.(*ast.SelectorExpr)
	if !ok {
		return token.NoPos, "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return token.NoPos, "", false
	}
	var pkgPath string
	if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
		pkgPath = pn.Imported().Path()
	} else if p.Info.Uses[id] == nil && p.Info.Defs[id] == nil {
		// Unresolved identifier (synthesized AST in the mutation harness):
		// fall back to the syntactic package name.
		switch id.Name {
		case "time":
			pkgPath = "time"
		case "rand":
			pkgPath = "math/rand"
		}
	}
	switch pkgPath {
	case "time":
		if wallClockTimeFuncs[sel.Sel.Name] {
			return sel.Pos(), "call to time." + sel.Sel.Name, true
		}
	case "math/rand", "math/rand/v2":
		// Package-level functions read the shared global source; rand.New /
		// rand.NewSource / rand.NewZipf build explicitly seeded generators,
		// and method calls on those are deterministic.
		if len(sel.Sel.Name) >= 3 && sel.Sel.Name[:3] == "New" {
			return token.NoPos, "", false
		}
		switch p.Info.Uses[sel.Sel].(type) {
		case *types.Func, nil:
			return sel.Pos(), "global rand." + sel.Sel.Name, true
		}
	}
	return token.NoPos, "", false
}

// wallClockName renders a decl as the allowlist key: "Recv.Name" for
// methods, "Name" for functions.
func wallClockName(decl *ast.FuncDecl) string {
	if decl.Recv != nil && len(decl.Recv.List) > 0 {
		t := decl.Recv.List[0].Type
		if st, ok := t.(*ast.StarExpr); ok {
			t = st.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return id.Name + "." + decl.Name.Name
		}
	}
	return decl.Name.Name
}

func wallClockObj(p *Pass, decl *ast.FuncDecl) *types.Func {
	fn, _ := p.Info.Defs[decl.Name].(*types.Func)
	return fn
}
