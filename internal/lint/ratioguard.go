package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/cfg"
	"repro/internal/lint/flow"
)

// RatioGuard reports divisions whose denominator is not proven non-zero on
// every path reaching them. The pipeline's metric ratios are all of the
// shape problems/total-sessions; on a starved epoch (collector restart,
// shed load) the totals are zero and an unguarded ratio silently goes
// NaN/Inf — or, for integer division, panics. The paper's verdicts are only
// reproducible if those ratios are guarded at the computation site, not
// papered over downstream.
//
// The analysis is a forward must-guard problem over the CFG: branch edges
// contribute facts ("len(buf) is non-zero", "n ≥ 2") learned from the
// branch condition — including through &&/|| chains, negation, `eps.Zero`
// calls, and the early-return idiom — and assignments of constants
// contribute clamp facts (`if steps < 1 { steps = 1 }`). Joins intersect,
// so a fact holds only when every path establishes it. In scope are
// divisions (and modulo) whose denominator is an integer expression, a
// numeric conversion of one (`float64(n)`), or a local alias of such a
// conversion (`n := float64(len(s))` … `x / n`); constant denominators are
// exempt. Float-to-float arithmetic is out of scope (see DESIGN.md for the
// false-negative inventory).
var RatioGuard = &Analyzer{
	Name: "ratioguard",
	Doc:  "division not dominated by a non-zero test of its denominator",
	Run:  runRatioGuard,
}

// rgFact is what the analysis knows about one expression (keyed by its
// rendered source form): proven non-zero, and/or an integer lower bound.
type rgFact struct {
	nz    bool
	lb    int64
	hasLB bool
	// deps are the base identifiers the expression reads; assigning to any
	// of them invalidates the fact. Never mutated after creation.
	deps []string
}

// rgAlias records `x := float64(inner)` so a later `y / x` can be guarded
// by facts about inner.
type rgAlias struct {
	inner    ast.Expr
	innerStr string
	deps     []string
}

type rgState struct {
	facts map[string]rgFact
	alias map[string]rgAlias
}

func rgNew() rgState {
	return rgState{facts: make(map[string]rgFact), alias: make(map[string]rgAlias)}
}

func rgClone(s rgState) rgState {
	c := rgState{
		facts: make(map[string]rgFact, len(s.facts)),
		alias: make(map[string]rgAlias, len(s.alias)),
	}
	for k, v := range s.facts {
		c.facts[k] = v
	}
	for k, v := range s.alias {
		c.alias[k] = v
	}
	return c
}

func rgEqual(a, b rgState) bool {
	if len(a.facts) != len(b.facts) || len(a.alias) != len(b.alias) {
		return false
	}
	for k, av := range a.facts {
		bv, ok := b.facts[k]
		if !ok || av.nz != bv.nz || av.hasLB != bv.hasLB || av.lb != bv.lb {
			return false
		}
	}
	for k, av := range a.alias {
		bv, ok := b.alias[k]
		if !ok || av.innerStr != bv.innerStr {
			return false
		}
	}
	return true
}

// rgJoin intersects: a fact survives only if both paths establish it.
func rgJoin(dst, src rgState) rgState {
	for k, dv := range dst.facts {
		sv, ok := src.facts[k]
		if !ok {
			delete(dst.facts, k)
			continue
		}
		dv.nz = dv.nz && sv.nz
		if dv.hasLB && sv.hasLB {
			if sv.lb < dv.lb {
				dv.lb = sv.lb
			}
		} else {
			dv.hasLB, dv.lb = false, 0
		}
		if !dv.nz && !dv.hasLB {
			delete(dst.facts, k)
			continue
		}
		dst.facts[k] = dv
	}
	for k, dv := range dst.alias {
		if sv, ok := src.alias[k]; !ok || sv.innerStr != dv.innerStr {
			delete(dst.alias, k)
		}
	}
	return dst
}

func runRatioGuard(p *Pass) {
	for _, f := range p.Files {
		for _, fn := range functionsIn(f) {
			ratioGuardFunc(p, fn)
		}
	}
}

func ratioGuardFunc(p *Pass, fn funcScope) {
	g := cfg.New(fn.body)
	prob := flow.Problem[rgState]{
		Boundary: rgNew,
		Transfer: func(b *cfg.Block, s rgState) rgState {
			for _, n := range b.Nodes {
				rgTransferNode(p, n, s, false)
			}
			return s
		},
		Edge: func(from *cfg.Block, succIdx int, s rgState) rgState {
			if from.Branch == cfg.Cond && from.Cond != nil && succIdx <= 1 {
				rgDerive(p, s, from.Cond, succIdx == 0)
			}
			return s
		},
		Join:  rgJoin,
		Equal: rgEqual,
		Clone: rgClone,
	}
	res := flow.Solve(g, prob)
	for _, b := range g.Reachable() {
		in, ok := res.In[b]
		if !ok {
			continue
		}
		s := rgClone(in)
		for _, n := range b.Nodes {
			rgCheckDivisions(p, n, s)
			rgTransferNode(p, n, s, true)
		}
	}
}

// rgTransferNode applies one node's kills and gens. The second pass (replay
// with reporting) passes reporting=true only so the function stays
// symmetric; the transfer itself never reports.
func rgTransferNode(p *Pass, n ast.Node, s rgState, _ bool) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		names := make([]string, 0, len(n.Lhs))
		for _, lhs := range n.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if id.Name != "_" {
					names = append(names, id.Name)
				}
				continue
			}
			// Writing through a selector/index/deref (s.n = 0) mutates state
			// reachable from its base identifiers: every fact depending on
			// them is stale now. Killing by base is coarser than killing the
			// exact path, but a stale "non-zero" fact surviving here is a
			// missed division-by-zero — the expensive direction.
			names = append(names, rgBaseIdents(lhs)...)
		}
		rgKill(s, names)
		if len(n.Lhs) == len(n.Rhs) && (n.Tok == token.ASSIGN || n.Tok == token.DEFINE) {
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				rgGenAssign(p, s, id.Name, n.Rhs[i])
			}
		}

	case *ast.IncDecStmt:
		if id, ok := unparen(n.X).(*ast.Ident); ok {
			f, ok := s.facts[id.Name]
			rgKill(s, []string{id.Name})
			if ok && f.hasLB {
				if n.Tok == token.INC {
					f.lb++
				} else {
					f.lb--
				}
				f.nz = f.lb >= 1
				if f.nz || f.hasLB {
					s.facts[id.Name] = rgFact{nz: f.nz, lb: f.lb, hasLB: true, deps: []string{id.Name}}
				}
			}
		} else {
			// x.f++ etc: kill anything depending on the base.
			rgKill(s, rgBaseIdents(n.X))
		}

	case *ast.RangeStmt:
		var names []string
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				names = append(names, id.Name)
			}
		}
		rgKill(s, names)

	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				var names []string
				for _, name := range vs.Names {
					if name.Name != "_" {
						names = append(names, name.Name)
					}
				}
				rgKill(s, names)
				if len(vs.Values) == len(vs.Names) {
					for i, name := range vs.Names {
						if name.Name != "_" {
							rgGenAssign(p, s, name.Name, vs.Values[i])
						}
					}
				}
			}
		}
	}
}

// rgKill drops facts and aliases that read any of the assigned names.
func rgKill(s rgState, names []string) {
	if len(names) == 0 {
		return
	}
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	for k, f := range s.facts {
		for _, d := range f.deps {
			if set[d] {
				delete(s.facts, k)
				break
			}
		}
	}
	for k, a := range s.alias {
		if set[k] {
			delete(s.alias, k)
			continue
		}
		for _, d := range a.deps {
			if set[d] {
				delete(s.alias, k)
				break
			}
		}
	}
}

// rgGenAssign records what an assignment establishes: constant values give
// non-zero/lower-bound facts (the clamp idiom), numeric conversions of
// integer expressions create aliases, and identifier copies inherit.
func rgGenAssign(p *Pass, s rgState, name string, rhs ast.Expr) {
	rhs = unparen(rhs)
	if cv := rgConstValue(p, rhs); cv != nil {
		f := rgFact{deps: []string{name}}
		switch cv.Kind() {
		case constant.Int:
			if iv, ok := constant.Int64Val(cv); ok {
				f.lb, f.hasLB = iv, true
				f.nz = iv != 0
			}
		case constant.Float:
			f.nz = constant.Sign(cv) != 0
		default:
			return
		}
		if f.nz || f.hasLB {
			s.facts[name] = f
		}
		return
	}
	if arg, ok := rgNumericConv(p, rhs); ok && rgIsInteger(p, arg) {
		inner := strings.TrimSpace(types.ExprString(arg))
		s.alias[name] = rgAlias{
			inner:    arg,
			innerStr: inner,
			deps:     append(rgBaseIdents(arg), name),
		}
		return
	}
	if cl, ok := rhs.(*ast.CompositeLit); ok && len(cl.Elts) > 0 {
		// `xs := []T{a, b, c}` proves len(xs) ≥ 1 until xs is reassigned —
		// the rotation idiom `xs[i%len(xs)]` is then safe. (Keyed array
		// literals could have fewer than len(Elts) distinct entries, so only
		// non-emptiness is recorded, not the count.)
		s.facts["len("+name+")"] = rgFact{nz: true, lb: 1, hasLB: true, deps: []string{name}}
		return
	}
	if id, ok := rhs.(*ast.Ident); ok {
		if f, ok := s.facts[id.Name]; ok {
			s.facts[name] = rgFact{nz: f.nz, lb: f.lb, hasLB: f.hasLB, deps: []string{name, id.Name}}
		}
		if a, ok := s.alias[id.Name]; ok {
			s.alias[name] = rgAlias{inner: a.inner, innerStr: a.innerStr, deps: append(append([]string{}, a.deps...), name)}
		}
	}
}

// rgDerive refines the state along one branch edge from a condition.
func rgDerive(p *Pass, s rgState, cond ast.Expr, truthy bool) {
	cond = unparen(cond)
	switch e := cond.(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			if truthy {
				rgDerive(p, s, e.X, true)
				rgDerive(p, s, e.Y, true)
			}
		case token.LOR:
			if !truthy {
				rgDerive(p, s, e.X, false)
				rgDerive(p, s, e.Y, false)
			}
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			if cv := rgConstValue(p, e.Y); cv != nil {
				rgDeriveCmp(s, e.X, e.Op, cv, truthy)
			} else if cv := rgConstValue(p, e.X); cv != nil {
				rgDeriveCmp(s, e.Y, rgMirror(e.Op), cv, truthy)
			}
		}
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			rgDerive(p, s, e.X, !truthy)
		}
	case *ast.CallExpr:
		// eps.Zero(x) false means x is (tolerance-)non-zero.
		if !truthy && rgIsEpsZero(p, e) && len(e.Args) == 1 {
			rgSetNZ(s, e.Args[0])
		}
	}
}

// rgMirror flips a comparison for the constant-on-the-left form.
func rgMirror(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GTR
	case token.LEQ:
		return token.GEQ
	case token.GTR:
		return token.LSS
	case token.GEQ:
		return token.LEQ
	}
	return op
}

// rgNegate rewrites `!(X op C)` as `X op' C`.
func rgNegate(op token.Token) token.Token {
	switch op {
	case token.EQL:
		return token.NEQ
	case token.NEQ:
		return token.EQL
	case token.LSS:
		return token.GEQ
	case token.GEQ:
		return token.LSS
	case token.LEQ:
		return token.GTR
	case token.GTR:
		return token.LEQ
	}
	return op
}

func rgDeriveCmp(s rgState, x ast.Expr, op token.Token, c constant.Value, truthy bool) {
	if !truthy {
		op = rgNegate(op)
	}
	if c.Kind() != constant.Int && c.Kind() != constant.Float {
		return
	}
	sign := constant.Sign(c)
	var k int64
	isInt := false
	if c.Kind() == constant.Int {
		k, isInt = constant.Int64Val(c)
	}
	key := strings.TrimSpace(types.ExprString(unparen(x)))
	f := s.facts[key]
	f.deps = rgBaseIdents(x)
	switch op {
	case token.NEQ:
		if sign == 0 {
			f.nz = true
		}
	case token.EQL:
		if sign != 0 {
			f.nz = true
		}
		if isInt {
			f.lb, f.hasLB = k, true
		}
	case token.GTR:
		if isInt {
			if !f.hasLB || k+1 > f.lb {
				f.lb, f.hasLB = k+1, true
			}
		}
		if sign >= 0 {
			f.nz = true
		}
	case token.GEQ:
		if isInt {
			if !f.hasLB || k > f.lb {
				f.lb, f.hasLB = k, true
			}
		}
		if sign > 0 {
			f.nz = true
		}
	case token.LSS:
		if sign <= 0 {
			f.nz = true
		}
	case token.LEQ:
		if sign < 0 {
			f.nz = true
		}
	}
	if f.nz || f.hasLB {
		s.facts[key] = f
	}
}

func rgSetNZ(s rgState, x ast.Expr) {
	key := strings.TrimSpace(types.ExprString(unparen(x)))
	f := s.facts[key]
	f.nz = true
	f.deps = rgBaseIdents(x)
	s.facts[key] = f
}

// rgCheckDivisions reports in-scope unguarded divisions within node n,
// using the facts in force before n executes.
func rgCheckDivisions(p *Pass, n ast.Node, s rgState) {
	check := func(den ast.Expr) {
		if den == nil {
			return
		}
		rgCheckDen(p, den, s)
	}
	if asg, ok := n.(*ast.AssignStmt); ok && (asg.Tok == token.QUO_ASSIGN || asg.Tok == token.REM_ASSIGN) && len(asg.Rhs) == 1 {
		check(asg.Rhs[0])
	}
	inspectCFGNode(n, func(m ast.Node) bool {
		if be, ok := m.(*ast.BinaryExpr); ok && (be.Op == token.QUO || be.Op == token.REM) {
			check(be.Y)
		}
		return true
	})
}

func rgCheckDen(p *Pass, den ast.Expr, s rgState) {
	den = unparen(den)
	if rgConstValue(p, den) != nil {
		return // constant; a constant zero denominator cannot compile
	}
	// Collect the guard subjects: the denominator itself, the operand of a
	// numeric conversion, and what a recorded alias stands for.
	var subjects []ast.Expr
	denStr := strings.TrimSpace(types.ExprString(den))
	if arg, ok := rgNumericConv(p, den); ok {
		if rgConstValue(p, arg) != nil {
			return
		}
		if !rgIsInteger(p, arg) {
			return // float-to-float conversion: out of scope
		}
		subjects = append(subjects, den, arg)
	} else if rgIsInteger(p, den) {
		subjects = append(subjects, den)
	} else if id, ok := den.(*ast.Ident); ok {
		a, ok := s.alias[id.Name]
		if !ok {
			return // float variable with unknown provenance: out of scope
		}
		subjects = append(subjects, den, a.inner)
		if f, ok := s.facts[a.innerStr]; ok && (f.nz || (f.hasLB && f.lb >= 1)) {
			return
		}
	} else {
		return // float expression: out of scope
	}
	for _, sub := range subjects {
		if rgSubjectGuarded(p, s, sub) {
			return
		}
	}
	p.Reportf(den.Pos(), "division by %s is not dominated by a non-zero guard on every path (NaN/Inf or panic on starved input); add a zero test or use eps.Div", denStr)
}

// rgSubjectGuarded reports whether the facts prove sub non-zero: directly,
// or structurally for `X - k` / `X + k` with a known lower bound on X.
func rgSubjectGuarded(p *Pass, s rgState, sub ast.Expr) bool {
	sub = unparen(sub)
	key := strings.TrimSpace(types.ExprString(sub))
	if f, ok := s.facts[key]; ok && (f.nz || (f.hasLB && f.lb >= 1)) {
		return true
	}
	if be, ok := sub.(*ast.BinaryExpr); ok && (be.Op == token.SUB || be.Op == token.ADD) {
		x, c := be.X, rgConstValue(p, be.Y)
		if c == nil && be.Op == token.ADD {
			x, c = be.Y, rgConstValue(p, be.X)
		}
		if c != nil && c.Kind() == constant.Int {
			if k, ok := constant.Int64Val(c); ok {
				xf, have := s.facts[strings.TrimSpace(types.ExprString(unparen(x)))]
				if have && xf.hasLB {
					if be.Op == token.SUB && xf.lb >= k+1 {
						return true
					}
					if be.Op == token.ADD && xf.lb >= 1-k {
						return true
					}
				}
			}
		}
	}
	return false
}

func rgConstValue(p *Pass, e ast.Expr) constant.Value {
	if tv, ok := p.Info.Types[e]; ok && tv.Value != nil {
		return tv.Value
	}
	return nil
}

// rgNumericConv matches a conversion to a numeric type, returning its
// operand.
func rgNumericConv(p *Pass, e ast.Expr) (ast.Expr, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil, false
	}
	tv, ok := p.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil, false
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); !ok || b.Info()&types.IsNumeric == 0 {
		return nil, false
	}
	return call.Args[0], true
}

func rgIsInteger(p *Pass, e ast.Expr) bool {
	t := p.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// rgIsEpsZero matches eps.Zero(x): a call to a function named Zero from a
// package whose import path is (or ends in) "eps" — the repo's tolerance
// helper — including unqualified calls inside the eps package itself.
func rgIsEpsZero(p *Pass, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if fun.Sel.Name != "Zero" {
			return false
		}
		id, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		pn, ok := p.Info.ObjectOf(id).(*types.PkgName)
		return ok && rgIsEpsPath(pn.Imported().Path())
	case *ast.Ident:
		return fun.Name == "Zero" && p.Pkg != nil && rgIsEpsPath(p.Pkg.Path())
	}
	return false
}

func rgIsEpsPath(path string) bool {
	return path == "eps" || strings.HasSuffix(path, "/eps")
}

// rgBaseIdents collects the base identifiers an expression reads (selector
// bases, call arguments, operands) — the kill set for its facts.
func rgBaseIdents(e ast.Expr) []string {
	seen := make(map[string]bool)
	var out []string
	var walk func(ast.Expr)
	walk = func(e ast.Expr) {
		switch e := e.(type) {
		case *ast.Ident:
			if !seen[e.Name] {
				seen[e.Name] = true
				out = append(out, e.Name)
			}
		case *ast.SelectorExpr:
			walk(e.X)
		case *ast.ParenExpr:
			walk(e.X)
		case *ast.StarExpr:
			walk(e.X)
		case *ast.UnaryExpr:
			walk(e.X)
		case *ast.BinaryExpr:
			walk(e.X)
			walk(e.Y)
		case *ast.IndexExpr:
			walk(e.X)
			walk(e.Index)
		case *ast.CallExpr:
			for _, a := range e.Args {
				walk(a)
			}
		case *ast.TypeAssertExpr:
			walk(e.X)
		case *ast.SliceExpr:
			walk(e.X)
		}
	}
	walk(e)
	return out
}
