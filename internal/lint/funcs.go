package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/cfg"
)

// funcScope is one analyzable function body: a declaration or a function
// literal. The CFG/dataflow analyzers treat each scope independently —
// nested literals are opaque to their enclosing function and get their own
// scope (and their own CFG).
type funcScope struct {
	// name labels diagnostics ("Collector.Serve", "function literal").
	name string
	// ftype carries the signature (named results matter to errflow).
	ftype *ast.FuncType
	body  *ast.BlockStmt
	// deferredLit marks a literal invoked directly by a defer statement
	// (`defer func() { ... }()`). Such a literal legitimately releases
	// locks its enclosing function took, so lockbalance treats an
	// apparently-unmatched unlock there as releasing the caller's lock.
	deferredLit bool
}

// functionsIn returns every function body in the file — declarations and
// all nested literals, each as its own scope.
func functionsIn(f *ast.File) []funcScope {
	deferred := make(map[*ast.FuncLit]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
				deferred[lit] = true
			}
		}
		return true
	})
	var out []funcScope
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				name := fn.Name.Name
				if fn.Recv != nil && len(fn.Recv.List) == 1 {
					if t := recvTypeName(fn.Recv.List[0].Type); t != "" {
						name = t + "." + name
					}
				}
				out = append(out, funcScope{name: name, ftype: fn.Type, body: fn.Body})
			}
		case *ast.FuncLit:
			out = append(out, funcScope{
				name: "function literal", ftype: fn.Type, body: fn.Body,
				deferredLit: deferred[fn],
			})
		}
		return true
	})
	return out
}

func recvTypeName(t ast.Expr) string {
	switch t := t.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(t.X)
	}
	return ""
}

// capturedVars returns the variables referenced inside function literals
// nested within body. A captured variable's lifetime and access pattern are
// no longer visible to a single-function analysis, so the CFG analyzers
// stop tracking it rather than guess.
func capturedVars(p *Pass, body *ast.BlockStmt) map[*types.Var]bool {
	caps := make(map[*types.Var]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(inner ast.Node) bool {
			if id, ok := inner.(*ast.Ident); ok {
				if v, ok := p.Info.Uses[id].(*types.Var); ok && !v.IsField() {
					caps[v] = true
				}
				if v, ok := p.Info.Defs[id].(*types.Var); ok && !v.IsField() {
					// Defined inside the literal: not a capture of an outer
					// variable, but recording it is harmless — the outer
					// scope never sees the object at all.
					caps[v] = true
				}
			}
			return true
		})
		return false // the literal's own nested literals were covered above
	})
	return caps
}

// inspectCFGNode walks n in the same spirit the CFG assigns nodes to
// blocks: it does not descend into nested function literals (they are
// separate scopes with separate graphs), and on a *ast.RangeStmt — which a
// block holds only as the per-iteration key/value binding — it visits Key
// and Value but neither the range operand nor the body. (Contrast
// inspectShallow, which skips literals but otherwise walks everything.)
func inspectCFGNode(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.RangeStmt:
			if m.Key != nil {
				inspectCFGNode(m.Key, fn)
			}
			if m.Value != nil {
				inspectCFGNode(m.Value, fn)
			}
			return false
		}
		if m == nil {
			return true
		}
		return fn(m)
	})
}

// blockFallsToExit reports whether control can fall off the end of block b
// into the function's Exit without an explicit return — the implicit
// path-end at the closing brace that exit-obligation analyzers must check.
func blockFallsToExit(b *cfg.Block, g *cfg.Graph) bool {
	toExit := false
	for _, s := range b.Succs {
		if s == g.Exit {
			toExit = true
		}
	}
	if !toExit {
		return false
	}
	if len(b.Nodes) > 0 {
		if _, isReturn := b.Nodes[len(b.Nodes)-1].(*ast.ReturnStmt); isReturn {
			return false
		}
	}
	return true
}
