package flow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"repro/internal/lint/cfg"
)

// buildFunc parses "package p\n" + src and builds the CFG of the first
// function declaration.
func buildFunc(t *testing.T, src string) *cfg.Graph {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return cfg.New(fd.Body)
		}
	}
	t.Fatal("fixture has no function declaration")
	return nil
}

// callsIn collects the callee names of the call statements in a block — the
// toy "gen set" the test problems are built from.
func callsIn(b *cfg.Block) []string {
	var out []string
	for _, n := range b.Nodes {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			out = append(out, id.Name)
		}
	}
	return out
}

// callBlock finds the reachable block containing a call statement to name.
func callBlock(t *testing.T, g *cfg.Graph, name string) *cfg.Block {
	t.Helper()
	for _, b := range g.Reachable() {
		for _, c := range callsIn(b) {
			if c == name {
				return b
			}
		}
	}
	t.Fatalf("no reachable block calls %s()", name)
	return nil
}

type set = map[string]bool

func cloneSet(s set) set {
	c := make(set, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func equalSet(a, b set) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// The diamond every test below runs on: start() always executes, then
// exactly one of a()/b(), then tail().
const diamond = `func f(c bool) {
	start()
	if c {
		a()
	} else {
		b()
	}
	tail()
}`

// TestForwardMayUnion: with a union join, the state entering tail() holds
// every call on *some* path — start, a, and b.
func TestForwardMayUnion(t *testing.T) {
	g := buildFunc(t, diamond)
	res := Solve(g, Problem[set]{
		Boundary: func() set { return set{} },
		Transfer: func(b *cfg.Block, s set) set {
			for _, c := range callsIn(b) {
				s[c] = true
			}
			return s
		},
		Join: func(dst, src set) set {
			for k := range src {
				dst[k] = true
			}
			return dst
		},
		Equal: equalSet,
		Clone: cloneSet,
	})
	got := res.In[callBlock(t, g, "tail")]
	want := set{"start": true, "a": true, "b": true}
	if !equalSet(got, want) {
		t.Errorf("may-union state entering tail() = %v, want %v", got, want)
	}
}

// TestForwardMustIntersection: with an intersection join, only calls on
// *every* path survive — a and b each miss one branch.
func TestForwardMustIntersection(t *testing.T) {
	g := buildFunc(t, diamond)
	res := Solve(g, Problem[set]{
		Boundary: func() set { return set{} },
		Transfer: func(b *cfg.Block, s set) set {
			for _, c := range callsIn(b) {
				s[c] = true
			}
			return s
		},
		Join: func(dst, src set) set {
			for k := range dst {
				if !src[k] {
					delete(dst, k)
				}
			}
			return dst
		},
		Equal: equalSet,
		Clone: cloneSet,
	})
	got := res.In[callBlock(t, g, "tail")]
	want := set{"start": true}
	if !equalSet(got, want) {
		t.Errorf("must-intersection state entering tail() = %v, want %v", got, want)
	}
}

// TestEdgeRefinement: the Edge hook sees which side of a Cond block the
// state flows along — Succs[0] is the true edge, Succs[1] the false edge.
func TestEdgeRefinement(t *testing.T) {
	g := buildFunc(t, diamond)
	res := Solve(g, Problem[set]{
		Boundary: func() set { return set{} },
		Transfer: func(b *cfg.Block, s set) set { return s },
		Edge: func(from *cfg.Block, succIdx int, s set) set {
			if from.Branch == cfg.Cond {
				if succIdx == 0 {
					s["true-edge"] = true
				} else {
					s["false-edge"] = true
				}
			}
			return s
		},
		Join: func(dst, src set) set {
			for k := range src {
				dst[k] = true
			}
			return dst
		},
		Equal: equalSet,
		Clone: cloneSet,
	})
	if got := res.In[callBlock(t, g, "a")]; !got["true-edge"] || got["false-edge"] {
		t.Errorf("then-branch entry state = %v, want exactly the true edge", got)
	}
	if got := res.In[callBlock(t, g, "b")]; !got["false-edge"] || got["true-edge"] {
		t.Errorf("else-branch entry state = %v, want exactly the false edge", got)
	}
}

// TestBackwardLiveness: a backward may-problem computes, for each block, the
// calls on some path strictly after it (In[b] is the state at the block's
// END in a backward analysis).
func TestBackwardLiveness(t *testing.T) {
	g := buildFunc(t, diamond)
	res := Solve(g, Problem[set]{
		Backward: true,
		Boundary: func() set { return set{} },
		Transfer: func(b *cfg.Block, s set) set {
			for _, c := range callsIn(b) {
				s[c] = true
			}
			return s
		},
		Join: func(dst, src set) set {
			for k := range src {
				dst[k] = true
			}
			return dst
		},
		Equal: equalSet,
		Clone: cloneSet,
	})
	if got, want := res.In[callBlock(t, g, "a")], (set{"tail": true}); !equalSet(got, want) {
		t.Errorf("state after a()'s block = %v, want %v", got, want)
	}
	if got := res.In[callBlock(t, g, "start")]; !got["a"] || !got["b"] || !got["tail"] {
		t.Errorf("state after the entry block = %v, want a, b, and tail all live", got)
	}
	if got := res.In[callBlock(t, g, "tail")]; len(got) != 0 {
		t.Errorf("state after the final block = %v, want empty", got)
	}
}

// TestLoopFixedPoint: facts generated inside a loop must propagate around
// the back edge and stabilize.
func TestLoopFixedPoint(t *testing.T) {
	g := buildFunc(t, `func f(n int) {
	for i := 0; i < n; i++ {
		work()
	}
	tail()
}`)
	res := Solve(g, Problem[set]{
		Boundary: func() set { return set{} },
		Transfer: func(b *cfg.Block, s set) set {
			for _, c := range callsIn(b) {
				s[c] = true
			}
			return s
		},
		Join: func(dst, src set) set {
			for k := range src {
				dst[k] = true
			}
			return dst
		},
		Equal: equalSet,
		Clone: cloneSet,
	})
	// After the fixed point, the loop body's own fact has traveled around
	// the back edge: entering the body again, work is already present.
	if got := res.In[callBlock(t, g, "work")]; !got["work"] {
		t.Errorf("state entering the loop body = %v, want the back-edge fact work", got)
	}
	if got := res.In[callBlock(t, g, "tail")]; !got["work"] {
		// The zero-iteration path misses work(), but this is a may-union.
		t.Errorf("state entering tail() = %v, want work present via the loop path", got)
	}
}

// TestSolverBudgetTerminates: a lattice whose Equal never reports
// convergence must exhaust the pass budget and return rather than hang.
func TestSolverBudgetTerminates(t *testing.T) {
	g := buildFunc(t, `func f() {
	for {
		work()
	}
}`)
	res := Solve(g, Problem[int]{
		Boundary: func() int { return 0 },
		Transfer: func(b *cfg.Block, s int) int { return s + 1 },
		Join:     func(dst, src int) int { return dst + src },
		Equal:    func(a, b int) bool { return false },
		Clone:    func(s int) int { return s },
	})
	if res.In == nil {
		t.Fatal("solver returned no result")
	}
}
