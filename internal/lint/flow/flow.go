// Package flow is a generic dataflow worklist solver over the control-flow
// graphs of internal/lint/cfg. An analyzer states its problem as a lattice —
// a state type S, a join, a per-block transfer function — and Solve iterates
// to the fixed point. The same engine runs forward problems (resource and
// lock tracking, non-zero facts) and backward problems (liveness of error
// values); branch-sensitive analyzers additionally refine the state flowing
// along each outgoing edge of a Cond block (true edge vs false edge).
//
// Termination is the analyzer's contract: joins must climb a finite-height
// lattice (the in-repo analyzers use small clamped intervals and finite
// variable sets). As a backstop against a buggy lattice looping forever on
// pathological input, Solve gives up after a generous pass budget and
// returns the states reached so far — for a may-analysis that is merely
// conservative, never wrong.
package flow

import "repro/internal/lint/cfg"

// Problem describes one dataflow analysis over a function's CFG.
type Problem[S any] struct {
	// Backward selects the direction: false propagates Entry → Exit along
	// Succs, true propagates exit-wards states along Preds (with each
	// block's nodes conceptually processed in reverse by Transfer).
	Backward bool

	// Boundary produces the state at the analysis boundary: the function
	// entry for forward problems, every path end for backward problems. It
	// is called once per seed block and may return shared immutable state —
	// the solver clones before mutating.
	Boundary func() S

	// Transfer maps the state entering a block (in flow direction) to the
	// state leaving it. It receives a clone and may mutate it freely.
	Transfer func(b *cfg.Block, s S) S

	// Edge, if non-nil, refines the state flowing from `from` to its
	// successor Succs[succIdx]; forward problems use it to learn from
	// branch conditions (Succs[0] = condition true, Succs[1] = false on
	// Cond blocks). It receives a clone and may mutate it. Ignored for
	// backward problems.
	Edge func(from *cfg.Block, succIdx int, s S) S

	// Join merges src into dst and returns the result; it may mutate dst
	// but not src.
	Join func(dst, src S) S

	Equal func(a, b S) bool
	Clone func(s S) S
}

// Result holds the fixed-point states. In[b] is the state entering block b
// in flow direction: before its first node for forward problems, after its
// last node for backward problems. Blocks the analysis never reached (dead
// code, or — backward — blocks with no path to an exit) are absent;
// analyzers replaying Transfer for reporting skip those.
type Result[S any] struct {
	In map[*cfg.Block]S
}

// maxPasses bounds total block visits (see the package comment). The
// in-repo lattices converge in a handful of passes; the budget only exists
// so a lattice bug degrades to a conservative answer instead of a hang.
const maxPasses = 64

// Solve runs the worklist to a fixed point over g.
func Solve[S any](g *cfg.Graph, p Problem[S]) Result[S] {
	in := make(map[*cfg.Block]S, len(g.Blocks))
	visits := make(map[*cfg.Block]int, len(g.Blocks))

	var queue []*cfg.Block
	queued := make(map[*cfg.Block]bool, len(g.Blocks))
	push := func(b *cfg.Block) {
		if !queued[b] {
			queued[b] = true
			queue = append(queue, b)
		}
	}

	// Seed the boundary. Backward problems flow from every path end: the
	// Exit block (returns and fall-off) and panic-shaped sinks. Blocks on
	// cycles with no path to any exit (for {} loops) are additionally
	// seeded with the boundary state so code inside them is still analyzed.
	if p.Backward {
		for _, b := range g.Reachable() {
			if len(b.Succs) == 0 || b == g.Exit {
				in[b] = p.Boundary()
				push(b)
			}
		}
		for _, b := range g.Reachable() {
			if _, ok := in[b]; !ok {
				in[b] = p.Boundary()
				push(b)
			}
		}
	} else {
		in[g.Entry] = p.Boundary()
		push(g.Entry)
	}

	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		queued[b] = false
		if visits[b]++; visits[b] > maxPasses {
			continue
		}

		out := p.Transfer(b, p.Clone(in[b]))

		var flowTo []*cfg.Block
		if p.Backward {
			flowTo = b.Preds
		} else {
			flowTo = b.Succs
		}
		for i, next := range flowTo {
			s := p.Clone(out)
			if !p.Backward && p.Edge != nil {
				s = p.Edge(b, i, s)
			}
			old, ok := in[next]
			if !ok {
				in[next] = s
				push(next)
				continue
			}
			merged := p.Join(p.Clone(old), s)
			if !p.Equal(merged, old) {
				in[next] = merged
				push(next)
			}
		}
	}
	return Result[S]{In: in}
}
