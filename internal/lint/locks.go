package lint

import (
	"go/ast"
	"go/types"
)

// MutexCopy reports values of types containing a sync lock (Mutex, RWMutex,
// WaitGroup, Cond, Once, Pool, Map) being copied: by-value receivers,
// parameters and results, assignments from existing values, and by-value
// range variables. A copied lock guards nothing — the copy and the original
// lock independently, which is a data race that -race only catches if the
// schedule cooperates.
var MutexCopy = &Analyzer{
	Name: "mutexcopy",
	Doc:  "copying a struct that contains a sync.Mutex (or other sync primitive)",
	Run:  runMutexCopy,
}

func runMutexCopy(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.FuncDecl:
				checkSignature(p, node.Recv, node.Type)
			case *ast.FuncLit:
				checkSignature(p, nil, node.Type)
			case *ast.AssignStmt:
				for _, rhs := range node.Rhs {
					checkValueCopy(p, rhs)
				}
			case *ast.ValueSpec:
				for _, v := range node.Values {
					checkValueCopy(p, v)
				}
			case *ast.RangeStmt:
				if node.Value != nil && containsLock(p.TypeOf(node.Value)) {
					p.Reportf(node.Value.Pos(), "range value copies %s which contains a sync lock; iterate by index or pointer", p.TypeOf(node.Value))
				}
			}
			return true
		})
	}
}

func checkSignature(p *Pass, recv *ast.FieldList, ft *ast.FuncType) {
	report := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := p.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if containsLock(t) {
				p.Reportf(field.Type.Pos(), "%s passes %s by value but it contains a sync lock; use a pointer", what, t)
			}
		}
	}
	report(recv, "receiver")
	report(ft.Params, "parameter")
	report(ft.Results, "result")
}

// checkValueCopy flags reads that copy an existing lock-containing value.
// Composite literals and calls construct fresh values and are fine; loading
// through an identifier, field, index, or dereference duplicates a live
// lock.
func checkValueCopy(p *Pass, rhs ast.Expr) {
	switch rhs.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return
	}
	t := p.TypeOf(rhs)
	if t == nil {
		return
	}
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return
	}
	if containsLock(t) {
		p.Reportf(rhs.Pos(), "assignment copies %s which contains a sync lock; use a pointer", t)
	}
}

// lockTypeNames are the sync primitives that must never be copied after
// first use.
var lockTypeNames = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Cond": true, "Once": true, "Pool": true, "Map": true,
}

// containsLock reports whether t (transitively through struct fields and
// array elements, but not through pointers) embeds a sync primitive.
func containsLock(t types.Type) bool {
	return containsLockSeen(t, make(map[types.Type]bool))
}

func containsLockSeen(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && lockTypeNames[obj.Name()] {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockSeen(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockSeen(u.Elem(), seen)
	}
	return false
}

// mutexCall matches calls of the form recv.Lock()/Unlock()/RLock()/RUnlock()
// where recv is a sync.Mutex or sync.RWMutex (possibly behind a pointer),
// returning the rendered receiver and the operation.
func mutexCall(p *Pass, call *ast.CallExpr) (recv, op string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", ""
	}
	t := p.TypeOf(sel.X)
	if t == nil {
		return "", ""
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" || (obj.Name() != "Mutex" && obj.Name() != "RWMutex") {
		return "", ""
	}
	return types.ExprString(sel.X), sel.Sel.Name
}
