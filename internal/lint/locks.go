package lint

import (
	"go/ast"
	"go/types"
)

// MutexCopy reports values of types containing a sync lock (Mutex, RWMutex,
// WaitGroup, Cond, Once, Pool, Map) being copied: by-value receivers,
// parameters and results, assignments from existing values, and by-value
// range variables. A copied lock guards nothing — the copy and the original
// lock independently, which is a data race that -race only catches if the
// schedule cooperates.
var MutexCopy = &Analyzer{
	Name: "mutexcopy",
	Doc:  "copying a struct that contains a sync.Mutex (or other sync primitive)",
	Run:  runMutexCopy,
}

func runMutexCopy(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.FuncDecl:
				checkSignature(p, node.Recv, node.Type)
			case *ast.FuncLit:
				checkSignature(p, nil, node.Type)
			case *ast.AssignStmt:
				for _, rhs := range node.Rhs {
					checkValueCopy(p, rhs)
				}
			case *ast.ValueSpec:
				for _, v := range node.Values {
					checkValueCopy(p, v)
				}
			case *ast.RangeStmt:
				if node.Value != nil && containsLock(p.TypeOf(node.Value)) {
					p.Reportf(node.Value.Pos(), "range value copies %s which contains a sync lock; iterate by index or pointer", p.TypeOf(node.Value))
				}
			}
			return true
		})
	}
}

func checkSignature(p *Pass, recv *ast.FieldList, ft *ast.FuncType) {
	report := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := p.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if containsLock(t) {
				p.Reportf(field.Type.Pos(), "%s passes %s by value but it contains a sync lock; use a pointer", what, t)
			}
		}
	}
	report(recv, "receiver")
	report(ft.Params, "parameter")
	report(ft.Results, "result")
}

// checkValueCopy flags reads that copy an existing lock-containing value.
// Composite literals and calls construct fresh values and are fine; loading
// through an identifier, field, index, or dereference duplicates a live
// lock.
func checkValueCopy(p *Pass, rhs ast.Expr) {
	switch rhs.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return
	}
	t := p.TypeOf(rhs)
	if t == nil {
		return
	}
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return
	}
	if containsLock(t) {
		p.Reportf(rhs.Pos(), "assignment copies %s which contains a sync lock; use a pointer", t)
	}
}

// lockTypeNames are the sync primitives that must never be copied after
// first use.
var lockTypeNames = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Cond": true, "Once": true, "Pool": true, "Map": true,
}

// containsLock reports whether t (transitively through struct fields and
// array elements, but not through pointers) embeds a sync primitive.
func containsLock(t types.Type) bool {
	return containsLockSeen(t, make(map[types.Type]bool))
}

func containsLockSeen(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && lockTypeNames[obj.Name()] {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockSeen(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockSeen(u.Elem(), seen)
	}
	return false
}

// LockHeld reports functions that return — or fall off the end — while a
// sync.Mutex/RWMutex locked in the same function is still held and no
// unlock has been deferred. The collector and assembler rely on short
// critical sections; an early return that skips the unlock deadlocks every
// other connection handler.
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc:  "return (or fall-through) while a mutex locked in this function is still held",
	Run:  runLockHeld,
}

func runLockHeld(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			st := newLockState()
			terminated := walkLockBlock(p, body.List, st)
			if !terminated {
				for name := range st.held {
					if !st.deferred[name] {
						p.Reportf(body.Rbrace, "function ends with %s still locked and no deferred unlock", name)
					}
				}
			}
			return true
		})
	}
}

type lockState struct {
	// held maps the rendered receiver expression ("c.mu") to locked-ness.
	held map[string]bool
	// deferred marks receivers with a deferred unlock in scope.
	deferred map[string]bool
}

func newLockState() *lockState {
	return &lockState{held: make(map[string]bool), deferred: make(map[string]bool)}
}

func (s *lockState) clone() *lockState {
	c := newLockState()
	for k, v := range s.held {
		c.held[k] = v
	}
	for k, v := range s.deferred {
		c.deferred[k] = v
	}
	return c
}

// walkLockBlock interprets a statement list, tracking lock/unlock pairs on
// sync mutexes. It returns true when the list definitely terminates (ends
// in a return). The interpretation is deliberately shallow: loops, selects
// and switches are scanned for diagnostics in a cloned state without
// propagating their effects, which keeps the rule conservative.
func walkLockBlock(p *Pass, stmts []ast.Stmt, st *lockState) (terminated bool) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			applyLockCall(p, s.X, st)
		case *ast.DeferStmt:
			if recv, op := mutexCall(p, s.Call); op == "Unlock" || op == "RUnlock" {
				st.deferred[recv] = true
			}
		case *ast.ReturnStmt:
			for name := range st.held {
				if !st.deferred[name] {
					p.Reportf(s.Pos(), "return with %s still locked and no deferred unlock", name)
				}
			}
			return true
		case *ast.BlockStmt:
			if walkLockBlock(p, s.List, st) {
				return true
			}
		case *ast.IfStmt:
			thenSt := st.clone()
			thenTerm := walkLockBlock(p, s.Body.List, thenSt)
			elseSt := st.clone()
			elseTerm := false
			if s.Else != nil {
				switch e := s.Else.(type) {
				case *ast.BlockStmt:
					elseTerm = walkLockBlock(p, e.List, elseSt)
				case *ast.IfStmt:
					elseTerm = walkLockBlock(p, []ast.Stmt{e}, elseSt)
				}
			}
			if thenTerm && elseTerm {
				return true
			}
			// Merge the branches that continue past the if.
			merged := newLockState()
			for _, out := range []struct {
				st   *lockState
				term bool
			}{{thenSt, thenTerm}, {elseSt, elseTerm}} {
				if out.term {
					continue
				}
				for k := range out.st.held {
					merged.held[k] = true
				}
				for k := range out.st.deferred {
					merged.deferred[k] = true
				}
			}
			*st = *merged
		case *ast.ForStmt:
			walkLockBlock(p, s.Body.List, st.clone())
		case *ast.RangeStmt:
			walkLockBlock(p, s.Body.List, st.clone())
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if comm, ok := c.(*ast.CommClause); ok {
					walkLockBlock(p, comm.Body, st.clone())
				}
			}
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkLockBlock(p, cc.Body, st.clone())
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkLockBlock(p, cc.Body, st.clone())
				}
			}
		}
	}
	return false
}

func applyLockCall(p *Pass, e ast.Expr, st *lockState) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	recv, op := mutexCall(p, call)
	switch op {
	case "Lock", "RLock":
		st.held[recv] = true
	case "Unlock", "RUnlock":
		delete(st.held, recv)
	}
}

// mutexCall matches calls of the form recv.Lock()/Unlock()/RLock()/RUnlock()
// where recv is a sync.Mutex or sync.RWMutex (possibly behind a pointer),
// returning the rendered receiver and the operation.
func mutexCall(p *Pass, call *ast.CallExpr) (recv, op string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", ""
	}
	t := p.TypeOf(sel.X)
	if t == nil {
		return "", ""
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" || (obj.Name() != "Mutex" && obj.Name() != "RWMutex") {
		return "", ""
	}
	return types.ExprString(sel.X), sel.Sel.Name
}
