package lint

import (
	"go/ast"
	"go/parser"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantCorpusAnalyzers registers each golden fixture under testdata with the
// analyzers it exercises. A fixture file without an entry here fails the
// corpus test, so new fixtures cannot silently go unchecked.
var wantCorpusAnalyzers = map[string][]*Analyzer{
	"cfg_adversarial.go":   {LockBalance, PoolRelease, ErrFlow, RatioGuard},
	"lockbalance_basic.go": {LockBalance},
	"poolrelease_basic.go": {PoolRelease},
	"errflow_basic.go":     {ErrFlow},
	"ratioguard_basic.go":  {RatioGuard},

	// Promoted regression repros (formerly zz_repro_test.go).
	"ratioguard_kill.go":         {RatioGuard},
	"lockbalance_fallthrough.go": {LockBalance},

	// Interprocedural concurrency analyzers.
	"goleak_basic.go":         {GoLeak},
	"chandiscipline_basic.go": {ChanDiscipline},
	"wgbalance_basic.go":      {WgBalance},

	// Determinism and pooled-lifetime analyzers.
	"detorder_basic.go":     {DetOrder},
	"poollifetime_basic.go": {PoolLifetime},
	"wallclock_basic.go":    {WallClock},
}

// TestWantCorpus runs the golden fixtures: every line carrying a
//
//	// want "regexp" ["regexp" ...]
//
// comment must receive exactly the diagnostics those regexps match (against
// the rendered "msg [rule]" form), and no other line may receive any. The
// corpus is the behavioral contract of the path-sensitive analyzers — the
// positives pin true-bug shapes, the negatives pin the guard idioms the
// repository relies on.
func TestWantCorpus(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatalf("reading testdata: %v", err)
	}
	seen := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		seen[e.Name()] = true
		analyzers, ok := wantCorpusAnalyzers[e.Name()]
		if !ok {
			t.Errorf("testdata/%s is not registered in wantCorpusAnalyzers", e.Name())
			continue
		}
		t.Run(e.Name(), func(t *testing.T) {
			runWantFile(t, filepath.Join("testdata", e.Name()), analyzers)
		})
	}
	for name := range wantCorpusAnalyzers {
		if !seen[name] {
			t.Errorf("registered fixture testdata/%s does not exist", name)
		}
	}
}

// wantQuoted extracts the double-quoted regexp sources of a want comment.
// The content between the quotes is used verbatim as a regexp (no string
// unquoting), so \d and \( work naturally; a want pattern cannot contain a
// double quote.
var wantQuoted = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type wantEntry struct {
	source  string
	re      *regexp.Regexp
	matched bool
}

func runWantFile(t *testing.T, path string, analyzers []*Analyzer) {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading fixture: %v", err)
	}
	f, err := parser.ParseFile(fixtureFset, path, src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: fixtureImporter}
	tpkg, err := conf.Check("corpus/"+strings.TrimSuffix(filepath.Base(path), ".go"), fixtureFset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}

	wants := make(map[int][]*wantEntry)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			idx := strings.Index(c.Text, "// want ")
			if idx < 0 {
				continue
			}
			line := fixtureFset.Position(c.Pos()).Line
			for _, m := range wantQuoted.FindAllStringSubmatch(c.Text[idx:], -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", path, line, m[1], err)
				}
				wants[line] = append(wants[line], &wantEntry{source: m[1], re: re})
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("%s has no want comments; a golden fixture must pin at least one finding", path)
	}

	diags := Run([]*Package{{
		Path:  tpkg.Path(),
		Fset:  fixtureFset,
		Files: []*ast.File{f},
		Types: tpkg,
		Info:  info,
	}}, analyzers)

	for _, d := range diags {
		rendered := d.Msg + " [" + d.Rule + "]"
		matched := false
		for _, w := range wants[d.Pos.Line] {
			if !w.matched && w.re.MatchString(rendered) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for line, entries := range wants {
		for _, w := range entries {
			if !w.matched {
				t.Errorf("%s:%d: want %q matched no diagnostic", path, line, w.source)
			}
		}
	}
}
