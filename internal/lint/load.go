package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("repro/internal/cluster").
	Path string
	// Dir is the package directory on disk.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Load expands patterns relative to dir (a module root or any directory
// inside one), then parses and type-checks each matched package from
// source. Patterns follow the go tool's shape: "./..." walks recursively,
// anything else names one directory. Test files are excluded: the analyzers
// target production code, and several rules (errdrop in particular) are
// deliberately silent in tests.
func Load(dir string, patterns []string) ([]*Package, error) {
	modRoot, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, d := range dirs {
		pkg, err := loadDir(fset, imp, modRoot, modPath, d)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// findModule locates the enclosing go.mod and returns its root and module
// path.
func findModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod above %s", abs)
		}
		d = parent
	}
}

// expandPatterns resolves pattern arguments into package directories.
func expandPatterns(base string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			root := filepath.Join(base, rest)
			err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
					return filepath.SkipDir
				}
				if hasGoFiles(p) {
					add(p)
				}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("lint: walking %s: %w", pat, err)
			}
			continue
		}
		d := filepath.Join(base, pat)
		if !hasGoFiles(d) {
			return nil, fmt.Errorf("lint: no Go files in %s", pat)
		}
		add(d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	names, err := goFileNames(dir)
	return err == nil && len(names) > 0
}

// goFileNames lists the non-test Go files of a directory, sorted.
func goFileNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// loadDir parses and type-checks the package in one directory. A directory
// with only test files yields (nil, nil).
func loadDir(fset *token.FileSet, imp types.Importer, modRoot, modPath, dir string) (*Package, error) {
	names, err := goFileNames(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, nil
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	path, err := importPath(modRoot, modPath, dir)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

func importPath(modRoot, modPath, dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(modRoot, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return modPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, modPath)
	}
	return modPath + "/" + filepath.ToSlash(rel), nil
}
