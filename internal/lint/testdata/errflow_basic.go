// Golden fixture for the errflow analyzer.
package fixture

import "errors"

func probe() error { return errors.New("probe failed") }

// True positive: the first probe's error is overwritten unchecked.
func overwritten() error {
	err := probe() // want "the error assigned to err is overwritten or dropped"
	err = probe()
	return err
}

// True positive: the last store is discarded without any read.
func discarded() {
	err := probe() // want "overwritten or dropped"
	err = probe()
	_ = err
}

// Guarded negative: every assignment is checked before the next.
func checked() error {
	err := probe()
	if err != nil {
		return err
	}
	err = probe()
	return err
}

// Guarded negative: the retry loop reads err on every iteration.
func retried() error {
	var err error
	for i := 0; i < 3; i++ {
		err = probe()
		if err == nil {
			break
		}
	}
	return err
}

// Guarded negative: a naked return reads the named result.
func named() (err error) {
	err = probe()
	return
}

// neverFails always returns nil — its summary proves Error == always-nil.
func neverFails() error { return nil }

// Interprocedural negative: dropping a provably-nil error is the same as
// the exempt `err = nil` reset, so the unread store is not reported.
func dropsProvenNil() error {
	err := neverFails()
	err = probe()
	return err
}
