// Package goleak_basic pins the goroutine-leak analyzer: a spawned
// goroutine that can spin or block forever with no channel operation in its
// stuck region is unstoppable by construction and leaks for the life of the
// process. Interprocedurally: spawning a named function whose summary says
// the same is the identical bug one hop away.
package goleak_basic

import "time"

// spinner never terminates and touches no channel: the summary carries
// NeverTerminates + StuckNoComm up to every spawn site.
func spinner() {
	for {
		time.Sleep(time.Millisecond)
	}
}

// wrapper inherits spinner's never-terminates fact through the call.
func wrapper() {
	spinner()
}

func spawnLiteralSpin() {
	go func() { // want "goroutine can run forever with no channel operation"
		for {
		}
	}()
}

func spawnLiteralSelect() {
	go func() { // want "goroutine can run forever with no channel operation"
		select {}
	}()
}

func spawnNamedSpinner() {
	go spinner() // want "goroutine spinner can run forever with no channel operation"
}

func spawnThroughWrapper() {
	go wrapper() // want "goroutine wrapper can run forever with no channel operation"
}

// eventLoop also never terminates, but its loop receives on a channel:
// something external can signal it, so it is not a leak by this rule.
func eventLoop(ch chan int, out chan<- int) {
	for {
		out <- <-ch
	}
}

func spawnEventLoop(ch chan int, out chan<- int) {
	go eventLoop(ch, out)
}

// stoppable literal: the quit channel gives the region a comm op.
func spawnStoppable(quit chan struct{}) {
	go func() {
		for {
			select {
			case <-quit:
				return
			default:
			}
		}
	}()
}

// terminating worker: plain loop that ends — no stuck region at all.
func spawnFinite(n int) {
	go func() {
		for i := 0; i < n; i++ {
		}
	}()
}

// suppressed: the report lands on the go statement, so the ignore comment
// covers it there.
func spawnSuppressed() {
	//vqlint:ignore goleak demo daemon is intentionally unstoppable
	go spinner()
}
