// Golden fixture for the poolrelease analyzer.
package fixture

import "sync"

type buf struct{ data []byte }

func (b *buf) Release() {}

func Acquire() *buf { return &buf{} }

var bytePool sync.Pool

// True positive: the error path skips the release.
func leaky(fail bool) int {
	b := Acquire()
	if fail {
		return -1 // want "b acquired from Acquire .* does not reach Release/Put"
	}
	b.Release()
	return len(b.data)
}

// True positive: sync.Pool Get without Put on the short-circuit path.
func fromPool(n int) {
	p := bytePool.Get().(*[]byte)
	if n == 0 {
		return // want "p acquired from bytePool.Get"
	}
	bytePool.Put(p)
}

// Guarded negative: deferred release covers every path; passing the value
// as a call argument is borrowing, not an ownership transfer.
func safe(fail bool) int {
	b := Acquire()
	defer b.Release()
	if fail {
		return -1
	}
	return use(b)
}

func use(b *buf) int { return len(b.data) }

// Guarded negative: ownership moves to the caller.
func handoff() *buf {
	b := Acquire()
	return b
}

// Guarded negative: panic paths owe the pool nothing.
func crashes(fail bool) {
	b := Acquire()
	if fail {
		panic("corrupt digest")
	}
	b.Release()
}

// cleanup releases its parameter on every path: its summary discharges the
// caller's obligation at the call site.
func cleanup(b *buf) {
	b.data = b.data[:0]
	b.Release()
}

// maybeCleanup releases only sometimes, so it proves nothing.
func maybeCleanup(b *buf, keep bool) {
	if !keep {
		b.Release()
	}
}

// Interprocedural negative: the release happens inside the helper.
func releasedViaHelper() {
	b := Acquire()
	cleanup(b)
}

// Interprocedural positive: a conditional release in the helper is not a
// release on every path, so the obligation stands.
func maybeReleasedViaHelper(keep bool) {
	b := Acquire()
	maybeCleanup(b, keep)
} // want "b acquired from Acquire .* does not reach Release/Put"
