// Package chandiscipline_basic pins the channel state machine: definite
// double closes, sends on closed channels, nil-channel operations that
// block forever — and the idioms that must stay silent (conditional close,
// nil-in-select case disabling, close through a helper seen exactly once).
package chandiscipline_basic

func doubleClose() {
	ch := make(chan int)
	close(ch)
	close(ch) // want "close of ch which is already closed on every path to here"
}

func sendOnClosed() {
	ch := make(chan int, 1)
	close(ch)
	ch <- 1 // want "send on ch which is closed on every path to here"
}

func closeNil() {
	var ch chan int
	close(ch) // want "close of nil channel ch"
}

func sendOnNil() {
	var ch chan int
	ch <- 1 // want "send on nil channel ch blocks forever"
}

func receiveFromNil() int {
	var ch chan int
	return <-ch // want "receive from nil channel ch blocks forever"
}

func rangeOverNil() {
	var ch chan int
	for range ch { // want "range over nil channel ch blocks forever"
	}
}

// closeAll is an in-package helper with a definite Closes fact.
func closeAll(ch chan int) {
	close(ch)
}

func doubleCloseViaHelper() {
	ch := make(chan int)
	close(ch)
	closeAll(ch) // want "closeAll closes ch which is already closed on every path to here"
}

func deferredDoubleClose() {
	ch := make(chan int)
	defer close(ch)
	close(ch)
} // want "deferred close of ch runs here after ch is already closed on every path"

func deferredTwice() {
	ch := make(chan int)
	defer close(ch)
	defer close(ch) // want "close of ch deferred twice"
}

// conditionalClose: the closed state is not definite afterwards, so the
// second close must not be reported.
func conditionalClose(c bool) {
	ch := make(chan int)
	if c {
		close(ch)
	}
	if !c {
		close(ch)
	}
}

// nilInSelect is the case-disabling idiom: a nil channel in a select comm
// clause simply never fires. Must stay silent.
func nilInSelect(a chan int) int {
	var b chan int
	total := 0
	for i := 0; i < 2; i++ {
		select {
		case v := <-a:
			total += v
		case v := <-b:
			total += v
		}
	}
	return total
}

// reopened: reassignment with a fresh make resets the state.
func reopened() {
	ch := make(chan int)
	close(ch)
	ch = make(chan int, 1)
	ch <- 1
	close(ch)
}

// escaped: a channel captured by a stored literal is untracked — the
// literal may close it at any time.
func escaped() {
	ch := make(chan int)
	f := func() { close(ch) }
	f()
	close(ch)
}

// suppressedDoubleClose: the ignore comment silences the finding.
func suppressedDoubleClose() {
	ch := make(chan int)
	close(ch)
	close(ch) //vqlint:ignore chandiscipline deliberate panic in this fixture
}
