// Golden fixture for the ratioguard analyzer.
package fixture

// True positive: a starved epoch makes total zero and the ratio NaN.
func problemRatio(problems, total int) float64 {
	return float64(problems) / float64(total) // want "division by float64.total. is not dominated"
}

// True positive: integer division panics outright on a zero denominator.
func perSession(stalls, sessions int) int {
	return stalls / sessions // want "division by sessions is not dominated"
}

// Guarded negative: the early return dominates the division.
func guardedRatio(problems, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(problems) / float64(total)
}

// Guarded negative: the clamp idiom proves the bound on both paths.
func clamped(x float64, steps int) float64 {
	if steps < 1 {
		steps = 1
	}
	return x / float64(steps)
}

// Guarded negative: the guard flows through a local alias of the
// conversion.
func aliased(problems, total int) float64 {
	if total == 0 {
		return 0
	}
	n := float64(total)
	return float64(problems) / n
}

// Guarded negative: n >= 2 on the surviving path proves n-1 >= 1.
func variance(n int) float64 {
	if n < 2 {
		return 0
	}
	return 1 / float64(n-1)
}
